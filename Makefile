GO ?= go

.PHONY: build test race vet check serve-smoke bench bench-sat bench-sweep baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrent code paths (the parallel SAT
# sweep, the SAT substrate it drives, the job scheduler/portfolio, and the
# daemon's HTTP handlers).
race:
	$(GO) test -race ./internal/sat ./internal/aig ./internal/service ./cmd/hqsd

# The PR gate: vet, the full test suite, and the race pass.
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/sat ./internal/aig ./internal/service ./cmd/hqsd

# End-to-end service smoke test: build hqsd, start it, solve the example
# instance over HTTP in portfolio mode, drain gracefully via SIGTERM.
serve-smoke:
	$(GO) test -tags smoke -run TestServeSmoke -v ./cmd/hqsd

# SAT-core microbenchmarks (propagation throughput, clause arena behavior).
bench-sat:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sat

# Sweep wall-clock, serial vs worker pool.
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem ./internal/aig

# End-to-end paper evaluation benchmarks (Table I, Fig. 4, ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate the committed benchmark baseline on the three PEC families.
baseline:
	$(GO) run ./cmd/dqbfbench -family adder,bitcell,pec_xor -count 6 -baseline BENCH_pr1.json
