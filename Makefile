GO ?= go

.PHONY: build test race vet check fuzz-smoke fuzz-native chaos chaos-store serve-smoke cluster-smoke bench bench-sat bench-sweep baseline bench-gate bench-gate-quick bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the packages with concurrent code paths (the parallel SAT
# sweep, the SAT substrate it drives, the job scheduler/portfolio and the
# defex/expand engines racing inside it, the fault-injection plumbing they
# share, the daemon's HTTP handlers, the certificate checker the portfolio
# arms consult concurrently, the ingestion/PQE layers the daemon calls
# from its handler goroutines, and the cluster coordinator fanning cube
# subproblems across workers).
race:
	$(GO) test -race ./internal/sat ./internal/aig ./internal/cert ./internal/oracle ./internal/core ./internal/defex ./internal/expand ./internal/service ./internal/store ./internal/faults ./internal/leakcheck ./internal/problem ./internal/pqe ./internal/httpapi ./internal/cluster ./internal/cube ./cmd/hqsd

# Differential fuzzing smoke run: 200 random instances, every solver
# configuration against the brute-force reference, with Skolem certificate
# extraction and checking on every HQS SAT answer. The seed is pinned so the
# gate checks the same corpus on every run.
fuzz-smoke:
	$(GO) run ./cmd/dqbffuzz -n 200 -seed 1 -cert

# Native go-fuzz harnesses, run briefly from the committed corpora: the
# DQDIMACS reader (no panics; accepted input round-trips), the AIGER reader
# (no panics; accepted input normalizes to a read/write fixpoint), and the
# AIG compose/cofactor identities the certificate extractor relies on.
fuzz-native:
	$(GO) test ./internal/dqbf -run '^$$' -fuzz FuzzDQDIMACSReader -fuzztime 10s
	$(GO) test ./internal/problem -run '^$$' -fuzz FuzzAIGERReader -fuzztime 10s
	$(GO) test ./internal/aig -run '^$$' -fuzz FuzzAIGCompose -fuzztime 10s

# Chaos drill under the race detector: fault-injected panics, errors, and
# spurious Unknowns against the scheduler with concurrent submits, cancels,
# and drains.
chaos:
	$(GO) test -race -run 'TestChaos|TestDrainRace' -v ./internal/service

# Disk-fault chaos drill for the persistent store, also under the race
# detector: kill-and-restart durability, torn writes, truncations, bit
# flips, journal tails torn mid-append, concurrent readers/writers, and the
# store.read/store.write/store.corrupt fault points driven against a live
# scheduler (verdicts must never change, only hit rates).
chaos-store:
	$(GO) test -race -run 'TestStore|TestEntry|TestSchedulerStore' -v ./internal/store ./internal/service

# The PR gate: vet, the full test suite, the race pass, the certified fuzz
# smoke, the native fuzz harnesses, and both chaos drills.
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/sat ./internal/aig ./internal/cert ./internal/oracle ./internal/core ./internal/defex ./internal/expand ./internal/service ./internal/store ./internal/faults ./internal/leakcheck ./internal/problem ./internal/pqe ./internal/httpapi ./internal/cluster ./internal/cube ./cmd/hqsd
	$(GO) run ./cmd/dqbffuzz -n 200 -seed 1 -cert
	$(GO) test ./internal/dqbf -run '^$$' -fuzz FuzzDQDIMACSReader -fuzztime 10s
	$(GO) test ./internal/problem -run '^$$' -fuzz FuzzAIGERReader -fuzztime 10s
	$(GO) test ./internal/aig -run '^$$' -fuzz FuzzAIGCompose -fuzztime 10s
	$(GO) test -race -run 'TestChaos|TestDrainRace' ./internal/service
	$(GO) test -race -run 'TestStore|TestEntry|TestSchedulerStore' ./internal/store ./internal/service
	$(GO) test -tags smoke -run TestClusterSmoke ./cmd/hqsc
	$(MAKE) bench-gate-quick

# End-to-end service smoke tests: build hqsd, start it, solve the example
# instance over HTTP in portfolio mode, drain gracefully via SIGTERM; then
# the persistence drill — solve with -store, kill -9, restart, and the
# result must be served from disk with its certificate re-verified.
serve-smoke:
	$(GO) test -tags smoke -run 'TestServeSmoke|TestStoreKillRecoverySmoke' -v ./cmd/hqsd

# End-to-end cluster smoke: build hqsd and hqsc, start two workers under a
# coordinator, solve the example through the cluster with a certificate,
# SIGKILL one worker (the kill-one drill — the survivor must keep answering
# and /stats must mark the victim unreachable), then drain gracefully.
cluster-smoke:
	$(GO) test -tags smoke -run TestClusterSmoke -v ./cmd/hqsc

# SAT-core microbenchmarks (propagation throughput, clause arena behavior).
bench-sat:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/sat

# Sweep wall-clock, serial vs worker pool.
bench-sweep:
	$(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem ./internal/aig

# End-to-end paper evaluation benchmarks (Table I, Fig. 4, ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate the committed benchmark baseline on the PEC families plus the
# BENCH-ingested adder-miter circuit family.
baseline:
	$(GO) run ./cmd/dqbfbench -family adder,bitcell,pec_xor,circuit -count 6 -baseline BENCH_pr10.json

# Newest committed baseline by PR number. `sort -V` (version sort), not make's
# lexical $(lastword): pr10 must beat pr6.
LATEST_BASELINE = $$(ls BENCH_pr*.json | sort -V | tail -1)

# Regression gate: rerun the baseline campaign and fail if any family solves
# fewer instances or its wall time grows >10% over the newest committed
# BENCH_prN.json. Run on the baseline host; thresholds assume an idle machine.
bench-gate:
	$(GO) run ./cmd/dqbfbench -family adder,bitcell,pec_xor,circuit -count 6 -gate $(LATEST_BASELINE)

# Quick-mode smoke for `make check`: same campaign, generous +100% threshold —
# catches solved-count losses and order-of-magnitude slowdowns without CI
# timing noise failing the build.
bench-gate-quick:
	$(GO) run ./cmd/dqbfbench -family adder,bitcell,pec_xor,circuit -count 6 -gate $(LATEST_BASELINE) -gate-threshold 1.0

# Diff two committed baselines: make bench-compare OLD=BENCH_pr1.json NEW=BENCH_pr6.json
bench-compare:
	$(GO) run ./cmd/dqbfbench -compare $(OLD),$(NEW)
