// Package repro's top-level benchmarks regenerate every evaluation artifact
// of the paper (see DESIGN.md §3 for the experiment index):
//
//   - BenchmarkTableI_* — one benchmark per Table I row: both solvers over a
//     generated slice of the family; reported metrics are the solved counts
//     and accumulated times of the row.
//   - BenchmarkFig4_Scatter — the runtime scatter of Fig. 4; the geometric
//     mean and maximum HQS-vs-iDQ speedups are reported as metrics.
//   - BenchmarkStats_InText — the in-text measurements (fraction solved
//     under 1 s, MaxSAT selection time, unit/pure share).
//   - BenchmarkMaxSATSelection — S2 in isolation: the elimination-set
//     MaxSAT computation alone.
//   - BenchmarkAblation_* — the design-choice ablations of DESIGN.md §4.
//
// Absolute numbers differ from the paper (different hardware, scaled-down
// instances, 3-second budgets instead of 2 hours); the reproduced claims are
// the qualitative ones: HQS solves strictly more instances per family, the
// unsolved iDQ runs are dominated by time-outs, and per-instance speedups
// reach several orders of magnitude.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func genOptions() bench.GenOptions {
	return bench.GenOptions{Count: 6, Seed: 20150309, MaxWidth: 4}
}

func runOptions() bench.RunOptions {
	opt := bench.DefaultRunOptions()
	opt.Timeout = 1 * time.Second
	opt.IDQMaxInstantiations = 500_000
	return opt
}

func familyInstances(b *testing.B, f bench.Family) []bench.Instance {
	b.Helper()
	insts, err := bench.Generate(f, genOptions())
	if err != nil {
		b.Fatal(err)
	}
	return insts
}

// benchTableRow runs one Table I row and reports its counters as metrics.
func benchTableRow(b *testing.B, family bench.Family) {
	insts := familyInstances(b, family)
	b.ResetTimer()
	var last *bench.Campaign
	for i := 0; i < b.N; i++ {
		last = bench.Run(insts, runOptions())
	}
	b.StopTimer()
	if d := last.Disagreements(); len(d) > 0 {
		b.Fatalf("solver disagreements: %v", d)
	}
	rows := bench.TableI(last)
	r := rows[0]
	if r.HQS.Solved < r.IDQ.Solved {
		b.Fatalf("paper shape violated: HQS %d < iDQ %d solved", r.HQS.Solved, r.IDQ.Solved)
	}
	b.ReportMetric(float64(r.HQS.Solved), "hqs-solved")
	b.ReportMetric(float64(r.IDQ.Solved), "idq-solved")
	b.ReportMetric(float64(r.IDQ.Timeouts), "idq-TO")
	b.ReportMetric(float64(r.IDQ.Memouts), "idq-MO")
	b.ReportMetric(r.HQS.TotalTime, "hqs-sec-common")
	b.ReportMetric(r.IDQ.TotalTime, "idq-sec-common")
}

func BenchmarkTableI_Adder(b *testing.B)     { benchTableRow(b, bench.FamilyAdder) }
func BenchmarkTableI_Bitcell(b *testing.B)   { benchTableRow(b, bench.FamilyBitcell) }
func BenchmarkTableI_Lookahead(b *testing.B) { benchTableRow(b, bench.FamilyLookahead) }
func BenchmarkTableI_PecXor(b *testing.B)    { benchTableRow(b, bench.FamilyPecXor) }
func BenchmarkTableI_Z4(b *testing.B)        { benchTableRow(b, bench.FamilyZ4) }
func BenchmarkTableI_Comp(b *testing.B)      { benchTableRow(b, bench.FamilyComp) }
func BenchmarkTableI_C432(b *testing.B)      { benchTableRow(b, bench.FamilyC432) }

func allInstances(b *testing.B) []bench.Instance {
	b.Helper()
	var all []bench.Instance
	for _, f := range bench.Families {
		all = append(all, familyInstances(b, f)...)
	}
	return all
}

// BenchmarkFig4_Scatter regenerates the Figure 4 comparison and reports the
// speedup distribution of the scatter.
func BenchmarkFig4_Scatter(b *testing.B) {
	all := allInstances(b)
	b.ResetTimer()
	var last *bench.Campaign
	for i := 0; i < b.N; i++ {
		last = bench.Run(all, runOptions())
	}
	b.StopTimer()
	points := bench.Figure4(last)
	if len(points) != len(all) {
		b.Fatalf("scatter has %d points for %d instances", len(points), len(all))
	}
	st := bench.ComputeStats(last)
	b.ReportMetric(st.SpeedupGeoMean, "speedup-geomean")
	b.ReportMetric(st.MaxSpeedup, "speedup-max")
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkStats_InText regenerates the three in-text measurements.
func BenchmarkStats_InText(b *testing.B) {
	all := allInstances(b)
	b.ResetTimer()
	var st bench.Stats
	for i := 0; i < b.N; i++ {
		st = bench.ComputeStats(bench.Run(all, runOptions()))
	}
	b.StopTimer()
	b.ReportMetric(100*st.HQSSolvedUnder1s, "pct-under-1s")
	b.ReportMetric(st.MaxElimSetSeconds*1000, "maxsat-ms-max")
	b.ReportMetric(100*st.MaxUnitPureShare, "unitpure-pct-max")
}

// BenchmarkMaxSATSelection measures the elimination-set computation alone
// (the paper reports < 0.06 s on every instance).
func BenchmarkMaxSATSelection(b *testing.B) {
	all := allInstances(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := all[i%len(all)]
		if _, err := core.SelectEliminationSet(inst.Formula, core.ElimMaxSAT); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAblation runs one HQS variant against the default configuration.
func benchAblation(b *testing.B, name string) {
	var variants []bench.AblationVariant
	for _, v := range bench.AblationVariants() {
		if v.Name == "default(maxsat)" || v.Name == name {
			variants = append(variants, v)
		}
	}
	if len(variants) != 2 {
		b.Fatalf("unknown variant %q", name)
	}
	// A three-family subset keeps the sequential ablation runs short while
	// still covering adders, arbiters, and XOR chains.
	var all []bench.Instance
	for _, f := range []bench.Family{bench.FamilyAdder, bench.FamilyBitcell, bench.FamilyPecXor} {
		all = append(all, familyInstances(b, f)...)
	}
	b.ResetTimer()
	var rows []bench.AblationRow
	for i := 0; i < b.N; i++ {
		rows = bench.RunAblation(all, variants, time.Second, 2_000_000)
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Solved), fmt.Sprintf("solved[%s]", r.Name))
		b.ReportMetric(r.TotalSeconds, fmt.Sprintf("sec[%s]", r.Name))
	}
}

// benchPECWorkers runs HQS end-to-end over the three PEC families with the
// given SAT-sweeping worker pool size, reporting solved counts and the sweep
// oracle load. Comparing the Workers1/Workers4 variants isolates the effect
// of the parallel sweep on whole-solver wall-clock.
func benchPECWorkers(b *testing.B, workers int) {
	var all []bench.Instance
	for _, f := range []bench.Family{bench.FamilyAdder, bench.FamilyBitcell, bench.FamilyPecXor} {
		all = append(all, familyInstances(b, f)...)
	}
	opt := runOptions()
	opt.HQSOptions.Workers = workers
	b.ResetTimer()
	var solved, satCalls int
	for i := 0; i < b.N; i++ {
		solved, satCalls = 0, 0
		for _, inst := range all {
			rr := bench.RunHQS(inst, opt)
			if rr.Outcome == bench.OutcomeSolved {
				solved++
			}
			satCalls += rr.SweepSatCalls
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(solved), "solved")
	b.ReportMetric(float64(satCalls), "sweep-sat-calls")
}

func BenchmarkPEC_EndToEnd_Workers1(b *testing.B) { benchPECWorkers(b, 1) }
func BenchmarkPEC_EndToEnd_Workers4(b *testing.B) { benchPECWorkers(b, 4) }

func BenchmarkAblation_ElimSetGreedy(b *testing.B) { benchAblation(b, "elimset=greedy") }
func BenchmarkAblation_ElimSetAll(b *testing.B)    { benchAblation(b, "elimset=all") }
func BenchmarkAblation_Order(b *testing.B)         { benchAblation(b, "order=reverse") }
func BenchmarkAblation_UnitPure(b *testing.B)      { benchAblation(b, "unitpure=off") }
func BenchmarkAblation_Sweep(b *testing.B)         { benchAblation(b, "sweep=off") }
func BenchmarkAblation_Preprocess(b *testing.B)    { benchAblation(b, "preprocess=off") }
