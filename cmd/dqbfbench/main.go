// Command dqbfbench regenerates the paper's evaluation: Table I (per-family
// solved counts and times for HQS vs iDQ), Figure 4 (the per-instance
// runtime scatter as CSV), the in-text statistics (fraction of instances HQS
// solves in under a second, MaxSAT selection time, unit/pure check share),
// and the design-choice ablations listed in DESIGN.md.
//
// Usage examples:
//
//	dqbfbench                          # Table I over all families
//	dqbfbench -family adder -count 40  # one family, more instances
//	dqbfbench -scatter fig4.csv        # also write the Fig. 4 scatter data
//	dqbfbench -stats                   # print the in-text statistics
//	dqbfbench -ablation                # design-choice ablations (HQS + defex)
//	dqbfbench -portfolio               # four-arm portfolio race + engine win stats
//	dqbfbench -export dir/             # write instances as .dqdimacs files
//	dqbfbench -gate BENCH_pr1.json     # run + fail on regression vs baseline
//	dqbfbench -compare a.json,b.json   # diff two committed baselines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/budget"
	"repro/internal/service"
)

func main() {
	var (
		family     = flag.String("family", "", "comma-separated families to run (adder, bitcell, lookahead, pec_xor, z4, comp, C432; extensions: mult, mux, circuit)")
		count      = flag.Int("count", 20, "instances per family")
		width      = flag.Int("width", 4, "maximum circuit width parameter")
		seed       = flag.Int64("seed", 20150309, "generation seed")
		timeout    = flag.Duration("timeout", 3*time.Second, "per-instance per-solver timeout")
		nodeLim    = flag.Int("node-limit", 2_000_000, "HQS AIG node limit (memout analogue)")
		instLim    = flag.Int("inst-limit", 2_000_000, "iDQ instantiation limit (memout analogue)")
		parallel   = flag.Int("parallel", 0, "concurrent instances (0 = NumCPU)")
		workers    = flag.Int("workers", 1, "HQS SAT-sweeping worker pool size per instance (0 = one per CPU)")
		scatter    = flag.String("scatter", "", "write Figure 4 scatter CSV to this file")
		baseline   = flag.String("baseline", "", "write a machine-readable campaign baseline (JSON) to this file")
		stats      = flag.Bool("stats", false, "print the paper's in-text statistics")
		ablation   = flag.Bool("ablation", false, "run the design-choice ablations (HQS and defex) instead of the HQS-vs-iDQ comparison")
		portfolio  = flag.Bool("portfolio", false, "race the four-arm service portfolio over the instances and print per-engine win statistics")
		scaling    = flag.Bool("scaling", false, "run a width-scaling study for the selected family (default adder)")
		extensions = flag.Bool("extensions", false, "include the beyond-paper families (mult, mux, circuit)")
		export     = flag.String("export", "", "write the generated instances as DQDIMACS files into this directory")
		compare    = flag.String("compare", "", "OLD,NEW: compare two committed baseline JSON files and exit")
		gate       = flag.String("gate", "", "run the campaign and gate it against this committed baseline JSON (exit 1 on regression)")
		gateThresh = flag.Float64("gate-threshold", 0.10, "allowed per-family wall-time growth for -gate/-compare (0.10 = +10%)")
	)
	flag.Parse()

	if *compare != "" {
		parts := strings.Split(*compare, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-compare wants OLD,NEW, got %q", *compare))
		}
		old, err := bench.ReadBaseline(strings.TrimSpace(parts[0]))
		if err != nil {
			fatal(err)
		}
		cur, err := bench.ReadBaseline(strings.TrimSpace(parts[1]))
		if err != nil {
			fatal(err)
		}
		cmp := bench.Compare(old, cur)
		fmt.Print(bench.FormatCompare(cmp))
		if fails := cmp.Gate(*gateThresh); len(fails) > 0 {
			fmt.Println("\nregressions:")
			for _, f := range fails {
				fmt.Println("  " + f)
			}
			os.Exit(1)
		}
		fmt.Println("\ngate: PASS")
		return
	}

	gen := bench.GenOptions{Count: *count, Seed: *seed, MaxWidth: *width}
	families := bench.Families
	if *extensions {
		families = append(append([]bench.Family{}, families...), bench.ExtensionFamilies...)
	}
	if *family != "" {
		families = nil
		for _, name := range strings.Split(*family, ",") {
			if name = strings.TrimSpace(name); name != "" {
				families = append(families, bench.Family(name))
			}
		}
	}

	if *scaling {
		fam := bench.FamilyAdder
		if len(families) == 1 {
			fam = families[0]
		}
		var widths []int
		for w := 2; w <= *width+2; w++ {
			widths = append(widths, w)
		}
		sopt := bench.RunOptions{Timeout: *timeout, HQSNodeLimit: *nodeLim, IDQMaxInstantiations: *instLim}
		sopt.HQSOptions = bench.DefaultRunOptions().HQSOptions
		pts, err := bench.ScalingStudy(fam, widths, 4, sopt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatScaling(fam, pts, *timeout))
		return
	}
	var instances []bench.Instance
	for _, f := range families {
		insts, err := bench.Generate(f, gen)
		if err != nil {
			fatal(err)
		}
		instances = append(instances, insts...)
	}
	fmt.Printf("generated %d instances across %d families\n", len(instances), len(families))

	if *export != "" {
		if err := os.MkdirAll(*export, 0o755); err != nil {
			fatal(err)
		}
		for _, inst := range instances {
			path := filepath.Join(*export, inst.Name+".dqdimacs")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := inst.Formula.WriteDQDIMACS(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Printf("exported instances to %s\n", *export)
	}

	if *ablation {
		fmt.Printf("\nHQS design-choice ablation (timeout %v):\n\n", *timeout)
		rows := bench.RunAblation(instances, bench.AblationVariants(), *timeout, *nodeLim)
		fmt.Print(bench.FormatAblation(rows, len(instances)))
		fmt.Println()
		fmt.Print(bench.FormatPassBreakdown(rows))
		fmt.Printf("\nDefinition-extraction ablation (timeout %v):\n\n", *timeout)
		drows := bench.RunDefexAblation(instances, bench.DefexAblationVariants(), *timeout, *nodeLim)
		fmt.Print(bench.FormatDefexAblation(drows, len(instances)))
		return
	}

	if *portfolio {
		fmt.Printf("\nPortfolio race (timeout %v per instance):\n\n", *timeout)
		service.ResetEngineStats()
		solved, unknown := 0, 0
		start := time.Now()
		for _, inst := range instances {
			out, err := service.Run(inst.Formula, service.EnginePortfolio,
				budget.New(budget.Limits{Timeout: *timeout, Nodes: *nodeLim}))
			if err != nil {
				fatal(err)
			}
			if out.Verdict == service.VerdictSat || out.Verdict == service.VerdictUnsat {
				solved++
			} else {
				unknown++
			}
		}
		fmt.Printf("solved %d/%d (%d unknown) in %v\n\n", solved, len(instances), unknown, time.Since(start).Round(time.Millisecond))
		fmt.Println("per-engine attempts and wins (wins credit the arm that answered):")
		fmt.Print(service.FormatEngineStats(service.EngineStats()))
		return
	}

	opt := bench.RunOptions{
		Timeout:              *timeout,
		HQSNodeLimit:         *nodeLim,
		IDQMaxInstantiations: *instLim,
		Parallelism:          *parallel,
	}
	opt.HQSOptions = bench.DefaultRunOptions().HQSOptions
	if *workers == 0 {
		opt.HQSOptions.Workers = -1
	} else {
		opt.HQSOptions.Workers = *workers
	}
	campaign := bench.Run(instances, opt)

	if d := campaign.Disagreements(); len(d) > 0 {
		fmt.Fprintf(os.Stderr, "WARNING: solver disagreements: %v\n", d)
	}

	fmt.Printf("\nTable I (timeout %v per instance and solver):\n\n", *timeout)
	fmt.Print(bench.FormatTableI(bench.TableI(campaign)))

	if *scatter != "" {
		csv := bench.FormatFigure4CSV(bench.Figure4(campaign))
		if err := os.WriteFile(*scatter, []byte(csv), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nFigure 4 scatter data written to %s\n", *scatter)
	}

	if *baseline != "" {
		if err := bench.WriteBaseline(*baseline, bench.ComputeBaseline(campaign, opt)); err != nil {
			fatal(err)
		}
		fmt.Printf("\nBaseline written to %s\n", *baseline)
	}

	if *gate != "" {
		old, err := bench.ReadBaseline(*gate)
		if err != nil {
			fatal(err)
		}
		cmp := bench.Compare(old, bench.ComputeBaseline(campaign, opt))
		fmt.Printf("\nRegression gate vs %s (threshold +%.0f%%):\n\n", *gate, *gateThresh*100)
		fmt.Print(bench.FormatCompare(cmp))
		if fails := cmp.Gate(*gateThresh); len(fails) > 0 {
			fmt.Println("\nregressions:")
			for _, f := range fails {
				fmt.Println("  " + f)
			}
			os.Exit(1)
		}
		fmt.Println("\ngate: PASS")
	}

	if *stats {
		st := bench.ComputeStats(campaign)
		fmt.Printf("\nIn-text statistics:\n")
		fmt.Printf("  HQS-solved instances finished < 1 s : %5.1f%%  (paper: ~90%%)\n", 100*st.HQSSolvedUnder1s)
		fmt.Printf("  max MaxSAT selection time           : %.4f s (paper: < 0.06 s)\n", st.MaxElimSetSeconds)
		fmt.Printf("  max unit/pure share of runtime      : %5.1f%%  (%5.1f%% on ≥10ms instances; paper: < 4%%)\n",
			100*st.MaxUnitPureShare, 100*st.MaxUnitPureShareSlow)
		fmt.Printf("  geo-mean speedup HQS vs iDQ (both)  : %.1fx\n", st.SpeedupGeoMean)
		fmt.Printf("  max speedup (TO/MO at budget)       : %.0fx   (paper: up to 10^4)\n", st.MaxSpeedup)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqbfbench:", err)
	os.Exit(1)
}
