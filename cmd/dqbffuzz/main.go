// Command dqbffuzz cross-checks every solver in this repository on random
// DQBF instances: HQS under several option sets, the iDQ-style
// instantiation solver (including its Skolem certificates), the
// definition-extraction engine (both interpolation and semantic extraction
// modes), full expansion, the incomplete refuter, and — within reach — the
// brute-force Skolem-table enumeration. Any disagreement is printed as a
// DQDIMACS reproduction and the process exits nonzero.
//
// iDQ certificates are always re-checked through the independent checker
// (internal/cert); with -cert every HQS variant and both defex modes
// additionally extract a Skolem certificate on SAT and have it checked the
// same way, so a single run validates certificates from every
// certificate-producing engine. A rejected certificate prints its Skolem
// table alongside the DQDIMACS repro.
//
// Usage:
//
//	dqbffuzz [-n 1000] [-seed 1] [-cert] [-maxuniv 4] [-maxexist 4] [-maxclauses 14]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/defex"
	"repro/internal/dqbf"
	"repro/internal/expand"
	"repro/internal/idq"
	"repro/internal/refute"
)

func main() {
	var (
		n          = flag.Int("n", 1000, "number of random instances")
		seed       = flag.Int64("seed", 1, "generator seed")
		maxUniv    = flag.Int("maxuniv", 4, "maximum universal variables")
		maxExist   = flag.Int("maxexist", 4, "maximum existential variables")
		maxClauses = flag.Int("maxclauses", 14, "maximum clauses")
		certify    = flag.Bool("cert", false, "extract and check HQS Skolem certificates on every SAT verdict")
		verbose    = flag.Bool("v", false, "print every instance verdict")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	hqsVariants := map[string]core.Options{
		"hqs":          core.DefaultOptions(),
		"hqs-plain":    {Strategy: core.ElimMaxSAT},
		"hqs-greedy":   greedy(),
		"hqs-elim-all": elimAll(),
	}
	if *certify {
		for name, opt := range hqsVariants {
			opt.Certify = true
			hqsVariants[name] = opt
		}
	}

	bad := 0
	for i := 0; i < *n; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(*maxUniv), 1+rng.Intn(*maxExist), 1+rng.Intn(*maxClauses))
		verdicts := map[string]bool{}

		for name, opt := range hqsVariants {
			res := core.New(opt).SolveDQBF(f)
			if res.Status != core.Solved {
				fail(f, fmt.Sprintf("%s did not finish: %v", name, res.Status))
				bad++
				continue
			}
			verdicts[name] = res.Sat
			if opt.Certify && res.Sat {
				if res.CertErr != nil {
					fail(f, fmt.Sprintf("%s certificate extraction failed: %v", name, res.CertErr))
					bad++
				} else if err := cert.Check(f, res.Certificate); err != nil {
					failCert(f, fmt.Sprintf("%s certificate rejected: %v", name, err), res.Certificate)
					bad++
				}
			}
		}
		defexModes := map[string]defex.Mode{
			"defex-interp":   defex.ModeInterp,
			"defex-semantic": defex.ModeSemantic,
		}
		for name, mode := range defexModes {
			dres := defex.New(defex.Options{Mode: mode, Certify: *certify}).Solve(f)
			if dres.Status != defex.Solved {
				fail(f, fmt.Sprintf("%s did not finish: %v", name, dres.Status))
				bad++
				continue
			}
			verdicts[name] = dres.Sat
			if *certify && dres.Sat {
				if dres.CertErr != nil {
					fail(f, fmt.Sprintf("%s certificate extraction failed: %v", name, dres.CertErr))
					bad++
				} else if err := cert.Check(f, dres.Certificate); err != nil {
					failCert(f, fmt.Sprintf("%s certificate rejected: %v", name, err), dres.Certificate)
					bad++
				}
			}
		}
		ires := idq.New(idq.Options{}).Solve(f)
		verdicts["idq"] = ires.Sat
		if ires.Sat && ires.Certificate != nil {
			// One checker code path for every engine: lift the table
			// certificate to Skolem AIGs and check it independently.
			ic, err := cert.FromTables(f, ires.Certificate)
			if err != nil {
				fail(f, fmt.Sprintf("idq certificate conversion failed: %v", err))
				bad++
			} else if err := cert.Check(f, ic); err != nil {
				failCert(f, fmt.Sprintf("idq certificate rejected: %v", err), ic)
				bad++
			}
		}
		eres, err := expand.New(expand.Options{}).Solve(f)
		if err != nil {
			fail(f, fmt.Sprintf("expand error: %v", err))
			bad++
			continue
		}
		verdicts["expand"] = eres.Sat

		if want, err := dqbf.BruteForce(f); err == nil {
			verdicts["brute"] = want
		}

		// Refuter is incomplete but must never contradict.
		r := refute.Refute(f, refute.Options{})
		if r.Verdict == refute.Refuted && verdicts["expand"] {
			fail(f, "refuter refuted a satisfiable instance")
			bad++
		}
		if r.Verdict == refute.Satisfied && !verdicts["expand"] {
			fail(f, "refuter satisfied an unsatisfiable instance")
			bad++
		}

		ref := verdicts["expand"]
		for name, v := range verdicts {
			if v != ref {
				fail(f, fmt.Sprintf("disagreement: %s=%v expand=%v (all: %v)", name, v, ref, verdicts))
				bad++
				break
			}
		}
		if *verbose {
			fmt.Printf("instance %4d: sat=%v univ=%d exist=%d clauses=%d\n",
				i, ref, len(f.Univ), len(f.Exist), len(f.Matrix.Clauses))
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "dqbffuzz: %d failures in %d instances\n", bad, *n)
		os.Exit(1)
	}
	fmt.Printf("dqbffuzz: %d instances, all solvers agree\n", *n)
}

func greedy() core.Options {
	o := core.DefaultOptions()
	o.Strategy = core.ElimGreedy
	return o
}

func elimAll() core.Options {
	o := core.DefaultOptions()
	o.Strategy = core.ElimAll
	return o
}

func fail(f *dqbf.Formula, msg string) {
	fmt.Fprintln(os.Stderr, "FAILURE:", msg)
	fmt.Fprintln(os.Stderr, "instance:")
	if err := f.WriteDQDIMACS(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "  (write error:", err, ")")
	}
}

// failCert is fail plus the rejected certificate's Skolem tables, so a
// mismatch report shows both the instance and the functions that fail it.
func failCert(f *dqbf.Formula, msg string, c *cert.Certificate) {
	fail(f, msg)
	fmt.Fprintln(os.Stderr, "certificate:")
	fmt.Fprint(os.Stderr, cert.Format(f, c))
}
