// Command dqbfinfo analyzes a problem without solving it. It ingests any
// supported input format — DQDIMACS, QDIMACS, AIGER, BENCH, or a PQE query
// — reporting the detected format and problem kind, then: prefix shape,
// dependency-graph cycles (Definition 4 / Theorem 4), QBF expressibility
// (Theorem 3), the minimum universal elimination set (Equations 1-2), and,
// for already-linear prefixes, the equivalent QBF block structure. For a
// PQE query it reports the sizes of the F/G split instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/problem"
)

func main() {
	elim := flag.Bool("elimset", true, "compute the MaxSAT-minimal elimination set")
	flag.Parse()

	var in io.Reader = os.Stdin
	hint := problem.Format("")
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		hint = problem.FormatFromPath(flag.Arg(0))
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	p, err := problem.ParseBytes(data, hint)
	if err != nil {
		fatal(err)
	}
	if err := p.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("format           %s\n", p.Format)
	fmt.Printf("kind             %s\n", p.Kind)
	if p.Kind == problem.KindPQE {
		q := p.PQE
		fmt.Printf("variables        %d (%d quantified, %d free)\n",
			q.NumVars, len(q.X), len(q.FreeVars()))
		fmt.Printf("clauses          %d in F (taken out of scope), %d in G\n", len(q.F), len(q.G))
		return
	}
	f := p.Formula

	fmt.Printf("variables        %d (%d universal, %d existential)\n",
		f.Matrix.NumVars, len(f.Univ), len(f.Exist))
	fmt.Printf("clauses          %d\n", len(f.Matrix.Clauses))

	// Dependency-set profile.
	full := f.UniversalSet()
	distinct := map[string]int{}
	fullDeps := 0
	for _, y := range f.Exist {
		d := f.Deps[y]
		distinct[d.String()]++
		if d.Equal(full) {
			fullDeps++
		}
	}
	fmt.Printf("dependency sets  %d distinct, %d existentials with full dependencies\n",
		len(distinct), fullDeps)

	cycles := dqbf.BinaryCycles(f)
	fmt.Printf("binary cycles    %d\n", len(cycles))
	if dqbf.HasQBFPrefix(f) {
		fmt.Println("prefix           linear — an equivalent QBF prefix exists (Theorem 3):")
		for i, b := range dqbf.Linearize(f) {
			fmt.Printf("  block %d: ∀%v ∃%v\n", i+1, b.Univ, b.Exist)
		}
		return
	}
	fmt.Println("prefix           non-linear — no equivalent QBF prefix (Theorem 3)")
	if *elim {
		set, err := core.SelectEliminationSet(f, core.ElimMaxSAT)
		if err != nil {
			fatal(err)
		}
		ordered := core.OrderByCopyCost(f, set)
		fmt.Printf("elimination set  %d universal variables (MaxSAT minimum): %v\n",
			len(ordered), ordered)
		copies := 0
		for _, x := range ordered {
			for _, y := range f.Exist {
				if f.Deps[y].Has(x) {
					copies++
				}
			}
		}
		fmt.Printf("                 worst-case existential copies: %d\n", copies)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqbfinfo:", err)
	os.Exit(1)
}
