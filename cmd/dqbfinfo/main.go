// Command dqbfinfo analyzes a DQDIMACS formula without solving it: prefix
// shape, dependency-graph cycles (Definition 4 / Theorem 4), QBF
// expressibility (Theorem 3), the minimum universal elimination set
// (Equations 1–2), and — for already-linear prefixes — the equivalent QBF
// block structure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/dqbf"
)

func main() {
	elim := flag.Bool("elimset", true, "compute the MaxSAT-minimal elimination set")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	f, err := dqbf.ParseDQDIMACS(in)
	if err != nil {
		fatal(err)
	}
	if err := f.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("variables        %d (%d universal, %d existential)\n",
		f.Matrix.NumVars, len(f.Univ), len(f.Exist))
	fmt.Printf("clauses          %d\n", len(f.Matrix.Clauses))

	// Dependency-set profile.
	full := f.UniversalSet()
	distinct := map[string]int{}
	fullDeps := 0
	for _, y := range f.Exist {
		d := f.Deps[y]
		distinct[d.String()]++
		if d.Equal(full) {
			fullDeps++
		}
	}
	fmt.Printf("dependency sets  %d distinct, %d existentials with full dependencies\n",
		len(distinct), fullDeps)

	cycles := dqbf.BinaryCycles(f)
	fmt.Printf("binary cycles    %d\n", len(cycles))
	if dqbf.HasQBFPrefix(f) {
		fmt.Println("prefix           linear — an equivalent QBF prefix exists (Theorem 3):")
		for i, b := range dqbf.Linearize(f) {
			fmt.Printf("  block %d: ∀%v ∃%v\n", i+1, b.Univ, b.Exist)
		}
		return
	}
	fmt.Println("prefix           non-linear — no equivalent QBF prefix (Theorem 3)")
	if *elim {
		set, err := core.SelectEliminationSet(f, core.ElimMaxSAT)
		if err != nil {
			fatal(err)
		}
		ordered := core.OrderByCopyCost(f, set)
		fmt.Printf("elimination set  %d universal variables (MaxSAT minimum): %v\n",
			len(ordered), ordered)
		copies := 0
		for _, x := range ordered {
			for _, y := range f.Exist {
				if f.Deps[y].Has(x) {
					copies++
				}
			}
		}
		fmt.Printf("                 worst-case existential copies: %d\n", copies)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqbfinfo:", err)
	os.Exit(1)
}
