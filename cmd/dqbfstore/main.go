// Command dqbfstore maintains a persistent result/certificate store written
// by hqsd -store DIR (see internal/store). It runs offline, against the same
// directory, between daemon runs.
//
// Usage:
//
//	dqbfstore -dir DIR stats                # disk usage: entries, bytes, quarantine, certificates
//	dqbfstore -dir DIR verify               # scrub every entry; quarantine checksum/structure failures
//	dqbfstore -dir DIR evict -older 168h    # remove entries older than the given age
//	dqbfstore -dir DIR compact              # delete quarantined files, temp debris, empty shards
//
// Exit status is 0 on success, 1 on usage or I/O errors, and 2 when verify
// quarantined at least one entry (so cron jobs can alert on corruption).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/store"
)

func main() {
	dir := flag.String("dir", "", "store directory (as passed to hqsd -store)")
	asJSON := flag.Bool("json", false, "print machine-readable JSON instead of text")
	flag.Usage = usage
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		usage()
		os.Exit(1)
	}

	s, lost, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if len(lost) > 0 {
		fmt.Fprintf(os.Stderr, "dqbfstore: previous process died with %d jobs in flight:\n", len(lost))
		for _, lj := range lost {
			fmt.Fprintf(os.Stderr, "  job %s formula %.12s started %s\n",
				lj.ID, lj.Key, time.Unix(lj.StartedUnix, 0).Format(time.RFC3339))
		}
	}

	switch cmd := flag.Arg(0); cmd {
	case "stats":
		ds, err := s.Scan()
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(ds)
			return
		}
		fmt.Printf("entries       %d (%d bytes)\n", ds.Entries, ds.EntryBytes)
		fmt.Printf("certificates  %d\n", ds.WithCertificates)
		fmt.Printf("quarantined   %d (%d bytes)\n", ds.Quarantined, ds.QuarantineBytes)

	case "verify":
		res, err := s.Verify()
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			emit(res)
		} else {
			fmt.Printf("checked %d: %d ok, %d quarantined, %d version-skipped\n",
				res.Checked, res.OK, res.Quarantined, res.VersionSkips)
		}
		if res.Quarantined > 0 {
			os.Exit(2)
		}

	case "evict":
		fs := flag.NewFlagSet("evict", flag.ExitOnError)
		older := fs.Duration("older", 7*24*time.Hour, "evict entries older than this age")
		fs.Parse(flag.Args()[1:])
		n, err := s.EvictOlderThan(time.Now().Add(-*older))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("evicted %d entries older than %v\n", n, *older)

	case "compact":
		n, err := s.Compact()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("removed %d files\n", n)

	default:
		fmt.Fprintf(os.Stderr, "dqbfstore: unknown command %q\n", cmd)
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: dqbfstore -dir DIR [-json] COMMAND

commands:
  stats                 disk usage: entries, bytes, quarantine, certificates
  verify                scrub all entries, quarantine failures (exit 2 if any)
  evict -older 168h     remove entries older than the given age
  compact               delete quarantined files, temp debris, empty shards
`)
}

func emit(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqbfstore:", err)
	os.Exit(1)
}
