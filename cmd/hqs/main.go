// Command hqs is the HQS DQBF solver: it reads a problem in any supported
// input format — DQDIMACS, QDIMACS, AIGER (ascii or binary), or an ISCAS-85
// BENCH netlist — and decides it by quantifier elimination, printing SAT,
// UNSAT, or UNKNOWN and exiting with the conventional solver exit codes
// (10 for SAT, 20 for UNSAT, 1 for errors, 2 for unknown/resource-outs).
// The format is detected from the file extension or, for stdin and unknown
// extensions, from the content itself. A PQE query ("p pqe" header) is
// answered directly: the computed clause set Q with Q ∧ ∃X[G] ≡ ∃X[F ∧ G]
// is printed as DIMACS clauses and the exit code is 0.
//
// Usage:
//
//	hqs [flags] [file.{dqdimacs,qdimacs,aag,aig,bench,pqe}]
//
// With no file argument the problem is read from standard input. The
// -engine flag can redirect the solve to the iDQ baseline, the
// definition-extraction engine (defex), plain universal expansion, or a
// portfolio racing all four; -timeout is enforced through a cancellable budget,
// so it interrupts a running SAT oracle rather than waiting for the next
// loop iteration. -trace prints one table row per executed pipeline pass to
// stderr, and -trace-json streams the same events as JSON lines. -cert makes
// a SAT verdict carry a Skolem certificate: the solver extracts per-variable
// Skolem functions, the independent checker (internal/cert) validates them
// against the input formula, and the certificate is printed as Skolem tables
// on stdout; a rejected certificate is an error exit, never a bare SAT.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/problem"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	var (
		timeout    = flag.Duration("timeout", 0, "wall-clock limit (0 = none)")
		engine     = flag.String("engine", "hqs", "solver engine: hqs | idq | defex | expand | portfolio")
		nodeLimit  = flag.Int("node-limit", 0, "AIG node limit (0 = none)")
		strategy   = flag.String("strategy", "maxsat", "universal elimination set: maxsat | greedy | all")
		noPre      = flag.Bool("no-preprocess", false, "disable CNF preprocessing")
		noGates    = flag.Bool("no-gates", false, "disable Tseitin gate detection")
		noUnitPure = flag.Bool("no-unitpure", false, "disable unit/pure elimination on AIGs")
		noSweep    = flag.Bool("no-sweep", false, "disable SAT sweeping")
		workers    = flag.Int("workers", 1, "SAT-sweeping worker pool size (0 = one per CPU)")
		stats      = flag.Bool("stats", false, "print solver statistics to stderr")
		certFlag   = flag.Bool("cert", false, "extract, check, and print a Skolem certificate on SAT")
		traceFlag  = flag.Bool("trace", false, "print a per-pass pipeline trace table to stderr")
		traceJSON  = flag.String("trace-json", "", `stream per-pass trace events as JSON lines to a file ("-" = stdout)`)
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	hint := problem.Format("")
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqs:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		hint = problem.FormatFromPath(flag.Arg(0))
	}
	data, err := io.ReadAll(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqs:", err)
		os.Exit(1)
	}
	prob, err := problem.ParseBytes(data, hint)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqs:", err)
		os.Exit(1)
	}
	if err := prob.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hqs:", err)
		os.Exit(1)
	}

	bud := budget.New(budget.Limits{Timeout: *timeout, Nodes: *nodeLimit})

	if prob.Kind == problem.KindPQE {
		runPQE(prob, bud)
	}
	formula := prob.Formula

	// Assemble the trace sink: a bounded recorder backing the human table
	// (-trace) and/or a JSONL stream (-trace-json). Both see the same events.
	var rec *trace.Recorder
	var sinks []trace.Sink
	if *traceFlag {
		rec = trace.NewRecorder(0)
		sinks = append(sinks, rec)
	}
	if *traceJSON != "" {
		w := os.Stdout
		if *traceJSON != "-" {
			tf, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hqs:", err)
				os.Exit(1)
			}
			defer tf.Close()
			w = tf
		}
		sinks = append(sinks, trace.NewWriter(w))
	}
	sink := trace.Multi(sinks...)

	if *engine != "hqs" {
		eng, err := service.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqs:", err)
			os.Exit(1)
		}
		// The service path re-checks HQS SAT answers itself (and always checks
		// iDQ certificates); -cert opts the HQS arms in.
		service.SetCertifyHQS(*certFlag)
		runService(prob, eng, bud, *stats, sink, rec)
	}

	opt := core.DefaultOptions()
	opt.Budget = bud
	opt.Trace = sink
	opt.Certify = *certFlag
	opt.NodeLimit = *nodeLimit
	opt.Preprocess = !*noPre
	opt.DetectGates = !*noGates && !*noPre
	opt.UnitPure = !*noUnitPure
	if *noSweep {
		opt.SweepThreshold = 0
		opt.QBF.SweepThreshold = 0
	}
	if *workers == 0 {
		opt.Workers = -1 // resolved to runtime.GOMAXPROCS(0) by the sweeper
	} else {
		opt.Workers = *workers
	}
	switch *strategy {
	case "maxsat":
		opt.Strategy = core.ElimMaxSAT
	case "greedy":
		opt.Strategy = core.ElimGreedy
	case "all":
		opt.Strategy = core.ElimAll
	default:
		fmt.Fprintf(os.Stderr, "hqs: unknown strategy %q\n", *strategy)
		os.Exit(1)
	}

	start := time.Now()
	res := core.New(opt).Solve(prob)
	elapsed := time.Since(start)

	if rec != nil {
		fmt.Fprint(os.Stderr, trace.FormatTable(rec.Events()))
	}
	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "c time            %v\n", elapsed)
		fmt.Fprintf(os.Stderr, "c decided by      %s\n", st.DecidedBy)
		fmt.Fprintf(os.Stderr, "c elim set        %v (maxsat %v)\n", st.ElimSet, st.ElimSetTime)
		fmt.Fprintf(os.Stderr, "c thm1/thm2 elims %d/%d (%d copies)\n", st.UnivElims, st.ExistElims, st.CopiesMade)
		fmt.Fprintf(os.Stderr, "c unit/pure       %d/%d in %v\n", st.UnitElims, st.PureElims, st.UnitPureTime)
		fmt.Fprintf(os.Stderr, "c sweeps          %d, peak AIG nodes %d\n", st.Sweeps+st.QBF.Sweeps, st.PeakAIGNodes)
		sw := st.Sweep
		sw.Add(st.QBF.Sweep)
		fmt.Fprintf(os.Stderr, "c sweep sat calls %d over %d candidates (%d merged, pool %d)\n",
			sw.SatCalls, sw.Candidates, sw.Merged, sw.Workers)
		fmt.Fprintf(os.Stderr, "c sweep arena     %d bytes peak, %d compactions\n",
			sw.ArenaBytes, sw.Compactions)
		or := st.Oracle
		fmt.Fprintf(os.Stderr, "c oracle          %d queries (%d incremental, %d rebuilds), %d scopes\n",
			or.Queries, or.Incremental, or.Rebuilds, or.Scopes)
		fmt.Fprintf(os.Stderr, "c oracle reuse    %d learnts retained, %d encoded nodes, %d arena bytes peak\n",
			or.LearntsRetained, or.EncodedNodes, or.ArenaBytesHW)
		fmt.Fprintf(os.Stderr, "c gates detected  %d\n", len(st.Preprocess.Gates))
	}
	switch res.Status {
	case core.Solved:
		if res.Sat {
			if *certFlag {
				if res.CertErr != nil {
					fmt.Fprintln(os.Stderr, "hqs: certificate extraction failed:", res.CertErr)
					os.Exit(1)
				}
				if err := cert.Check(formula, res.Certificate); err != nil {
					fmt.Fprintln(os.Stderr, "hqs: certificate rejected:", err)
					fmt.Fprint(os.Stderr, cert.Format(formula, res.Certificate))
					os.Exit(1)
				}
			}
			fmt.Println("SAT")
			if *certFlag {
				fmt.Print(cert.Format(formula, res.Certificate))
			}
			os.Exit(10)
		}
		fmt.Println("UNSAT")
		os.Exit(20)
	case core.Timeout:
		fmt.Println("TIMEOUT")
	case core.Memout:
		fmt.Println("MEMOUT")
	default:
		fmt.Println("UNKNOWN")
	}
	os.Exit(2)
}

// runPQE answers a PQE query and exits: the computed clause set is printed
// in DIMACS form ("c Q" header, one 0-terminated line per clause), a budget
// stop prints UNKNOWN with exit code 2, and failures exit 1.
func runPQE(p *problem.Problem, bud *budget.Budget) {
	res, err := service.SolvePQE(p.PQE, bud, nil)
	if err != nil {
		if bud.Stopped() {
			fmt.Println("UNKNOWN")
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "hqs:", err)
		os.Exit(1)
	}
	fmt.Printf("c pqe rounds=%d sat_calls=%d blocked=%d\n", res.Rounds, res.SATCalls, res.Blocked)
	fmt.Printf("p cnf %d %d\n", p.PQE.NumVars, len(res.Q))
	for _, c := range res.Q {
		for _, l := range c {
			fmt.Printf("%d ", l.Dimacs())
		}
		fmt.Println("0")
	}
	os.Exit(0)
}

// runService decides the problem through internal/service (engines other
// than the native hqs core) and exits with the solver exit codes. The HQS
// arm of the selected engine emits pass events to sink; rec backs the
// -trace table.
func runService(p *problem.Problem, eng service.Engine, bud *budget.Budget, stats bool, sink trace.Sink, rec *trace.Recorder) {
	start := time.Now()
	out, err := service.RunTracedProblem(p, eng, bud, sink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqs:", err)
		os.Exit(1)
	}
	if rec != nil {
		fmt.Fprint(os.Stderr, trace.FormatTable(rec.Events()))
	}
	if stats {
		fmt.Fprintf(os.Stderr, "c time      %v\n", time.Since(start))
		fmt.Fprintf(os.Stderr, "c engine    %s\n", out.Engine)
		fmt.Fprintf(os.Stderr, "c reason    %s\n", out.Reason)
		fmt.Fprintf(os.Stderr, "c conflicts %d, decisions %d\n", out.Conflicts, out.Decisions)
	}
	fmt.Println(out.Verdict)
	switch out.Verdict {
	case service.VerdictSat:
		os.Exit(10)
	case service.VerdictUnsat:
		os.Exit(20)
	default:
		os.Exit(2)
	}
}
