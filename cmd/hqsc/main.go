// Command hqsc is the cluster coordinator: it shards DQBF instances across a
// ring of hqsd workers and exposes the same solve surface a single hqsd
// does, so clients move from one worker to a cluster by changing the URL.
//
// Sharding is consistent hashing of the canonical formula hash over the
// worker base URLs (virtual nodes, -vnodes), so the same instance always
// lands on the same worker and hits its cache/store. A worker that fails a
// forward — network error, 429, 5xx, failed /readyz probe — is skipped and
// the request retries on the next ring node with exponential backoff
// (-retry-attempts, -retry-base-delay, -retry-max-delay); the
// X-Idempotency-Key header pins the logical submission so a retried forward
// cannot double-run a job a worker had in fact accepted.
//
// Cube-and-conquer: with -cube-vars k > 0 the coordinator splits a formula
// on k shared universal prefix variables into 2^k cofactor subproblems
// (internal/cube) fanned across the ring. The first UNSAT cube refutes the
// formula and cancels the in-flight siblings; an all-SAT fan merges the
// per-cube Skolem certificates into one certificate that is re-checked
// against the original formula before the SAT verdict is reported. With
// -split d > 0 the whole formula is first forwarded to its home node under
// budget d, and only an Unknown escalates to the fan.
//
// API (the hqsd wire format, with cluster job IDs "w<worker>:<id>"):
//
//	POST   /solve?engine=portfolio&timeout=30s&cert=1  -> 200 finished job
//	POST   /jobs?engine=idq                            -> 202 job snapshot
//	GET    /jobs/{id}                                  -> job snapshot
//	GET    /jobs/{id}/trace                            -> pipeline trace
//	DELETE /jobs/{id}                                  -> cancel
//	GET    /stats     -> merged per-worker + coordinator counters
//	GET    /healthz   -> coordinator liveness
//	GET    /readyz    -> 200 when at least one worker accepts work
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cert"
	"repro/internal/cluster"
	"repro/internal/problem"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8090", "listen address")
		workers      = flag.String("workers", "", "comma-separated hqsd base URLs forming the ring (required)")
		vnodes       = flag.Int("vnodes", 32, "virtual ring nodes per worker")
		cubeVars     = flag.Int("cube-vars", 0, "universal prefix variables to cube when splitting (0 = never split)")
		split        = flag.Duration("split", 0, "budget for the single-worker attempt before escalating to a cube fan (0 = split immediately when -cube-vars > 0)")
		engine       = flag.String("engine", "portfolio", "default engine forwarded to workers")
		maxBody      = flag.Int64("max-body", 64<<20, "request body size limit in bytes")
		probeTimeout = flag.Duration("probe-timeout", 500*time.Millisecond, "per-worker /readyz probe bound")
		retryMax     = flag.Int("retry-attempts", 0, "full ring walks per forward before giving up (0 = default 2)")
		retryBase    = flag.Duration("retry-base-delay", 0, "backoff before the second ring walk, doubling per walk (0 = default 5ms)")
		retryCeiling = flag.Duration("retry-max-delay", 0, "ceiling on the ring-walk backoff (0 = default 250ms)")
	)
	flag.Parse()

	eng, err := service.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqsc:", err)
		os.Exit(1)
	}
	var urls []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, strings.TrimRight(w, "/"))
		}
	}
	coord, err := cluster.New(cluster.Config{
		Workers:      urls,
		VNodes:       *vnodes,
		CubeVars:     *cubeVars,
		SplitAfter:   *split,
		ProbeTimeout: *probeTimeout,
		Retry: service.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryCeiling,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqsc:", err)
		os.Exit(1)
	}

	srv := &server{coord: coord, eng: eng, maxBody: *maxBody}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("hqsc: %v received, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("hqsc: shutdown: %v", err)
		}
	}()

	log.Printf("hqsc: coordinating %d workers on %s (cube-vars %d, split %v)",
		len(urls), *addr, *cubeVars, *split)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("hqsc: %v", err)
	}
	<-done
	log.Print("hqsc: bye")
}

// server is the coordinator's thin HTTP layer over cluster.Coordinator.
type server struct {
	coord   *cluster.Coordinator
	eng     service.Engine
	maxBody int64
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseRequest reads the problem body and the engine/limit query parameters
// of /solve and /jobs (the hqsd parameter set).
func (s *server) parseRequest(w http.ResponseWriter, r *http.Request) (*problem.Problem, service.Engine, service.Limits, bool) {
	q := r.URL.Query()
	eng := s.eng
	if v := q.Get("engine"); v != "" {
		var err error
		if eng, err = service.ParseEngine(v); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return nil, "", service.Limits{}, false
		}
	}
	var lim service.Limits
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout: %w", err))
			return nil, "", service.Limits{}, false
		}
		lim.Timeout = d
	}
	intParam := func(name string) (int64, bool) {
		v := q.Get(name)
		if v == "" {
			return 0, true
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", name, err))
			return 0, false
		}
		return n, true
	}
	var ok bool
	if lim.Conflicts, ok = intParam("conflicts"); !ok {
		return nil, "", service.Limits{}, false
	}
	if lim.Decisions, ok = intParam("decisions"); !ok {
		return nil, "", service.Limits{}, false
	}
	nodes, ok := intParam("nodes")
	if !ok {
		return nil, "", service.Limits{}, false
	}
	lim.Nodes = int(nodes)

	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return nil, "", service.Limits{}, false
		}
		writeError(w, http.StatusBadRequest, err)
		return nil, "", service.Limits{}, false
	}
	p, err := problem.ParseBytes(data, problem.FormatFromContentType(r.Header.Get("Content-Type")))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", service.Limits{}, false
	}
	if p.Kind == problem.KindPQE {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("PQE queries are not cluster jobs; POST them to a worker's /pqe"))
		return nil, "", service.Limits{}, false
	}
	return p, eng, lim, true
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	p, eng, lim, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	withCert := r.URL.Query().Get("cert") == "1"
	res, err := s.coord.Solve(r.Context(), p, eng, lim, withCert)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	if res.Cert == nil {
		writeJSON(w, http.StatusOK, res.Info)
		return
	}
	blob, err := cert.Encode(res.Cert)
	if err != nil {
		writeJSON(w, http.StatusOK, res.Info)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		service.JobInfo
		CertSkolem string `json:"cert_skolem"`
	}{res.Info, string(blob)})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	p, eng, lim, ok := s.parseRequest(w, r)
	if !ok {
		return
	}
	info, err := s.coord.SubmitJob(r.Context(), p, eng, lim)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	withCert := r.URL.Query().Get("cert") == "1"
	info, certBlob, status, err := s.coord.GetJob(r.Context(), r.PathValue("id"), withCert)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if certBlob == "" {
		writeJSON(w, status, info)
		return
	}
	writeJSON(w, status, struct {
		service.JobInfo
		CertSkolem string `json:"cert_skolem"`
	}{info, certBlob})
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	raw, status, err := s.coord.GetTrace(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, err := s.coord.CancelJob(r.Context(), id)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Stats(r.Context()))
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.coord.Ready(r.Context()) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready workers"})
}
