//go:build smoke

package main

// The cluster smoke test drives the real binaries end to end: build hqsd and
// hqsc, start two workers and a coordinator over them, solve the
// repository's example instance through the cluster with a certificate
// attached, kill one worker with SIGKILL and solve again through the
// survivor, then shut the coordinator down gracefully. Run it via
// `make cluster-smoke` (tag-gated so ordinary `go test ./...` stays fast).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClusterSmoke(t *testing.T) {
	dir := t.TempDir()
	hqsd := filepath.Join(dir, "hqsd")
	hqsc := filepath.Join(dir, "hqsc")
	if out, err := exec.Command("go", "build", "-o", hqsd, "../hqsd").CombinedOutput(); err != nil {
		t.Fatalf("go build hqsd: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "build", "-o", hqsc, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build hqsc: %v\n%s", err, out)
	}

	// Two workers behind one coordinator.
	var workerAddrs []string
	var workerCmds []*exec.Cmd
	for i := 0; i < 2; i++ {
		addr := freeAddr(t)
		cmd := exec.Command(hqsd, "-addr", addr, "-workers", "2", "-drain-timeout", "10s")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		defer cmd.Process.Kill()
		workerAddrs = append(workerAddrs, "http://"+addr)
		workerCmds = append(workerCmds, cmd)
	}
	for _, base := range workerAddrs {
		waitHealthy(t, base)
	}

	coordAddr := freeAddr(t)
	coord := exec.Command(hqsc,
		"-addr", coordAddr,
		"-workers", strings.Join(workerAddrs, ","),
		"-cube-vars", "2")
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatalf("start hqsc: %v", err)
	}
	defer coord.Process.Kill()
	base := "http://" + coordAddr
	waitHealthy(t, base)

	// Readiness requires at least one ready worker.
	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz: %v (status %v)", err, resp)
	} else {
		resp.Body.Close()
	}

	instance, err := os.ReadFile("../../examples/example1.dqdimacs")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	solve := func(query string) (service.JobInfo, string) {
		resp, err := http.Post(base+"/solve?"+query, "text/plain", strings.NewReader(string(instance)))
		if err != nil {
			t.Fatalf("POST /solve: %v", err)
		}
		defer resp.Body.Close()
		var reply struct {
			service.JobInfo
			CertSkolem string `json:"cert_skolem"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.StatusCode != http.StatusOK || reply.Outcome == nil {
			t.Fatalf("solve: status %d, reply %+v", resp.StatusCode, reply)
		}
		return reply.JobInfo, reply.CertSkolem
	}

	info, certBlob := solve("engine=idq&timeout=30s&cert=1")
	if info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("cluster solve: %+v", info.Outcome)
	}
	if certBlob == "" {
		t.Fatal("no certificate attached to the cluster SAT verdict")
	}
	fmt.Printf("smoke: cluster of 2 solved example1 -> %v with a %d-byte certificate\n",
		info.Outcome.Verdict, len(certBlob))

	// Kill-one drill: SIGKILL a worker; the cluster must keep answering.
	if err := workerCmds[0].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL worker 0: %v", err)
	}
	workerCmds[0].Wait()

	info, _ = solve("engine=idq&timeout=30s")
	if info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("post-kill solve: %+v", info.Outcome)
	}

	// Merged stats must mark the dead worker unreachable and keep serving.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var stats struct {
		Workers []struct {
			URL   string `json:"url"`
			Ready bool   `json:"ready"`
		} `json:"workers"`
		Coordinator struct {
			Forwards int64 `json:"forwards"`
		} `json:"coordinator"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if len(stats.Workers) != 2 {
		t.Fatalf("stats cover %d workers, want 2", len(stats.Workers))
	}
	ready := 0
	for _, w := range stats.Workers {
		if w.Ready {
			ready++
		}
	}
	if ready != 1 {
		t.Fatalf("%d workers ready after the kill, want exactly 1", ready)
	}
	if stats.Coordinator.Forwards == 0 {
		t.Fatal("coordinator recorded no forwards")
	}
	fmt.Printf("smoke: survived kill-one drill, %d forwards total\n", stats.Coordinator.Forwards)

	// Graceful coordinator shutdown.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM hqsc: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hqsc exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hqsc did not shut down after SIGTERM")
	}
	// Drain the surviving worker too.
	workerCmds[1].Process.Signal(syscall.SIGTERM)
	workerCmds[1].Wait()
}
