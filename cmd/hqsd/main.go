// Command hqsd serves the DQBF solvers over HTTP: clients POST problem
// instances in any supported format — DQDIMACS, QDIMACS, AIGER, or BENCH —
// the daemon schedules them on a bounded worker pool (engine hqs, idq,
// defex, expand, or a portfolio racing all four), and results are polled or
// awaited as JSON. The input format is taken from the Content-Type header
// when it names one (application/x-dqdimacs, -qdimacs, -aiger, -bench,
// -pqe) and sniffed from the body otherwise, and the cache/store key is the
// canonical hash of the normalized problem, so the same instance POSTed in
// different formats shares one cache entry. SIGTERM/SIGINT triggers a
// graceful drain: the health check flips to 503, queued and running jobs
// finish (up to -drain-timeout, after which they are cancelled), then the
// listener shuts down.
//
// API:
//
//	POST   /jobs?engine=portfolio&timeout=30s   body: problem   -> 202 job snapshot | 429 queue full
//	GET    /jobs/{id}                                           -> job snapshot
//	GET    /jobs/{id}/trace                                     -> per-pass pipeline trace (see internal/trace)
//	DELETE /jobs/{id}                                           -> cancel job
//	POST   /solve?engine=hqs&timeout=10s        body: problem   -> 200 finished job | 504 request timeout
//	POST   /pqe?timeout=10s                     body: PQE query -> 200 clause set Q | 400 not a PQE query
//	GET    /healthz                                             -> liveness: 200 ok | 503 shutting down
//	GET    /readyz                                              -> readiness: 200 ready | 503 draining or saturated
//	GET    /stats                                               -> scheduler counters
//
// A PQE query ("p pqe" header, see internal/problem) is answered
// synchronously on /pqe with the clause set Q satisfying
// Q ∧ ∃X[G] ≡ ∃X[F ∧ G]; POSTing one to /solve is a 400.
//
// Limit query parameters: timeout (Go duration), conflicts, decisions
// (CDCL caps), nodes (AIG node cap). Oversized bodies get 413 (-max-body).
//
// Failure handling: engine panics and oracle errors are contained per job
// (verdict ERROR, worker survives), transient failures are retried with
// backoff and fall back along hqs → portfolio → idq; -retry-attempts,
// -retry-base-delay, and -retry-max-delay tune the policy. The -faults flag
// activates a fault-injection plan (see internal/faults) for chaos drills,
// e.g. -faults 'sat.solve:panic:p=0.1;cache.lookup:error:every=3'.
//
// Persistence: -store DIR keeps definitive verdicts and their Skolem
// certificates in a crash-safe on-disk store (see internal/store) consulted
// on memory-cache misses; certificates are re-verified before a stored SAT
// verdict is served, corrupt entries are quarantined and re-solved, and a
// restart after kill -9 reports which jobs were in flight. The dqbfstore
// tool maintains the directory offline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrent solver workers")
		queueCap     = flag.Int("queue", 64, "job queue capacity")
		cacheSize    = flag.Int("cache-size", 256, "LRU result cache entries (negative = disable)")
		engine       = flag.String("engine", "portfolio", "default engine: hqs | idq | defex | expand | portfolio")
		defTimeout   = flag.Duration("default-timeout", 0, "per-job timeout when the client sets none (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 0, "clamp on per-job timeouts (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		maxBody      = flag.Int64("max-body", 64<<20, "request body size limit in bytes")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request bound on blocking /solve calls (0 = none)")
		faultSpec    = flag.String("faults", "", "fault-injection plan for chaos drills, e.g. 'sat.solve:panic:p=0.1'")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for probabilistic fault rules")
		traceEvents  = flag.Int("trace-events", 0, "per-job pass-trace retention in events (0 = default 1024, negative = disable)")
		certify      = flag.Bool("certify", false, "verify a Skolem certificate before reporting any HQS SAT verdict")
		storeDir     = flag.String("store", "", "directory for the persistent result/certificate store (empty = memory cache only)")
		historySize  = flag.Int("history", 0, "finished jobs kept queryable before eviction (0 = default 512)")
		retryMax     = flag.Int("retry-attempts", 0, "runs per engine in the fallback chain, first included (0 = default 2)")
		retryBase    = flag.Duration("retry-base-delay", 0, "backoff before the first retry, doubling per retry (0 = default 5ms)")
		retryCeiling = flag.Duration("retry-max-delay", 0, "ceiling on the exponential retry backoff (0 = default 250ms)")
	)
	flag.Parse()

	eng, err := service.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hqsd:", err)
		os.Exit(1)
	}
	service.SetCertifyHQS(*certify)
	if *faultSpec != "" {
		plan, err := faults.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsd:", err)
			os.Exit(1)
		}
		faults.Activate(plan)
		log.Printf("hqsd: fault injection ACTIVE: %s (seed %d)", *faultSpec, *faultSeed)
	}
	var st *store.Store
	if *storeDir != "" {
		var lost []store.LostJob
		st, lost, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hqsd:", err)
			os.Exit(1)
		}
		for _, lj := range lost {
			log.Printf("hqsd: job %s (formula %.12s) was in flight when the previous process died; it will be re-solved on demand", lj.ID, lj.Key)
		}
		log.Printf("hqsd: persistent store open at %s (%d entries, %d jobs lost in previous run)", *storeDir, st.Len(), len(lost))
	}
	sched := service.NewScheduler(service.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		CacheSize:      *cacheSize,
		HistorySize:    *historySize,
		DefaultEngine:  eng,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		TraceEvents:    *traceEvents,
		Retry: service.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryCeiling,
		},
		Store: st,
	})
	srv := httpapi.New(sched)
	srv.MaxBody = *maxBody
	srv.RequestTimeout = *reqTimeout
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Slow-loris protection; bodies are bounded per handler instead so a
		// large legitimate instance can still stream in.
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("hqsd: %v received, draining (grace %v)", sig, *drainTimeout)
		srv.SetHealthy(false)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := sched.Drain(ctx); err != nil {
			log.Printf("hqsd: drain cut short: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("hqsd: shutdown: %v", err)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("hqsd: closing store: %v", err)
			}
		}
	}()

	log.Printf("hqsd: listening on %s (workers %d, queue %d, engine %s)", *addr, *workers, *queueCap, eng)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("hqsd: %v", err)
	}
	<-done
	log.Print("hqsd: drained, bye")
}
