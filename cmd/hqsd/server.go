package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/dqbf"
	"repro/internal/service"
)

// server routes HTTP requests onto a service.Scheduler.
type server struct {
	sched *service.Scheduler
	// healthy flips to false when shutdown begins so load balancers stop
	// routing to a draining instance before the listener closes.
	healthy atomic.Bool
	// maxBody bounds request bodies (DQDIMACS text) in bytes.
	maxBody int64
}

func newServer(sched *service.Scheduler) *server {
	s := &server{sched: sched, maxBody: 64 << 20}
	s.healthy.Store(true)
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parseJobRequest reads a DQDIMACS body and the engine/limit query
// parameters shared by /jobs and /solve.
func (s *server) parseJobRequest(w http.ResponseWriter, r *http.Request) (*dqbf.Formula, service.Engine, service.Limits, bool) {
	q := r.URL.Query()
	eng, err := service.ParseEngine(q.Get("engine"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", service.Limits{}, false
	}
	var lim service.Limits
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout: %w", err))
			return nil, "", service.Limits{}, false
		}
		lim.Timeout = d
	}
	intParam := func(name string) (int64, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseInt(v, 10, 64)
	}
	if lim.Conflicts, err = intParam("conflicts"); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad conflicts: %w", err))
		return nil, "", service.Limits{}, false
	}
	if lim.Decisions, err = intParam("decisions"); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad decisions: %w", err))
		return nil, "", service.Limits{}, false
	}
	nodes, err := intParam("nodes")
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad nodes: %w", err))
		return nil, "", service.Limits{}, false
	}
	lim.Nodes = int(nodes)

	f, err := dqbf.ParseDQDIMACS(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", service.Limits{}, false
	}
	return f, eng, lim, true
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) (*service.Job, bool) {
	f, eng, lim, ok := s.parseJobRequest(w, r)
	if !ok {
		return nil, false
	}
	job, err := s.sched.Submit(f, eng, lim)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	case errors.Is(err, service.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return job, true
}

// handleSubmit enqueues a job and returns its snapshot without waiting.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleSolve submits and blocks until the job finishes (or the client goes
// away, in which case the job is cancelled).
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.Info())
	case <-r.Context().Done():
		s.sched.Cancel(job.ID())
		<-job.Done()
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, service.ErrNoSuchJob)
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !s.healthy.Load() || s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}
