//go:build smoke

package main

// The smoke test drives the real hqsd binary end to end: build, start,
// health-check, solve the repository's example instance over HTTP in
// portfolio mode, then shut down gracefully with SIGTERM. Run it via
// `make serve-smoke` (it is tag-gated so ordinary `go test ./...` stays
// hermetic and fast).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "hqsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-drain-timeout", "10s")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hqsd: %v", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("hqsd never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Readiness must agree with liveness on an idle instance.
	if resp, err := http.Get(base + "/readyz"); err != nil {
		t.Fatalf("GET /readyz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz = %d on an idle instance", resp.StatusCode)
		}
	}

	instance, err := os.ReadFile("../../examples/example1.dqdimacs")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	resp, err := http.Post(base+"/solve?engine=portfolio&timeout=30s", "text/plain", strings.NewReader(string(instance)))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Outcome == nil || info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("solve over HTTP: status %d, info %+v", resp.StatusCode, info)
	}
	fmt.Printf("smoke: %s solved example1 -> %v (engine %s) in %dms\n",
		addr, info.Outcome.Verdict, info.Outcome.Engine, info.SolveTimeMS)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hqsd exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hqsd did not drain after SIGTERM")
	}
}

// TestStoreKillRecoverySmoke is the persistence acceptance drill: an hqsd
// with -store solves an instance, dies to SIGKILL (no drain, no journal
// close), and a fresh process over the same directory serves the result from
// disk — certificate re-verified — instead of re-solving.
func TestStoreKillRecoverySmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "hqsd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(dir, "results")
	instance, err := os.ReadFile("../../examples/example1.dqdimacs")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}

	start := func() (*exec.Cmd, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-store", storeDir, "-certify")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start hqsd: %v", err)
		}
		base := "http://" + addr
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, base
				}
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				t.Fatalf("hqsd never became healthy: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	solve := func(base string) service.JobInfo {
		resp, err := http.Post(base+"/solve?engine=idq&timeout=30s", "text/plain", strings.NewReader(string(instance)))
		if err != nil {
			t.Fatalf("POST /solve: %v", err)
		}
		defer resp.Body.Close()
		var info service.JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.StatusCode != http.StatusOK || info.Outcome == nil {
			t.Fatalf("solve: status %d, info %+v", resp.StatusCode, info)
		}
		return info
	}

	cmd1, base1 := start()
	defer cmd1.Process.Kill()
	if out := solve(base1).Outcome; out.Verdict != service.VerdictSat || out.FromStore {
		t.Fatalf("cold solve: %+v", out)
	}
	// kill -9: no drain, no store close, journal left open.
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	cmd1.Wait()

	cmd2, base2 := start()
	defer cmd2.Process.Kill()
	out := solve(base2).Outcome
	if out.Verdict != service.VerdictSat || !out.FromStore {
		t.Fatalf("restart did not serve from the store: %+v", out)
	}
	var stats service.Stats
	resp, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if stats.StoreHits != 1 || stats.Store == nil || stats.Store.Hits != 1 {
		t.Fatalf("post-restart stats: %+v / %+v", stats, stats.Store)
	}
	fmt.Printf("smoke: result survived SIGKILL and served from %s with certificate re-verified\n", storeDir)
	cmd2.Process.Signal(syscall.SIGTERM)
	cmd2.Wait()
}
