//go:build smoke

package main

// The smoke test drives the real hqsd binary end to end: build, start,
// health-check, solve the repository's example instance over HTTP in
// portfolio mode, then shut down gracefully with SIGTERM. Run it via
// `make serve-smoke` (it is tag-gated so ordinary `go test ./...` stays
// hermetic and fast).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "hqsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-drain-timeout", "10s")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hqsd: %v", err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("hqsd never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Readiness must agree with liveness on an idle instance.
	if resp, err := http.Get(base + "/readyz"); err != nil {
		t.Fatalf("GET /readyz: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz = %d on an idle instance", resp.StatusCode)
		}
	}

	instance, err := os.ReadFile("../../examples/example1.dqdimacs")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	resp, err := http.Post(base+"/solve?engine=portfolio&timeout=30s", "text/plain", strings.NewReader(string(instance)))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Outcome == nil || info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("solve over HTTP: status %d, info %+v", resp.StatusCode, info)
	}
	fmt.Printf("smoke: %s solved example1 -> %v (engine %s) in %dms\n",
		addr, info.Outcome.Verdict, info.Outcome.Engine, info.SolveTimeMS)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hqsd exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hqsd did not drain after SIGTERM")
	}
}
