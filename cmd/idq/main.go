// Command idq is the instantiation-based DQBF baseline solver: it reads a
// DQDIMACS (or QDIMACS) formula and decides it by counterexample-guided
// expansion, printing SAT, UNSAT, or UNKNOWN with the conventional solver
// exit codes (10 for SAT, 20 for UNSAT, 1 for errors, 2 for
// unknown/resource-outs). The -engine flag can redirect the solve to the
// HQS core or a portfolio racing both engines; -timeout is enforced through
// a cancellable budget that interrupts running SAT oracles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/budget"
	"repro/internal/dqbf"
	"repro/internal/idq"
	"repro/internal/service"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 0, "wall-clock limit (0 = none)")
		engine  = flag.String("engine", "idq", "solver engine: idq | hqs | portfolio")
		maxInst = flag.Int("max-instantiations", 0, "instantiated clause limit (0 = none)")
		workers = flag.Int("workers", 0, "cap on OS threads running Go code (0 = leave GOMAXPROCS alone)")
		stats   = flag.Bool("stats", false, "print solver statistics to stderr")
	)
	flag.Parse()

	// The CEGAR expansion loop itself is serial; -workers exists for flag
	// parity with hqs and bounds the runtime's parallelism (GC, timers) so
	// both solvers can be benchmarked under identical CPU budgets.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "idq:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := dqbf.ParseDQDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idq:", err)
		os.Exit(1)
	}
	if err := formula.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "idq:", err)
		os.Exit(1)
	}

	bud := budget.New(budget.Limits{Timeout: *timeout})

	if *engine != "idq" {
		eng, err := service.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idq:", err)
			os.Exit(1)
		}
		start := time.Now()
		out, err := service.Run(formula, eng, bud)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idq:", err)
			os.Exit(1)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "c time      %v\n", time.Since(start))
			fmt.Fprintf(os.Stderr, "c engine    %s\n", out.Engine)
			fmt.Fprintf(os.Stderr, "c reason    %s\n", out.Reason)
			fmt.Fprintf(os.Stderr, "c conflicts %d, decisions %d\n", out.Conflicts, out.Decisions)
		}
		fmt.Println(out.Verdict)
		switch out.Verdict {
		case service.VerdictSat:
			os.Exit(10)
		case service.VerdictUnsat:
			os.Exit(20)
		default:
			os.Exit(2)
		}
	}

	start := time.Now()
	res := idq.New(idq.Options{Budget: bud, MaxInstantiations: *maxInst}).Solve(formula)
	elapsed := time.Since(start)

	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "c time           %v\n", elapsed)
		fmt.Fprintf(os.Stderr, "c iterations     %d\n", st.Iterations)
		fmt.Fprintf(os.Stderr, "c instantiations %d\n", st.Instantiations)
		fmt.Fprintf(os.Stderr, "c sat calls      %d abstraction, %d verification\n", st.AbstractionSAT, st.VerifySAT)
		fmt.Fprintf(os.Stderr, "c table entries  %d\n", st.TableEntries)
	}
	switch res.Status {
	case idq.Solved:
		if res.Sat {
			fmt.Println("SAT")
			os.Exit(10)
		}
		fmt.Println("UNSAT")
		os.Exit(20)
	case idq.Timeout:
		fmt.Println("TIMEOUT")
	case idq.Memout:
		fmt.Println("MEMOUT")
	default:
		fmt.Println("UNKNOWN")
	}
	os.Exit(2)
}
