// Command idq is the instantiation-based DQBF baseline solver: it reads a
// DQDIMACS (or QDIMACS) formula and decides it by counterexample-guided
// expansion, printing SAT or UNSAT with the conventional solver exit codes
// (10 for SAT, 20 for UNSAT, 1 for errors, 2 for resource-outs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/dqbf"
	"repro/internal/idq"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 0, "wall-clock limit (0 = none)")
		maxInst = flag.Int("max-instantiations", 0, "instantiated clause limit (0 = none)")
		workers = flag.Int("workers", 0, "cap on OS threads running Go code (0 = leave GOMAXPROCS alone)")
		stats   = flag.Bool("stats", false, "print solver statistics to stderr")
	)
	flag.Parse()

	// The CEGAR expansion loop itself is serial; -workers exists for flag
	// parity with hqs and bounds the runtime's parallelism (GC, timers) so
	// both solvers can be benchmarked under identical CPU budgets.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "idq:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	formula, err := dqbf.ParseDQDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "idq:", err)
		os.Exit(1)
	}
	if err := formula.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "idq:", err)
		os.Exit(1)
	}

	start := time.Now()
	res := idq.New(idq.Options{Timeout: *timeout, MaxInstantiations: *maxInst}).Solve(formula)
	elapsed := time.Since(start)

	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "c time           %v\n", elapsed)
		fmt.Fprintf(os.Stderr, "c iterations     %d\n", st.Iterations)
		fmt.Fprintf(os.Stderr, "c instantiations %d\n", st.Instantiations)
		fmt.Fprintf(os.Stderr, "c sat calls      %d abstraction, %d verification\n", st.AbstractionSAT, st.VerifySAT)
		fmt.Fprintf(os.Stderr, "c table entries  %d\n", st.TableEntries)
	}
	switch res.Status {
	case idq.Solved:
		if res.Sat {
			fmt.Println("SAT")
			os.Exit(10)
		}
		fmt.Println("UNSAT")
		os.Exit(20)
	case idq.Timeout:
		fmt.Println("TIMEOUT")
	case idq.Memout:
		fmt.Println("MEMOUT")
	}
	os.Exit(2)
}
