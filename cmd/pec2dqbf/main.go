// Command pec2dqbf encodes a partial equivalence checking problem as a DQBF
// in DQDIMACS format (the encoding of Gitina et al., ICCD 2013).
//
// The specification and the incomplete implementation are given as BENCH
// netlists; signals referenced but never driven in the implementation are
// its black-box outputs. Each -box flag declares one black box as
// NAME:out1,out2,...:in1,in2,... (signal names in the implementation). When
// no -box flag is given, every free signal becomes its own black box whose
// inputs are the primary inputs (a coarse but safe default).
//
// Usage:
//
//	pec2dqbf -spec spec.bench -impl impl.bench [-box b:outs:ins]... [-o out.dqdimacs]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/pec"
	"repro/internal/problem"
)

type boxFlags []string

func (b *boxFlags) String() string { return strings.Join(*b, " ") }
func (b *boxFlags) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func main() {
	var (
		specPath = flag.String("spec", "", "specification BENCH netlist (required)")
		implPath = flag.String("impl", "", "implementation BENCH netlist with free signals (required)")
		outPath  = flag.String("o", "", "output DQDIMACS file (default: stdout)")
		boxes    boxFlags
	)
	flag.Var(&boxes, "box", "black box as NAME:out1,out2:in1,in2 (repeatable)")
	flag.Parse()
	if *specPath == "" || *implPath == "" {
		flag.Usage()
		os.Exit(1)
	}

	spec, err := loadBench(*specPath)
	if err != nil {
		fatal(err)
	}
	impl, err := loadBench(*implPath)
	if err != nil {
		fatal(err)
	}

	problem := &pec.Problem{Spec: spec, Impl: impl}
	if len(boxes) == 0 {
		for _, id := range impl.FreeSignals() {
			problem.Boxes = append(problem.Boxes, pec.BlackBox{
				Name:    impl.Name(id),
				Inputs:  append([]int(nil), impl.Inputs...),
				Outputs: []int{id},
			})
		}
	} else {
		for _, spec := range boxes {
			b, err := parseBox(impl, spec)
			if err != nil {
				fatal(err)
			}
			problem.Boxes = append(problem.Boxes, b)
		}
	}

	formula, err := problem.ToDQBF()
	if err != nil {
		fatal(err)
	}
	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintf(out, "c PEC instance: spec=%s impl=%s boxes=%d\n", *specPath, *implPath, len(problem.Boxes))
	if err := formula.WriteDQDIMACS(out); err != nil {
		fatal(err)
	}
}

func loadBench(path string) (*circuit.Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Route through the unified ingestion layer so BENCH parsing shares the
	// problem.parse fault point with every other reader.
	return problem.ReadBenchCircuit(f)
}

func parseBox(impl *circuit.Circuit, s string) (pec.BlackBox, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return pec.BlackBox{}, fmt.Errorf("pec2dqbf: -box wants NAME:outs:ins, got %q", s)
	}
	b := pec.BlackBox{Name: parts[0]}
	for _, n := range strings.Split(parts[1], ",") {
		id := impl.Signal(strings.TrimSpace(n))
		if id < 0 {
			return b, fmt.Errorf("pec2dqbf: unknown output signal %q", n)
		}
		b.Outputs = append(b.Outputs, id)
	}
	for _, n := range strings.Split(parts[2], ",") {
		id := impl.Signal(strings.TrimSpace(n))
		if id < 0 {
			return b, fmt.Errorf("pec2dqbf: unknown input signal %q", n)
		}
		b.Inputs = append(b.Inputs, id)
	}
	return b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pec2dqbf:", err)
	os.Exit(1)
}
