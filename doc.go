// Package repro is a from-scratch Go reproduction of "Solving DQBF Through
// Quantifier Elimination" (Gitina, Wimmer, Reimer, Sauer, Scholl, Becker;
// DATE 2015): the HQS solver for dependency quantified Boolean formulas, the
// substrates it builds on (CDCL SAT, partial MaxSAT, And-Inverter Graphs, an
// AIG-based QBF solver), the iDQ-style instantiation baseline it is compared
// against, the partial-equivalence-checking application, and a benchmark
// harness regenerating every table and figure of the paper's evaluation.
//
// The root package holds the evaluation benchmarks (bench_test.go); the
// implementation lives under internal/ — see DESIGN.md for the system
// inventory and per-experiment index, EXPERIMENTS.md for the
// paper-vs-measured record, and README.md for usage.
package repro
