// AIG analysis example: reproduces the paper's Fig. 1 / Examples 2 and 4 —
// building an And-Inverter Graph, evaluating it, and running the syntactic
// unit/pure-variable detection of Theorem 6, including the incompleteness
// the paper points out (y1 is semantically pure but the syntactic check
// misses it on this graph structure).
package main

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/cnf"
)

func main() {
	g := aig.New()
	// Variables as in Fig. 1: y1=1, y2=2, x1=3, x2=4.
	y1, y2 := g.Input(1), g.Input(2)
	x1, x2 := g.Input(3), g.Input(4)

	// φ = (y1∨x1) ∧ (y1∨x2) ∧ (¬x1∨y2) ∧ (¬x2∨y2), with the first clause in
	// the figure's redundant form ¬(¬(¬y1∧x1) ∧ ¬y1).
	c1 := g.And(g.And(y1.Not(), x1).Not(), y1.Not()).Not()
	c2 := g.And(y1.Not(), x2.Not()).Not()
	c3 := g.And(x1, y2.Not()).Not()
	c4 := g.And(x2, y2.Not()).Not()
	phi := g.And(g.And(c1, c2), g.And(c3, c4))

	fmt.Println("graph:", g)
	fmt.Println("cone size (AND gates):", g.ConeSize(phi))
	fmt.Println("support:", keys(g.Support(phi)))

	// Example 2: the AIG computes the CNF (y1∨x1)(y1∨x2)(¬x1∨y2)(¬x2∨y2).
	check := func(vals map[cnf.Var]bool) bool {
		want := (vals[1] || vals[3]) && (vals[1] || vals[4]) &&
			(!vals[3] || vals[2]) && (!vals[4] || vals[2])
		got := g.Eval(phi, func(v cnf.Var) bool { return vals[v] })
		return got == want
	}
	ok := true
	for bits := 0; bits < 16; bits++ {
		ok = ok && check(map[cnf.Var]bool{
			1: bits&1 != 0, 2: bits&2 != 0, 3: bits&4 != 0, 4: bits&8 != 0,
		})
	}
	fmt.Println("matches the CNF of Example 2 on all 16 assignments:", ok)

	// Example 4: syntactic unit/pure detection (Theorem 6).
	names := map[cnf.Var]string{1: "y1", 2: "y2", 3: "x1", 4: "x2"}
	up := g.UnitPure(phi)
	for v := cnf.Var(1); v <= 4; v++ {
		p := up[v]
		fmt.Printf("  %-3s posUnit=%-5v negUnit=%-5v posPure=%-5v negPure=%-5v\n",
			names[v], p.PosUnit, p.NegUnit, p.PosPure, p.NegPure)
	}
	fmt.Println("→ y2 is detected positive pure (both paths have 2 inverters);")
	fmt.Println("  y1 is semantically pure too, but the syntactic check fails on")
	fmt.Println("  this structure — exactly the incompleteness Example 4 notes.")

	// Quantify and sweep, showing the elimination primitives HQS uses.
	elim := g.Exists(phi, 2) // ∃y2.φ
	fmt.Println("\n∃y2.φ cone size:", g.ConeSize(elim))
	swept, stats := g.Sweep(elim, aig.DefaultSweepOptions())
	fmt.Printf("after SAT sweeping: %d AND gates (%d merges, %d SAT calls)\n",
		g.ConeSize(swept), stats.Merged, stats.SatCalls)
	fmt.Println("functionally unchanged:", g.Equivalent(elim, swept))
}

func keys(m map[cnf.Var]bool) []cnf.Var {
	var out []cnf.Var
	for v := cnf.Var(1); int(v) <= len(m)+4; v++ {
		if m[v] {
			out = append(out, v)
		}
	}
	return out
}
