// Certificates example: solving a satisfiable DQBF with the
// instantiation-based solver yields Skolem function tables — an independently
// checkable witness (the certification perspective the paper cites from
// Balabanov et al.). The example extracts the certificate for the paper's
// Example 1, prints the tables, verifies them with one SAT call, and shows
// that a tampered certificate is rejected.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

func example1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1) // x1
	f.AddUniversal(2) // x2
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func main() {
	f := example1()
	res := idq.New(idq.Options{}).Solve(f)
	if !res.Sat || res.Certificate == nil {
		log.Fatal("expected SAT with certificate")
	}
	fmt.Println("formula:", f)
	fmt.Printf("iDQ: SAT after %d refinement iterations\n\n", res.Stats.Iterations)

	fmt.Println("Skolem tables (projection of the universal assignment onto")
	fmt.Println("the dependency set → value; off-table projections default 0):")
	var ys []cnf.Var
	for y := range res.Certificate.Tables {
		ys = append(ys, y)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	for _, y := range ys {
		tab := res.Certificate.Tables[y]
		var keys []string
		for k := range tab {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  y%d over D=%v:\n", y, f.Deps[y].Vars())
		for _, k := range keys {
			fmt.Printf("    %s -> %v\n", k, tab[k])
		}
	}

	if err := res.Certificate.Verify(f); err != nil {
		log.Fatal("valid certificate rejected: ", err)
	}
	fmt.Println("\nindependent SAT-based verification: certificate VALID")

	// Tamper with one entry; the verifier pinpoints a falsifying assignment.
	for y, tab := range res.Certificate.Tables {
		for k, v := range tab {
			tab[k] = !v
			fmt.Printf("\nflipping table entry of y%d at %q ...\n", y, k)
			if err := res.Certificate.Verify(f); err != nil {
				fmt.Println("verifier correctly rejects:", err)
			} else {
				log.Fatal("tampered certificate accepted")
			}
			tab[k] = v
			return
		}
	}
}
