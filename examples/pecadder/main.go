// PEC example: partial equivalence checking of an incomplete adder — the
// workload family the paper's evaluation is built on.
//
// A 3-bit carry-lookahead adder implementation is checked against a
// ripple-carry specification after two of its per-bit cells have been
// removed (two black boxes with different input cones — exactly the
// situation QBF cannot express and DQBF can). The realizable variant is
// verified SAT; injecting a fault outside the boxes makes the design
// unrealizable, verified UNSAT.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/pec"
)

func main() {
	spec := circuit.RippleCarryAdder(3)
	impl := circuit.CarryLookaheadAdder(3)

	// Remove the generate/propagate cells of bits 0 and 2.
	solve("correct implementation, cells g0 and p2 unknown", spec, impl,
		[]string{"g0", "p2"})

	// Same cut, but the remaining logic has a fault (final carry OR→AND).
	faulty := impl.InjectFault(impl.Signal("c3"), circuit.FaultGateSwap, 0)
	solve("faulty carry logic, same black boxes", spec, faulty,
		[]string{"g0", "p2"})
}

func solve(title string, spec, impl *circuit.Circuit, cut []string) {
	var groups [][]int
	for _, name := range cut {
		id := impl.Signal(name)
		if id < 0 {
			log.Fatalf("no signal %q", name)
		}
		groups = append(groups, []int{id})
	}
	incomplete, boxes, err := pec.CutBoxes(impl, groups)
	if err != nil {
		log.Fatal(err)
	}
	problem := &pec.Problem{Spec: spec, Impl: incomplete, Boxes: boxes}
	formula, err := problem.ToDQBF()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s\n", title)
	for _, b := range boxes {
		names := make([]string, len(b.Inputs))
		for i, id := range b.Inputs {
			names[i] = incomplete.Name(id)
		}
		fmt.Printf("   box %s: inputs %v\n", b.Name, names)
	}
	fmt.Printf("   DQBF: %d universals, %d existentials, %d clauses, QBF-expressible: %v\n",
		len(formula.Univ), len(formula.Exist), len(formula.Matrix.Clauses),
		dqbf.HasQBFPrefix(formula))

	res := core.New(core.DefaultOptions()).SolveDQBF(formula)
	verdict := "UNREALIZABLE (no black-box implementation works)"
	if res.Sat {
		verdict = "REALIZABLE (suitable black-box implementations exist)"
	}
	fmt.Printf("   HQS: %s in %v (eliminated %v, %d copies)\n\n",
		verdict, res.Stats.TotalTime, res.Stats.ElimSet, res.Stats.CopiesMade)
}
