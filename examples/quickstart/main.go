// Quickstart: parse a DQBF in DQDIMACS format, inspect its prefix, and solve
// it with both HQS (quantifier elimination) and the iDQ-style baseline.
//
// The formula is Example 1 of the paper:
//
//	∀x1 ∀x2 ∃y1(x1) ∃y2(x2) : (y1 ↔ x1) ∧ (y2 ↔ x2)
//
// with variables x1=1, x2=2, y1=3, y2=4. Its dependency graph is the 2-cycle
// of Fig. 2, so there is no equivalent QBF prefix (Theorem 3) — yet the
// formula is satisfied by the Skolem functions y1 := x1, y2 := x2.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

const input = `c paper example 1
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
`

func main() {
	f, err := dqbf.ParseDQDIMACSString(input)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("formula:", f)

	// Prefix analysis (Section III-A).
	fmt.Println("has equivalent QBF prefix:", dqbf.HasQBFPrefix(f))
	fmt.Println("binary dependency cycles: ", dqbf.BinaryCycles(f))
	elim, err := core.SelectEliminationSet(f, core.ElimMaxSAT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum universal elimination set (partial MaxSAT):", elim)

	// Solve with HQS.
	res := core.New(core.DefaultOptions()).SolveDQBF(f)
	fmt.Printf("HQS: %v (sat=%v, decided by %s, %v)\n",
		res.Status, res.Sat, res.Stats.DecidedBy, res.Stats.TotalTime)

	// Solve with the instantiation-based baseline.
	ires := idq.New(idq.Options{}).Solve(f)
	fmt.Printf("iDQ: %v (sat=%v, %d refinement iterations, %v)\n",
		ires.Status, ires.Sat, ires.Stats.Iterations, ires.Stats.TotalTime)

	if res.Sat != ires.Sat {
		log.Fatal("solvers disagree!")
	}
}
