// Solver race: generates a slice of the paper's benchmark families and runs
// HQS against the iDQ baseline, printing a miniature version of Table I —
// a quick way to see the elimination-based approach win by orders of
// magnitude on instances with several black boxes.
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
)

func main() {
	gen := bench.GenOptions{Count: 5, Seed: 1, MaxWidth: 4}
	opt := bench.DefaultRunOptions()
	opt.Timeout = 2 * time.Second

	fmt.Printf("%-28s %6s %12s %12s %10s\n", "instance", "result", "HQS", "iDQ", "speedup")
	for _, fam := range []bench.Family{bench.FamilyAdder, bench.FamilyBitcell, bench.FamilyPecXor} {
		insts, err := bench.Generate(fam, gen)
		if err != nil {
			panic(err)
		}
		for _, inst := range insts {
			h := bench.RunHQS(inst, opt)
			q := bench.RunIDQ(inst, opt)
			verdict := "?"
			if h.Outcome == bench.OutcomeSolved {
				if h.Sat {
					verdict = "SAT"
				} else {
					verdict = "UNSAT"
				}
			}
			idqCol := fmt.Sprintf("%.4fs", q.Seconds)
			if q.Outcome != bench.OutcomeSolved {
				idqCol = q.Outcome.String()
			}
			speedup := ""
			if h.Seconds > 0 {
				speedup = fmt.Sprintf("%8.0fx", q.Seconds/h.Seconds)
			}
			fmt.Printf("%-28s %6s %11.4fs %12s %10s\n",
				inst.Name, verdict, h.Seconds, idqCol, speedup)
		}
	}
}
