// Package aig implements And-Inverter Graphs (AIGs): Boolean-circuit
// representations built from two-input AND gates and edge complement bits
// (inverters). AIGs are the matrix representation of HQS and of the QBF
// back-end solver, mirroring the aigpp library used in the paper.
//
// A Graph is a structurally hashed DAG. References (Ref) follow the AIGER
// literal convention: the constant false is Ref 0, true is Ref 1, and node i
// contributes references 2i (plain) and 2i+1 (complemented). Structural
// hashing with two-level simplification rules keeps the graph
// non-redundant; pseudo-canonicity in the FRAIG sense is restored on demand
// by SAT sweeping (see sweep.go).
//
// The package provides the full operation set HQS requires: Boolean
// connectives, composition (substitution of functions for input variables),
// cofactors, single-variable existential/universal quantification, support
// computation, Tseitin CNF export, 64-way parallel simulation, and the
// syntactic unit/pure-variable detection of the paper's Theorem 6.
package aig

import (
	"fmt"
	"slices"

	"repro/internal/cnf"
)

// Ref is an edge into the graph: a node index shifted left by one with the
// low bit holding the complement flag. Ref 0 is constant false, Ref 1
// constant true.
type Ref int32

// False and True are the constant references.
const (
	False Ref = 0
	True  Ref = 1
)

// Not returns the complement of r.
func (r Ref) Not() Ref { return r ^ 1 }

// Compl reports whether r is complemented.
func (r Ref) Compl() bool { return r&1 == 1 }

// node reports the node index of r.
func (r Ref) node() int32 { return int32(r) >> 1 }

// XorSign complements r when s is true.
func (r Ref) XorSign(s bool) Ref {
	if s {
		return r ^ 1
	}
	return r
}

// IsConst reports whether r is one of the constants.
func (r Ref) IsConst() bool { return r.node() == 0 }

// node is an AIG node: either an input (var != 0) or an AND gate.
type node struct {
	f0, f1 Ref     // fanins of an AND gate
	v      cnf.Var // nonzero for input nodes
	sim    uint64  // scratch word for parallel simulation
}

// ErrNodeLimit is the panic value raised when the graph exceeds its node
// limit; solvers recover it to report memory-out.
type ErrNodeLimit struct{ Limit int }

func (e ErrNodeLimit) Error() string {
	return fmt.Sprintf("aig: node limit %d exceeded", e.Limit)
}

// Graph is a structurally hashed AIG manager.
type Graph struct {
	nodes  []node
	strash map[[2]Ref]Ref
	inputs map[cnf.Var]Ref // var -> plain input ref

	// NodeLimit, when positive, bounds the node count; exceeding it panics
	// with ErrNodeLimit (the analogue of the paper's 8 GB memory-out).
	NodeLimit int
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{
		strash: make(map[[2]Ref]Ref),
		inputs: make(map[cnf.Var]Ref),
	}
	g.nodes = append(g.nodes, node{}) // node 0: constant
	return g
}

// NumNodes returns the number of nodes (constant and inputs included).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND gates in the graph.
func (g *Graph) NumAnds() int {
	n := 0
	for i := 1; i < len(g.nodes); i++ {
		if g.nodes[i].v == 0 {
			n++
		}
	}
	return n
}

// Input returns the (plain) reference of the input node for variable v,
// creating it on first use.
func (g *Graph) Input(v cnf.Var) Ref {
	if v <= 0 {
		panic("aig: invalid input variable")
	}
	if r, ok := g.inputs[v]; ok {
		return r
	}
	r := g.newNode(node{v: v})
	g.inputs[v] = r
	return r
}

// InputVar returns the variable of an input reference, or 0 if r does not
// point at an input node.
func (g *Graph) InputVar(r Ref) cnf.Var {
	n := r.node()
	if n <= 0 || int(n) >= len(g.nodes) {
		return 0
	}
	return g.nodes[n].v
}

// IsInput reports whether r references an input node.
func (g *Graph) IsInput(r Ref) bool { return g.InputVar(r) != 0 }

func (g *Graph) newNode(n node) Ref {
	if g.NodeLimit > 0 && len(g.nodes) >= g.NodeLimit {
		panic(ErrNodeLimit{g.NodeLimit})
	}
	g.nodes = append(g.nodes, n)
	return Ref(int32(len(g.nodes)-1) << 1)
}

// And returns a reference for a∧b, applying two-level simplification rules
// and structural hashing.
func (g *Graph) And(a, b Ref) Ref {
	// Constant and trivial rules.
	switch {
	case a == False || b == False || a == b.Not():
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Ref{a, b}
	if r, ok := g.strash[key]; ok {
		return r
	}
	r := g.newNode(node{f0: a, f1: b})
	g.strash[key] = r
	return r
}

// Or returns a∨b.
func (g *Graph) Or(a, b Ref) Ref { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a⊕b.
func (g *Graph) Xor(a, b Ref) Ref {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns a↔b.
func (g *Graph) Xnor(a, b Ref) Ref { return g.Xor(a, b).Not() }

// Implies returns a→b.
func (g *Graph) Implies(a, b Ref) Ref { return g.Or(a.Not(), b) }

// Ite returns if c then t else e.
func (g *Graph) Ite(c, t, e Ref) Ref {
	return g.Or(g.And(c, t), g.And(c.Not(), e))
}

// AndN returns the conjunction of all references (True for none), built as a
// balanced tree to keep depth logarithmic.
func (g *Graph) AndN(refs ...Ref) Ref {
	switch len(refs) {
	case 0:
		return True
	case 1:
		return refs[0]
	}
	mid := len(refs) / 2
	return g.And(g.AndN(refs[:mid]...), g.AndN(refs[mid:]...))
}

// OrN returns the disjunction of all references (False for none).
func (g *Graph) OrN(refs ...Ref) Ref {
	neg := make([]Ref, len(refs))
	for i, r := range refs {
		neg[i] = r.Not()
	}
	return g.AndN(neg...).Not()
}

// Eval evaluates the function rooted at r under the given input assignment.
func (g *Graph) Eval(r Ref, assign func(cnf.Var) bool) bool {
	memo := make(map[int32]bool)
	var rec func(Ref) bool
	rec = func(e Ref) bool {
		n := e.node()
		var val bool
		if n == 0 {
			val = false
		} else if cached, ok := memo[n]; ok {
			val = cached
		} else {
			nd := &g.nodes[n]
			if nd.v != 0 {
				val = assign(nd.v)
			} else {
				val = rec(nd.f0) && rec(nd.f1)
			}
			memo[n] = val
		}
		return val != e.Compl()
	}
	return rec(r)
}

// coneNodes returns the node indices reachable from the roots (excluding the
// constant node) in ascending (topological) order.
func (g *Graph) coneNodes(roots ...Ref) []int32 {
	seen := make(map[int32]bool)
	var stack []int32
	for _, r := range roots {
		if n := r.node(); n != 0 && !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &g.nodes[n]
		if nd.v != 0 {
			continue
		}
		for _, f := range []Ref{nd.f0, nd.f1} {
			if c := f.node(); c != 0 && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	// Node indices are a topological order by construction.
	slices.Sort(out)
	return out
}

// ConeRefs returns plain (uncomplemented) references for every node in the
// cone of r, in topological order.
func (g *Graph) ConeRefs(r Ref) []Ref {
	nodes := g.coneNodes(r)
	out := make([]Ref, len(nodes))
	for i, n := range nodes {
		out[i] = Ref(n << 1)
	}
	return out
}

// Fanins returns the fanin edges of an AND node and true, or zero values and
// false if r references an input or constant.
func (g *Graph) Fanins(r Ref) (f0, f1 Ref, isAnd bool) {
	n := r.node()
	if n <= 0 || int(n) >= len(g.nodes) || g.nodes[n].v != 0 {
		return 0, 0, false
	}
	return g.nodes[n].f0, g.nodes[n].f1, true
}

// Support returns the set of input variables the function rooted at r
// depends on syntactically.
func (g *Graph) Support(r Ref) map[cnf.Var]bool {
	out := make(map[cnf.Var]bool)
	for _, n := range g.coneNodes(r) {
		if v := g.nodes[n].v; v != 0 {
			out[v] = true
		}
	}
	return out
}

// ConeSize returns the number of AND nodes in the cone of r.
func (g *Graph) ConeSize(r Ref) int {
	c := 0
	for _, n := range g.coneNodes(r) {
		if g.nodes[n].v == 0 {
			c++
		}
	}
	return c
}

// String renders a short description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("aig.Graph{nodes: %d, ands: %d, inputs: %d}",
		g.NumNodes(), g.NumAnds(), len(g.inputs))
}
