package aig

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

// truthTable returns the truth table of r over the ordered variables vs.
func truthTable(g *Graph, r Ref, vs []cnf.Var) []bool {
	n := len(vs)
	out := make([]bool, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		a := make(map[cnf.Var]bool, n)
		for i, v := range vs {
			a[v] = bits&(1<<i) != 0
		}
		out[bits] = g.Eval(r, func(v cnf.Var) bool { return a[v] })
	}
	return out
}

func eqTables(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConstants(t *testing.T) {
	g := New()
	if True.Not() != False || False.Not() != True {
		t.Fatal("constant complement broken")
	}
	if !g.Eval(True, nil) || g.Eval(False, nil) {
		t.Fatal("constant evaluation broken")
	}
	if g.And(True, False) != False || g.And(True, True) != True {
		t.Fatal("constant AND broken")
	}
	if g.Or(False, False) != False || g.Or(True, False) != True {
		t.Fatal("constant OR broken")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New()
	x := g.Input(1)
	y := g.Input(2)
	if g.And(x, x) != x {
		t.Error("x∧x ≠ x")
	}
	if g.And(x, x.Not()) != False {
		t.Error("x∧¬x ≠ 0")
	}
	if g.And(x, True) != x || g.And(True, x) != x {
		t.Error("x∧1 ≠ x")
	}
	if g.And(x, False) != False {
		t.Error("x∧0 ≠ 0")
	}
	// Structural hashing: same arguments give the same node.
	if g.And(x, y) != g.And(y, x) {
		t.Error("AND not commutatively hashed")
	}
	before := g.NumNodes()
	g.And(x, y)
	if g.NumNodes() != before {
		t.Error("structural hashing failed to reuse node")
	}
}

func TestDerivedOps(t *testing.T) {
	g := New()
	x, y, z := g.Input(1), g.Input(2), g.Input(3)
	vs := []cnf.Var{1, 2, 3}
	checks := []struct {
		name string
		r    Ref
		f    func(a, b, c bool) bool
	}{
		{"or", g.Or(x, y), func(a, b, _ bool) bool { return a || b }},
		{"xor", g.Xor(x, y), func(a, b, _ bool) bool { return a != b }},
		{"xnor", g.Xnor(x, y), func(a, b, _ bool) bool { return a == b }},
		{"implies", g.Implies(x, y), func(a, b, _ bool) bool { return !a || b }},
		{"ite", g.Ite(x, y, z), func(a, b, c bool) bool {
			if a {
				return b
			}
			return c
		}},
	}
	for _, c := range checks {
		tt := truthTable(g, c.r, vs)
		for bits := 0; bits < 8; bits++ {
			want := c.f(bits&1 != 0, bits&2 != 0, bits&4 != 0)
			if tt[bits] != want {
				t.Errorf("%s: bits %03b: got %v want %v", c.name, bits, tt[bits], want)
			}
		}
	}
}

func TestAndNOrN(t *testing.T) {
	g := New()
	var refs []Ref
	for v := cnf.Var(1); v <= 5; v++ {
		refs = append(refs, g.Input(v))
	}
	and := g.AndN(refs...)
	or := g.OrN(refs...)
	if g.AndN() != True || g.OrN() != False {
		t.Fatal("empty AndN/OrN wrong")
	}
	all := func(v cnf.Var) bool { return true }
	none := func(v cnf.Var) bool { return false }
	one := func(v cnf.Var) bool { return v == 3 }
	if !g.Eval(and, all) || g.Eval(and, one) || g.Eval(and, none) {
		t.Error("AndN semantics wrong")
	}
	if !g.Eval(or, all) || !g.Eval(or, one) || g.Eval(or, none) {
		t.Error("OrN semantics wrong")
	}
}

// paperFig1 builds the AIG of the paper's Fig. 1 / Example 2:
//
//	φ = ¬(¬(¬y1∧x1) ∧ ¬y1) ∧ ¬(¬y1∧¬x2) ∧ ¬(x1∧¬y2) ∧ ¬(x2∧¬y2)
//
// which is equivalent to (y1∨x1)(y1∨x2)(¬x1∨y2)(¬x2∨y2). Variables are
// y1=1, y2=2, x1=3, x2=4. The first clause uses the figure's redundant
// structure, giving y1 paths of both parities — that is what makes the
// syntactic purity check fail for y1 in Example 4.
func paperFig1(g *Graph) Ref {
	y1, y2 := g.Input(1), g.Input(2)
	x1, x2 := g.Input(3), g.Input(4)
	c1 := g.And(g.And(y1.Not(), x1).Not(), y1.Not()).Not() // y1 ∨ x1 (redundant form)
	c2 := g.And(y1.Not(), x2.Not()).Not()                  // y1 ∨ x2
	c3 := g.And(x1, y2.Not()).Not()                        // ¬x1 ∨ y2
	c4 := g.And(x2, y2.Not()).Not()                        // ¬x2 ∨ y2
	return g.And(g.And(c1, c2), g.And(c3, c4))
}

func TestPaperExample2(t *testing.T) {
	g := New()
	r := paperFig1(g)
	vs := []cnf.Var{1, 2, 3, 4}
	tt := truthTable(g, r, vs)
	for bits := 0; bits < 16; bits++ {
		y1 := bits&1 != 0
		y2 := bits&2 != 0
		x1 := bits&4 != 0
		x2 := bits&8 != 0
		want := (y1 || x1) && (y1 || x2) && (y2 || !x1) && (y2 || !x2)
		if tt[bits] != want {
			t.Fatalf("Fig.1 AIG wrong at y1=%v y2=%v x1=%v x2=%v", y1, y2, x1, x2)
		}
	}
}

func TestPaperExample4UnitPure(t *testing.T) {
	// Example 4: the syntactic check identifies y2 as positive pure (all
	// paths have an even number of inverters) and fails for y1, x1, x2.
	g := New()
	r := paperFig1(g)
	up := g.UnitPure(r)
	if !up[2].PosPure {
		t.Error("y2 should be detected positive pure")
	}
	if up[2].NegPure {
		t.Error("y2 must not be negative pure")
	}
	// y1 is semantically positive pure but the syntactic check misses it.
	if up[1].PosPure || up[1].NegPure {
		t.Error("syntactic check should fail for y1 on this structure")
	}
	if up[3].PosPure || up[3].NegPure || up[4].PosPure || up[4].NegPure {
		t.Error("x1/x2 are not pure")
	}
	for v := cnf.Var(1); v <= 4; v++ {
		if up[v].PosUnit || up[v].NegUnit {
			t.Errorf("variable %d wrongly detected unit", v)
		}
	}
}

func TestUnitDetection(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	// φ = x ∧ (y ∨ ...): x on a negation-free path is positive unit.
	r := g.And(x, g.Or(y, g.Input(3)))
	up := g.UnitPure(r)
	if !up[1].PosUnit {
		t.Error("x should be positive unit")
	}
	if up[2].PosUnit {
		t.Error("y is not unit (OR path has negations in AIG encoding)")
	}
	// φ = ¬x ∧ y: x negative unit, y positive unit.
	r2 := g.And(x.Not(), y)
	up2 := g.UnitPure(r2)
	if !up2[1].NegUnit || !up2[2].PosUnit {
		t.Errorf("got %+v; want x negUnit, y posUnit", up2)
	}
	// Degenerate: φ = x alone.
	up3 := g.UnitPure(x)
	if !up3[1].PosUnit {
		t.Error("root input should be positive unit")
	}
	up4 := g.UnitPure(x.Not())
	if !up4[1].NegUnit {
		t.Error("negated root input should be negative unit")
	}
}

// semanticCheck computes the semantic unit/pure status per Definition 5.
func semanticCheck(g *Graph, r Ref, v cnf.Var, vs []cnf.Var) Polarity {
	cof := func(val bool) Ref { return g.Cofactor(r, v, val) }
	f0, f1 := cof(false), cof(true)
	t0 := truthTable(g, f0, vs)
	t1 := truthTable(g, f1, vs)
	posUnit, negUnit := true, true
	posPure, negPure := true, true
	for i := range t0 {
		if t0[i] {
			posUnit = false // φ[0/v] satisfiable
		}
		if t1[i] {
			negUnit = false
		}
		if t0[i] && !t1[i] {
			posPure = false // φ[0/v] ∧ ¬φ[1/v] satisfiable
		}
		if t1[i] && !t0[i] {
			negPure = false
		}
	}
	return Polarity{PosUnit: posUnit, NegUnit: negUnit, PosPure: posPure, NegPure: negPure}
}

// randomAIG builds a random AIG over the given inputs.
func randomAIG(g *Graph, rng *rand.Rand, vs []cnf.Var, ops int) Ref {
	pool := make([]Ref, 0, len(vs)+ops)
	for _, v := range vs {
		pool = append(pool, g.Input(v))
	}
	for i := 0; i < ops; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		if rng.Intn(2) == 0 {
			b = b.Not()
		}
		pool = append(pool, g.And(a, b))
	}
	r := pool[len(pool)-1]
	if rng.Intn(2) == 0 {
		r = r.Not()
	}
	return r
}

func TestUnitPureSoundnessRandom(t *testing.T) {
	// Theorem 6 is a *sufficient* syntactic criterion: whenever the
	// traversal reports a flag, the semantic property of Definition 5 must
	// hold. (Completeness is not claimed by the paper.)
	rng := rand.New(rand.NewSource(7))
	vs := []cnf.Var{1, 2, 3, 4}
	for iter := 0; iter < 300; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 2+rng.Intn(10))
		up := g.UnitPure(r)
		for _, v := range vs {
			got, ok := up[v]
			if !ok {
				continue // not in support
			}
			sem := semanticCheck(g, r, v, vs)
			if got.PosUnit && !sem.PosUnit {
				t.Fatalf("iter %d: var %d flagged posUnit but not semantically", iter, v)
			}
			if got.NegUnit && !sem.NegUnit {
				t.Fatalf("iter %d: var %d flagged negUnit but not semantically", iter, v)
			}
			if got.PosPure && !sem.PosPure {
				t.Fatalf("iter %d: var %d flagged posPure but not semantically", iter, v)
			}
			if got.NegPure && !sem.NegPure {
				t.Fatalf("iter %d: var %d flagged negPure but not semantically", iter, v)
			}
		}
	}
}

func TestCompose(t *testing.T) {
	g := New()
	x, y, z := g.Input(1), g.Input(2), g.Input(3)
	r := g.And(x, g.Or(y, z))
	// Substitute x := y⊕z.
	sub := g.Compose(r, map[cnf.Var]Ref{1: g.Xor(y, z)})
	vs := []cnf.Var{2, 3}
	tt := truthTable(g, sub, vs)
	for bits := 0; bits < 4; bits++ {
		b, c := bits&1 != 0, bits&2 != 0
		want := (b != c) && (b || c)
		if tt[bits] != want {
			t.Fatalf("compose wrong at y=%v z=%v", b, c)
		}
	}
}

func TestComposeIdentityAndEmpty(t *testing.T) {
	g := New()
	x := g.Input(1)
	r := g.And(x, g.Input(2))
	if g.Compose(r, nil) != r {
		t.Error("empty substitution must be identity")
	}
	if g.Compose(r, map[cnf.Var]Ref{1: x}) != r {
		t.Error("identity substitution must be identity")
	}
}

func TestCofactorAndQuantify(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	r := g.Xor(x, y)
	c0 := g.Cofactor(r, 1, false)
	c1 := g.Cofactor(r, 1, true)
	if !eqTables(truthTable(g, c0, []cnf.Var{2}), truthTable(g, y, []cnf.Var{2})) {
		t.Error("cofactor 0 of x⊕y should be y")
	}
	if !eqTables(truthTable(g, c1, []cnf.Var{2}), truthTable(g, y.Not(), []cnf.Var{2})) {
		t.Error("cofactor 1 of x⊕y should be ¬y")
	}
	if g.Exists(r, 1) != True {
		t.Error("∃x. x⊕y = 1")
	}
	if g.Forall(r, 1) != False {
		t.Error("∀x. x⊕y = 0")
	}
	// ∀x. x∨y = y
	or := g.Or(x, y)
	if fa := g.Forall(or, 1); fa != y {
		t.Errorf("∀x. x∨y = %v, want y", fa)
	}
	if ex := g.Exists(or, 1); ex != True {
		t.Error("∃x. x∨y = 1")
	}
}

func TestQuantifyRandomAgainstSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vs := []cnf.Var{1, 2, 3}
	for iter := 0; iter < 100; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 2+rng.Intn(8))
		ex := g.Exists(r, 2)
		fa := g.Forall(r, 2)
		for bits := 0; bits < 4; bits++ {
			a := map[cnf.Var]bool{1: bits&1 != 0, 3: bits&2 != 0}
			eval := func(v2 bool) bool {
				a[2] = v2
				return g.Eval(r, func(v cnf.Var) bool { return a[v] })
			}
			v0, v1 := eval(false), eval(true)
			delete(a, 2)
			read := func(rr Ref) bool {
				return g.Eval(rr, func(v cnf.Var) bool { return a[v] })
			}
			if read(ex) != (v0 || v1) {
				t.Fatalf("iter %d: exists wrong", iter)
			}
			if read(fa) != (v0 && v1) {
				t.Fatalf("iter %d: forall wrong", iter)
			}
		}
	}
}

func TestRename(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	r := g.And(x, y.Not())
	rn := g.Rename(r, map[cnf.Var]cnf.Var{1: 5, 2: 6})
	sup := g.Support(rn)
	if !sup[5] || !sup[6] || sup[1] || sup[2] {
		t.Fatalf("support after rename = %v", sup)
	}
}

func TestSupportAndConeSize(t *testing.T) {
	g := New()
	x, y, z := g.Input(1), g.Input(2), g.Input(3)
	r := g.And(g.Or(x, y), z)
	sup := g.Support(r)
	if len(sup) != 3 {
		t.Fatalf("support = %v", sup)
	}
	if g.ConeSize(r) != 2 { // OR is one AND node, plus the top AND
		t.Fatalf("cone size = %d", g.ConeSize(r))
	}
	if g.ConeSize(True) != 0 {
		t.Fatal("constant cone must be empty")
	}
	// x ∧ ¬x simplifies to constant; support empty.
	if len(g.Support(g.And(x, x.Not()))) != 0 {
		t.Fatal("constant support must be empty")
	}
}

func TestSimulate(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	r := g.Xor(x, y)
	pat := map[cnf.Var]uint64{1: 0b1100, 2: 0b1010}
	got := g.Simulate(r, pat) & 0xF
	if got != 0b0110 {
		t.Fatalf("simulate xor = %04b, want 0110", got)
	}
	if g.Simulate(True, pat) != ^uint64(0) {
		t.Fatal("simulate True should be all ones")
	}
	if g.Simulate(False, pat) != 0 {
		t.Fatal("simulate False should be zero")
	}
}

func TestSimulateMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := []cnf.Var{1, 2, 3, 4, 5}
	for iter := 0; iter < 50; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 12)
		pat := map[cnf.Var]uint64{}
		for _, v := range vs {
			pat[v] = rng.Uint64()
		}
		word := g.Simulate(r, pat)
		for bit := 0; bit < 64; bit += 7 {
			want := g.Eval(r, func(v cnf.Var) bool { return pat[v]&(1<<bit) != 0 })
			if (word&(1<<bit) != 0) != want {
				t.Fatalf("iter %d bit %d: sim disagrees with eval", iter, bit)
			}
		}
	}
}

func TestToFormulaEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vs := []cnf.Var{1, 2, 3}
	for iter := 0; iter < 100; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 6)
		f, lit := g.ToFormula(r, 3)
		// For every input assignment, f with the inputs fixed and lit
		// asserted must be satisfiable iff r evaluates true.
		for bits := 0; bits < 8; bits++ {
			a := map[cnf.Var]bool{1: bits&1 != 0, 2: bits&2 != 0, 3: bits&4 != 0}
			want := g.Eval(r, func(v cnf.Var) bool { return a[v] })
			got := evalTseitin(f, lit, a)
			if got != want {
				t.Fatalf("iter %d bits %03b: tseitin %v, eval %v", iter, bits, got, want)
			}
		}
	}
}

// evalTseitin checks satisfiability of f ∧ lit ∧ (fixed inputs) by brute
// force over the auxiliary variables.
func evalTseitin(f *cnf.Formula, lit cnf.Lit, inputs map[cnf.Var]bool) bool {
	var aux []cnf.Var
	for v := cnf.Var(1); int(v) <= f.NumVars; v++ {
		if _, fixed := inputs[v]; !fixed {
			aux = append(aux, v)
		}
	}
	if len(aux) > 16 {
		panic("too many aux vars for brute force")
	}
	a := cnf.NewAssignment(f.NumVars)
	for v, val := range inputs {
		a.Set(v, val)
	}
	for bits := 0; bits < 1<<len(aux); bits++ {
		for i, v := range aux {
			a.Set(v, bits&(1<<i) != 0)
		}
		if a.Lit(lit) && f.Eval(a) {
			return true
		}
	}
	return false
}

func TestIsSatisfiableAndEquivalent(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	sat, model := g.IsSatisfiable(g.And(x, y.Not()))
	if !sat {
		t.Fatal("x∧¬y is satisfiable")
	}
	if !model[1] || model[2] {
		t.Fatalf("bad model %v", model)
	}
	if ok, _ := g.IsSatisfiable(g.And(x, x.Not())); ok {
		t.Fatal("x∧¬x is unsatisfiable")
	}
	if ok, _ := g.IsSatisfiable(False); ok {
		t.Fatal("False is unsatisfiable")
	}
	if ok, _ := g.IsSatisfiable(True); !ok {
		t.Fatal("True is satisfiable")
	}
	// De Morgan.
	lhs := g.And(x, y).Not()
	rhs := g.Or(x.Not(), y.Not())
	if !g.Equivalent(lhs, rhs) {
		t.Fatal("De Morgan equivalence not detected")
	}
	if g.Equivalent(x, y) {
		t.Fatal("x and y are not equivalent")
	}
}

func TestSweepMergesEquivalentNodes(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	// Build x⊕y twice with different structure, conjoin with a mux form.
	xor1 := g.Or(g.And(x, y.Not()), g.And(x.Not(), y))
	xor2 := g.And(g.Or(x, y), g.And(x, y).Not())
	both := g.And(xor1, g.Or(xor2, g.Input(3)))
	swept, stats := g.Sweep(both, DefaultSweepOptions())
	if !g.Equivalent(both, swept) {
		t.Fatal("sweep changed the function")
	}
	if stats.Merged == 0 {
		t.Fatal("sweep should merge the structurally different XORs")
	}
	if g.ConeSize(swept) >= g.ConeSize(both) {
		t.Fatalf("sweep did not shrink cone: %d -> %d", g.ConeSize(both), g.ConeSize(swept))
	}
}

func TestSweepPreservesSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vs := []cnf.Var{1, 2, 3, 4}
	for iter := 0; iter < 60; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 15)
		swept, _ := g.Sweep(r, DefaultSweepOptions())
		if !eqTables(truthTable(g, r, vs), truthTable(g, swept, vs)) {
			t.Fatalf("iter %d: sweep changed semantics", iter)
		}
	}
}

func TestSweepDetectsConstants(t *testing.T) {
	g := New()
	x, y := g.Input(1), g.Input(2)
	// (x∨y) ∨ (¬x∧¬y) is a tautology hidden behind structure.
	taut := g.Or(g.Or(x, y), g.And(x.Not(), y.Not()))
	swept, _ := g.Sweep(taut, DefaultSweepOptions())
	if swept != True && g.ConeSize(swept) >= g.ConeSize(taut) {
		// The tautology reaches the constant bucket only if the constant
		// node participates; at minimum the cone must not grow.
		t.Fatalf("sweep grew a tautology cone: %d -> %d", g.ConeSize(taut), g.ConeSize(swept))
	}
	if !g.Equivalent(swept, True) {
		t.Fatal("tautology no longer a tautology after sweep")
	}
}

func TestNodeLimit(t *testing.T) {
	g := New()
	g.NodeLimit = 8
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected ErrNodeLimit panic")
		} else if _, ok := r.(ErrNodeLimit); !ok {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	prev := g.Input(1)
	for v := cnf.Var(2); v < 100; v++ {
		prev = g.And(prev, g.Input(v))
	}
}

func TestInputValidation(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Input(0) should panic")
		}
	}()
	g.Input(0)
}

func TestInputVar(t *testing.T) {
	g := New()
	x := g.Input(7)
	if g.InputVar(x) != 7 || !g.IsInput(x) {
		t.Fatal("InputVar broken")
	}
	if g.InputVar(True) != 0 || g.IsInput(False) {
		t.Fatal("constants are not inputs")
	}
	a := g.And(x, g.Input(8))
	if g.IsInput(a) {
		t.Fatal("AND node is not an input")
	}
}

func TestRefProperties(t *testing.T) {
	f := func(n uint16, c bool) bool {
		r := Ref(int32(n)<<1 | 1)
		if !c {
			r = Ref(int32(n) << 1)
		}
		return r.Compl() == c && r.Not().Not() == r && r.Not().Compl() != c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphString(t *testing.T) {
	g := New()
	g.And(g.Input(1), g.Input(2))
	s := g.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
