package aig

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// WriteAAG writes the cones of the given output references in the ASCII
// AIGER format (aag). Input variables are emitted in ascending variable
// order; a comment section records the mapping from AIGER inputs back to
// the graph's variable numbers.
func (g *Graph) WriteAAG(w io.Writer, outputs ...Ref) error {
	cone := g.coneNodes(outputs...)
	// Partition into inputs and ANDs; assign AIGER indices.
	var inputs []int32
	var ands []int32
	for _, n := range cone {
		if g.nodes[n].v != 0 {
			inputs = append(inputs, n)
		} else {
			ands = append(ands, n)
		}
	}
	sort.Slice(inputs, func(i, j int) bool {
		return g.nodes[inputs[i]].v < g.nodes[inputs[j]].v
	})
	index := make(map[int32]int, len(cone)) // node -> AIGER variable index
	next := 1
	for _, n := range inputs {
		index[n] = next
		next++
	}
	for _, n := range ands { // already topological
		index[n] = next
		next++
	}
	lit := func(e Ref) int {
		n := e.node()
		if n == 0 {
			// AIGER: literal 0 = false, 1 = true.
			if e.Compl() {
				return 1
			}
			return 0
		}
		l := 2 * index[n]
		if e.Compl() {
			l++
		}
		return l
	}

	bw := bufio.NewWriter(w)
	maxVar := len(inputs) + len(ands)
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, len(inputs), len(outputs), len(ands))
	for _, n := range inputs {
		fmt.Fprintf(bw, "%d\n", 2*index[n])
	}
	for _, o := range outputs {
		fmt.Fprintf(bw, "%d\n", lit(o))
	}
	for _, n := range ands {
		nd := &g.nodes[n]
		fmt.Fprintf(bw, "%d %d %d\n", 2*index[n], lit(nd.f0), lit(nd.f1))
	}
	// Symbol table: map AIGER inputs to graph variables.
	for i, n := range inputs {
		fmt.Fprintf(bw, "i%d v%d\n", i, g.nodes[n].v)
	}
	fmt.Fprintln(bw, "c")
	fmt.Fprintln(bw, "written by repro/internal/aig")
	return bw.Flush()
}

// ReadAAG parses an ASCII AIGER (aag) file into the graph and returns the
// output references. AIGER inputs are mapped to graph input variables using
// the symbol table ("iN vM" entries) when present, or variables 1..I
// otherwise. Latches are not supported (combinational AIGs only).
func ReadAAG(r io.Reader) (*Graph, []Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, nil, fmt.Errorf("aiger: bad header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil || v < 0 {
			return nil, nil, fmt.Errorf("aiger: bad header field %q", header[i+1])
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, nil, fmt.Errorf("aiger: %d latches unsupported (combinational only)", nLatch)
	}

	readLine := func() (string, error) {
		if !sc.Scan() {
			return "", fmt.Errorf("aiger: unexpected end of file")
		}
		return strings.TrimSpace(sc.Text()), nil
	}

	inputLits := make([]int, nIn)
	for i := range inputLits {
		line, err := readLine()
		if err != nil {
			return nil, nil, err
		}
		v, err := strconv.Atoi(line)
		if err != nil || v%2 != 0 || v == 0 {
			return nil, nil, fmt.Errorf("aiger: bad input literal %q", line)
		}
		inputLits[i] = v
	}
	outputLits := make([]int, nOut)
	for i := range outputLits {
		line, err := readLine()
		if err != nil {
			return nil, nil, err
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, nil, fmt.Errorf("aiger: bad output literal %q", line)
		}
		outputLits[i] = v
	}
	type andDef struct{ lhs, r0, r1 int }
	ands := make([]andDef, nAnd)
	for i := range ands {
		line, err := readLine()
		if err != nil {
			return nil, nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("aiger: bad AND line %q", line)
		}
		var d andDef
		for j, dst := range []*int{&d.lhs, &d.r0, &d.r1} {
			v, err := strconv.Atoi(fields[j])
			if err != nil {
				return nil, nil, fmt.Errorf("aiger: bad AND literal %q", fields[j])
			}
			*dst = v
		}
		if d.lhs%2 != 0 || d.lhs == 0 {
			return nil, nil, fmt.Errorf("aiger: AND lhs %d not a positive even literal", d.lhs)
		}
		ands[i] = d
	}
	// Symbol table (optional): "iN vM" maps input N to variable M.
	inputVar := make([]cnf.Var, nIn)
	for i := range inputVar {
		inputVar[i] = cnf.Var(i + 1)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "c" {
			break
		}
		if !strings.HasPrefix(line, "i") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "v") {
			continue
		}
		idx, err1 := strconv.Atoi(fields[0][1:])
		v, err2 := strconv.Atoi(fields[1][1:])
		if err1 == nil && err2 == nil && idx >= 0 && idx < nIn && v > 0 {
			inputVar[idx] = cnf.Var(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	g := New()
	refOfVar := make([]Ref, maxVar+1) // AIGER variable index -> Ref
	for i, l := range inputLits {
		refOfVar[l/2] = g.Input(inputVar[i])
	}
	resolve := func(l int) (Ref, error) {
		if l/2 > maxVar {
			return 0, fmt.Errorf("aiger: literal %d exceeds maxvar %d", l, maxVar)
		}
		if l < 2 {
			return Ref(l), nil // constants
		}
		r := refOfVar[l/2]
		if r == 0 {
			return 0, fmt.Errorf("aiger: literal %d used before definition", l)
		}
		return r.XorSign(l%2 == 1), nil
	}
	for _, d := range ands {
		r0, err := resolve(d.r0)
		if err != nil {
			return nil, nil, err
		}
		r1, err := resolve(d.r1)
		if err != nil {
			return nil, nil, err
		}
		refOfVar[d.lhs/2] = g.And(r0, r1)
	}
	outs := make([]Ref, nOut)
	for i, l := range outputLits {
		r, err := resolve(l)
		if err != nil {
			return nil, nil, err
		}
		outs[i] = r
	}
	return g, outs, nil
}
