package aig

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func TestAAGRoundTripSimple(t *testing.T) {
	g := New()
	x, y := g.Input(3), g.Input(7)
	out := g.Or(g.And(x, y), g.Xor(x, y)) // = x ∨ y
	var buf bytes.Buffer
	if err := g.WriteAAG(&buf, out); err != nil {
		t.Fatal(err)
	}
	g2, outs, err := ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outputs = %v", outs)
	}
	// Variables preserved via symbol table.
	for bits := 0; bits < 4; bits++ {
		a := map[cnf.Var]bool{3: bits&1 != 0, 7: bits&2 != 0}
		want := g.Eval(out, func(v cnf.Var) bool { return a[v] })
		got := g2.Eval(outs[0], func(v cnf.Var) bool { return a[v] })
		if got != want {
			t.Fatalf("round trip differs at %02b", bits)
		}
	}
}

func TestAAGRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vs := []cnf.Var{1, 2, 3, 4}
	for iter := 0; iter < 50; iter++ {
		g := New()
		r1 := randomAIG(g, rng, vs, 10)
		r2 := randomAIG(g, rng, vs, 6)
		var buf bytes.Buffer
		if err := g.WriteAAG(&buf, r1, r2); err != nil {
			t.Fatal(err)
		}
		g2, outs, err := ReadAAG(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != 2 {
			t.Fatalf("outputs = %v", outs)
		}
		for bits := 0; bits < 16; bits++ {
			a := map[cnf.Var]bool{}
			for i, v := range vs {
				a[v] = bits&(1<<i) != 0
			}
			read := func(v cnf.Var) bool { return a[v] }
			if g.Eval(r1, read) != g2.Eval(outs[0], read) ||
				g.Eval(r2, read) != g2.Eval(outs[1], read) {
				t.Fatalf("iter %d: round trip differs at %04b", iter, bits)
			}
		}
	}
}

func TestAAGConstantOutputs(t *testing.T) {
	g := New()
	var buf bytes.Buffer
	if err := g.WriteAAG(&buf, True, False); err != nil {
		t.Fatal(err)
	}
	_, outs, err := ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != True || outs[1] != False {
		t.Fatalf("outs = %v", outs)
	}
}

func TestReadAAGKnownFile(t *testing.T) {
	// AND of two inputs, standard AIGER toy example.
	src := `aag 3 2 0 1 1
2
4
6
6 2 4
`
	g, outs, err := ReadAAG(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	and := outs[0]
	tests := []struct{ a, b, want bool }{
		{false, false, false}, {true, false, false}, {false, true, false}, {true, true, true},
	}
	for _, tc := range tests {
		got := g.Eval(and, func(v cnf.Var) bool {
			if v == 1 {
				return tc.a
			}
			return tc.b
		})
		if got != tc.want {
			t.Fatalf("AND(%v,%v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestReadAAGErrors(t *testing.T) {
	cases := []string{
		"",
		"aig 1 1 0 0 0\n",
		"aag 1 1 0 0\n",
		"aag 1 1 1 0 0\n2\n",       // latches unsupported
		"aag 1 1 0 0 0\n3\n",       // odd input literal
		"aag 2 1 0 1 0\n2\n6\n",    // output exceeds maxvar
		"aag 2 1 0 1 1\n2\n4\n4 2", // malformed AND line
		"aag 2 1 0 1 0\n2\n4\n",    // output uses undefined variable
	}
	for _, src := range cases {
		if _, _, err := ReadAAG(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
