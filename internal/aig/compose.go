package aig

import (
	"sort"

	"repro/internal/cnf"
)

// Compose substitutes functions for input variables: every input node whose
// variable appears in subst is replaced by the given reference. The result is
// rebuilt bottom-up with full structural hashing, so simplifications cascade.
func (g *Graph) Compose(r Ref, subst map[cnf.Var]Ref) Ref {
	if len(subst) == 0 {
		return r
	}
	memo := make(map[int32]Ref)
	return g.compose(r, subst, memo)
}

func (g *Graph) compose(r Ref, subst map[cnf.Var]Ref, memo map[int32]Ref) Ref {
	n := r.node()
	if n == 0 {
		return r
	}
	if out, ok := memo[n]; ok {
		return out.XorSign(r.Compl())
	}
	nd := g.nodes[n] // copy: g.nodes may be appended to during recursion
	var out Ref
	if nd.v != 0 {
		if s, ok := subst[nd.v]; ok {
			out = s
		} else {
			out = Ref(n << 1)
		}
	} else {
		f0 := g.compose(nd.f0, subst, memo)
		f1 := g.compose(nd.f1, subst, memo)
		out = g.And(f0, f1)
	}
	memo[n] = out
	return out.XorSign(r.Compl())
}

// Cofactor returns r with variable v fixed to val.
func (g *Graph) Cofactor(r Ref, v cnf.Var, val bool) Ref {
	c := False
	if val {
		c = True
	}
	return g.Compose(r, map[cnf.Var]Ref{v: c})
}

// Exists existentially quantifies v: ∃v.r = r[0/v] ∨ r[1/v].
func (g *Graph) Exists(r Ref, v cnf.Var) Ref {
	return g.Or(g.Cofactor(r, v, false), g.Cofactor(r, v, true))
}

// Forall universally quantifies v: ∀v.r = r[0/v] ∧ r[1/v].
func (g *Graph) Forall(r Ref, v cnf.Var) Ref {
	return g.And(g.Cofactor(r, v, false), g.Cofactor(r, v, true))
}

// Rename replaces input variables by other input variables according to the
// map (a special case of Compose).
func (g *Graph) Rename(r Ref, ren map[cnf.Var]cnf.Var) Ref {
	if len(ren) == 0 {
		return r
	}
	// Allocate target input nodes in sorted order, not ren's map order:
	// Input may create fresh nodes, and node numbering must not depend on
	// map iteration for runs to be reproducible.
	froms := make([]cnf.Var, 0, len(ren))
	for from := range ren {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	subst := make(map[cnf.Var]Ref, len(ren))
	for _, from := range froms {
		subst[from] = g.Input(ren[from])
	}
	return g.Compose(r, subst)
}
