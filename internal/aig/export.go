package aig

// Export copies the cone of r into dst, preserving input variable names, and
// returns the corresponding reference in dst. memo carries the source-node →
// destination-reference translation; passing the same map across several
// Export calls from one source graph shares the copied structure between
// them. A nil memo allocates a private one.
//
// The copy walks the cone in topological order, so dst's node numbering is
// deterministic for a fixed source graph and call sequence. Certificates use
// this to move extracted Skolem functions out of the solver's working graph
// into a self-contained one (internal/cert), and the independent checker uses
// it again to rebuild those functions in a fresh graph that shares no state
// with the solver.
func (g *Graph) Export(r Ref, dst *Graph, memo map[int32]Ref) Ref {
	if memo == nil {
		memo = make(map[int32]Ref)
	}
	// edge translates a source edge whose node is already in memo (or the
	// constant node) into a dst reference with the complement bit applied.
	edge := func(e Ref) Ref {
		n := e.node()
		if n == 0 {
			return False.XorSign(e.Compl())
		}
		return memo[n].XorSign(e.Compl())
	}
	for _, n := range g.coneNodes(r) {
		if _, ok := memo[n]; ok {
			continue
		}
		nd := g.nodes[n]
		if nd.v != 0 {
			memo[n] = dst.Input(nd.v)
			continue
		}
		memo[n] = dst.And(edge(nd.f0), edge(nd.f1))
	}
	return edge(r)
}
