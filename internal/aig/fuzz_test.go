package aig

import (
	"testing"

	"repro/internal/cnf"
)

// fuzzVars is the input alphabet of the fuzz-built AIGs: small enough that
// exhaustive evaluation over all 2^4 assignments stays cheap.
var fuzzVars = []cnf.Var{1, 2, 3, 4}

// buildFuzzAIG interprets data as a stack program over a small variable set:
// each byte either pushes an input/constant or combines stack entries with
// AND/OR/XOR/NOT/ITE. It returns the final stack top (or False for the empty
// program) — a deterministic way to grow structurally diverse AIGs from
// fuzzer-mutated bytes.
func buildFuzzAIG(g *Graph, data []byte) Ref {
	stack := []Ref{False}
	pop := func() Ref {
		r := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return r
	}
	for _, b := range data {
		switch b % 8 {
		case 0, 1:
			stack = append(stack, g.Input(fuzzVars[int(b/8)%len(fuzzVars)]))
		case 2:
			stack = append(stack, False.XorSign(b&8 != 0))
		case 3:
			stack = append(stack, pop().Not())
		case 4:
			stack = append(stack, g.And(pop(), pop()))
		case 5:
			stack = append(stack, g.Or(pop(), pop()))
		case 6:
			stack = append(stack, g.Xor(pop(), pop()))
		case 7:
			stack = append(stack, g.Ite(pop(), pop(), pop()))
		}
	}
	return stack[len(stack)-1]
}

// evalAll evaluates r under every assignment of fuzzVars, returning a truth
// vector indexed by the assignment bits.
func evalAll(g *Graph, r Ref) []bool {
	out := make([]bool, 1<<len(fuzzVars))
	for bits := range out {
		bits := bits
		out[bits] = g.Eval(r, func(v cnf.Var) bool {
			for i, w := range fuzzVars {
				if w == v {
					return bits&(1<<i) != 0
				}
			}
			return false
		})
	}
	return out
}

// FuzzAIGCompose checks the semantic identities the certificate extractor
// leans on, over fuzz-built AIGs: cofactoring removes the variable from the
// support, the Shannon expansion reconstructs the function, and Compose
// agrees with substitute-then-evaluate.
func FuzzAIGCompose(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{0, 8, 4}, byte(1))
	f.Add([]byte{0, 3, 8, 6, 16, 5, 24, 7}, byte(2))
	f.Add([]byte{1, 9, 17, 25, 4, 4, 4}, byte(3))
	f.Add([]byte{2, 10, 3, 7, 0, 6}, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, varSel byte) {
		if len(data) > 256 {
			return
		}
		g := New()
		split := len(data) / 2
		r := buildFuzzAIG(g, data[:split])
		sub := buildFuzzAIG(g, data[split:])
		v := fuzzVars[int(varSel)%len(fuzzVars)]

		// Cofactor removes the variable from the support.
		hi := g.Cofactor(r, v, true)
		lo := g.Cofactor(r, v, false)
		if g.Support(hi)[v] || g.Support(lo)[v] {
			t.Fatalf("cofactor on %d left it in the support (hi %v, lo %v)", v, g.Support(hi), g.Support(lo))
		}

		// Shannon expansion: r ≡ ite(v, r|v=1, r|v=0).
		shannon := g.Ite(g.Input(v), hi, lo)
		want := evalAll(g, r)
		if got := evalAll(g, shannon); !eqVec(got, want) {
			t.Fatalf("Shannon expansion on %d changed the function", v)
		}

		// Compose agrees with substitute-then-evaluate.
		composed := g.Compose(r, map[cnf.Var]Ref{v: sub})
		if g.Support(composed)[v] && !g.Support(sub)[v] {
			t.Fatalf("compose left %d in the support without the substitute using it", v)
		}
		subVec := evalAll(g, sub)
		gotVec := evalAll(g, composed)
		for bits := range gotVec {
			// Evaluate r with v replaced by sub's value under the same
			// assignment.
			vi := varIndex(v)
			adjusted := bits &^ (1 << vi)
			if subVec[bits] {
				adjusted |= 1 << vi
			}
			if gotVec[bits] != want[adjusted] {
				t.Fatalf("compose mismatch at assignment %b: got %v, direct %v", bits, gotVec[bits], want[adjusted])
			}
		}
	})
}

func eqVec(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func varIndex(v cnf.Var) int {
	for i, w := range fuzzVars {
		if w == v {
			return i
		}
	}
	return -1
}
