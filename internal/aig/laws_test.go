package aig

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// TestBooleanAlgebraLaws verifies algebraic identities on randomly built
// references using SAT-backed equivalence — exercising And/Or/Xor/Ite,
// structural hashing, and the CNF bridge together.
func TestBooleanAlgebraLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vs := []cnf.Var{1, 2, 3, 4}
	for iter := 0; iter < 40; iter++ {
		g := New()
		a := randomAIG(g, rng, vs, 6)
		b := randomAIG(g, rng, vs, 6)
		c := randomAIG(g, rng, vs, 6)
		type law struct {
			name string
			l, r Ref
		}
		laws := []law{
			{"commutativity ∧", g.And(a, b), g.And(b, a)},
			{"associativity ∧", g.And(a, g.And(b, c)), g.And(g.And(a, b), c)},
			{"De Morgan", g.And(a, b).Not(), g.Or(a.Not(), b.Not())},
			{"distribution", g.And(a, g.Or(b, c)), g.Or(g.And(a, b), g.And(a, c))},
			{"xor via ite", g.Xor(a, b), g.Ite(a, b.Not(), b)},
			{"xnor = ¬xor", g.Xnor(a, b), g.Xor(a, b).Not()},
			{"absorption", g.Or(a, g.And(a, b)), a},
			{"implication", g.Implies(a, b), g.Or(b, a.Not())},
			{"ite symmetry", g.Ite(a, b, c), g.Ite(a.Not(), c, b)},
			{"xor self-inverse", g.Xor(g.Xor(a, b), b), a},
		}
		for _, lw := range laws {
			if !g.Equivalent(lw.l, lw.r) {
				t.Fatalf("iter %d: law %q violated", iter, lw.name)
			}
		}
	}
}

// TestQuantifierLaws verifies quantifier identities: commutation of
// same-kind quantifiers, duality, and distribution over independent
// conjuncts.
func TestQuantifierLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for iter := 0; iter < 30; iter++ {
		g := New()
		f := randomAIG(g, rng, []cnf.Var{1, 2, 3}, 8)
		// ∃x∃y f = ∃y∃x f
		if !g.Equivalent(g.Exists(g.Exists(f, 1), 2), g.Exists(g.Exists(f, 2), 1)) {
			t.Fatalf("iter %d: ∃ commutation violated", iter)
		}
		// ∀x f = ¬∃x ¬f
		if !g.Equivalent(g.Forall(f, 1), g.Exists(f.Not(), 1).Not()) {
			t.Fatalf("iter %d: quantifier duality violated", iter)
		}
		// Independence: ∃x (f(y,z) ∧ h(x)) = f ∧ ∃x h.
		h := randomAIG(g, rng, []cnf.Var{4, 5}, 5)
		fNoX := g.Compose(f, map[cnf.Var]Ref{1: g.Input(2)})
		lhs := g.Exists(g.And(fNoX, g.And(h, g.Input(1))), 1)
		rhs := g.And(fNoX, g.Exists(g.And(h, g.Input(1)), 1))
		if !g.Equivalent(lhs, rhs) {
			t.Fatalf("iter %d: quantifier scope extrusion violated", iter)
		}
	}
}

// TestComposeSubstitutionLemma checks f[g/x] evaluated at a equals f
// evaluated at a[x := g(a)].
func TestComposeSubstitutionLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(5678))
	vs := []cnf.Var{1, 2, 3}
	for iter := 0; iter < 60; iter++ {
		g := New()
		f := randomAIG(g, rng, vs, 8)
		sub := randomAIG(g, rng, []cnf.Var{2, 3}, 5)
		composed := g.Compose(f, map[cnf.Var]Ref{1: sub})
		for bits := 0; bits < 4; bits++ {
			env := map[cnf.Var]bool{2: bits&1 != 0, 3: bits&2 != 0}
			read := func(v cnf.Var) bool { return env[v] }
			want := func() bool {
				inner := g.Eval(sub, read)
				return g.Eval(f, func(v cnf.Var) bool {
					if v == 1 {
						return inner
					}
					return env[v]
				})
			}()
			if got := g.Eval(composed, read); got != want {
				t.Fatalf("iter %d bits %02b: substitution lemma violated", iter, bits)
			}
		}
	}
}
