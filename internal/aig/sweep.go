package aig

import (
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// rng is a small xorshift generator for simulation patterns; deterministic
// so that solver runs are reproducible.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// Simulate runs 64-way parallel simulation of the cone of r: each input
// variable is driven by the given 64-bit pattern (missing inputs get zero).
// It returns the 64 output values as a word.
func (g *Graph) Simulate(r Ref, patterns map[cnf.Var]uint64) uint64 {
	cone := g.coneNodes(r)
	for _, n := range cone {
		nd := &g.nodes[n]
		if nd.v != 0 {
			nd.sim = patterns[nd.v]
			continue
		}
		a := g.edgeSim(nd.f0)
		b := g.edgeSim(nd.f1)
		nd.sim = a & b
	}
	return g.edgeSim(r)
}

func (g *Graph) edgeSim(e Ref) uint64 {
	n := e.node()
	var w uint64
	if n != 0 {
		w = g.nodes[n].sim
	}
	if e.Compl() {
		return ^w
	}
	return w
}

// SweepStats reports what a sweep did.
type SweepStats struct {
	Candidates int // simulation-equivalent pairs tried
	Merged     int // pairs proven equivalent and merged
	SatCalls   int
}

// SweepOptions configures SAT sweeping.
type SweepOptions struct {
	// Rounds of 64-bit random simulation words used for signatures.
	SimWords int
	// ConflictBudget per SAT equivalence query; on budget exhaustion the
	// pair is conservatively treated as inequivalent. <=0 means unlimited.
	ConflictBudget int64
	// Deadline, when nonzero, aborts the candidate loop once passed; merges
	// proven so far are still applied (the result stays equivalent).
	Deadline time.Time
}

// DefaultSweepOptions are a reasonable tradeoff for the solver loops.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{SimWords: 8, ConflictBudget: 2000}
}

// Sweep performs FRAIG-style reduction on the cone of r: nodes with equal
// (or complementary) simulation signatures are checked for functional
// equivalence with SAT and merged, then the cone is rebuilt. The result is
// functionally equivalent to r. Counterexamples from failed equivalence
// checks refine the signatures, as in classic FRAIG construction.
func (g *Graph) Sweep(r Ref, opt SweepOptions) (Ref, SweepStats) {
	var stats SweepStats
	if r.IsConst() {
		return r, stats
	}
	cone := g.coneNodes(r)
	if len(cone) < 2 {
		return r, stats
	}
	support := g.Support(r)
	vars := make([]cnf.Var, 0, len(support))
	for v := range support {
		vars = append(vars, v)
	}

	if opt.SimWords <= 0 {
		opt.SimWords = 8
	}
	// signatures[n] holds opt.SimWords simulation words per node.
	sigs := make(map[int32][]uint64, len(cone))
	for _, n := range cone {
		sigs[n] = make([]uint64, 0, opt.SimWords)
	}
	seed := rng(0x2545f4914f6cdd1d)
	patterns := make(map[cnf.Var]uint64, len(vars))
	simulateRound := func(pat map[cnf.Var]uint64) {
		g.Simulate(r, pat)
		for _, n := range cone {
			sigs[n] = append(sigs[n], g.nodes[n].sim)
		}
	}
	for w := 0; w < opt.SimWords; w++ {
		for _, v := range vars {
			patterns[v] = seed.next()
		}
		simulateRound(patterns)
	}

	// One shared SAT instance: encode the whole cone once, query pairs under
	// a miter built per query.
	solver := sat.New()
	builder := NewCNFBuilder(g, solver)
	builder.Lit(r) // encode the cone

	// repl maps node -> replacement edge (possibly complemented).
	repl := make(map[int32]Ref)
	resolve := func(e Ref) Ref {
		for {
			t, ok := repl[e.node()]
			if !ok {
				return e
			}
			e = t.XorSign(e.Compl())
		}
	}

	// Group nodes by normalized signature: if word 0 has bit 0 set, use the
	// complemented signature (tracking the phase) so that complementary
	// functions land in the same bucket.
	type bucketKey string
	normSig := func(n int32) (bucketKey, bool) {
		s := sigs[n]
		inv := s[0]&1 == 1
		buf := make([]byte, 0, len(s)*8)
		for _, w := range s {
			if inv {
				w = ^w
			}
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(w>>(8*i)))
			}
		}
		return bucketKey(buf), inv
	}

	checkEq := func(a, b Ref) bool {
		stats.SatCalls++
		la := builder.Lit(a)
		lb := builder.Lit(b)
		solver.ConflictBudget = opt.ConflictBudget
		// a≠b ⇔ (a ∧ ¬b) ∨ (¬a ∧ b): query both branches via assumptions.
		st1, err := solver.SolveErr([]cnf.Lit{la, lb.Not()})
		if err != nil || st1 == sat.Sat {
			return false
		}
		st2, err := solver.SolveErr([]cnf.Lit{la.Not(), lb})
		if err != nil || st2 == sat.Sat {
			return false
		}
		return true
	}

	buckets := make(map[bucketKey][]int32)
	for _, n := range cone {
		key, _ := normSig(n)
		buckets[key] = append(buckets[key], n)
	}
	expired := func() bool {
		return !opt.Deadline.IsZero() && time.Now().After(opt.Deadline)
	}
	queries := 0
	for _, members := range buckets {
		if len(members) < 2 {
			continue
		}
		// Try to merge each member into the earliest (topologically smallest)
		// representative of its class.
		for i := 1; i < len(members); i++ {
			queries++
			if queries%16 == 0 && expired() {
				goto rebuildPhase
			}
			repNode, n := members[0], members[i]
			if _, already := repl[n]; already {
				continue
			}
			stats.Candidates++
			_, invRep := normSig(repNode)
			_, invN := normSig(n)
			repRef := resolve(Ref(repNode << 1).XorSign(invRep))
			nRef := Ref(n << 1).XorSign(invN)
			if checkEq(repRef, nRef) {
				// n (with phase invN) equals repRef; store n -> phase-fixed edge.
				repl[n] = repRef.XorSign(invN)
				stats.Merged++
			}
		}
	}
rebuildPhase:
	if len(repl) == 0 {
		return r, stats
	}

	// Rebuild the cone applying replacements bottom-up.
	rebuilt := make(map[int32]Ref, len(cone))
	var rebuild func(e Ref) Ref
	rebuild = func(e Ref) Ref {
		n := e.node()
		if n == 0 {
			return e
		}
		if t, ok := repl[n]; ok {
			// The replacement target itself may contain replaced nodes.
			return rebuild(t).XorSign(e.Compl())
		}
		if out, ok := rebuilt[n]; ok {
			return out.XorSign(e.Compl())
		}
		nd := g.nodes[n]
		var out Ref
		if nd.v != 0 {
			out = Ref(n << 1)
		} else {
			out = g.And(rebuild(nd.f0), rebuild(nd.f1))
		}
		rebuilt[n] = out
		return out.XorSign(e.Compl())
	}
	return rebuild(r), stats
}
