package aig

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/sat"
)

// rng is a small xorshift generator for simulation patterns; deterministic
// so that solver runs are reproducible.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// Simulate runs 64-way parallel simulation of the cone of r: each input
// variable is driven by the given 64-bit pattern (missing inputs get zero).
// It returns the 64 output values as a word.
func (g *Graph) Simulate(r Ref, patterns map[cnf.Var]uint64) uint64 {
	cone := g.coneNodes(r)
	for _, n := range cone {
		nd := &g.nodes[n]
		if nd.v != 0 {
			nd.sim = patterns[nd.v]
			continue
		}
		a := g.edgeSim(nd.f0)
		b := g.edgeSim(nd.f1)
		nd.sim = a & b
	}
	return g.edgeSim(r)
}

func (g *Graph) edgeSim(e Ref) uint64 {
	n := e.node()
	var w uint64
	if n != 0 {
		w = g.nodes[n].sim
	}
	if e.Compl() {
		return ^w
	}
	return w
}

// SweepOracle is a persistent equivalence oracle queried by one sweep
// worker. Implementations (internal/oracle) keep a long-lived incremental
// SAT solver plus Tseitin memo alive across sweep rounds, so candidate
// checks are assumption queries against an already-loaded solver instead of
// fresh per-sweep solver builds. An oracle is NOT safe for concurrent use;
// the pool hands each index to exactly one worker.
type SweepOracle interface {
	// ProveEquiv reports whether the functions rooted at lhs and rhs are
	// equivalent, spending at most conflictBudget conflicts per SAT query
	// (<=0 unlimited) and honoring bud. Budget exhaustion or errors yield
	// proven=false (sound: unproven pairs are simply not merged). satCalls
	// is the number of SAT queries issued (0..2).
	ProveEquiv(lhs, rhs Ref, conflictBudget int64, bud *budget.Budget) (proven bool, satCalls int)
	// Footprint returns the oracle solver's current packed-arena size and
	// cumulative arena compaction count.
	Footprint() (arenaBytes int, compactions int64)
}

// SweepOraclePool supplies one persistent SweepOracle per worker index.
type SweepOraclePool interface {
	// WorkerOracle returns the oracle owned by worker i, creating it on
	// first use. It must be safe to call from concurrent workers (with
	// distinct i); the returned oracle itself is single-goroutine.
	WorkerOracle(i int) SweepOracle
}

// SweepStats reports what a sweep did.
type SweepStats struct {
	Candidates int // simulation-equivalent pairs tried
	Merged     int // pairs proven equivalent and merged
	SatCalls   int // individual SAT oracle invocations (up to two per pair)
	Workers    int // size of the worker pool actually used
	Skipped    int // sweeps skipped outright (injected fault at aig.sweep)
	Panics     int // worker panics contained (candidates left unproven)

	// SAT substrate footprint, aggregated over the pool's private solvers.
	ArenaBytes  int   // peak packed-clause-arena size of any one solver
	Compactions int64 // arena garbage collections summed over the pool
}

// Counters flattens the stats into the generic counter map consumed by the
// pipeline's structured trace events.
func (s SweepStats) Counters() map[string]int64 {
	c := map[string]int64{
		"candidates": int64(s.Candidates),
		"merged":     int64(s.Merged),
		"satcalls":   int64(s.SatCalls),
	}
	if s.Skipped > 0 {
		c["skipped"] = int64(s.Skipped)
	}
	if s.Panics > 0 {
		c["panics"] = int64(s.Panics)
	}
	return c
}

// add accumulates the counters of one sweep into s (peak for ArenaBytes).
func (s *SweepStats) Add(o SweepStats) {
	s.Candidates += o.Candidates
	s.Merged += o.Merged
	s.SatCalls += o.SatCalls
	s.Skipped += o.Skipped
	s.Panics += o.Panics
	s.Compactions += o.Compactions
	if o.ArenaBytes > s.ArenaBytes {
		s.ArenaBytes = o.ArenaBytes
	}
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
}

// SweepOptions configures SAT sweeping.
type SweepOptions struct {
	// Rounds of 64-bit random simulation words used for signatures.
	SimWords int
	// ConflictBudget per SAT equivalence query; on budget exhaustion the
	// pair is conservatively treated as inequivalent. <=0 means unlimited.
	ConflictBudget int64
	// Deadline, when nonzero, aborts the candidate loop once passed; merges
	// proven so far are still applied (the result stays equivalent).
	Deadline time.Time
	// Budget, when non-nil, likewise aborts the candidate loop when stopped
	// (cancellation, deadline, caps) and is polled inside each worker's SAT
	// queries for prompt cancellation mid-query. As with Deadline, merges
	// proven before the stop are still applied.
	Budget *budget.Budget
	// Workers is the size of the SAT worker pool checking candidate pairs.
	// 0 or 1 runs serially; negative values use runtime.GOMAXPROCS(0). Every
	// worker owns a private solver loaded from one shared immutable Tseitin
	// encoding of the cone, and candidate pairs are assigned by static
	// striding, so the proven-equivalence set is deterministic for a fixed
	// worker count — and identical across worker counts whenever no query
	// exhausts ConflictBudget or the Deadline (pair verdicts are independent
	// of each other; only budget exhaustion is history-sensitive).
	Workers int
	// Oracles, when non-nil, replaces the per-sweep private solvers: worker
	// i checks its candidates with assumption queries against the pool's
	// persistent oracle i (see internal/oracle), so Tseitin encodings and
	// learned clauses survive across sweep rounds instead of being rebuilt
	// per call. The shared cone encoding is skipped entirely in this mode.
	// Striding is unchanged, so the candidate order per worker stays
	// deterministic.
	Oracles SweepOraclePool
}

// DefaultSweepOptions are a reasonable tradeoff for the solver loops.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{SimWords: 8, ConflictBudget: 2000}
}

// poolSize resolves the Workers knob against the candidate count.
func (o SweepOptions) poolSize(candidates int) int {
	w := o.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > candidates {
		w = candidates
	}
	return w
}

// sweepCand is one equivalence candidate: prove lhs ≡ rhs (both are edges
// into the swept cone) and, if proven, redirect node to target. lhs/rhs are
// literals in the shared cone encoding (fresh-solver mode); lhsRef/rhsRef
// are the same edges as graph refs (oracle mode).
type sweepCand struct {
	node           int32 // the node to be merged away
	target         Ref   // replacement edge installed on success
	lhs, rhs       cnf.Lit
	lhsRef, rhsRef Ref
}

// Sweep performs FRAIG-style reduction on the cone of r: nodes with equal
// (or complementary) simulation signatures are checked for functional
// equivalence with SAT and merged, then the cone is rebuilt. The result is
// functionally equivalent to r.
//
// The candidate checks run on a pool of opt.Workers SAT solvers, each private
// to its goroutine and loaded from one shared Tseitin encoding of the cone.
// Candidates are independent of one another (each compares a node against the
// fixed representative of its signature class), so proven merges are applied
// in deterministic candidate order afterwards and the swept graph is
// bit-identical to the serial result whenever no query hits its budget.
func (g *Graph) Sweep(r Ref, opt SweepOptions) (Ref, SweepStats) {
	var stats SweepStats
	// Fault-injection seam: sweeping is an optimization, so a fault here is
	// contained by skipping the sweep — the unswept cone is equivalent.
	if err := faults.Fire(faults.AIGSweep); err != nil {
		stats.Skipped++
		return r, stats
	}
	if r.IsConst() {
		return r, stats
	}
	cone := g.coneNodes(r)
	if len(cone) < 2 {
		return r, stats
	}
	support := g.Support(r)
	vars := make([]cnf.Var, 0, len(support))
	for v := range support {
		vars = append(vars, v)
	}
	// Sorted, so every input gets the same pseudo-random pattern stream on
	// every run and sweeping is deterministic end to end.
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	if opt.SimWords <= 0 {
		opt.SimWords = 8
	}
	var stop atomic.Bool
	expired := func() bool {
		if opt.Deadline.IsZero() && opt.Budget == nil {
			return false
		}
		if stop.Load() {
			return true
		}
		if (!opt.Deadline.IsZero() && time.Now().After(opt.Deadline)) || opt.Budget.Stopped() {
			stop.Store(true)
			return true
		}
		return false
	}

	// Multi-word patterns, generated word-major over the sorted inputs so the
	// stream matches the historical one-word-per-round simulation bit for bit
	// (signatures, buckets, and candidate order are unchanged).
	seed := rng(0x2545f4914f6cdd1d)
	patterns := make(map[cnf.Var][]uint64, len(vars))
	for _, v := range vars {
		patterns[v] = make([]uint64, opt.SimWords)
	}
	for w := 0; w < opt.SimWords; w++ {
		for _, v := range vars {
			patterns[v][w] = seed.next()
		}
	}
	// One pass over the cone computes all opt.SimWords signature words per
	// node at once, instead of opt.SimWords full cone traversals. Deadline
	// and Budget are polled here too, so a huge cone cancels promptly
	// mid-simulation rather than only once the candidate loop starts.
	sigs := make(map[int32][]uint64, len(cone))
	zeroSig := make([]uint64, opt.SimWords)
	edgeSig := func(e Ref) ([]uint64, bool) {
		if e.node() == 0 {
			return zeroSig, e.Compl()
		}
		return sigs[e.node()], e.Compl()
	}
	for i, n := range cone {
		if i&255 == 0 && expired() {
			// Cancelled mid-simulation: leave the cone unswept (equivalent).
			return r, stats
		}
		nd := &g.nodes[n]
		sig := make([]uint64, opt.SimWords)
		if nd.v != 0 {
			copy(sig, patterns[nd.v])
		} else {
			a, ac := edgeSig(nd.f0)
			b, bc := edgeSig(nd.f1)
			for w := range sig {
				aw, bw := a[w], b[w]
				if ac {
					aw = ^aw
				}
				if bc {
					bw = ^bw
				}
				sig[w] = aw & bw
			}
		}
		sigs[n] = sig
	}

	// Group nodes by normalized signature: if word 0 has bit 0 set, use the
	// complemented signature (tracking the phase) so that complementary
	// functions land in the same bucket.
	type bucketKey string
	normSig := func(n int32) (bucketKey, bool) {
		s := sigs[n]
		inv := s[0]&1 == 1
		buf := make([]byte, 0, len(s)*8)
		for _, w := range s {
			if inv {
				w = ^w
			}
			for i := 0; i < 8; i++ {
				buf = append(buf, byte(w>>(8*i)))
			}
		}
		return bucketKey(buf), inv
	}
	buckets := make(map[bucketKey][]int32)
	var keys []bucketKey
	for _, n := range cone { // cone is topologically sorted, so members are too
		key, _ := normSig(n)
		if _, seen := buckets[key]; !seen {
			keys = append(keys, key)
		}
		buckets[key] = append(buckets[key], n)
	}
	// Deterministic class order: by topologically smallest representative.
	sort.Slice(keys, func(i, j int) bool {
		return buckets[keys[i]][0] < buckets[keys[j]][0]
	})

	// One immutable Tseitin encoding of the cone, shared by every worker.
	// In oracle mode the persistent oracles already hold (or lazily extend)
	// their own encodings, so the shared one is skipped entirely.
	var formula *cnf.Formula
	var nodeLit map[int32]cnf.Lit
	if opt.Oracles == nil {
		formula, nodeLit = g.coneCNF(r, 0)
	}
	litOf := func(e Ref) cnf.Lit {
		if nodeLit == nil {
			return 0
		}
		return nodeLit[e.node()].XorSign(e.Compl())
	}

	// Candidate list, in deterministic order: merge each class member into
	// its representative. A representative is never itself merged away (each
	// node sits in exactly one class), so candidates are mutually
	// independent and can be checked in any order — or concurrently.
	var cands []sweepCand
	for _, key := range keys {
		members := buckets[key]
		if len(members) < 2 {
			continue
		}
		repNode := members[0]
		_, invRep := normSig(repNode)
		repRef := Ref(repNode << 1).XorSign(invRep)
		for _, n := range members[1:] {
			_, invN := normSig(n)
			nRef := Ref(n << 1).XorSign(invN)
			cands = append(cands, sweepCand{
				node:   n,
				target: repRef.XorSign(invN),
				lhs:    litOf(repRef),
				rhs:    litOf(nRef),
				lhsRef: repRef,
				rhsRef: nRef,
			})
		}
	}
	if len(cands) == 0 {
		return r, stats
	}

	workers := opt.poolSize(len(cands))
	stats.Workers = workers
	proven := make([]bool, len(cands))

	// runWorker checks cands[w], cands[w+workers], ... on a private solver.
	// Static striding keeps each worker's query sequence — and therefore any
	// budget-exhaustion outcome — deterministic for a fixed pool size.
	//
	// A panic escaping a SAT query (notably an injected one) is contained
	// here rather than killing the pool: the worker's remaining candidates
	// stay unproven, which is sound because unproven pairs are simply not
	// merged. Containment must live in the worker goroutine itself — a
	// recover further up the call stack cannot catch it.
	runWorker := func(w int) (st SweepStats) {
		defer func() {
			if rec := recover(); rec != nil {
				st.Panics++
			}
		}()
		var solver *sat.Solver
		var orc SweepOracle
		var compact0 int64
		if opt.Oracles != nil {
			orc = opt.Oracles.WorkerOracle(w)
			_, compact0 = orc.Footprint()
		} else {
			solver = sat.New()
			solver.AddFormula(formula)
			solver.ConflictBudget = opt.ConflictBudget
			solver.Budget = opt.Budget
		}
		for i := w; i < len(cands); i += workers {
			if st.Candidates%8 == 0 && expired() {
				break
			}
			st.Candidates++
			c := cands[i]
			if orc != nil {
				ok, calls := orc.ProveEquiv(c.lhsRef, c.rhsRef, opt.ConflictBudget, opt.Budget)
				st.SatCalls += calls
				if ok {
					proven[i] = true
				}
				continue
			}
			// lhs≠rhs ⇔ (lhs ∧ ¬rhs) ∨ (¬lhs ∧ rhs): query both branches
			// via assumptions.
			st.SatCalls++
			s1, err := solver.SolveErr([]cnf.Lit{c.lhs, c.rhs.Not()})
			if err != nil || s1 == sat.Sat {
				continue
			}
			st.SatCalls++
			s2, err := solver.SolveErr([]cnf.Lit{c.lhs.Not(), c.rhs})
			if err != nil || s2 == sat.Sat {
				continue
			}
			proven[i] = true
		}
		if orc != nil {
			ab, compact1 := orc.Footprint()
			st.ArenaBytes = ab
			st.Compactions = compact1 - compact0
		} else {
			st.ArenaBytes = solver.ArenaBytes()
			st.Compactions = solver.Stats.Compactions
		}
		return st
	}

	if workers == 1 {
		stats.Add(runWorker(0))
	} else {
		workerStats := make([]SweepStats, workers)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				workerStats[w] = runWorker(w)
			}(w)
		}
		wg.Wait()
		for _, st := range workerStats {
			stats.Add(st)
		}
	}

	// Merge phase: apply proven equivalences in candidate order. Because the
	// verdicts are independent, this reproduces the serial merge set exactly.
	repl := make(map[int32]Ref, len(cands))
	for i, c := range cands {
		if proven[i] {
			repl[c.node] = c.target
			stats.Merged++
		}
	}
	if len(repl) == 0 {
		return r, stats
	}

	// Rebuild the cone applying replacements bottom-up.
	rebuilt := make(map[int32]Ref, len(cone))
	var rebuild func(e Ref) Ref
	rebuild = func(e Ref) Ref {
		n := e.node()
		if n == 0 {
			return e
		}
		if t, ok := repl[n]; ok {
			// The replacement target itself may contain replaced nodes.
			return rebuild(t).XorSign(e.Compl())
		}
		if out, ok := rebuilt[n]; ok {
			return out.XorSign(e.Compl())
		}
		nd := g.nodes[n]
		var out Ref
		if nd.v != 0 {
			out = Ref(n << 1)
		} else {
			out = g.And(rebuild(nd.f0), rebuild(nd.f1))
		}
		rebuilt[n] = out
		return out.XorSign(e.Compl())
	}
	return rebuild(r), stats
}
