package aig

import "testing"

// benchSweep measures the wall-clock of one full sweep (simulation, SAT
// candidate checks, rebuild) over a freshly built redundant cone, for a given
// worker pool size. Serial vs pool variants share the construction so the
// numbers compare directly.
func benchSweep(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := New()
		r := buildRedundantCone(g, 24)
		b.StartTimer()
		_, st := g.Sweep(r, SweepOptions{SimWords: 8, Workers: workers})
		if st.Merged == 0 {
			b.Fatal("benchmark cone produced no merges")
		}
	}
}

func BenchmarkSweepSerial(b *testing.B)      { benchSweep(b, 1) }
func BenchmarkSweepWorkers2(b *testing.B)    { benchSweep(b, 2) }
func BenchmarkSweepWorkers4(b *testing.B)    { benchSweep(b, 4) }
func BenchmarkSweepWorkersAuto(b *testing.B) { benchSweep(b, -1) }
