package aig

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// buildRedundantCone constructs a cone containing many structurally distinct
// but functionally equivalent subgraphs (associativity and De Morgan
// variants), the raw material SAT sweeping exists to merge. The construction
// is deterministic so that two calls on fresh graphs yield identical node
// numbering.
func buildRedundantCone(g *Graph, groups int) Ref {
	var parts []Ref
	for i := 0; i < groups; i++ {
		base := cnf.Var(1 + 3*i)
		a, b, c := g.Input(base), g.Input(base+1), g.Input(base+2)
		// (a∧b)∧c vs a∧(b∧c): equivalent, structurally different.
		left := g.And(g.And(a, b), c)
		right := g.And(a, g.And(b, c))
		// a⊕b built two ways.
		xor1 := g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
		xor2 := g.And(g.Or(a, b), g.And(a, b).Not())
		// Keep all variants in the cone without collapsing them structurally.
		parts = append(parts,
			g.Or(left, g.And(xor1, c)),
			g.Or(right.Not(), g.And(xor2, c.Not())),
		)
	}
	return g.OrN(parts...)
}

// TestSweepParallelMatchesSerial checks the determinism guarantee: with an
// unlimited conflict budget, sweeping with a worker pool must prove exactly
// the same equivalences — and rebuild exactly the same graph — as the serial
// sweep.
func TestSweepParallelMatchesSerial(t *testing.T) {
	build := func() (*Graph, Ref) {
		g := New()
		return g, buildRedundantCone(g, 6)
	}
	gSerial, r := build()
	serialRef, serialStats := gSerial.Sweep(r, SweepOptions{SimWords: 8, Workers: 1})
	if serialStats.Merged == 0 {
		t.Fatal("redundant cone should produce merges")
	}
	for _, workers := range []int{2, 4, -1} {
		gPar, rp := build()
		if rp != r {
			t.Fatal("deterministic construction produced different refs")
		}
		parRef, parStats := gPar.Sweep(rp, SweepOptions{SimWords: 8, Workers: workers})
		if parRef != serialRef {
			t.Fatalf("workers=%d: swept ref %v differs from serial %v", workers, parRef, serialRef)
		}
		if parStats.Merged != serialStats.Merged {
			t.Fatalf("workers=%d: merged %d pairs, serial merged %d",
				workers, parStats.Merged, serialStats.Merged)
		}
		if got, want := gPar.ConeSize(parRef), gSerial.ConeSize(serialRef); got != want {
			t.Fatalf("workers=%d: final cone size %d, serial %d", workers, got, want)
		}
		if gPar.NumNodes() != gSerial.NumNodes() {
			t.Fatalf("workers=%d: graph has %d nodes, serial %d",
				workers, gPar.NumNodes(), gSerial.NumNodes())
		}
		if !gPar.Equivalent(rp, parRef) {
			t.Fatalf("workers=%d: sweep changed the function", workers)
		}
	}
}

// TestSweepParallelPreservesSemanticsRandom cross-checks the concurrent path
// against exhaustive truth tables on random AIGs (and is the main target of
// `go test -race ./internal/aig`).
func TestSweepParallelPreservesSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1789))
	vs := []cnf.Var{1, 2, 3, 4}
	for iter := 0; iter < 40; iter++ {
		g := New()
		r := randomAIG(g, rng, vs, 20)
		opt := DefaultSweepOptions()
		opt.Workers = 1 + rng.Intn(4)
		swept, _ := g.Sweep(r, opt)
		if !eqTables(truthTable(g, r, vs), truthTable(g, swept, vs)) {
			t.Fatalf("iter %d (workers=%d): sweep changed semantics", iter, opt.Workers)
		}
	}
}

// TestSweepStatsCounters checks the observability counters of the sweep.
func TestSweepStatsCounters(t *testing.T) {
	g := New()
	r := buildRedundantCone(g, 4)
	_, st := g.Sweep(r, SweepOptions{SimWords: 8, Workers: 3})
	if st.Workers < 1 || st.Workers > 3 {
		t.Fatalf("workers = %d, want 1..3", st.Workers)
	}
	if st.SatCalls == 0 {
		t.Fatal("expected SAT calls")
	}
	if st.ArenaBytes <= 0 {
		t.Fatal("expected a positive peak arena size")
	}
	if st.Candidates < st.Merged {
		t.Fatalf("candidates %d < merged %d", st.Candidates, st.Merged)
	}
	// Aggregation across sweeps keeps peaks and sums.
	var agg SweepStats
	agg.Add(st)
	agg.Add(SweepStats{SatCalls: 1, ArenaBytes: st.ArenaBytes / 2, Workers: 1})
	if agg.SatCalls != st.SatCalls+1 || agg.ArenaBytes != st.ArenaBytes || agg.Workers != st.Workers {
		t.Fatalf("bad aggregation: %+v", agg)
	}
}
