package aig

import (
	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// CNFBuilder incrementally Tseitin-encodes AIG cones into a SAT solver,
// reusing encodings across calls. It is the bridge between the AIG world and
// the CDCL oracle (SAT sweeping, final SAT checks, iDQ verification).
type CNFBuilder struct {
	g       *Graph
	s       *sat.Solver
	nodeVar map[int32]cnf.Var // AIG node -> SAT variable
}

// NewCNFBuilder returns a builder encoding cones of g into s.
func NewCNFBuilder(g *Graph, s *sat.Solver) *CNFBuilder {
	return &CNFBuilder{g: g, s: s, nodeVar: make(map[int32]cnf.Var)}
}

// EncodedNodes returns how many AIG nodes currently have SAT encodings in
// this builder. The map only grows: the AIG is append-only, so a Tseitin
// definition once pushed stays valid forever, and successive Lit calls add
// only the delta of newly reachable cone nodes.
func (b *CNFBuilder) EncodedNodes() int { return len(b.nodeVar) }

// InputSATVar returns the SAT variable used for AIG input variable v,
// allocating the encoding lazily. It allows callers to constrain inputs.
func (b *CNFBuilder) InputSATVar(v cnf.Var) cnf.Var {
	r := b.g.Input(v)
	return b.nodeSATVar(r.node())
}

func (b *CNFBuilder) nodeSATVar(n int32) cnf.Var {
	if sv, ok := b.nodeVar[n]; ok {
		return sv
	}
	sv := b.s.NewVar()
	b.nodeVar[n] = sv
	return sv
}

// Lit encodes the cone of r (if not yet encoded) and returns the SAT literal
// equivalent to r.
func (b *CNFBuilder) Lit(r Ref) cnf.Lit {
	if r.node() == 0 {
		return b.edgeLit(r)
	}
	for _, n := range b.g.coneNodes(r) {
		if _, done := b.nodeVar[n]; done {
			continue
		}
		nd := &b.g.nodes[n]
		sv := b.nodeSATVar(n)
		if nd.v != 0 {
			continue // inputs are free variables
		}
		gl := cnf.PosLit(sv)
		a := b.edgeLit(nd.f0)
		c := b.edgeLit(nd.f1)
		// g ↔ a ∧ c
		b.s.AddClause(gl.Not(), a)
		b.s.AddClause(gl.Not(), c)
		b.s.AddClause(gl, a.Not(), c.Not())
	}
	return b.edgeLit(r)
}

func (b *CNFBuilder) edgeLit(e Ref) cnf.Lit {
	n := e.node()
	if n == 0 {
		tv := b.nodeSATVar(0)
		b.s.AddClause(cnf.PosLit(tv))
		// Ref 0 = false, Ref 1 = true.
		return cnf.NewLit(tv, !e.Compl())
	}
	return cnf.NewLit(b.nodeVar[n], false).XorSign(e.Compl())
}

// ToFormula Tseitin-encodes the cone of r into a standalone CNF formula.
// Input variables keep their AIG variable numbers; internal gate variables
// are allocated above maxInputVar (which is raised to the largest support
// variable if needed). It returns the formula and the literal equivalent
// to r; asserting that literal makes the formula equisatisfiable with r.
func (g *Graph) ToFormula(r Ref, maxInputVar cnf.Var) (*cnf.Formula, cnf.Lit) {
	if r.IsConst() {
		f := cnf.NewFormula(int(maxInputVar))
		// Represent with a fresh variable forced appropriately.
		t := f.NewVar()
		f.AddClause(cnf.PosLit(t))
		return f, cnf.NewLit(t, !r.Compl())
	}
	f, nodeLit := g.coneCNF(r, maxInputVar)
	return f, nodeLit[r.node()].XorSign(r.Compl())
}

// coneCNF Tseitin-encodes the whole cone of r into a standalone CNF formula
// and returns, along with it, the positive literal of every cone node. Input
// variables keep their AIG variable numbers; gate variables are allocated
// above maxInputVar (raised to the largest support variable if needed).
//
// The formula is immutable once built, which lets SAT-sweeping workers load
// identical private solvers from one shared encoding (see sweep.go).
func (g *Graph) coneCNF(r Ref, maxInputVar cnf.Var) (*cnf.Formula, map[int32]cnf.Lit) {
	for v := range g.Support(r) {
		if v > maxInputVar {
			maxInputVar = v
		}
	}
	f := cnf.NewFormula(int(maxInputVar))
	nodeLit := make(map[int32]cnf.Lit)
	for _, n := range g.coneNodes(r) {
		nd := &g.nodes[n]
		if nd.v != 0 {
			nodeLit[n] = cnf.PosLit(nd.v)
			continue
		}
		gv := f.NewVar()
		gl := cnf.PosLit(gv)
		a := nodeLit[nd.f0.node()].XorSign(nd.f0.Compl())
		c := nodeLit[nd.f1.node()].XorSign(nd.f1.Compl())
		f.AddClause(gl.Not(), a)
		f.AddClause(gl.Not(), c)
		f.AddClause(gl, a.Not(), c.Not())
		nodeLit[n] = gl
	}
	return f, nodeLit
}

// IsSatisfiable checks satisfiability of the function rooted at r with the
// CDCL solver. If sat, it also returns a satisfying input assignment.
func (g *Graph) IsSatisfiable(r Ref) (bool, map[cnf.Var]bool) {
	sat, model, _ := g.IsSatisfiableBudget(r, nil)
	return sat, model
}

// IsSatisfiableBudget is IsSatisfiable under a cancellable budget: the CDCL
// search polls bud and, when stopped, the call returns a non-nil error (the
// budget's reason) with an indeterminate first result.
func (g *Graph) IsSatisfiableBudget(r Ref, bud *budget.Budget) (bool, map[cnf.Var]bool, error) {
	if r == True {
		return true, map[cnf.Var]bool{}, nil
	}
	if r == False {
		return false, nil, nil
	}
	s := sat.New()
	s.Budget = bud
	b := NewCNFBuilder(g, s)
	l := b.Lit(r)
	s.AddClause(l)
	st, err := s.SolveErr(nil)
	if st == sat.Unknown {
		if err == nil {
			err = sat.ErrBudget
		}
		return false, nil, err
	}
	if st != sat.Sat {
		return false, nil, nil
	}
	m := s.Model()
	out := make(map[cnf.Var]bool)
	for v := range g.Support(r) {
		sv := b.nodeVar[g.Input(v).node()]
		out[v] = m.Get(sv)
	}
	return true, out, nil
}

// Equivalent checks whether the functions rooted at a and b are equivalent,
// using SAT on the XOR miter.
func (g *Graph) Equivalent(a, b Ref) bool {
	miter := g.Xor(a, b)
	sat, _ := g.IsSatisfiable(miter)
	return !sat
}
