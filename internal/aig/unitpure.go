package aig

import "repro/internal/cnf"

// Polarity classifies a variable according to the syntactic unit/pure check
// of the paper's Theorem 6.
type Polarity struct {
	PosUnit bool // a negation-free path from the input to the output exists
	NegUnit bool // a path whose only negation is directly at the input exists
	PosPure bool // every path has an even number of negations
	NegPure bool // every path has an odd number of negations
}

// UnitPure runs the linear-time path-parity traversal of Theorem 6 on the
// cone of r and returns, for every input variable in the support, its
// syntactic classification.
//
// The flags per node are "reachable from the output along a path with an even
// (odd) number of complemented edges" and "reachable along a path with no
// complemented edge at all"; the complement bit of r itself counts as an edge
// negation. The traversal is O(|cone| + |V|), matching the paper.
func (g *Graph) UnitPure(r Ref) map[cnf.Var]Polarity {
	out := make(map[cnf.Var]Polarity)
	if r.IsConst() {
		return out
	}
	cone := g.coneNodes(r)
	type flags struct {
		even, odd, clean bool
	}
	fl := make(map[int32]*flags, len(cone))
	for _, n := range cone {
		fl[n] = &flags{}
	}
	root := fl[r.node()]
	if r.Compl() {
		root.odd = true
	} else {
		root.even = true
		root.clean = true
	}
	// Node indices are a topological order: parents have larger indices than
	// children, so a single descending pass propagates all flags.
	for i := len(cone) - 1; i >= 0; i-- {
		n := cone[i]
		nd := &g.nodes[n]
		if nd.v != 0 {
			continue
		}
		f := fl[n]
		for _, e := range []Ref{nd.f0, nd.f1} {
			cf := fl[e.node()]
			if e.Compl() {
				cf.even = cf.even || f.odd
				cf.odd = cf.odd || f.even
			} else {
				cf.even = cf.even || f.even
				cf.odd = cf.odd || f.odd
				cf.clean = cf.clean || f.clean
			}
		}
	}
	for _, n := range cone {
		nd := &g.nodes[n]
		if nd.v == 0 {
			continue
		}
		f := fl[n]
		p := Polarity{
			PosPure: !f.odd,
			NegPure: !f.even,
		}
		// Unit flags: find a parent AND with a clean path whose edge to this
		// input decides the polarity. The root itself being the input is the
		// degenerate case.
		if r.node() == n {
			if !r.Compl() {
				p.PosUnit = true
			} else {
				p.NegUnit = true
			}
		}
		out[nd.v] = p
	}
	// Second pass for unit flags via parent edges.
	for _, n := range cone {
		nd := &g.nodes[n]
		if nd.v != 0 {
			continue
		}
		f := fl[n]
		if !f.clean {
			continue
		}
		for _, e := range []Ref{nd.f0, nd.f1} {
			cn := e.node()
			cv := g.nodes[cn].v
			if cv == 0 {
				continue
			}
			p := out[cv]
			if e.Compl() {
				p.NegUnit = true
			} else {
				p.PosUnit = true
			}
			out[cv] = p
		}
	}
	return out
}
