package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
)

// AblationVariant is one HQS configuration under study.
type AblationVariant struct {
	Name string
	Opt  core.Options
}

// AblationVariants returns the design-choice ablations DESIGN.md calls out:
// the elimination-set strategy (paper MaxSAT vs greedy vs eliminate-all),
// the copy-cost ordering, unit/pure detection, SAT sweeping, and CNF
// preprocessing.
func AblationVariants() []AblationVariant {
	mk := func(name string, mut func(*core.Options)) AblationVariant {
		o := core.DefaultOptions()
		mut(&o)
		return AblationVariant{Name: name, Opt: o}
	}
	return []AblationVariant{
		mk("default(maxsat)", func(o *core.Options) {}),
		mk("elimset=greedy", func(o *core.Options) { o.Strategy = core.ElimGreedy }),
		mk("elimset=all", func(o *core.Options) { o.Strategy = core.ElimAll }),
		mk("order=reverse", func(o *core.Options) { o.ReverseElimOrder = true }),
		mk("unitpure=off", func(o *core.Options) { o.UnitPure = false; o.QBF.UnitPure = false }),
		mk("sweep=off", func(o *core.Options) { o.SweepThreshold = 0; o.QBF.SweepThreshold = 0 }),
		mk("preprocess=off", func(o *core.Options) { o.Preprocess = false; o.DetectGates = false }),
	}
}

// AblationRow aggregates one variant over an instance set.
type AblationRow struct {
	Name         string
	Solved       int
	Timeouts     int
	Memouts      int
	TotalSeconds float64 // over solved instances
	PeakNodesSum int
}

// RunAblation runs every variant over the instances sequentially (one
// variant at a time, so timings are comparable).
func RunAblation(instances []Instance, variants []AblationVariant, timeout time.Duration, nodeLimit int) []AblationRow {
	var rows []AblationRow
	for _, v := range variants {
		row := AblationRow{Name: v.Name}
		opt := v.Opt
		opt.Timeout = timeout
		opt.NodeLimit = nodeLimit
		for _, inst := range instances {
			start := time.Now()
			res := core.New(opt).Solve(inst.Formula)
			sec := time.Since(start).Seconds()
			switch res.Status {
			case core.Solved:
				row.Solved++
				row.TotalSeconds += sec
			case core.Timeout:
				row.Timeouts++
			case core.Memout:
				row.Memouts++
			}
			row.PeakNodesSum += res.Stats.PeakAIGNodes
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatAblation renders the ablation rows as a table.
func FormatAblation(rows []AblationRow, nInstances int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %4s %4s %12s %12s\n",
		"variant", "solved", "TO", "MO", "time [s]", "peak nodes")
	b.WriteString(strings.Repeat("-", 64) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %5d/%-3d %4d %4d %12.2f %12d\n",
			r.Name, r.Solved, nInstances, r.Timeouts, r.Memouts, r.TotalSeconds, r.PeakNodesSum)
	}
	return b.String()
}
