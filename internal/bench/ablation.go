package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// AblationVariant is one HQS configuration under study.
type AblationVariant struct {
	Name string
	Opt  core.Options
}

// AblationVariants returns the design-choice ablations DESIGN.md calls out:
// the elimination-set strategy (paper MaxSAT vs greedy vs eliminate-all),
// the copy-cost ordering, unit/pure detection, SAT sweeping, and CNF
// preprocessing.
func AblationVariants() []AblationVariant {
	mk := func(name string, mut func(*core.Options)) AblationVariant {
		o := core.DefaultOptions()
		mut(&o)
		return AblationVariant{Name: name, Opt: o}
	}
	return []AblationVariant{
		mk("default(maxsat)", func(o *core.Options) {}),
		mk("elimset=greedy", func(o *core.Options) { o.Strategy = core.ElimGreedy }),
		mk("elimset=all", func(o *core.Options) { o.Strategy = core.ElimAll }),
		mk("order=reverse", func(o *core.Options) { o.ReverseElimOrder = true }),
		mk("unitpure=off", func(o *core.Options) { o.UnitPure = false; o.QBF.UnitPure = false }),
		mk("sweep=off", func(o *core.Options) { o.SweepThreshold = 0; o.QBF.SweepThreshold = 0 }),
		mk("preprocess=off", func(o *core.Options) { o.Preprocess = false; o.DetectGates = false }),
		mk("oracle=fresh", func(o *core.Options) { o.FreshOracle = true }),
	}
}

// AblationRow aggregates one variant over an instance set.
type AblationRow struct {
	Name         string
	Solved       int
	Timeouts     int
	Memouts      int
	TotalSeconds float64 // over solved instances
	PeakNodesSum int
	// OracleQueries / OracleIncremental sum the persistent-oracle reuse
	// counters over every instance: how many SAT queries the variant issued
	// and how many of them reused a live solver instead of rebuilding one.
	OracleQueries     int64
	OracleIncremental int64
	// PassSeconds is the per-pass wall-time breakdown summed over every
	// instance, keyed "stage/pass" ("hqs/thm1", "qbf/sweep", ...) — where a
	// variant's time goes, not just how much of it.
	PassSeconds map[string]float64
}

// RunAblation runs every variant over the instances sequentially (one
// variant at a time, so timings are comparable). Every solve runs with a
// trace recorder so each row also carries its per-pass time breakdown.
func RunAblation(instances []Instance, variants []AblationVariant, timeout time.Duration, nodeLimit int) []AblationRow {
	var rows []AblationRow
	for _, v := range variants {
		row := AblationRow{Name: v.Name, PassSeconds: make(map[string]float64)}
		opt := v.Opt
		opt.Timeout = timeout
		opt.NodeLimit = nodeLimit
		for _, inst := range instances {
			rec := trace.NewRecorder(0)
			opt.Trace = rec
			start := time.Now()
			res := core.New(opt).SolveDQBF(inst.Formula)
			sec := time.Since(start).Seconds()
			switch res.Status {
			case core.Solved:
				row.Solved++
				row.TotalSeconds += sec
			case core.Timeout:
				row.Timeouts++
			case core.Memout:
				row.Memouts++
			}
			row.PeakNodesSum += res.Stats.PeakAIGNodes
			row.OracleQueries += res.Stats.Oracle.Queries
			row.OracleIncremental += res.Stats.Oracle.Incremental
			for _, s := range trace.Summarize(rec.Events()) {
				row.PassSeconds[s.Stage+"/"+s.Pass] += s.Wall.Seconds()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatAblation renders the ablation rows as a table.
func FormatAblation(rows []AblationRow, nInstances int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %4s %4s %12s %12s %16s\n",
		"variant", "solved", "TO", "MO", "time [s]", "peak nodes", "oracle q (incr)")
	b.WriteString(strings.Repeat("-", 81) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %5d/%-3d %4d %4d %12.2f %12d %9d (%d)\n",
			r.Name, r.Solved, nInstances, r.Timeouts, r.Memouts, r.TotalSeconds, r.PeakNodesSum,
			r.OracleQueries, r.OracleIncremental)
	}
	return b.String()
}

// FormatPassBreakdown renders each variant's per-pass wall-time breakdown
// (descending by time, up to the top eight passes per variant).
func FormatPassBreakdown(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("per-pass time breakdown [s]:\n")
	for _, r := range rows {
		if len(r.PassSeconds) == 0 {
			continue
		}
		keys := make([]string, 0, len(r.PassSeconds))
		for k := range r.PassSeconds {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if r.PassSeconds[keys[i]] != r.PassSeconds[keys[j]] {
				return r.PassSeconds[keys[i]] > r.PassSeconds[keys[j]]
			}
			return keys[i] < keys[j]
		})
		if len(keys) > 8 {
			keys = keys[:8]
		}
		fmt.Fprintf(&b, "  %-18s", r.Name)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.3f", k, r.PassSeconds[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}
