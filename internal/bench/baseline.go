package bench

import (
	"encoding/json"
	"os"
	"sort"
	"time"
)

// BaselineRow summarizes one (family, solver) cell of a campaign.
type BaselineRow struct {
	Family    string  `json:"family"`
	Solver    string  `json:"solver"`
	Instances int     `json:"instances"`
	Solved    int     `json:"solved"`
	Timeouts  int     `json:"timeouts"`
	Memouts   int     `json:"memouts"`
	TotalSec  float64 `json:"total_seconds"`
	MeanSec   float64 `json:"mean_seconds"`
	MaxSec    float64 `json:"max_seconds"`

	// Persistent-oracle reuse per family (HQS rows only; omitted for iDQ).
	OracleQueries     int64 `json:"oracle_queries,omitempty"`
	OracleIncremental int64 `json:"oracle_incremental,omitempty"`
}

// Baseline is a machine-readable snapshot of a campaign, committed to the
// repo (BENCH_pr*.json) so that later changes can be compared against it.
type Baseline struct {
	CreatedAt string        `json:"created_at"`
	Timeout   string        `json:"timeout"`
	Workers   int           `json:"workers"`
	Rows      []BaselineRow `json:"rows"`

	// Aggregated HQS sweep instrumentation across all instances.
	SweepSatCalls  int   `json:"sweep_sat_calls"`
	SweepMerged    int   `json:"sweep_merged"`
	ArenaPeakBytes int   `json:"arena_peak_bytes"`
	Compactions    int64 `json:"arena_compactions"`

	// Aggregated persistent-oracle reuse across all HQS instances.
	OracleQueries     int64 `json:"oracle_queries"`
	OracleIncremental int64 `json:"oracle_incremental"`
	OracleRebuilds    int64 `json:"oracle_rebuilds"`
}

// ComputeBaseline folds a campaign into baseline rows, one per (family,
// solver) pair, in deterministic family order.
func ComputeBaseline(c *Campaign, opt RunOptions) Baseline {
	type key struct {
		family Family
		solver SolverName
	}
	acc := make(map[key]*BaselineRow)
	order := []key{}
	add := func(rr RunResult) {
		k := key{rr.Family, rr.Solver}
		row, ok := acc[k]
		if !ok {
			row = &BaselineRow{Family: string(rr.Family), Solver: string(rr.Solver)}
			acc[k] = row
			order = append(order, k)
		}
		row.Instances++
		switch rr.Outcome {
		case OutcomeSolved:
			row.Solved++
		case OutcomeTimeout:
			row.Timeouts++
		case OutcomeMemout:
			row.Memouts++
		}
		row.TotalSec += rr.Seconds
		if rr.Seconds > row.MaxSec {
			row.MaxSec = rr.Seconds
		}
		row.OracleQueries += rr.OracleQueries
		row.OracleIncremental += rr.OracleIncremental
	}
	b := Baseline{
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Timeout:   opt.Timeout.String(),
		Workers:   opt.HQSOptions.Workers,
	}
	for _, inst := range c.Order {
		h := c.HQS[inst.Name]
		add(h)
		add(c.IDQ[inst.Name])
		b.SweepSatCalls += h.SweepSatCalls
		b.SweepMerged += h.SweepMerged
		b.Compactions += h.Compactions
		b.OracleQueries += h.OracleQueries
		b.OracleIncremental += h.OracleIncremental
		b.OracleRebuilds += h.OracleRebuilds
		if h.ArenaPeakBytes > b.ArenaPeakBytes {
			b.ArenaPeakBytes = h.ArenaPeakBytes
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].family != order[j].family {
			return order[i].family < order[j].family
		}
		return order[i].solver < order[j].solver
	})
	for _, k := range order {
		row := acc[k]
		if row.Instances > 0 {
			row.MeanSec = row.TotalSec / float64(row.Instances)
		}
		b.Rows = append(b.Rows, *row)
	}
	return b
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
