package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dqbf"
)

func smallGen() GenOptions {
	return GenOptions{Count: 4, Seed: 42, MaxWidth: 3}
}

func quickRun() RunOptions {
	opt := DefaultRunOptions()
	opt.Timeout = 1500 * time.Millisecond
	opt.IDQMaxInstantiations = 200_000
	return opt
}

func TestGenerateFamilies(t *testing.T) {
	for _, f := range Families {
		insts, err := Generate(f, smallGen())
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(insts) != 4 {
			t.Fatalf("%s: %d instances", f, len(insts))
		}
		for _, inst := range insts {
			if err := inst.Formula.Validate(); err != nil {
				t.Fatalf("%s %s: invalid formula: %v", f, inst.Name, err)
			}
			if inst.Universals == 0 || len(inst.Formula.Exist) == 0 {
				t.Fatalf("%s %s: degenerate prefix", f, inst.Name)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(FamilyAdder, smallGen())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(FamilyAdder, smallGen())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			len(a[i].Formula.Matrix.Clauses) != len(b[i].Formula.Matrix.Clauses) {
			t.Fatalf("instance %d differs between generations", i)
		}
	}
}

func TestSomeInstancesTrulyDQBF(t *testing.T) {
	// A benchmark set without non-linear prefixes would not exercise DQBF
	// at all; require at least one cyclic instance per multi-box family.
	insts, err := Generate(FamilyAdder, GenOptions{Count: 10, Seed: 7, MaxWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cyclic := 0
	for _, inst := range insts {
		if dqbf.IsCyclic(inst.Formula) {
			cyclic++
		}
	}
	if cyclic == 0 {
		t.Fatal("no instance with a non-linear prefix generated")
	}
}

func TestCampaignShape(t *testing.T) {
	// A small campaign must reproduce the paper's qualitative result: HQS
	// solves at least as many instances as iDQ, the solvers never disagree,
	// and both verdict classes occur.
	insts, err := GenerateAll(smallGen())
	if err != nil {
		t.Fatal(err)
	}
	var all []Instance
	for _, f := range Families {
		all = append(all, insts[f]...)
	}
	c := Run(all, quickRun())
	if d := c.Disagreements(); len(d) != 0 {
		t.Fatalf("solver disagreements on %v", d)
	}
	rows := TableI(c)
	total := rows[len(rows)-1]
	if total.Family != "total" {
		t.Fatal("missing total row")
	}
	if total.HQS.Solved < total.IDQ.Solved {
		t.Fatalf("HQS solved %d < iDQ %d — paper shape violated",
			total.HQS.Solved, total.IDQ.Solved)
	}
	if total.HQS.Solved == 0 {
		t.Fatal("HQS solved nothing")
	}
	if total.HQS.SatCount == 0 || total.HQS.UnsatCnt == 0 {
		t.Fatalf("need both SAT and UNSAT instances, got %d/%d",
			total.HQS.SatCount, total.HQS.UnsatCnt)
	}
	// Table renders.
	s := FormatTableI(rows)
	if !strings.Contains(s, "adder") || !strings.Contains(s, "total") {
		t.Fatalf("table missing rows:\n%s", s)
	}
	// Fig. 4 data covers every instance.
	pts := Figure4(c)
	if len(pts) != len(all) {
		t.Fatalf("scatter has %d points for %d instances", len(pts), len(all))
	}
	csv := FormatFigure4CSV(pts)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(all)+1 {
		t.Fatal("CSV row count wrong")
	}
	// Stats are populated.
	st := ComputeStats(c)
	if st.HQSSolvedUnder1s <= 0 {
		t.Fatalf("stats: under-1s fraction = %v", st.HQSSolvedUnder1s)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeSolved.String() != "solved" || OutcomeTimeout.String() != "TO" || OutcomeMemout.String() != "MO" {
		t.Fatal("Outcome.String broken")
	}
}

func TestScalingStudy(t *testing.T) {
	opt := quickRun()
	pts, err := ScalingStudy(FamilyPecXor, []int{2, 3}, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	for _, p := range pts {
		if p.Instances != 2 {
			t.Fatalf("instances = %d", p.Instances)
		}
		if p.HQSSolved < p.IDQSolved {
			t.Fatalf("width %d: HQS solved fewer than iDQ", p.Width)
		}
	}
	out := FormatScaling(FamilyPecXor, pts, opt.Timeout)
	if !strings.Contains(out, "width") {
		t.Fatal("missing header")
	}
}

func TestAblationRunner(t *testing.T) {
	insts, err := Generate(FamilyPecXor, GenOptions{Count: 3, Seed: 5, MaxWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	variants := AblationVariants()[:2] // default + greedy
	rows := RunAblation(insts, variants, time.Second, 1_000_000)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.Solved+r.Timeouts+r.Memouts != len(insts) {
			t.Fatalf("row %q does not account for all instances: %+v", r.Name, r)
		}
		if r.Solved == 0 {
			t.Fatalf("row %q solved nothing", r.Name)
		}
	}
	if !strings.Contains(FormatAblation(rows, len(insts)), "variant") {
		t.Fatal("missing ablation header")
	}
}

func TestAblationVariantsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, v := range AblationVariants() {
		names[v.Name] = true
	}
	for _, want := range []string{
		"default(maxsat)", "elimset=greedy", "elimset=all", "order=reverse",
		"unitpure=off", "sweep=off", "preprocess=off",
	} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestExtensionFamilies(t *testing.T) {
	for _, f := range ExtensionFamilies {
		insts, err := Generate(f, GenOptions{Count: 3, Seed: 8, MaxWidth: 3})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, inst := range insts {
			if err := inst.Formula.Validate(); err != nil {
				t.Fatalf("%s %s: %v", f, inst.Name, err)
			}
		}
		c := Run(insts, quickRun())
		if d := c.Disagreements(); len(d) != 0 {
			t.Fatalf("%s: disagreements %v", f, d)
		}
		row := TableI(c)[0]
		if row.HQS.Solved == 0 {
			t.Fatalf("%s: HQS solved nothing", f)
		}
	}
}
