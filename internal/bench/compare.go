package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReadBaseline parses a committed BENCH_pr*.json snapshot.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return b, nil
}

// CompareRow is the delta of one (family, solver) cell between two baselines.
type CompareRow struct {
	Family string
	Solver string
	// Solved counts in old/new; a drop is always a gate failure.
	OldSolved, NewSolved int
	// Total wall time over the cell's instances in old/new.
	OldSec, NewSec float64
	// Ratio is NewSec/OldSec (1 when OldSec is below the noise floor).
	Ratio float64
}

// Comparison is a family-by-family delta between two baseline snapshots.
type Comparison struct {
	Rows []CompareRow
	// NewOnly / OldOnly name cells present in one snapshot but not the other
	// (family sets changed between the two campaigns); they never gate.
	NewOnly, OldOnly []string
}

// minGateSec is the per-cell noise floor: cells whose old total wall time is
// under this never fail the time gate (a 10% regression of 5 ms is scheduler
// jitter, not a perf regression).
const minGateSec = 0.05

// Compare aligns two baselines by (family, solver) cell.
func Compare(old, new Baseline) Comparison {
	type key struct{ family, solver string }
	oldRows := make(map[key]BaselineRow, len(old.Rows))
	for _, r := range old.Rows {
		oldRows[key{r.Family, r.Solver}] = r
	}
	var c Comparison
	seen := make(map[key]bool, len(new.Rows))
	for _, nr := range new.Rows {
		k := key{nr.Family, nr.Solver}
		seen[k] = true
		or, ok := oldRows[k]
		if !ok {
			c.NewOnly = append(c.NewOnly, nr.Family+"/"+nr.Solver)
			continue
		}
		row := CompareRow{
			Family:    nr.Family,
			Solver:    nr.Solver,
			OldSolved: or.Solved,
			NewSolved: nr.Solved,
			OldSec:    or.TotalSec,
			NewSec:    nr.TotalSec,
			Ratio:     1,
		}
		if or.TotalSec >= minGateSec {
			row.Ratio = nr.TotalSec / or.TotalSec
		}
		c.Rows = append(c.Rows, row)
	}
	for _, or := range old.Rows {
		if !seen[key{or.Family, or.Solver}] {
			c.OldOnly = append(c.OldOnly, or.Family+"/"+or.Solver)
		}
	}
	return c
}

// Gate returns the regressions the comparison shows: any cell that solves
// fewer instances than before, or whose wall time grew by more than the
// threshold (0.10 = fail above 110% of the old time) while the old time was
// above the noise floor. An empty slice means the gate passes.
func (c Comparison) Gate(threshold float64) []string {
	var fails []string
	for _, r := range c.Rows {
		if r.NewSolved < r.OldSolved {
			fails = append(fails, fmt.Sprintf("%s/%s: solved %d -> %d",
				r.Family, r.Solver, r.OldSolved, r.NewSolved))
		}
		if r.Ratio > 1+threshold {
			fails = append(fails, fmt.Sprintf("%s/%s: wall time %.3fs -> %.3fs (%.0f%% of old, threshold %.0f%%)",
				r.Family, r.Solver, r.OldSec, r.NewSec, r.Ratio*100, (1+threshold)*100))
		}
	}
	return fails
}

// FormatCompare renders the comparison as a table.
func FormatCompare(c Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-4s %14s %14s %8s\n", "family", "slvr", "old [s] (slvd)", "new [s] (slvd)", "ratio")
	b.WriteString(strings.Repeat("-", 56) + "\n")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-12s %-4s %10.3f (%d) %10.3f (%d) %7.2fx\n",
			r.Family, r.Solver, r.OldSec, r.OldSolved, r.NewSec, r.NewSolved, r.Ratio)
	}
	for _, s := range c.NewOnly {
		fmt.Fprintf(&b, "%-12s only in new baseline\n", s)
	}
	for _, s := range c.OldOnly {
		fmt.Fprintf(&b, "%-12s only in old baseline\n", s)
	}
	return b.String()
}
