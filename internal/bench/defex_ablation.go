package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/defex"
)

// DefexVariant is one definition-extraction configuration under study.
type DefexVariant struct {
	Name string
	Opt  defex.Options
}

// DefexAblationVariants returns the definition-extraction ablations: the
// interpolation extractor vs the semantic (enumeration) extractor, a single
// definability round vs the fixpoint, and the certified configuration (which
// pays for recording the definition trail and the residual Skolem tables).
func DefexAblationVariants() []DefexVariant {
	return []DefexVariant{
		{Name: "defex(interp)", Opt: defex.Options{Mode: defex.ModeInterp}},
		{Name: "extract=semantic", Opt: defex.Options{Mode: defex.ModeSemantic}},
		{Name: "rounds=1", Opt: defex.Options{MaxRounds: 1}},
		{Name: "certify=on", Opt: defex.Options{Certify: true}},
	}
}

// DefexRow aggregates one defex variant over an instance set.
type DefexRow struct {
	Name         string
	Solved       int
	Timeouts     int
	Memouts      int
	TotalSeconds float64 // over solved instances
	// Checks / Defined sum the definability work: Padoa queries issued and
	// existentials eliminated by substitution (constants included).
	Checks  int
	Defined int
	// InterpFallbacks counts interpolation extractions that failed
	// verification and fell back to the semantic extractor.
	InterpFallbacks int
	// ExpandUsed counts instances whose residual needed universal expansion —
	// how often definability alone did not finish the job.
	ExpandUsed int
}

// RunDefexAblation runs every defex variant over the instances sequentially
// (one variant at a time, so timings are comparable).
func RunDefexAblation(instances []Instance, variants []DefexVariant, timeout time.Duration, nodeLimit int) []DefexRow {
	var rows []DefexRow
	for _, v := range variants {
		row := DefexRow{Name: v.Name}
		opt := v.Opt
		opt.Timeout = timeout
		opt.NodeLimit = nodeLimit
		for _, inst := range instances {
			start := time.Now()
			res := defex.New(opt).Solve(inst.Formula)
			sec := time.Since(start).Seconds()
			switch res.Status {
			case defex.Solved:
				row.Solved++
				row.TotalSeconds += sec
			case defex.Timeout:
				row.Timeouts++
			case defex.Memout:
				row.Memouts++
			}
			row.Checks += res.Stats.Checks
			row.Defined += res.Stats.Defined + res.Stats.DefinedConst
			row.InterpFallbacks += res.Stats.InterpFallbacks
			if res.Stats.ExpandUsed {
				row.ExpandUsed++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatDefexAblation renders the defex ablation rows as a table.
func FormatDefexAblation(rows []DefexRow, nInstances int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %4s %4s %12s %8s %8s %6s %8s\n",
		"variant", "solved", "TO", "MO", "time [s]", "checks", "defined", "fallb", "expanded")
	b.WriteString(strings.Repeat("-", 84) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %5d/%-3d %4d %4d %12.2f %8d %8d %6d %8d\n",
			r.Name, r.Solved, nInstances, r.Timeouts, r.Memouts, r.TotalSeconds,
			r.Checks, r.Defined, r.InterpFallbacks, r.ExpandUsed)
	}
	return b.String()
}
