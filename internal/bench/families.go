// Package bench generates the PEC benchmark families of the paper's
// evaluation (Section IV) and runs HQS and the iDQ baseline over them,
// reproducing Table I (per-family solved counts, SAT/UNSAT split,
// timeout/memout split, accumulated times on commonly solved instances) and
// Figure 4 (the per-instance runtime scatter with TO/MO rails), plus the
// in-text measurements (fraction solved under a second, MaxSAT selection
// time, unit/pure check share).
//
// The original 1820 instances are PEC problems over adders, two arbiter
// implementations from Dally & Harting, XOR chains, and three ISCAS-85
// circuits (z4ml, comp, C432). Those netlists are not redistributable here;
// the generators below recreate the structure that drives solver behaviour —
// multiple black boxes with incomparable dependency sets, realizable and
// unrealizable variants, growing circuit widths — at laptop scale.
package bench

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/dqbf"
	"repro/internal/pec"
	"repro/internal/problem"
)

// Family identifies one benchmark family of Table I.
type Family string

// The seven families of the paper's Table I.
const (
	FamilyAdder     Family = "adder"
	FamilyBitcell   Family = "bitcell"
	FamilyLookahead Family = "lookahead"
	FamilyPecXor    Family = "pec_xor"
	FamilyZ4        Family = "z4"
	FamilyComp      Family = "comp"
	FamilyC432      Family = "C432"
)

// Extension families beyond the paper's seven: the "notoriously hard to
// verify" multiplier structure the introduction motivates removing into
// black boxes, a multiplexer tree, and a circuit-ingestion family whose
// instances are round-tripped through a BENCH netlist miter and the unified
// problem reader — exercising the full ingestion path end to end rather
// than constructing formulas in memory.
const (
	FamilyMult    Family = "mult"
	FamilyMux     Family = "mux"
	FamilyCircuit Family = "circuit"
)

// Families lists the paper's families in Table I order.
var Families = []Family{
	FamilyAdder, FamilyBitcell, FamilyLookahead, FamilyPecXor,
	FamilyZ4, FamilyComp, FamilyC432,
}

// ExtensionFamilies lists additional families not in the paper's benchmark
// set (reported separately from the Table I reproduction).
var ExtensionFamilies = []Family{FamilyMult, FamilyMux, FamilyCircuit}

// Instance is one generated PEC benchmark instance.
type Instance struct {
	Family  Family
	Name    string
	Formula *dqbf.Formula
	// Boxes and Universals summarize the prefix shape for reporting.
	Boxes      int
	Universals int
}

// GenOptions control instance generation.
type GenOptions struct {
	// Count is the number of instances per family.
	Count int
	// Seed makes generation deterministic.
	Seed int64
	// MaxWidth bounds the circuit size parameter (bits/ports/channels).
	MaxWidth int
}

// DefaultGenOptions generate a laptop-scale benchmark set.
func DefaultGenOptions() GenOptions {
	return GenOptions{Count: 20, Seed: 20150309, MaxWidth: 4}
}

// Generate builds the instances of one family.
func Generate(f Family, opt GenOptions) ([]Instance, error) {
	rng := rand.New(rand.NewSource(opt.Seed + int64(len(f))*7919))
	var out []Instance
	for i := 0; i < opt.Count; i++ {
		inst, err := generateOne(f, i, rng, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: %s instance %d: %w", f, i, err)
		}
		out = append(out, inst)
	}
	return out, nil
}

// GenerateAll builds every family.
func GenerateAll(opt GenOptions) (map[Family][]Instance, error) {
	out := make(map[Family][]Instance)
	for _, f := range Families {
		insts, err := Generate(f, opt)
		if err != nil {
			return nil, err
		}
		out[f] = insts
	}
	return out, nil
}

// specImpl builds the family's specification circuit and the (possibly
// faulty) complete implementation the boxes will be cut from, plus the name
// patterns of the gates eligible for cutting. For faulty instances the
// faulted gate's name is returned so that boxes avoid covering (and thereby
// repairing) it.
func specImpl(f Family, width int, faulty bool, rng *rand.Rand) (spec, impl *circuit.Circuit, cuttable []string, faultName string) {
	switch f {
	case FamilyAdder:
		spec = circuit.RippleCarryAdder(width)
		impl = circuit.CarryLookaheadAdder(width)
		for i := 0; i < width; i++ {
			cuttable = append(cuttable, fmt.Sprintf("p%d", i), fmt.Sprintf("g%d", i))
		}
	case FamilyBitcell:
		spec = circuit.ArbiterLookahead(width + 1)
		impl = circuit.ArbiterBitcell(width + 1)
		for i := 0; i < width; i++ {
			cuttable = append(cuttable, fmt.Sprintf("g%d", i+1))
		}
	case FamilyLookahead:
		spec = circuit.ArbiterBitcell(width + 1)
		impl = circuit.ArbiterLookahead(width + 1)
		for i := 0; i < width; i++ {
			cuttable = append(cuttable, fmt.Sprintf("g%d", i+1))
		}
	case FamilyPecXor:
		spec = circuit.XorChain(width + 2)
		impl = spec.Clone()
		for i := 1; i < width+2; i++ {
			cuttable = append(cuttable, fmt.Sprintf("t%d", i))
		}
	case FamilyZ4:
		spec = circuit.Z4Adder()
		impl = circuit.CarryLookaheadAdder(2)
		cuttable = []string{"p0", "p1", "g0", "g1"}
	case FamilyComp:
		spec = circuit.Comparator(width)
		impl = spec.Clone()
		for i := 0; i < width; i++ {
			cuttable = append(cuttable, fmt.Sprintf("eq%d", i), fmt.Sprintf("gtb%d", i))
		}
	case FamilyC432:
		spec = circuit.PriorityController(width)
		impl = spec.Clone()
		for i := 0; i < width; i++ {
			cuttable = append(cuttable, fmt.Sprintf("act%d", i))
		}
	case FamilyMult:
		w := width
		if w > 3 {
			w = 3 // quadratic cell count: keep instances laptop-scale
		}
		spec = circuit.ArrayMultiplier(w)
		impl = spec.Clone()
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				cuttable = append(cuttable, fmt.Sprintf("pp%d_%d", i, j))
			}
		}
	case FamilyMux:
		k := 2
		if width > 3 {
			k = 3
		}
		spec = circuit.MuxTree(k)
		impl = spec.Clone()
		for i := 0; i < k; i++ {
			cuttable = append(cuttable, fmt.Sprintf("m%d_0", i))
		}
	}
	if faulty {
		var faultID int
		impl, faultID = impl.RandomFault(rng)
		faultName = impl.Name(faultID)
	}
	return spec, impl, cuttable, faultName
}

// generateOne builds the i-th instance of a family: a width in
// [2, MaxWidth], one or more single-gate black boxes at pseudo-random
// cuttable positions, and — for roughly three quarters of the instances, as
// in the heavily UNSAT-dominated original set — a fault injected outside
// the boxes making the design unrealizable.
func generateOne(f Family, i int, rng *rand.Rand, opt GenOptions) (Instance, error) {
	maxW := opt.MaxWidth
	if maxW < 2 {
		maxW = 2
	}
	width := 2 + rng.Intn(maxW-1)
	if f == FamilyZ4 {
		width = 2 // z4ml is a fixed-size circuit
	}
	faulty := i%4 != 0 // ~75% unrealizable candidates
	if f == FamilyCircuit {
		return generateCircuit(i, width, faulty, rng)
	}
	spec, impl, cuttable, faultName := specImpl(f, width, faulty, rng)

	nBoxes := 1 + rng.Intn(2)
	if nBoxes > len(cuttable) {
		nBoxes = len(cuttable)
	}
	perm := rng.Perm(len(cuttable))
	var groups [][]int
	for _, pi := range perm {
		if len(groups) == nBoxes {
			break
		}
		if cuttable[pi] == faultName {
			continue // do not let the box absorb the injected fault
		}
		id := impl.Signal(cuttable[pi])
		if id < 0 {
			continue // gate vanished (e.g. replaced by fault retopo)
		}
		switch impl.Gates[id].Type {
		case circuit.InputGate, circuit.FreeGate:
			continue
		}
		groups = append(groups, []int{id})
	}
	if len(groups) == 0 {
		return Instance{}, fmt.Errorf("no cuttable gate found")
	}
	cut, boxes, err := pec.CutBoxes(impl, groups)
	if err != nil {
		return Instance{}, err
	}
	p := &pec.Problem{Spec: spec, Impl: cut, Boxes: boxes}
	formula, err := p.ToDQBF()
	if err != nil {
		return Instance{}, err
	}
	return Instance{
		Family:     f,
		Name:       fmt.Sprintf("%s_w%d_b%d_%03d", f, width, len(boxes), i),
		Formula:    formula,
		Boxes:      len(boxes),
		Universals: len(formula.Univ),
	}, nil
}

// generateCircuit builds one instance of the circuit-ingestion family: an
// adder PEC problem expressed as a BENCH netlist miter (ripple-carry spec
// vs. carry-lookahead implementation with cut black boxes) and ingested
// through the unified problem reader — the same path a BENCH file POSTed to
// hqsd takes — instead of assembling the DQBF in memory.
func generateCircuit(i, width int, faulty bool, rng *rand.Rand) (Instance, error) {
	spec := circuit.RippleCarryAdder(width)
	impl := circuit.CarryLookaheadAdder(width)
	var faultName string
	if faulty {
		var faultID int
		impl, faultID = impl.RandomFault(rng)
		faultName = impl.Name(faultID)
	}
	var cuttable []string
	for j := 0; j < width; j++ {
		cuttable = append(cuttable, fmt.Sprintf("p%d", j), fmt.Sprintf("g%d", j))
	}
	nBoxes := 1 + rng.Intn(2)
	var groups [][]int
	for _, pi := range rng.Perm(len(cuttable)) {
		if len(groups) == nBoxes {
			break
		}
		if cuttable[pi] == faultName {
			continue
		}
		id := impl.Signal(cuttable[pi])
		if id < 0 {
			continue
		}
		switch impl.Gates[id].Type {
		case circuit.InputGate, circuit.FreeGate:
			continue
		}
		groups = append(groups, []int{id})
	}
	if len(groups) == 0 {
		return Instance{}, fmt.Errorf("no cuttable gate found")
	}
	cut, boxes, err := pec.CutBoxes(impl, groups)
	if err != nil {
		return Instance{}, err
	}
	miter, err := circuit.Miter(spec, cut)
	if err != nil {
		return Instance{}, err
	}
	var buf bytes.Buffer
	if err := miter.WriteBench(&buf); err != nil {
		return Instance{}, err
	}
	p, err := problem.ParseBytes(buf.Bytes(), problem.FormatBENCH)
	if err != nil {
		return Instance{}, err
	}
	return Instance{
		Family:     FamilyCircuit,
		Name:       fmt.Sprintf("%s_w%d_b%d_%03d", FamilyCircuit, width, len(boxes), i),
		Formula:    p.Formula,
		Boxes:      len(boxes),
		Universals: len(p.Formula.Univ),
	}, nil
}
