package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/idq"
)

// SolverName identifies which solver produced a result.
type SolverName string

// The two competitors of the paper's evaluation.
const (
	SolverHQS SolverName = "HQS"
	SolverIDQ SolverName = "iDQ"
)

// Outcome classifies a run.
type Outcome int

// Run outcomes, mirroring the paper's solved / timeout / memout partition.
const (
	OutcomeSolved Outcome = iota
	OutcomeTimeout
	OutcomeMemout
)

func (o Outcome) String() string {
	switch o {
	case OutcomeSolved:
		return "solved"
	case OutcomeTimeout:
		return "TO"
	case OutcomeMemout:
		return "MO"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// RunResult is the outcome of one solver on one instance.
type RunResult struct {
	Instance string
	Family   Family
	Solver   SolverName
	Outcome  Outcome
	Sat      bool
	Seconds  float64

	// HQS instrumentation for the in-text statistics (zero for iDQ).
	ElimSetSeconds  float64
	UnitPureSeconds float64

	// HQS SAT-sweeping substrate counters (zero for iDQ).
	SweepSatCalls  int
	SweepMerged    int
	ArenaPeakBytes int
	Compactions    int64

	// Persistent-oracle reuse counters (zero for iDQ and with FreshOracle).
	OracleQueries     int64
	OracleIncremental int64
	OracleRebuilds    int64
}

// RunOptions configure a benchmark campaign.
type RunOptions struct {
	// Timeout per instance and solver (the paper used 2 h).
	Timeout time.Duration
	// HQSNodeLimit bounds the AIG (the paper's 8 GB memory limit analogue).
	HQSNodeLimit int
	// IDQMaxInstantiations bounds the iDQ abstraction (its memout analogue).
	IDQMaxInstantiations int
	// HQSOptions configure the HQS solver (strategy ablations); Timeout and
	// NodeLimit fields are overridden by the budgets above.
	HQSOptions core.Options
	// Parallelism is the number of concurrent instance runs (0 = NumCPU).
	Parallelism int
}

// DefaultRunOptions give a laptop-scale campaign.
func DefaultRunOptions() RunOptions {
	return RunOptions{
		Timeout:              3 * time.Second,
		HQSNodeLimit:         2_000_000,
		IDQMaxInstantiations: 2_000_000,
		HQSOptions:           core.DefaultOptions(),
	}
}

// RunHQS runs HQS on one instance.
func RunHQS(inst Instance, opt RunOptions) RunResult {
	o := opt.HQSOptions
	o.Timeout = opt.Timeout
	o.NodeLimit = opt.HQSNodeLimit
	start := time.Now()
	res := core.New(o).SolveDQBF(inst.Formula)
	sw := res.Stats.Sweep
	sw.Add(res.Stats.QBF.Sweep)
	rr := RunResult{
		Instance:        inst.Name,
		Family:          inst.Family,
		Solver:          SolverHQS,
		Sat:             res.Sat,
		Seconds:         time.Since(start).Seconds(),
		ElimSetSeconds:  res.Stats.ElimSetTime.Seconds(),
		UnitPureSeconds: res.Stats.UnitPureTime.Seconds(),
		SweepSatCalls:   sw.SatCalls,
		SweepMerged:     sw.Merged,
		ArenaPeakBytes:  sw.ArenaBytes,
		Compactions:     sw.Compactions,

		OracleQueries:     res.Stats.Oracle.Queries,
		OracleIncremental: res.Stats.Oracle.Incremental,
		OracleRebuilds:    res.Stats.Oracle.Rebuilds,
	}
	switch res.Status {
	case core.Solved:
		rr.Outcome = OutcomeSolved
	case core.Timeout:
		rr.Outcome = OutcomeTimeout
	case core.Memout:
		rr.Outcome = OutcomeMemout
	}
	return rr
}

// RunIDQ runs the iDQ baseline on one instance.
func RunIDQ(inst Instance, opt RunOptions) RunResult {
	start := time.Now()
	res := idq.New(idq.Options{
		Timeout:           opt.Timeout,
		MaxInstantiations: opt.IDQMaxInstantiations,
	}).Solve(inst.Formula)
	rr := RunResult{
		Instance: inst.Name,
		Family:   inst.Family,
		Solver:   SolverIDQ,
		Sat:      res.Sat,
		Seconds:  time.Since(start).Seconds(),
	}
	switch res.Status {
	case idq.Solved:
		rr.Outcome = OutcomeSolved
	case idq.Timeout:
		rr.Outcome = OutcomeTimeout
	case idq.Memout:
		rr.Outcome = OutcomeMemout
	}
	return rr
}

// Campaign holds paired results per instance.
type Campaign struct {
	HQS map[string]RunResult
	IDQ map[string]RunResult
	// Order preserves instance enumeration order for stable output.
	Order []Instance
}

// Run executes both solvers on every instance, in parallel across instances.
func Run(instances []Instance, opt RunOptions) *Campaign {
	par := opt.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	c := &Campaign{
		HQS:   make(map[string]RunResult, len(instances)),
		IDQ:   make(map[string]RunResult, len(instances)),
		Order: instances,
	}
	var mu sync.Mutex
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, inst := range instances {
		wg.Add(1)
		go func(inst Instance) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			h := RunHQS(inst, opt)
			q := RunIDQ(inst, opt)
			mu.Lock()
			c.HQS[inst.Name] = h
			c.IDQ[inst.Name] = q
			mu.Unlock()
		}(inst)
	}
	wg.Wait()
	return c
}

// Disagreements returns instances both solvers solved with different
// verdicts — must be empty for sound solvers.
func (c *Campaign) Disagreements() []string {
	var out []string
	for _, inst := range c.Order {
		h, q := c.HQS[inst.Name], c.IDQ[inst.Name]
		if h.Outcome == OutcomeSolved && q.Outcome == OutcomeSolved && h.Sat != q.Sat {
			out = append(out, inst.Name)
		}
	}
	return out
}
