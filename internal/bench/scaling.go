package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/pec"
)

// ScalingPoint is one width step of a scaling study: accumulated runtimes of
// both solvers over the instances of that width.
type ScalingPoint struct {
	Width      int
	Instances  int
	HQSSolved  int
	IDQSolved  int
	HQSSeconds float64
	IDQSeconds float64
}

// ScalingStudy measures how both solvers scale with the circuit width of a
// family (the growth behaviour behind the TO columns of Table I): for each
// width it generates perInstance instances (alternating realizable and
// faulty) with two black boxes and runs both solvers. Unsolved runs count
// the full timeout, as in the paper's reading of the scatter rails.
func ScalingStudy(f Family, widths []int, perWidth int, opt RunOptions) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, w := range widths {
		pt := ScalingPoint{Width: w}
		rng := rand.New(rand.NewSource(int64(9000 + w)))
		for i := 0; i < perWidth; i++ {
			spec, impl, cuttable, faultName := specImpl(f, w, i%2 == 1, rng)
			var groups [][]int
			for _, name := range cuttable {
				if len(groups) == 2 {
					break
				}
				if name == faultName {
					continue
				}
				if id := impl.Signal(name); id >= 0 {
					groups = append(groups, []int{id})
				}
			}
			if len(groups) == 0 {
				return nil, fmt.Errorf("bench: no cuttable gates for %s width %d", f, w)
			}
			cut, boxes, err := pec.CutBoxes(impl, groups)
			if err != nil {
				return nil, err
			}
			formula, err := (&pec.Problem{Spec: spec, Impl: cut, Boxes: boxes}).ToDQBF()
			if err != nil {
				return nil, err
			}
			inst := Instance{
				Family:  f,
				Name:    fmt.Sprintf("%s_scale_w%d_%d", f, w, i),
				Formula: formula,
			}
			pt.Instances++
			h := RunHQS(inst, opt)
			q := RunIDQ(inst, opt)
			if h.Outcome == OutcomeSolved {
				pt.HQSSolved++
				pt.HQSSeconds += h.Seconds
			} else {
				pt.HQSSeconds += opt.Timeout.Seconds()
			}
			if q.Outcome == OutcomeSolved {
				pt.IDQSolved++
				pt.IDQSeconds += q.Seconds
			} else {
				pt.IDQSeconds += opt.Timeout.Seconds()
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatScaling renders a scaling study as a table.
func FormatScaling(f Family, pts []ScalingPoint, timeout time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scaling of %s (2 black boxes, timeout %v; unsolved counted at budget)\n", f, timeout)
	fmt.Fprintf(&b, "%6s %6s %12s %12s %12s %12s\n",
		"width", "#inst", "HQS solved", "HQS sec", "iDQ solved", "iDQ sec")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %6d %8d/%-3d %12.3f %8d/%-3d %12.3f\n",
			p.Width, p.Instances, p.HQSSolved, p.Instances, p.HQSSeconds,
			p.IDQSolved, p.Instances, p.IDQSeconds)
	}
	return b.String()
}
