package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// SolverRow is one solver's half of a Table I row.
type SolverRow struct {
	Solved    int
	SatCount  int
	UnsatCnt  int
	Unsolved  int
	Timeouts  int
	Memouts   int
	TotalTime float64 // accumulated seconds on instances solved by BOTH solvers
}

// FamilyRow is one row of Table I.
type FamilyRow struct {
	Family    Family
	Instances int
	HQS       SolverRow
	IDQ       SolverRow
}

// TableI aggregates a campaign into the paper's Table I layout.
func TableI(c *Campaign) []FamilyRow {
	byFam := make(map[Family]*FamilyRow)
	var order []Family
	rowOf := func(f Family) *FamilyRow {
		r, ok := byFam[f]
		if !ok {
			r = &FamilyRow{Family: f}
			byFam[f] = r
			order = append(order, f)
		}
		return r
	}
	for _, inst := range c.Order {
		r := rowOf(inst.Family)
		r.Instances++
		h, q := c.HQS[inst.Name], c.IDQ[inst.Name]
		both := h.Outcome == OutcomeSolved && q.Outcome == OutcomeSolved
		acc := func(sr *SolverRow, rr RunResult) {
			switch rr.Outcome {
			case OutcomeSolved:
				sr.Solved++
				if rr.Sat {
					sr.SatCount++
				} else {
					sr.UnsatCnt++
				}
				if both {
					sr.TotalTime += rr.Seconds
				}
			case OutcomeTimeout:
				sr.Unsolved++
				sr.Timeouts++
			case OutcomeMemout:
				sr.Unsolved++
				sr.Memouts++
			}
		}
		acc(&r.HQS, h)
		acc(&r.IDQ, q)
	}
	// Keep the paper's family order where applicable.
	rank := map[Family]int{}
	for i, f := range Families {
		rank[f] = i
	}
	sort.Slice(order, func(i, j int) bool { return rank[order[i]] < rank[order[j]] })
	var out []FamilyRow
	total := FamilyRow{Family: "total"}
	for _, f := range order {
		r := byFam[f]
		out = append(out, *r)
		total.Instances += r.Instances
		addRow := func(dst *SolverRow, src SolverRow) {
			dst.Solved += src.Solved
			dst.SatCount += src.SatCount
			dst.UnsatCnt += src.UnsatCnt
			dst.Unsolved += src.Unsolved
			dst.Timeouts += src.Timeouts
			dst.Memouts += src.Memouts
			dst.TotalTime += src.TotalTime
		}
		addRow(&total.HQS, r.HQS)
		addRow(&total.IDQ, r.IDQ)
	}
	out = append(out, total)
	return out
}

// FormatTableI renders the rows in the paper's layout.
func FormatTableI(rows []FamilyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s | %6s %-12s %8s %-8s %10s | %6s %-12s %8s %-8s %10s\n",
		"Benchmark", "#inst",
		"solved", "(SAT/UNSAT)", "unsolved", "(TO/MO)", "total time",
		"solved", "(SAT/UNSAT)", "unsolved", "(TO/MO)", "total time")
	fmt.Fprintf(&b, "%-10s %5s | %-49s | %-49s\n", "", "", "  HQS", "  iDQ")
	b.WriteString(strings.Repeat("-", 122) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d | %6d (%d/%d)%*s %8d (%d/%d)%*s %10.2f | %6d (%d/%d)%*s %8d (%d/%d)%*s %10.2f\n",
			r.Family, r.Instances,
			r.HQS.Solved, r.HQS.SatCount, r.HQS.UnsatCnt, 0, "",
			r.HQS.Unsolved, r.HQS.Timeouts, r.HQS.Memouts, 0, "",
			r.HQS.TotalTime,
			r.IDQ.Solved, r.IDQ.SatCount, r.IDQ.UnsatCnt, 0, "",
			r.IDQ.Unsolved, r.IDQ.Timeouts, r.IDQ.Memouts, 0, "",
			r.IDQ.TotalTime)
	}
	return b.String()
}

// ScatterPoint is one Figure 4 marker: the runtimes of both solvers on one
// instance, with TO/MO rails encoded in the outcome fields.
type ScatterPoint struct {
	Instance   string
	Family     Family
	HQSSeconds float64
	IDQSeconds float64
	HQSOutcome Outcome
	IDQOutcome Outcome
}

// Figure4 extracts the scatter points of the runtime comparison plot.
func Figure4(c *Campaign) []ScatterPoint {
	var out []ScatterPoint
	for _, inst := range c.Order {
		h, q := c.HQS[inst.Name], c.IDQ[inst.Name]
		out = append(out, ScatterPoint{
			Instance:   inst.Name,
			Family:     inst.Family,
			HQSSeconds: h.Seconds,
			IDQSeconds: q.Seconds,
			HQSOutcome: h.Outcome,
			IDQOutcome: q.Outcome,
		})
	}
	return out
}

// FormatFigure4CSV renders the scatter as CSV (instance, family, HQS seconds,
// iDQ seconds, HQS outcome, iDQ outcome). Plotting the two time columns on
// log-log axes with TO/MO rails reproduces Fig. 4.
func FormatFigure4CSV(points []ScatterPoint) string {
	var b strings.Builder
	b.WriteString("instance,family,hqs_seconds,idq_seconds,hqs_outcome,idq_outcome\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%s,%s,%.6f,%.6f,%s,%s\n",
			p.Instance, p.Family, p.HQSSeconds, p.IDQSeconds, p.HQSOutcome, p.IDQOutcome)
	}
	return b.String()
}

// Stats are the paper's in-text measurements.
type Stats struct {
	// HQSSolvedUnder1s is the fraction of HQS-solved instances finished in
	// under one second (the paper reports ≈ 90%).
	HQSSolvedUnder1s float64
	// MaxElimSetSeconds is the maximum MaxSAT selection time over all
	// instances (the paper reports < 0.06 s).
	MaxElimSetSeconds float64
	// MaxUnitPureShare is the maximum fraction of an instance's runtime
	// spent in syntactic unit/pure checks (the paper reports < 4%).
	MaxUnitPureShare float64
	// MaxUnitPureShareSlow is the same maximum restricted to instances that
	// took at least 10 ms — the regime the paper's instances live in; on
	// sub-millisecond instances a single traversal dominates the runtime and
	// the share is not meaningful.
	MaxUnitPureShareSlow float64
	// SpeedupGeoMean is the geometric-mean iDQ/HQS runtime ratio over
	// instances both solvers solved.
	SpeedupGeoMean float64
	// MaxSpeedup is the largest per-instance ratio (the paper reports up to
	// four orders of magnitude, counting time-outs at the budget).
	MaxSpeedup float64
}

// ComputeStats derives the in-text statistics from a campaign.
func ComputeStats(c *Campaign) Stats {
	var st Stats
	solved, under1 := 0, 0
	logSum, ratios := 0.0, 0
	for _, inst := range c.Order {
		h, q := c.HQS[inst.Name], c.IDQ[inst.Name]
		if h.Outcome == OutcomeSolved {
			solved++
			if h.Seconds < 1.0 {
				under1++
			}
		}
		if h.ElimSetSeconds > st.MaxElimSetSeconds {
			st.MaxElimSetSeconds = h.ElimSetSeconds
		}
		if h.Seconds > 0 {
			share := h.UnitPureSeconds / h.Seconds
			if share > st.MaxUnitPureShare {
				st.MaxUnitPureShare = share
			}
			if h.Seconds >= 0.010 && share > st.MaxUnitPureShareSlow {
				st.MaxUnitPureShareSlow = share
			}
		}
		if h.Outcome == OutcomeSolved && h.Seconds > 0 {
			// iDQ time: actual when solved, full budget when not (a lower
			// bound, as in the paper's reading of the TO/MO rails).
			qt := q.Seconds
			ratio := qt / h.Seconds
			if ratio > st.MaxSpeedup {
				st.MaxSpeedup = ratio
			}
			if q.Outcome == OutcomeSolved {
				logSum += math.Log(ratio)
				ratios++
			}
		}
	}
	if solved > 0 {
		st.HQSSolvedUnder1s = float64(under1) / float64(solved)
	}
	if ratios > 0 {
		st.SpeedupGeoMean = math.Exp(logSum / float64(ratios))
	}
	return st
}
