// Package budget provides a cancellable resource budget shared by every
// solver core in this repository.
//
// A *Budget carries a wall-clock deadline, caps on CDCL conflicts and
// decisions, a cap on AIG nodes, and an explicit cancellation signal. The
// solver loops — the CDCL search loop, the MaxSAT linear search, the QBF
// block-elimination loop, HQS's main elimination loop, and iDQ's
// instantiation loop — poll the budget and unwind with a clean
// Unknown/Timeout/Cancelled verdict instead of running forever.
//
// The budget doubles as a resource meter: the SAT substrate reports the
// conflicts and decisions it spends into the budget, so a job scheduler can
// read per-job totals after (or during) a solve. All methods are safe for
// concurrent use and are nil-safe: a nil *Budget means "unlimited", so
// callers thread budgets unconditionally.
package budget

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors reported by Err, ordered by precedence.
var (
	// ErrCancelled means Cancel was called.
	ErrCancelled = errors.New("budget: cancelled")
	// ErrDeadline means the wall-clock deadline passed.
	ErrDeadline = errors.New("budget: deadline exceeded")
	// ErrConflicts means the conflict cap was exhausted.
	ErrConflicts = errors.New("budget: conflict cap exhausted")
	// ErrDecisions means the decision cap was exhausted.
	ErrDecisions = errors.New("budget: decision cap exhausted")
)

// Limits declares the resource caps of a budget; zero values mean unlimited.
type Limits struct {
	// Timeout, when nonzero, sets the deadline to now+Timeout at New.
	Timeout time.Duration
	// Deadline, when nonzero, bounds wall-clock time (combined with Timeout,
	// the earlier one wins).
	Deadline time.Time
	// Conflicts caps the total CDCL conflicts spent across every SAT call.
	Conflicts int64
	// Decisions caps the total CDCL decisions spent across every SAT call.
	Decisions int64
	// Nodes caps the AIG size (the analogue of a memory limit).
	Nodes int
}

// Budget is a shared, cancellable resource budget. Use New; the zero value
// works but has no deadline, caps, or usable Done channel.
type Budget struct {
	deadline     time.Time
	maxConflicts int64
	maxDecisions int64
	maxNodes     int

	done       chan struct{}
	cancelOnce sync.Once

	conflicts atomic.Int64
	decisions atomic.Int64
}

// New returns a budget enforcing the given limits.
func New(l Limits) *Budget {
	b := &Budget{
		deadline:     l.Deadline,
		maxConflicts: l.Conflicts,
		maxDecisions: l.Decisions,
		maxNodes:     l.Nodes,
		done:         make(chan struct{}),
	}
	if l.Timeout > 0 {
		d := time.Now().Add(l.Timeout)
		if b.deadline.IsZero() || d.Before(b.deadline) {
			b.deadline = d
		}
	}
	return b
}

// WithTimeout returns a budget limited only by wall-clock time; d <= 0 means
// no deadline (but the budget is still cancellable).
func WithTimeout(d time.Duration) *Budget {
	if d <= 0 {
		return New(Limits{})
	}
	return New(Limits{Timeout: d})
}

// Deadline returns the wall-clock deadline (zero if none). Nil-safe.
func (b *Budget) Deadline() time.Time {
	if b == nil {
		return time.Time{}
	}
	return b.deadline
}

// NodeCap returns the AIG node cap (0 if none). Nil-safe.
func (b *Budget) NodeCap() int {
	if b == nil {
		return 0
	}
	return b.maxNodes
}

// Cancel requests cancellation. It is idempotent and safe to call from any
// goroutine; a nil budget ignores it.
func (b *Budget) Cancel() {
	if b == nil || b.done == nil {
		return
	}
	b.cancelOnce.Do(func() { close(b.done) })
}

// Done returns a channel closed on Cancel. A nil budget (or one not built
// with New) returns nil, which blocks forever in a select.
func (b *Budget) Done() <-chan struct{} {
	if b == nil {
		return nil
	}
	return b.done
}

// Cancelled reports whether Cancel has been called. Nil-safe.
func (b *Budget) Cancelled() bool {
	if b == nil || b.done == nil {
		return false
	}
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// Expired reports whether the deadline has passed. Nil-safe.
func (b *Budget) Expired() bool {
	return b != nil && !b.deadline.IsZero() && time.Now().After(b.deadline)
}

// AddConflicts records n CDCL conflicts spent against the budget. Nil-safe.
func (b *Budget) AddConflicts(n int64) {
	if b != nil && n != 0 {
		b.conflicts.Add(n)
	}
}

// AddDecisions records n CDCL decisions spent against the budget. Nil-safe.
func (b *Budget) AddDecisions(n int64) {
	if b != nil && n != 0 {
		b.decisions.Add(n)
	}
}

// ConflictsUsed returns the total conflicts recorded so far. Nil-safe.
func (b *Budget) ConflictsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.conflicts.Load()
}

// DecisionsUsed returns the total decisions recorded so far. Nil-safe.
func (b *Budget) DecisionsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.decisions.Load()
}

// Err returns the first exhausted constraint (ErrCancelled, ErrDeadline,
// ErrConflicts, ErrDecisions) or nil if the budget still has headroom.
// Nil-safe: a nil budget never stops.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if b.Cancelled() {
		return ErrCancelled
	}
	if b.Expired() {
		return ErrDeadline
	}
	if b.maxConflicts > 0 && b.conflicts.Load() >= b.maxConflicts {
		return ErrConflicts
	}
	if b.maxDecisions > 0 && b.decisions.Load() >= b.maxDecisions {
		return ErrDecisions
	}
	return nil
}

// Stopped reports whether any constraint is exhausted. Nil-safe.
func (b *Budget) Stopped() bool { return b.Err() != nil }

// Child returns a fresh budget with the same deadline and caps but an
// independent cancellation signal and usage counters. Portfolio racing gives
// each engine a child so the loser can be cancelled without stopping the
// winner; the caller folds the children's usage back with AddConflicts /
// AddDecisions. A nil receiver yields an unlimited (but cancellable) child.
func (b *Budget) Child() *Budget {
	if b == nil {
		return New(Limits{})
	}
	return New(Limits{
		Deadline:  b.deadline,
		Conflicts: b.maxConflicts,
		Decisions: b.maxDecisions,
		Nodes:     b.maxNodes,
	})
}
