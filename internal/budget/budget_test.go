package budget

import (
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if b.Stopped() || b.Err() != nil {
		t.Fatal("nil budget must never stop")
	}
	b.Cancel() // must not panic
	b.AddConflicts(10)
	b.AddDecisions(10)
	if b.ConflictsUsed() != 0 || b.DecisionsUsed() != 0 {
		t.Fatal("nil budget counts nothing")
	}
	if !b.Deadline().IsZero() || b.NodeCap() != 0 {
		t.Fatal("nil budget has no limits")
	}
	if b.Done() != nil {
		t.Fatal("nil budget Done must be nil")
	}
}

func TestCancel(t *testing.T) {
	b := New(Limits{})
	if b.Stopped() {
		t.Fatal("fresh budget stopped")
	}
	b.Cancel()
	b.Cancel() // idempotent
	if !b.Cancelled() || !errors.Is(b.Err(), ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", b.Err())
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("Done not closed after Cancel")
	}
}

func TestDeadline(t *testing.T) {
	b := New(Limits{Deadline: time.Now().Add(-time.Second)})
	if !b.Expired() || !errors.Is(b.Err(), ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", b.Err())
	}
	b2 := WithTimeout(time.Hour)
	if b2.Stopped() {
		t.Fatal("1h budget stopped immediately")
	}
	if b2.Deadline().IsZero() {
		t.Fatal("WithTimeout must set a deadline")
	}
	if WithTimeout(0).Deadline() != (time.Time{}) {
		t.Fatal("WithTimeout(0) must be deadline-free")
	}
}

func TestCaps(t *testing.T) {
	b := New(Limits{Conflicts: 100, Decisions: 50})
	b.AddConflicts(99)
	if b.Stopped() {
		t.Fatal("stopped below conflict cap")
	}
	b.AddConflicts(1)
	if !errors.Is(b.Err(), ErrConflicts) {
		t.Fatalf("want ErrConflicts, got %v", b.Err())
	}
	b2 := New(Limits{Decisions: 5})
	b2.AddDecisions(5)
	if !errors.Is(b2.Err(), ErrDecisions) {
		t.Fatalf("want ErrDecisions, got %v", b2.Err())
	}
}

func TestErrPrecedence(t *testing.T) {
	b := New(Limits{Conflicts: 1, Deadline: time.Now().Add(-time.Second)})
	b.AddConflicts(5)
	b.Cancel()
	if !errors.Is(b.Err(), ErrCancelled) {
		t.Fatalf("cancellation must take precedence, got %v", b.Err())
	}
}

func TestChild(t *testing.T) {
	b := New(Limits{Conflicts: 7, Nodes: 42, Deadline: time.Now().Add(time.Hour)})
	c := b.Child()
	if c.NodeCap() != 42 || c.Deadline() != b.Deadline() {
		t.Fatal("child must inherit limits")
	}
	c.Cancel()
	if b.Cancelled() {
		t.Fatal("child cancellation must not propagate to parent")
	}
	c.AddConflicts(3)
	if b.ConflictsUsed() != 0 {
		t.Fatal("child usage must not propagate implicitly")
	}
	var nilB *Budget
	if nilB.Child() == nil || nilB.Child().Stopped() {
		t.Fatal("nil parent yields unlimited child")
	}
}

func TestConcurrentUse(t *testing.T) {
	b := New(Limits{Conflicts: 1 << 30})
	doneCh := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				b.AddConflicts(1)
				b.AddDecisions(1)
				_ = b.Stopped()
			}
			doneCh <- struct{}{}
		}()
	}
	go b.Cancel()
	for i := 0; i < 8; i++ {
		<-doneCh
	}
	if b.ConflictsUsed() != 8000 {
		t.Fatalf("lost updates: %d", b.ConflictsUsed())
	}
}
