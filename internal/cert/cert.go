// Package cert implements Skolem-function certificates for DQBF: extraction
// of per-existential Skolem functions from a run of the HQS elimination
// pipeline, and an independent checker that validates any certificate against
// the original formula with one SAT call.
//
// Extraction follows the reconstruction idea of certified quantifier
// elimination (Certified DQBF Solving by Definition Extraction; Verification
// of Partial Quantifier Elimination): every pass that changes the formula in
// a way that consumes an existential variable records one reconstruction
// step into a Builder carried on pipeline.State —
//
//   - CNF-level unit assignments and AIG-level unit/pure eliminations record
//     a constant step,
//   - equivalence substitutions record the replacement literal,
//   - Tseitin gate detection records the gate definition,
//   - Theorem-2 eliminations and QBF block eliminations record the matrix the
//     variable was quantified out of,
//   - Theorem-1 universal expansions record the copy renaming, and
//   - the back end's final SAT call records its model.
//
// Transformations that only strengthen the matrix (universal reduction,
// subsumption, self-subsuming resolution), replace it by an equivalent one
// (SAT sweeping), restrict a monotone universal (universal pure literals),
// eliminate a universal block variable, or drop variables outside the
// support record nothing: replaying the recorded steps in reverse after a
// SAT verdict rebuilds, for every original existential y, a Skolem function
// over D_y, with every unconstrained existential defaulting to constant
// false.
//
// The checker (Check) is deliberately independent of the solver: it copies
// the functions into a fresh graph, verifies each function's support against
// the dependency sets of the original formula, substitutes the functions
// into the original matrix, and asks a SAT solver for a falsifying universal
// assignment. FromTables converts the table-based certificates of the iDQ
// baseline (dqbf.Certificate) into the same representation, so one checker
// code path serves every certificate-producing engine.
package cert

import (
	"fmt"
	"sort"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// stepKind tags the reconstruction steps, ordered as recorded (oldest
// first); Extract replays them newest-first.
type stepKind int

const (
	// stepConst fixes existential V to Val (CNF unit, AIG unit, AIG pure).
	stepConst stepKind = iota
	// stepSubst replaces existential V by the literal T (equivalence
	// substitution; T's variable is either universal or existential).
	stepSubst
	// stepGate defines existential V as the gate function Gate (Tseitin gate
	// detection; the defining clauses left the matrix).
	stepGate
	// stepExists eliminated existential V from matrix M by ∃-quantification
	// (Theorem 2 or QBF block elimination): the Skolem function is the
	// positive cofactor of M under the later-eliminated variables' functions.
	stepExists
	// stepExpand eliminated universal V by Theorem 1: every existential y
	// depending on V was split into the 0-branch y and the 1-branch copy
	// Ren[y]; the merged function is if V then f_{Ren[y]} else f_y.
	stepExpand
	// stepDef records an extracted definition: existential V is the function
	// M (a cone over D_V, definition extraction à la Padoa/interpolation).
	stepDef
)

// step is one recorded reconstruction step.
type step struct {
	kind stepKind
	v    cnf.Var
	val  bool                // stepConst: the constant
	t    cnf.Lit             // stepSubst: the replacement literal
	gate gateDef             // stepGate: the definition
	m    aig.Ref             // stepExists: the matrix before elimination
	ren  map[cnf.Var]cnf.Var // stepExpand: original -> copy
}

// gateDef mirrors core.Gate without importing it (core imports this
// package): Out ↔ fn(Ins), an AND over the input literals unless Xor, with
// the whole definition negated when OutNeg.
type gateDef struct {
	out    cnf.Var
	outNeg bool
	xor    bool
	ins    []cnf.Lit
}

// Builder accumulates reconstruction steps during a solve. All methods are
// nil-safe no-ops, so recording sites need no certification guard; a solve
// without -cert simply carries a nil builder. A Builder is not safe for
// concurrent use — each solve owns one, matching the single-threaded pass
// pipelines.
type Builder struct {
	steps []step
	model map[cnf.Var]bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// RecordConst records that existential v was fixed to val.
func (b *Builder) RecordConst(v cnf.Var, val bool) {
	if b == nil {
		return
	}
	b.steps = append(b.steps, step{kind: stepConst, v: v, val: val})
}

// RecordSubst records that existential v was replaced by literal t.
func (b *Builder) RecordSubst(v cnf.Var, t cnf.Lit) {
	if b == nil {
		return
	}
	b.steps = append(b.steps, step{kind: stepSubst, v: v, t: t})
}

// RecordGate records a detected gate definition out ↔ fn(ins) (an AND over
// the input literals, or an XOR when xor is set; outNeg negates the
// definition). The input slice is copied.
func (b *Builder) RecordGate(out cnf.Var, outNeg, xor bool, ins []cnf.Lit) {
	if b == nil {
		return
	}
	b.steps = append(b.steps, step{kind: stepGate, v: out, gate: gateDef{
		out: out, outNeg: outNeg, xor: xor, ins: append([]cnf.Lit(nil), ins...),
	}})
}

// RecordExists records that existential y was ∃-quantified out of matrix m.
// The reference must stay valid in the solve's graph (sweeps rebuild in the
// same graph, so it does).
func (b *Builder) RecordExists(y cnf.Var, m aig.Ref) {
	if b == nil {
		return
	}
	b.steps = append(b.steps, step{kind: stepExists, v: y, m: m})
}

// RecordDef records that existential y was substituted away by the extracted
// definition def (a function over D_y; the reference must stay valid in the
// solve's graph).
func (b *Builder) RecordDef(y cnf.Var, def aig.Ref) {
	if b == nil {
		return
	}
	b.steps = append(b.steps, step{kind: stepDef, v: y, m: def})
}

// RecordExpand records a Theorem-1 elimination of universal x with the
// existential copy renaming ren (original → copy). The map is copied.
func (b *Builder) RecordExpand(x cnf.Var, ren map[cnf.Var]cnf.Var) {
	if b == nil {
		return
	}
	cp := make(map[cnf.Var]cnf.Var, len(ren))
	for k, v := range ren {
		cp[k] = v
	}
	b.steps = append(b.steps, step{kind: stepExpand, v: x, ren: cp})
}

// RecordModel records the final SAT call's model over the surviving
// existentials. The map is copied; a later call replaces an earlier one (the
// final SAT runs at most once per solve).
func (b *Builder) RecordModel(model map[cnf.Var]bool) {
	if b == nil {
		return
	}
	cp := make(map[cnf.Var]bool, len(model))
	for k, v := range model {
		cp[k] = v
	}
	b.model = cp
}

// Steps returns how many reconstruction steps were recorded (plus one when a
// final model was).
func (b *Builder) Steps() int {
	if b == nil {
		return 0
	}
	n := len(b.steps)
	if b.model != nil {
		n++
	}
	return n
}

// Certificate is a set of Skolem functions witnessing satisfaction: for
// every existential variable of the formula, an AIG function over its
// dependency set. The functions live in their own graph, detached from any
// solver state.
type Certificate struct {
	// G holds the function cones.
	G *aig.Graph
	// Funcs maps each existential variable to its Skolem function in G.
	Funcs map[cnf.Var]aig.Ref
}

// constRef maps a Boolean to the corresponding constant reference.
func constRef(b bool) aig.Ref {
	if b {
		return aig.True
	}
	return aig.False
}

// Extract replays the recorded steps in reverse over the solve's graph g and
// returns the certificate for the original formula f (the formula as handed
// to the solver, before any preprocessing). g may be nil when the solve
// never built a matrix (decided during CNF preprocessing); extraction then
// replays in a scratch graph. Extract must only be called after a SAT
// verdict; the result is self-contained (its functions live in a fresh
// graph, see Certificate).
func (b *Builder) Extract(f *dqbf.Formula, g *aig.Graph) (*Certificate, error) {
	if b == nil {
		return nil, fmt.Errorf("cert: no builder attached to the solve")
	}
	if g == nil {
		g = aig.New()
	}
	// Extraction composes cones after the verdict; the node budget governed
	// the solve, not the certificate replay.
	savedLimit := g.NodeLimit
	g.NodeLimit = 0
	defer func() { g.NodeLimit = savedLimit }()

	origUniv := dqbf.NewVarSet(f.Univ...)

	// def holds the reconstructed function of every existential consumed so
	// far (in reverse order, so "so far" means "eliminated later"). Every
	// entry is closed: its support contains only universal inputs.
	def := make(map[cnf.Var]aig.Ref, len(f.Exist))
	for v, val := range b.model {
		def[v] = constRef(val)
	}

	// resolve returns the function standing for variable v at the current
	// replay position: its reconstructed definition, the input itself for an
	// original universal, and the default constant false for an existential
	// no step ever constrained.
	resolve := func(v cnf.Var) aig.Ref {
		if r, ok := def[v]; ok {
			return r
		}
		if origUniv.Has(v) {
			return g.Input(v)
		}
		return aig.False
	}

	// Gate definitions are replayed on demand: detection order is not
	// topological, so a gate's inputs may be gates recorded after it.
	gates := make(map[cnf.Var]gateDef)
	for _, s := range b.steps {
		if s.kind == stepGate {
			gates[s.v] = s.gate
		}
	}
	building := make(map[cnf.Var]bool)
	var ensureGate func(out cnf.Var) error
	ensureGate = func(out cnf.Var) error {
		if _, ok := def[out]; ok {
			return nil
		}
		if building[out] {
			return fmt.Errorf("cert: gate definition cycle at variable %d", out)
		}
		building[out] = true
		defer delete(building, out)
		gd := gates[out]
		ins := make([]aig.Ref, len(gd.ins))
		for i, l := range gd.ins {
			v := l.Var()
			if _, isGate := gates[v]; isGate {
				if err := ensureGate(v); err != nil {
					return err
				}
			}
			ins[i] = resolve(v).XorSign(l.Neg())
		}
		var r aig.Ref
		if gd.xor {
			if len(ins) != 2 {
				return fmt.Errorf("cert: XOR gate for %d has %d inputs", out, len(ins))
			}
			r = g.Xor(ins[0], ins[1])
		} else {
			r = g.AndN(ins...)
		}
		def[out] = r.XorSign(gd.outNeg)
		return nil
	}

	for i := len(b.steps) - 1; i >= 0; i-- {
		s := b.steps[i]
		switch s.kind {
		case stepConst:
			def[s.v] = constRef(s.val)
		case stepSubst:
			def[s.v] = resolve(s.t.Var()).XorSign(s.t.Neg())
		case stepGate:
			if err := ensureGate(s.v); err != nil {
				return nil, err
			}
		case stepExists:
			// f_y = (φ with y := 1) under the later-eliminated variables'
			// functions: satisfy the matrix whenever setting y makes that
			// possible. Every non-universal variable left in the cofactor's
			// cone must be substituted explicitly — Compose leaves unmapped
			// inputs in place, and an existential the replay never defined
			// (dropped from the support, or cut off when the matrix collapsed
			// to a constant) defaults to false here.
			cof := g.Cofactor(s.m, s.v, true)
			subst := make(map[cnf.Var]aig.Ref)
			for v := range g.Support(cof) {
				if !origUniv.Has(v) {
					subst[v] = resolve(v)
				}
			}
			def[s.v] = g.Compose(cof, subst)
		case stepDef:
			// The definition is already a function of D_y; substitute any
			// non-universal stragglers defensively, mirroring stepExists.
			subst := make(map[cnf.Var]aig.Ref)
			for v := range g.Support(s.m) {
				if !origUniv.Has(v) {
					subst[v] = resolve(v)
				}
			}
			def[s.v] = g.Compose(s.m, subst)
		case stepExpand:
			// Merge the 0-branch and 1-branch functions of every copied
			// existential; sorted order keeps fresh input allocation (for the
			// expanded universal) deterministic.
			x := g.Input(s.v)
			origs := make([]cnf.Var, 0, len(s.ren))
			for y := range s.ren {
				origs = append(origs, y)
			}
			sort.Slice(origs, func(a, b int) bool { return origs[a] < origs[b] })
			for _, y := range origs {
				def[y] = g.Ite(x, resolve(s.ren[y]), resolve(y))
				delete(def, s.ren[y])
			}
		}
	}

	// Export the function of every original existential into a fresh graph.
	out := &Certificate{G: aig.New(), Funcs: make(map[cnf.Var]aig.Ref, len(f.Exist))}
	memo := make(map[int32]aig.Ref)
	for _, y := range f.Exist {
		out.Funcs[y] = g.Export(resolve(y), out.G, memo)
	}
	return out, nil
}
