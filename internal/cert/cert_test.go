package cert_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/aig"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

// optionSets are the HQS configurations certificates must survive: the full
// default pipeline (preprocess + gates + unit/pure + sweeping), the bare
// elimination loop, and the greedy/all elimination strategies that change
// which Theorem-1 expansions run.
func optionSets() map[string]core.Options {
	plain := core.Options{Strategy: core.ElimMaxSAT}
	greedy := core.DefaultOptions()
	greedy.Strategy = core.ElimGreedy
	all := core.DefaultOptions()
	all.Strategy = core.ElimAll
	return map[string]core.Options{
		"default": core.DefaultOptions(),
		"plain":   plain,
		"greedy":  greedy,
		"all":     all,
	}
}

// TestExtractCheckRandom is the end-to-end property: on every SAT verdict,
// every option set must extract a certificate the independent checker
// accepts against the untouched input formula.
func TestExtractCheckRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets := optionSets()
	sat := 0
	for i := 0; i < 150; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(14))
		orig := f.Clone()
		for name, opt := range sets {
			opt.Certify = true
			res := core.New(opt).SolveDQBF(f)
			if res.Status != core.Solved {
				t.Fatalf("instance %d (%s): status %v", i, name, res.Status)
			}
			if !res.Sat {
				if res.Certificate != nil {
					t.Fatalf("instance %d (%s): certificate on UNSAT", i, name)
				}
				continue
			}
			sat++
			if res.CertErr != nil {
				t.Fatalf("instance %d (%s): extraction failed: %v", i, name, res.CertErr)
			}
			if err := cert.Check(orig, res.Certificate); err != nil {
				t.Fatalf("instance %d (%s): certificate rejected: %v\n%s",
					i, name, err, cert.Format(orig, res.Certificate))
			}
		}
	}
	if sat == 0 {
		t.Fatal("no SAT instance exercised the extractor")
	}
}

// TestCheckRejectsCorrupted flips one certificate function and expects the
// checker to produce a counterexample naming a universal assignment.
func TestCheckRejectsCorrupted(t *testing.T) {
	// ∀1 ∃2(1): matrix (1 ∨ 2)(¬1 ∨ ¬2) forces f_2 = ¬x1.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.Clauses = []cnf.Clause{
		{cnf.NewLit(1, false), cnf.NewLit(2, false)},
		{cnf.NewLit(1, true), cnf.NewLit(2, true)},
	}
	opt := core.DefaultOptions()
	opt.Certify = true
	res := core.New(opt).SolveDQBF(f.Clone())
	if res.Status != core.Solved || !res.Sat || res.CertErr != nil {
		t.Fatalf("solve: status %v sat %v certErr %v", res.Status, res.Sat, res.CertErr)
	}
	if err := cert.Check(f, res.Certificate); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	res.Certificate.Funcs[2] = res.Certificate.Funcs[2].Not()
	err := cert.Check(f, res.Certificate)
	if err == nil {
		t.Fatal("corrupted certificate accepted")
	}
	if !strings.Contains(err.Error(), "falsified at universal assignment") {
		t.Fatalf("want a counterexample error, got: %v", err)
	}
}

// TestCheckRejectsSupportViolation gives an existential a function over a
// universal outside its dependency set.
func TestCheckRejectsSupportViolation(t *testing.T) {
	// ∀1 ∃2(∅): matrix (1 ∨ 2)(¬1 ∨ ¬2) is UNSAT precisely because f_2 may
	// not read x1 — a certificate claiming f_2 = ¬x1 must be rejected
	// structurally, before the SAT call can bless it.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2)
	f.Matrix.Clauses = []cnf.Clause{
		{cnf.NewLit(1, false), cnf.NewLit(2, false)},
		{cnf.NewLit(1, true), cnf.NewLit(2, true)},
	}
	g := aig.New()
	c := &cert.Certificate{G: g, Funcs: map[cnf.Var]aig.Ref{2: g.Input(1).Not()}}
	err := cert.Check(f, c)
	if err == nil {
		t.Fatal("out-of-dependency certificate accepted")
	}
	if !strings.Contains(err.Error(), "outside its dependency set") {
		t.Fatalf("want a support-violation error, got: %v", err)
	}
}

// TestCheckRejectsMissingFunction expects a certificate lacking a function
// for some existential to fail before any SAT call.
func TestCheckRejectsMissingFunction(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.Clauses = []cnf.Clause{{cnf.NewLit(2, false)}}
	c := &cert.Certificate{G: aig.New(), Funcs: map[cnf.Var]aig.Ref{}}
	err := cert.Check(f, c)
	if err == nil || !strings.Contains(err.Error(), "no Skolem function") {
		t.Fatalf("want a missing-function error, got: %v", err)
	}
}

// TestFromTablesMatchesTableSemantics lifts random table certificates into
// AIG form and compares both representations pointwise over all universal
// assignments.
func TestFromTablesMatchesTableSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1)
		tc := &dqbf.Certificate{
			Tables:   make(map[cnf.Var]map[string]bool),
			Defaults: make(map[cnf.Var]bool),
		}
		for _, y := range f.Exist {
			tc.Defaults[y] = rng.Intn(2) == 0
			tbl := make(map[string]bool)
			deps := f.Deps[y].Vars()
			// Fill a random subset of the projection keys.
			for bits := 0; bits < 1<<len(deps); bits++ {
				if rng.Intn(2) == 0 {
					continue
				}
				bits := bits
				key := dqbf.ProjectionKey(deps, func(v cnf.Var) bool {
					for i, d := range deps {
						if d == v {
							return bits&(1<<i) != 0
						}
					}
					return false
				})
				tbl[key] = rng.Intn(2) == 0
			}
			tc.Tables[y] = tbl
		}
		ac, err := cert.FromTables(f, tc)
		if err != nil {
			t.Fatalf("instance %d: FromTables: %v", i, err)
		}
		for _, y := range f.Exist {
			deps := f.Deps[y].Vars()
			for bits := 0; bits < 1<<len(deps); bits++ {
				bits := bits
				assign := func(v cnf.Var) bool {
					for i, d := range deps {
						if d == v {
							return bits&(1<<i) != 0
						}
					}
					return false
				}
				want := tc.Value(f, y, assign)
				got := ac.G.Eval(ac.Funcs[y], assign)
				if got != want {
					t.Fatalf("instance %d: var %d bits %b: AIG %v, table %v", i, y, bits, got, want)
				}
			}
		}
	}
}

// TestFromTablesRejectsBadArity expects a key of the wrong length to be an
// error, matching the table checker's own strictness.
func TestFromTablesRejectsBadArity(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.Clauses = []cnf.Clause{{cnf.NewLit(2, false)}}
	tc := &dqbf.Certificate{Tables: map[cnf.Var]map[string]bool{2: {"01": true}}}
	if _, err := cert.FromTables(f, tc); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("want an arity error, got: %v", err)
	}
}

// TestIDQCertificatesThroughSharedChecker runs the table-producing engine
// and validates its certificates through the same checker path the HQS
// extractor uses.
func TestIDQCertificatesThroughSharedChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sat := 0
	for i := 0; i < 80; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(10))
		res := idq.New(idq.Options{}).Solve(f)
		if res.Status != idq.Solved || !res.Sat || res.Certificate == nil {
			continue
		}
		sat++
		ac, err := cert.FromTables(f, res.Certificate)
		if err != nil {
			t.Fatalf("instance %d: FromTables: %v", i, err)
		}
		if err := cert.Check(f, ac); err != nil {
			t.Fatalf("instance %d: idq certificate rejected: %v\n%s", i, err, cert.Format(f, ac))
		}
	}
	if sat == 0 {
		t.Fatal("no SAT instance exercised the table path")
	}
}

// TestFormatShape pins the printed Skolem-table shape for a forced function.
func TestFormatShape(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.Clauses = []cnf.Clause{
		{cnf.NewLit(1, false), cnf.NewLit(2, false)},
		{cnf.NewLit(1, true), cnf.NewLit(2, true)},
	}
	opt := core.DefaultOptions()
	opt.Certify = true
	res := core.New(opt).SolveDQBF(f.Clone())
	if !res.Sat || res.CertErr != nil {
		t.Fatalf("solve: sat %v certErr %v", res.Sat, res.CertErr)
	}
	got := cert.Format(f, res.Certificate)
	// f_2 = ¬x1: value 1 under x1=0, value 0 under x1=1.
	want := "s 2 deps=[1] : 0->1 1->0\n"
	if got != want {
		t.Fatalf("format:\n got %q\nwant %q", got, want)
	}
}

// TestExtractWithoutBuilder documents the nil-builder error.
func TestExtractWithoutBuilder(t *testing.T) {
	var b *cert.Builder
	if _, err := b.Extract(dqbf.New(), nil); err == nil {
		t.Fatal("nil builder extracted a certificate")
	}
}

// TestBuilderNilSafety exercises every recorder on a nil builder (recording
// sites are unguarded, so this must not panic).
func TestBuilderNilSafety(t *testing.T) {
	var b *cert.Builder
	b.RecordConst(1, true)
	b.RecordSubst(1, cnf.NewLit(2, false))
	b.RecordGate(1, false, false, nil)
	b.RecordExists(1, aig.False)
	b.RecordExpand(1, nil)
	b.RecordModel(nil)
	if b.Steps() != 0 {
		t.Fatal("nil builder recorded steps")
	}
}
