package cert

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/oracle"
)

// Check validates the certificate against the original formula without
// reusing any solver state: it verifies that every existential has a
// function whose support lies inside its dependency set, substitutes the
// functions into the matrix in a fresh graph, and asks one SAT call for a
// universal assignment falsifying the substituted matrix. A nil error means
// the certificate proves the formula satisfiable.
func Check(f *dqbf.Formula, c *Certificate) error {
	if c == nil || c.G == nil {
		return fmt.Errorf("cert: no certificate")
	}
	univ := dqbf.NewVarSet(f.Univ...)

	// Structural admissibility: one function per existential, support inside
	// the dependency set.
	for _, y := range f.Exist {
		fn, ok := c.Funcs[y]
		if !ok {
			return fmt.Errorf("cert: no Skolem function for existential %d", y)
		}
		sup := supportVars(c.G, fn)
		for _, v := range sup {
			if !univ.Has(v) {
				return fmt.Errorf("cert: function of %d depends on non-universal variable %d", y, v)
			}
			if !f.Deps[y].Has(v) {
				return fmt.Errorf("cert: function of %d depends on %d outside its dependency set %s", y, v, f.Deps[y])
			}
		}
	}

	// Build matrix[y := f_y] in a graph sharing nothing with the solver.
	h := aig.New()
	memo := make(map[int32]aig.Ref)
	fnOf := make(map[cnf.Var]aig.Ref, len(f.Exist))
	for _, y := range f.Exist {
		fnOf[y] = c.G.Export(c.Funcs[y], h, memo)
	}
	litRef := func(l cnf.Lit) (aig.Ref, error) {
		v := l.Var()
		if fn, ok := fnOf[v]; ok {
			return fn.XorSign(l.Neg()), nil
		}
		if univ.Has(v) {
			return h.Input(v).XorSign(l.Neg()), nil
		}
		return 0, fmt.Errorf("cert: matrix uses unquantified variable %d", v)
	}
	matrix := aig.True
	for _, cl := range f.Matrix.Clauses {
		refs := make([]aig.Ref, len(cl))
		for i, l := range cl {
			r, err := litRef(l)
			if err != nil {
				return err
			}
			refs[i] = r
		}
		matrix = h.And(matrix, h.OrN(refs...))
	}

	// One SAT call: a model of ¬matrix is a universal assignment the
	// certified functions fail on. The query goes through the oracle layer
	// (fresh instance — the checker must share no state with the solver) so
	// it uses the packed-arena substrate and the oracle.query fault seam
	// like every other oracle consumer.
	sat, model, err := oracle.New(h).IsSatisfiable(matrix.Not(), nil)
	if err != nil {
		return fmt.Errorf("cert: checker oracle failed: %w", err)
	}
	if !sat {
		return nil
	}
	var parts []string
	for _, x := range f.Univ {
		val := 0
		if model[x] {
			val = 1
		}
		parts = append(parts, fmt.Sprintf("%d=%d", x, val))
	}
	return fmt.Errorf("cert: certificate falsified at universal assignment {%s}", strings.Join(parts, ","))
}

// FromTables converts a table-based Skolem certificate (the iDQ baseline's
// output format, dqbf.Certificate) into the AIG form this package checks:
// each table becomes default ⊕ (OR of the minterms whose value differs from
// the default). Existentials without a table get the constant default. The
// conversion lets the table-producing and function-producing engines share
// one checker code path.
func FromTables(f *dqbf.Formula, tc *dqbf.Certificate) (*Certificate, error) {
	if tc == nil {
		return nil, fmt.Errorf("cert: no table certificate")
	}
	out := &Certificate{G: aig.New(), Funcs: make(map[cnf.Var]aig.Ref, len(f.Exist))}
	g := out.G
	for _, y := range f.Exist {
		deps := f.Deps[y].Vars()
		def := tc.Defaults[y]
		var flips []string
		for k, v := range tc.Tables[y] {
			if len(k) != len(deps) {
				return nil, fmt.Errorf("cert: table key %q for variable %d has wrong arity (deps %v)", k, y, deps)
			}
			if v != def {
				flips = append(flips, k)
			}
		}
		sort.Strings(flips)
		minterms := make([]aig.Ref, len(flips))
		for i, k := range flips {
			lits := make([]aig.Ref, len(deps))
			for j, d := range deps {
				lits[j] = g.Input(d).XorSign(k[j] == '0')
			}
			minterms[i] = g.AndN(lits...)
		}
		out.Funcs[y] = g.OrN(minterms...).XorSign(def)
	}
	return out, nil
}

// Format renders the certificate as human-readable Skolem tables against the
// formula's dependency sets: one line per existential with the full truth
// table when the dependency set is small, and a support summary otherwise.
// It is the shape printed by `hqs -cert` and by dqbffuzz on a rejected
// certificate.
func Format(f *dqbf.Formula, c *Certificate) string {
	const maxTableDeps = 6
	var b strings.Builder
	for _, y := range f.Exist {
		fn, ok := c.Funcs[y]
		if !ok {
			fmt.Fprintf(&b, "s %d : <missing>\n", y)
			continue
		}
		deps := f.Deps[y].Vars()
		fmt.Fprintf(&b, "s %d deps=%v :", y, deps)
		if len(deps) > maxTableDeps {
			sup := supportVars(c.G, fn)
			fmt.Fprintf(&b, " <%d-input function over %v, %d AIG nodes>\n", len(deps), sup, c.G.ConeSize(fn))
			continue
		}
		for bits := 0; bits < 1<<len(deps); bits++ {
			assign := func(v cnf.Var) bool {
				for i, d := range deps {
					if d == v {
						return bits&(1<<i) != 0
					}
				}
				return false
			}
			key := dqbf.ProjectionKey(deps, assign)
			val := 0
			if c.G.Eval(fn, assign) {
				val = 1
			}
			if key == "" {
				fmt.Fprintf(&b, " %d", val)
			} else {
				fmt.Fprintf(&b, " %s->%d", key, val)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// supportVars returns the syntactic support of r in ascending order.
func supportVars(g *aig.Graph, r aig.Ref) []cnf.Var {
	sup := g.Support(r)
	out := make([]cnf.Var, 0, len(sup))
	for v := range sup {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
