package cert

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/aig"
	"repro/internal/cnf"
)

// Encode serializes the certificate into a self-contained text blob: a
// header line naming the certified existential variables in ascending
// order, followed by the function cones as one deterministic ASCII-AIGER
// (aag) unit with one output per variable, in header order. The encoding is
// the wire form of a certificate — the cluster coordinator ships per-cube
// Skolem certificates between hqsd workers and the hqsc merge step with it —
// and is deterministic for a given certificate, so equal certificates encode
// to equal bytes.
func Encode(c *Certificate) ([]byte, error) {
	if c == nil || c.G == nil {
		return nil, fmt.Errorf("cert: cannot encode a nil certificate")
	}
	vars := make([]cnf.Var, 0, len(c.Funcs))
	for v := range c.Funcs {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "skolem 1 %d", len(vars))
	outs := make([]aig.Ref, len(vars))
	for i, v := range vars {
		fmt.Fprintf(&buf, " %d", v)
		outs[i] = c.Funcs[v]
	}
	buf.WriteByte('\n')
	if err := c.G.WriteAAG(&buf, outs...); err != nil {
		return nil, fmt.Errorf("cert: encoding function cones: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode parses a certificate produced by Encode. The result is
// self-contained: its functions live in a fresh graph, exactly like a
// certificate extracted in-process, so Check accepts it unchanged.
func Decode(data []byte) (*Certificate, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("cert: decoding header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) < 3 || fields[0] != "skolem" {
		return nil, fmt.Errorf("cert: bad certificate header %q", header)
	}
	version, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("cert: bad certificate header %q", header)
	}
	if version != 1 {
		return nil, fmt.Errorf("cert: unknown certificate encoding version %d", version)
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("cert: bad function count %q", fields[2])
	}
	if len(fields) != 3+n {
		return nil, fmt.Errorf("cert: header names %d variables, found %d", n, len(fields)-3)
	}
	vars := make([]cnf.Var, n)
	for i := range vars {
		v, err := strconv.Atoi(fields[3+i])
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cert: bad certificate variable %q", fields[3+i])
		}
		vars[i] = cnf.Var(v)
	}
	g, outs, err := aig.ReadAAG(br)
	if err != nil {
		return nil, fmt.Errorf("cert: decoding function cones: %w", err)
	}
	if len(outs) != len(vars) {
		return nil, fmt.Errorf("cert: blob has %d cones for %d variables", len(outs), len(vars))
	}
	c := &Certificate{G: g, Funcs: make(map[cnf.Var]aig.Ref, len(vars))}
	for i, v := range vars {
		if _, dup := c.Funcs[v]; dup {
			return nil, fmt.Errorf("cert: duplicate certificate variable %d", v)
		}
		c.Funcs[v] = outs[i]
	}
	return c, nil
}
