package cert

import (
	"math/rand"
	"testing"

	"repro/internal/dqbf"
	"repro/internal/idq"
)

// TestCodecRoundTrip encodes and decodes certificates of real SAT instances
// and asserts the decoded certificate still passes the independent checker —
// the property the cluster coordinator relies on when it ships per-cube
// certificates over the wire.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 40 && checked < 10; i++ {
		f := dqbf.RandomFormula(rng, 2, 4, 4)
		res := idq.New(idq.Options{}).Solve(f)
		if res.Status != idq.Solved || !res.Sat || res.Certificate == nil {
			continue
		}
		ac, err := FromTables(f, res.Certificate)
		if err != nil {
			t.Fatalf("instance %d: FromTables: %v", i, err)
		}
		if err := Check(f, ac); err != nil {
			t.Fatalf("instance %d: original certificate rejected: %v", i, err)
		}
		blob, err := Encode(ac)
		if err != nil {
			t.Fatalf("instance %d: Encode: %v", i, err)
		}
		dec, err := Decode(blob)
		if err != nil {
			t.Fatalf("instance %d: Decode: %v", i, err)
		}
		if len(dec.Funcs) != len(ac.Funcs) {
			t.Fatalf("instance %d: decoded %d functions, want %d", i, len(dec.Funcs), len(ac.Funcs))
		}
		if err := Check(f, dec); err != nil {
			t.Fatalf("instance %d: decoded certificate rejected: %v", i, err)
		}
		// Determinism: equal certificates encode to equal bytes.
		blob2, err := Encode(dec)
		if err != nil {
			t.Fatalf("instance %d: re-encode: %v", i, err)
		}
		dec2, err := Decode(blob2)
		if err != nil {
			t.Fatalf("instance %d: re-decode: %v", i, err)
		}
		if err := Check(f, dec2); err != nil {
			t.Fatalf("instance %d: re-decoded certificate rejected: %v", i, err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no satisfiable instance produced a certificate to round-trip")
	}
}

// TestDecodeRejectsGarbage pins the failure modes: bad header, bad version,
// truncated blobs, and cone/variable count mismatches must error, not panic.
func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"skolem\n",
		"skolem 1\n",
		"skolem 2 0\naag 0 0 0 0 0\n",
		"skolem 1 2 3\naag 0 0 0 0 0\n",
		"skolem 1 1 3 4\naag 0 0 0 1 0\n0\n",
		"skolem 1 -1\n",
		"skolem 1 1 0\naag 0 0 0 1 0\n0\n",
		"skolem 1 0 not-an-aag\n",
	} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Errorf("Decode(%q) accepted garbage", bad)
		}
	}
}
