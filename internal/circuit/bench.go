package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads a circuit in the ISCAS-85 BENCH format:
//
//	INPUT(a)
//	OUTPUT(f)
//	f = AND(a, b)
//	g = NOT(f)
//
// Gate lines may reference signals defined later; a topological order is
// established after parsing. Unknown driven signals become FREE gates
// (black-box outputs), which is how incomplete BENCH netlists are written.
func ParseBench(r io.Reader) (*Circuit, error) {
	type rawGate struct {
		name string
		typ  GateType
		ins  []string
	}
	var raws []rawGate
	var inputs, outputs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			inputs = append(inputs, name)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT("):
			name, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", lineNo, err)
			}
			outputs = append(outputs, name)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment, got %q", lineNo, line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.Index(rhs, "(")
			cp := strings.LastIndex(rhs, ")")
			if op < 0 || cp < op {
				return nil, fmt.Errorf("bench line %d: malformed gate %q", lineNo, line)
			}
			tname := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			var typ GateType
			switch tname {
			case "AND":
				typ = AndGate
			case "OR":
				typ = OrGate
			case "NAND":
				typ = NandGate
			case "NOR":
				typ = NorGate
			case "XOR":
				typ = XorGate
			case "XNOR":
				typ = XnorGate
			case "NOT", "INV":
				typ = NotGate
			case "BUF", "BUFF":
				typ = BufGate
			default:
				return nil, fmt.Errorf("bench line %d: unknown gate type %q", lineNo, tname)
			}
			var ins []string
			for _, tok := range strings.Split(rhs[op+1:cp], ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					return nil, fmt.Errorf("bench line %d: empty input name", lineNo)
				}
				ins = append(ins, tok)
			}
			if name == "" {
				return nil, fmt.Errorf("bench line %d: empty signal name in %q", lineNo, line)
			}
			// Reject arity violations here with a line number instead of
			// letting AddGate panic on them during circuit construction.
			if lo, hi := typ.arity(); len(ins) < lo || (hi >= 0 && len(ins) > hi) {
				return nil, fmt.Errorf("bench line %d: %s gate %q with %d inputs", lineNo, tname, name, len(ins))
			}
			raws = append(raws, rawGate{name: name, typ: typ, ins: ins})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	c := New()
	for _, name := range inputs {
		c.AddInput(name)
	}
	// Any referenced-but-undriven signal becomes a FREE gate.
	driven := make(map[string]bool)
	for _, name := range inputs {
		driven[name] = true
	}
	byName := make(map[string]rawGate)
	for _, rg := range raws {
		if driven[rg.name] {
			return nil, fmt.Errorf("bench: signal %q driven twice", rg.name)
		}
		driven[rg.name] = true
		byName[rg.name] = rg
	}
	var freeNames []string
	seenFree := map[string]bool{}
	for _, rg := range raws {
		for _, in := range rg.ins {
			if !driven[in] && !seenFree[in] {
				seenFree[in] = true
				freeNames = append(freeNames, in)
			}
		}
	}
	sort.Strings(freeNames)
	for _, name := range freeNames {
		c.AddFree(name)
	}
	// Topological insertion with an explicit DFS.
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		if c.Signal(name) >= 0 && state[name] != 1 {
			return nil
		}
		switch state[name] {
		case 1:
			return fmt.Errorf("bench: combinational cycle through %q", name)
		case 2:
			return nil
		}
		state[name] = 1
		rg, ok := byName[name]
		if !ok {
			return fmt.Errorf("bench: undefined signal %q", name)
		}
		ins := make([]int, len(rg.ins))
		for i, in := range rg.ins {
			if err := visit(in); err != nil {
				return err
			}
			ins[i] = c.Signal(in)
		}
		state[name] = 2
		c.AddGate(rg.name, rg.typ, ins...)
		return nil
	}
	for _, rg := range raws {
		if err := visit(rg.name); err != nil {
			return nil, err
		}
	}
	for _, name := range outputs {
		id := c.Signal(name)
		if id < 0 {
			return nil, fmt.Errorf("bench: output %q undefined", name)
		}
		c.MarkOutput(id)
	}
	return c, nil
}

func parenArg(line string) (string, error) {
	op := strings.Index(line, "(")
	cp := strings.LastIndex(line, ")")
	if op < 0 || cp < op {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	name := strings.TrimSpace(line[op+1 : cp])
	if name == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return name, nil
}

// ParseBenchString parses a BENCH netlist from a string.
func ParseBenchString(s string) (*Circuit, error) {
	return ParseBench(strings.NewReader(s))
}

// WriteBench writes the circuit in BENCH format. FREE signals are emitted as
// comments (they have no BENCH syntax) and referenced by name.
func (c *Circuit) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, id := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Name(id))
	}
	for _, id := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Name(id))
	}
	for id, g := range c.Gates {
		switch g.Type {
		case InputGate:
			continue
		case FreeGate:
			fmt.Fprintf(bw, "# FREE %s\n", g.Name)
			continue
		case Const0:
			fmt.Fprintf(bw, "# CONST0 %s\n", g.Name)
			continue
		case Const1:
			fmt.Fprintf(bw, "# CONST1 %s\n", g.Name)
			continue
		}
		names := make([]string, len(g.Ins))
		for i, in := range g.Ins {
			names[i] = c.Name(in)
		}
		tname := g.Type.String()
		if g.Type == BufGate {
			tname = "BUFF"
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.Name(id), tname, strings.Join(names, ", "))
		_ = id
	}
	return bw.Flush()
}
