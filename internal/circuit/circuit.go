// Package circuit provides the gate-level combinational-circuit substrate for
// the PEC (partial equivalence checking) benchmarks of the paper's
// evaluation: a netlist model with evaluation, Tseitin CNF encoding, AIG
// conversion, an ISCAS-85-style BENCH reader/writer, circuit generators for
// the seven benchmark families (adders, arbiter bitcell chains, lookahead
// arbiters, XOR chains, z4-style adders, comparators, C432-style priority
// logic), and fault injection for producing unrealizable instances.
package circuit

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/cnf"
)

// GateType enumerates the supported gate functions.
type GateType int

// Gate types. InputGate marks primary inputs; FreeGate marks signals with no
// driver (used for black-box outputs in incomplete circuits).
const (
	InputGate GateType = iota
	FreeGate
	Const0
	Const1
	BufGate
	NotGate
	AndGate
	OrGate
	NandGate
	NorGate
	XorGate
	XnorGate
)

var gateNames = map[GateType]string{
	InputGate: "INPUT", FreeGate: "FREE", Const0: "CONST0", Const1: "CONST1",
	BufGate: "BUF", NotGate: "NOT", AndGate: "AND", OrGate: "OR",
	NandGate: "NAND", NorGate: "NOR", XorGate: "XOR", XnorGate: "XNOR",
}

func (t GateType) String() string {
	if s, ok := gateNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// arity returns the allowed input count: (min, max); max -1 means unbounded.
func (t GateType) arity() (int, int) {
	switch t {
	case InputGate, FreeGate, Const0, Const1:
		return 0, 0
	case BufGate, NotGate:
		return 1, 1
	case XorGate, XnorGate:
		return 2, 2
	default:
		return 1, -1
	}
}

// Gate is one netlist node.
type Gate struct {
	Type GateType
	Name string
	Ins  []int // signal ids
}

// Circuit is a combinational netlist. Signals are identified by dense ids.
type Circuit struct {
	Gates   []Gate
	Inputs  []int // primary input ids in declaration order
	Outputs []int // primary output ids in declaration order
	byName  map[string]int
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{byName: make(map[string]int)}
}

// NumGates returns the number of signals (inputs included).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Signal returns the id of the named signal, or -1.
func (c *Circuit) Signal(name string) int {
	if id, ok := c.byName[name]; ok {
		return id
	}
	return -1
}

// Name returns the name of signal id.
func (c *Circuit) Name(id int) string { return c.Gates[id].Name }

// AddInput declares a primary input and returns its signal id.
func (c *Circuit) AddInput(name string) int {
	id := c.addGate(Gate{Type: InputGate, Name: name})
	c.Inputs = append(c.Inputs, id)
	return id
}

// AddFree declares an undriven signal (black-box output placeholder).
func (c *Circuit) AddFree(name string) int {
	return c.addGate(Gate{Type: FreeGate, Name: name})
}

// AddGate adds a gate driving a new signal and returns its id. Input ids
// must already exist (combinational circuits are acyclic by construction).
func (c *Circuit) AddGate(name string, t GateType, ins ...int) int {
	lo, hi := t.arity()
	if len(ins) < lo || (hi >= 0 && len(ins) > hi) {
		panic(fmt.Sprintf("circuit: %s gate %q with %d inputs", t, name, len(ins)))
	}
	for _, in := range ins {
		if in < 0 || in >= len(c.Gates) {
			panic(fmt.Sprintf("circuit: gate %q references unknown signal %d", name, in))
		}
	}
	return c.addGate(Gate{Type: t, Name: name, Ins: append([]int(nil), ins...)})
}

func (c *Circuit) addGate(g Gate) int {
	if g.Name == "" {
		g.Name = fmt.Sprintf("n%d", len(c.Gates))
	}
	if _, dup := c.byName[g.Name]; dup {
		panic(fmt.Sprintf("circuit: duplicate signal name %q", g.Name))
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.byName[g.Name] = id
	return id
}

// MarkOutput declares signal id a primary output.
func (c *Circuit) MarkOutput(id int) {
	if id < 0 || id >= len(c.Gates) {
		panic("circuit: unknown output signal")
	}
	c.Outputs = append(c.Outputs, id)
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	d := New()
	d.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		d.Gates[i] = Gate{Type: g.Type, Name: g.Name, Ins: append([]int(nil), g.Ins...)}
		d.byName[g.Name] = i
	}
	d.Inputs = append([]int(nil), c.Inputs...)
	d.Outputs = append([]int(nil), c.Outputs...)
	return d
}

// evalGate computes a gate function over input values.
func evalGate(t GateType, vals []bool) bool {
	switch t {
	case Const0:
		return false
	case Const1:
		return true
	case BufGate:
		return vals[0]
	case NotGate:
		return !vals[0]
	case AndGate, NandGate:
		out := true
		for _, v := range vals {
			out = out && v
		}
		if t == NandGate {
			return !out
		}
		return out
	case OrGate, NorGate:
		out := false
		for _, v := range vals {
			out = out || v
		}
		if t == NorGate {
			return !out
		}
		return out
	case XorGate:
		return vals[0] != vals[1]
	case XnorGate:
		return vals[0] == vals[1]
	default:
		panic(fmt.Sprintf("circuit: cannot evaluate %v", t))
	}
}

// Eval evaluates the circuit under the given primary-input values (in
// Inputs order) and free-signal values (by signal id; may be nil when the
// circuit is complete). It returns the output values in Outputs order.
func (c *Circuit) Eval(inputs []bool, free map[int]bool) []bool {
	vals := c.EvalAll(inputs, free)
	out := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		out[i] = vals[id]
	}
	return out
}

// EvalAll is like Eval but returns the values of all signals, indexed by id.
func (c *Circuit) EvalAll(inputs []bool, free map[int]bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: %d input values for %d inputs", len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Gates))
	for i, id := range c.Inputs {
		vals[id] = inputs[i]
	}
	var ins []bool
	for id, g := range c.Gates {
		switch g.Type {
		case InputGate:
			continue
		case FreeGate:
			vals[id] = free[id]
		default:
			ins = ins[:0]
			for _, in := range g.Ins {
				ins = append(ins, vals[in])
			}
			vals[id] = evalGate(g.Type, ins)
		}
	}
	return vals
}

// FreeSignals returns the ids of undriven signals.
func (c *Circuit) FreeSignals() []int {
	var out []int
	for id, g := range c.Gates {
		if g.Type == FreeGate {
			out = append(out, id)
		}
	}
	return out
}

// ToAIG builds AIG references for all signals over graph g: primary inputs
// and free signals are mapped through sigVar, which assigns each such signal
// a distinct AIG input variable. It returns a per-signal reference slice.
func (c *Circuit) ToAIG(g *aig.Graph, sigVar func(id int) cnf.Var) []aig.Ref {
	refs := make([]aig.Ref, len(c.Gates))
	for id, gate := range c.Gates {
		switch gate.Type {
		case InputGate, FreeGate:
			refs[id] = g.Input(sigVar(id))
		case Const0:
			refs[id] = aig.False
		case Const1:
			refs[id] = aig.True
		case BufGate:
			refs[id] = refs[gate.Ins[0]]
		case NotGate:
			refs[id] = refs[gate.Ins[0]].Not()
		case AndGate, NandGate:
			ins := make([]aig.Ref, len(gate.Ins))
			for i, in := range gate.Ins {
				ins[i] = refs[in]
			}
			r := g.AndN(ins...)
			if gate.Type == NandGate {
				r = r.Not()
			}
			refs[id] = r
		case OrGate, NorGate:
			ins := make([]aig.Ref, len(gate.Ins))
			for i, in := range gate.Ins {
				ins[i] = refs[in]
			}
			r := g.OrN(ins...)
			if gate.Type == NorGate {
				r = r.Not()
			}
			refs[id] = r
		case XorGate:
			refs[id] = g.Xor(refs[gate.Ins[0]], refs[gate.Ins[1]])
		case XnorGate:
			refs[id] = g.Xnor(refs[gate.Ins[0]], refs[gate.Ins[1]])
		}
	}
	return refs
}
