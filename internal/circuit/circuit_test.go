package circuit

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/sat"
)

func TestBasicGatesEval(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	b := c.AddInput("b")
	checks := []struct {
		t GateType
		f func(x, y bool) bool
	}{
		{AndGate, func(x, y bool) bool { return x && y }},
		{OrGate, func(x, y bool) bool { return x || y }},
		{NandGate, func(x, y bool) bool { return !(x && y) }},
		{NorGate, func(x, y bool) bool { return !(x || y) }},
		{XorGate, func(x, y bool) bool { return x != y }},
		{XnorGate, func(x, y bool) bool { return x == y }},
	}
	for _, ck := range checks {
		id := c.AddGate("", ck.t, a, b)
		c.MarkOutput(id)
		_ = id
	}
	nid := c.AddGate("n", NotGate, a)
	c.MarkOutput(nid)
	bid := c.AddGate("bf", BufGate, b)
	c.MarkOutput(bid)
	for bits := 0; bits < 4; bits++ {
		x, y := bits&1 != 0, bits&2 != 0
		out := c.Eval([]bool{x, y}, nil)
		for i, ck := range checks {
			if out[i] != ck.f(x, y) {
				t.Errorf("%v(%v,%v) = %v", ck.t, x, y, out[i])
			}
		}
		if out[len(checks)] != !x || out[len(checks)+1] != y {
			t.Error("NOT/BUF broken")
		}
	}
}

func TestFreeSignals(t *testing.T) {
	c := New()
	a := c.AddInput("a")
	f := c.AddFree("bb_out")
	o := c.AddGate("o", AndGate, a, f)
	c.MarkOutput(o)
	if got := c.Eval([]bool{true}, map[int]bool{f: true}); !got[0] {
		t.Fatal("free=1, a=1 should give 1")
	}
	if got := c.Eval([]bool{true}, map[int]bool{f: false}); got[0] {
		t.Fatal("free=0 should give 0")
	}
	fs := c.FreeSignals()
	if len(fs) != 1 || fs[0] != f {
		t.Fatalf("FreeSignals = %v", fs)
	}
}

// checkAdder verifies n-bit adder semantics exhaustively (n small).
func checkAdder(t *testing.T, c *Circuit, n int) {
	t.Helper()
	if len(c.Inputs) != 2*n+1 || len(c.Outputs) != n+1 {
		t.Fatalf("adder pins: %d in, %d out", len(c.Inputs), len(c.Outputs))
	}
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			for cin := 0; cin < 2; cin++ {
				in := make([]bool, 2*n+1)
				for i := 0; i < n; i++ {
					in[i] = a&(1<<i) != 0
					in[n+i] = b&(1<<i) != 0
				}
				in[2*n] = cin == 1
				out := c.Eval(in, nil)
				sum := a + b + cin
				for i := 0; i <= n; i++ {
					if out[i] != (sum&(1<<i) != 0) {
						t.Fatalf("adder wrong: %d+%d+%d bit %d", a, b, cin, i)
					}
				}
			}
		}
	}
}

func TestRippleCarryAdder(t *testing.T) {
	for n := 1; n <= 4; n++ {
		checkAdder(t, RippleCarryAdder(n), n)
	}
}

func TestCarryLookaheadAdder(t *testing.T) {
	for n := 1; n <= 4; n++ {
		checkAdder(t, CarryLookaheadAdder(n), n)
	}
}

func TestZ4Adder(t *testing.T) {
	checkAdder(t, Z4Adder(), 2)
}

func checkArbiter(t *testing.T, c *Circuit, n int) {
	t.Helper()
	for bits := 0; bits < 1<<n; bits++ {
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			in[i] = bits&(1<<i) != 0
		}
		out := c.Eval(in, nil)
		granted := -1
		for i := 0; i < n; i++ {
			if in[i] {
				granted = i
				break
			}
		}
		for i := 0; i < n; i++ {
			want := i == granted
			if out[i] != want {
				t.Fatalf("arbiter(%0*b): grant %d = %v, want %v", n, bits, i, out[i], want)
			}
		}
	}
}

func TestArbiters(t *testing.T) {
	for n := 1; n <= 5; n++ {
		checkArbiter(t, ArbiterBitcell(n), n)
		checkArbiter(t, ArbiterLookahead(n), n)
	}
}

func TestXorChain(t *testing.T) {
	for n := 1; n <= 6; n++ {
		c := XorChain(n)
		for bits := 0; bits < 1<<n; bits++ {
			in := make([]bool, n)
			parity := false
			for i := 0; i < n; i++ {
				in[i] = bits&(1<<i) != 0
				parity = parity != in[i]
			}
			if out := c.Eval(in, nil); out[0] != parity {
				t.Fatalf("xor chain n=%d bits=%b", n, bits)
			}
		}
	}
}

func TestComparator(t *testing.T) {
	for n := 1; n <= 4; n++ {
		c := Comparator(n)
		for a := 0; a < 1<<n; a++ {
			for b := 0; b < 1<<n; b++ {
				in := make([]bool, 2*n)
				for i := 0; i < n; i++ {
					in[i] = a&(1<<i) != 0
					in[n+i] = b&(1<<i) != 0
				}
				out := c.Eval(in, nil)
				if out[0] != (a == b) || out[1] != (a > b) {
					t.Fatalf("comp(%d,%d) = %v", a, b, out)
				}
			}
		}
	}
}

func TestPriorityController(t *testing.T) {
	n := 4
	c := PriorityController(n)
	for bits := 0; bits < 1<<(2*n); bits++ {
		in := make([]bool, 2*n)
		for i := 0; i < 2*n; i++ {
			in[i] = bits&(1<<i) != 0
		}
		out := c.Eval(in, nil)
		granted := -1
		any := false
		for i := 0; i < n; i++ {
			if in[i] && in[n+i] {
				any = true
				if granted < 0 {
					granted = i
				}
			}
		}
		for i := 0; i < n; i++ {
			if out[i] != (i == granted) {
				t.Fatalf("prio grant %d wrong at %b", i, bits)
			}
		}
		if out[n] != any {
			t.Fatalf("prio any wrong at %b", bits)
		}
	}
}

// checkEncodingsAgree verifies circuit evaluation against the AIG and CNF
// encodings on random vectors.
func checkEncodingsAgree(t *testing.T, c *Circuit, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := aig.New()
	sigVar := func(id int) cnf.Var { return cnf.Var(id + 1) }
	refs := c.ToAIG(g, sigVar)

	f := cnf.NewFormula(len(c.Gates))
	enc := c.ToCNF(f, sigVar)

	for round := 0; round < 32; round++ {
		in := make([]bool, len(c.Inputs))
		assign := map[cnf.Var]bool{}
		for i, id := range c.Inputs {
			in[i] = rng.Intn(2) == 0
			assign[sigVar(id)] = in[i]
		}
		want := c.Eval(in, nil)
		// AIG agreement.
		for i, id := range c.Outputs {
			got := g.Eval(refs[id], func(v cnf.Var) bool { return assign[v] })
			if got != want[i] {
				t.Fatalf("AIG output %d disagrees (round %d)", i, round)
			}
		}
		// CNF agreement: fix inputs, solve, check output literals.
		s := sat.New()
		s.EnsureVars(f.NumVars)
		for _, cl := range f.Clauses {
			s.AddClause(cl...)
		}
		for v, val := range assign {
			s.AddClause(cnf.NewLit(v, !val))
		}
		if s.Solve() != sat.Sat {
			t.Fatalf("CNF encoding unsatisfiable under input fixing (round %d)", round)
		}
		m := s.Model()
		for i, id := range c.Outputs {
			if m.Lit(enc.SigLit[id]) != want[i] {
				t.Fatalf("CNF output %d disagrees (round %d)", i, round)
			}
		}
	}
}

func TestEncodingsAgree(t *testing.T) {
	circuits := []*Circuit{
		RippleCarryAdder(3),
		CarryLookaheadAdder(3),
		ArbiterBitcell(4),
		ArbiterLookahead(4),
		XorChain(5),
		Comparator(3),
		PriorityController(3),
	}
	for i, c := range circuits {
		checkEncodingsAgree(t, c, int64(100+i))
	}
}

func TestAdderVariantsEquivalent(t *testing.T) {
	// RCA and CLA must agree exhaustively at n=3.
	n := 3
	rca := RippleCarryAdder(n)
	cla := CarryLookaheadAdder(n)
	for bits := 0; bits < 1<<(2*n+1); bits++ {
		in := make([]bool, 2*n+1)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		a := rca.Eval(in, nil)
		b := cla.Eval(in, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("RCA/CLA differ at %b output %d", bits, i)
			}
		}
	}
}

func TestFaultChangesBehaviour(t *testing.T) {
	c := RippleCarryAdder(2)
	rng := rand.New(rand.NewSource(9))
	faulty, id := c.RandomFault(rng)
	if faulty.Gates[id].Type == c.Gates[id].Type {
		t.Fatal("fault did not change gate type")
	}
	diff := false
	for bits := 0; bits < 1<<5 && !diff; bits++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		a := c.Eval(in, nil)
		b := faulty.Eval(in, nil)
		for i := range a {
			if a[i] != b[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("gate swap produced an equivalent circuit")
	}
}

func TestFaultInputNegation(t *testing.T) {
	c := XorChain(3)
	id := c.Signal("t2")
	faulty := c.InjectFault(id, FaultInputNegation, 0)
	// Negating an XOR input flips the output everywhere.
	for bits := 0; bits < 8; bits++ {
		in := []bool{bits&1 != 0, bits&2 != 0, bits&4 != 0}
		if c.Eval(in, nil)[0] == faulty.Eval(in, nil)[0] {
			t.Fatalf("negated xor input should flip output at %b", bits)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := RippleCarryAdder(2)
	var buf bytes.Buffer
	if err := c.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inputs) != len(c.Inputs) || len(d.Outputs) != len(c.Outputs) {
		t.Fatalf("pins differ after round trip")
	}
	for bits := 0; bits < 1<<5; bits++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		a := c.Eval(in, nil)
		b := d.Eval(in, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round-trip circuit differs at %b", bits)
			}
		}
	}
}

func TestParseBenchOutOfOrderAndFree(t *testing.T) {
	src := `
# comment
INPUT(a)
INPUT(b)
OUTPUT(f)
f = AND(g, b)
g = XOR(a, bb)
`
	c, err := ParseBenchString(src)
	if err != nil {
		t.Fatal(err)
	}
	free := c.FreeSignals()
	if len(free) != 1 || c.Name(free[0]) != "bb" {
		t.Fatalf("free signals = %v", free)
	}
	out := c.Eval([]bool{true, true}, map[int]bool{free[0]: false})
	if !out[0] { // (1 xor 0) and 1
		t.Fatal("eval wrong")
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []string{
		"INPUT()\n",
		"f = FOO(a)\nINPUT(a)\n",
		"f AND(a)\nINPUT(a)\n",
		"INPUT(a)\nf = AND(a)\nf = OR(a)\n",
		"INPUT(a)\nOUTPUT(zz)\nf = AND(a)\n",
		"a = BUF(b)\nb = BUF(a)\nOUTPUT(a)\n",
	}
	for _, src := range cases {
		if _, err := ParseBenchString(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := XorChain(3)
	d := c.Clone()
	d.Gates[3].Type = XnorGate
	if c.Gates[3].Type == XnorGate {
		t.Fatal("Clone shares gate storage")
	}
}

func TestGateTypeString(t *testing.T) {
	if AndGate.String() != "AND" || GateType(99).String() == "" {
		t.Fatal("GateType.String broken")
	}
}

func TestArrayMultiplier(t *testing.T) {
	for n := 1; n <= 3; n++ {
		c := ArrayMultiplier(n)
		if len(c.Outputs) != 2*n {
			t.Fatalf("n=%d: %d outputs", n, len(c.Outputs))
		}
		for a := 0; a < 1<<n; a++ {
			for b := 0; b < 1<<n; b++ {
				in := make([]bool, 2*n)
				for i := 0; i < n; i++ {
					in[i] = a&(1<<i) != 0
					in[n+i] = b&(1<<i) != 0
				}
				out := c.Eval(in, nil)
				prod := a * b
				for i := 0; i < 2*n; i++ {
					if out[i] != (prod&(1<<i) != 0) {
						t.Fatalf("n=%d: %d*%d bit %d wrong", n, a, b, i)
					}
				}
			}
		}
	}
}

func TestMuxTree(t *testing.T) {
	for k := 1; k <= 3; k++ {
		c := MuxTree(k)
		n := 1 << k
		for bits := 0; bits < 1<<(n+k); bits++ {
			in := make([]bool, n+k)
			for i := range in {
				in[i] = bits&(1<<i) != 0
			}
			selIdx := 0
			for i := 0; i < k; i++ {
				if in[n+i] {
					selIdx |= 1 << i
				}
			}
			if got := c.Eval(in, nil)[0]; got != in[selIdx] {
				t.Fatalf("k=%d bits=%b: mux = %v, want d%d=%v", k, bits, got, selIdx, in[selIdx])
			}
		}
	}
}

func TestNewGeneratorsEncodingsAgree(t *testing.T) {
	checkEncodingsAgree(t, ArrayMultiplier(2), 301)
	checkEncodingsAgree(t, MuxTree(2), 302)
}
