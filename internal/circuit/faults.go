package circuit

import (
	"fmt"
	"math/rand"
)

// FaultKind enumerates the injectable gate-level faults used to produce
// unrealizable PEC instances.
type FaultKind int

const (
	// FaultGateSwap replaces the gate function by a different one of the
	// same arity (AND↔OR, XOR↔XNOR, NAND↔NOR, NOT↔BUF).
	FaultGateSwap FaultKind = iota
	// FaultInputNegation inserts an inverter on one gate input.
	FaultInputNegation
)

// swapped returns the fault partner of a gate type, or the type itself when
// no partner exists.
func swapped(t GateType) GateType {
	switch t {
	case AndGate:
		return OrGate
	case OrGate:
		return AndGate
	case NandGate:
		return NorGate
	case NorGate:
		return NandGate
	case XorGate:
		return XnorGate
	case XnorGate:
		return XorGate
	case NotGate:
		return BufGate
	case BufGate:
		return NotGate
	default:
		return t
	}
}

// InjectFault applies a fault to gate id and returns a modified copy. It
// panics if the signal is not a functional gate.
func (c *Circuit) InjectFault(id int, kind FaultKind, input int) *Circuit {
	d := c.Clone()
	g := &d.Gates[id]
	switch g.Type {
	case InputGate, FreeGate, Const0, Const1:
		panic(fmt.Sprintf("circuit: cannot inject fault into %v %q", g.Type, g.Name))
	}
	switch kind {
	case FaultGateSwap:
		ns := swapped(g.Type)
		if ns == g.Type {
			panic(fmt.Sprintf("circuit: no swap partner for %v", g.Type))
		}
		g.Type = ns
	case FaultInputNegation:
		if input < 0 || input >= len(g.Ins) {
			panic("circuit: fault input index out of range")
		}
		inv := d.AddGate(fmt.Sprintf("flt_%s_%d", g.Name, input), NotGate, g.Ins[input])
		g = &d.Gates[id] // re-take: AddGate may have reallocated the slice
		g.Ins[input] = inv
		// The inverter was appended after its use site; restore the
		// topological gate order Eval and the encoders rely on.
		return d.retopo()
	}
	return d
}

// retopo rebuilds the circuit in topological order (needed after rewiring).
func (c *Circuit) retopo() *Circuit {
	d := New()
	idMap := make([]int, len(c.Gates))
	for i := range idMap {
		idMap[i] = -1
	}
	var visit func(id int) int
	visit = func(id int) int {
		if idMap[id] >= 0 {
			return idMap[id]
		}
		g := c.Gates[id]
		switch g.Type {
		case InputGate:
			idMap[id] = d.AddInput(g.Name)
		case FreeGate:
			idMap[id] = d.AddFree(g.Name)
		default:
			ins := make([]int, len(g.Ins))
			for i, in := range g.Ins {
				ins[i] = visit(in)
			}
			idMap[id] = d.AddGate(g.Name, g.Type, ins...)
		}
		return idMap[id]
	}
	// Preserve input declaration order.
	for _, id := range c.Inputs {
		visit(id)
	}
	for id := range c.Gates {
		visit(id)
	}
	for _, id := range c.Outputs {
		d.MarkOutput(idMap[id])
	}
	return d
}

// RandomFault injects a random fault using rng, preferring gates whose type
// has a swap partner. It returns the faulty circuit and the affected gate id.
func (c *Circuit) RandomFault(rng *rand.Rand) (*Circuit, int) {
	var candidates []int
	for id, g := range c.Gates {
		switch g.Type {
		case InputGate, FreeGate, Const0, Const1:
			continue
		}
		if swapped(c.Gates[id].Type) != c.Gates[id].Type {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		panic("circuit: no fault candidates")
	}
	id := candidates[rng.Intn(len(candidates))]
	return c.InjectFault(id, FaultGateSwap, 0), id
}
