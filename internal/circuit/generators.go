package circuit

import "fmt"

// RippleCarryAdder builds an n-bit ripple-carry adder: inputs a0..a(n-1),
// b0..b(n-1), cin; outputs s0..s(n-1), cout. Full adders are built from
// XOR/AND/OR cells, one cell per bit (the structure black boxes cut out).
func RippleCarryAdder(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	carry := c.AddInput("cin")
	for i := 0; i < n; i++ {
		p := c.AddGate(fmt.Sprintf("p%d", i), XorGate, a[i], b[i])
		s := c.AddGate(fmt.Sprintf("s%d", i), XorGate, p, carry)
		g1 := c.AddGate(fmt.Sprintf("g1_%d", i), AndGate, a[i], b[i])
		g2 := c.AddGate(fmt.Sprintf("g2_%d", i), AndGate, p, carry)
		carry = c.AddGate(fmt.Sprintf("c%d", i+1), OrGate, g1, g2)
		c.MarkOutput(s)
	}
	c.MarkOutput(carry)
	return c
}

// CarryLookaheadAdder builds an n-bit adder with two-level lookahead carry
// logic: generate g_i = a_i b_i, propagate p_i = a_i ⊕ b_i, and carries
// expanded as c_{i+1} = g_i ∨ p_i g_{i-1} ∨ ... ∨ p_i…p_0 cin. Functionally
// identical to RippleCarryAdder with the same pin names.
func CarryLookaheadAdder(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	cin := c.AddInput("cin")
	g := make([]int, n)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = c.AddGate(fmt.Sprintf("g%d", i), AndGate, a[i], b[i])
		p[i] = c.AddGate(fmt.Sprintf("p%d", i), XorGate, a[i], b[i])
	}
	carries := make([]int, n+1)
	carries[0] = cin
	for i := 0; i < n; i++ {
		// c_{i+1} = g_i ∨ (p_i ∧ ... ∧ p_j ∧ g_{j-1}) ∨ ... ∨ (p_i..p_0 ∧ cin)
		terms := []int{g[i]}
		for j := i; j >= 0; j-- {
			// conjunction p_i..p_j with (g_{j-1} or cin when j==0)
			conj := p[i]
			for k := i - 1; k >= j; k-- {
				conj = c.AddGate(fmt.Sprintf("t%d_%d_%d", i, j, k), AndGate, conj, p[k])
			}
			bottom := cin
			if j > 0 {
				bottom = g[j-1]
			}
			terms = append(terms, c.AddGate(fmt.Sprintf("u%d_%d", i, j), AndGate, conj, bottom))
		}
		carries[i+1] = c.AddGate(fmt.Sprintf("c%d", i+1), OrGate, terms...)
	}
	for i := 0; i < n; i++ {
		s := c.AddGate(fmt.Sprintf("s%d", i), XorGate, p[i], carries[i])
		c.MarkOutput(s)
	}
	c.MarkOutput(carries[n])
	return c
}

// ArbiterBitcell builds an n-port fixed-priority arbiter as a chain of
// bitcells (Dally & Harting, Digital Design: A Systems Approach): each cell
// computes grant_i = req_i ∧ carry_i and passes carry_{i+1} = carry_i ∧
// ¬req_i. Port 0 has the highest priority.
func ArbiterBitcell(n int) *Circuit {
	c := New()
	req := make([]int, n)
	for i := 0; i < n; i++ {
		req[i] = c.AddInput(fmt.Sprintf("r%d", i))
	}
	carry := c.AddGate("carry0", OrGate, c.AddGate("nr_init", NotGate, req[0]), req[0])
	// carry0 ≡ 1 built structurally (avoids a constant gate in BENCH output).
	for i := 0; i < n; i++ {
		gnt := c.AddGate(fmt.Sprintf("g%d", i), AndGate, req[i], carry)
		c.MarkOutput(gnt)
		if i+1 < n {
			nr := c.AddGate(fmt.Sprintf("nr%d", i), NotGate, req[i])
			carry = c.AddGate(fmt.Sprintf("carry%d", i+1), AndGate, carry, nr)
		}
	}
	return c
}

// ArbiterLookahead builds an n-port fixed-priority arbiter with lookahead:
// grant_i = req_i ∧ ¬(req_0 ∨ ... ∨ req_{i-1}), computed with a parallel
// OR-prefix instead of the bitcell carry chain. Functionally identical to
// ArbiterBitcell with the same pin names.
func ArbiterLookahead(n int) *Circuit {
	c := New()
	req := make([]int, n)
	for i := 0; i < n; i++ {
		req[i] = c.AddInput(fmt.Sprintf("r%d", i))
	}
	// Prefix ORs (simple doubling structure).
	prefix := make([]int, n) // prefix[i] = req_0 ∨ ... ∨ req_i
	for i := 0; i < n; i++ {
		if i == 0 {
			prefix[0] = c.AddGate("pre0", OrGate, req[0])
		} else {
			prefix[i] = c.AddGate(fmt.Sprintf("pre%d", i), OrGate, prefix[i-1], req[i])
		}
	}
	for i := 0; i < n; i++ {
		if i == 0 {
			g0 := c.AddGate("g0", AndGate, req[0])
			c.MarkOutput(g0)
			continue
		}
		blk := c.AddGate(fmt.Sprintf("blk%d", i), NotGate, prefix[i-1])
		gnt := c.AddGate(fmt.Sprintf("g%d", i), AndGate, req[i], blk)
		c.MarkOutput(gnt)
	}
	return c
}

// XorChain builds the pec_xor family circuit: out = x0 ⊕ x1 ⊕ ... ⊕ x(n-1)
// as a linear chain of XOR cells.
func XorChain(n int) *Circuit {
	c := New()
	x := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = c.AddInput(fmt.Sprintf("x%d", i))
	}
	cur := x[0]
	for i := 1; i < n; i++ {
		cur = c.AddGate(fmt.Sprintf("t%d", i), XorGate, cur, x[i])
	}
	c.MarkOutput(cur)
	return c
}

// Z4Adder builds a z4ml-style 2-bit slice adder with carry-in: inputs
// a0,a1,b0,b1,cin; outputs s0,s1,cout — the ISCAS-85 z4ml analogue used for
// the z4 PEC family (z4ml is a 2-bit add slice of a larger adder).
func Z4Adder() *Circuit {
	return RippleCarryAdder(2)
}

// Comparator builds an n-bit magnitude comparator: inputs a0..a(n-1),
// b0..b(n-1); outputs eq (a = b) and gt (a > b), computed MSB-first — the
// ISCAS-85 "comp" style workload.
func Comparator(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	// eq_i per bit; eq = AND of all; gt = OR_i (a_i ∧ ¬b_i ∧ eq above i).
	eqs := make([]int, n)
	for i := 0; i < n; i++ {
		eqs[i] = c.AddGate(fmt.Sprintf("eq%d", i), XnorGate, a[i], b[i])
	}
	var gtTerms []int
	for i := n - 1; i >= 0; i-- { // bit n-1 is the MSB
		nb := c.AddGate(fmt.Sprintf("nb%d", i), NotGate, b[i])
		term := c.AddGate(fmt.Sprintf("gtb%d", i), AndGate, a[i], nb)
		for j := n - 1; j > i; j-- {
			term = c.AddGate(fmt.Sprintf("gtb%d_%d", i, j), AndGate, term, eqs[j])
		}
		gtTerms = append(gtTerms, term)
	}
	eq := eqs[0]
	if n > 1 {
		eq = c.AddGate("eq_all", AndGate, eqs...)
	}
	gt := c.AddGate("gt", OrGate, gtTerms...)
	c.MarkOutput(eq)
	c.MarkOutput(gt)
	return c
}

// ArrayMultiplier builds an n×n-bit array multiplier: inputs a0..a(n-1),
// b0..b(n-1); outputs p0..p(2n-1) with a·b = Σ p_i 2^i. The partial-product
// rows are summed with ripple-carry adder cells — the classic "notoriously
// hard to verify" structure the paper's introduction motivates removing into
// black boxes. (An extension family beyond the paper's seven.)
func ArrayMultiplier(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("b%d", i))
	}
	// pp[i][j] = a_j ∧ b_i contributes to bit i+j.
	// acc holds the current partial sum per output bit.
	zero := -1
	getZero := func() int {
		if zero < 0 {
			na := c.AddGate("mz_n", NotGate, a[0])
			zero = c.AddGate("mz", AndGate, a[0], na)
		}
		return zero
	}
	acc := make([]int, 2*n)
	for i := range acc {
		acc[i] = -1
	}
	for i := 0; i < n; i++ {
		// Row i: add (a ∧ b_i) << i onto acc with a ripple-carry pass.
		carry := -1
		for j := 0; j <= n; j++ {
			bit := i + j
			var pp int
			if j < n {
				pp = c.AddGate(fmt.Sprintf("pp%d_%d", i, j), AndGate, a[j], b[i])
			} else if carry < 0 {
				break
			} else {
				pp = getZero()
			}
			terms := []int{pp}
			if acc[bit] >= 0 {
				terms = append(terms, acc[bit])
			}
			if carry >= 0 {
				terms = append(terms, carry)
			}
			switch len(terms) {
			case 1:
				acc[bit] = terms[0]
				carry = -1
			case 2:
				s := c.AddGate(fmt.Sprintf("s%d_%d", i, bit), XorGate, terms[0], terms[1])
				carry = c.AddGate(fmt.Sprintf("c%d_%d", i, bit), AndGate, terms[0], terms[1])
				acc[bit] = s
			default: // full adder
				x := c.AddGate(fmt.Sprintf("x%d_%d", i, bit), XorGate, terms[0], terms[1])
				s := c.AddGate(fmt.Sprintf("s%d_%d", i, bit), XorGate, x, terms[2])
				g1 := c.AddGate(fmt.Sprintf("g1m%d_%d", i, bit), AndGate, terms[0], terms[1])
				g2 := c.AddGate(fmt.Sprintf("g2m%d_%d", i, bit), AndGate, x, terms[2])
				carry = c.AddGate(fmt.Sprintf("c%d_%d", i, bit), OrGate, g1, g2)
				acc[bit] = s
			}
		}
	}
	for bit := 0; bit < 2*n; bit++ {
		if acc[bit] < 0 {
			acc[bit] = getZero()
		}
		c.MarkOutput(acc[bit])
	}
	return c
}

// MuxTree builds a 2^k-to-1 multiplexer tree: inputs d0..d(2^k-1) and select
// lines s0..s(k-1); one output equal to d[s]. (An extension family beyond
// the paper's seven.)
func MuxTree(k int) *Circuit {
	c := New()
	n := 1 << k
	data := make([]int, n)
	for i := 0; i < n; i++ {
		data[i] = c.AddInput(fmt.Sprintf("d%d", i))
	}
	sel := make([]int, k)
	for i := 0; i < k; i++ {
		sel[i] = c.AddInput(fmt.Sprintf("s%d", i))
	}
	level := data
	for i := 0; i < k; i++ {
		ns := c.AddGate(fmt.Sprintf("ns%d", i), NotGate, sel[i])
		next := make([]int, len(level)/2)
		for j := range next {
			lo := c.AddGate(fmt.Sprintf("lo%d_%d", i, j), AndGate, level[2*j], ns)
			hi := c.AddGate(fmt.Sprintf("hi%d_%d", i, j), AndGate, level[2*j+1], sel[i])
			next[j] = c.AddGate(fmt.Sprintf("m%d_%d", i, j), OrGate, lo, hi)
		}
		level = next
	}
	c.MarkOutput(level[0])
	return c
}

// PriorityController builds a C432-style priority/interrupt controller: n
// channels, each with a request line r_i and an enable line e_i. A channel
// is active when r_i ∧ e_i; the controller grants the highest-priority
// active channel (channel 0 highest) and additionally reports whether any
// channel is active. This mirrors the structure of ISCAS-85 C432 (a
// 27-channel interrupt controller) at configurable size.
func PriorityController(n int) *Circuit {
	c := New()
	req := make([]int, n)
	en := make([]int, n)
	for i := 0; i < n; i++ {
		req[i] = c.AddInput(fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		en[i] = c.AddInput(fmt.Sprintf("e%d", i))
	}
	act := make([]int, n)
	for i := 0; i < n; i++ {
		act[i] = c.AddGate(fmt.Sprintf("act%d", i), AndGate, req[i], en[i])
	}
	// Priority chain over active lines.
	var blocked int = -1
	for i := 0; i < n; i++ {
		var gnt int
		if i == 0 {
			gnt = c.AddGate("gnt0", AndGate, act[0])
		} else {
			nb := c.AddGate(fmt.Sprintf("nblk%d", i), NotGate, blocked)
			gnt = c.AddGate(fmt.Sprintf("gnt%d", i), AndGate, act[i], nb)
		}
		c.MarkOutput(gnt)
		if i == 0 {
			blocked = act[0]
		} else if i+1 < n {
			blocked = c.AddGate(fmt.Sprintf("blkor%d", i), OrGate, blocked, act[i])
		}
	}
	// "Any active" line.
	any := c.AddGate("any", OrGate, act...)
	c.MarkOutput(any)
	return c
}
