package circuit

import "fmt"

// Miter builds the equivalence miter of a specification and an
// implementation: one circuit whose single output "miter" is true exactly
// when every output pair agrees on the given inputs. The two circuits must
// have the same number of primary inputs (paired in declaration order —
// input names may differ) and the same number of outputs; the shared inputs
// of the miter take the implementation's names. The specification must be
// complete (no free signals); free signals of the implementation — its
// black boxes — are copied as free signals of the miter, so the resulting
// BENCH netlist encodes a partial-equivalence-checking problem when fed to
// the problem layer: the miter output is a tautology iff some black-box
// implementation makes the circuits equivalent on every input.
//
// Internal signal names are prefixed ("s_" for specification copies, "i_"
// for implementation copies) so the two halves never collide; a name clash
// after prefixing is an error.
func Miter(spec, impl *Circuit) (*Circuit, error) {
	if len(spec.Inputs) != len(impl.Inputs) {
		return nil, fmt.Errorf("circuit: miter input count mismatch: spec %d, impl %d",
			len(spec.Inputs), len(impl.Inputs))
	}
	if len(spec.Outputs) != len(impl.Outputs) {
		return nil, fmt.Errorf("circuit: miter output count mismatch: spec %d, impl %d",
			len(spec.Outputs), len(impl.Outputs))
	}
	if frees := spec.FreeSignals(); len(frees) > 0 {
		return nil, fmt.Errorf("circuit: specification has %d free signals (must be complete): %s",
			len(frees), spec.Name(frees[0]))
	}

	m := New()
	// Shared inputs, paired by declaration order, named after the
	// implementation's inputs.
	specMap := make([]int, len(spec.Gates))
	implMap := make([]int, len(impl.Gates))
	for i := range specMap {
		specMap[i] = -1
	}
	for i := range implMap {
		implMap[i] = -1
	}
	for i, id := range impl.Inputs {
		shared := m.AddInput(impl.Name(id))
		implMap[id] = shared
		specMap[spec.Inputs[i]] = shared
	}

	copyHalf := func(src *Circuit, srcMap []int, prefix string) error {
		for id, g := range src.Gates {
			if srcMap[id] >= 0 {
				continue // shared input, already placed
			}
			switch g.Type {
			case InputGate:
				return fmt.Errorf("circuit: input %s not paired", g.Name)
			case FreeGate:
				srcMap[id] = m.AddFree(prefix + g.Name)
			default:
				ins := make([]int, len(g.Ins))
				for k, in := range g.Ins {
					if srcMap[in] < 0 {
						return fmt.Errorf("circuit: %s%s uses signal %s before its definition",
							prefix, g.Name, src.Name(in))
					}
					ins[k] = srcMap[in]
				}
				srcMap[id] = m.AddGate(prefix+g.Name, g.Type, ins...)
			}
		}
		return nil
	}
	if err := copyHalf(spec, specMap, "s_"); err != nil {
		return nil, err
	}
	if err := copyHalf(impl, implMap, "i_"); err != nil {
		return nil, err
	}

	// One XNOR per output pair, AND-reduced into the miter output.
	eqs := make([]int, len(spec.Outputs))
	for i := range spec.Outputs {
		eqs[i] = m.AddGate(fmt.Sprintf("eq%d", i), XnorGate,
			specMap[spec.Outputs[i]], implMap[impl.Outputs[i]])
	}
	var out int
	switch len(eqs) {
	case 0:
		out = m.AddGate("miter", Const1)
	case 1:
		out = m.AddGate("miter", BufGate, eqs[0])
	default:
		out = m.AddGate("miter", AndGate, eqs...)
	}
	m.MarkOutput(out)
	return m, nil
}
