package circuit

import (
	"bytes"
	"math/rand"
	"testing"
)

// evalAllInputs evaluates the single-output miter under every input
// assignment (free signals fixed by the free map) and returns the number of
// assignments where it is false.
func countMiterFailures(t *testing.T, m *Circuit, free map[int]bool) int {
	t.Helper()
	if len(m.Outputs) != 1 {
		t.Fatalf("miter has %d outputs, want 1", len(m.Outputs))
	}
	n := len(m.Inputs)
	if n > 16 {
		t.Fatalf("%d inputs is too many to enumerate", n)
	}
	fails := 0
	for bits := 0; bits < 1<<n; bits++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		if !m.Eval(in, free)[0] {
			fails++
		}
	}
	return fails
}

func TestMiterEquivalentAdders(t *testing.T) {
	m, err := Miter(RippleCarryAdder(2), CarryLookaheadAdder(2))
	if err != nil {
		t.Fatalf("Miter: %v", err)
	}
	if fails := countMiterFailures(t, m, nil); fails != 0 {
		t.Fatalf("equivalent adders disagree on %d assignments", fails)
	}
}

func TestMiterDetectsFault(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	impl, faultID := CarryLookaheadAdder(2).RandomFault(rng)
	m, err := Miter(RippleCarryAdder(2), impl)
	if err != nil {
		t.Fatalf("Miter: %v", err)
	}
	if fails := countMiterFailures(t, m, nil); fails == 0 {
		t.Fatalf("fault at %q not observable on any input", impl.Name(faultID))
	}
}

// TestMiterFreeSignals: the implementation has a black box; the right box
// function makes the circuits equivalent, a constant does not.
func TestMiterFreeSignals(t *testing.T) {
	spec, err := ParseBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = XOR(a, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	impl, err := ParseBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = XOR(f, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Miter(spec, impl)
	if err != nil {
		t.Fatalf("Miter: %v", err)
	}
	fid := m.Signal("i_f")
	if fid < 0 || m.Gates[fid].Type != FreeGate {
		t.Fatalf("free signal not copied into the miter: id %d", fid)
	}
	aPos := -1
	for i, id := range m.Inputs {
		if m.Name(id) == "a" {
			aPos = i
		}
	}
	if aPos < 0 {
		t.Fatal("shared input a missing")
	}
	// f := a makes the halves identical.
	n := len(m.Inputs)
	for bits := 0; bits < 1<<n; bits++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = bits&(1<<i) != 0
		}
		if !m.Eval(in, map[int]bool{fid: in[aPos]})[0] {
			t.Fatalf("miter false under f=a, inputs %v", in)
		}
	}
	// f := false fails whenever a is true.
	if fails := countMiterFailures(t, m, map[int]bool{fid: false}); fails == 0 {
		t.Fatal("constant box claimed equivalent")
	}
}

func TestMiterBenchRoundTrip(t *testing.T) {
	impl, err := ParseBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = XOR(f, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseBenchString("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = XOR(a, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Miter(spec, impl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteBench(&buf); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	m2, err := ParseBench(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(m2.Inputs) != len(m.Inputs) || len(m2.Outputs) != len(m.Outputs) ||
		len(m2.FreeSignals()) != len(m.FreeSignals()) {
		t.Fatalf("round trip changed shape: %d/%d/%d inputs/outputs/frees, want %d/%d/%d",
			len(m2.Inputs), len(m2.Outputs), len(m2.FreeSignals()),
			len(m.Inputs), len(m.Outputs), len(m.FreeSignals()))
	}
}

func TestMiterErrors(t *testing.T) {
	if _, err := Miter(RippleCarryAdder(1), RippleCarryAdder(2)); err == nil {
		t.Error("input count mismatch accepted")
	}
	moreOuts := RippleCarryAdder(1).Clone()
	moreOuts.MarkOutput(moreOuts.Inputs[0])
	if _, err := Miter(moreOuts, RippleCarryAdder(1)); err == nil {
		t.Error("output count mismatch accepted")
	}
	withFree, err := ParseBenchString("INPUT(a)\nOUTPUT(o)\no = AND(a, f)\n")
	if err != nil {
		t.Fatal(err)
	}
	complete, err := ParseBenchString("INPUT(a)\nOUTPUT(o)\no = BUFF(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Miter(withFree, complete); err == nil {
		t.Error("incomplete specification accepted")
	}
}
