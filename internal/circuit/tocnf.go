package circuit

import (
	"fmt"

	"repro/internal/cnf"
)

// CNFEncoding is the result of Tseitin-encoding a circuit: clauses defining
// every internal gate plus the variable assignment for each signal.
type CNFEncoding struct {
	// SigLit maps signal ids to the CNF literal representing them.
	SigLit []cnf.Lit
	// GateVars lists the variables allocated for internal gates (the Tseitin
	// auxiliaries), in definition order.
	GateVars []cnf.Var
}

// ToCNF Tseitin-encodes the circuit into formula f. Primary inputs and free
// signals are mapped through sigVar (which must return distinct, already
// allocated variables); every other gate gets a fresh variable from f with
// defining clauses appended. Buffers and constants reuse literals instead of
// allocating variables.
func (c *Circuit) ToCNF(f *cnf.Formula, sigVar func(id int) cnf.Var) CNFEncoding {
	enc := CNFEncoding{SigLit: make([]cnf.Lit, len(c.Gates))}
	// A constant-true variable, allocated lazily.
	var constTrue cnf.Lit
	getTrue := func() cnf.Lit {
		if constTrue == 0 {
			v := f.NewVar()
			constTrue = cnf.PosLit(v)
			f.AddClause(constTrue)
			enc.GateVars = append(enc.GateVars, v)
		}
		return constTrue
	}
	for id, gate := range c.Gates {
		switch gate.Type {
		case InputGate, FreeGate:
			enc.SigLit[id] = cnf.PosLit(sigVar(id))
		case Const0:
			enc.SigLit[id] = getTrue().Not()
		case Const1:
			enc.SigLit[id] = getTrue()
		case BufGate:
			enc.SigLit[id] = enc.SigLit[gate.Ins[0]]
		case NotGate:
			enc.SigLit[id] = enc.SigLit[gate.Ins[0]].Not()
		case AndGate, NandGate, OrGate, NorGate:
			v := f.NewVar()
			enc.GateVars = append(enc.GateVars, v)
			g := cnf.PosLit(v)
			// Normalize to AND form: OR(a,b) = ¬AND(¬a,¬b).
			inv := gate.Type == OrGate || gate.Type == NorGate
			outNeg := gate.Type == NandGate || gate.Type == OrGate
			long := make([]cnf.Lit, 0, len(gate.Ins)+1)
			long = append(long, g)
			for _, in := range gate.Ins {
				il := enc.SigLit[in].XorSign(inv)
				f.AddClause(g.Not(), il)
				long = append(long, il.Not())
			}
			f.AddClause(long...)
			enc.SigLit[id] = g.XorSign(outNeg)
		case XorGate, XnorGate:
			v := f.NewVar()
			enc.GateVars = append(enc.GateVars, v)
			g := cnf.PosLit(v)
			a := enc.SigLit[gate.Ins[0]]
			b := enc.SigLit[gate.Ins[1]]
			// g ↔ a⊕b
			f.AddClause(g.Not(), a, b)
			f.AddClause(g.Not(), a.Not(), b.Not())
			f.AddClause(g, a, b.Not())
			f.AddClause(g, a.Not(), b)
			enc.SigLit[id] = g.XorSign(gate.Type == XnorGate)
		default:
			panic(fmt.Sprintf("circuit: cannot encode %v", gate.Type))
		}
	}
	return enc
}
