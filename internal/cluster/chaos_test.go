package cluster

// Cluster chaos drills: a worker dying mid-batch, injected forward faults on
// the cluster.forward seam, dispatch faults inside a worker, and the UNSAT
// cube short circuit cancelling in-flight siblings. Fault plans are
// process-global, so these tests must not run in parallel with each other.

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dqbf"
	"repro/internal/faults"
	"repro/internal/problem"
	"repro/internal/service"
)

// TestClusterWorkerKillMidBatch kills one worker's listener halfway through
// a batch and requires every remaining instance to fail over to a ring
// successor with the verdict unchanged — no job lost, none stuck.
func TestClusterWorkerKillMidBatch(t *testing.T) {
	ws := startWorkers(t, 3, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)

	rng := rand.New(rand.NewSource(17))
	formulas := make([]*dqbf.Formula, 12)
	want := make([]service.Verdict, len(formulas))
	for i := range formulas {
		formulas[i] = dqbf.RandomFormula(rng, 2, 3, 5)
		want[i] = serialVerdict(t, formulas[i])
	}
	// The victim is the home node of a post-kill instance, so at least one
	// forward is guaranteed to land on the dead worker and fail over.
	victim := c.ring.order(problem.FromDQBF(formulas[8]).CanonicalHash())[0]

	for i, f := range formulas {
		if i == 6 {
			ws[victim].srv.Close()
		}
		res := clusterSolve(t, c, f, service.EngineIDQ, false)
		if got := res.Info.Outcome.Verdict; got != want[i] {
			t.Fatalf("instance %d: cluster says %s, serial says %s (victim %d)", i, got, want[i], victim)
		}
	}
	if got := c.CoordStats().Failovers; got == 0 {
		t.Fatal("no failover recorded after killing a worker")
	}
	// The survivors must be fully settled: everything submitted completed.
	for i, w := range ws {
		if i == victim {
			continue
		}
		st := w.sched.Stats()
		if st.Submitted != st.Completed {
			t.Fatalf("worker %d: %d submitted but %d completed", i, st.Submitted, st.Completed)
		}
		if st.Queued != 0 || st.Running != 0 {
			t.Fatalf("worker %d left work behind: %d queued, %d running", i, st.Queued, st.Running)
		}
	}
}

// TestClusterForwardFaultDrill arms the cluster.forward injection point so
// every third forward dies before the request leaves the coordinator, and
// requires the ring walk to absorb every fault without changing a verdict.
func TestClusterForwardFaultDrill(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)

	plan := faults.NewPlan(1, faults.Rule{
		Point:  faults.ClusterForward,
		Action: faults.ActError,
		EveryN: 3,
	})
	faults.Activate(plan)
	defer faults.Deactivate()

	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 9; i++ {
		f := dqbf.RandomFormula(rng, 2, 3, 4)
		want := serialVerdict(t, f)
		res := clusterSolve(t, c, f, service.EngineIDQ, false)
		if got := res.Info.Outcome.Verdict; got != want {
			t.Fatalf("instance %d: cluster says %s, serial says %s", i, got, want)
		}
	}
	if fires := plan.Fires(faults.ClusterForward); fires < 2 {
		t.Fatalf("fault plan fired %d times, want >= 2", fires)
	}
	if got := c.CoordStats().Failovers; got < 2 {
		t.Fatalf("%d failovers recorded, want >= 2", got)
	}
}

// TestClusterRetryDoesNotDoubleCount is the cluster-level regression for the
// retried-submit accounting fix: resubmitting the same logical request — the
// coordinator's idempotency key is constant across ring retries — must reuse
// the worker's job instead of double-running and double-counting it.
func TestClusterRetryDoesNotDoubleCount(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)

	f := paperExample1Wide()
	for i := 0; i < 2; i++ {
		res := clusterSolve(t, c, f, service.EngineIDQ, false)
		if got := res.Info.Outcome.Verdict; got != service.VerdictSat {
			t.Fatalf("solve %d: verdict %s, want SAT", i, got)
		}
	}
	st := c.Stats(context.Background())
	if st.Totals.Submitted != 1 {
		t.Fatalf("ring counted %d submissions for one logical job", st.Totals.Submitted)
	}
	if st.Totals.Completed != 1 {
		t.Fatalf("ring counted %d completions for one logical job", st.Totals.Completed)
	}
	if st.Totals.IdemHits != 1 {
		t.Fatalf("ring counted %d idempotency hits, want 1", st.Totals.IdemHits)
	}
}

// TestClusterAsyncJobLifecycle drives the /jobs forwarding surface: submit
// is idempotent across resends, the cluster job ID routes back to the owning
// worker, and the certificate attachment survives the proxy hop.
func TestClusterAsyncJobLifecycle(t *testing.T) {
	ws := startWorkers(t, 3, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)
	ctx := context.Background()

	p := problem.FromDQBF(paperExample1Wide())
	info, err := c.SubmitJob(ctx, p, service.EngineIDQ, service.Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	again, err := c.SubmitJob(ctx, p, service.EngineIDQ, service.Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if info.ID != again.ID {
		t.Fatalf("resubmit created a second job: %s then %s", info.ID, again.ID)
	}

	deadline := time.Now().Add(10 * time.Second)
	var done service.JobInfo
	var certBlob string
	for {
		var status int
		done, certBlob, status, err = c.GetJob(ctx, info.ID, true)
		if err != nil {
			t.Fatalf("GetJob: %v (status %d)", err, status)
		}
		if done.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", info.ID, done)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if done.ID != info.ID {
		t.Fatalf("snapshot ID %s, want %s", done.ID, info.ID)
	}
	if done.Outcome == nil || done.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("job outcome %+v, want SAT", done.Outcome)
	}
	if certBlob == "" {
		t.Fatal("certificate attachment lost across the proxy hop")
	}

	raw, status, err := c.GetTrace(ctx, info.ID)
	if err != nil || status != 200 {
		t.Fatalf("GetTrace: status %d err %v", status, err)
	}
	if len(raw) == 0 {
		t.Fatal("empty trace payload")
	}

	if _, _, err := c.SplitJobID("no-prefix"); err == nil {
		t.Fatal("malformed job ID accepted")
	}
	if _, _, status, err := c.GetJob(ctx, "w0:nonexistent", false); err == nil || status != 404 {
		t.Fatalf("missing job: status %d err %v", status, err)
	}
}

// TestClusterDispatchFaultContained arms a one-shot sched.dispatch fault
// inside a worker: the job must come back as a clean ERROR verdict through
// the cluster path — contained, not lost, not hanging the coordinator.
func TestClusterDispatchFaultContained(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)

	plan := faults.NewPlan(1, faults.Rule{
		Point:  faults.SchedDispatch,
		Action: faults.ActError,
		Times:  1,
	})
	faults.Activate(plan)
	defer faults.Deactivate()

	res := clusterSolve(t, c, paperExample1Wide(), service.EngineIDQ, false)
	if got := res.Info.Outcome.Verdict; got != service.VerdictError {
		t.Fatalf("verdict %s, want ERROR from the injected dispatch fault", got)
	}
	if plan.Fires(faults.SchedDispatch) != 1 {
		t.Fatalf("dispatch fault fired %d times, want 1", plan.Fires(faults.SchedDispatch))
	}
	// Resubmitting the SAME instance reuses the errored job — the
	// idempotency key pins the logical submission, failure included.
	res = clusterSolve(t, c, paperExample1Wide(), service.EngineIDQ, false)
	if got := res.Info.Outcome.Verdict; got != service.VerdictError {
		t.Fatalf("idempotent resubmit returned %s, want the original ERROR", got)
	}
	// But the worker pool itself survived: a fresh instance solves fine.
	g := dqbf.New()
	g.AddUniversal(1)
	g.AddExistential(2, 1)
	g.Matrix.AddDimacsClause(-2, 1)
	g.Matrix.AddDimacsClause(2, -1)
	res = clusterSolve(t, c, g, service.EngineIDQ, false)
	if got := res.Info.Outcome.Verdict; got != service.VerdictSat {
		t.Fatalf("verdict after recovery %s, want SAT", got)
	}
}

// TestClusterUnsatCubeCancelsSiblings pins the short-circuit contract: the
// first UNSAT cube must cancel the in-flight sibling forwards, observable in
// the coordinator's counters AND in the worker's budget-cancellation
// counter. A single-threaded worker plus an injected latency on EVERY
// dispatch makes the race deterministic: cube A sleeps in dispatch long
// enough for cube B's submit to land in the queue, then A solves UNSAT while
// B is still queued, so B can only finish cancelled.
func TestClusterUnsatCubeCancelsSiblings(t *testing.T) {
	cfg := defaultWorkerConfig()
	cfg.Workers = 1
	ws := startWorkers(t, 1, cfg)
	c := newCoordinator(t, ws, func(cfg *Config) { cfg.CubeVars = 1 })

	plan := faults.NewPlan(1, faults.Rule{
		Point:   faults.SchedDispatch,
		Action:  faults.ActLatency,
		Latency: 250 * time.Millisecond,
	})
	faults.Activate(plan)
	defer faults.Deactivate()

	// ∀x ∃y(x). y ∧ ¬y — UNSAT in both cofactors, instantly.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(2)
	f.Matrix.AddDimacsClause(-2)

	res := clusterSolve(t, c, f, service.EngineIDQ, false)
	if got := res.Info.Outcome.Verdict; got != service.VerdictUnsat {
		t.Fatalf("verdict %s, want UNSAT", got)
	}
	if res.Cubes != 2 {
		t.Fatalf("fan of %d cubes, want 2", res.Cubes)
	}
	cs := c.CoordStats()
	if cs.CubeUnsatShortCircuits != 1 {
		t.Fatalf("%d short circuits recorded, want 1", cs.CubeUnsatShortCircuits)
	}
	if cs.CubeSiblingsCancelled < 1 {
		t.Fatal("no sibling recorded as cancelled")
	}
	// The worker must see the cancellation as a budget cancel, not a loss:
	// both cubes were submitted, and the sibling finishes with the cancelled
	// accounting.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ws[0].sched.Stats()
		if st.Cancelled >= 1 && st.Submitted == 2 && st.Submitted == st.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sibling never settled as cancelled: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSplitAfterEscalation pins the budget-based escalation: the
// budgeted single-worker attempt comes back non-definitive (a one-shot
// dispatch fault turns it into ERROR), so the coordinator escalates to the
// cube fan and still lands the exact verdict with a checked certificate.
func TestClusterSplitAfterEscalation(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	c := newCoordinator(t, ws, func(cfg *Config) {
		cfg.CubeVars = 1
		cfg.SplitAfter = 10 * time.Second
	})

	plan := faults.NewPlan(1, faults.Rule{
		Point:  faults.SchedDispatch,
		Action: faults.ActError,
		Times:  1,
	})
	faults.Activate(plan)
	defer faults.Deactivate()

	f := paperExample1Wide()
	res := clusterSolve(t, c, f, service.EngineIDQ, true)
	if got := res.Info.Outcome.Verdict; got != service.VerdictSat {
		t.Fatalf("verdict %s, want SAT", got)
	}
	cs := c.CoordStats()
	if cs.Escalations != 1 {
		t.Fatalf("%d escalations recorded, want 1", cs.Escalations)
	}
	if cs.CubeSplits != 1 {
		t.Fatalf("%d cube fans recorded, want 1", cs.CubeSplits)
	}
	if res.Cert == nil {
		t.Fatal("escalated fan returned no certificate")
	}
}
