// Package cluster implements the hqsc coordinator: it consistent-hashes
// canonical formula hashes across a set of hqsd worker base URLs, forwards
// /solve and /jobs over the existing HTTP JSON wire format (workers are
// unmodified hqsd processes), merges /stats across the ring, and on worker
// failure retries the request on the next ring node after probing /readyz,
// with the service retry policy's backoff knobs.
//
// Hard instances escalate from forwarding to cube-and-conquer: the formula
// is split on CubeVars shared universal prefix variables (see internal/cube
// for the Thm-1 soundness argument) into 2^k cofactor subproblems fanned
// across the ring. The first UNSAT cube short-circuits the fan — sibling
// forwards are cancelled through their contexts, which hqsd turns into job
// cancellations — and an all-SAT fan stitches the per-cube Skolem
// certificates into one certificate that is re-checked against the original
// formula before the merged SAT verdict is reported. With SplitAfter > 0
// the coordinator first forwards the whole formula to its home node under
// that budget and only escalates to the cube fan when the budgeted attempt
// comes back Unknown.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/cube"
	"repro/internal/dqbf"
	"repro/internal/faults"
	"repro/internal/problem"
	"repro/internal/service"
	"repro/internal/trace"
)

// Config sizes the coordinator.
type Config struct {
	// Workers are the hqsd base URLs forming the ring (required).
	Workers []string
	// VNodes is the number of virtual ring nodes per worker (default 32).
	VNodes int
	// CubeVars is the number of shared universal prefix variables to cube
	// when splitting (0 disables cube-and-conquer).
	CubeVars int
	// SplitAfter escalates: >0 first forwards the whole formula to one
	// worker under this timeout and only splits when that attempt returns
	// Unknown. 0 with CubeVars>0 splits immediately.
	SplitAfter time.Duration
	// Retry tunes the failover backoff (zero values take the service
	// defaults: 2 attempts, 5ms base, 250ms ceiling).
	Retry service.RetryPolicy
	// ProbeTimeout bounds a /readyz probe (default 500ms).
	ProbeTimeout time.Duration
	// Client is the HTTP client for forwards (default http.DefaultClient;
	// per-request contexts bound the calls, so no global timeout is set).
	Client *http.Client
	// Trace receives the cube.split/cube.merge pipeline events (nil drops
	// them).
	Trace trace.Sink
}

// CoordStats are the coordinator's own counters, reported under /stats next
// to the per-worker scheduler counters.
type CoordStats struct {
	// Forwards counts HTTP forwards attempted (all endpoints).
	Forwards int64 `json:"forwards"`
	// Failovers counts forwards abandoned on one worker and retried on the
	// next ring node.
	Failovers int64 `json:"failovers"`
	// Escalations counts budgeted single-worker attempts that came back
	// Unknown and escalated to a cube fan.
	Escalations int64 `json:"escalations"`
	// CubeSplits counts formulas split into cube fans.
	CubeSplits int64 `json:"cube_splits"`
	// CubeUnsatShortCircuits counts fans ended early by an UNSAT cube.
	CubeUnsatShortCircuits int64 `json:"cube_unsat_short_circuits"`
	// CubeSiblingsCancelled counts in-flight sibling forwards cancelled by
	// an UNSAT short circuit.
	CubeSiblingsCancelled int64 `json:"cube_siblings_cancelled"`
}

// WorkerStats is one ring member's view in the merged /stats.
type WorkerStats struct {
	URL   string         `json:"url"`
	Ready bool           `json:"ready"`
	Error string         `json:"error,omitempty"`
	Stats *service.Stats `json:"stats,omitempty"`
}

// Stats is the merged cluster view: per-worker scheduler counters, their
// numeric sum, and the coordinator's own counters.
type Stats struct {
	Workers     []WorkerStats `json:"workers"`
	Totals      service.Stats `json:"totals"`
	Coordinator CoordStats    `json:"coordinator"`
}

// Result is a finished cluster solve.
type Result struct {
	// Info is the job snapshot: the worker's for forwarded solves, a
	// synthesized one (engine "cluster") for cube fans.
	Info service.JobInfo
	// Cert is the decoded Skolem certificate when one was requested and the
	// verdict is SAT — the worker's for forwards, the checked merge for
	// fans.
	Cert *cert.Certificate
	// CubeVars and Cubes describe the split fan (0 for plain forwards).
	CubeVars int
	Cubes    int
}

// Coordinator shards and splits work across hqsd workers.
type Coordinator struct {
	cfg    Config
	ring   *ring
	client *http.Client

	forwards               atomic.Int64
	failovers              atomic.Int64
	escalations            atomic.Int64
	cubeSplits             atomic.Int64
	cubeUnsatShortCircuits atomic.Int64
	cubeSiblingsCancelled  atomic.Int64
}

// New validates the worker set and builds the ring.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	for _, w := range cfg.Workers {
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return nil, fmt.Errorf("cluster: worker %q is not an http(s) base URL", w)
		}
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	return &Coordinator{
		cfg:    cfg,
		ring:   newRing(cfg.Workers, cfg.VNodes),
		client: cfg.Client,
	}, nil
}

// CoordStats snapshots the coordinator counters.
func (c *Coordinator) CoordStats() CoordStats {
	return CoordStats{
		Forwards:               c.forwards.Load(),
		Failovers:              c.failovers.Load(),
		Escalations:            c.escalations.Load(),
		CubeSplits:             c.cubeSplits.Load(),
		CubeUnsatShortCircuits: c.cubeUnsatShortCircuits.Load(),
		CubeSiblingsCancelled:  c.cubeSiblingsCancelled.Load(),
	}
}

// ready probes one worker's /readyz under the probe timeout.
func (c *Coordinator) ready(ctx context.Context, worker int) bool {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.Workers[worker]+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// errPermanent wraps worker rejections that must not fail over (the request
// itself is bad; the next worker would reject it identically).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// forwardOnce POSTs body to one worker and decodes a job snapshot reply.
// Retryable failures (network errors, injected cluster.forward faults, 429,
// 5xx) return a plain error; client-side rejections return errPermanent.
func (c *Coordinator) forwardOnce(ctx context.Context, worker int, path string, body []byte, idemKey string) (*solveReply, error) {
	if err := faults.Fire(faults.ClusterForward); err != nil {
		return nil, fmt.Errorf("cluster: forward to %s: %w", c.cfg.Workers[worker], err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.Workers[worker]+path, bytes.NewReader(body))
	if err != nil {
		return nil, errPermanent{err}
	}
	req.Header.Set("Content-Type", "application/x-dqdimacs")
	if idemKey != "" {
		req.Header.Set("X-Idempotency-Key", idemKey)
	}
	c.forwards.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		var reply solveReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			return nil, fmt.Errorf("cluster: bad reply from %s: %w", c.cfg.Workers[worker], err)
		}
		reply.worker = worker
		return &reply, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("cluster: %s answered %d: %s", c.cfg.Workers[worker], resp.StatusCode, bytes.TrimSpace(raw))
	default:
		raw, _ := io.ReadAll(resp.Body)
		return nil, errPermanent{fmt.Errorf("cluster: %s rejected the request (%d): %s", c.cfg.Workers[worker], resp.StatusCode, bytes.TrimSpace(raw))}
	}
}

// solveReply is a worker's job snapshot, with the optional certificate
// attachment of the httpapi ?cert=1 extension.
type solveReply struct {
	service.JobInfo
	CertSkolem string `json:"cert_skolem,omitempty"`
	worker     int
}

// forward walks the key's ring order — home node first, successors on
// failure — probing /readyz before each try, with the retry policy's
// jittered exponential backoff between full rounds. Permanent rejections
// stop the walk immediately.
func (c *Coordinator) forward(ctx context.Context, key, path string, body []byte, idemKey string) (*solveReply, error) {
	order := c.ring.order(key)
	retry := c.cfg.Retry
	var lastErr error
	attempts := maxAttempts(retry)
	for round := 0; round < attempts; round++ {
		if round > 0 {
			select {
			case <-time.After(Backoff(retry, round-1)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		for i, w := range order {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if i > 0 || round > 0 {
				c.failovers.Add(1)
			}
			if !c.ready(ctx, w) {
				lastErr = fmt.Errorf("cluster: %s not ready", c.cfg.Workers[w])
				continue
			}
			reply, err := c.forwardOnce(ctx, w, path, body, idemKey)
			if err == nil {
				return reply, nil
			}
			var perm errPermanent
			if errors.As(err, &perm) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no worker accepted the request")
	}
	return nil, lastErr
}

func maxAttempts(p service.RetryPolicy) int {
	if p.MaxAttempts <= 0 {
		return 2
	}
	return p.MaxAttempts
}

// Backoff is the coordinator's copy of the service retry schedule, built
// from the exported policy fields: BaseDelay doubling per round, capped at
// MaxDelay (service defaults for zero values, without the jitter — ring
// walks are already decorrelated by key).
func Backoff(p service.RetryPolicy, round int) time.Duration {
	base, ceil := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 250 * time.Millisecond
	}
	d := base << uint(round)
	if d <= 0 || d > ceil {
		d = ceil
	}
	return d
}

// solvePath builds the /solve query for the forwarded limits.
func solvePath(eng service.Engine, lim service.Limits, wantCert bool) string {
	q := "/solve?engine=" + string(eng)
	if lim.Timeout > 0 {
		q += "&timeout=" + lim.Timeout.String()
	}
	if lim.Conflicts > 0 {
		q += "&conflicts=" + strconv.FormatInt(lim.Conflicts, 10)
	}
	if lim.Decisions > 0 {
		q += "&decisions=" + strconv.FormatInt(lim.Decisions, 10)
	}
	if lim.Nodes > 0 {
		q += "&nodes=" + strconv.Itoa(lim.Nodes)
	}
	if wantCert {
		q += "&cert=1"
	}
	return q
}

// marshalFormula serializes a formula for the wire. Every supported input
// format normalizes to the same canonical hash, so re-serializing as
// DQDIMACS keeps worker cache keys aligned with the coordinator's ring keys.
func marshalFormula(f *dqbf.Formula) ([]byte, error) {
	var buf bytes.Buffer
	if err := f.WriteDQDIMACS(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Solve decides p through the cluster: plain forwarding, immediate cube
// fan, or budget-based escalation, per the configuration. wantCert attaches
// (and for fans, merges and re-checks) the Skolem certificate on SAT.
func (c *Coordinator) Solve(ctx context.Context, p *problem.Problem, eng service.Engine, lim service.Limits, wantCert bool) (*Result, error) {
	if eng == "" {
		eng = service.EnginePortfolio
	}
	f := p.Formula
	key := p.CanonicalHash()
	body, err := marshalFormula(f)
	if err != nil {
		return nil, fmt.Errorf("cluster: serializing formula: %w", err)
	}

	plan := (*cube.Plan)(nil)
	if c.cfg.CubeVars > 0 {
		plan = cube.Split(f, c.cfg.CubeVars, c.cfg.Trace)
	}

	// Budget-based escalation: a cheap single-worker attempt first; only an
	// Unknown (budget ran out) escalates to the fan.
	if !plan.Empty() && c.cfg.SplitAfter > 0 {
		probeLim := lim
		probeLim.Timeout = c.cfg.SplitAfter
		reply, err := c.forward(ctx, key, solvePath(eng, probeLim, wantCert), body, key+":probe")
		if err == nil && reply.Outcome != nil && (reply.Outcome.Verdict == service.VerdictSat || reply.Outcome.Verdict == service.VerdictUnsat) {
			return c.replyResult(reply, wantCert)
		}
		if err != nil {
			var perm errPermanent
			if errors.As(err, &perm) {
				return nil, err
			}
			// Unreachable ring: surface it rather than fanning into the void.
			return nil, err
		}
		c.escalations.Add(1)
	} else if plan.Empty() {
		reply, err := c.forward(ctx, key, solvePath(eng, lim, wantCert), body, key+":solve")
		if err != nil {
			return nil, err
		}
		return c.replyResult(reply, wantCert)
	}

	return c.solveCubes(ctx, f, key, plan, eng, lim, wantCert)
}

// replyResult lifts a forwarded snapshot into a Result, decoding the
// certificate attachment when present.
func (c *Coordinator) replyResult(reply *solveReply, wantCert bool) (*Result, error) {
	res := &Result{Info: reply.JobInfo}
	if wantCert && reply.CertSkolem != "" {
		dc, err := cert.Decode([]byte(reply.CertSkolem))
		if err != nil {
			return nil, fmt.Errorf("cluster: decoding certificate from %s: %w", c.cfg.Workers[reply.worker], err)
		}
		res.Cert = dc
	}
	return res, nil
}

// solveCubes fans the plan across the ring: one forwarded /solve per cube,
// sharded by the cube subformula's canonical hash, first UNSAT cancelling
// the siblings, all-SAT merging and re-checking the certificates.
func (c *Coordinator) solveCubes(ctx context.Context, f *dqbf.Formula, key string, plan *cube.Plan, eng service.Engine, lim service.Limits, wantCert bool) (*Result, error) {
	c.cubeSplits.Add(1)
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type cubeOutcome struct {
		idx   int
		reply *solveReply
		err   error
	}
	results := make([]cubeOutcome, len(plan.Cubes))
	var wg sync.WaitGroup
	var unsatOnce sync.Once
	for i, cb := range plan.Cubes {
		wg.Add(1)
		go func(i int, cb cube.Cube) {
			defer wg.Done()
			body, err := marshalFormula(cb.Formula)
			if err != nil {
				results[i] = cubeOutcome{idx: i, err: err}
				return
			}
			ck := problem.CanonicalFormulaHash(cb.Formula)
			reply, err := c.forward(fanCtx, ck, solvePath(eng, lim, true), body,
				key+":cube"+strconv.Itoa(i))
			results[i] = cubeOutcome{idx: i, reply: reply, err: err}
			if err == nil && reply.Outcome != nil && reply.Outcome.Verdict == service.VerdictUnsat {
				unsatOnce.Do(func() {
					c.cubeUnsatShortCircuits.Add(1)
					cancel() // disconnect sibling /solve calls; hqsd cancels their jobs
				})
			}
		}(i, cb)
	}
	wg.Wait()

	info := service.JobInfo{
		State:  service.StateDone,
		Engine: "cluster",
		Format: "dqdimacs",
		Kind:   "dqbf",
	}
	res := &Result{Info: info, CubeVars: len(plan.Vars), Cubes: len(plan.Cubes)}
	reason := fmt.Sprintf("cube(k=%d)", len(plan.Vars))

	// First UNSAT wins exactly (any cube refuted refutes the formula).
	for _, r := range results {
		if r.err == nil && r.reply.Outcome != nil && r.reply.Outcome.Verdict == service.VerdictUnsat {
			for _, s := range results {
				if s.idx != r.idx && (s.err != nil || s.reply.Outcome == nil || s.reply.Outcome.Verdict != service.VerdictUnsat) {
					c.cubeSiblingsCancelled.Add(1)
				}
			}
			res.Info.Outcome = &service.Outcome{
				Verdict: service.VerdictUnsat,
				Engine:  r.reply.Outcome.Engine,
				Reason:  reason + " cube " + strconv.Itoa(r.idx) + " unsat",
			}
			return res, nil
		}
	}

	// No UNSAT: every cube must have answered SAT for a SAT verdict; any
	// failure or Unknown degrades the whole fan to Unknown/Error.
	certs := make([]*cert.Certificate, len(plan.Cubes))
	for _, r := range results {
		if r.err != nil {
			var perm errPermanent
			if errors.As(r.err, &perm) {
				return nil, r.err
			}
			res.Info.Outcome = &service.Outcome{
				Verdict: service.VerdictError,
				Reason:  reason + " cube " + strconv.Itoa(r.idx) + " failed",
				Error:   r.err.Error(),
			}
			return res, nil
		}
		out := r.reply.Outcome
		if out == nil || out.Verdict != service.VerdictSat {
			o := service.Outcome{Verdict: service.VerdictUnknown, Reason: reason + " cube " + strconv.Itoa(r.idx) + " unknown"}
			if out != nil {
				o.Verdict = out.Verdict
				o.Reason = reason + " cube " + strconv.Itoa(r.idx) + " " + out.Reason
				o.Error = out.Error
			}
			res.Info.Outcome = &o
			return res, nil
		}
		if wantCert {
			if r.reply.CertSkolem == "" {
				res.Info.Outcome = &service.Outcome{
					Verdict: service.VerdictError,
					Reason:  reason + " certificate missing",
					Error:   fmt.Sprintf("cluster: cube %d answered SAT without a certificate", r.idx),
				}
				return res, nil
			}
			dc, err := cert.Decode([]byte(r.reply.CertSkolem))
			if err != nil {
				res.Info.Outcome = &service.Outcome{
					Verdict: service.VerdictError,
					Reason:  reason + " certificate undecodable",
					Error:   err.Error(),
				}
				return res, nil
			}
			certs[r.idx] = dc
		}
	}

	res.Info.Outcome = &service.Outcome{
		Verdict: service.VerdictSat,
		Engine:  "cluster",
		Reason:  reason + " all cubes sat",
	}
	if wantCert {
		merged, err := cube.MergeCerts(f, plan, certs, c.cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("cluster: merging cube certificates: %w", err)
		}
		// The checker is the coordinator's independent oracle: a merged SAT
		// verdict is only reported with a certificate it accepts.
		if err := cert.Check(f, merged); err != nil {
			res.Info.Outcome = &service.Outcome{
				Verdict: service.VerdictError,
				Reason:  reason + " merged certificate rejected",
				Error:   err.Error(),
			}
			return res, nil
		}
		res.Cert = merged
		res.Info.Outcome.Cert = merged
	}
	return res, nil
}

// Stats merges /stats across the ring: every worker's scheduler counters
// (with reachability), their numeric sum, and the coordinator's counters.
func (c *Coordinator) Stats(ctx context.Context) Stats {
	st := Stats{Coordinator: c.CoordStats()}
	for i, w := range c.cfg.Workers {
		ws := WorkerStats{URL: w}
		func() {
			ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/stats", nil)
			if err != nil {
				ws.Error = err.Error()
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				ws.Error = err.Error()
				return
			}
			defer resp.Body.Close()
			var s service.Stats
			if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
				ws.Error = err.Error()
				return
			}
			ws.Stats = &s
		}()
		ws.Ready = c.ready(ctx, i)
		if ws.Stats != nil {
			addStats(&st.Totals, ws.Stats)
		}
		st.Workers = append(st.Workers, ws)
	}
	return st
}

// addStats accumulates the numeric scheduler counters of one worker.
func addStats(dst *service.Stats, s *service.Stats) {
	dst.Submitted += s.Submitted
	dst.Completed += s.Completed
	dst.Solved += s.Solved
	dst.Unknown += s.Unknown
	dst.Cancelled += s.Cancelled
	dst.Errors += s.Errors
	dst.Retries += s.Retries
	dst.Fallbacks += s.Fallbacks
	dst.Panics += s.Panics
	dst.CacheHits += s.CacheHits
	dst.StoreHits += s.StoreHits
	dst.IdemHits += s.IdemHits
	dst.Rejected += s.Rejected
	dst.HistoryEvicted += s.HistoryEvicted
	dst.HistoryLen += s.HistoryLen
	dst.Queued += s.Queued
	dst.Running += s.Running
	dst.CacheLen += s.CacheLen
	dst.Workers += s.Workers
}

// Ready reports whether at least one ring node accepts work.
func (c *Coordinator) Ready(ctx context.Context) bool {
	for i := range c.cfg.Workers {
		if c.ready(ctx, i) {
			return true
		}
	}
	return false
}
