package cluster

// The cluster-level differential harness: real hqsd workers (httptest
// servers over real Schedulers behind the real HTTP layer) under a real
// Coordinator, with the serial core solver as the oracle. Every cluster
// verdict must equal the serial verdict, and every SAT answered with a
// certificate must carry one the independent checker accepts against the
// ORIGINAL formula — including certificates stitched together from cube
// fans that crossed worker boundaries.

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/httpapi"
	"repro/internal/leakcheck"
	"repro/internal/problem"
	"repro/internal/service"
	"repro/internal/trace"
)

// testWorker is one in-process hqsd.
type testWorker struct {
	sched *service.Scheduler
	srv   *httptest.Server
}

// defaultWorkerConfig disables the result cache so differential runs
// exercise the solvers, not the cache (idempotency still dedupes resubmits).
func defaultWorkerConfig() service.Config {
	return service.Config{Workers: 2, QueueCap: 64, CacheSize: -1}
}

// startWorkers boots n in-process hqsd workers and registers teardown:
// listeners close first (no new forwards), then the schedulers drain, then
// leakcheck verifies nothing is left running.
func startWorkers(t *testing.T, n int, cfg service.Config) []testWorker {
	t.Helper()
	leakcheck.Check(t)
	ws := make([]testWorker, n)
	for i := range ws {
		sched := service.NewScheduler(cfg)
		ws[i] = testWorker{sched: sched, srv: httptest.NewServer(httpapi.New(sched).Handler())}
	}
	t.Cleanup(func() {
		for _, w := range ws {
			w.srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := w.sched.Drain(ctx); err != nil {
				t.Errorf("drain: %v", err)
			}
			cancel()
		}
	})
	return ws
}

func workerURLs(ws []testWorker) []string {
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.srv.URL
	}
	return urls
}

func newCoordinator(t *testing.T, ws []testWorker, mod func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{Workers: workerURLs(ws)}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// wideDeps widens every existential's dependency set to the full universal
// prefix so the instance has cube-eligible variables (widening only adds
// Skolem freedom, the formula stays well-formed).
func wideDeps(f *dqbf.Formula) *dqbf.Formula {
	g := f.Clone()
	for _, y := range g.Exist {
		g.Deps[y] = dqbf.NewVarSet(g.Univ...)
	}
	return g
}

// paperExample1Wide is the paper's Example 1 with widened dependencies:
// ∀x1∀x2 ∃y1(x1,x2) ∃y2(x1,x2). (y1↔x1)∧(y2↔x2) — SAT, 2 eligible cube vars.
func paperExample1Wide() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	f.AddExistential(4, 1, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

// serialVerdict is the oracle: the serial HQS core on the same formula.
func serialVerdict(t *testing.T, f *dqbf.Formula) service.Verdict {
	t.Helper()
	res := core.New(core.DefaultOptions()).SolveDQBF(f)
	if res.Status != core.Solved {
		t.Fatalf("serial solve did not finish: %v", res.Status)
	}
	if res.Sat {
		return service.VerdictSat
	}
	return service.VerdictUnsat
}

// clusterSolve runs one instance through the coordinator and returns the
// verdict, failing the test on transport-level errors.
func clusterSolve(t *testing.T, c *Coordinator, f *dqbf.Formula, eng service.Engine, wantCert bool) *Result {
	t.Helper()
	res, err := c.Solve(context.Background(), problem.FromDQBF(f), eng,
		service.Limits{Timeout: 30 * time.Second}, wantCert)
	if err != nil {
		t.Fatalf("cluster solve: %v", err)
	}
	if res.Info.Outcome == nil {
		t.Fatal("cluster solve returned no outcome")
	}
	return res
}

// TestClusterDifferentialRandom is the tentpole harness: 60 random DQBF
// instances (half with widened, cube-eligible dependency sets) through a
// 3-worker cluster with cube-and-conquer enabled, each checked against the
// serial core verdict; every SAT must carry a checker-accepted certificate,
// merged certificates included.
func TestClusterDifferentialRandom(t *testing.T) {
	ws := startWorkers(t, 3, defaultWorkerConfig())
	c := newCoordinator(t, ws, func(cfg *Config) { cfg.CubeVars = 2 })

	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{2, 3, 4}, {2, 4, 4}, {3, 3, 6}}
	sat, unsat := 0, 0
	for i := 0; i < 60; i++ {
		sh := shapes[i%len(shapes)]
		f := dqbf.RandomFormula(rng, sh[0], sh[1], sh[2])
		if i%2 == 0 {
			f = wideDeps(f)
		}
		want := serialVerdict(t, f)
		res := clusterSolve(t, c, f, service.EngineIDQ, true)
		if got := res.Info.Outcome.Verdict; got != want {
			t.Fatalf("instance %d: cluster says %s, serial says %s", i, got, want)
		}
		if want == service.VerdictSat {
			sat++
			if res.Cert == nil {
				t.Fatalf("instance %d: SAT without a certificate", i)
			}
			if err := cert.Check(f, res.Cert); err != nil {
				t.Fatalf("instance %d: certificate rejected: %v", i, err)
			}
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate instance mix: %d SAT, %d UNSAT", sat, unsat)
	}
	cs := c.CoordStats()
	if cs.CubeSplits == 0 {
		t.Fatal("no instance exercised the cube fan")
	}
	if cs.Forwards == 0 {
		t.Fatal("no forwards recorded")
	}
	t.Logf("60 instances: %d SAT, %d UNSAT; %d cube fans, %d forwards, %d short circuits",
		sat, unsat, cs.CubeSplits, cs.Forwards, cs.CubeUnsatShortCircuits)
}

// TestClusterDifferentialFamilies runs the structured benchmark families
// through the cluster path against the serial core.
func TestClusterDifferentialFamilies(t *testing.T) {
	ws := startWorkers(t, 3, defaultWorkerConfig())
	c := newCoordinator(t, ws, func(cfg *Config) { cfg.CubeVars = 2 })

	for _, fam := range []bench.Family{bench.FamilyAdder, bench.FamilyBitcell, bench.FamilyCircuit} {
		insts, err := bench.Generate(fam, bench.GenOptions{Count: 2, Seed: 9, MaxWidth: 3})
		if err != nil {
			t.Fatalf("%s: generate: %v", fam, err)
		}
		for _, inst := range insts {
			want := serialVerdict(t, inst.Formula)
			res := clusterSolve(t, c, inst.Formula, service.EnginePortfolio, false)
			if got := res.Info.Outcome.Verdict; got != want {
				t.Fatalf("%s: cluster says %s, serial says %s", inst.Name, got, want)
			}
		}
	}
}

// TestClusterStatsMerge pins the merged /stats shape: per-worker counters
// sum into the totals, and the coordinator's own counters ride along.
func TestClusterStatsMerge(t *testing.T) {
	ws := startWorkers(t, 3, defaultWorkerConfig())
	c := newCoordinator(t, ws, nil)

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		f := dqbf.RandomFormula(rng, 2, 3, 4)
		clusterSolve(t, c, f, service.EngineIDQ, false)
	}

	st := c.Stats(context.Background())
	if len(st.Workers) != 3 {
		t.Fatalf("stats cover %d workers, want 3", len(st.Workers))
	}
	var submitted, completed int64
	for _, w := range st.Workers {
		if !w.Ready || w.Stats == nil {
			t.Fatalf("worker %s not ready in stats: %+v", w.URL, w)
		}
		submitted += w.Stats.Submitted
		completed += w.Stats.Completed
	}
	if submitted != 6 || completed != 6 {
		t.Fatalf("workers saw %d submitted / %d completed, want 6/6", submitted, completed)
	}
	if st.Totals.Submitted != submitted || st.Totals.Completed != completed {
		t.Fatalf("totals %d/%d do not match the per-worker sum %d/%d",
			st.Totals.Submitted, st.Totals.Completed, submitted, completed)
	}
	if st.Coordinator.Forwards < 6 {
		t.Fatalf("coordinator recorded %d forwards, want >= 6", st.Coordinator.Forwards)
	}
}

// TestClusterCubeEdgeCases drives the splitting edge cases end to end:
// an oversized -cube-vars clamps to the eligible set, and a formula with no
// universals degrades to plain forwarding.
func TestClusterCubeEdgeCases(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	c := newCoordinator(t, ws, func(cfg *Config) { cfg.CubeVars = 99 })

	// k = 99 on a 2-universal formula: fan of exactly 4 cubes.
	res := clusterSolve(t, c, paperExample1Wide(), service.EngineIDQ, true)
	if res.Info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("verdict %s, want SAT", res.Info.Outcome.Verdict)
	}
	if res.CubeVars != 2 || res.Cubes != 4 {
		t.Fatalf("oversized k split into %d vars / %d cubes, want 2/4", res.CubeVars, res.Cubes)
	}
	if res.Cert == nil {
		t.Fatal("merged fan returned no certificate")
	}
	if err := cert.Check(paperExample1Wide(), res.Cert); err != nil {
		t.Fatalf("merged certificate rejected: %v", err)
	}

	// Zero universals: nothing to cube, plain forward.
	g := dqbf.New()
	g.AddExistential(1)
	g.Matrix.AddDimacsClause(1)
	res = clusterSolve(t, c, g, service.EngineIDQ, false)
	if res.Info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("verdict %s, want SAT", res.Info.Outcome.Verdict)
	}
	if res.Cubes != 0 {
		t.Fatalf("zero-universal formula fanned into %d cubes", res.Cubes)
	}
	if got := c.CoordStats().CubeSplits; got != 1 {
		t.Fatalf("%d cube splits recorded, want 1 (the degrade case must forward)", got)
	}
}

// TestClusterCubeTraceEvents asserts the coordinator surfaces the
// cube.split/cube.merge pipeline events through its trace sink (the exact
// golden JSON is pinned in the cube package).
func TestClusterCubeTraceEvents(t *testing.T) {
	ws := startWorkers(t, 2, defaultWorkerConfig())
	rec := trace.NewRecorder(16)
	c := newCoordinator(t, ws, func(cfg *Config) {
		cfg.CubeVars = 1
		cfg.Trace = rec
	})

	res := clusterSolve(t, c, paperExample1Wide(), service.EngineIDQ, true)
	if res.Info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("verdict %s, want SAT", res.Info.Outcome.Verdict)
	}
	events := rec.Events()
	if len(events) != 2 {
		t.Fatalf("got %d trace events, want split+merge", len(events))
	}
	if events[0].Stage != "cluster" || events[0].Pass != "cube.split" {
		t.Fatalf("event 0 = %s/%s, want cluster/cube.split", events[0].Stage, events[0].Pass)
	}
	if events[1].Stage != "cluster" || events[1].Pass != "cube.merge" {
		t.Fatalf("event 1 = %s/%s, want cluster/cube.merge", events[1].Stage, events[1].Pass)
	}
	if events[0].Counters["cubes"] != 2 || events[1].Counters["functions"] != 2 {
		t.Fatalf("unexpected counters: split=%v merge=%v", events[0].Counters, events[1].Counters)
	}
}
