package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/problem"
	"repro/internal/service"
)

// Cluster job IDs are "w<worker>:<worker-local id>": the prefix pins the ring
// member that owns the job so GET/DELETE route back to it without any
// coordinator-side job table.

// JobID builds the cluster-visible ID for a worker-local job ID.
func JobID(worker int, id string) string {
	return "w" + strconv.Itoa(worker) + ":" + id
}

// SplitJobID parses a cluster job ID back into its worker index and
// worker-local ID.
func (c *Coordinator) SplitJobID(id string) (int, string, error) {
	rest, ok := strings.CutPrefix(id, "w")
	if !ok {
		return 0, "", fmt.Errorf("cluster: job ID %q has no worker prefix", id)
	}
	idx, local, ok := strings.Cut(rest, ":")
	if !ok {
		return 0, "", fmt.Errorf("cluster: job ID %q has no worker prefix", id)
	}
	w, err := strconv.Atoi(idx)
	if err != nil || w < 0 || w >= len(c.cfg.Workers) {
		return 0, "", fmt.Errorf("cluster: job ID %q names no known worker", id)
	}
	return w, local, nil
}

// SubmitJob forwards an async POST /jobs to the formula's home node (ring
// successors on failure) and returns the accepted snapshot with the cluster
// job ID. The idempotency key pins the logical submission across failovers.
func (c *Coordinator) SubmitJob(ctx context.Context, p *problem.Problem, eng service.Engine, lim service.Limits) (service.JobInfo, error) {
	if eng == "" {
		eng = service.EnginePortfolio
	}
	body, err := marshalFormula(p.Formula)
	if err != nil {
		return service.JobInfo{}, fmt.Errorf("cluster: serializing formula: %w", err)
	}
	key := p.CanonicalHash()
	path := "/jobs" + strings.TrimPrefix(solvePath(eng, lim, false), "/solve")
	reply, err := c.forward(ctx, key, path, body, key+":job")
	if err != nil {
		return service.JobInfo{}, err
	}
	info := reply.JobInfo
	info.ID = JobID(reply.worker, info.ID)
	return info, nil
}

// jobRequest performs one worker-pinned job request (GET snapshot, GET
// trace, DELETE) and returns the raw response. No failover: the job lives on
// exactly one worker.
func (c *Coordinator) jobRequest(ctx context.Context, method, id, suffix, query string) (int, []byte, int, error) {
	w, local, err := c.SplitJobID(id)
	if err != nil {
		return 0, nil, http.StatusNotFound, err
	}
	url := c.cfg.Workers[w] + "/jobs/" + local + suffix + query
	req, err := http.NewRequestWithContext(ctx, method, url, nil)
	if err != nil {
		return 0, nil, http.StatusInternalServerError, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, http.StatusBadGateway,
			fmt.Errorf("cluster: %s unreachable: %w", c.cfg.Workers[w], err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, http.StatusBadGateway, err
	}
	return w, raw, resp.StatusCode, nil
}

// GetJob fetches a job snapshot from its owning worker, rewriting the ID
// back to cluster form. withCert passes ?cert=1 through, and the certificate
// attachment (if any) is returned verbatim in the second result.
func (c *Coordinator) GetJob(ctx context.Context, id string, withCert bool) (service.JobInfo, string, int, error) {
	query := ""
	if withCert {
		query = "?cert=1"
	}
	w, raw, status, err := c.jobRequest(ctx, http.MethodGet, id, "", query)
	if err != nil {
		return service.JobInfo{}, "", status, err
	}
	if status != http.StatusOK {
		return service.JobInfo{}, "", status, fmt.Errorf("cluster: worker answered %d: %s", status, strings.TrimSpace(string(raw)))
	}
	var reply solveReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return service.JobInfo{}, "", http.StatusBadGateway, fmt.Errorf("cluster: bad reply: %w", err)
	}
	reply.JobInfo.ID = JobID(w, reply.JobInfo.ID)
	return reply.JobInfo, reply.CertSkolem, status, nil
}

// GetTrace fetches a job's pipeline trace from its owning worker. The
// payload is passed through verbatim except for the rewritten ID.
func (c *Coordinator) GetTrace(ctx context.Context, id string) ([]byte, int, error) {
	w, raw, status, err := c.jobRequest(ctx, http.MethodGet, id, "/trace", "")
	if err != nil {
		return nil, status, err
	}
	if status != http.StatusOK {
		return raw, status, nil
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, http.StatusBadGateway, fmt.Errorf("cluster: bad trace reply: %w", err)
	}
	idJSON, _ := json.Marshal(JobID(w, strings.Trim(string(doc["id"]), `"`)))
	doc["id"] = idJSON
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return out, status, nil
}

// CancelJob forwards a DELETE to the job's owning worker.
func (c *Coordinator) CancelJob(ctx context.Context, id string) (int, error) {
	_, raw, status, err := c.jobRequest(ctx, http.MethodDelete, id, "", "")
	if err != nil {
		return status, err
	}
	if status != http.StatusOK {
		return status, fmt.Errorf("cluster: worker answered %d: %s", status, strings.TrimSpace(string(raw)))
	}
	return status, nil
}
