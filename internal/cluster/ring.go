package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker indices with virtual nodes:
// keys map to the first vnode clockwise from their hash, and the failover
// order of a key is the de-duplicated successor walk, so removing one worker
// only remaps the keys it owned.
type ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash   uint64
	worker int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a barely diffuses short sequential keys ("…#0", "…#1", …): the
	// vnodes of one worker land in a single clump and the ring degenerates.
	// A splitmix64 finalizer spreads them across the whole space.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing places vnodes points per worker, keyed on the worker's name so
// the placement is stable across coordinator restarts.
func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 32
	}
	r := &ring{n: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", name, v)),
				worker: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].worker < r.points[b].worker
	})
	return r
}

// order returns every worker index exactly once, starting at the key's home
// node and continuing along the ring — the coordinator's failover order.
func (r *ring) order(key string) []int {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make(map[int]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}
