package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderIsDeterministicPermutation(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(names, 32)
	r2 := newRing(names, 32)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != len(names) {
			t.Fatalf("order(%q) = %v, want all %d workers", key, o1, len(names))
		}
		seen := make(map[int]bool)
		for _, w := range o1 {
			if w < 0 || w >= len(names) || seen[w] {
				t.Fatalf("order(%q) = %v is not a permutation", key, o1)
			}
			seen[w] = true
		}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("order(%q) differs across identical rings: %v vs %v", key, o1, o2)
			}
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	names := []string{"http://a", "http://b", "http://c"}
	r := newRing(names, 32)
	owned := make(map[int]int)
	for i := 0; i < 300; i++ {
		owned[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for w := range names {
		if owned[w] == 0 {
			t.Fatalf("worker %d owns no keys: %v", w, owned)
		}
	}
}

// TestRingConsistentUnderGrowth pins the consistent-hashing property: adding
// one worker must only remap keys onto the new worker — a key that stays
// keeps its home node, so worker caches stay warm across ring growth.
func TestRingConsistentUnderGrowth(t *testing.T) {
	small := newRing([]string{"http://a", "http://b", "http://c"}, 32)
	big := newRing([]string{"http://a", "http://b", "http://c", "http://d"}, 32)
	moved := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := small.order(key)[0], big.order(key)[0]
		if after == 3 {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from worker %d to %d without involving the new worker", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("new worker took no keys")
	}
}

func TestRingSingleWorkerAndDefaultVnodes(t *testing.T) {
	r := newRing([]string{"http://a"}, 0)
	if got := r.order("anything"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("order = %v, want [0]", got)
	}
}
