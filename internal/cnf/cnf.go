// Package cnf provides the shared propositional-logic substrate used by all
// solvers in this repository: variables, literals, clauses, CNF formulas, and
// DIMACS reading/writing.
//
// Variables are positive integers starting at 1, as in the DIMACS format.
// Literals use a packed encoding (variable index shifted left by one, with the
// low bit indicating negation), which keeps watch lists and assignment arrays
// dense in the SAT solver.
package cnf

import (
	"fmt"
	"sort"
)

// Var is a propositional variable. Valid variables are >= 1.
type Var int32

// Lit is a literal: a variable or its negation, in packed encoding.
// For a variable v, the positive literal is 2v and the negative literal 2v+1.
// The zero value is not a valid literal.
type Lit int32

// NewLit returns the literal for variable v, negated if neg is true.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// LitFromDimacs converts a non-zero DIMACS integer (±v) to a Lit.
func LitFromDimacs(d int) Lit {
	if d == 0 {
		panic("cnf: DIMACS literal 0")
	}
	if d < 0 {
		return NegLit(Var(-d))
	}
	return PosLit(Var(d))
}

// Var returns the variable of the literal.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// XorSign returns l negated if s is true, l otherwise.
func (l Lit) XorSign(s bool) Lit {
	if s {
		return l ^ 1
	}
	return l
}

// Dimacs returns the literal in DIMACS ±v form.
func (l Lit) Dimacs() int {
	if l.Neg() {
		return -int(l.Var())
	}
	return int(l.Var())
}

// String renders the literal in DIMACS form.
func (l Lit) String() string { return fmt.Sprintf("%d", l.Dimacs()) }

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns a copy of the clause.
func (c Clause) Clone() Clause {
	d := make(Clause, len(c))
	copy(d, c)
	return d
}

// Has reports whether the clause contains the literal l.
func (c Clause) Has(l Lit) bool {
	for _, m := range c {
		if m == l {
			return true
		}
	}
	return false
}

// HasVar reports whether the clause mentions variable v (in either polarity).
func (c Clause) HasVar(v Var) bool {
	for _, m := range c {
		if m.Var() == v {
			return true
		}
	}
	return false
}

// Normalize sorts the clause, removes duplicate literals, and reports whether
// the clause is a tautology (contains l and ¬l). The returned clause aliases
// the receiver's storage.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:1]
	for _, l := range c[1:] {
		last := out[len(out)-1]
		if l == last {
			continue
		}
		if l == last.Not() {
			return c, true
		}
		out = append(out, l)
	}
	return out, false
}

// String renders the clause as space-separated DIMACS literals terminated by 0.
func (c Clause) String() string {
	s := ""
	for _, l := range c {
		s += fmt.Sprintf("%d ", l.Dimacs())
	}
	return s + "0"
}

// Formula is a CNF formula: a conjunction of clauses over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula {
	return &Formula{NumVars: n}
}

// AddClause appends a clause, growing NumVars as needed.
func (f *Formula) AddClause(lits ...Lit) {
	for _, l := range lits {
		if int(l.Var()) > f.NumVars {
			f.NumVars = int(l.Var())
		}
	}
	f.Clauses = append(f.Clauses, Clause(lits))
}

// AddDimacsClause appends a clause given as DIMACS integers (without the
// terminating zero).
func (f *Formula) AddDimacsClause(ds ...int) {
	c := make(Clause, len(ds))
	for i, d := range ds {
		c[i] = LitFromDimacs(d)
	}
	for _, l := range c {
		if int(l.Var()) > f.NumVars {
			f.NumVars = int(l.Var())
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// NewVar allocates a fresh variable.
func (f *Formula) NewVar() Var {
	f.NumVars++
	return Var(f.NumVars)
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	return g
}

// Assignment maps variables to truth values. Index 0 is unused.
type Assignment []bool

// NewAssignment returns an all-false assignment for n variables.
func NewAssignment(n int) Assignment { return make(Assignment, n+1) }

// Get returns the value of v under the assignment.
func (a Assignment) Get(v Var) bool { return a[v] }

// Set assigns value b to v.
func (a Assignment) Set(v Var, b bool) { a[v] = b }

// Lit returns the truth value of literal l under the assignment.
func (a Assignment) Lit(l Lit) bool { return a[l.Var()] != l.Neg() }

// EvalClause reports whether the clause is satisfied under a.
func (a Assignment) EvalClause(c Clause) bool {
	for _, l := range c {
		if a.Lit(l) {
			return true
		}
	}
	return false
}

// Eval reports whether the formula is satisfied under a.
func (f *Formula) Eval(a Assignment) bool {
	for _, c := range f.Clauses {
		if !a.EvalClause(c) {
			return false
		}
	}
	return true
}

// MaxVar returns the largest variable index actually occurring in a clause.
func (f *Formula) MaxVar() Var {
	var m Var
	for _, c := range f.Clauses {
		for _, l := range c {
			if l.Var() > m {
				m = l.Var()
			}
		}
	}
	return m
}
