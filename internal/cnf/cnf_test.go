package cnf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	cases := []struct {
		v   Var
		neg bool
	}{{1, false}, {1, true}, {2, false}, {7, true}, {1000, false}}
	for _, c := range cases {
		l := NewLit(c.v, c.neg)
		if l.Var() != c.v {
			t.Errorf("NewLit(%d,%v).Var() = %d", c.v, c.neg, l.Var())
		}
		if l.Neg() != c.neg {
			t.Errorf("NewLit(%d,%v).Neg() = %v", c.v, c.neg, l.Neg())
		}
		if l.Not().Var() != c.v || l.Not().Neg() == c.neg {
			t.Errorf("Not() broken for %v", l)
		}
		if l.Not().Not() != l {
			t.Errorf("double negation broken for %v", l)
		}
	}
}

func TestLitDimacsRoundTrip(t *testing.T) {
	f := func(d int16) bool {
		if d == 0 {
			return true
		}
		return LitFromDimacs(int(d)).Dimacs() == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPosNegLit(t *testing.T) {
	if PosLit(3).Neg() || !NegLit(3).Neg() {
		t.Fatal("PosLit/NegLit polarity wrong")
	}
	if PosLit(3).Not() != NegLit(3) {
		t.Fatal("PosLit(3).Not() != NegLit(3)")
	}
}

func TestXorSign(t *testing.T) {
	l := PosLit(5)
	if l.XorSign(false) != l {
		t.Error("XorSign(false) changed literal")
	}
	if l.XorSign(true) != l.Not() {
		t.Error("XorSign(true) did not negate")
	}
}

func TestClauseNormalize(t *testing.T) {
	c := Clause{PosLit(2), PosLit(1), PosLit(2), NegLit(3)}
	n, taut := c.Normalize()
	if taut {
		t.Fatal("unexpected tautology")
	}
	if len(n) != 3 {
		t.Fatalf("want 3 literals after dedup, got %v", n)
	}
	c2 := Clause{PosLit(1), NegLit(1)}
	if _, taut := c2.Normalize(); !taut {
		t.Fatal("missed tautology")
	}
}

func TestClauseHas(t *testing.T) {
	c := Clause{PosLit(1), NegLit(2)}
	if !c.Has(PosLit(1)) || c.Has(NegLit(1)) {
		t.Error("Has wrong")
	}
	if !c.HasVar(2) || c.HasVar(3) {
		t.Error("HasVar wrong")
	}
}

func TestFormulaEval(t *testing.T) {
	f := NewFormula(3)
	f.AddDimacsClause(1, 2)
	f.AddDimacsClause(-1, 3)
	a := NewAssignment(3)
	a.Set(1, true)
	a.Set(3, true)
	if !f.Eval(a) {
		t.Fatal("assignment should satisfy formula")
	}
	a.Set(3, false)
	if f.Eval(a) {
		t.Fatal("assignment should falsify formula")
	}
}

func TestFormulaNewVarClone(t *testing.T) {
	f := NewFormula(2)
	v := f.NewVar()
	if v != 3 || f.NumVars != 3 {
		t.Fatalf("NewVar: got %d, NumVars %d", v, f.NumVars)
	}
	f.AddDimacsClause(1, -3)
	g := f.Clone()
	g.Clauses[0][0] = NegLit(1)
	if f.Clauses[0][0] != PosLit(1) {
		t.Fatal("Clone aliases clause storage")
	}
}

func TestParseDIMACS(t *testing.T) {
	in := `c example
p cnf 4 3
1 -2 0
2 3 0
-4 0
`
	f, err := ParseDIMACSString(in)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 4 || len(f.Clauses) != 3 {
		t.Fatalf("got %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
	if f.Clauses[0][1] != NegLit(2) {
		t.Fatalf("clause 0 = %v", f.Clauses[0])
	}
}

func TestParseDIMACSNoHeader(t *testing.T) {
	f, err := ParseDIMACSString("1 2 0\n-2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 2 || len(f.Clauses) != 2 {
		t.Fatalf("got %d vars, %d clauses", f.NumVars, len(f.Clauses))
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	f, err := ParseDIMACSString("p cnf 3 1\n1 2\n3 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 1 || len(f.Clauses[0]) != 3 {
		t.Fatalf("clauses = %v", f.Clauses)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	if _, err := ParseDIMACSString("p cnf x 3\n"); err == nil {
		t.Error("want error for bad var count")
	}
	if _, err := ParseDIMACSString("p dnf 1 1\n"); err == nil {
		t.Error("want error for non-cnf problem line")
	}
	if _, err := ParseDIMACSString("1 two 0\n"); err == nil {
		t.Error("want error for bad literal")
	}
}

func TestWriteDIMACSRoundTrip(t *testing.T) {
	f := NewFormula(0)
	f.AddDimacsClause(1, -2, 3)
	f.AddDimacsClause(-3)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip mismatch: %+v vs %+v", f, g)
	}
	for i := range f.Clauses {
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d differs", i)
			}
		}
	}
}

func TestClauseString(t *testing.T) {
	c := Clause{PosLit(1), NegLit(2)}
	if got := c.String(); got != "1 -2 0" {
		t.Errorf("String() = %q", got)
	}
	if !strings.Contains(PosLit(7).String(), "7") {
		t.Error("lit String broken")
	}
}
