package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a plain DIMACS CNF formula.
// Comment lines ("c ...") are ignored. The problem line ("p cnf <vars>
// <clauses>") is optional; if present, the declared variable count is honored
// as a lower bound for NumVars.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	f := &Formula{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var cur Clause
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad variable count: %v", lineNo, err)
			}
			if n > f.NumVars {
				f.NumVars = n
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs line %d: bad literal %q", lineNo, tok)
			}
			if d == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			l := LitFromDimacs(d)
			if int(l.Var()) > f.NumVars {
				f.NumVars = int(l.Var())
			}
			cur = append(cur, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	return f, nil
}

// ParseDIMACSString parses a DIMACS formula from a string.
func ParseDIMACSString(s string) (*Formula, error) {
	return ParseDIMACS(strings.NewReader(s))
}

// WriteDIMACS writes the formula in DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", l.Dimacs()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
