package core

import (
	"repro/internal/aig"
	"repro/internal/cnf"
)

// BuildMatrix converts a CNF matrix into an AIG over graph g and composes
// the detected gate definitions in: every occurrence of a gate output
// variable is replaced by the gate's function, so the Tseitin auxiliaries
// vanish from the matrix without any quantifier elimination (Section III-C).
func BuildMatrix(g *aig.Graph, f *cnf.Formula, gates []Gate) aig.Ref {
	// Resolve gate functions; gates may feed each other but form a DAG.
	byOut := make(map[cnf.Var]Gate, len(gates))
	for _, gt := range gates {
		byOut[gt.Out] = gt
	}
	fnMemo := make(map[cnf.Var]aig.Ref, len(gates))
	var fnOf func(v cnf.Var) (aig.Ref, bool)
	litRef := func(l cnf.Lit) aig.Ref {
		if r, ok := fnOf(l.Var()); ok {
			return r.XorSign(l.Neg())
		}
		return g.Input(l.Var()).XorSign(l.Neg())
	}
	fnOf = func(v cnf.Var) (aig.Ref, bool) {
		if r, ok := fnMemo[v]; ok {
			return r, true
		}
		gt, ok := byOut[v]
		if !ok {
			return 0, false
		}
		ins := make([]aig.Ref, len(gt.Ins))
		for i, l := range gt.Ins {
			ins[i] = litRef(l)
		}
		var r aig.Ref
		switch gt.Kind {
		case GateXor:
			r = g.Xor(ins[0], ins[1])
		default:
			r = g.AndN(ins...)
		}
		if gt.OutNeg {
			r = r.Not()
		}
		fnMemo[v] = r
		return r, true
	}

	clauses := make([]aig.Ref, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]aig.Ref, len(c))
		for j, l := range c {
			lits[j] = litRef(l)
		}
		clauses[i] = g.OrN(lits...)
	}
	return g.AndN(clauses...)
}
