// Package core implements HQS, the paper's contribution: an elimination-based
// DQBF solver that turns a dependency quantified Boolean formula into an
// equivalent QBF by eliminating a minimum set of universal variables, then
// hands the linearized problem to an AIG-based QBF solver.
//
// The pipeline follows Fig. 3 of the paper:
//
//  1. CNF preprocessing — unit propagation, DQBF universal reduction,
//     equivalent-variable substitution, Tseitin gate detection (preprocess.go,
//     gates.go).
//  2. AIG construction from the preprocessed CNF, composing detected gate
//     functions directly so their auxiliary variables never need explicit
//     elimination (build.go).
//  3. Selection of a minimum universal elimination set via partial MaxSAT
//     over the binary dependency-set cycles (elimset.go; Equations 1 and 2),
//     ordered by the number of existential copies each elimination costs.
//  4. The main loop: syntactic unit/pure elimination on the AIG
//     (Theorems 5/6), elimination of existentials depending on all universals
//     (Theorem 2), and elimination of the selected universals (Theorem 1)
//     until the dependency graph is acyclic, with periodic SAT sweeping.
//  5. Linearization (Theorem 3) and the QBF back end (package qbf).
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/maxsat"
	"repro/internal/qbf"
)

// Status describes how a Solve attempt ended.
type Status int

const (
	// Solved means a definitive SAT/UNSAT verdict was reached.
	Solved Status = iota
	// Timeout means the wall-clock budget was exhausted.
	Timeout
	// Memout means the AIG node budget was exhausted.
	Memout
	// Cancelled means the budget was cancelled (or a conflict/decision cap
	// was exhausted) before a verdict.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Timeout:
		return "timeout"
	case Memout:
		return "memout"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configure the solver. The zero value disables every optimization;
// use DefaultOptions for the paper's configuration.
type Options struct {
	// Preprocess enables CNF-level preprocessing.
	Preprocess bool
	// DetectGates enables Tseitin gate detection (requires Preprocess).
	DetectGates bool
	// UnitPure enables syntactic unit/pure elimination on the AIG.
	UnitPure bool
	// Strategy selects the universal elimination set.
	Strategy ElimStrategy
	// ReverseElimOrder inverts the copy-cost ordering (ablation).
	ReverseElimOrder bool
	// SweepThreshold triggers a SAT sweep when the matrix grows by this many
	// AND nodes since the last sweep; 0 disables sweeping.
	SweepThreshold int
	// SweepOptions configure individual sweeps.
	SweepOptions aig.SweepOptions
	// Workers, when nonzero, overrides the SAT worker-pool size of every
	// sweep (here and in the QBF back end): 1 is serial, negative uses
	// runtime.GOMAXPROCS(0). See aig.SweepOptions.Workers for the
	// determinism guarantees.
	Workers int
	// QBF configures the back-end QBF solver.
	QBF qbf.Options
	// NodeLimit bounds the AIG size (the analogue of the paper's 8 GB
	// memory limit); 0 means unlimited.
	NodeLimit int
	// Timeout bounds wall-clock solving time; 0 means unlimited.
	Timeout time.Duration
	// Budget, when non-nil, makes the solve cancellable and budgeted: the
	// main loop, the MaxSAT elimination-set selection, SAT sweeps, and the
	// QBF back end (including its final SAT call) poll it and unwind with
	// status Timeout (deadline) or Cancelled (cancel, conflict/decision
	// caps); its node cap tightens NodeLimit (status Memout).
	Budget *budget.Budget
}

// DefaultOptions mirror the configuration evaluated in the paper.
func DefaultOptions() Options {
	return Options{
		Preprocess:     true,
		DetectGates:    true,
		UnitPure:       true,
		Strategy:       ElimMaxSAT,
		SweepThreshold: 1024,
		SweepOptions:   aig.DefaultSweepOptions(),
		QBF:            qbf.DefaultOptions(),
	}
}

// Stats collects solver counters and the instrumentation the paper reports
// (MaxSAT selection time, unit/pure check time).
type Stats struct {
	Preprocess   PreprocessResult
	ElimSet      []cnf.Var
	ElimSetTime  time.Duration
	UnitPureTime time.Duration
	TotalTime    time.Duration

	UnivElims  int // Theorem 1 eliminations
	ExistElims int // Theorem 2 eliminations
	UnitElims  int
	PureElims  int
	CopiesMade int // existential copies introduced by Theorem 1
	Sweeps     int
	// Sweep aggregates the SAT-sweeping counters of the main loop (the QBF
	// back end keeps its own aggregate in QBF.Sweep).
	Sweep aig.SweepStats

	PeakAIGNodes int
	QBF          qbf.Stats
	DecidedBy    string // "preprocess", "constant", "qbf"
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	Sat    bool
	Stats  Stats
}

// Solver is the HQS DQBF solver.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// errTimeout is used internally to unwind on deadline.
var errTimeout = errors.New("core: timeout")

// budgetStop unwinds the solve when the shared budget is exhausted; err is
// the budget's reason.
type budgetStop struct{ err error }

// Solve decides the DQBF. The input formula is not modified.
func (s *Solver) Solve(f *dqbf.Formula) (res Result) {
	start := time.Now()
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	deadline := s.Opt.Budget.Deadline()
	if s.Opt.Timeout > 0 {
		if d := start.Add(s.Opt.Timeout); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	// checkStop unwinds via panic once the budget or deadline is exhausted;
	// the recover below converts the sentinel into a Timeout/Cancelled/Memout
	// status. Panicking keeps the elimination loop free of error plumbing.
	checkStop := func() {
		if err := s.Opt.Budget.Err(); err != nil {
			panic(budgetStop{err})
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			panic(errTimeout)
		}
	}
	defer func() {
		switch r := recover().(type) {
		case nil:
		case aig.ErrNodeLimit:
			res.Status = Memout
		case budgetStop:
			if errors.Is(r.err, budget.ErrDeadline) {
				res.Status = Timeout
			} else {
				res.Status = Cancelled
			}
		case error:
			if r == errTimeout {
				res.Status = Timeout
				return
			}
			panic(r)
		default:
			panic(r)
		}
	}()

	work := f.Clone()

	// Step 1: preprocessing.
	if s.Opt.Preprocess {
		pr, err := Preprocess(work, s.Opt.DetectGates)
		res.Stats.Preprocess = pr
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		if pr.Decided {
			res.Status = Solved
			res.Sat = pr.Value
			res.Stats.DecidedBy = "preprocess"
			return res
		}
	}

	// Step 2: AIG construction.
	g := aig.New()
	g.NodeLimit = s.Opt.NodeLimit
	if nc := s.Opt.Budget.NodeCap(); nc > 0 && (g.NodeLimit == 0 || nc < g.NodeLimit) {
		g.NodeLimit = nc
	}
	m := BuildMatrix(g, work.Matrix, res.Stats.Preprocess.Gates)
	track := func() {
		if n := g.NumNodes(); n > res.Stats.PeakAIGNodes {
			res.Stats.PeakAIGNodes = n
		}
	}
	track()

	// Step 3: elimination-set selection.
	selStart := time.Now()
	elim, err := SelectEliminationSetBudget(work, s.Opt.Strategy, s.Opt.Budget)
	if err != nil {
		if errors.Is(err, maxsat.ErrBudget) {
			panic(budgetStop{err})
		}
		panic(fmt.Sprintf("core: %v", err))
	}
	elim = OrderByCopyCost(work, elim)
	if s.Opt.ReverseElimOrder {
		for i, j := 0, len(elim)-1; i < j; i, j = i+1, j-1 {
			elim[i], elim[j] = elim[j], elim[i]
		}
	}
	res.Stats.ElimSetTime = time.Since(selStart)
	res.Stats.ElimSet = elim

	nextVar := cnf.Var(work.Matrix.NumVars + 1)
	lastSweepSize := g.ConeSize(m)

	// Step 4: main loop.
	for {
		checkStop()
		if m.IsConst() {
			res.Status = Solved
			res.Sat = m == aig.True
			res.Stats.DecidedBy = "constant"
			return res
		}
		if s.Opt.UnitPure {
			var done bool
			m, done = s.applyUnitPure(g, work, m, &res.Stats, checkStop)
			if done {
				res.Status = Solved
				res.Sat = m == aig.True
				res.Stats.DecidedBy = "constant"
				return res
			}
		}
		s.dropNonSupport(g, work, m)

		// Theorem 2: eliminate existentials depending on all universals.
		univSet := work.UniversalSet()
		for _, y := range append([]cnf.Var(nil), work.Exist...) {
			if !work.Deps[y].Equal(univSet) {
				continue
			}
			checkStop()
			m = g.Exists(m, y)
			removeVarFromPrefix(work, y)
			res.Stats.ExistElims++
			track()
			if m.IsConst() {
				res.Status = Solved
				res.Sat = m == aig.True
				res.Stats.DecidedBy = "constant"
				return res
			}
		}

		if !dqbf.IsCyclic(work) {
			break
		}

		// Theorem 1: eliminate the next selected universal variable.
		x := cnf.Var(0)
		for len(elim) > 0 {
			cand := elim[0]
			elim = elim[1:]
			if work.IsUniversal(cand) {
				x = cand
				break
			}
		}
		if x == 0 {
			// The precomputed set is exhausted but cycles remain (possible
			// only if unit/pure removed selected variables in a way that
			// left other cycles): recompute.
			more, err := SelectEliminationSetBudget(work, s.Opt.Strategy, s.Opt.Budget)
			if err != nil {
				if errors.Is(err, maxsat.ErrBudget) {
					panic(budgetStop{err})
				}
				panic(fmt.Sprintf("core: %v", err))
			}
			elim = OrderByCopyCost(work, more)
			if len(elim) == 0 {
				break
			}
			continue
		}
		m = s.eliminateUniversal(g, work, m, x, &nextVar, &res.Stats)
		track()

		if s.Opt.SweepThreshold > 0 {
			if size := g.ConeSize(m); size > lastSweepSize+s.Opt.SweepThreshold {
				so := s.Opt.SweepOptions
				so.Deadline = deadline
				so.Budget = s.Opt.Budget
				if s.Opt.Workers != 0 {
					so.Workers = s.Opt.Workers
				}
				var sst aig.SweepStats
				m, sst = g.Sweep(m, so)
				res.Stats.Sweep.Add(sst)
				res.Stats.Sweeps++
				lastSweepSize = g.ConeSize(m)
			}
		}
	}

	// Step 5: linearize and run the QBF back end.
	if m.IsConst() {
		res.Status = Solved
		res.Sat = m == aig.True
		res.Stats.DecidedBy = "constant"
		return res
	}
	s.dropNonSupport(g, work, m)
	blocks := dqbf.Linearize(work)
	qopt := s.Opt.QBF
	qopt.Deadline = deadline
	qopt.Budget = s.Opt.Budget
	if s.Opt.Workers != 0 {
		qopt.SweepOptions.Workers = s.Opt.Workers
	}
	qs := qbf.New(g, qopt)
	sat, err := qs.Solve(blocks, m)
	res.Stats.QBF = qs.Stat
	track()
	if err != nil {
		if _, ok := err.(aig.ErrNodeLimit); ok {
			res.Status = Memout
			return res
		}
		if errors.Is(err, qbf.ErrTimeout) {
			res.Status = Timeout
			return res
		}
		if errors.Is(err, qbf.ErrCancelled) {
			res.Status = Cancelled
			return res
		}
		panic(fmt.Sprintf("core: qbf back end: %v", err))
	}
	res.Status = Solved
	res.Sat = sat
	res.Stats.DecidedBy = "qbf"
	return res
}

// eliminateUniversal applies Theorem 1 to universal variable x:
// ψ ≡ ∀-prefix without x : φ[0/x] ∧ φ[1/x][y'/y for y ∈ E_x], where every
// existential depending on x is duplicated in the positive cofactor with
// dependency set D_y ∖ {x}.
func (s *Solver) eliminateUniversal(g *aig.Graph, work *dqbf.Formula, m aig.Ref, x cnf.Var, nextVar *cnf.Var, st *Stats) aig.Ref {
	cof0 := g.Cofactor(m, x, false)
	cof1 := g.Cofactor(m, x, true)

	ren := make(map[cnf.Var]cnf.Var)
	for _, y := range work.Exist {
		if work.Deps[y].Has(x) {
			ren[y] = *nextVar
			*nextVar++
		}
	}
	cof1 = g.Rename(cof1, ren)

	// Prefix update: drop x; D_y loses x; copies y' join with the same set.
	removeVarFromPrefix(work, x)
	for y, yc := range ren {
		work.Exist = append(work.Exist, yc)
		work.Deps[yc] = work.Deps[y].Clone()
		if int(yc) > work.Matrix.NumVars {
			work.Matrix.NumVars = int(yc)
		}
	}
	st.UnivElims++
	st.CopiesMade += len(ren)
	return g.And(cof0, cof1)
}

// applyUnitPure eliminates unit and pure variables (Theorems 5/6) until a
// fixpoint. The second return value is true when the matrix became constant.
// checkStop is polled between fixpoint rounds and unwinds on budget stop.
func (s *Solver) applyUnitPure(g *aig.Graph, work *dqbf.Formula, m aig.Ref, st *Stats, checkStop func()) (aig.Ref, bool) {
	for {
		checkStop()
		changed := false
		upStart := time.Now()
		up := g.UnitPure(m)
		st.UnitPureTime += time.Since(upStart)
		for v, p := range up {
			exist := work.IsExistential(v)
			univ := work.IsUniversal(v)
			if !exist && !univ {
				continue // gate-defined or already removed
			}
			switch {
			case exist && p.PosUnit:
				m = g.Cofactor(m, v, true)
				st.UnitElims++
			case exist && p.NegUnit:
				m = g.Cofactor(m, v, false)
				st.UnitElims++
			case univ && (p.PosUnit || p.NegUnit):
				return aig.False, true
			case exist && p.PosPure:
				m = g.Cofactor(m, v, true)
				st.PureElims++
			case exist && p.NegPure:
				m = g.Cofactor(m, v, false)
				st.PureElims++
			case univ && p.PosPure:
				m = g.Cofactor(m, v, false)
				st.PureElims++
			case univ && p.NegPure:
				m = g.Cofactor(m, v, true)
				st.PureElims++
			default:
				continue
			}
			removeVarFromPrefix(work, v)
			changed = true
			if m.IsConst() {
				return m, true
			}
			break // recompute unit/pure flags on the new matrix
		}
		if !changed {
			return m, false
		}
	}
}

// dropNonSupport removes prefix variables that the matrix no longer depends
// on. Universal variables simply leave the dependency sets as well.
func (s *Solver) dropNonSupport(g *aig.Graph, work *dqbf.Formula, m aig.Ref) {
	support := g.Support(m)
	var exist []cnf.Var
	for _, y := range work.Exist {
		if support[y] {
			exist = append(exist, y)
		} else {
			delete(work.Deps, y)
		}
	}
	work.Exist = exist
	var univ []cnf.Var
	for _, x := range work.Univ {
		if support[x] {
			univ = append(univ, x)
			continue
		}
		for _, d := range work.Deps {
			d.Remove(x)
		}
	}
	work.Univ = univ
}

func removeVarFromPrefix(f *dqbf.Formula, v cnf.Var) {
	for i, u := range f.Univ {
		if u == v {
			f.Univ = append(f.Univ[:i], f.Univ[i+1:]...)
			for _, d := range f.Deps {
				d.Remove(v)
			}
			return
		}
	}
	for i, y := range f.Exist {
		if y == v {
			f.Exist = append(f.Exist[:i], f.Exist[i+1:]...)
			delete(f.Deps, v)
			return
		}
	}
}
