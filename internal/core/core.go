// Package core implements HQS, the paper's contribution: an elimination-based
// DQBF solver that turns a dependency quantified Boolean formula into an
// equivalent QBF by eliminating a minimum set of universal variables, then
// hands the linearized problem to an AIG-based QBF solver.
//
// The solver is assembled from named passes on the shared pass pipeline
// (internal/pipeline), following Fig. 3 of the paper:
//
//  1. "preprocess" — CNF-level unit propagation, DQBF universal reduction,
//     equivalent-variable substitution, Tseitin gate detection
//     (preprocess.go, gates.go).
//  2. "build" — AIG construction from the preprocessed CNF, composing
//     detected gate functions directly so their auxiliary variables never
//     need explicit elimination (build.go).
//  3. "elimset" — selection of a minimum universal elimination set via
//     partial MaxSAT over the binary dependency-set cycles (elimset.go;
//     Equations 1 and 2), ordered by the number of existential copies each
//     elimination costs.
//  4. The main loop: the shared "unitpure" pass (Theorems 5/6), "thm2"
//     (elimination of existentials depending on all universals, Theorem 2),
//     "thm1" (elimination of the selected universals, Theorem 1) until the
//     dependency graph is acyclic, with the shared "sweep" pass compressing
//     the AIG between eliminations.
//  5. "qbf" — linearization (Theorem 3) and the QBF back end (package qbf),
//     which runs its own pipeline of the same shared passes.
//
// Every pass execution is budget-polled, fault-injectable at
// "pipeline.<pass>", and emits one structured trace event when
// Options.Trace is set (see internal/trace). Solve itself is only pipeline
// assembly plus result mapping.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/problem"
	"repro/internal/qbf"
	"repro/internal/trace"
)

// Status describes how a Solve attempt ended.
type Status int

const (
	// Solved means a definitive SAT/UNSAT verdict was reached.
	Solved Status = iota
	// Timeout means the wall-clock budget was exhausted.
	Timeout
	// Memout means the AIG node budget was exhausted.
	Memout
	// Cancelled means the budget was cancelled (or a conflict/decision cap
	// was exhausted) before a verdict.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Timeout:
		return "timeout"
	case Memout:
		return "memout"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configure the solver. The zero value disables every optimization;
// use DefaultOptions for the paper's configuration.
type Options struct {
	// Preprocess enables CNF-level preprocessing.
	Preprocess bool
	// DetectGates enables Tseitin gate detection (requires Preprocess).
	DetectGates bool
	// UnitPure enables syntactic unit/pure elimination on the AIG.
	UnitPure bool
	// Strategy selects the universal elimination set.
	Strategy ElimStrategy
	// ReverseElimOrder inverts the copy-cost ordering (ablation).
	ReverseElimOrder bool
	// SweepThreshold triggers a SAT sweep when the matrix grows by this many
	// AND nodes since the last sweep; 0 disables sweeping.
	SweepThreshold int
	// SweepOptions configure individual sweeps.
	SweepOptions aig.SweepOptions
	// Workers, when nonzero, overrides the SAT worker-pool size of every
	// sweep (here and in the QBF back end): 1 is serial, negative uses
	// runtime.GOMAXPROCS(0). See aig.SweepOptions.Workers for the
	// determinism guarantees.
	Workers int
	// QBF configures the back-end QBF solver.
	QBF qbf.Options
	// NodeLimit bounds the AIG size (the analogue of the paper's 8 GB
	// memory limit); 0 means unlimited.
	NodeLimit int
	// Timeout bounds wall-clock solving time; 0 means unlimited.
	Timeout time.Duration
	// Certify records Skolem reconstruction steps during the solve and, on a
	// SAT verdict, extracts a per-existential Skolem certificate into
	// Result.Certificate (see internal/cert). Recording does not perturb the
	// pass schedule; extraction runs after the verdict.
	Certify bool
	// FreshOracle disables the persistent incremental SAT oracle pool: every
	// consumer (sweeps, elimination-set MaxSAT, the final check) builds a
	// fresh solver per query, as before the pool existed. Kept for
	// differential testing and A/B benchmarking; verdicts are identical
	// either way.
	FreshOracle bool
	// Budget, when non-nil, makes the solve cancellable and budgeted: the
	// pipeline runner, the MaxSAT elimination-set selection, SAT sweeps, and
	// the QBF back end (including its final SAT call) poll it and unwind
	// with status Timeout (deadline) or Cancelled (cancel, conflict/decision
	// caps); its node cap tightens NodeLimit (status Memout).
	Budget *budget.Budget
	// Trace, when non-nil, receives one structured event per executed
	// pipeline pass (this pipeline and the QBF back end's).
	Trace trace.Sink
}

// DefaultOptions mirror the configuration evaluated in the paper.
func DefaultOptions() Options {
	return Options{
		Preprocess:     true,
		DetectGates:    true,
		UnitPure:       true,
		Strategy:       ElimMaxSAT,
		SweepThreshold: 1024,
		SweepOptions:   aig.DefaultSweepOptions(),
		QBF:            qbf.DefaultOptions(),
	}
}

// Stats collects solver counters and the instrumentation the paper reports
// (MaxSAT selection time, unit/pure elimination time).
type Stats struct {
	Preprocess   PreprocessResult
	ElimSet      []cnf.Var
	ElimSetTime  time.Duration
	UnitPureTime time.Duration
	TotalTime    time.Duration

	UnivElims  int // Theorem 1 eliminations
	ExistElims int // Theorem 2 eliminations
	UnitElims  int
	PureElims  int
	CopiesMade int // existential copies introduced by Theorem 1
	Sweeps     int
	// Sweep aggregates the SAT-sweeping counters of the main loop (the QBF
	// back end keeps its own aggregate in QBF.Sweep).
	Sweep aig.SweepStats

	PeakAIGNodes int
	QBF          qbf.Stats
	DecidedBy    string // "preprocess", "constant", "qbf", "finalsat"

	// Oracle aggregates the reuse counters of the run's persistent
	// incremental SAT pool (zero when Options.FreshOracle disabled it).
	Oracle oracle.Stats
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	Sat    bool
	Stats  Stats
	// Certificate holds the extracted Skolem functions when Options.Certify
	// was set and the verdict is SAT; CertErr reports an extraction failure
	// (the verdict itself is unaffected — callers decide whether an
	// uncertified SAT is acceptable).
	Certificate *cert.Certificate
	CertErr     error
}

// Solver is the HQS DQBF solver.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// errTimeout is used internally to unwind on deadline.
var errTimeout = errors.New("core: timeout")

// budgetStop unwinds the solve when the shared budget is exhausted; err is
// the budget's reason.
type budgetStop struct{ err error }

// SolveDQBF decides a bare DQBF formula. It is the historical entry point,
// kept as a thin wrapper that lifts the formula into a Problem; new callers
// with format/kind provenance should use Solve directly.
func (s *Solver) SolveDQBF(f *dqbf.Formula) Result {
	return s.Solve(problem.FromDQBF(f))
}

// Solve decides the ingested problem by assembling and running the standard
// HQS pass pipeline. The problem must be a formula kind (DQBF or QBF); its
// formula is not modified.
func (s *Solver) Solve(p *problem.Problem) (res Result) {
	start := time.Now()
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	deadline := s.Opt.Budget.Deadline()
	if s.Opt.Timeout > 0 {
		if d := start.Add(s.Opt.Timeout); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	// Passes unwind via panic on resource exhaustion (aig.ErrNodeLimit) and
	// via stop errors otherwise; run below converts stop errors into the
	// sentinels this recover maps onto statuses. Panicking keeps the
	// assembly free of error plumbing.
	defer func() {
		switch r := recover().(type) {
		case nil:
		case aig.ErrNodeLimit:
			res.Status = Memout
		case budgetStop:
			if errors.Is(r.err, budget.ErrDeadline) {
				res.Status = Timeout
			} else {
				res.Status = Cancelled
			}
		case error:
			if r == errTimeout {
				res.Status = Timeout
				return
			}
			panic(r)
		default:
			panic(r)
		}
	}()

	if p.Formula == nil {
		panic("core: Solve requires a formula-kind problem (DQBF or QBF)")
	}
	work := p.Formula.Clone()
	st := &pipeline.State{
		Prefix:   pipeline.FormulaPrefix{F: work},
		Budget:   s.Opt.Budget,
		Deadline: deadline,
		Workers:  s.Opt.Workers,
		Problem:  p,
	}
	if s.Opt.Certify {
		st.Cert = cert.NewBuilder()
	}
	r := pipeline.NewRunner(st, s.Opt.Trace, "hqs")
	px := &hqsPipeline{
		s:        s,
		st:       st,
		work:     work,
		res:      &res,
		deadline: deadline,
		sweep:    pipeline.NewSweepPass(s.Opt.SweepThreshold, s.Opt.SweepOptions),
	}
	// Fold the pipeline's per-pass totals into the stats the paper reports;
	// deferred so budget-stopped solves report partial counters too.
	defer func() {
		up := r.Total("unitpure")
		res.Stats.UnitPureTime = up.Wall
		res.Stats.UnitElims = int(up.Counters["units"])
		res.Stats.PureElims = int(up.Counters["pures"])
		res.Stats.ElimSetTime = r.Total("elimset").Wall
		n, sst := px.sweep.Stats()
		res.Stats.Sweeps = n
		res.Stats.Sweep = sst
		if st.Oracle != nil {
			res.Stats.Oracle = st.Oracle.Stats()
		}
	}()

	// run executes one pass, converting pipeline stop errors into the
	// unwind sentinels; unexpected pass failures are solver bugs (or
	// injected faults) and escalate to a panic the service layer contains.
	run := func(p pipeline.Pass) {
		if _, err := r.Run(p); err != nil {
			switch {
			case errors.Is(err, pipeline.ErrTimeout):
				panic(errTimeout)
			case errors.Is(err, pipeline.ErrCancelled):
				panic(budgetStop{err: s.Opt.Budget.Err()})
			default:
				panic(fmt.Sprintf("core: %v", err))
			}
		}
	}
	decided := func() bool {
		if st.Decided {
			return true
		}
		if st.G != nil && st.Matrix.IsConst() {
			st.Decide(st.Matrix == aig.True, "constant")
			return true
		}
		return false
	}
	finish := func() Result {
		res.Status = Solved
		res.Sat = st.Sat
		res.Stats.DecidedBy = st.DecidedBy
		// Extraction replays against the original formula, after the verdict
		// and after every trace event, so certified runs keep bit-identical
		// pass schedules.
		if st.Cert != nil && st.Sat {
			res.Certificate, res.CertErr = st.Cert.Extract(p.Formula, st.G)
		}
		return res
	}

	// Standard HQS pipeline assembly (paper Fig. 3).
	if s.Opt.Preprocess {
		run(px.preprocess())
		if st.Decided {
			return finish()
		}
	}
	run(px.build())
	run(px.elimset())

	unitPure := pipeline.UnitPurePass{}
	drop := pipeline.DropSupportPass{}
	thm2, thm1 := px.thm2(), px.thm1()
	for {
		if decided() {
			return finish()
		}
		if s.Opt.UnitPure {
			run(unitPure)
			if decided() {
				return finish()
			}
		}
		run(drop)
		run(thm2)
		if decided() {
			return finish()
		}
		if !dqbf.IsCyclic(work) {
			break
		}
		run(thm1)
		if px.elimExhausted {
			break
		}
		run(px.sweep)
	}

	if decided() {
		return finish()
	}
	run(drop)
	run(px.qbf())
	return finish()
}

// eliminateUniversal applies Theorem 1 to universal variable x:
// ψ ≡ ∀-prefix without x : φ[0/x] ∧ φ[1/x][y'/y for y ∈ E_x], where every
// existential depending on x is duplicated in the positive cofactor with
// dependency set D_y ∖ {x}.
func (s *Solver) eliminateUniversal(g *aig.Graph, work *dqbf.Formula, m aig.Ref, x cnf.Var, nextVar *cnf.Var, st *Stats, cb *cert.Builder) aig.Ref {
	cof0 := g.Cofactor(m, x, false)
	cof1 := g.Cofactor(m, x, true)

	ren := make(map[cnf.Var]cnf.Var)
	for _, y := range work.Exist {
		if work.Deps[y].Has(x) {
			ren[y] = *nextVar
			*nextVar++
		}
	}
	cb.RecordExpand(x, ren)
	cof1 = g.Rename(cof1, ren)

	// Prefix update: drop x; D_y loses x; copies y' join with the same set.
	// Copies are appended in prefix order (not ren's map order) so the
	// resulting prefix — and with it the downstream pass schedule — is
	// deterministic, which the golden-trace tests pin.
	orig := append([]cnf.Var(nil), work.Exist...)
	pipeline.FormulaPrefix{F: work}.Remove(x)
	for _, y := range orig {
		yc, ok := ren[y]
		if !ok {
			continue
		}
		work.Exist = append(work.Exist, yc)
		work.Deps[yc] = work.Deps[y].Clone()
		if int(yc) > work.Matrix.NumVars {
			work.Matrix.NumVars = int(yc)
		}
	}
	st.UnivElims++
	st.CopiesMade += len(ren)
	return g.And(cof0, cof1)
}
