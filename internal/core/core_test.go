package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/qbf"
)

// paperExample1 is ∀x1∀x2 ∃y1(x1) ∃y2(x2) with matrix (y1↔x1)∧(y2↔x2):
// satisfiable, but with no equivalent QBF prefix.
func paperExample1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func crossExample() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func TestSolvePaperExample1(t *testing.T) {
	for _, opt := range testOptionMatrix() {
		res := New(opt).SolveDQBF(paperExample1())
		if res.Status != Solved || !res.Sat {
			t.Fatalf("opt %+v: got %v/%v, want solved SAT", opt, res.Status, res.Sat)
		}
	}
}

func TestSolveCrossExampleUnsat(t *testing.T) {
	for _, opt := range testOptionMatrix() {
		res := New(opt).SolveDQBF(crossExample())
		if res.Status != Solved || res.Sat {
			t.Fatalf("opt %+v: got %v/%v, want solved UNSAT", opt, res.Status, res.Sat)
		}
	}
}

// testOptionMatrix covers the solver feature combinations.
func testOptionMatrix() []Options {
	plain := Options{Strategy: ElimMaxSAT, QBF: qbf.Options{}}
	noPre := DefaultOptions()
	noPre.Preprocess = false
	noPre.DetectGates = false
	noUP := DefaultOptions()
	noUP.UnitPure = false
	greedy := DefaultOptions()
	greedy.Strategy = ElimGreedy
	all := DefaultOptions()
	all.Strategy = ElimAll
	rev := DefaultOptions()
	rev.ReverseElimOrder = true
	sweepy := DefaultOptions()
	sweepy.SweepThreshold = 1
	return []Options{DefaultOptions(), plain, noPre, noUP, greedy, all, rev, sweepy}
}

// randomDQBF generates a small random DQBF within brute-force reach.
func randomDQBF(rng *rand.Rand, nUniv, nExist, nClauses int) *dqbf.Formula {
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i := 0; i < nExist; i++ {
		y := cnf.Var(nUniv + i + 1)
		var deps []cnf.Var
		for _, x := range f.Univ {
			if rng.Intn(2) == 0 {
				deps = append(deps, x)
			}
		}
		f.AddExistential(y, deps...)
	}
	n := nUniv + nExist
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	opts := testOptionMatrix()
	for iter := 0; iter < 250; iter++ {
		f := randomDQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(10))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		opt := opts[iter%len(opts)]
		res := New(opt).SolveDQBF(f)
		if res.Status != Solved {
			t.Fatalf("iter %d: status %v", iter, res.Status)
		}
		if res.Sat != want {
			t.Fatalf("iter %d opt %+v: got %v want %v\nprefix %v\nclauses %v",
				iter, opt, res.Sat, want, f, f.Matrix.Clauses)
		}
	}
}

func TestRandomAllOptionsAgree(t *testing.T) {
	// Larger instances beyond brute force: every configuration must agree
	// with the default configuration.
	rng := rand.New(rand.NewSource(77))
	opts := testOptionMatrix()
	for iter := 0; iter < 40; iter++ {
		f := randomDQBF(rng, 2+rng.Intn(4), 2+rng.Intn(4), 5+rng.Intn(20))
		ref := New(DefaultOptions()).SolveDQBF(f)
		if ref.Status != Solved {
			t.Fatalf("iter %d: reference status %v", iter, ref.Status)
		}
		for _, opt := range opts {
			res := New(opt).SolveDQBF(f)
			if res.Status != Solved || res.Sat != ref.Sat {
				t.Fatalf("iter %d opt %+v: got %v/%v, reference %v",
					iter, opt, res.Status, res.Sat, ref.Sat)
			}
		}
	}
}

func TestTseitinCircuitInstances(t *testing.T) {
	// A DQBF whose matrix is a Tseitin-encoded circuit, to exercise gate
	// detection end to end: ∀x1∀x2 ∃y1(x1) ∃y2(x2), aux g = x1 ⊕ x2 (dep
	// both), constraint g ↔ (y1 ⊕ y2). Satisfiable: y1 = x1, y2 = x2.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)    // y1
	f.AddExistential(4, 2)    // y2
	f.AddExistential(5, 1, 2) // g: Tseitin output
	// g ↔ x1⊕x2
	f.Matrix.AddDimacsClause(-5, 1, 2)
	f.Matrix.AddDimacsClause(-5, -1, -2)
	f.Matrix.AddDimacsClause(5, 1, -2)
	f.Matrix.AddDimacsClause(5, -1, 2)
	// g ↔ y1⊕y2 (forces the functions to track the inputs' xor)
	f.Matrix.AddDimacsClause(-5, 3, 4)
	f.Matrix.AddDimacsClause(-5, -3, -4)
	f.Matrix.AddDimacsClause(5, 3, -4)
	f.Matrix.AddDimacsClause(5, -3, 4)
	want, err := dqbf.BruteForce(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range testOptionMatrix() {
		res := New(opt).SolveDQBF(f)
		if res.Status != Solved || res.Sat != want {
			t.Fatalf("opt %+v: got %v/%v want %v", opt, res.Status, res.Sat, want)
		}
	}
	// With gate detection on, at least one gate must be found.
	res := New(DefaultOptions()).SolveDQBF(f)
	if len(res.Stats.Preprocess.Gates) == 0 {
		t.Fatal("expected XOR gate detection")
	}
}

// hardInstance builds an instance that preprocessing alone cannot decide
// (ternary clauses only, incomparable dependency sets).
func hardInstance(seed int64, nUniv, nExist int) *dqbf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i := 0; i < nExist; i++ {
		y := cnf.Var(nUniv + i + 1)
		var deps []cnf.Var
		for j, x := range f.Univ {
			if j%nExist != i { // systematically incomparable sets
				deps = append(deps, x)
			}
		}
		f.AddExistential(y, deps...)
	}
	n := nUniv + nExist
	for i := 0; i < 6*n; i++ {
		c := make(cnf.Clause, 0, 3)
		for len(c) < 3 {
			l := cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0)
			if !c.HasVar(l.Var()) {
				c = append(c, l)
			}
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f
}

func TestTimeout(t *testing.T) {
	opt := DefaultOptions()
	opt.Preprocess = false
	opt.DetectGates = false
	opt.Timeout = time.Nanosecond
	res := New(opt).SolveDQBF(hardInstance(1, 6, 3))
	if res.Status != Timeout {
		t.Fatalf("status = %v, want timeout", res.Status)
	}
}

func TestMemout(t *testing.T) {
	opt := DefaultOptions()
	opt.Preprocess = false
	opt.DetectGates = false
	opt.NodeLimit = 16
	res := New(opt).SolveDQBF(hardInstance(2, 6, 3))
	if res.Status != Memout {
		t.Fatalf("status = %v, want memout", res.Status)
	}
}

func TestStatsInstrumentation(t *testing.T) {
	// Preprocessing solves Example 1 outright (the equivalences y1≡x1,
	// y2≡x2 empty the matrix); verify that path first.
	res := New(DefaultOptions()).SolveDQBF(paperExample1())
	if res.Stats.DecidedBy != "preprocess" || !res.Sat {
		t.Fatalf("Example 1 should be decided by preprocessing, got %+v", res.Stats)
	}
	// Without preprocessing the full pipeline runs: MaxSAT selection must
	// pick exactly one universal, and AIG stats must be tracked.
	opt := DefaultOptions()
	opt.Preprocess = false
	opt.DetectGates = false
	res = New(opt).SolveDQBF(paperExample1())
	st := res.Stats
	if res.Status != Solved || !res.Sat {
		t.Fatalf("got %v/%v", res.Status, res.Sat)
	}
	if st.TotalTime <= 0 {
		t.Error("TotalTime not recorded")
	}
	if len(st.ElimSet) != 1 {
		t.Errorf("Example 1 needs exactly one universal eliminated, got %v", st.ElimSet)
	}
	if st.DecidedBy == "" {
		t.Error("DecidedBy not set")
	}
	if st.PeakAIGNodes == 0 {
		t.Error("PeakAIGNodes not tracked")
	}
}

func TestEmptyAndTrivialFormulas(t *testing.T) {
	// Empty matrix: satisfied.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	res := New(DefaultOptions()).SolveDQBF(f)
	if !res.Sat {
		t.Fatal("empty matrix must be SAT")
	}
	// Empty clause: unsatisfied.
	f2 := dqbf.New()
	f2.AddExistential(1)
	f2.Matrix.Clauses = append(f2.Matrix.Clauses, cnf.Clause{})
	res2 := New(DefaultOptions()).SolveDQBF(f2)
	if res2.Sat {
		t.Fatal("empty clause must be UNSAT")
	}
	// No quantifiers, trivially satisfiable matrix handled via free-var-less
	// formula with one clause over an existential.
	f3 := dqbf.New()
	f3.AddExistential(1)
	f3.Matrix.AddDimacsClause(1)
	if res := New(DefaultOptions()).SolveDQBF(f3); !res.Sat {
		t.Fatal("∃y: y must be SAT")
	}
}

func TestPureSATInstances(t *testing.T) {
	// DQBF with no universals degenerates to SAT.
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 30; iter++ {
		f := dqbf.New()
		n := 3 + rng.Intn(5)
		for i := 1; i <= n; i++ {
			f.AddExistential(cnf.Var(i))
		}
		for i := 0; i < 4+rng.Intn(12); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			f.Matrix.Clauses = append(f.Matrix.Clauses, c)
		}
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		res := New(DefaultOptions()).SolveDQBF(f)
		if res.Status != Solved || res.Sat != want {
			t.Fatalf("iter %d: got %v/%v want %v", iter, res.Status, res.Sat, want)
		}
	}
}

func TestInputNotModified(t *testing.T) {
	f := paperExample1()
	before := f.String() + f.Matrix.Clauses[0].String()
	New(DefaultOptions()).SolveDQBF(f)
	after := f.String() + f.Matrix.Clauses[0].String()
	if before != after {
		t.Fatal("Solve modified its input")
	}
}

func TestEliminateUniversalSemantics(t *testing.T) {
	// Theorem 1 check: eliminating a universal from a random DQBF must
	// preserve the brute-force verdict.
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		f := randomDQBF(rng, 2, 2, 2+rng.Intn(8))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		// Apply Theorem 1 manually to universal variable 1, then re-decide
		// with the default solver.
		g := aig.New()
		m := BuildMatrix(g, f.Matrix, nil)
		work := f.Clone()
		s := New(DefaultOptions())
		next := cnf.Var(f.Matrix.NumVars + 1)
		var st Stats
		m2 := s.eliminateUniversal(g, work, m, 1, &next, &st, nil)
		// Decide the reduced formula via the QBF/HQS machinery on the AIG:
		// rebuild a CNF via Tseitin and solve as DQBF.
		got := solveAIGAsDQBF(t, g, m2, work)
		if got != want {
			t.Fatalf("iter %d: after Thm.1 got %v want %v (clauses %v)",
				iter, got, want, f.Matrix.Clauses)
		}
	}
}

// solveAIGAsDQBF decides a DQBF whose matrix is an AIG by Tseitin-encoding
// the matrix back to CNF with fresh innermost existentials.
func solveAIGAsDQBF(t *testing.T, g *aig.Graph, m aig.Ref, work *dqbf.Formula) bool {
	t.Helper()
	form, lit := g.ToFormula(m, cnf.Var(work.Matrix.NumVars))
	nf := dqbf.New()
	for _, x := range work.Univ {
		nf.AddUniversal(x)
	}
	for _, y := range work.Exist {
		nf.AddExistential(y, work.Deps[y].Vars()...)
	}
	// Tseitin auxiliaries depend on everything.
	quant := dqbf.NewVarSet(append(nf.Univ, nf.Exist...)...)
	for v := cnf.Var(1); int(v) <= form.NumVars; v++ {
		if !quant.Has(v) {
			nf.AddExistential(v, nf.Univ...)
		}
	}
	nf.Matrix = form
	nf.Matrix.AddClause(lit)
	res := New(DefaultOptions()).SolveDQBF(nf)
	if res.Status != Solved {
		t.Fatalf("nested solve status %v", res.Status)
	}
	return res.Sat
}
