package core

import (
	"fmt"
	"sort"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/maxsat"
)

// ElimStrategy selects how the set of universal variables to eliminate is
// chosen.
type ElimStrategy int

const (
	// ElimMaxSAT computes a minimum set via partial MaxSAT (the paper's
	// strategy, Equations 1 and 2).
	ElimMaxSAT ElimStrategy = iota
	// ElimGreedy repeatedly picks the universal variable occurring in the
	// most unresolved binary cycles.
	ElimGreedy
	// ElimAll eliminates every universal variable (the ICCD'13 predecessor
	// strategy: reduce all the way to SAT).
	ElimAll
)

func (s ElimStrategy) String() string {
	switch s {
	case ElimMaxSAT:
		return "maxsat"
	case ElimGreedy:
		return "greedy"
	case ElimAll:
		return "all"
	default:
		return fmt.Sprintf("ElimStrategy(%d)", int(s))
	}
}

// SelectEliminationSet returns the universal variables to eliminate so that
// the dependency graph becomes acyclic, according to the strategy.
func SelectEliminationSet(f *dqbf.Formula, strategy ElimStrategy) ([]cnf.Var, error) {
	return SelectEliminationSetBudget(f, strategy, nil)
}

// SelectEliminationSetBudget is SelectEliminationSet under a cancellable
// budget: the MaxSAT strategy's oracle polls b and the call fails with an
// error wrapping maxsat.ErrBudget when stopped.
func SelectEliminationSetBudget(f *dqbf.Formula, strategy ElimStrategy, b *budget.Budget) ([]cnf.Var, error) {
	return selectEliminationSet(f, strategy, b, nil)
}

// selectEliminationSet additionally threads a persistent MaxSAT backend
// into the MaxSAT strategy (nil keeps the fresh-solver path); selections of
// one pipeline run then share learned clauses across strengthening steps.
func selectEliminationSet(f *dqbf.Formula, strategy ElimStrategy, b *budget.Budget, be *maxsat.Backend) ([]cnf.Var, error) {
	cycles := dqbf.BinaryCycles(f)
	if len(cycles) == 0 {
		return nil, nil
	}
	switch strategy {
	case ElimMaxSAT:
		return selectMaxSAT(f, cycles, b, be)
	case ElimGreedy:
		return selectGreedy(f, cycles)
	case ElimAll:
		return append([]cnf.Var(nil), f.Univ...), nil
	default:
		return nil, fmt.Errorf("core: unknown elimination strategy %v", strategy)
	}
}

// selectMaxSAT builds the partial MaxSAT instance of Equations 1 and 2:
// a selector variable x̂ per universal x (soft clause ¬x̂); for each binary
// cycle {y,y'} the hard constraint (⋀_{x∈D_y∖D_y'} x̂) ∨ (⋀_{x∈D_y'∖D_y} x̂),
// Tseitin-encoded with one auxiliary variable per conjunction.
func selectMaxSAT(f *dqbf.Formula, cycles [][2]cnf.Var, b *budget.Budget, be *maxsat.Backend) ([]cnf.Var, error) {
	m := maxsat.New(0)
	m.Budget = b
	m.Backend = be
	sel := make(map[cnf.Var]cnf.Var) // universal -> selector
	selOf := func(x cnf.Var) cnf.Lit {
		v, ok := sel[x]
		if !ok {
			v = m.NewVar()
			sel[x] = v
			m.AddSoft(cnf.NegLit(v))
		}
		return cnf.PosLit(v)
	}
	conj := func(xs []cnf.Var) cnf.Lit {
		// Tseitin a ↔ ⋀ x̂.
		a := cnf.PosLit(m.NewVar())
		long := make([]cnf.Lit, 0, len(xs)+1)
		long = append(long, a)
		for _, x := range xs {
			s := selOf(x)
			m.AddHard(a.Not(), s)
			long = append(long, s.Not())
		}
		m.AddHard(long...)
		return a
	}
	for _, cy := range cycles {
		y, z := cy[0], cy[1]
		dy := f.Deps[y].Diff(f.Deps[z]).Vars()
		dz := f.Deps[z].Diff(f.Deps[y]).Vars()
		// Both sides are nonempty by construction of a binary cycle.
		a := conj(dy)
		b := conj(dz)
		m.AddHard(a, b)
	}
	res, err := m.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: elimination-set MaxSAT failed: %w", err)
	}
	var out []cnf.Var
	for x, v := range sel {
		if res.Model.Get(v) {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// selectGreedy breaks cycles by repeatedly choosing the universal variable
// whose elimination resolves the most remaining binary cycles.
func selectGreedy(f *dqbf.Formula, cycles [][2]cnf.Var) ([]cnf.Var, error) {
	chosen := dqbf.NewVarSet()
	var out []cnf.Var
	unresolved := func(cy [2]cnf.Var) bool {
		dy := f.Deps[cy[0]].Diff(f.Deps[cy[1]]).Diff(chosen)
		dz := f.Deps[cy[1]].Diff(f.Deps[cy[0]]).Diff(chosen)
		return !dy.Empty() && !dz.Empty()
	}
	remaining := append([][2]cnf.Var(nil), cycles...)
	for {
		var open [][2]cnf.Var
		for _, cy := range remaining {
			if unresolved(cy) {
				open = append(open, cy)
			}
		}
		if len(open) == 0 {
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out, nil
		}
		counts := make(map[cnf.Var]int)
		for _, cy := range open {
			for _, x := range f.Deps[cy[0]].Diff(f.Deps[cy[1]]).Diff(chosen).Vars() {
				counts[x]++
			}
			for _, x := range f.Deps[cy[1]].Diff(f.Deps[cy[0]]).Diff(chosen).Vars() {
				counts[x]++
			}
		}
		best := cnf.Var(0)
		for x, c := range counts {
			if best == 0 || c > counts[best] || (c == counts[best] && x < best) {
				best = x
			}
		}
		chosen.Add(best)
		out = append(out, best)
		remaining = open
	}
}

// OrderByCopyCost orders the elimination set by the number of existential
// copies an elimination would introduce (|E_x| ascending), the paper's
// ordering heuristic. Ties break by variable index for determinism.
func OrderByCopyCost(f *dqbf.Formula, vars []cnf.Var) []cnf.Var {
	cost := make(map[cnf.Var]int, len(vars))
	for _, x := range vars {
		n := 0
		for _, y := range f.Exist {
			if f.Deps[y].Has(x) {
				n++
			}
		}
		cost[x] = n
	}
	out := append([]cnf.Var(nil), vars...)
	sort.Slice(out, func(i, j int) bool {
		if cost[out[i]] != cost[out[j]] {
			return cost[out[i]] < cost[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
