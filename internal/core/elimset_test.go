package core

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// elimMakesAcyclic checks that removing the given universals from all
// dependency sets leaves an acyclic dependency graph.
func elimMakesAcyclic(f *dqbf.Formula, elim []cnf.Var) bool {
	g := f.Clone()
	for _, x := range elim {
		for _, d := range g.Deps {
			d.Remove(x)
		}
	}
	return !dqbf.IsCyclic(g)
}

func mkPrefix(nUniv int, deps ...[]cnf.Var) *dqbf.Formula {
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i, d := range deps {
		f.AddExistential(cnf.Var(nUniv+i+1), d...)
	}
	return f
}

func TestSelectEmptyForAcyclic(t *testing.T) {
	f := mkPrefix(2, []cnf.Var{1}, []cnf.Var{1, 2})
	for _, strat := range []ElimStrategy{ElimMaxSAT, ElimGreedy, ElimAll} {
		elim, err := SelectEliminationSet(f, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(elim) != 0 {
			t.Fatalf("%v: acyclic prefix needs no elimination, got %v", strat, elim)
		}
	}
}

func TestSelectSingleCycle(t *testing.T) {
	// ∃y1(x1) ∃y2(x2): one cycle, minimum set has size 1.
	f := mkPrefix(2, []cnf.Var{1}, []cnf.Var{2})
	elim, err := SelectEliminationSet(f, ElimMaxSAT)
	if err != nil {
		t.Fatal(err)
	}
	if len(elim) != 1 {
		t.Fatalf("elim = %v, want one variable", elim)
	}
	if !elimMakesAcyclic(f, elim) {
		t.Fatal("selected set does not break the cycle")
	}
}

func TestSelectSharedVariableOptimum(t *testing.T) {
	// y1(x1,x3), y2(x2,x3), y3(x1), y4(x2): four binary cycles whose
	// minimum hitting structure needs two variables (e.g. {x1,x2}).
	f := mkPrefix(3,
		[]cnf.Var{1, 3}, []cnf.Var{2, 3},
		[]cnf.Var{1}, []cnf.Var{2})
	elim, err := SelectEliminationSet(f, ElimMaxSAT)
	if err != nil {
		t.Fatal(err)
	}
	if len(elim) != 2 {
		t.Fatalf("elim = %v, want exactly two variables", elim)
	}
	if !elimMakesAcyclic(f, elim) {
		t.Fatal("selected set does not linearize")
	}
}

func TestSelectMultiVarDiffSets(t *testing.T) {
	// y1(x1,x2) vs y2(x3): must eliminate {x1,x2} or {x3}; optimum {x3}.
	f := mkPrefix(3, []cnf.Var{1, 2}, []cnf.Var{3})
	elim, err := SelectEliminationSet(f, ElimMaxSAT)
	if err != nil {
		t.Fatal(err)
	}
	if len(elim) != 1 || elim[0] != 3 {
		t.Fatalf("elim = %v, want [3]", elim)
	}
}

func TestGreedyBreaksCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		f := randomDQBF(rng, 2+rng.Intn(5), 2+rng.Intn(5), 1)
		elim, err := SelectEliminationSet(f, ElimGreedy)
		if err != nil {
			t.Fatal(err)
		}
		if !elimMakesAcyclic(f, elim) {
			t.Fatalf("iter %d: greedy set %v does not linearize %v", iter, elim, f)
		}
	}
}

func TestMaxSATOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 80; iter++ {
		nUniv := 2 + rng.Intn(4)
		f := randomDQBF(rng, nUniv, 2+rng.Intn(4), 1)
		elim, err := SelectEliminationSet(f, ElimMaxSAT)
		if err != nil {
			t.Fatal(err)
		}
		if !elimMakesAcyclic(f, elim) {
			t.Fatalf("iter %d: MaxSAT set %v does not linearize", iter, elim)
		}
		// Brute-force the true minimum over all subsets of universals.
		best := len(f.Univ) + 1
		for bits := 0; bits < 1<<nUniv; bits++ {
			var sub []cnf.Var
			for i, x := range f.Univ {
				if bits&(1<<i) != 0 {
					sub = append(sub, x)
				}
			}
			if elimMakesAcyclic(f, sub) && len(sub) < best {
				best = len(sub)
			}
		}
		if len(elim) != best {
			t.Fatalf("iter %d: MaxSAT chose %d vars, optimum is %d (%v)", iter, len(elim), best, f)
		}
	}
}

func TestOrderByCopyCost(t *testing.T) {
	// x1 in 3 dep sets, x2 in 1, x3 in 2.
	f := mkPrefix(3,
		[]cnf.Var{1, 3}, []cnf.Var{1}, []cnf.Var{1, 2, 3})
	got := OrderByCopyCost(f, []cnf.Var{1, 2, 3})
	want := []cnf.Var{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestElimStrategyString(t *testing.T) {
	if ElimMaxSAT.String() != "maxsat" || ElimGreedy.String() != "greedy" || ElimAll.String() != "all" {
		t.Fatal("ElimStrategy.String broken")
	}
}
