package core

import (
	"sort"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// detectGates recognizes Tseitin-encoded AND/OR/XOR gate definitions in the
// matrix (Section III-C): the defining clauses are removed and the
// relationship is stored as a Gate so that the AIG construction composes the
// gate function in directly — the auxiliary output variable then needs no
// explicit elimination.
//
// A definition g ↔ f(l1..ln) may be extracted only if f is a legal Skolem
// function for g: every universal input must be in D_g and every existential
// input's dependency set must be contained in D_g. Definitions must form a
// DAG; a gate that would close a definition cycle is skipped.
func (p *preprocessor) detectGates() {
	m := p.f.Matrix

	// Index clauses: key = sorted literal tuple.
	removed := make([]bool, len(m.Clauses))
	binIdx := make(map[[2]cnf.Lit]int)
	for i, c := range m.Clauses {
		if len(c) == 2 {
			a, b := c[0], c[1]
			if a > b {
				a, b = b, a
			}
			binIdx[[2]cnf.Lit{a, b}] = i
		}
	}
	findBin := func(a, b cnf.Lit) (int, bool) {
		if a > b {
			a, b = b, a
		}
		i, ok := binIdx[[2]cnf.Lit{a, b}]
		if ok && removed[i] {
			return 0, false
		}
		return i, ok
	}

	defined := make(map[cnf.Var]bool)        // gate outputs already defined
	usesOf := make(map[cnf.Var][]cnf.Var)    // gate output -> inputs that are gate outputs
	reaches := func(from, to cnf.Var) bool { // DFS over definition edges
		var rec func(cnf.Var) bool
		seen := map[cnf.Var]bool{}
		rec = func(v cnf.Var) bool {
			if v == to {
				return true
			}
			if seen[v] {
				return false
			}
			seen[v] = true
			for _, w := range usesOf[v] {
				if rec(w) {
					return true
				}
			}
			return false
		}
		return rec(from)
	}

	validSkolemInputs := func(out cnf.Var, ins []cnf.Lit) bool {
		dg := p.f.Deps[out]
		for _, l := range ins {
			v := l.Var()
			if v == out {
				return false
			}
			if p.f.IsUniversal(v) {
				if !dg.Has(v) {
					return false
				}
				continue
			}
			d, ok := p.f.Deps[v]
			if !ok || !d.SubsetOf(dg) {
				return false
			}
		}
		return true
	}

	acceptGate := func(g Gate, clauseIdx []int) {
		for _, i := range clauseIdx {
			removed[i] = true
		}
		p.cert.RecordGate(g.Out, g.OutNeg, g.Kind == GateXor, g.Ins)
		defined[g.Out] = true
		for _, l := range g.Ins {
			if p.f.IsExistential(l.Var()) {
				usesOf[g.Out] = append(usesOf[g.Out], l.Var())
			}
		}
		p.res.Gates = append(p.res.Gates, g)
	}

	// AND/OR detection: a clause (go ∨ ¬l1 ∨ ... ∨ ¬ln) with binaries
	// (¬go ∨ li) for all i encodes go ↔ l1∧...∧ln. If go appears negatively
	// in the long clause the same pattern encodes an OR.
	for i, c := range m.Clauses {
		if removed[i] || len(c) < 3 {
			continue
		}
		for _, outLit := range c {
			out := outLit.Var()
			if !p.f.IsExistential(out) || defined[out] {
				continue
			}
			ins := make([]cnf.Lit, 0, len(c)-1)
			idxs := []int{i}
			ok := true
			for _, l := range c {
				if l == outLit {
					continue
				}
				if l.Var() == out {
					ok = false
					break
				}
				in := l.Not()
				bi, found := findBin(outLit.Not(), in)
				if !found {
					ok = false
					break
				}
				ins = append(ins, in)
				idxs = append(idxs, bi)
			}
			if !ok || !validSkolemInputs(out, ins) {
				continue
			}
			// Cycle check: some input's definition must not reach out.
			cyclic := false
			for _, l := range ins {
				if defined[l.Var()] && reaches(l.Var(), out) {
					cyclic = true
					break
				}
			}
			if cyclic {
				continue
			}
			// outLit positive: out ↔ AND(ins). Negative: ¬out ↔ AND(ins).
			acceptGate(Gate{Kind: GateAnd, Out: out, OutNeg: outLit.Neg(), Ins: ins}, idxs)
			break
		}
	}

	// XOR detection: four ternary clauses over the same variable triple with
	// the parity pattern of g ↔ a ⊕ b.
	type triple [3]cnf.Var
	ternary := make(map[triple][]int)
	for i, c := range m.Clauses {
		if removed[i] || len(c) != 3 {
			continue
		}
		vs := []cnf.Var{c[0].Var(), c[1].Var(), c[2].Var()}
		sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
		if vs[0] == vs[1] || vs[1] == vs[2] {
			continue
		}
		ternary[triple{vs[0], vs[1], vs[2]}] = append(ternary[triple{vs[0], vs[1], vs[2]}], i)
	}
	// Iterate triples in sorted order, not map order: detection consumes
	// clauses and marks outputs defined, so which overlapping candidate wins
	// — and the order gates are composed into the AIG — must be reproducible.
	triples := make([]triple, 0, len(ternary))
	for vs := range ternary {
		triples = append(triples, vs)
	}
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, vs := range triples {
		idxs := ternary[vs]
		if len(idxs) < 4 {
			continue
		}
		// Collect the sign patterns present (bit i = literal of vs[i] negative).
		pat := make(map[int]int) // sign pattern -> clause index
		for _, i := range idxs {
			if removed[i] {
				continue
			}
			mask := 0
			for _, l := range m.Clauses[i] {
				for k, v := range vs {
					if l.Var() == v && l.Neg() {
						mask |= 1 << k
					}
				}
			}
			pat[mask] = i
		}
		// g ↔ a⊕b over (g,a,b) = (vs[k], others): clauses are the four sign
		// patterns with an odd/even structure. For output position k, the
		// encoding's clauses as sign masks are those where the parity of all
		// three negation bits is odd... derive directly: clauses of
		// (¬g∨a∨b)(¬g∨¬a∨¬b)(g∨a∨¬b)(g∨¬a∨b) — masks with even total parity
		// encode g↔a⊕b; masks with odd parity encode g↔¬(a⊕b)=g↔a↔b.
		for k := 0; k < 3; k++ {
			out := vs[k]
			if !p.f.IsExistential(out) || defined[out] {
				continue
			}
			var others []cnf.Var
			for j, v := range vs {
				if j != k {
					others = append(others, v)
				}
			}
			// Check XOR pattern (even-parity masks): {k-bit set with others
			// equal} ∪ {k-bit clear with others differing}… enumerate the
			// 4 masks of g↔a⊕b directly.
			kb := 1 << k
			var a, b int
			switch k {
			case 0:
				a, b = 1, 2
			case 1:
				a, b = 0, 2
			default:
				a, b = 0, 1
			}
			ab, bb := 1<<a, 1<<b
			// g ↔ a⊕b ≡ CNF {(¬g a b) (¬g ¬a ¬b) (g a ¬b) (g ¬a b)}
			xorMasks := []int{kb, kb | ab | bb, bb, ab}
			// g ↔ ¬(a⊕b): complement g's sign in each clause.
			xnorMasks := []int{0, ab | bb, kb | bb, kb | ab}
			match := func(masks []int) bool {
				for _, mk := range masks {
					i, ok := pat[mk]
					if !ok || removed[i] {
						return false
					}
				}
				return true
			}
			var outNeg bool
			var masks []int
			if match(xorMasks) {
				outNeg = false
				masks = xorMasks
			} else if match(xnorMasks) {
				outNeg = true
				masks = xnorMasks
			} else {
				continue
			}
			ins := []cnf.Lit{cnf.PosLit(others[0]), cnf.PosLit(others[1])}
			if !validSkolemInputs(out, ins) {
				continue
			}
			cyclic := false
			for _, l := range ins {
				if defined[l.Var()] && reaches(l.Var(), out) {
					cyclic = true
					break
				}
			}
			if cyclic {
				continue
			}
			var ci []int
			for _, mk := range masks {
				ci = append(ci, pat[mk])
			}
			acceptGate(Gate{Kind: GateXor, Out: out, OutNeg: outNeg, Ins: ins}, ci)
			break
		}
	}

	// Drop the defining clauses from the matrix.
	if len(p.res.Gates) > 0 {
		out := m.Clauses[:0]
		for i, c := range m.Clauses {
			if !removed[i] {
				out = append(out, c)
			}
		}
		m.Clauses = out
		// Gate outputs leave the prefix: they are defined, not free.
		for _, g := range p.res.Gates {
			p.removeExistentialKeepDeps(g.Out)
		}
	}
}

// removeExistentialKeepDeps removes y from the existential prefix without
// touching other dependency sets (the variable is now structurally defined).
func (p *preprocessor) removeExistentialKeepDeps(y cnf.Var) {
	for i, v := range p.f.Exist {
		if v == y {
			p.f.Exist = append(p.f.Exist[:i], p.f.Exist[i+1:]...)
			break
		}
	}
	delete(p.f.Deps, y)
}

// gateFanins returns, for testing, the set of variables feeding gate g.
func gateFanins(g Gate) *dqbf.VarSet {
	s := dqbf.NewVarSet()
	for _, l := range g.Ins {
		s.Add(l.Var())
	}
	return s
}
