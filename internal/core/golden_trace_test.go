package core_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/pec"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// goldenLine is the stable projection of a trace event: the pass sequence
// and whether each pass changed the state. Counters and timings are
// deliberately excluded — they vary with machine speed and incidental
// implementation detail; the pass schedule and the verdict must not.
type goldenLine struct {
	Stage   string `json:"stage"`
	Pass    string `json:"pass"`
	Changed bool   `json:"changed"`
}

func goldenTrace(t *testing.T, f *dqbf.Formula, certify bool) (string, core.Result) {
	t.Helper()
	rec := trace.NewRecorder(0)
	opt := core.DefaultOptions()
	opt.Trace = rec
	opt.Workers = 1 // serial sweeps, so the pass schedule is deterministic
	opt.Certify = certify
	res := core.New(opt).SolveDQBF(f)
	if res.Status != core.Solved {
		t.Fatalf("status %v, want solved", res.Status)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "{\"verdict\":%q}\n", map[bool]string{true: "SAT", false: "UNSAT"}[res.Sat])
	for _, ev := range rec.Events() {
		line, err := json.Marshal(goldenLine{Stage: ev.Stage, Pass: ev.Pass, Changed: ev.Changed})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteString("\n")
	}
	return b.String(), res
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("pass schedule diverged from %s (run with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenTraceExample1 pins the pass schedule and verdict of the
// repository's worked example: any change to the pipeline assembly, pass
// ordering, or elimination behavior shows up as a diff against the
// checked-in golden JSONL.
func TestGoldenTraceExample1(t *testing.T) {
	fh, err := os.Open(filepath.Join("..", "..", "examples", "example1.dqdimacs"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	f, err := dqbf.ParseDQDIMACS(fh)
	if err != nil {
		t.Fatal(err)
	}
	got, res := goldenTrace(t, f, false)
	if !res.Sat {
		t.Errorf("example1 must be SAT")
	}
	checkGolden(t, "golden_trace_example1.jsonl", got)
	certifiedGoldenTrace(t, f, got)
}

// certifiedGoldenTrace re-solves with certification on and requires the
// identical pass schedule (extraction must not perturb the pipeline) plus a
// certificate the independent checker accepts.
func certifiedGoldenTrace(t *testing.T, f *dqbf.Formula, want string) {
	t.Helper()
	got, res := goldenTrace(t, f, true)
	if got != want {
		t.Errorf("certified pass schedule diverged from uncertified\n--- certified ---\n%s--- uncertified ---\n%s", got, want)
	}
	if res.CertErr != nil {
		t.Fatalf("certificate extraction failed: %v", res.CertErr)
	}
	if err := cert.Check(f, res.Certificate); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
}

// TestGoldenTracePECAdder pins the pass schedule on a PEC instance of the
// paper's workload family: a 3-bit carry-lookahead adder checked against a
// ripple-carry specification with two per-bit cells black-boxed (two boxes
// with incomparable input cones — the genuinely DQBF case).
func TestGoldenTracePECAdder(t *testing.T) {
	spec := circuit.RippleCarryAdder(3)
	impl := circuit.CarryLookaheadAdder(3)
	var groups [][]int
	for _, name := range []string{"g0", "p2"} {
		id := impl.Signal(name)
		if id < 0 {
			t.Fatalf("no signal %q", name)
		}
		groups = append(groups, []int{id})
	}
	incomplete, boxes, err := pec.CutBoxes(impl, groups)
	if err != nil {
		t.Fatal(err)
	}
	f, err := (&pec.Problem{Spec: spec, Impl: incomplete, Boxes: boxes}).ToDQBF()
	if err != nil {
		t.Fatal(err)
	}
	got, res := goldenTrace(t, f, false)
	if !res.Sat {
		t.Errorf("correct adder cut must be realizable (SAT)")
	}
	checkGolden(t, "golden_trace_pecadder.jsonl", got)
	certifiedGoldenTrace(t, f, got)
}
