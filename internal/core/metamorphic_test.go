package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dqbf"
)

// The metamorphic suite checks verdict invariants no DQBF solver may break:
// renaming variables, shuffling or duplicating clauses, and extending
// dependency sets (the monotone direction of the paper's Theorem 2 intuition:
// a Skolem function over D_y still works over any D' ⊇ D_y, so adding
// dependencies can only keep a SAT formula SAT). Each transformation runs
// over the pinned-seed random generator shared with dqbffuzz, so any failure
// reproduces from (seed, index) alone.

// solveVerdict decides f with the default options, failing the test on a
// non-verdict.
func solveVerdict(t *testing.T, f *dqbf.Formula) bool {
	t.Helper()
	res := core.New(core.DefaultOptions()).SolveDQBF(f)
	if res.Status != core.Solved {
		t.Fatalf("status %v, want solved", res.Status)
	}
	return res.Sat
}

// renameFormula maps every variable v to perm[v], preserving the quantifier
// structure.
func renameFormula(f *dqbf.Formula, perm map[cnf.Var]cnf.Var) *dqbf.Formula {
	g := dqbf.New()
	for _, x := range f.Univ {
		g.AddUniversal(perm[x])
	}
	for _, y := range f.Exist {
		var deps []cnf.Var
		for _, x := range f.Deps[y].Vars() {
			deps = append(deps, perm[x])
		}
		g.AddExistential(perm[y], deps...)
	}
	for _, c := range f.Matrix.Clauses {
		nc := make(cnf.Clause, len(c))
		for i, l := range c {
			nc[i] = cnf.NewLit(perm[l.Var()], l.Neg())
		}
		g.Matrix.Clauses = append(g.Matrix.Clauses, nc)
	}
	return g
}

// TestMetamorphicRenaming applies a random variable permutation; the verdict
// must not change.
func TestMetamorphicRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(12))
		want := solveVerdict(t, f)

		nv := len(f.Univ) + len(f.Exist)
		vars := make([]cnf.Var, 0, nv)
		for v := cnf.Var(1); v <= cnf.Var(nv); v++ {
			vars = append(vars, v)
		}
		perm := make(map[cnf.Var]cnf.Var, nv)
		for j, k := range rng.Perm(nv) {
			perm[vars[j]] = vars[k]
		}
		got := solveVerdict(t, renameFormula(f, perm))
		if got != want {
			t.Fatalf("instance %d: renamed verdict %v, original %v (perm %v)\nclauses %v",
				i, got, want, perm, f.Matrix.Clauses)
		}
	}
}

// TestMetamorphicClauseShuffleDup shuffles the clause list and duplicates a
// random subset; conjunction is commutative and idempotent, so the verdict
// must not change.
func TestMetamorphicClauseShuffleDup(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 50; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(12))
		want := solveVerdict(t, f)

		g := f.Clone()
		rng.Shuffle(len(g.Matrix.Clauses), func(a, b int) {
			g.Matrix.Clauses[a], g.Matrix.Clauses[b] = g.Matrix.Clauses[b], g.Matrix.Clauses[a]
		})
		for _, c := range f.Matrix.Clauses {
			if rng.Intn(2) == 0 {
				g.Matrix.Clauses = append(g.Matrix.Clauses, append(cnf.Clause(nil), c...))
			}
		}
		got := solveVerdict(t, g)
		if got != want {
			t.Fatalf("instance %d: shuffled/duplicated verdict %v, original %v\nclauses %v",
				i, got, want, f.Matrix.Clauses)
		}
	}
}

// TestMetamorphicDependencyExtension adds random universals to random
// dependency sets. Extension is monotone: every Skolem function of the
// original formula is still admissible, so SAT must stay SAT (UNSAT may
// legitimately flip to SAT, which the test accepts).
func TestMetamorphicDependencyExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 60; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(12))
		if !solveVerdict(t, f) {
			continue
		}
		checked++
		g := f.Clone()
		grew := false
		for _, y := range g.Exist {
			for _, x := range g.Univ {
				if !g.Deps[y].Has(x) && rng.Intn(2) == 0 {
					g.Deps[y].Add(x)
					grew = true
				}
			}
		}
		if !grew {
			continue
		}
		if !solveVerdict(t, g) {
			t.Fatalf("instance %d: SAT became UNSAT after dependency extension\noriginal deps %v\nextended deps %v\nclauses %v",
				i, f.Deps, g.Deps, f.Matrix.Clauses)
		}
	}
	if checked == 0 {
		t.Fatal("no SAT instance exercised the extension direction")
	}
}
