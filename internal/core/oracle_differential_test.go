package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/oracle"
)

// oracleConfigs are the pipeline configurations the differential suite pits
// against each other: the default persistent-oracle pipeline (serial and with
// a 2-worker sweep pool, so the per-worker oracles run concurrently under
// -race) versus the historical fresh-solver-per-query pipeline.
func oracleConfigs() map[string]core.Options {
	def := core.DefaultOptions()

	workers := core.DefaultOptions()
	workers.Workers = 2

	fresh := core.DefaultOptions()
	fresh.FreshOracle = true
	return map[string]core.Options{
		"oracle":         def,
		"oracle-workers": workers,
		"fresh":          fresh,
	}
}

// diffSolve decides f under every configuration and fails on any verdict
// disagreement; the fresh pipeline is the reference.
func diffSolve(t *testing.T, name string, f *dqbf.Formula) {
	t.Helper()
	type verdict struct {
		status core.Status
		sat    bool
		oracle oracle.Stats
	}
	got := make(map[string]verdict)
	for cfg, opt := range oracleConfigs() {
		res := core.New(opt).SolveDQBF(f)
		if res.Status != core.Solved {
			t.Fatalf("%s [%s]: status %v, want solved", name, cfg, res.Status)
		}
		got[cfg] = verdict{res.Status, res.Sat, res.Stats.Oracle}
	}
	ref := got["fresh"]
	for cfg, v := range got {
		if v.sat != ref.sat {
			t.Fatalf("%s: %s says sat=%v, fresh says sat=%v", name, cfg, v.sat, ref.sat)
		}
	}
	if got["fresh"].oracle.Queries != 0 {
		t.Fatalf("%s: FreshOracle pipeline reported %d oracle queries", name, got["fresh"].oracle.Queries)
	}
}

// TestOracleDifferentialRandom runs the incremental-oracle pipelines against
// the fresh-solver pipeline over the pinned random corpus: identical verdicts
// on every instance, or the persistent solver state leaked between queries.
func TestOracleDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 120; i++ {
		f := dqbf.RandomFormula(rng, 2+rng.Intn(3), 2+rng.Intn(3), 4+rng.Intn(8))
		diffSolve(t, fmt.Sprintf("random[%d]", i), f)
	}
}

// TestOracleDifferentialFamilies repeats the check on the structured PEC
// families (adder, bitcell): deep AIGs with real sweeping and elimination
// activity, where the oracle path actually diverges from the fresh path.
func TestOracleDifferentialFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("family differential is seconds-long; skipped in -short")
	}
	gen := bench.GenOptions{Count: 4, Seed: 20150309, MaxWidth: 3}
	for _, fam := range []bench.Family{bench.FamilyAdder, bench.FamilyBitcell} {
		insts, err := bench.Generate(fam, gen)
		if err != nil {
			t.Fatal(err)
		}
		sawOracleQueries := false
		for _, inst := range insts {
			opt := core.DefaultOptions()
			res := core.New(opt).SolveDQBF(inst.Formula)
			if res.Status == core.Solved && res.Stats.Oracle.Queries > 0 {
				sawOracleQueries = true
			}
			diffSolve(t, inst.Name, inst.Formula)
		}
		if !sawOracleQueries {
			t.Fatalf("family %s never exercised the persistent oracle", fam)
		}
	}
}
