package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/maxsat"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/qbf"
)

// The HQS-specific pass names, registered at init so fault-spec validation
// (hqsd -faults pipeline.thm1:...) accepts them before any solve runs. The
// shared passes (unitpure, dropsupport, sweep) are registered by the
// pipeline package, "blockelim" and "finalsat" by the qbf package.
func init() {
	for _, name := range []string{"preprocess", "build", "elimset", "thm2", "thm1", "qbf"} {
		pipeline.RegisterPass(name)
	}
}

// hqsPipeline holds the driver-side context the HQS passes close over: the
// solver options, the shared pipeline state, the working formula behind the
// state's prefix, the elimination-set queue, and the fresh-variable counter
// for Theorem-1 copies.
type hqsPipeline struct {
	s        *Solver
	st       *pipeline.State
	work     *dqbf.Formula
	res      *Result
	deadline time.Time
	sweep    *pipeline.SweepPass

	elim    []cnf.Var
	nextVar cnf.Var
	// elimExhausted is set by the thm1 pass when the dependency graph is
	// still cyclic but no further universal can be selected; the driver then
	// leaves the main loop for the QBF back end.
	elimExhausted bool
}

// track records the AIG high-water mark at the same points the monolithic
// loop did: after the build, after each elimination, and after the back end.
func (px *hqsPipeline) track() {
	if px.st.G == nil {
		return
	}
	if n := px.st.G.NumNodes(); n > px.res.Stats.PeakAIGNodes {
		px.res.Stats.PeakAIGNodes = n
	}
}

// selectElim runs the elimination-set selection, mapping a budget stop onto
// the pipeline's cancellation error (the driver refines it via the budget).
// With a persistent oracle pool, successive selections share one guarded
// MaxSAT backend (the dependency-cycle structure persists as the formula
// shrinks, so learned clauses carry over between strengthening steps).
func (px *hqsPipeline) selectElim() ([]cnf.Var, error) {
	var be *maxsat.Backend
	if px.st.Oracle != nil {
		be = px.st.Oracle.MaxSATBackend()
	}
	elim, err := selectEliminationSet(px.work, px.s.Opt.Strategy, px.s.Opt.Budget, be)
	if err != nil {
		if errors.Is(err, maxsat.ErrBudget) {
			return nil, pipeline.ErrCancelled
		}
		return nil, fmt.Errorf("elimination-set selection: %w", err)
	}
	return OrderByCopyCost(px.work, elim), nil
}

// preprocess is step 1 (CNF-level preprocessing and gate detection).
func (px *hqsPipeline) preprocess() pipeline.Pass {
	return pipeline.NewPass("preprocess", func(st *pipeline.State) (pipeline.Result, error) {
		pr, err := PreprocessCert(px.work, px.s.Opt.DetectGates, st.Cert)
		px.res.Stats.Preprocess = pr
		if err != nil {
			return pipeline.Result{}, err
		}
		if pr.Decided {
			st.Decide(pr.Value, "preprocess")
		}
		c := pipeline.Counters{
			"units":    int64(pr.Units),
			"univred":  int64(pr.UnivReductions),
			"equiv":    int64(pr.Equivalences),
			"subsumed": int64(pr.Subsumed),
			"strength": int64(pr.Strengthened),
			"gates":    int64(len(pr.Gates)),
		}
		return pipeline.Result{Changed: true, Counters: c}, nil
	})
}

// build is step 2: AIG construction from the preprocessed CNF, composing
// detected gate functions directly.
func (px *hqsPipeline) build() pipeline.Pass {
	return pipeline.NewPass("build", func(st *pipeline.State) (pipeline.Result, error) {
		g := aig.New()
		g.NodeLimit = px.s.Opt.NodeLimit
		if nc := px.s.Opt.Budget.NodeCap(); nc > 0 && (g.NodeLimit == 0 || nc < g.NodeLimit) {
			g.NodeLimit = nc
		}
		st.G = g
		// The persistent oracle pool is born with the graph: it owns every
		// long-lived SAT instance of this run (sweep workers, MaxSAT
		// backend, final check) and dies with the solve.
		if !px.s.Opt.FreshOracle {
			st.Oracle = oracle.NewPool(g)
		}
		st.Matrix = BuildMatrix(g, px.work.Matrix, px.res.Stats.Preprocess.Gates)
		px.sweep.Reset(g.ConeSize(st.Matrix))
		px.track()
		return pipeline.Result{Changed: true, Counters: pipeline.Counters{"nodes": int64(g.NumNodes())}}, nil
	})
}

// elimset is step 3: minimum universal elimination-set selection (MaxSAT
// over the binary dependency-set cycles) ordered by copy cost.
func (px *hqsPipeline) elimset() pipeline.Pass {
	return pipeline.NewPass("elimset", func(st *pipeline.State) (pipeline.Result, error) {
		elim, err := px.selectElim()
		if err != nil {
			return pipeline.Result{}, err
		}
		if px.s.Opt.ReverseElimOrder {
			for i, j := 0, len(elim)-1; i < j; i, j = i+1, j-1 {
				elim[i], elim[j] = elim[j], elim[i]
			}
		}
		px.elim = elim
		px.res.Stats.ElimSet = elim
		px.nextVar = cnf.Var(px.work.Matrix.NumVars + 1)
		return pipeline.Result{
			Changed:  len(elim) > 0,
			Counters: pipeline.Counters{"selected": int64(len(elim))},
		}, nil
	})
}

// thm2 eliminates every existential variable whose dependency set equals the
// current universal set (Theorem 2).
func (px *hqsPipeline) thm2() pipeline.Pass {
	return pipeline.NewPass("thm2", func(st *pipeline.State) (pipeline.Result, error) {
		var res pipeline.Result
		univSet := px.work.UniversalSet()
		for _, y := range append([]cnf.Var(nil), px.work.Exist...) {
			if !px.work.Deps[y].Equal(univSet) {
				continue
			}
			if err := st.Stop(); err != nil {
				return res, err
			}
			st.Cert.RecordExists(y, st.Matrix)
			st.Matrix = st.G.Exists(st.Matrix, y)
			st.Prefix.Remove(y)
			px.res.Stats.ExistElims++
			res.Changed = true
			res.Counters = res.Counters.Add(pipeline.Counters{"exist": 1})
			px.track()
			if st.Matrix.IsConst() {
				return res, nil
			}
		}
		return res, nil
	})
}

// thm1 eliminates the next selected universal variable (Theorem 1),
// recomputing the elimination set when the precomputed one is exhausted but
// cycles remain (possible when unit/pure removed selected variables in a way
// that left other cycles). elimExhausted signals the driver that no further
// universal can be selected.
func (px *hqsPipeline) thm1() pipeline.Pass {
	return pipeline.NewPass("thm1", func(st *pipeline.State) (pipeline.Result, error) {
		x := cnf.Var(0)
		for x == 0 {
			for len(px.elim) > 0 {
				cand := px.elim[0]
				px.elim = px.elim[1:]
				if px.work.IsUniversal(cand) {
					x = cand
					break
				}
			}
			if x != 0 {
				break
			}
			more, err := px.selectElim()
			if err != nil {
				return pipeline.Result{}, err
			}
			if len(more) == 0 {
				px.elimExhausted = true
				return pipeline.Result{}, nil
			}
			px.elim = more
		}
		copiesBefore := px.res.Stats.CopiesMade
		st.Matrix = px.s.eliminateUniversal(st.G, px.work, st.Matrix, x, &px.nextVar, &px.res.Stats, st.Cert)
		px.track()
		return pipeline.Result{
			Changed: true,
			Counters: pipeline.Counters{
				"univ":   1,
				"copies": int64(px.res.Stats.CopiesMade - copiesBefore),
			},
		}, nil
	})
}

// qbfPass is step 5: linearization (Theorem 3) and the block-elimination QBF
// back end, which runs its own pipeline of the shared passes on the same
// trace sink.
func (px *hqsPipeline) qbf() pipeline.Pass {
	return pipeline.NewPass("qbf", func(st *pipeline.State) (pipeline.Result, error) {
		blocks := dqbf.Linearize(px.work)
		qopt := px.s.Opt.QBF
		qopt.Deadline = px.deadline
		qopt.Budget = px.s.Opt.Budget
		qopt.Trace = px.s.Opt.Trace
		qopt.Cert = st.Cert
		qopt.Oracle = st.Oracle
		if px.s.Opt.Workers != 0 {
			qopt.SweepOptions.Workers = px.s.Opt.Workers
		}
		qs := qbf.New(st.G, qopt)
		sat, err := qs.Solve(blocks, st.Matrix)
		px.res.Stats.QBF = qs.Stat
		px.track()
		if err != nil {
			if nl, ok := err.(aig.ErrNodeLimit); ok {
				panic(nl) // unwinds to the driver's recover → Memout
			}
			if errors.Is(err, qbf.ErrTimeout) {
				return pipeline.Result{}, pipeline.ErrTimeout
			}
			if errors.Is(err, qbf.ErrCancelled) {
				return pipeline.Result{}, pipeline.ErrCancelled
			}
			return pipeline.Result{}, fmt.Errorf("qbf back end: %w", err)
		}
		st.Decide(sat, "qbf")
		return pipeline.Result{Changed: true, Counters: pipeline.Counters{"blocks": int64(len(blocks))}}, nil
	})
}
