package core

import (
	"fmt"
	"sort"

	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// PreprocessResult captures what CNF-level preprocessing established.
type PreprocessResult struct {
	// Decided is true when preprocessing alone settled the formula.
	Decided bool
	// Value is the verdict when Decided.
	Value bool
	// Units is the number of propagated unit literals.
	Units int
	// UnivReductions counts universal literals deleted from clauses.
	UnivReductions int
	// Equivalences counts substituted equivalent variables.
	Equivalences int
	// Subsumed counts clauses removed by subsumption.
	Subsumed int
	// Strengthened counts literals removed by self-subsuming resolution.
	Strengthened int
	// Gates lists the detected Tseitin-encoded gate definitions.
	Gates []Gate
}

// GateKind distinguishes the detected gate types.
type GateKind int

const (
	// GateAnd is g ↔ l1 ∧ ... ∧ ln.
	GateAnd GateKind = iota
	// GateXor is g ↔ l1 ⊕ l2.
	GateXor
)

func (k GateKind) String() string {
	if k == GateXor {
		return "XOR"
	}
	return "AND"
}

// Gate is a detected Tseitin definition: the existential variable Out is
// equivalent to the gate function over Ins (literals, possibly negated).
// OutNeg records whether the definition is for ¬Out (an OR gate is stored as
// an AND with OutNeg and negated inputs).
type Gate struct {
	Kind   GateKind
	Out    cnf.Var
	OutNeg bool
	Ins    []cnf.Lit
}

func (g Gate) String() string {
	s := fmt.Sprintf("%d", g.Out)
	if g.OutNeg {
		s = "-" + s
	}
	return fmt.Sprintf("%s <-> %s%v", s, g.Kind, g.Ins)
}

// preprocessor mutates a working copy of the formula.
type preprocessor struct {
	f   *dqbf.Formula
	res PreprocessResult
	// assigned holds unit-forced values; substituted maps replaced variables
	// to their replacement literal.
	assigned    map[cnf.Var]bool
	substituted map[cnf.Var]cnf.Lit
	// cert collects Skolem reconstruction steps (nil-safe; nil outside
	// certified solves).
	cert *cert.Builder
}

// Preprocess applies the paper's CNF-level preprocessing pipeline in
// alternation until fixpoint: unit propagation, DQBF universal reduction,
// and equivalent-variable substitution; finally Tseitin gate detection
// (Section III-C). The formula is modified in place.
func Preprocess(f *dqbf.Formula, detectGates bool) (PreprocessResult, error) {
	return PreprocessCert(f, detectGates, nil)
}

// PreprocessCert is Preprocess with certificate recording: existential unit
// assignments, equivalence substitutions and detected gates each record one
// reconstruction step into cb (nil-safe, so uncertified callers pass nil).
func PreprocessCert(f *dqbf.Formula, detectGates bool, cb *cert.Builder) (PreprocessResult, error) {
	p := &preprocessor{
		f:           f,
		assigned:    make(map[cnf.Var]bool),
		substituted: make(map[cnf.Var]cnf.Lit),
		cert:        cb,
	}
	// Normalize: drop tautological clauses and duplicate literals up front —
	// universal reduction and unit propagation assume normalized clauses.
	norm := f.Matrix.Clauses[:0]
	for _, c := range f.Matrix.Clauses {
		nc, taut := c.Normalize()
		if taut {
			continue
		}
		if len(nc) == 0 {
			p.res.Decided = true
			p.res.Value = false
			return p.res, nil
		}
		norm = append(norm, nc)
	}
	f.Matrix.Clauses = norm
	if len(norm) == 0 {
		p.res.Decided = true
		p.res.Value = true
		return p.res, nil
	}
	for {
		changed, err := p.round()
		if err != nil {
			return p.res, err
		}
		if p.res.Decided {
			return p.res, nil
		}
		if !changed {
			break
		}
	}
	if detectGates {
		p.detectGates()
	}
	p.compactPrefix()
	return p.res, nil
}

// round runs one pass of unit propagation, universal reduction, and
// equivalence substitution. It reports whether anything changed.
func (p *preprocessor) round() (bool, error) {
	changed := false
	for {
		c, err := p.propagateUnits()
		if err != nil || p.res.Decided {
			return changed, err
		}
		changed = changed || c
		if !c {
			break
		}
	}
	if c := p.universalReduction(); c {
		changed = true
		if p.res.Decided {
			return changed, nil
		}
	}
	c, err := p.substituteEquivalences()
	if err != nil || p.res.Decided {
		return changed, err
	}
	changed = changed || c
	if n := p.subsumeOnce(); n > 0 {
		p.res.Subsumed += n
		changed = true
	}
	if n := p.strengthenOnce(); n > 0 {
		p.res.Strengthened += n
		changed = true
	}
	return changed, nil
}

// propagateUnits assigns unit existential literals and detects unit
// universal literals (which falsify the formula, Theorem 5).
func (p *preprocessor) propagateUnits() (bool, error) {
	m := p.f.Matrix
	changed := false
	for _, c := range m.Clauses {
		if len(c) != 1 {
			continue
		}
		l := c[0]
		v := l.Var()
		if p.f.IsUniversal(v) {
			p.res.Decided = true
			p.res.Value = false
			return true, nil
		}
		if !p.f.IsExistential(v) {
			return false, fmt.Errorf("core: unquantified unit variable %d", v)
		}
		p.assignAndSimplify(v, !l.Neg())
		p.res.Units++
		changed = true
		if p.res.Decided {
			return true, nil
		}
		return true, nil // clause slice changed; restart scan
	}
	if len(m.Clauses) == 0 && !p.res.Decided {
		p.res.Decided = true
		p.res.Value = true
		return changed, nil
	}
	return changed, nil
}

// assignAndSimplify fixes v := val in the matrix and drops v from the prefix.
// Only existentials reach here (universal units decide the formula), so the
// assignment is a constant Skolem step.
func (p *preprocessor) assignAndSimplify(v cnf.Var, val bool) {
	p.cert.RecordConst(v, val)
	p.assigned[v] = val
	p.removeFromPrefix(v)
	m := p.f.Matrix
	out := m.Clauses[:0]
	falseLit := cnf.NewLit(v, val)
	for _, c := range m.Clauses {
		satisfied := false
		for _, l := range c {
			if l.Var() == v && (l.Neg() != val) {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		nc := c[:0]
		for _, l := range c {
			if l == falseLit {
				continue
			}
			nc = append(nc, l)
		}
		if len(nc) == 0 {
			p.res.Decided = true
			p.res.Value = false
			return
		}
		out = append(out, nc)
	}
	m.Clauses = out
	if len(m.Clauses) == 0 {
		p.res.Decided = true
		p.res.Value = true
	}
}

func (p *preprocessor) removeFromPrefix(v cnf.Var) {
	for i, u := range p.f.Univ {
		if u == v {
			p.f.Univ = append(p.f.Univ[:i], p.f.Univ[i+1:]...)
			break
		}
	}
	for i, y := range p.f.Exist {
		if y == v {
			p.f.Exist = append(p.f.Exist[:i], p.f.Exist[i+1:]...)
			delete(p.f.Deps, v)
			break
		}
	}
	// Drop v from all dependency sets.
	for _, d := range p.f.Deps {
		d.Remove(v)
	}
}

// universalReduction deletes universal literals from clauses in which no
// existential literal depends on them (the DQBF generalization of QBF
// universal reduction).
func (p *preprocessor) universalReduction() bool {
	changed := false
	m := p.f.Matrix
	out := m.Clauses[:0]
	for _, c := range m.Clauses {
		nc := c[:0]
		for _, l := range c {
			v := l.Var()
			if !p.f.IsUniversal(v) {
				nc = append(nc, l)
				continue
			}
			needed := false
			for _, l2 := range c {
				if d, ok := p.f.Deps[l2.Var()]; ok && d.Has(v) {
					needed = true
					break
				}
			}
			if needed {
				nc = append(nc, l)
			} else {
				p.res.UnivReductions++
				changed = true
			}
		}
		if len(nc) == 0 {
			p.res.Decided = true
			p.res.Value = false
			return true
		}
		out = append(out, nc)
	}
	m.Clauses = out
	return changed
}

// substituteEquivalences finds variable equivalences a≡b (or a≡¬b) implied
// by pairs of binary clauses and substitutes where the dependency structure
// permits (see package doc for the soundness conditions).
func (p *preprocessor) substituteEquivalences() (bool, error) {
	// Index binary clauses as canonical literal pairs.
	type pair [2]cnf.Lit
	seen := make(map[pair]bool)
	for _, c := range p.f.Matrix.Clauses {
		if len(c) != 2 {
			continue
		}
		a, b := c[0], c[1]
		if a > b {
			a, b = b, a
		}
		seen[pair{a, b}] = true
	}
	canon := func(a, b cnf.Lit) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	// Iterate pairs in sorted order, not map order: only the first match is
	// substituted per round, so the cascade of substitutions — and with it
	// the resulting CNF and every downstream pass — must not depend on map
	// iteration.
	pairs := make([]pair, 0, len(seen))
	for pr := range seen {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		// (a ∨ b) together with (¬a ∨ ¬b) gives a ≡ ¬b.
		if !seen[canon(a.Not(), b.Not())] {
			continue
		}
		// So variable A ≡ literal (¬b with A's phase folded in).
		va, vb := a.Var(), b.Var()
		if va == vb {
			continue
		}
		// a ≡ ¬b as literals: va ≡ ¬b xor a.Neg.
		target := b.Not().XorSign(a.Neg())
		if done := p.applyEquivalence(va, target); done {
			p.res.Equivalences++
			return true, nil
		}
		if p.res.Decided {
			return true, nil
		}
	}
	return false, nil
}

// applyEquivalence tries to substitute variable v by literal t (v ≡ t),
// choosing the sound direction. It reports whether a substitution happened.
func (p *preprocessor) applyEquivalence(v cnf.Var, t cnf.Lit) bool {
	w := t.Var()
	vUniv, wUniv := p.f.IsUniversal(v), p.f.IsUniversal(w)
	switch {
	case vUniv && wUniv:
		// Two universals forced equal (or opposite): pick a violating
		// assignment — unsatisfiable.
		p.res.Decided = true
		p.res.Value = false
		return false
	case vUniv:
		// w existential ≡ universal v.
		return p.substExistUniv(w, cnf.NewLit(v, t.Neg()))
	case wUniv:
		return p.substExistUniv(v, t)
	default:
		// Two existentials: substitute the one with the larger dependency
		// set if the other's is contained in it.
		dv, dw := p.f.Deps[v], p.f.Deps[w]
		if dw.SubsetOf(dv) {
			p.substitute(v, t)
			return true
		}
		if dv.SubsetOf(dw) {
			p.substitute(w, cnf.NewLit(v, t.Neg()))
			return true
		}
		// Incomparable dependency sets: the common function may only use
		// D_v ∩ D_w, but proving that requires more machinery — skip.
		return false
	}
}

// substExistUniv handles existential y ≡ universal literal x: sound to
// substitute when x ∈ D_y; otherwise no Skolem function can track x, so the
// formula is unsatisfiable.
func (p *preprocessor) substExistUniv(y cnf.Var, x cnf.Lit) bool {
	if p.f.Deps[y].Has(x.Var()) {
		p.substitute(y, x)
		return true
	}
	p.res.Decided = true
	p.res.Value = false
	return false
}

// substitute replaces every occurrence of v by literal t and removes v from
// the prefix. Only existentials are ever substituted (applyEquivalence
// decides the two-universal case instead), so this is a Skolem step: f_v is
// whatever t's function resolves to at replay time.
func (p *preprocessor) substitute(v cnf.Var, t cnf.Lit) {
	p.cert.RecordSubst(v, t)
	p.substituted[v] = t
	p.removeFromPrefix(v)
	m := p.f.Matrix
	out := m.Clauses[:0]
	for _, c := range m.Clauses {
		nc := make(cnf.Clause, 0, len(c))
		for _, l := range c {
			if l.Var() == v {
				nc = append(nc, t.XorSign(l.Neg()))
			} else {
				nc = append(nc, l)
			}
		}
		norm, taut := nc.Normalize()
		if taut {
			continue
		}
		out = append(out, norm)
	}
	m.Clauses = out
	if len(m.Clauses) == 0 {
		p.res.Decided = true
		p.res.Value = true
	}
}

// compactPrefix drops prefix variables that no longer occur in the matrix or
// in a detected gate. Universals that other variables depend on are kept.
func (p *preprocessor) compactPrefix() {
	used := dqbf.NewVarSet()
	for _, c := range p.f.Matrix.Clauses {
		for _, l := range c {
			used.Add(l.Var())
		}
	}
	for _, g := range p.res.Gates {
		used.Add(g.Out)
		for _, l := range g.Ins {
			used.Add(l.Var())
		}
	}
	var exist []cnf.Var
	for _, y := range p.f.Exist {
		if used.Has(y) {
			exist = append(exist, y)
		} else {
			delete(p.f.Deps, y)
		}
	}
	p.f.Exist = exist
	var univ []cnf.Var
	for _, x := range p.f.Univ {
		needed := used.Has(x)
		if !needed {
			for _, d := range p.f.Deps {
				if d.Has(x) {
					// Unused universals can simply leave dependency sets.
					d.Remove(x)
				}
			}
		}
		if needed {
			univ = append(univ, x)
		}
	}
	p.f.Univ = univ
}
