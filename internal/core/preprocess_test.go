package core

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

func TestUnitPropagationExistential(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.AddExistential(3, 1)
	f.Matrix.AddDimacsClause(2)
	f.Matrix.AddDimacsClause(-2, 3, 1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Units == 0 {
		t.Fatal("unit not propagated")
	}
	if f.IsExistential(2) {
		t.Fatal("unit variable still in prefix")
	}
}

func TestUnitUniversalUnsat(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(1)
	f.Matrix.AddDimacsClause(2, -1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Decided || pr.Value {
		t.Fatal("unit universal must decide UNSAT")
	}
}

func TestUniversalReduction(t *testing.T) {
	// Clause (x1 ∨ y3) where y3 does not depend on x1: x1 is deleted; the
	// remaining unit (y3) then propagates and the second clause keeps the
	// instance alive.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.AddExistential(4, 1, 2)
	f.Matrix.AddDimacsClause(1, 3)
	f.Matrix.AddDimacsClause(-3, 4, -2)
	f.Matrix.AddDimacsClause(-4, 2, 1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.UnivReductions < 1 {
		t.Fatalf("UnivReductions = %d, want >= 1", pr.UnivReductions)
	}
	if pr.Units < 1 {
		t.Fatalf("Units = %d, want >= 1 (reduced clause becomes unit)", pr.Units)
	}
	for _, c := range f.Matrix.Clauses {
		if c.HasVar(3) {
			t.Fatal("y3 still present after unit propagation")
		}
	}
}

func TestUniversalReductionAllUniversalClauseUnsat(t *testing.T) {
	// A (non-tautological) clause of only universals reduces to empty: UNSAT.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.Matrix.AddDimacsClause(1, 2)
	f.Matrix.AddDimacsClause(3, -1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Decided || pr.Value {
		t.Fatal("all-universal clause must yield UNSAT")
	}
}

func TestTautologyRemoved(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(-1, 1) // tautology — must not become empty
	f.Matrix.AddDimacsClause(2, -1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Decided && !pr.Value {
		t.Fatal("tautology mishandled as empty clause")
	}
	for _, c := range f.Matrix.Clauses {
		if len(c) == 0 {
			t.Fatal("empty clause present")
		}
	}
}

func TestEquivalenceExistExist(t *testing.T) {
	// y2 ≡ y3 with D_y2 ⊆ D_y3: y3 replaced by y2.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 1, 2)
	f.Matrix.AddDimacsClause(-3, 4)
	f.Matrix.AddDimacsClause(3, -4)
	f.Matrix.AddDimacsClause(3, 4, 1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Equivalences != 1 {
		t.Fatalf("Equivalences = %d, want 1", pr.Equivalences)
	}
	if f.IsExistential(4) {
		t.Fatal("y4 should have been substituted away")
	}
}

func TestEquivalenceExistUnivUnsatWhenNotInDeps(t *testing.T) {
	// y ≡ x with x ∉ D_y: unsatisfiable.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Decided || pr.Value {
		t.Fatal("y≡x with x∉D_y must be UNSAT")
	}
}

func TestEquivalenceUnivUnivUnsat(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	f.Matrix.AddDimacsClause(-1, 2)
	f.Matrix.AddDimacsClause(1, -2)
	f.Matrix.AddDimacsClause(3, 1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Decided || pr.Value {
		t.Fatal("two equivalent universals must be UNSAT")
	}
}

func TestEquivalenceIncomparableSkipped(t *testing.T) {
	// y1(x1) ≡ y2(x2): incomparable dependency sets — no substitution.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 4)
	f.Matrix.AddDimacsClause(3, -4)
	f.Matrix.AddDimacsClause(3, 4, 1, 2)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Equivalences != 0 {
		t.Fatal("incomparable equivalence must be skipped")
	}
}

func TestGateDetectionAnd(t *testing.T) {
	// g ↔ a ∧ b, Tseitin clauses, g existential with full deps.
	f := dqbf.New()
	f.AddUniversal(1) // a
	f.AddUniversal(2) // b
	f.AddExistential(3, 1, 2)
	f.AddExistential(4, 1) // another var so the formula isn't trivial
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(-3, 2)
	f.Matrix.AddDimacsClause(3, -1, -2)
	f.Matrix.AddDimacsClause(3, 4)
	pr, err := Preprocess(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Gates) != 1 {
		t.Fatalf("gates = %v", pr.Gates)
	}
	g := pr.Gates[0]
	if g.Kind != GateAnd || g.Out != 3 || g.OutNeg {
		t.Fatalf("gate = %v", g)
	}
	if gateFanins(g).Len() != 2 {
		t.Fatalf("gate fanins = %v", gateFanins(g))
	}
	if f.IsExistential(3) {
		t.Fatal("gate output should leave the prefix")
	}
	// Defining clauses removed, other clause remains.
	if len(f.Matrix.Clauses) != 1 {
		t.Fatalf("clauses after gate extraction: %v", f.Matrix.Clauses)
	}
}

func TestGateDetectionOrViaNegOutput(t *testing.T) {
	// g ↔ a ∨ b is ¬g ↔ ¬a ∧ ¬b: clauses (g ∨ ¬a... ) pattern with the
	// output appearing negative in the long clause.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(3, -2)
	f.Matrix.AddDimacsClause(-3, 1, 2)
	f.Matrix.AddDimacsClause(3, 4, 1)
	pr, err := Preprocess(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Gates) != 1 {
		t.Fatalf("gates = %v", pr.Gates)
	}
	if !pr.Gates[0].OutNeg {
		t.Fatalf("expected OutNeg (OR encoded as negated AND), got %v", pr.Gates[0])
	}
}

func TestGateDetectionXor(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1, 2)
	f.Matrix.AddDimacsClause(-3, -1, -2)
	f.Matrix.AddDimacsClause(3, 1, -2)
	f.Matrix.AddDimacsClause(3, -1, 2)
	f.Matrix.AddDimacsClause(3, 4, 2)
	pr, err := Preprocess(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Gates) != 1 || pr.Gates[0].Kind != GateXor {
		t.Fatalf("gates = %v", pr.Gates)
	}
}

func TestGateDetectionRejectsBadDeps(t *testing.T) {
	// Gate output with too small a dependency set must not be extracted.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1) // depends only on x1 but gate inputs use x2
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(-3, 2)
	f.Matrix.AddDimacsClause(3, -1, -2)
	f.Matrix.AddDimacsClause(3, 4, 2)
	pr, err := Preprocess(f, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Gates) != 0 {
		t.Fatalf("invalid gate extracted: %v", pr.Gates)
	}
}

func TestPreprocessPreservesSemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 200; iter++ {
		f := randomDQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(10))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		work := f.Clone()
		pr, err := Preprocess(work, iter%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		var got bool
		if pr.Decided {
			got = pr.Value
		} else {
			// Re-attach gate outputs as defined existentials for brute
			// force: rebuild CNF from gates.
			rebuilt := rebuildWithGates(work, pr.Gates)
			got, err = dqbf.BruteForce(rebuilt)
			if err != nil {
				t.Fatal(err)
			}
		}
		if got != want {
			t.Fatalf("iter %d: preprocess changed verdict: got %v want %v\noriginal %v %v\nafter %v %v gates %v",
				iter, got, want, f, f.Matrix.Clauses, work, work.Matrix.Clauses, pr.Gates)
		}
	}
}

// rebuildWithGates re-encodes detected gates as CNF and restores the gate
// outputs to the prefix, producing a formula equivalent to the preprocessed
// one for brute-force checking.
func rebuildWithGates(f *dqbf.Formula, gates []Gate) *dqbf.Formula {
	g := f.Clone()
	for _, gt := range gates {
		// Restore the output variable with dependencies = union of input deps
		// (a legal over-approximation is the full universal set; use that).
		g.AddExistential(gt.Out, g.Univ...)
		out := cnf.NewLit(gt.Out, gt.OutNeg)
		switch gt.Kind {
		case GateAnd:
			long := cnf.Clause{out}
			for _, in := range gt.Ins {
				g.Matrix.AddClause(out.Not(), in)
				long = append(long, in.Not())
			}
			g.Matrix.AddClause(long...)
		case GateXor:
			a, b := gt.Ins[0], gt.Ins[1]
			g.Matrix.AddClause(out.Not(), a, b)
			g.Matrix.AddClause(out.Not(), a.Not(), b.Not())
			g.Matrix.AddClause(out, a, b.Not())
			g.Matrix.AddClause(out, a.Not(), b)
		}
	}
	return g
}
