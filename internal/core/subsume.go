package core

import "repro/internal/cnf"

// Subsumption and self-subsuming resolution (clause strengthening) — the
// "more sophisticated preprocessing techniques" the paper's conclusion
// names as future work. Both operate purely on the propositional matrix:
// subsumption removes clauses implied by a subset clause, and self-subsuming
// resolution removes a literal l from C∨l when some D∨¬l with D ⊆ C exists
// (the resolvent subsumes the original). Since both only replace the matrix
// by a propositionally equivalent one, they are sound for any Henkin prefix.

// clauseSig computes a Bloom-style signature of the clause's variables; a
// subset clause always has a subset signature, so sig(C) &^ sig(D) != 0
// refutes C ⊆ D cheaply.
func clauseSig(c cnf.Clause) uint64 {
	var s uint64
	for _, l := range c {
		s |= 1 << (uint(l.Var()) % 64)
	}
	return s
}

// subsumes reports whether every literal of c occurs in d.
func subsumes(c, d cnf.Clause) bool {
	if len(c) > len(d) {
		return false
	}
	for _, l := range c {
		if !d.Has(l) {
			return false
		}
	}
	return true
}

// subsumeOnce removes subsumed clauses; returns the number removed.
func (p *preprocessor) subsumeOnce() int {
	m := p.f.Matrix
	n := len(m.Clauses)
	sigs := make([]uint64, n)
	for i, c := range m.Clauses {
		sigs[i] = clauseSig(c)
	}
	dead := make([]bool, n)
	removed := 0
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || dead[j] || dead[i] {
				continue
			}
			if sigs[i]&^sigs[j] != 0 {
				continue
			}
			if len(m.Clauses[i]) < len(m.Clauses[j]) ||
				(len(m.Clauses[i]) == len(m.Clauses[j]) && i < j) {
				if subsumes(m.Clauses[i], m.Clauses[j]) {
					dead[j] = true
					removed++
				}
			}
		}
	}
	if removed > 0 {
		out := m.Clauses[:0]
		for i, c := range m.Clauses {
			if !dead[i] {
				out = append(out, c)
			}
		}
		m.Clauses = out
	}
	return removed
}

// strengthenOnce applies self-subsuming resolution: for clauses C∨l and
// D∨¬l with D ⊆ C, the literal l is deleted from C∨l. Returns the number of
// literals removed.
func (p *preprocessor) strengthenOnce() int {
	m := p.f.Matrix
	removed := 0
	// Occurrence lists per literal.
	occ := make(map[cnf.Lit][]int)
	for i, c := range m.Clauses {
		for _, l := range c {
			occ[l] = append(occ[l], i)
		}
	}
	for i := 0; i < len(m.Clauses); i++ {
		c := m.Clauses[i]
		for li := 0; li < len(c); li++ {
			l := c[li]
			strengthened := false
			for _, j := range occ[l.Not()] {
				if j == i {
					continue
				}
				d := m.Clauses[j]
				if len(d) > len(c) {
					continue
				}
				// D \ {¬l} ⊆ C \ {l}?
				ok := true
				for _, dl := range d {
					if dl == l.Not() {
						continue
					}
					if dl == l || !c.Has(dl) {
						ok = false
						break
					}
				}
				if !ok || !d.Has(l.Not()) {
					continue
				}
				// Remove l from c.
				c = append(c[:li], c[li+1:]...)
				m.Clauses[i] = c
				removed++
				strengthened = true
				break
			}
			if strengthened {
				li-- // re-examine the literal now at position li
			}
		}
		if len(c) == 0 {
			p.res.Decided = true
			p.res.Value = false
			return removed
		}
	}
	return removed
}
