package core

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

func TestSubsumptionRemovesSupersets(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.AddExistential(3, 1)
	f.Matrix.AddDimacsClause(2, 3)
	f.Matrix.AddDimacsClause(2, 3, -1) // subsumed by (2 3)
	f.Matrix.AddDimacsClause(-2, 3, 1)
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Subsumed != 1 {
		t.Fatalf("Subsumed = %d, want 1", pr.Subsumed)
	}
}

func TestStrengthening(t *testing.T) {
	// (2 ∨ 3) and (¬2 ∨ 3 ∨ 4): self-subsuming resolution on 2 is blocked
	// (2∨3 has no literal 4)... use the textbook pair:
	// C = (2 ∨ 3 ∨ 4), D = (¬2 ∨ 3): D\{¬2} ⊆ C\{2} ⇒ C becomes (3 ∨ 4).
	f := dqbf.New()
	for v := 2; v <= 4; v++ {
		f.AddExistential(cnf.Var(v))
	}
	f.Matrix.AddDimacsClause(2, 3, 4)
	f.Matrix.AddDimacsClause(-2, 3)
	f.Matrix.AddDimacsClause(2, -3, 4) // keeps the instance undecided
	pr, err := Preprocess(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Strengthened == 0 {
		t.Fatal("no literal strengthened")
	}
}

func TestSubsumptionPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	for iter := 0; iter < 150; iter++ {
		f := randomDQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 3+rng.Intn(12))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		work := f.Clone()
		p := &preprocessor{f: work,
			assigned:    map[cnf.Var]bool{},
			substituted: map[cnf.Var]cnf.Lit{}}
		// Normalize first (subsumption assumes normalized clauses).
		norm := work.Matrix.Clauses[:0]
		for _, c := range work.Matrix.Clauses {
			nc, taut := c.Normalize()
			if taut {
				continue
			}
			norm = append(norm, nc)
		}
		work.Matrix.Clauses = norm
		p.subsumeOnce()
		p.strengthenOnce()
		if p.res.Decided {
			if p.res.Value != want {
				t.Fatalf("iter %d: strengthening decided %v, want %v", iter, p.res.Value, want)
			}
			continue
		}
		got, err := dqbf.BruteForce(work)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: semantics changed: %v -> %v\nbefore %v\nafter %v",
				iter, want, got, f.Matrix.Clauses, work.Matrix.Clauses)
		}
	}
}

func TestClauseSigSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		var c, d cnf.Clause
		for v := cnf.Var(1); v <= 10; v++ {
			if rng.Intn(3) == 0 {
				l := cnf.NewLit(v, rng.Intn(2) == 0)
				c = append(c, l)
				d = append(d, l)
			} else if rng.Intn(2) == 0 {
				d = append(d, cnf.NewLit(v, rng.Intn(2) == 0))
			}
		}
		// c ⊆ d by construction: signature must not rule it out.
		if clauseSig(c)&^clauseSig(d) != 0 {
			t.Fatalf("iter %d: signature violates subset property", iter)
		}
		if !subsumes(c, d) {
			t.Fatalf("iter %d: subsumes(c,d) false for c ⊆ d", iter)
		}
	}
}
