// Package cube implements cube-and-conquer splitting for DQBF: a formula is
// split on k universal prefix variables into 2^k cofactor subproblems that
// the cluster coordinator fans across hqsd workers, with exact merge
// semantics — any UNSAT cube refutes the formula, and all-SAT stitches the
// per-cube Skolem certificates into one certificate for the original
// formula.
//
// Soundness hinges on which universals may be cubed. Theorem 1 expands a
// universal x by copying every existential that depends on x into 0- and
// 1-branch instances; existentials NOT depending on x stay shared between
// the branches, which couples the branches and makes independently solved
// cofactors unsound for the SAT direction. Split therefore cubes only
// variables in the intersection of every existential's dependency set
// (Eligible): under such a cube every existential splits, the 2^k cofactors
// are fully independent DQBFs, and the merged Skolem function for each
// existential y is the ITE tree over the cube variables selecting the
// per-cube function — whose support stays inside D_y precisely because the
// cube variables are in D_y. Formulas with no eligible variable (including
// the zero-universal case) yield an empty plan, telling the coordinator to
// fall back to plain forwarding.
package cube

import (
	"fmt"

	"repro/internal/aig"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/trace"
)

// Cube is one cofactor subproblem.
type Cube struct {
	// Index encodes the cube assignment: bit i of Index is the value of
	// Plan.Vars[i].
	Index int
	// Formula is the cofactored DQBF: the cube variables are substituted
	// into the matrix and removed from the prefix and every dependency set.
	Formula *dqbf.Formula
}

// Plan is the result of a split: the cubed variables (in prefix order) and
// the 2^len(Vars) cofactor subproblems ordered by Index. An empty plan
// (no cubes) means the formula was not split.
type Plan struct {
	Vars  []cnf.Var
	Cubes []Cube
}

// Empty reports whether the plan carries no cubes (degrade to forwarding).
func (p *Plan) Empty() bool { return p == nil || len(p.Cubes) == 0 }

// Eligible returns the universal variables every existential depends on
// (⋂_y D_y), in prefix order — the variables that may be cubed soundly. For
// a formula without existentials every universal is eligible (the empty
// intersection), matching Thm-1 expansion which then only cofactors the
// matrix.
func Eligible(f *dqbf.Formula) []cnf.Var {
	var out []cnf.Var
	for _, x := range f.Univ {
		shared := true
		for _, y := range f.Exist {
			if !f.Deps[y].Has(x) {
				shared = false
				break
			}
		}
		if shared {
			out = append(out, x)
		}
	}
	return out
}

// Split cubes min(k, len(Eligible(f))) universal prefix variables into
// 2^k cofactor subproblems. k ≤ 0, a formula with no eligible variable, or
// an effective k of zero yield an empty plan. When sink is non-nil one
// "cube.split" trace event is emitted with the split counters.
func Split(f *dqbf.Formula, k int, sink trace.Sink) *Plan {
	elig := Eligible(f)
	if k > len(elig) {
		k = len(elig)
	}
	plan := &Plan{}
	if k > 0 {
		plan.Vars = append([]cnf.Var(nil), elig[:k]...)
		n := 1 << k
		plan.Cubes = make([]Cube, n)
		for c := 0; c < n; c++ {
			plan.Cubes[c] = Cube{Index: c, Formula: cofactor(f, plan.Vars, c)}
		}
	}
	if sink != nil {
		sink.Emit(trace.Event{
			Stage:       "cluster",
			Pass:        "cube.split",
			UnivBefore:  len(f.Univ),
			UnivAfter:   len(f.Univ) - len(plan.Vars),
			ExistBefore: len(f.Exist),
			ExistAfter:  len(f.Exist),
			Changed:     !plan.Empty(),
			Counters: map[string]int64{
				"eligible":  int64(len(elig)),
				"cube_vars": int64(len(plan.Vars)),
				"cubes":     int64(len(plan.Cubes)),
			},
		})
	}
	return plan
}

// cofactor builds the subproblem for one cube assignment: satisfied clauses
// drop, false literals drop from their clauses (an emptied clause stays, as
// the immediate contradiction), and the cube variables leave the prefix and
// every dependency set. Variable numbering is preserved.
func cofactor(f *dqbf.Formula, vars []cnf.Var, idx int) *dqbf.Formula {
	assign := make(map[cnf.Var]bool, len(vars))
	for i, v := range vars {
		assign[v] = idx&(1<<i) != 0
	}
	g := dqbf.New()
	for _, u := range f.Univ {
		if _, cubed := assign[u]; !cubed {
			g.AddUniversal(u)
		}
	}
	for _, y := range f.Exist {
		var deps []cnf.Var
		for _, d := range f.Deps[y].Vars() {
			if _, cubed := assign[d]; !cubed {
				deps = append(deps, d)
			}
		}
		g.AddExistential(y, deps...)
	}
	if f.Matrix.NumVars > g.Matrix.NumVars {
		g.Matrix.NumVars = f.Matrix.NumVars
	}
clauses:
	for _, c := range f.Matrix.Clauses {
		var keep []cnf.Lit
		for _, l := range c {
			if val, cubed := assign[l.Var()]; cubed {
				if val != l.Neg() {
					continue clauses // literal true under the cube
				}
				continue // literal false under the cube
			}
			keep = append(keep, l)
		}
		g.Matrix.AddClause(keep...)
	}
	return g
}

// MergeCerts stitches the per-cube Skolem certificates into one certificate
// for the original formula: for every existential y, the merged function is
// the ITE tree over the cube variables selecting cube c's function on the
// assignment c encodes. certs must parallel plan.Cubes; a nil entry's cubes
// default every function to constant false (legal only if that cube's
// verdict was itself certified elsewhere — callers should pass every
// certificate). When sink is non-nil one "cube.merge" trace event is
// emitted. The result is self-contained and passes cert.Check against the
// original formula whenever the inputs pass it against their cofactors.
func MergeCerts(f *dqbf.Formula, plan *Plan, certs []*cert.Certificate, sink trace.Sink) (*cert.Certificate, error) {
	if plan.Empty() {
		return nil, fmt.Errorf("cube: merging an empty plan")
	}
	if len(certs) != len(plan.Cubes) {
		return nil, fmt.Errorf("cube: %d certificates for %d cubes", len(certs), len(plan.Cubes))
	}
	g := aig.New()
	merged := &cert.Certificate{G: g, Funcs: make(map[cnf.Var]aig.Ref, len(f.Exist))}
	memos := make([]map[int32]aig.Ref, len(certs))
	for i := range memos {
		memos[i] = make(map[int32]aig.Ref)
	}
	xs := make([]aig.Ref, len(plan.Vars))
	for i, v := range plan.Vars {
		xs[i] = g.Input(v)
	}
	for _, y := range f.Exist {
		leaves := make([]aig.Ref, len(plan.Cubes))
		for c, pc := range certs {
			if pc == nil {
				leaves[c] = aig.False
				continue
			}
			fn, ok := pc.Funcs[y]
			if !ok {
				leaves[c] = aig.False
				continue
			}
			leaves[c] = pc.G.Export(fn, g, memos[c])
		}
		merged.Funcs[y] = iteTree(g, xs, leaves)
	}
	if sink != nil {
		sink.Emit(trace.Event{
			Stage:       "cluster",
			Pass:        "cube.merge",
			NodesAfter:  g.NumNodes(),
			UnivBefore:  len(f.Univ) - len(plan.Vars),
			UnivAfter:   len(f.Univ),
			ExistBefore: len(f.Exist),
			ExistAfter:  len(f.Exist),
			Changed:     true,
			Counters: map[string]int64{
				"cube_vars": int64(len(plan.Vars)),
				"cubes":     int64(len(plan.Cubes)),
				"functions": int64(len(merged.Funcs)),
			},
		})
	}
	return merged, nil
}

// iteTree folds 2^k leaf functions into one under the cube variables: bit i
// of the leaf index is xs[i], so the recursion splits on the last variable.
func iteTree(g *aig.Graph, xs []aig.Ref, leaves []aig.Ref) aig.Ref {
	if len(xs) == 0 {
		return leaves[0]
	}
	half := len(leaves) / 2
	lo := iteTree(g, xs[:len(xs)-1], leaves[:half])
	hi := iteTree(g, xs[:len(xs)-1], leaves[half:])
	return g.Ite(xs[len(xs)-1], hi, lo)
}
