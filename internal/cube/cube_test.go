package cube

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/dqbf"
	"repro/internal/idq"
	"repro/internal/trace"
)

// sharedDeps widens every existential's dependency set to the full universal
// prefix, so every universal becomes cube-eligible. The instance stays a
// well-formed DQBF (widening dependency sets only adds Skolem freedom).
func sharedDeps(f *dqbf.Formula) *dqbf.Formula {
	g := f.Clone()
	for _, y := range g.Exist {
		g.Deps[y] = dqbf.NewVarSet(g.Univ...)
	}
	return g
}

// example1 is ∀x1∀x2 ∃y1(x1,x2) ∃y2(x1,x2) with matrix (y1↔x1)∧(y2↔x2):
// the paper's Example 1 with widened (hence cube-eligible) dependencies.
func example1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	f.AddExistential(4, 1, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func TestEligibleIsSharedDependencyIntersection(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddUniversal(3)
	f.AddExistential(4, 1, 2)
	f.AddExistential(5, 2, 3)
	got := Eligible(f)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Eligible = %v, want [2]", got)
	}

	// No existentials: every universal is eligible (empty intersection).
	g := dqbf.New()
	g.AddUniversal(1)
	g.AddUniversal(2)
	g.Matrix.AddDimacsClause(1, 2)
	if got := Eligible(g); len(got) != 2 {
		t.Fatalf("Eligible without existentials = %v, want both universals", got)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	// k larger than the universal prefix clamps to the eligible set.
	f := example1()
	plan := Split(f, 99, nil)
	if len(plan.Vars) != 2 || len(plan.Cubes) != 4 {
		t.Fatalf("oversized k: got %d vars, %d cubes", len(plan.Vars), len(plan.Cubes))
	}
	for _, c := range plan.Cubes {
		if len(c.Formula.Univ) != 0 {
			t.Fatalf("cube %d kept universals: %v", c.Index, c.Formula.Univ)
		}
		if d := c.Formula.Deps[3]; !d.Empty() {
			t.Fatalf("cube %d kept dependencies: %v", c.Index, d)
		}
	}

	// Zero universals: empty plan, coordinator forwards as-is.
	g := dqbf.New()
	g.AddExistential(1)
	g.Matrix.AddDimacsClause(1)
	if p := Split(g, 2, nil); !p.Empty() {
		t.Fatalf("zero-universal formula split into %d cubes", len(p.Cubes))
	}

	// k <= 0: empty plan.
	if p := Split(f, 0, nil); !p.Empty() {
		t.Fatal("k=0 split produced cubes")
	}

	// No shared universal: empty plan even though universals exist.
	h := dqbf.New()
	h.AddUniversal(1)
	h.AddUniversal(2)
	h.AddExistential(3, 1)
	h.AddExistential(4, 2)
	h.Matrix.AddDimacsClause(3, 4)
	if p := Split(h, 1, nil); !p.Empty() {
		t.Fatal("split cubed a non-shared universal")
	}
}

// TestSplitAgreesWithBruteForce is the semantic core: for random instances
// with cube-eligible variables, the conjunction of the cube verdicts must
// equal the original verdict (all-SAT ⇔ SAT, any-UNSAT ⇔ UNSAT).
func TestSplitAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		f := sharedDeps(dqbf.RandomFormula(rng, 2, 3, 5))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatalf("instance %d: brute force: %v", i, err)
		}
		for k := 1; k <= 2; k++ {
			plan := Split(f, k, nil)
			if plan.Empty() {
				t.Fatalf("instance %d: no split at k=%d", i, k)
			}
			all := true
			for _, c := range plan.Cubes {
				sat, err := dqbf.BruteForce(c.Formula)
				if err != nil {
					t.Fatalf("instance %d cube %d: brute force: %v", i, c.Index, err)
				}
				all = all && sat
			}
			if all != want {
				t.Fatalf("instance %d k=%d: cubes say %v, serial says %v", i, k, all, want)
			}
		}
	}
}

// TestMergeCertsCheckerAccepted runs the full SAT path: solve every cube
// with the certificate-producing iDQ engine, lift and merge the per-cube
// certificates, and demand the independent checker accept the merged
// certificate against the ORIGINAL formula.
func TestMergeCertsCheckerAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	merged := 0
	for i := 0; i < 200 && merged < 12; i++ {
		f := sharedDeps(dqbf.RandomFormula(rng, 2, 3, 4))
		plan := Split(f, 1+i%2, nil)
		if plan.Empty() {
			continue
		}
		certs := make([]*cert.Certificate, len(plan.Cubes))
		allSat := true
		for c, cb := range plan.Cubes {
			res := idq.New(idq.Options{}).Solve(cb.Formula)
			if res.Status != idq.Solved {
				t.Fatalf("instance %d cube %d: %v", i, c, res.Status)
			}
			if !res.Sat {
				allSat = false
				break
			}
			ac, err := cert.FromTables(cb.Formula, res.Certificate)
			if err != nil {
				t.Fatalf("instance %d cube %d: FromTables: %v", i, c, err)
			}
			if err := cert.Check(cb.Formula, ac); err != nil {
				t.Fatalf("instance %d cube %d: cube certificate rejected: %v", i, c, err)
			}
			certs[c] = ac
		}
		if !allSat {
			continue
		}
		mc, err := MergeCerts(f, plan, certs, nil)
		if err != nil {
			t.Fatalf("instance %d: MergeCerts: %v", i, err)
		}
		if err := cert.Check(f, mc); err != nil {
			t.Fatalf("instance %d: merged certificate rejected: %v", i, err)
		}
		merged++
	}
	if merged == 0 {
		t.Fatal("no all-SAT split exercised the merge path")
	}
}

// TestMergeCertsErrors pins the failure modes.
func TestMergeCertsErrors(t *testing.T) {
	f := example1()
	if _, err := MergeCerts(f, &Plan{}, nil, nil); err == nil {
		t.Fatal("empty plan merged")
	}
	plan := Split(f, 1, nil)
	if _, err := MergeCerts(f, plan, make([]*cert.Certificate, 1), nil); err == nil {
		t.Fatal("certificate/cube count mismatch merged")
	}
}

// TestGoldenTraceSplitMerge pins the cube.split/cube.merge pipeline events:
// stages, passes, prefix deltas, and counters are part of the wire-visible
// observability contract, so a drift here must be deliberate.
func TestGoldenTraceSplitMerge(t *testing.T) {
	f := example1()
	rec := trace.NewRecorder(16)
	plan := Split(f, 1, rec)
	certs := make([]*cert.Certificate, len(plan.Cubes))
	for c, cb := range plan.Cubes {
		res := idq.New(idq.Options{}).Solve(cb.Formula)
		if res.Status != idq.Solved || !res.Sat {
			t.Fatalf("cube %d: unexpected verdict %v sat=%v", c, res.Status, res.Sat)
		}
		ac, err := cert.FromTables(cb.Formula, res.Certificate)
		if err != nil {
			t.Fatalf("cube %d: %v", c, err)
		}
		certs[c] = ac
	}
	mc, err := MergeCerts(f, plan, certs, rec)
	if err != nil {
		t.Fatalf("MergeCerts: %v", err)
	}
	if err := cert.Check(f, mc); err != nil {
		t.Fatalf("merged certificate rejected: %v", err)
	}

	events, dropped := rec.Events(), rec.Dropped()
	if dropped != 0 {
		t.Fatalf("dropped %d trace events", dropped)
	}
	// The merge node count depends only on this fixed pipeline, so the
	// golden trace pins it too; scrub nothing.
	var got []string
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(b))
	}
	want := []string{
		`{"seq":1,"stage":"cluster","pass":"cube.split","wall_ns":0,"nodes_before":0,"nodes_after":0,"univ_before":2,"univ_after":1,"exist_before":2,"exist_after":2,"changed":true,"counters":{"cube_vars":1,"cubes":2,"eligible":2}}`,
		`{"seq":2,"stage":"cluster","pass":"cube.merge","wall_ns":0,"nodes_before":0,"nodes_after":` + nodeCount(mc) + `,"univ_before":1,"univ_after":2,"exist_before":2,"exist_after":2,"changed":true,"counters":{"cube_vars":1,"cubes":2,"functions":2}}`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

func nodeCount(c *cert.Certificate) string {
	b, _ := json.Marshal(c.G.NumNodes())
	return string(b)
}

