// Package defex implements DQBF solving by definition extraction (Reichl,
// Slivovsky, Szeider: Certified DQBF Solving by Definition Extraction): a
// decision procedure algorithmically different from quantifier elimination.
//
// For each existential variable y the matrix may already *define* y as a
// function of its dependency set D_y — no Skolem choice is left. Definability
// is decided with Padoa's method: y is defined by D_y in the matrix M iff
//
//	M(V, y) ∧ M(V', y') ∧ (V|D_y = V'|D_y) ∧ y ∧ ¬y'
//
// is unsatisfiable. All checks share one persistent incremental oracle
// (internal/oracle): the primed copy is encoded once, the per-universal
// equality constraints live in never-retracted activation-literal scopes, and
// each check is one assumption query, so learned clauses flow between checks.
//
// For every defined y the defining function ψ over D_y is extracted as an
// AIG: primarily as a Craig interpolant of the Padoa refutation (the sat
// package's proof mode, McMillan's system — the shared vocabulary is exactly
// D_y), with a semantic fallback (2^|D_y| oracle queries) for small dependency
// sets when interpolation is unavailable or fails verification. ψ is
// substituted into the matrix (M := M[ψ/y]), the definition is recorded as a
// cert.Builder reconstruction step, and the rounds repeat — substitutions can
// make further variables defined. Existentials that remain undefined are
// handed, with the universals shrunk to the residual support, to the full
// universal expansion engine (internal/expand); its table certificate is
// folded back into the same reconstruction trail, so SAT verdicts carry one
// uniform Skolem certificate checkable by internal/cert regardless of which
// stage decided.
package defex

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/expand"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/sat"
	"repro/internal/trace"
)

// CheckPoint is the fault-injection seam fired before every per-existential
// definability check. An injected error leaves the variable undefined for the
// round — sound degradation: undefined variables fall through to expansion.
var CheckPoint = faults.Point("defex.check")

func init() {
	faults.Register(CheckPoint)
	// Pass fault points, registered up front so chaos specs validate at flag
	// time.
	pipeline.RegisterPass("defex-build")
	pipeline.RegisterPass("defex-round")
	pipeline.RegisterPass("defex-final")
	pipeline.RegisterPass("defex-expand")
}

// Status describes how a Solve attempt ended (mirrors core.Status).
type Status int

const (
	// Solved means a definitive SAT/UNSAT verdict was reached.
	Solved Status = iota
	// Timeout means the wall-clock budget was exhausted.
	Timeout
	// Memout means the AIG node budget or the expansion limit was exhausted.
	Memout
	// Cancelled means the budget was cancelled or a cap exhausted early.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Timeout:
		return "timeout"
	case Memout:
		return "memout"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Mode selects the definition-extraction strategy.
type Mode int

const (
	// ModeInterp extracts definitions as interpolants from the Padoa
	// refutation, falling back to semantic enumeration when the proof-mode
	// instance fails or the interpolant does not verify.
	ModeInterp Mode = iota
	// ModeSemantic skips proof logging entirely and enumerates the defining
	// function over D_y (bounded by SemanticMaxDeps).
	ModeSemantic
)

// Options configure the solver.
type Options struct {
	// Mode selects interpolation (default) or pure semantic extraction.
	Mode Mode
	// SemanticMaxDeps bounds |D_y| for semantic-enumeration extraction
	// (2^|D_y| oracle queries); 0 means the default of 8.
	SemanticMaxDeps int
	// MaxRounds bounds the definability rounds; 0 means until fixpoint.
	MaxRounds int
	// ExpandMaxUniversals bounds the residual expansion (see
	// expand.Options.MaxUniversals); 0 keeps that package's default.
	ExpandMaxUniversals int
	// NodeLimit bounds the AIG size; 0 means unlimited.
	NodeLimit int
	// Timeout bounds wall-clock solving time; 0 means unlimited.
	Timeout time.Duration
	// Budget, when non-nil, makes the solve cancellable and budgeted.
	Budget *budget.Budget
	// Certify records Skolem reconstruction steps and, on SAT, extracts a
	// certificate into Result.Certificate.
	Certify bool
	// Trace, when non-nil, receives one structured event per pass execution
	// (one per definability round in particular).
	Trace trace.Sink
}

// DefaultOptions return the standard configuration.
func DefaultOptions() Options { return Options{} }

// Stats collects solver counters.
type Stats struct {
	Rounds          int // definability rounds executed
	Checks          int // Padoa checks run
	Defined         int // existentials substituted away by a definition
	DefinedInterp   int // ... via interpolation
	DefinedSemantic int // ... via semantic enumeration
	DefinedConst    int // ... trivially (outside the matrix support)
	InterpFallbacks int // interpolation failures recovered semantically
	Skipped         int // checks skipped (faults, budget-stopped queries)
	ResidualExist   int // existentials handed to expansion
	ResidualUniv    int // universals left for expansion

	Expand     expand.Stats // residual expansion counters (if it ran)
	ExpandUsed bool

	PeakAIGNodes int
	TotalTime    time.Duration
	DecidedBy    string // "constant", "propositional", "defined", "expand"

	// Oracle aggregates the persistent incremental SAT pool's counters.
	Oracle oracle.Stats
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	Sat    bool
	Stats  Stats
	// Certificate holds the extracted Skolem functions when Options.Certify
	// was set and the verdict is SAT; CertErr reports an extraction failure.
	Certificate *cert.Certificate
	CertErr     error
}

// Solver is the definition-extraction DQBF engine.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// Unwind sentinels, matching the core driver pattern: passes panic on
// resource exhaustion and the Solve recover maps panics onto statuses.
var errTimeout = errors.New("defex: timeout")

type budgetStop struct{ err error }

// engine carries the working state of one solve.
type engine struct {
	opt  Options
	f    *dqbf.Formula // original formula (certificate extraction target)
	work *dqbf.Formula // mutated clone
	g    *aig.Graph
	m    aig.Ref // current matrix
	n    cnf.Var // original variable bound; primed copies live at v+n
	orc  *oracle.Oracle
	pool *oracle.Pool
	st   *pipeline.State
	res  *Result

	renAll map[cnf.Var]cnf.Var // v -> v+n for every original variable
	sel    map[cnf.Var]cnf.Lit // universal x -> activation literal of x=x'
}

// Solve decides the DQBF by definition extraction. The input formula is not
// modified.
func (s *Solver) Solve(f *dqbf.Formula) (res Result) {
	start := time.Now()
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	deadline := s.Opt.Budget.Deadline()
	if s.Opt.Timeout > 0 {
		if d := start.Add(s.Opt.Timeout); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	defer func() {
		switch r := recover().(type) {
		case nil:
		case aig.ErrNodeLimit:
			res.Status = Memout
		case budgetStop:
			if errors.Is(r.err, budget.ErrDeadline) {
				res.Status = Timeout
			} else {
				res.Status = Cancelled
			}
		case error:
			if r == errTimeout {
				res.Status = Timeout
				return
			}
			panic(r)
		default:
			panic(r)
		}
	}()

	work := f.Clone()
	st := &pipeline.State{
		Prefix:   pipeline.FormulaPrefix{F: work},
		Budget:   s.Opt.Budget,
		Deadline: deadline,
	}
	if s.Opt.Certify {
		st.Cert = cert.NewBuilder()
	}
	r := pipeline.NewRunner(st, s.Opt.Trace, "defex")
	e := &engine{opt: s.Opt, f: f, work: work, st: st, res: &res}
	defer func() {
		if e.g != nil {
			res.Stats.PeakAIGNodes = e.g.NumNodes()
		}
		if e.pool != nil {
			res.Stats.Oracle = e.pool.Stats()
		}
	}()

	run := func(p pipeline.Pass) {
		if _, err := r.Run(p); err != nil {
			switch {
			case errors.Is(err, pipeline.ErrTimeout):
				panic(errTimeout)
			case errors.Is(err, pipeline.ErrCancelled):
				panic(budgetStop{err: s.Opt.Budget.Err()})
			default:
				panic(fmt.Sprintf("defex: %v", err))
			}
		}
	}
	finish := func() Result {
		res.Status = Solved
		res.Sat = st.Sat
		res.Stats.DecidedBy = st.DecidedBy
		if st.Cert != nil && st.Sat {
			res.Certificate, res.CertErr = st.Cert.Extract(f, e.g)
		}
		return res
	}

	run(pipeline.NewPass("defex-build", e.build))
	if st.Decided {
		return finish()
	}

	round := pipeline.NewPass("defex-round", e.round)
	for {
		if st.Decided {
			return finish()
		}
		if len(work.Exist) == 0 {
			break
		}
		if s.Opt.MaxRounds > 0 && res.Stats.Rounds >= s.Opt.MaxRounds {
			break
		}
		before := res.Stats.Defined + res.Stats.DefinedConst
		run(round)
		res.Stats.Rounds++
		if st.Decided {
			return finish()
		}
		if res.Stats.Defined+res.Stats.DefinedConst == before {
			break // fixpoint: no further variable became defined
		}
	}

	if len(work.Exist) == 0 {
		run(pipeline.NewPass("defex-final", e.final))
		return finish()
	}
	run(pipeline.NewPass("defex-expand", e.expandResidual))
	return finish()
}

// build constructs the AIG matrix from the CNF, sets up the persistent
// oracle, and settles trivially unsatisfiable matrices.
func (e *engine) build(st *pipeline.State) (pipeline.Result, error) {
	g := aig.New()
	nl := e.opt.NodeLimit
	if c := e.opt.Budget.NodeCap(); c > 0 && (nl == 0 || c < nl) {
		nl = c
	}
	g.NodeLimit = nl

	lits := make([]aig.Ref, 0, 8)
	m := aig.True
	for _, c := range e.work.Matrix.Clauses {
		lits = lits[:0]
		for _, l := range c {
			lits = append(lits, g.Input(l.Var()).XorSign(l.Neg()))
		}
		m = g.And(m, g.OrN(lits...))
	}
	e.g, e.m = g, m
	st.G, st.Matrix = g, m
	e.n = cnf.Var(e.work.Matrix.NumVars)
	e.renAll = make(map[cnf.Var]cnf.Var, e.n)
	for v := cnf.Var(1); v <= e.n; v++ {
		e.renAll[v] = v + e.n
	}
	e.sel = make(map[cnf.Var]cnf.Lit)
	e.pool = oracle.NewPool(g)
	st.Oracle = e.pool
	e.orc = e.pool.Main()

	if m.IsConst() {
		st.Decide(m == aig.True, "constant")
		return pipeline.Result{Changed: true}, nil
	}
	// A propositionally unsatisfiable matrix settles the DQBF outright (and
	// would make every later definability check vacuously succeed).
	sat, err := e.query(e.orc.Lit(m))
	if err != nil {
		if serr := st.Stop(); serr != nil {
			return pipeline.Result{}, serr
		}
		return pipeline.Result{}, fmt.Errorf("defex: initial SAT check: %w", err)
	}
	if !sat {
		st.Decide(false, "propositional")
		return pipeline.Result{Changed: true}, nil
	}
	return pipeline.Result{
		Changed:  true,
		Counters: pipeline.Counters{"nodes": int64(g.NumNodes())},
	}, nil
}

// query runs one oracle assumption query, folding the tri-state into a bool.
func (e *engine) query(assumps ...cnf.Lit) (bool, error) {
	status, err := e.orc.QueryAssuming(assumps, e.opt.Budget)
	if err != nil {
		return false, err
	}
	switch status {
	case sat.Sat:
		return true, nil
	case sat.Unsat:
		return false, nil
	default:
		return false, errors.New("defex: oracle query inconclusive")
	}
}

// selLit returns the activation literal enforcing x = x' while assumed,
// opening the (never-retracted) scope on first use.
func (e *engine) selLit(x cnf.Var) cnf.Lit {
	if l, ok := e.sel[x]; ok {
		return l
	}
	xl := e.orc.Lit(e.g.Input(x))
	xpl := e.orc.Lit(e.g.Input(x + e.n))
	act := e.orc.OpenScope()
	e.orc.AddScoped(act, xl.Not(), xpl)
	e.orc.AddScoped(act, xl, xpl.Not())
	e.sel[x] = act
	return act
}

// round runs one definability round: every remaining existential is checked
// with Padoa's method, every newly defined one is extracted and substituted.
func (e *engine) round(st *pipeline.State) (pipeline.Result, error) {
	stats := &e.res.Stats
	cnt := pipeline.Counters{}
	changed := false

	// Snapshot: Remove mutates work.Exist during the loop.
	pending := append([]cnf.Var(nil), e.work.Exist...)
	for _, y := range pending {
		if err := st.Stop(); err != nil {
			return pipeline.Result{Changed: changed, Counters: cnt}, err
		}
		if ferr := faults.Fire(CheckPoint); ferr != nil {
			stats.Skipped++
			cnt["skipped"]++
			continue
		}
		support := e.g.Support(e.m)
		if !support[y] {
			// y is unconstrained: any function works; pick constant false.
			st.Cert.RecordDef(y, aig.False)
			pipeline.FormulaPrefix{F: e.work}.Remove(y)
			stats.DefinedConst++
			cnt["defined_const"]++
			changed = true
			continue
		}

		stats.Checks++
		cnt["checks"]++
		defined, err := e.checkDefined(y)
		if err != nil {
			if serr := st.Stop(); serr != nil {
				return pipeline.Result{Changed: changed, Counters: cnt}, serr
			}
			stats.Skipped++
			cnt["skipped"]++
			continue
		}
		if !defined {
			continue
		}

		psi, how := e.extract(y)
		if how == extractFailed {
			stats.Skipped++
			cnt["skipped"]++
			continue
		}
		switch how {
		case extractInterp:
			stats.DefinedInterp++
			cnt["defined_interp"]++
		case extractSemantic:
			stats.DefinedSemantic++
			cnt["defined_semantic"]++
		}
		e.m = e.g.Compose(e.m, map[cnf.Var]aig.Ref{y: psi})
		st.Matrix = e.m
		st.Cert.RecordDef(y, psi)
		pipeline.FormulaPrefix{F: e.work}.Remove(y)
		stats.Defined++
		cnt["defined"]++
		changed = true

		if e.m.IsConst() {
			// All remaining existentials are unconstrained now.
			for _, z := range append([]cnf.Var(nil), e.work.Exist...) {
				st.Cert.RecordDef(z, aig.False)
				pipeline.FormulaPrefix{F: e.work}.Remove(z)
			}
			st.Decide(e.m == aig.True, "constant")
			return pipeline.Result{Changed: true, Counters: cnt}, nil
		}
	}
	return pipeline.Result{Changed: changed, Counters: cnt}, nil
}

// checkDefined runs the Padoa query for y: matrix ∧ primed matrix ∧
// (D_y = D_y') ∧ y ∧ ¬y' unsatisfiable iff the matrix defines y over D_y.
func (e *engine) checkDefined(y cnf.Var) (bool, error) {
	b := e.g.Rename(e.m, e.renAll)
	deps := e.f.Deps[y].Vars() // original dependency set; never grows
	assumps := make([]cnf.Lit, 0, len(deps)+4)
	assumps = append(assumps, e.orc.Lit(e.m), e.orc.Lit(b))
	for _, x := range deps {
		assumps = append(assumps, e.selLit(x))
	}
	assumps = append(assumps,
		e.orc.Lit(e.g.Input(y)),
		e.orc.Lit(e.g.Input(y+e.n)).Not(),
	)
	sat, err := e.query(assumps...)
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// final decides the all-defined endgame: with every existential substituted
// away the matrix is a function of universals only, and the DQBF holds iff
// it is a tautology (its negation is unsatisfiable).
func (e *engine) final(st *pipeline.State) (pipeline.Result, error) {
	sat, err := e.query(e.orc.Lit(e.m.Not()))
	if err != nil {
		if serr := st.Stop(); serr != nil {
			return pipeline.Result{}, serr
		}
		return pipeline.Result{}, fmt.Errorf("defex: final validity check: %w", err)
	}
	st.Decide(!sat, "defined")
	return pipeline.Result{Changed: true}, nil
}

// expandResidual hands the undefined remainder to the expansion engine:
// universals are shrunk to the matrix support, the matrix is re-encoded to
// CNF (Tseitin variables become existentials depending on every residual
// universal), and a SAT verdict's table certificate is folded back into the
// reconstruction trail as definitions.
func (e *engine) expandResidual(st *pipeline.State) (pipeline.Result, error) {
	stats := &e.res.Stats
	support := e.g.Support(e.m)

	// Unconstrained existentials default to false; unconstrained universals
	// leave the dependency sets.
	for _, z := range append([]cnf.Var(nil), e.work.Exist...) {
		if !support[z] {
			st.Cert.RecordDef(z, aig.False)
			stats.DefinedConst++
		}
	}
	pipeline.FormulaPrefix{F: e.work}.RetainSupport(support)
	stats.ResidualExist = len(e.work.Exist)
	stats.ResidualUniv = len(e.work.Univ)

	fcnf, root := e.g.ToFormula(e.m, e.n)
	fres := dqbf.New()
	fres.Matrix = fcnf
	fres.Matrix.AddClause(root)
	for _, x := range e.work.Univ {
		fres.AddUniversal(x)
	}
	for _, z := range e.work.Exist {
		fres.AddExistential(z, e.work.Deps[z].Vars()...)
	}
	// Tseitin gate variables depend on everything: they are functions of the
	// whole assignment.
	for v := e.n + 1; int(v) <= fcnf.NumVars; v++ {
		if !fres.IsExistential(v) && !fres.IsUniversal(v) {
			fres.AddExistential(v, e.work.Univ...)
		}
	}

	ex := expand.New(expand.Options{
		MaxUniversals: e.opt.ExpandMaxUniversals,
		Budget:        e.opt.Budget,
		Certify:       st.Cert != nil,
	})
	eres, err := ex.Solve(fres)
	stats.Expand = eres.Stats
	stats.ExpandUsed = true
	if err != nil {
		switch {
		case errors.Is(err, budget.ErrDeadline):
			panic(errTimeout)
		case errors.Is(err, budget.ErrCancelled),
			errors.Is(err, budget.ErrConflicts),
			errors.Is(err, budget.ErrDecisions):
			panic(budgetStop{err: e.opt.Budget.Err()})
		default:
			// Expansion refusal (too many universals) is the engine's memory
			// limit: the residual problem is too large for this back end.
			panic(aig.ErrNodeLimit{Limit: e.opt.ExpandMaxUniversals})
		}
	}
	if !eres.Sat {
		st.Decide(false, "expand")
		return pipeline.Result{Changed: true}, nil
	}
	// Fold the table certificate back as definitions over the (shrunk)
	// dependency sets: default ⊕ OR of flip minterms, like cert.FromTables.
	if st.Cert != nil && eres.Certificate != nil {
		for _, z := range e.work.Exist {
			st.Cert.RecordDef(z, e.tableFunc(fres, eres.Certificate, z))
		}
	}
	st.Decide(true, "expand")
	return pipeline.Result{
		Changed: true,
		Counters: pipeline.Counters{
			"instances": int64(eres.Stats.Instances),
			"copies":    int64(eres.Stats.Copies),
		},
	}, nil
}

// tableFunc renders the certificate table of z as an AIG over its residual
// dependency set.
func (e *engine) tableFunc(fres *dqbf.Formula, c *dqbf.Certificate, z cnf.Var) aig.Ref {
	deps := fres.Deps[z].Vars()
	def := c.Defaults[z]
	var flips []string
	for k, v := range c.Tables[z] {
		if v != def {
			flips = append(flips, k)
		}
	}
	sort.Strings(flips)
	or := aig.False
	for _, k := range flips {
		minterm := aig.True
		for i, d := range deps {
			minterm = e.g.And(minterm, e.g.Input(d).XorSign(k[i] == '0'))
		}
		or = e.g.Or(or, minterm)
	}
	return e.g.Xor(or, constRef(def))
}

func constRef(b bool) aig.Ref {
	if b {
		return aig.True
	}
	return aig.False
}
