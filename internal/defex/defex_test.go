package defex_test

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/bench"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/defex"
	"repro/internal/dqbf"
)

// solve decides f with the given options, failing the test on a non-verdict.
func solve(t *testing.T, f *dqbf.Formula, opt defex.Options) defex.Result {
	t.Helper()
	res := defex.New(opt).Solve(f)
	if res.Status != defex.Solved {
		t.Fatalf("status %v, want solved", res.Status)
	}
	return res
}

// configs are the engine configurations every differential test sweeps.
func configs() map[string]defex.Options {
	return map[string]defex.Options{
		"interp":        {Mode: defex.ModeInterp},
		"semantic":      {Mode: defex.ModeSemantic},
		"interp-cert":   {Mode: defex.ModeInterp, Certify: true},
		"semantic-cert": {Mode: defex.ModeSemantic, Certify: true},
		"one-round":     {Mode: defex.ModeInterp, MaxRounds: 1, Certify: true},
	}
}

// TestDefexVsBruteForce cross-checks every configuration against the
// Skolem-table enumeration ground truth on random formulas, and validates
// every certificate a certified SAT verdict produces with the independent
// checker.
func TestDefexVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(12))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			continue // Skolem table too large for ground truth
		}
		for name, opt := range configs() {
			res := solve(t, f, opt)
			if res.Sat != want {
				t.Fatalf("instance %d config %s: verdict %v, want %v\n%s\nclauses %v",
					i, name, res.Sat, want, f, f.Matrix.Clauses)
			}
			if opt.Certify && res.Sat {
				if res.CertErr != nil {
					t.Fatalf("instance %d config %s: certificate extraction: %v", i, name, res.CertErr)
				}
				if err := cert.Check(f, res.Certificate); err != nil {
					t.Fatalf("instance %d config %s: certificate rejected: %v\n%s\nclauses %v",
						i, name, err, f, f.Matrix.Clauses)
				}
			}
		}
	}
}

// TestDefexAdderFamily is the acceptance check: the PEC adder family (largely
// definable black boxes) must be decided by definition extraction with
// certificates the independent checker accepts, and realizable instances
// should be settled without falling back to expansion of many universals.
func TestDefexAdderFamily(t *testing.T) {
	opt := bench.DefaultGenOptions()
	opt.Count = 8
	insts, err := bench.Generate(bench.FamilyAdder, opt)
	if err != nil {
		t.Fatal(err)
	}
	defined := 0
	for _, inst := range insts {
		res := solve(t, inst.Formula, defex.Options{Certify: true})
		if res.Sat {
			if res.CertErr != nil {
				t.Fatalf("%s: certificate extraction: %v", inst.Name, res.CertErr)
			}
			if err := cert.Check(inst.Formula, res.Certificate); err != nil {
				t.Fatalf("%s: certificate rejected: %v", inst.Name, err)
			}
		}
		defined += res.Stats.Defined + res.Stats.DefinedConst
	}
	if defined == 0 {
		t.Fatal("no adder existential was ever found defined; definability checks are not working")
	}
}

// TestDefexCertCorrupted flips one extracted Skolem function; the checker
// must reject the corrupted certificate (on instances whose verdict actually
// depends on that function).
func TestDefexCertCorrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rejected := 0
	for i := 0; i < 120 && rejected < 10; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(10))
		res := defex.New(defex.Options{Certify: true}).Solve(f)
		if res.Status != defex.Solved || !res.Sat || res.CertErr != nil {
			continue
		}
		if err := cert.Check(f, res.Certificate); err != nil {
			t.Fatalf("instance %d: valid certificate rejected: %v", i, err)
		}
		for _, y := range f.Exist {
			bad := &cert.Certificate{G: res.Certificate.G, Funcs: make(map[cnf.Var]aig.Ref)}
			for k, v := range res.Certificate.Funcs {
				bad.Funcs[k] = v
			}
			bad.Funcs[y] = bad.Funcs[y].Not()
			if err := cert.Check(f, bad); err != nil {
				rejected++
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no corrupted certificate was ever rejected; the checker is vacuous here")
	}
}

// renameFormula maps every variable v to perm[v], preserving the quantifier
// structure (mirrors the internal/core metamorphic harness).
func renameFormula(f *dqbf.Formula, perm map[cnf.Var]cnf.Var) *dqbf.Formula {
	g := dqbf.New()
	for _, x := range f.Univ {
		g.AddUniversal(perm[x])
	}
	for _, y := range f.Exist {
		var deps []cnf.Var
		for _, x := range f.Deps[y].Vars() {
			deps = append(deps, perm[x])
		}
		g.AddExistential(perm[y], deps...)
	}
	for _, c := range f.Matrix.Clauses {
		nc := make(cnf.Clause, len(c))
		for i, l := range c {
			nc[i] = cnf.NewLit(perm[l.Var()], l.Neg())
		}
		g.Matrix.Clauses = append(g.Matrix.Clauses, nc)
	}
	return g
}

// TestDefexMetamorphicRenaming applies a random variable permutation; the
// defex verdict must not change.
func TestDefexMetamorphicRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		f := dqbf.RandomFormula(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(12))
		want := solve(t, f, defex.Options{}).Sat

		nv := len(f.Univ) + len(f.Exist)
		vars := make([]cnf.Var, 0, nv)
		for v := cnf.Var(1); v <= cnf.Var(nv); v++ {
			vars = append(vars, v)
		}
		perm := make(map[cnf.Var]cnf.Var, nv)
		for j, k := range rng.Perm(nv) {
			perm[vars[j]] = vars[k]
		}
		got := solve(t, renameFormula(f, perm), defex.Options{}).Sat
		if got != want {
			t.Fatalf("instance %d: renamed verdict %v, original %v (perm %v)\nclauses %v",
				i, got, want, perm, f.Matrix.Clauses)
		}
	}
}

// TestDefexDefinedEndgame pins a fully definable instance: y ↔ x1⊕x2 with
// D_y = {x1, x2}. The realizable variant must be decided by the definability
// endgame without expansion; restricting D_y to {x1} makes y undefinable and
// the formula false.
func TestDefexDefinedEndgame(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1, 2)
	// y ↔ x1⊕x2.
	f.Matrix.AddClause(cnf.NegLit(3), cnf.PosLit(1), cnf.PosLit(2))
	f.Matrix.AddClause(cnf.NegLit(3), cnf.NegLit(1), cnf.NegLit(2))
	f.Matrix.AddClause(cnf.PosLit(3), cnf.NegLit(1), cnf.PosLit(2))
	f.Matrix.AddClause(cnf.PosLit(3), cnf.PosLit(1), cnf.NegLit(2))

	res := solve(t, f, defex.Options{Certify: true})
	if !res.Sat {
		t.Fatal("xor-definition instance must be SAT")
	}
	if res.Stats.Defined != 1 || res.Stats.ExpandUsed {
		t.Fatalf("want 1 defined existential and no expansion, got %+v", res.Stats)
	}
	if res.Stats.DecidedBy != "defined" {
		t.Fatalf("decided by %q, want \"defined\"", res.Stats.DecidedBy)
	}
	if err := cert.Check(f, res.Certificate); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}

	// With D_y = {x1} the xor is not a function of the dependency set.
	g := f.Clone()
	g.Deps[3] = dqbf.NewVarSet(1)
	res = solve(t, g, defex.Options{})
	if res.Sat {
		t.Fatal("restricted-dependency variant must be UNSAT")
	}
}
