package defex

import (
	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// extractHow tags which strategy produced a definition.
type extractHow int

const (
	extractFailed extractHow = iota
	extractInterp
	extractSemantic
)

// aigItp implements sat.ItpBuilder directly over the solve's AIG: interpolant
// nodes are ordinary AND/OR cones, so the extracted definition needs no
// translation step and structural hashing dedups shared subterms for free.
type aigItp struct{ g *aig.Graph }

func (b aigItp) True() sat.ItpRef  { return sat.ItpRef(aig.True) }
func (b aigItp) False() sat.ItpRef { return sat.ItpRef(aig.False) }
func (b aigItp) Lit(l cnf.Lit) sat.ItpRef {
	return sat.ItpRef(b.g.Input(l.Var()).XorSign(l.Neg()))
}
func (b aigItp) And(x, y sat.ItpRef) sat.ItpRef {
	return sat.ItpRef(b.g.And(aig.Ref(x), aig.Ref(y)))
}
func (b aigItp) Or(x, y sat.ItpRef) sat.ItpRef {
	return sat.ItpRef(b.g.Or(aig.Ref(x), aig.Ref(y)))
}

// extract obtains the defining function ψ of a variable the Padoa check
// proved defined: interpolation over a fresh proof-mode refutation first
// (unless ModeSemantic), semantic enumeration as the fallback. Every
// candidate is verified against the persistent oracle (M ∧ (y ⊕ ψ) must be
// unsatisfiable) before it is trusted.
func (e *engine) extract(y cnf.Var) (aig.Ref, extractHow) {
	if e.opt.Mode == ModeInterp {
		if psi, ok := e.interpolate(y); ok {
			if e.verifyDef(y, psi) {
				return psi, extractInterp
			}
		}
		e.res.Stats.InterpFallbacks++
	}
	if psi, ok := e.semanticDef(y); ok && e.verifyDef(y, psi) {
		return psi, extractSemantic
	}
	return aig.False, extractFailed
}

// verifyDef checks M ⊨ (y ↔ ψ) with one incremental oracle query: M ∧ (y⊕ψ)
// must be unsatisfiable. Inconclusive queries reject the candidate.
func (e *engine) verifyDef(y cnf.Var, psi aig.Ref) bool {
	diff := e.g.Xor(e.g.Input(y), psi)
	sat, err := e.query(e.orc.Lit(e.m), e.orc.Lit(diff))
	return err == nil && !sat
}

// interpolate rebuilds the Padoa refutation for y on a fresh proof-mode
// solver and returns the Craig interpolant — a function over the shared
// vocabulary, which is exactly D_y. The A part is the matrix with unit y, the
// B part a copy of the matrix with every support variable except D_y primed
// (offset +n) and unit ¬y'; Tseitin gate variables of the two encodings are
// kept in disjoint ranges so the class function can label them by range.
func (e *engine) interpolate(y cnf.Var) (aig.Ref, bool) {
	g, n := e.g, e.n
	deps := e.work.Deps[y]

	fa, rootA := g.ToFormula(e.m, 2*n)

	renB := make(map[cnf.Var]cnf.Var)
	for v := range g.Support(e.m) {
		if !deps.Has(v) {
			renB[v] = v + n
		}
	}
	bMatrix := g.Rename(e.m, renB)
	maxB := cnf.Var(fa.NumVars)
	if 2*n > maxB {
		maxB = 2 * n
	}
	fb, rootB := g.ToFormula(bMatrix, maxB)

	class := func(v cnf.Var) sat.ItpClass {
		switch {
		case deps.Has(v):
			return sat.ItpClassShared
		case v <= n:
			return sat.ItpClassA
		case v <= 2*n:
			return sat.ItpClassB
		case int(v) <= fa.NumVars:
			return sat.ItpClassA
		default:
			return sat.ItpClassB
		}
	}

	s := sat.New()
	s.Budget = e.opt.Budget
	s.BeginInterpolation(aigItp{g: g}, class)
	ok := true
	for _, c := range fa.Clauses {
		ok = s.AddClauseTagged(false, c...) && ok
	}
	ok = ok && s.AddClauseTagged(false, rootA)
	ok = ok && s.AddClauseTagged(false, cnf.PosLit(y))
	for _, c := range fb.Clauses {
		ok = s.AddClauseTagged(true, c...) && ok
	}
	ok = ok && s.AddClauseTagged(true, rootB)
	ok = ok && s.AddClauseTagged(true, cnf.NegLit(y+n))
	if ok {
		if s.Solve() != sat.Unsat {
			// Unknown (budget) — or Sat, which would contradict the Padoa
			// check and means a bug or an injected fault upstream; either way
			// fall back.
			return aig.False, false
		}
	}
	ref, has := s.Interpolant()
	if !has {
		return aig.False, false
	}
	psi := aig.Ref(ref)
	// The interpolant vocabulary is the shared one by construction; guard
	// against regressions defensively since substitution would silently
	// corrupt the matrix otherwise.
	for v := range g.Support(psi) {
		if !deps.Has(v) {
			return aig.False, false
		}
	}
	return psi, true
}

// semanticDef enumerates the defining function pointwise: for each
// assignment d of D_y, ψ(d) is true iff M ∧ d ∧ y is satisfiable (given
// definedness, the matrix forces a unique value wherever it is satisfiable,
// and unconstrained points may take either — false — value). Bounded to
// small dependency sets by SemanticMaxDeps.
func (e *engine) semanticDef(y cnf.Var) (aig.Ref, bool) {
	deps := e.work.Deps[y].Vars()
	limit := e.opt.SemanticMaxDeps
	if limit <= 0 {
		limit = 8
	}
	if len(deps) > limit {
		return aig.False, false
	}
	g := e.g
	mLit := e.orc.Lit(e.m)
	yLit := e.orc.Lit(g.Input(y))
	psi := aig.False
	assumps := make([]cnf.Lit, 0, len(deps)+2)
	for bits := 0; bits < 1<<len(deps); bits++ {
		assumps = assumps[:0]
		assumps = append(assumps, mLit, yLit)
		minterm := aig.True
		for i, d := range deps {
			pos := bits&(1<<i) != 0
			assumps = append(assumps, e.orc.Lit(g.Input(d)).XorSign(!pos))
			minterm = g.And(minterm, g.Input(d).XorSign(!pos))
		}
		val, err := e.query(assumps...)
		if err != nil {
			return aig.False, false
		}
		if val {
			psi = g.Or(psi, minterm)
		}
	}
	return psi, true
}
