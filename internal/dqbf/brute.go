package dqbf

import (
	"fmt"

	"repro/internal/cnf"
)

// BruteForce decides the DQBF by enumerating all combinations of Skolem
// function tables (Definition 2): for each existential y, a truth table over
// the assignments of D_y. It is exponential in Σ_y 2^|D_y| and in the number
// of universals, and refuses formulas where that blows up; it exists purely
// as ground truth for the real solvers in tests.
func BruteForce(f *Formula) (bool, error) {
	totalBits := 0
	for _, y := range f.Exist {
		d := f.Deps[y].Len()
		if d > 10 {
			return false, fmt.Errorf("dqbf: dependency set of %d too large for brute force", y)
		}
		totalBits += 1 << d
	}
	if totalBits > 24 {
		return false, fmt.Errorf("dqbf: %d Skolem table bits too many for brute force", totalBits)
	}
	if len(f.Univ) > 16 {
		return false, fmt.Errorf("dqbf: %d universals too many for brute force", len(f.Univ))
	}

	// Bit layout: for each existential (in order), a contiguous block of
	// 2^|D_y| table bits indexed by the assignment of D_y (packed in
	// ascending variable order).
	type entry struct {
		y      cnf.Var
		deps   []cnf.Var
		offset int
	}
	var entries []entry
	off := 0
	for _, y := range f.Exist {
		deps := f.Deps[y].Vars()
		entries = append(entries, entry{y: y, deps: deps, offset: off})
		off += 1 << len(deps)
	}

	assign := cnf.NewAssignment(f.Matrix.NumVars)
	nUniv := len(f.Univ)
	for tables := uint64(0); tables < 1<<totalBits; tables++ {
		ok := true
		for ubits := 0; ubits < 1<<nUniv && ok; ubits++ {
			for i, x := range f.Univ {
				assign.Set(x, ubits&(1<<i) != 0)
			}
			for _, e := range entries {
				idx := 0
				for i, d := range e.deps {
					if assign.Get(d) {
						idx |= 1 << i
					}
				}
				assign.Set(e.y, tables&(1<<(e.offset+idx)) != 0)
			}
			if !f.Matrix.Eval(assign) {
				ok = false
			}
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
