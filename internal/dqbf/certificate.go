package dqbf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// Certificate is a collection of Skolem function tables witnessing the
// satisfaction of a DQBF (Definition 2): for every existential variable y, a
// truth table over the assignments of D_y, stored sparsely as a map from
// projection keys to values. Projections absent from a table take the
// Default value (false unless overridden). A certificate is the natural
// output of instantiation-based solvers and can be checked independently
// with one SAT call (the certification perspective of Balabanov et al.).
type Certificate struct {
	// Tables maps each existential variable to its sparse truth table. Keys
	// are produced by ProjectionKey.
	Tables map[cnf.Var]map[string]bool
	// Defaults optionally overrides the off-table value per variable.
	Defaults map[cnf.Var]bool
}

// ProjectionKey renders the projection of a universal assignment onto the
// ordered dependency set: one byte '0' or '1' per dependency variable in
// ascending variable order.
func ProjectionKey(deps []cnf.Var, value func(cnf.Var) bool) string {
	var b strings.Builder
	for _, d := range deps {
		if value(d) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Value looks up the certificate value of y under the given universal
// assignment.
func (c *Certificate) Value(f *Formula, y cnf.Var, assign func(cnf.Var) bool) bool {
	deps := f.Deps[y].Vars()
	key := ProjectionKey(deps, assign)
	if tab, ok := c.Tables[y]; ok {
		if v, ok := tab[key]; ok {
			return v
		}
	}
	return c.Defaults[y]
}

// Eval evaluates the matrix under a universal assignment with every
// existential replaced by its certificate value.
func (c *Certificate) Eval(f *Formula, assign cnf.Assignment) bool {
	full := assign
	for _, y := range f.Exist {
		full.Set(y, c.Value(f, y, func(v cnf.Var) bool { return assign.Get(v) }))
	}
	return f.Matrix.Eval(full)
}

// Verify checks the certificate against the formula with a single SAT call:
// it searches for a universal assignment falsifying the matrix under the
// certified Skolem functions. A nil error means the certificate is valid
// (the DQBF is satisfied and these tables witness it).
func (c *Certificate) Verify(f *Formula) error {
	s := sat.New()
	vmap := make(map[cnf.Var]cnf.Var)
	varOf := func(v cnf.Var) cnf.Var {
		w, ok := vmap[v]
		if !ok {
			w = s.NewVar()
			vmap[v] = w
		}
		return w
	}

	// Pin every existential to its certified function:
	// y ↔ default ⊕ (⋁_{p : table[p] ≠ default} match_p).
	for _, y := range f.Exist {
		deps := f.Deps[y].Vars()
		yl := cnf.PosLit(varOf(y))
		def := c.Defaults[y]
		tab := c.Tables[y]
		var flips []string
		for k, v := range tab {
			if len(k) != len(deps) {
				return fmt.Errorf("dqbf: certificate key %q for variable %d has wrong arity (deps %v)", k, y, deps)
			}
			if v != def {
				flips = append(flips, k)
			}
		}
		sort.Strings(flips)
		if len(flips) == 0 {
			// Constant function.
			s.AddClause(yl.XorSign(!def))
			continue
		}
		// aux_p ↔ match_p; y ↔ def ⊕ ⋁ aux.
		var auxes []cnf.Lit
		for _, k := range flips {
			aux := cnf.PosLit(s.NewVar())
			long := []cnf.Lit{aux}
			for i, d := range deps {
				dl := cnf.NewLit(varOf(d), k[i] == '0')
				s.AddClause(aux.Not(), dl)
				long = append(long, dl.Not())
			}
			s.AddClause(long...)
			auxes = append(auxes, aux)
		}
		// flipLit is true iff some aux holds.
		flip := cnf.PosLit(s.NewVar())
		or := append([]cnf.Lit{flip.Not()}, auxes...)
		s.AddClause(or...)
		for _, aux := range auxes {
			s.AddClause(flip, aux.Not())
		}
		// y ↔ def ⊕ flip.
		yv := yl.XorSign(def) // literal that must equal flip
		s.AddClause(yv.Not(), flip)
		s.AddClause(yv, flip.Not())
	}

	// Some clause violated?
	var sel []cnf.Lit
	for _, cl := range f.Matrix.Clauses {
		sl := cnf.PosLit(s.NewVar())
		for _, l := range cl {
			s.AddClause(sl.Not(), cnf.NewLit(varOf(l.Var()), l.Neg()).Not())
		}
		sel = append(sel, sl)
	}
	if len(sel) == 0 {
		return nil
	}
	s.AddClause(sel...)

	if s.Solve() != sat.Sat {
		return nil
	}
	m := s.Model()
	var parts []string
	for _, x := range f.Univ {
		val := 0
		if w, ok := vmap[x]; ok && m.Get(w) {
			val = 1
		}
		parts = append(parts, fmt.Sprintf("%d=%d", x, val))
	}
	return fmt.Errorf("dqbf: certificate falsified at universal assignment {%s}", strings.Join(parts, ","))
}
