package dqbf

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// ex1 is the paper's Example 1 with matrix (y1↔x1)∧(y2↔x2).
func ex1() *Formula {
	f := New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

// identityCert is the witness y1 := x1, y2 := x2.
func identityCert() *Certificate {
	return &Certificate{
		Tables: map[cnf.Var]map[string]bool{
			3: {"0": false, "1": true},
			4: {"0": false, "1": true},
		},
	}
}

func TestVerifyValidCertificate(t *testing.T) {
	if err := identityCert().Verify(ex1()); err != nil {
		t.Fatalf("identity certificate rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedCertificate(t *testing.T) {
	c := identityCert()
	c.Tables[3]["1"] = false // y1 now constant 0: violated at x1=1
	if err := c.Verify(ex1()); err == nil {
		t.Fatal("tampered certificate accepted")
	}
}

func TestVerifyRejectsWrongArityKey(t *testing.T) {
	c := identityCert()
	c.Tables[3] = map[string]bool{"01": true}
	if err := c.Verify(ex1()); err == nil {
		t.Fatal("wrong-arity key accepted")
	}
}

func TestVerifySparseDefaults(t *testing.T) {
	// Only the '1' entries stored; default false supplies the rest.
	c := &Certificate{
		Tables: map[cnf.Var]map[string]bool{
			3: {"1": true},
			4: {"1": true},
		},
	}
	if err := c.Verify(ex1()); err != nil {
		t.Fatalf("sparse certificate rejected: %v", err)
	}
}

func TestVerifyDefaultsTrue(t *testing.T) {
	// With default true, the stored entries are the zeros.
	c := &Certificate{
		Tables: map[cnf.Var]map[string]bool{
			3: {"0": false},
			4: {"0": false},
		},
		Defaults: map[cnf.Var]bool{3: true, 4: true},
	}
	if err := c.Verify(ex1()); err != nil {
		t.Fatalf("default-true certificate rejected: %v", err)
	}
}

func TestCertificateEvalMatchesSemantics(t *testing.T) {
	f := ex1()
	c := identityCert()
	for bits := 0; bits < 4; bits++ {
		a := cnf.NewAssignment(f.Matrix.NumVars)
		a.Set(1, bits&1 != 0)
		a.Set(2, bits&2 != 0)
		if !c.Eval(f, a) {
			t.Fatalf("identity certificate fails at %02b", bits)
		}
	}
	bad := identityCert()
	bad.Tables[4]["0"] = true
	fails := 0
	for bits := 0; bits < 4; bits++ {
		a := cnf.NewAssignment(f.Matrix.NumVars)
		a.Set(1, bits&1 != 0)
		a.Set(2, bits&2 != 0)
		if !bad.Eval(f, a) {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("broken certificate evaluates true everywhere")
	}
}

func TestProjectionKey(t *testing.T) {
	deps := []cnf.Var{2, 5, 9}
	key := ProjectionKey(deps, func(v cnf.Var) bool { return v == 5 })
	if key != "010" {
		t.Fatalf("key = %q", key)
	}
	if ProjectionKey(nil, nil) != "" {
		t.Fatal("empty deps should give empty key")
	}
}

func TestVerifyConstantFunctions(t *testing.T) {
	// ∀x ∃y(x): y ∨ x — y := 1 constant works; empty table + default true.
	f := New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(2, 1)
	good := &Certificate{Defaults: map[cnf.Var]bool{2: true}}
	if err := good.Verify(f); err != nil {
		t.Fatalf("constant-1 certificate rejected: %v", err)
	}
	bad := &Certificate{}
	if err := bad.Verify(f); err == nil {
		t.Fatal("constant-0 certificate accepted (fails at x=0)")
	}
}

// exhaustiveValid checks a certificate by enumerating universal assignments.
func exhaustiveValid(f *Formula, c *Certificate) bool {
	n := len(f.Univ)
	for bits := 0; bits < 1<<n; bits++ {
		a := cnf.NewAssignment(f.Matrix.NumVars)
		for i, x := range f.Univ {
			a.Set(x, bits&(1<<i) != 0)
		}
		if !c.Eval(f, a) {
			return false
		}
	}
	return true
}

func TestVerifyAgreesWithExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 150; iter++ {
		f := New()
		nUniv := 1 + rng.Intn(3)
		for i := 1; i <= nUniv; i++ {
			f.AddUniversal(cnf.Var(i))
		}
		nExist := 1 + rng.Intn(3)
		for i := 0; i < nExist; i++ {
			y := cnf.Var(nUniv + i + 1)
			var deps []cnf.Var
			for _, x := range f.Univ {
				if rng.Intn(2) == 0 {
					deps = append(deps, x)
				}
			}
			f.AddExistential(y, deps...)
		}
		n := nUniv + nExist
		for i := 0; i < 2+rng.Intn(8); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			f.Matrix.Clauses = append(f.Matrix.Clauses, c)
		}
		// Random certificate.
		cert := &Certificate{Tables: map[cnf.Var]map[string]bool{}, Defaults: map[cnf.Var]bool{}}
		for _, y := range f.Exist {
			deps := f.Deps[y].Vars()
			tab := map[string]bool{}
			for bits := 0; bits < 1<<len(deps); bits++ {
				if rng.Intn(2) == 0 {
					continue // leave sparse
				}
				key := ProjectionKey(deps, func(v cnf.Var) bool {
					for i, d := range deps {
						if d == v {
							return bits&(1<<i) != 0
						}
					}
					return false
				})
				tab[key] = rng.Intn(2) == 0
			}
			cert.Tables[y] = tab
			cert.Defaults[y] = rng.Intn(2) == 0
		}
		want := exhaustiveValid(f, cert)
		got := cert.Verify(f) == nil
		if got != want {
			t.Fatalf("iter %d: Verify=%v exhaustive=%v\n%v\n%v", iter, got, want, f, f.Matrix.Clauses)
		}
	}
}
