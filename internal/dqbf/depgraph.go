package dqbf

import (
	"sort"

	"repro/internal/cnf"
)

// DepGraph is the dependency graph of Definition 4: vertices are the
// existential variables; there is an edge y→z iff D_y ⊄ D_z (y depends on a
// universal that z does not).
type DepGraph struct {
	Vars  []cnf.Var
	Edges map[cnf.Var]*VarSet // adjacency: Edges[y] = {z | y→z}
}

// DependencyGraph builds the dependency graph of the formula.
func DependencyGraph(f *Formula) *DepGraph {
	g := &DepGraph{
		Vars:  append([]cnf.Var(nil), f.Exist...),
		Edges: make(map[cnf.Var]*VarSet, len(f.Exist)),
	}
	for _, y := range f.Exist {
		g.Edges[y] = NewVarSet()
	}
	for _, y := range f.Exist {
		for _, z := range f.Exist {
			if y == z {
				continue
			}
			if !f.Deps[y].SubsetOf(f.Deps[z]) {
				g.Edges[y].Add(z)
			}
		}
	}
	return g
}

// HasEdge reports whether the edge y→z is present.
func (g *DepGraph) HasEdge(y, z cnf.Var) bool {
	e, ok := g.Edges[y]
	return ok && e.Has(z)
}

// BinaryCycles returns the unordered pairs {y,z} with both y→z and z→y —
// by Lemma 1/Theorem 4 the graph is cyclic iff such a pair exists, so these
// pairs characterize all non-linearity in the prefix.
func BinaryCycles(f *Formula) [][2]cnf.Var {
	var out [][2]cnf.Var
	for i, y := range f.Exist {
		for _, z := range f.Exist[i+1:] {
			if !f.Deps[y].SubsetOf(f.Deps[z]) && !f.Deps[z].SubsetOf(f.Deps[y]) {
				out = append(out, [2]cnf.Var{y, z})
			}
		}
	}
	return out
}

// IsCyclic reports whether the dependency graph contains a cycle, using the
// pairwise incomparability criterion of Theorem 4.
func IsCyclic(f *Formula) bool {
	for i, y := range f.Exist {
		for _, z := range f.Exist[i+1:] {
			if !f.Deps[y].SubsetOf(f.Deps[z]) && !f.Deps[z].SubsetOf(f.Deps[y]) {
				return true
			}
		}
	}
	return false
}

// HasQBFPrefix reports whether the DQBF admits an equivalent linear (QBF)
// prefix — Theorem 3: iff the dependency graph is acyclic.
func HasQBFPrefix(f *Formula) bool { return !IsCyclic(f) }

// Block is one ∀X ∃Y block pair of a linear prefix. Universals in X precede
// the existentials in Y.
type Block struct {
	Univ  []cnf.Var
	Exist []cnf.Var
}

// Linearize converts an acyclic DQBF prefix into an equivalent QBF prefix,
// following the constructive proof of Theorem 3: existential variables whose
// dependency sets are minimal (no outgoing edges) form the innermost-first
// blocks... ordered outermost-first in the returned slice. Universals are
// distributed so that block i's X_i holds the dependencies not yet
// introduced; a final block carries universals no existential depends on.
// It panics if the prefix is cyclic.
func Linearize(f *Formula) []Block {
	if IsCyclic(f) {
		panic("dqbf: Linearize on cyclic dependency graph")
	}
	remaining := append([]cnf.Var(nil), f.Exist...)
	introduced := NewVarSet()
	var blocks []Block
	for len(remaining) > 0 {
		// Variables with no outgoing edges among the remaining ones:
		// D_y ⊆ D_z for every remaining z.
		var level []cnf.Var
		for _, y := range remaining {
			minimal := true
			for _, z := range remaining {
				if y != z && !f.Deps[y].SubsetOf(f.Deps[z]) {
					minimal = false
					break
				}
			}
			if minimal {
				level = append(level, y)
			}
		}
		if len(level) == 0 {
			panic("dqbf: no minimal variable in acyclic graph")
		}
		// All minimal variables share the same dependency set (they are
		// mutually comparable in both directions).
		deps := f.Deps[level[0]]
		newUniv := deps.Diff(introduced).Vars()
		sort.Slice(newUniv, func(i, j int) bool { return newUniv[i] < newUniv[j] })
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		blocks = append(blocks, Block{Univ: newUniv, Exist: level})
		for _, v := range newUniv {
			introduced.Add(v)
		}
		levelSet := NewVarSet(level...)
		var rest []cnf.Var
		for _, y := range remaining {
			if !levelSet.Has(y) {
				rest = append(rest, y)
			}
		}
		remaining = rest
	}
	// Trailing universals that no existential depends on.
	var tail []cnf.Var
	for _, x := range f.Univ {
		if !introduced.Has(x) {
			tail = append(tail, x)
		}
	}
	if len(tail) > 0 {
		blocks = append(blocks, Block{Univ: tail})
	}
	return blocks
}
