// Package dqbf provides the representation of dependency quantified Boolean
// formulas (DQBF): a Henkin quantifier prefix — universal variables plus
// existential variables with explicit dependency sets — over a CNF matrix.
//
// It implements the prefix-analysis machinery of the paper: the dependency
// graph of Definition 4, the acyclicity criterion of Theorem 3 (a DQBF has an
// equivalent QBF prefix iff its dependency graph is acyclic), the binary-cycle
// characterization of Lemma 1/Theorem 4, the QBF-prefix linearization used
// once HQS has broken all cycles, reading and writing of the DQDIMACS format,
// and a brute-force decision procedure (Skolem-table enumeration) that serves
// as ground truth in tests.
package dqbf

import (
	"fmt"
	"sort"

	"repro/internal/cnf"
)

// Formula is a DQBF: ∀x1..∀xn ∃y1(D_y1)..∃ym(D_ym) : matrix.
type Formula struct {
	// Univ lists the universal variables in prefix order.
	Univ []cnf.Var
	// Exist lists the existential variables in prefix order.
	Exist []cnf.Var
	// Deps maps each existential variable to its dependency set.
	Deps map[cnf.Var]*VarSet
	// Matrix is the CNF matrix. Matrix.NumVars bounds all prefix variables.
	Matrix *cnf.Formula
}

// New returns an empty DQBF with an empty matrix.
func New() *Formula {
	return &Formula{
		Deps:   make(map[cnf.Var]*VarSet),
		Matrix: cnf.NewFormula(0),
	}
}

// AddUniversal appends a universal variable to the prefix.
func (f *Formula) AddUniversal(v cnf.Var) {
	f.Univ = append(f.Univ, v)
	if int(v) > f.Matrix.NumVars {
		f.Matrix.NumVars = int(v)
	}
}

// AddExistential appends an existential variable with the given dependency
// set (which is copied).
func (f *Formula) AddExistential(v cnf.Var, deps ...cnf.Var) {
	f.Exist = append(f.Exist, v)
	f.Deps[v] = NewVarSet(deps...)
	if int(v) > f.Matrix.NumVars {
		f.Matrix.NumVars = int(v)
	}
}

// IsUniversal reports whether v is universally quantified.
func (f *Formula) IsUniversal(v cnf.Var) bool {
	for _, u := range f.Univ {
		if u == v {
			return true
		}
	}
	return false
}

// IsExistential reports whether v is existentially quantified.
func (f *Formula) IsExistential(v cnf.Var) bool {
	_, ok := f.Deps[v]
	return ok
}

// UniversalSet returns the universal variables as a VarSet.
func (f *Formula) UniversalSet() *VarSet {
	return NewVarSet(f.Univ...)
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	g := New()
	g.Univ = append([]cnf.Var(nil), f.Univ...)
	g.Exist = append([]cnf.Var(nil), f.Exist...)
	for v, d := range f.Deps {
		g.Deps[v] = d.Clone()
	}
	g.Matrix = f.Matrix.Clone()
	return g
}

// Validate checks structural invariants: disjoint quantifier sets,
// dependencies drawn from the universals, matrix variables all quantified
// (free matrix variables are reported as an error).
func (f *Formula) Validate() error {
	uni := NewVarSet(f.Univ...)
	exi := NewVarSet(f.Exist...)
	if len(f.Univ) != uni.Len() {
		return fmt.Errorf("dqbf: duplicate universal variable")
	}
	if len(f.Exist) != exi.Len() {
		return fmt.Errorf("dqbf: duplicate existential variable")
	}
	if !uni.Intersect(exi).Empty() {
		return fmt.Errorf("dqbf: variable quantified both ways: %v", uni.Intersect(exi))
	}
	for _, y := range f.Exist {
		d, ok := f.Deps[y]
		if !ok {
			return fmt.Errorf("dqbf: existential %d has no dependency set", y)
		}
		if !d.SubsetOf(uni) {
			return fmt.Errorf("dqbf: dependency set of %d contains non-universals: %v", y, d.Diff(uni))
		}
	}
	for i, c := range f.Matrix.Clauses {
		for _, l := range c {
			v := l.Var()
			if !uni.Has(v) && !exi.Has(v) {
				return fmt.Errorf("dqbf: clause %d uses unquantified variable %d", i, v)
			}
		}
	}
	return nil
}

// String renders the prefix in a compact human-readable form.
func (f *Formula) String() string {
	s := "∀" + fmt.Sprint(f.Univ)
	ex := append([]cnf.Var(nil), f.Exist...)
	sort.Slice(ex, func(i, j int) bool { return ex[i] < ex[j] })
	for _, y := range ex {
		s += fmt.Sprintf(" ∃%d%s", y, f.Deps[y])
	}
	return s + fmt.Sprintf(" : %d clauses", len(f.Matrix.Clauses))
}
