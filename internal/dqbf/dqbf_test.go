package dqbf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
)

func TestVarSetBasics(t *testing.T) {
	s := NewVarSet(1, 3, 65)
	if !s.Has(1) || !s.Has(3) || !s.Has(65) || s.Has(2) {
		t.Fatal("Has broken")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 2 {
		t.Fatal("Remove broken")
	}
	if s.Empty() {
		t.Fatal("set is not empty")
	}
	if !NewVarSet().Empty() {
		t.Fatal("fresh set should be empty")
	}
	if s.String() != "{1,65}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestVarSetOpsAgainstMaps(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := NewVarSet(), NewVarSet()
		ma, mb := map[cnf.Var]bool{}, map[cnf.Var]bool{}
		for _, x := range a {
			v := cnf.Var(x%100 + 1)
			sa.Add(v)
			ma[v] = true
		}
		for _, x := range b {
			v := cnf.Var(x%100 + 1)
			sb.Add(v)
			mb[v] = true
		}
		subset := true
		for v := range ma {
			if !mb[v] {
				subset = false
			}
		}
		if sa.SubsetOf(sb) != subset {
			return false
		}
		diff := sa.Diff(sb)
		for v := range ma {
			if diff.Has(v) == mb[v] {
				return false
			}
		}
		uni := sa.Union(sb)
		inter := sa.Intersect(sb)
		for v := cnf.Var(1); v <= 101; v++ {
			if uni.Has(v) != (ma[v] || mb[v]) {
				return false
			}
			if inter.Has(v) != (ma[v] && mb[v]) {
				return false
			}
		}
		return sa.Clone().Equal(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarSetVarsSorted(t *testing.T) {
	s := NewVarSet(70, 2, 130, 5)
	vs := s.Vars()
	want := []cnf.Var{2, 5, 70, 130}
	if len(vs) != len(want) {
		t.Fatalf("Vars = %v", vs)
	}
	for i := range vs {
		if vs[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vs, want)
		}
	}
}

// paperExample1 builds ∀x1∀x2 ∃y1(x1) ∃y2(x2) : φ with x1=1, x2=2, y1=3,
// y2=4 and the matrix (y1↔x1) ∧ (y2↔x2).
func paperExample1() *Formula {
	f := New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func TestPaperExample1DependencyGraph(t *testing.T) {
	f := paperExample1()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	g := DependencyGraph(f)
	// Fig. 2: a 2-cycle between y1 and y2.
	if !g.HasEdge(3, 4) || !g.HasEdge(4, 3) {
		t.Fatal("expected edges y1→y2 and y2→y1")
	}
	if !IsCyclic(f) {
		t.Fatal("Example 1 has no equivalent QBF prefix (Theorem 3)")
	}
	if HasQBFPrefix(f) {
		t.Fatal("HasQBFPrefix must be false")
	}
	cycles := BinaryCycles(f)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v", cycles)
	}
}

func TestPaperExample1Satisfiable(t *testing.T) {
	// y1 := x1, y2 := x2 are Skolem functions, so the DQBF is satisfied.
	sat, err := BruteForce(paperExample1())
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Fatal("Example 1 matrix (y1↔x1)∧(y2↔x2) is satisfiable")
	}
}

func TestCrossDependencyUnsat(t *testing.T) {
	// ∀x1∀x2 ∃y1(x2) ∃y2(x1) : (y1↔x1) ∧ (y2↔x2): y1 must equal x1 but may
	// only depend on x2 — unsatisfiable.
	f := New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	sat, err := BruteForce(f)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatal("cross-dependency identity is unsatisfiable")
	}
}

func TestQBFEquivalentDQBFAcyclic(t *testing.T) {
	// ∀x1 ∃y1(x1) ∀x2 ∃y2(x1,x2) as DQBF: linear dependencies, acyclic.
	f := New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 1, 2)
	if IsCyclic(f) {
		t.Fatal("linear prefix must be acyclic")
	}
	blocks := Linearize(f)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	if len(blocks[0].Univ) != 1 || blocks[0].Univ[0] != 1 || blocks[0].Exist[0] != 3 {
		t.Fatalf("block 0 = %+v", blocks[0])
	}
	if len(blocks[1].Univ) != 1 || blocks[1].Univ[0] != 2 || blocks[1].Exist[0] != 4 {
		t.Fatalf("block 1 = %+v", blocks[1])
	}
}

func TestLinearizeTrailingUniversals(t *testing.T) {
	f := New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	blocks := Linearize(f)
	// ∀1 ∃3 ∀2 — variable 2 lands in a trailing universal block.
	if len(blocks) != 2 || len(blocks[1].Univ) != 1 || blocks[1].Univ[0] != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	if len(blocks[1].Exist) != 0 {
		t.Fatal("trailing block must have no existentials")
	}
}

func TestLinearizeEqualDepsShareBlock(t *testing.T) {
	f := New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.AddExistential(3, 1)
	blocks := Linearize(f)
	if len(blocks) != 1 || len(blocks[0].Exist) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
}

func TestLinearizePanicsOnCyclic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Linearize must panic on cyclic graphs")
		}
	}()
	Linearize(paperExample1())
}

// linearizeRespectsDeps checks the defining property of the construction:
// for every existential y, the universals left of y's block in the linear
// prefix are a superset of D_y, and universals introduced after y's block
// are not in D_y.
func linearizeRespectsDeps(t *testing.T, f *Formula) {
	t.Helper()
	blocks := Linearize(f)
	seen := NewVarSet()
	placed := make(map[cnf.Var]*VarSet)
	for _, b := range blocks {
		for _, x := range b.Univ {
			seen.Add(x)
		}
		for _, y := range b.Exist {
			placed[y] = seen.Clone()
		}
	}
	if len(placed) != len(f.Exist) {
		t.Fatalf("linearization lost existentials: %d of %d", len(placed), len(f.Exist))
	}
	for _, y := range f.Exist {
		// The QBF prefix gives y dependency set = placed[y]; equivalence to
		// the DQBF prefix requires D_y = placed[y] exactly (Definition 3's
		// translation back to DQBF).
		if !f.Deps[y].Equal(placed[y]) {
			t.Fatalf("existential %d: deps %v but linear prefix gives %v",
				y, f.Deps[y], placed[y])
		}
	}
}

func TestLinearizeRandomAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		f := New()
		nUniv := 1 + rng.Intn(5)
		for i := 0; i < nUniv; i++ {
			f.AddUniversal(cnf.Var(i + 1))
		}
		// Build a random *chain* of dependency sets to guarantee acyclicity.
		cur := NewVarSet()
		nExist := 1 + rng.Intn(5)
		for i := 0; i < nExist; i++ {
			// Extend the chain by a random subset of unused universals.
			for _, x := range f.Univ {
				if !cur.Has(x) && rng.Intn(3) == 0 {
					cur.Add(x)
				}
			}
			y := cnf.Var(nUniv + i + 1)
			f.Exist = append(f.Exist, y)
			f.Deps[y] = cur.Clone()
			if int(y) > f.Matrix.NumVars {
				f.Matrix.NumVars = int(y)
			}
		}
		if IsCyclic(f) {
			t.Fatalf("iter %d: chain construction produced a cycle", iter)
		}
		linearizeRespectsDeps(t, f)
	}
}

func TestTheorem4RandomConsistency(t *testing.T) {
	// IsCyclic (pairwise incomparability) must agree with an explicit cycle
	// search on the dependency graph.
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		f := New()
		nUniv := 1 + rng.Intn(5)
		for i := 0; i < nUniv; i++ {
			f.AddUniversal(cnf.Var(i + 1))
		}
		nExist := 1 + rng.Intn(5)
		for i := 0; i < nExist; i++ {
			y := cnf.Var(nUniv + i + 1)
			var deps []cnf.Var
			for _, x := range f.Univ {
				if rng.Intn(2) == 0 {
					deps = append(deps, x)
				}
			}
			f.AddExistential(y, deps...)
		}
		g := DependencyGraph(f)
		if IsCyclic(f) != hasCycleDFS(g) {
			t.Fatalf("iter %d: Theorem 4 criterion disagrees with DFS on %v", iter, f)
		}
	}
}

func hasCycleDFS(g *DepGraph) bool {
	state := make(map[cnf.Var]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(v cnf.Var) bool
	visit = func(v cnf.Var) bool {
		state[v] = 1
		for _, w := range g.Edges[v].Vars() {
			switch state[w] {
			case 1:
				return true
			case 0:
				if visit(w) {
					return true
				}
			}
		}
		state[v] = 2
		return false
	}
	for _, v := range g.Vars {
		if state[v] == 0 && visit(v) {
			return true
		}
	}
	return false
}

func TestValidateErrors(t *testing.T) {
	f := New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(1, -2)
	if err := f.Validate(); err != nil {
		t.Fatalf("valid formula rejected: %v", err)
	}
	// Unquantified matrix variable.
	f2 := f.Clone()
	f2.Matrix.AddDimacsClause(5)
	if f2.Validate() == nil {
		t.Fatal("unquantified variable not reported")
	}
	// Variable quantified both ways.
	f3 := f.Clone()
	f3.AddExistential(1)
	if f3.Validate() == nil {
		t.Fatal("double quantification not reported")
	}
	// Dependency on non-universal.
	f4 := New()
	f4.AddUniversal(1)
	f4.AddExistential(2, 3)
	if f4.Validate() == nil {
		t.Fatal("dependency on non-universal not reported")
	}
}

func TestDQDIMACSParse(t *testing.T) {
	in := `c PEC example
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
`
	f, err := ParseDQDIMACSString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Univ) != 2 || len(f.Exist) != 2 || len(f.Matrix.Clauses) != 4 {
		t.Fatalf("parsed %v", f)
	}
	if !f.Deps[3].Equal(NewVarSet(1)) || !f.Deps[4].Equal(NewVarSet(2)) {
		t.Fatalf("deps: %v %v", f.Deps[3], f.Deps[4])
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQDIMACSParseAsDQBF(t *testing.T) {
	in := `p cnf 4 2
a 1 0
e 2 0
a 3 0
e 4 0
1 2 0
-3 4 0
`
	f, err := ParseDQDIMACSString(in)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Deps[2].Equal(NewVarSet(1)) {
		t.Fatalf("deps of 2: %v", f.Deps[2])
	}
	if !f.Deps[4].Equal(NewVarSet(1, 3)) {
		t.Fatalf("deps of 4: %v", f.Deps[4])
	}
	if IsCyclic(f) {
		t.Fatal("QDIMACS prefix is linear")
	}
}

func TestParseFreeVariables(t *testing.T) {
	f, err := ParseDQDIMACSString("p cnf 2 1\na 1 0\n1 2 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsExistential(2) || !f.Deps[2].Empty() {
		t.Fatal("free variable should become outermost existential")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"p cnf x 1\n",
		"p dnf 1 1\n",
		"a -1 0\n",
		"d 0\n",
		"1 2 0\na 1 0\n",
		"a one 0\n",
		"1 zwei 0\n",
	}
	for _, in := range cases {
		if _, err := ParseDQDIMACSString(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestDQDIMACSRoundTrip(t *testing.T) {
	f := paperExample1()
	// Add an existential with full dependencies to exercise the e-line path.
	f.AddExistential(5, 1, 2)
	f.Matrix.AddDimacsClause(5, 3)
	var buf bytes.Buffer
	if err := f.WriteDQDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDQDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Univ) != len(f.Univ) || len(g.Exist) != len(f.Exist) {
		t.Fatalf("prefix mismatch: %v vs %v", g, f)
	}
	for _, y := range f.Exist {
		if !g.Deps[y].Equal(f.Deps[y]) {
			t.Fatalf("deps of %d differ: %v vs %v", y, g.Deps[y], f.Deps[y])
		}
	}
	if len(g.Matrix.Clauses) != len(f.Matrix.Clauses) {
		t.Fatal("clause count mismatch")
	}
}

func TestBruteForceQBFCases(t *testing.T) {
	// ∀x ∃y(x): y↔x — SAT.
	f := New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	f.Matrix.AddDimacsClause(-2, 1)
	f.Matrix.AddDimacsClause(2, -1)
	if sat, err := BruteForce(f); err != nil || !sat {
		t.Fatalf("got %v %v, want SAT", sat, err)
	}
	// ∀x ∃y(): y↔x — UNSAT (y cannot see x).
	g := New()
	g.AddUniversal(1)
	g.AddExistential(2)
	g.Matrix.AddDimacsClause(-2, 1)
	g.Matrix.AddDimacsClause(2, -1)
	if sat, err := BruteForce(g); err != nil || sat {
		t.Fatalf("got %v %v, want UNSAT", sat, err)
	}
}

func TestBruteForceRejectsHuge(t *testing.T) {
	f := New()
	for i := 1; i <= 20; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	f.AddExistential(21, f.Univ...)
	if _, err := BruteForce(f); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := paperExample1()
	g := f.Clone()
	g.Deps[3].Add(2)
	g.Matrix.AddDimacsClause(1)
	if f.Deps[3].Has(2) {
		t.Fatal("Clone shares dependency sets")
	}
	if len(f.Matrix.Clauses) == len(g.Matrix.Clauses) {
		t.Fatal("Clone shares matrix")
	}
}

func TestFormulaString(t *testing.T) {
	if paperExample1().String() == "" {
		t.Fatal("empty String")
	}
}
