package dqbf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// ParseDQDIMACS reads a formula in DQDIMACS format, the DQBF extension of
// QDIMACS used by iDQ and HQS:
//
//	p cnf <vars> <clauses>
//	a x1 x2 ... 0        universal variables
//	e y1 y2 ... 0        existentials depending on all universals so far
//	d y x1 x2 ... 0      existential y with explicit dependency set
//	<clauses>
//
// Plain QDIMACS files (alternating a/e lines) are therefore parsed as the
// equivalent DQBF. Variables not mentioned in the prefix but used in the
// matrix are treated as outermost existentials (empty dependency set), the
// QDIMACS convention for free variables.
//
// The reader is strict: the problem line must precede the prefix and matrix
// and occur exactly once, quantifier lines must be 0-terminated with nothing
// after the terminator, and every variable and literal must lie within the
// declared variable range. Violations are reported with their line number.
func ParseDQDIMACS(r io.Reader) (*Formula, error) {
	f := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var cur cnf.Clause
	var universalsSoFar []cnf.Var
	lineNo := 0
	prefixDone := false
	sawProblem := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		if !sawProblem && fields[0] != "p" {
			return nil, fmt.Errorf("dqdimacs line %d: %q before problem line", lineNo, fields[0])
		}
		switch fields[0] {
		case "p":
			if sawProblem {
				return nil, fmt.Errorf("dqdimacs line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dqdimacs line %d: malformed problem line (want \"p cnf <vars> <clauses>\")", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dqdimacs line %d: bad variable count %q", lineNo, fields[2])
			}
			if k, err := strconv.Atoi(fields[3]); err != nil || k < 0 {
				return nil, fmt.Errorf("dqdimacs line %d: bad clause count %q", lineNo, fields[3])
			}
			f.Matrix.NumVars = n
			sawProblem = true
		case "a", "e", "d":
			if prefixDone {
				return nil, fmt.Errorf("dqdimacs line %d: quantifier line after clauses", lineNo)
			}
			vars, err := parseVarLine(fields[1:], lineNo, f.Matrix.NumVars)
			if err != nil {
				return nil, err
			}
			switch fields[0] {
			case "a":
				for _, v := range vars {
					f.AddUniversal(v)
					universalsSoFar = append(universalsSoFar, v)
				}
			case "e":
				for _, v := range vars {
					f.AddExistential(v, universalsSoFar...)
				}
			case "d":
				if len(vars) == 0 {
					return nil, fmt.Errorf("dqdimacs line %d: empty d line", lineNo)
				}
				f.AddExistential(vars[0], vars[1:]...)
			}
		default:
			prefixDone = true
			for _, tok := range fields {
				d, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dqdimacs line %d: bad literal %q", lineNo, tok)
				}
				if d == 0 {
					f.Matrix.Clauses = append(f.Matrix.Clauses, cur)
					cur = nil
					continue
				}
				l := cnf.LitFromDimacs(d)
				if int(l.Var()) > f.Matrix.NumVars {
					return nil, fmt.Errorf("dqdimacs line %d: literal %d out of range (declared %d variables)",
						lineNo, d, f.Matrix.NumVars)
				}
				cur = append(cur, l)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Matrix.Clauses = append(f.Matrix.Clauses, cur)
	}
	// Free matrix variables become outermost existentials.
	quantified := NewVarSet(f.Univ...).Union(NewVarSet(f.Exist...))
	var free []cnf.Var
	seen := NewVarSet()
	for _, c := range f.Matrix.Clauses {
		for _, l := range c {
			v := l.Var()
			if !quantified.Has(v) && !seen.Has(v) {
				seen.Add(v)
				free = append(free, v)
			}
		}
	}
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	for _, v := range free {
		f.AddExistential(v)
	}
	return f, nil
}

func parseVarLine(toks []string, lineNo, numVars int) ([]cnf.Var, error) {
	var out []cnf.Var
	for i, tok := range toks {
		d, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("dqdimacs line %d: bad variable %q", lineNo, tok)
		}
		if d == 0 {
			if i != len(toks)-1 {
				return nil, fmt.Errorf("dqdimacs line %d: trailing tokens after terminating 0", lineNo)
			}
			return out, nil
		}
		if d < 0 {
			return nil, fmt.Errorf("dqdimacs line %d: negative variable %d in prefix", lineNo, d)
		}
		if d > numVars {
			return nil, fmt.Errorf("dqdimacs line %d: variable %d out of range (declared %d variables)",
				lineNo, d, numVars)
		}
		out = append(out, cnf.Var(d))
	}
	return nil, fmt.Errorf("dqdimacs line %d: quantifier line not terminated by 0", lineNo)
}

// ParseDQDIMACSString parses a DQDIMACS formula from a string.
func ParseDQDIMACSString(s string) (*Formula, error) {
	return ParseDQDIMACS(strings.NewReader(s))
}

// WriteDQDIMACS writes the formula in DQDIMACS format. Existentials whose
// dependency set equals the full universal set are emitted with an "e" line
// after all universals; all others get explicit "d" lines.
// WriteQDIMACS writes the formula in plain QDIMACS, the linear-prefix
// subset of DQDIMACS: alternating "a"/"e" blocks, no "d" lines. It fails
// when the formula is not linear — i.e. when some existential's dependency
// set is not exactly a prefix of the universal order — since QDIMACS cannot
// express such a formula without changing its meaning.
//
// The writer preserves quantifier-block order exactly: existentials are
// grouped by dependency-prefix length with a stable sort, so a
// write→parse→write round trip is a byte-level fixpoint (the parser maps
// each "e" block back to the universals declared before it).
func (f *Formula) WriteQDIMACS(w io.Writer) error {
	pos := make(map[cnf.Var]int, len(f.Univ))
	for i, x := range f.Univ {
		pos[x] = i
	}
	type block struct {
		y cnf.Var
		k int
	}
	exs := make([]block, 0, len(f.Exist))
	for _, y := range f.Exist {
		d := f.Deps[y]
		k := d.Len()
		for _, x := range d.Vars() {
			i, ok := pos[x]
			if !ok || i >= k {
				return fmt.Errorf("qdimacs: existential %d depends on %s, not a prefix of the universal order (formula is not linear)", y, d)
			}
		}
		exs = append(exs, block{y, k})
	}
	sort.SliceStable(exs, func(i, j int) bool { return exs[i].k < exs[j].k })
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.Matrix.NumVars, len(f.Matrix.Clauses))
	emitted := 0
	for i := 0; i < len(exs); {
		k := exs[i].k
		if k > emitted {
			fmt.Fprint(bw, "a")
			for _, x := range f.Univ[emitted:k] {
				fmt.Fprintf(bw, " %d", x)
			}
			fmt.Fprintln(bw, " 0")
			emitted = k
		}
		fmt.Fprint(bw, "e")
		for ; i < len(exs) && exs[i].k == k; i++ {
			fmt.Fprintf(bw, " %d", exs[i].y)
		}
		fmt.Fprintln(bw, " 0")
	}
	if emitted < len(f.Univ) {
		fmt.Fprint(bw, "a")
		for _, x := range f.Univ[emitted:] {
			fmt.Fprintf(bw, " %d", x)
		}
		fmt.Fprintln(bw, " 0")
	}
	for _, c := range f.Matrix.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}

func (f *Formula) WriteDQDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.Matrix.NumVars, len(f.Matrix.Clauses))
	if len(f.Univ) > 0 {
		fmt.Fprint(bw, "a")
		for _, v := range f.Univ {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw, " 0")
	}
	all := f.UniversalSet()
	var full []cnf.Var
	for _, y := range f.Exist {
		if f.Deps[y].Equal(all) {
			full = append(full, y)
		}
	}
	if len(full) > 0 {
		fmt.Fprint(bw, "e")
		for _, v := range full {
			fmt.Fprintf(bw, " %d", v)
		}
		fmt.Fprintln(bw, " 0")
	}
	for _, y := range f.Exist {
		if f.Deps[y].Equal(all) {
			continue
		}
		fmt.Fprintf(bw, "d %d", y)
		for _, x := range f.Deps[y].Vars() {
			fmt.Fprintf(bw, " %d", x)
		}
		fmt.Fprintln(bw, " 0")
	}
	for _, c := range f.Matrix.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
