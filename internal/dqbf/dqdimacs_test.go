package dqbf

import (
	"strings"
	"testing"
)

// TestParseMalformedInputs exercises the strict reader: every case must be
// rejected, and the error must carry the offending line number.
func TestParseMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring of the expected error
	}{
		{"missing problem line", "a 1 0\n1 0\n", "line 1"},
		{"clause before problem line", "1 2 0\n", "line 1"},
		{"duplicate problem line", "p cnf 2 1\np cnf 2 1\n1 2 0\n", "line 2: duplicate problem line"},
		{"problem line extra tokens", "p cnf 2 1 7\n", "malformed problem line"},
		{"problem line too short", "p cnf 2\n", "malformed problem line"},
		{"not cnf", "p dnf 2 1\n1 2 0\n", "malformed problem line"},
		{"bad variable count", "p cnf x 1\n", "bad variable count"},
		{"negative variable count", "p cnf -2 1\n", "bad variable count"},
		{"bad clause count", "p cnf 2 many\n", "bad clause count"},
		{"negative clause count", "p cnf 2 -1\n", "bad clause count"},
		{"prefix var not a number", "p cnf 2 1\na one 0\n", "line 2: bad variable"},
		{"prefix var negative", "p cnf 2 1\na -1 0\n", "line 2: negative variable"},
		{"prefix var out of range", "p cnf 2 1\na 3 0\n", "line 2: variable 3 out of range"},
		{"dep var out of range", "p cnf 3 1\na 1 0\nd 2 7 0\n", "line 3: variable 7 out of range"},
		{"prefix line unterminated", "p cnf 2 1\na 1\n", "line 2: quantifier line not terminated by 0"},
		{"prefix trailing tokens", "p cnf 3 1\na 1 0 2\n", "line 2: trailing tokens after terminating 0"},
		{"empty d line", "p cnf 2 1\nd 0\n", "empty d line"},
		{"literal not a number", "p cnf 2 1\n1 zwei 0\n", "bad literal"},
		{"literal out of range", "p cnf 2 1\n1 3 0\n", "line 2: literal 3 out of range"},
		{"negative literal out of range", "p cnf 2 1\n-4 1 0\n", "line 2: literal -4 out of range"},
		{"quantifier after clauses", "p cnf 2 1\n1 2 0\na 1 0\n", "quantifier line after clauses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDQDIMACSString(tc.in)
			if err == nil {
				t.Fatalf("no error for %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseStrictAccepts pins down inputs that must stay accepted: comments
// and blank lines anywhere, multi-line clauses, an unterminated final
// clause, and e-lines inheriting the universals seen so far.
func TestParseStrictAccepts(t *testing.T) {
	in := `c header comment
p cnf 4 2

a 1 0
c interleaved comment
e 2 0
d 3 1 0
1 -2
3 0
-1 4
`
	f, err := ParseDQDIMACSString(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Univ) != 1 || !f.IsExistential(2) || !f.IsExistential(3) {
		t.Fatalf("prefix: %v", f)
	}
	if !f.Deps[2].Has(1) {
		t.Fatal("e-line existential should depend on preceding universals")
	}
	if !f.IsExistential(4) || !f.Deps[4].Empty() {
		t.Fatal("free variable 4 should be an outermost existential")
	}
	if len(f.Matrix.Clauses) != 2 {
		t.Fatalf("clauses: %v", f.Matrix.Clauses)
	}
	if f.Matrix.NumVars != 4 {
		t.Fatalf("NumVars = %d, want 4", f.Matrix.NumVars)
	}
}
