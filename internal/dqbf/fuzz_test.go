package dqbf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDQDIMACSReader feeds arbitrary bytes to the strict DQDIMACS parser.
// Two properties: the parser never panics, and any input it accepts
// round-trips through the writer — write → parse → write must be a fixpoint
// (the writer emits the canonical form, so one write normalizes and the
// second must reproduce it byte for byte).
func FuzzDQDIMACSReader(f *testing.F) {
	seeds := []string{
		"p cnf 0 0\n",
		"p cnf 2 1\na 1 0\ne 2 0\n1 -2 0\n",
		"p cnf 3 2\na 1 0\nd 3 1 0\n1 3 0\n-1 -3 0\n",
		"p cnf 4 2\nc comment\na 1 2 0\ne 3 0\nd 4 1 0\n3 -4 0\n1 2 3 4 0\n",
		"p cnf 2 1\n1 2 0",
		"p cnf 1 1\n\n1 0\n",
		"garbage\n",
		"p cnf 1 1\na 99 0\n1 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		formula, err := ParseDQDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first strings.Builder
		if err := formula.WriteDQDIMACS(&first); err != nil {
			t.Fatalf("write of accepted formula failed: %v", err)
		}
		reparsed, err := ParseDQDIMACS(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("writer output rejected by parser: %v\noutput:\n%s", err, first.String())
		}
		var second strings.Builder
		if err := reparsed.WriteDQDIMACS(&second); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("write/parse/write not a fixpoint:\n--- first ---\n%s--- second ---\n%s",
				first.String(), second.String())
		}
	})
}
