package dqbf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cnf"
)

// linearFormula builds ∃y3 ∀x1 ∃y4 ∀x2 ∃y5 with a small matrix: three
// existential blocks at prefix lengths 0, 1, and 2.
func linearFormula() *Formula {
	f := New()
	f.Matrix.NumVars = 5
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3)
	f.AddExistential(4, 1)
	f.AddExistential(5, 1, 2)
	f.Matrix.AddClause(cnf.PosLit(3), cnf.NegLit(1))
	f.Matrix.AddClause(cnf.PosLit(4), cnf.PosLit(2), cnf.NegLit(5))
	return f
}

// TestWriteQDIMACSBlockOrder pins the exact serialization: quantifier
// blocks appear in prefix order, universals interleaved between the
// existential blocks that depend on them.
func TestWriteQDIMACSBlockOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := linearFormula().WriteQDIMACS(&buf); err != nil {
		t.Fatalf("WriteQDIMACS: %v", err)
	}
	want := `p cnf 5 2
e 3 0
a 1 0
e 4 0
a 2 0
e 5 0
3 -1 0
4 2 -5 0
`
	if buf.String() != want {
		t.Fatalf("serialization drifted:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestQDIMACSWriteParseFixpoint is the round-trip guarantee: writing,
// parsing, and writing again is byte-identical, so the quantifier-block
// order survives exactly.
func TestQDIMACSWriteParseFixpoint(t *testing.T) {
	cases := []struct {
		name string
		f    *Formula
	}{
		{"interleaved blocks", linearFormula()},
		{"trailing universals", func() *Formula {
			f := New()
			f.Matrix.NumVars = 3
			f.AddUniversal(2)
			f.AddUniversal(3)
			f.AddExistential(1, 2)
			f.Matrix.AddClause(cnf.PosLit(1), cnf.PosLit(3))
			return f
		}()},
		{"no existentials", func() *Formula {
			f := New()
			f.Matrix.NumVars = 2
			f.AddUniversal(1)
			f.AddUniversal(2)
			f.Matrix.AddClause(cnf.PosLit(1), cnf.PosLit(2))
			return f
		}()},
		{"propositional", func() *Formula {
			f := New()
			f.Matrix.NumVars = 2
			f.AddExistential(1)
			f.AddExistential(2)
			f.Matrix.AddClause(cnf.NegLit(1), cnf.PosLit(2))
			return f
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var first bytes.Buffer
			if err := tc.f.WriteQDIMACS(&first); err != nil {
				t.Fatalf("write: %v", err)
			}
			parsed, err := ParseDQDIMACS(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("parse own output: %v\n%s", err, first.Bytes())
			}
			var second bytes.Buffer
			if err := parsed.WriteQDIMACS(&second); err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("write→parse→write not a fixpoint:\nfirst:\n%s\nsecond:\n%s",
					first.Bytes(), second.Bytes())
			}
		})
	}
}

// TestQDIMACSSourceFixpoint starts from QDIMACS text instead of a built
// formula: after one normalizing write, the form is stable.
func TestQDIMACSSourceFixpoint(t *testing.T) {
	src := `p cnf 4 2
e 4 0
a 1 0
e 2 3 0
1 2 0
-1 3 -4 0
`
	f, err := ParseDQDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var first bytes.Buffer
	if err := f.WriteQDIMACS(&first); err != nil {
		t.Fatalf("write: %v", err)
	}
	if first.String() != src {
		t.Fatalf("parse→write changed an already-normal input:\ngot:\n%s\nwant:\n%s", first.String(), src)
	}
}

func TestWriteQDIMACSRejectsNonLinear(t *testing.T) {
	f := New()
	f.Matrix.NumVars = 4
	f.AddUniversal(1)
	f.AddUniversal(2)
	// Depends on x2 but not x1: not a prefix of the universal order.
	f.AddExistential(3, 2)
	f.Matrix.AddClause(cnf.PosLit(3), cnf.PosLit(4))
	var buf bytes.Buffer
	err := f.WriteQDIMACS(&buf)
	if err == nil {
		t.Fatal("non-linear formula serialized as QDIMACS")
	}
	if !strings.Contains(err.Error(), "not linear") {
		t.Fatalf("error %q does not explain the linearity failure", err)
	}
}
