package dqbf

import (
	"math/rand"

	"repro/internal/cnf"
)

// RandomFormula generates a small random DQBF: universals 1..nUniv,
// existentials nUniv+1..nUniv+nExist each depending on an independent random
// subset of the universals, and nClauses clauses of one to three uniform
// random literals. It is the pinned-seed instance generator shared by the
// dqbffuzz cross-checker and the metamorphic/certificate test suites, so a
// failure in either reproduces from (seed, instance index) alone.
func RandomFormula(rng *rand.Rand, nUniv, nExist, nClauses int) *Formula {
	f := New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i := 0; i < nExist; i++ {
		y := cnf.Var(nUniv + i + 1)
		var deps []cnf.Var
		for _, x := range f.Univ {
			if rng.Intn(2) == 0 {
				deps = append(deps, x)
			}
		}
		f.AddExistential(y, deps...)
	}
	nv := nUniv + nExist
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(nv)), rng.Intn(2) == 0))
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f
}
