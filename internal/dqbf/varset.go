package dqbf

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// VarSet is a set of variables backed by a bitset, sized for fast subset and
// difference tests on dependency sets.
type VarSet struct {
	words []uint64
}

// NewVarSet returns a set containing the given variables.
func NewVarSet(vs ...cnf.Var) *VarSet {
	s := &VarSet{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

func (s *VarSet) ensure(v cnf.Var) {
	w := int(v) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
}

// Add inserts v.
func (s *VarSet) Add(v cnf.Var) {
	if v <= 0 {
		panic("dqbf: invalid variable in VarSet")
	}
	s.ensure(v)
	s.words[int(v)/64] |= 1 << (uint(v) % 64)
}

// Remove deletes v.
func (s *VarSet) Remove(v cnf.Var) {
	w := int(v) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(v) % 64)
	}
}

// Has reports whether v is in the set.
func (s *VarSet) Has(v cnf.Var) bool {
	w := int(v) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(v)%64)) != 0
}

// Len returns the number of elements.
func (s *VarSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *VarSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ t.
func (s *VarSet) SubsetOf(t *VarSet) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *VarSet) Equal(t *VarSet) bool {
	return s.SubsetOf(t) && t.SubsetOf(s)
}

// Diff returns s \ t as a new set.
func (s *VarSet) Diff(t *VarSet) *VarSet {
	out := &VarSet{words: make([]uint64, len(s.words))}
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		out.words[i] = w &^ tw
	}
	return out
}

// Union returns s ∪ t as a new set.
func (s *VarSet) Union(t *VarSet) *VarSet {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	out := &VarSet{words: make([]uint64, n)}
	for i := range out.words {
		if i < len(s.words) {
			out.words[i] |= s.words[i]
		}
		if i < len(t.words) {
			out.words[i] |= t.words[i]
		}
	}
	return out
}

// Intersect returns s ∩ t as a new set.
func (s *VarSet) Intersect(t *VarSet) *VarSet {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := &VarSet{words: make([]uint64, n)}
	for i := range out.words {
		out.words[i] = s.words[i] & t.words[i]
	}
	return out
}

// Clone returns a copy of s.
func (s *VarSet) Clone() *VarSet {
	out := &VarSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Vars returns the elements in ascending order.
func (s *VarSet) Vars() []cnf.Var {
	var out []cnf.Var
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, cnf.Var(i*64+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// String renders the set as {v1, v2, ...}.
func (s *VarSet) String() string {
	vs := s.Vars()
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(int(v))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
