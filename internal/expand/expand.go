// Package expand implements DQBF solving by full universal expansion:
// the matrix is instantiated for every assignment of the universal
// variables, with each existential variable y replaced per instance by a
// copy indexed by the projection of the assignment onto D_y (so instances
// agreeing on D_y share the copy), and the resulting propositional formula
// is handed to the CDCL SAT solver.
//
// The expansion is the semantic definition made executable — the full
// grounding is equisatisfiable with the DQBF — and doubles as the
// conceptual limit case of both elimination (eliminating *every* universal
// variable, the ICCD 2013 predecessor strategy the paper improves on) and
// instantiation (iDQ with eager instead of lazy grounding). It is
// exponential in the number of universals and serves as a reference solver
// for cross-checking and as an ablation baseline.
package expand

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/sat"
)

// Options configure the solver.
type Options struct {
	// MaxUniversals refuses formulas whose expansion would be too large;
	// 0 means the default of 20.
	MaxUniversals int
	// Timeout bounds wall-clock time; 0 means unlimited.
	Timeout time.Duration
	// Budget, when non-nil, bounds the expansion loop and the SAT call and
	// makes them cancellable; exhaustion surfaces as an error wrapping the
	// budget's sentinel.
	Budget *budget.Budget
	// Certify extracts a table-based Skolem certificate from the SAT model
	// on a satisfiable verdict.
	Certify bool
}

// Stats collects counters.
type Stats struct {
	Instances      int // universal assignments expanded
	Copies         int // existential copies created
	GroundClauses  int
	SATConflicts   int64
	TotalTime      time.Duration
	SkippedClauses int // clause instances satisfied by universal literals
}

// Result is the outcome of a Solve call.
type Result struct {
	Sat   bool
	Stats Stats
	// Certificate holds the Skolem tables of a certified SAT verdict
	// (Options.Certify); nil otherwise.
	Certificate *dqbf.Certificate
}

// Solver decides DQBF by eager full expansion.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// Solve decides the DQBF. It returns an error when the expansion limit or
// deadline is exceeded, or when the formula has unquantified variables.
func (s *Solver) Solve(f *dqbf.Formula) (Result, error) {
	start := time.Now()
	res := Result{}
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	limit := s.Opt.MaxUniversals
	if limit <= 0 {
		limit = 20
	}
	if len(f.Univ) > limit {
		return res, fmt.Errorf("expand: %d universal variables exceed limit %d", len(f.Univ), limit)
	}
	var deadline time.Time
	if s.Opt.Timeout > 0 {
		deadline = start.Add(s.Opt.Timeout)
	}

	solver := sat.New()
	solver.Budget = s.Opt.Budget
	uidx := make(map[cnf.Var]int, len(f.Univ))
	for i, x := range f.Univ {
		uidx[x] = i
	}
	copies := make(map[string]cnf.Var) // "y@projection" -> SAT var
	copyOf := func(y cnf.Var, a []bool) cnf.Var {
		deps := f.Deps[y].Vars()
		var b strings.Builder
		fmt.Fprintf(&b, "%d@", y)
		for _, d := range deps {
			idx := uidx[d]
			if a[idx] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		k := b.String()
		v, ok := copies[k]
		if !ok {
			v = solver.NewVar()
			copies[k] = v
			res.Stats.Copies++
		}
		return v
	}

	n := len(f.Univ)
	a := make([]bool, n)
	for bits := 0; bits < 1<<n; bits++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return res, fmt.Errorf("expand: timeout after %d of %d instances", bits, 1<<n)
		}
		if err := s.Opt.Budget.Err(); err != nil {
			return res, fmt.Errorf("expand: stopped after %d of %d instances: %w", bits, 1<<n, err)
		}
		for i := range a {
			a[i] = bits&(1<<i) != 0
		}
		res.Stats.Instances++
		for _, c := range f.Matrix.Clauses {
			ground := make([]cnf.Lit, 0, len(c))
			satisfied := false
			for _, l := range c {
				v := l.Var()
				if idx, isU := uidx[v]; isU {
					if a[idx] != l.Neg() {
						satisfied = true
						break
					}
					continue
				}
				if !f.IsExistential(v) {
					return res, fmt.Errorf("expand: unquantified variable %d", v)
				}
				ground = append(ground, cnf.NewLit(copyOf(v, a), l.Neg()))
			}
			if satisfied {
				res.Stats.SkippedClauses++
				continue
			}
			res.Stats.GroundClauses++
			if len(ground) == 0 || !solver.AddClause(ground...) {
				res.Sat = false
				return res, nil
			}
		}
	}
	st := solver.Solve()
	res.Stats.SATConflicts = solver.Stats.Conflicts
	if st == sat.Unknown {
		err := s.Opt.Budget.Err()
		if err == nil {
			err = fmt.Errorf("expand: SAT call stopped")
		}
		return res, fmt.Errorf("expand: ground SAT call stopped: %w", err)
	}
	res.Sat = st == sat.Sat
	if res.Sat && s.Opt.Certify {
		m := solver.Model()
		c := &dqbf.Certificate{
			Tables:   make(map[cnf.Var]map[string]bool),
			Defaults: make(map[cnf.Var]bool),
		}
		for k, v := range copies {
			at := strings.IndexByte(k, '@')
			var y cnf.Var
			fmt.Sscanf(k[:at], "%d", &y)
			tab, ok := c.Tables[y]
			if !ok {
				tab = make(map[string]bool)
				c.Tables[y] = tab
			}
			tab[k[at+1:]] = m.Get(v)
		}
		res.Certificate = c
	}
	return res, nil
}
