// Package expand implements DQBF solving by full universal expansion:
// the matrix is instantiated for every assignment of the universal
// variables, with each existential variable y replaced per instance by a
// copy indexed by the projection of the assignment onto D_y (so instances
// agreeing on D_y share the copy), and the resulting propositional formula
// is handed to the CDCL SAT solver.
//
// The expansion is the semantic definition made executable — the full
// grounding is equisatisfiable with the DQBF — and doubles as the
// conceptual limit case of both elimination (eliminating *every* universal
// variable, the ICCD 2013 predecessor strategy the paper improves on) and
// instantiation (iDQ with eager instead of lazy grounding). It is
// exponential in the number of universals and serves as a reference solver
// for cross-checking and as an ablation baseline.
package expand

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/sat"
)

// Options configure the solver.
type Options struct {
	// MaxUniversals refuses formulas whose expansion would be too large;
	// 0 means the default of 20.
	MaxUniversals int
	// Timeout bounds wall-clock time; 0 means unlimited.
	Timeout time.Duration
}

// Stats collects counters.
type Stats struct {
	Instances      int // universal assignments expanded
	Copies         int // existential copies created
	GroundClauses  int
	SATConflicts   int64
	TotalTime      time.Duration
	SkippedClauses int // clause instances satisfied by universal literals
}

// Result is the outcome of a Solve call.
type Result struct {
	Sat   bool
	Stats Stats
}

// Solver decides DQBF by eager full expansion.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// Solve decides the DQBF. It returns an error when the expansion limit or
// deadline is exceeded, or when the formula has unquantified variables.
func (s *Solver) Solve(f *dqbf.Formula) (Result, error) {
	start := time.Now()
	res := Result{}
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	limit := s.Opt.MaxUniversals
	if limit <= 0 {
		limit = 20
	}
	if len(f.Univ) > limit {
		return res, fmt.Errorf("expand: %d universal variables exceed limit %d", len(f.Univ), limit)
	}
	var deadline time.Time
	if s.Opt.Timeout > 0 {
		deadline = start.Add(s.Opt.Timeout)
	}

	solver := sat.New()
	uidx := make(map[cnf.Var]int, len(f.Univ))
	for i, x := range f.Univ {
		uidx[x] = i
	}
	copies := make(map[string]cnf.Var) // "y@projection" -> SAT var
	copyOf := func(y cnf.Var, a []bool) cnf.Var {
		deps := f.Deps[y].Vars()
		var b strings.Builder
		fmt.Fprintf(&b, "%d@", y)
		for _, d := range deps {
			idx := uidx[d]
			if a[idx] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		k := b.String()
		v, ok := copies[k]
		if !ok {
			v = solver.NewVar()
			copies[k] = v
			res.Stats.Copies++
		}
		return v
	}

	n := len(f.Univ)
	a := make([]bool, n)
	for bits := 0; bits < 1<<n; bits++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return res, fmt.Errorf("expand: timeout after %d of %d instances", bits, 1<<n)
		}
		for i := range a {
			a[i] = bits&(1<<i) != 0
		}
		res.Stats.Instances++
		for _, c := range f.Matrix.Clauses {
			ground := make([]cnf.Lit, 0, len(c))
			satisfied := false
			for _, l := range c {
				v := l.Var()
				if idx, isU := uidx[v]; isU {
					if a[idx] != l.Neg() {
						satisfied = true
						break
					}
					continue
				}
				if !f.IsExistential(v) {
					return res, fmt.Errorf("expand: unquantified variable %d", v)
				}
				ground = append(ground, cnf.NewLit(copyOf(v, a), l.Neg()))
			}
			if satisfied {
				res.Stats.SkippedClauses++
				continue
			}
			res.Stats.GroundClauses++
			if len(ground) == 0 || !solver.AddClause(ground...) {
				res.Sat = false
				return res, nil
			}
		}
	}
	st := solver.Solve()
	res.Stats.SATConflicts = solver.Stats.Conflicts
	res.Sat = st == sat.Sat
	return res, nil
}
