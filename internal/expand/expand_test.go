package expand

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

func paperExample1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func randomDQBF(rng *rand.Rand, nUniv, nExist, nClauses int) *dqbf.Formula {
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i := 0; i < nExist; i++ {
		y := cnf.Var(nUniv + i + 1)
		var deps []cnf.Var
		for _, x := range f.Univ {
			if rng.Intn(2) == 0 {
				deps = append(deps, x)
			}
		}
		f.AddExistential(y, deps...)
	}
	n := nUniv + nExist
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f
}

func TestPaperExample1(t *testing.T) {
	res, err := New(Options{}).Solve(paperExample1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat {
		t.Fatal("Example 1 is satisfiable")
	}
	if res.Stats.Instances != 4 {
		t.Fatalf("expected 4 expansion instances, got %d", res.Stats.Instances)
	}
	// y1 has 2 copies (over x1), y2 has 2 copies (over x2).
	if res.Stats.Copies != 4 {
		t.Fatalf("expected 4 existential copies, got %d", res.Stats.Copies)
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for iter := 0; iter < 200; iter++ {
		f := randomDQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(10))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(Options{}).Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat != want {
			t.Fatalf("iter %d: expand %v, brute force %v\n%v\n%v",
				iter, res.Sat, want, f, f.Matrix.Clauses)
		}
	}
}

func TestThreeWayAgreement(t *testing.T) {
	// expand, HQS and iDQ must agree on instances beyond brute-force reach.
	rng := rand.New(rand.NewSource(707))
	hqs := core.New(core.DefaultOptions())
	for iter := 0; iter < 25; iter++ {
		f := randomDQBF(rng, 2+rng.Intn(5), 2+rng.Intn(4), 5+rng.Intn(20))
		e, err := New(Options{}).Solve(f)
		if err != nil {
			t.Fatal(err)
		}
		h := hqs.SolveDQBF(f)
		q := idq.New(idq.Options{}).Solve(f)
		if h.Status != core.Solved || q.Status != idq.Solved {
			t.Fatalf("iter %d: solver did not finish (%v/%v)", iter, h.Status, q.Status)
		}
		if e.Sat != h.Sat || e.Sat != q.Sat {
			t.Fatalf("iter %d: expand=%v HQS=%v iDQ=%v", iter, e.Sat, h.Sat, q.Sat)
		}
	}
}

func TestUniversalLimit(t *testing.T) {
	mk := func(n int) *dqbf.Formula {
		f := dqbf.New()
		for i := 1; i <= n; i++ {
			f.AddUniversal(cnf.Var(i))
		}
		f.AddExistential(cnf.Var(n+1), f.Univ...)
		f.Matrix.AddDimacsClause(n + 1)
		return f
	}
	if _, err := New(Options{}).Solve(mk(25)); err == nil {
		t.Fatal("expected limit error for 25 universals (default limit 20)")
	}
	if _, err := New(Options{MaxUniversals: 5}).Solve(mk(6)); err == nil {
		t.Fatal("expected limit error for 6 universals at limit 5")
	}
	if res, err := New(Options{MaxUniversals: 5}).Solve(mk(5)); err != nil || !res.Sat {
		t.Fatalf("5 universals at limit 5 should solve: %v %v", res.Sat, err)
	}
}

func TestTimeout(t *testing.T) {
	f := randomDQBF(rand.New(rand.NewSource(8)), 18, 4, 30)
	_, err := New(Options{Timeout: time.Microsecond}).Solve(f)
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestEmptyMatrixAndEmptyClause(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	res, err := New(Options{}).Solve(f)
	if err != nil || !res.Sat {
		t.Fatalf("empty matrix: %v %v", res.Sat, err)
	}
	f.Matrix.Clauses = append(f.Matrix.Clauses, cnf.Clause{})
	res, err = New(Options{}).Solve(f)
	if err != nil || res.Sat {
		t.Fatalf("empty clause: %v %v", res.Sat, err)
	}
}

func TestSharedCopiesCountsOverlap(t *testing.T) {
	// Existential with empty dependency set gets exactly one copy across
	// all instances.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3)
	f.Matrix.AddDimacsClause(3, 1)
	f.Matrix.AddDimacsClause(3, -1, 2)
	res, err := New(Options{}).Solve(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Copies != 1 {
		t.Fatalf("copies = %d, want 1", res.Stats.Copies)
	}
	if !res.Sat {
		t.Fatal("y=1 satisfies everything")
	}
}
