// Package faults is a fault-injection framework for the solver stack. It
// defines named injection points at the seams where production failures
// happen — oracle calls, sweeps, scheduler dispatch, cache lookups — and
// lets tests (or a chaos-minded operator) arm them with deterministic or
// probabilistic actions: panic, artificial latency, a spurious Unknown, or
// an error return.
//
// The framework is built for a hot path that almost never has faults armed:
// every instrumented site calls Fire, which is a single atomic load and
// nil-check when no plan is active. Arming a plan is process-global
// (solver cores have no request context to thread one through), so tests
// that activate plans must not run in parallel with each other.
//
// Point naming follows "<package>.<operation>" so a plan spec reads like a
// stack trace: "sat.solve:panic:p=0.1" arms a 10% panic on every CDCL
// oracle call.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Point names an injection site. Instrumented code passes its Point to Fire;
// plans arm rules per point.
type Point string

const (
	// SATSolve fires at the entry of every CDCL oracle call
	// (sat.Solver.Solve and variants) — the busiest seam in the stack.
	SATSolve Point = "sat.solve"
	// AIGSweep fires at the entry of a FRAIG-style sweep (aig.Graph.Sweep).
	AIGSweep Point = "aig.sweep"
	// AIGFinalSAT fires before the QBF back end's final SAT shortcut on the
	// outermost existential block.
	AIGFinalSAT Point = "aig.finalsat"
	// MaxSATSolve fires at the entry of the partial MaxSAT oracle that
	// selects the universal elimination set.
	MaxSATSolve Point = "maxsat.solve"
	// QBFEliminate fires once per QBF block-elimination step.
	QBFEliminate Point = "qbf.eliminate"
	// SchedDispatch fires when a scheduler worker picks up a job, before any
	// engine runs.
	SchedDispatch Point = "sched.dispatch"
	// CacheLookup fires on every result-cache lookup.
	CacheLookup Point = "cache.lookup"
	// CertVerify fires before a Skolem-certificate verification in the
	// service runners; an injected error simulates a corrupted certificate.
	CertVerify Point = "service.certify"
	// StoreRead fires on every persistent-store entry read; an injected
	// error simulates a failing disk (EIO, vanished mount) on the read path.
	StoreRead Point = "store.read"
	// StoreWrite fires on every persistent-store entry write, before the
	// temp file is created; an injected error simulates a full or failing
	// disk on the write path.
	StoreWrite Point = "store.write"
	// StoreCorrupt fires after an entry's bytes are read but before they are
	// decoded; a firing rule makes the store flip a bit in the payload, so
	// the real checksum/quarantine machinery runs against real corruption.
	StoreCorrupt Point = "store.corrupt"
	// ProblemParse fires at the entry of every unified problem-ingestion call
	// (problem.ParseBytes and friends); an injected error simulates a parser
	// failure that must degrade to a clean 400 in hqsd, never a panic.
	ProblemParse Point = "problem.parse"
	// PQESolve fires at the entry of a partial-quantifier-elimination query
	// (pqe.Solve) before any SAT call runs.
	PQESolve Point = "pqe.solve"
	// ClusterForward fires before the coordinator forwards a request to an
	// hqsd worker; an injected error simulates a network failure that must
	// retry on the next ring node, never lose or double-run the job.
	ClusterForward Point = "cluster.forward"
)

// builtinPoints are the statically defined injection points.
var builtinPoints = []Point{SATSolve, AIGSweep, AIGFinalSAT, MaxSATSolve,
	QBFEliminate, SchedDispatch, CacheLookup, CertVerify,
	StoreRead, StoreWrite, StoreCorrupt, ProblemParse, PQESolve,
	ClusterForward}

// registry holds dynamically registered points (pipeline passes register
// one "pipeline.<pass>" point each at init time).
var registry struct {
	mu     sync.Mutex
	points []Point
	seen   map[Point]bool
}

// Register adds a dynamic injection point (idempotent). Subsystems that
// instrument new seams at init time — pipeline passes in particular —
// register them here so spec validation and the chaos harness see them.
func Register(pt Point) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.seen == nil {
		registry.seen = make(map[Point]bool)
	}
	for _, b := range builtinPoints {
		if b == pt {
			return
		}
	}
	if registry.seen[pt] {
		return
	}
	registry.seen[pt] = true
	registry.points = append(registry.points, pt)
}

// Points lists every defined injection point — builtin and registered — for
// validation and docs. Registered points are sorted for stable output.
func Points() []Point {
	registry.mu.Lock()
	reg := append([]Point(nil), registry.points...)
	registry.mu.Unlock()
	sort.Slice(reg, func(i, j int) bool { return reg[i] < reg[j] })
	return append(append([]Point(nil), builtinPoints...), reg...)
}

// ErrInjected is the base error of every injected failure; injected errors
// satisfy errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faults: injected failure")

// ErrUnknown is the injected error directing the caller to give up with a
// spurious Unknown verdict instead of failing hard.
var ErrUnknown = fmt.Errorf("%w: spurious unknown", ErrInjected)

// PanicValue is the value thrown by a panic action, so recover sites can
// recognize injected panics in tests.
type PanicValue struct{ Point Point }

func (p PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic at %s", p.Point)
}

// Action selects what an armed rule does when it fires.
type Action int

const (
	// ActPanic panics with a PanicValue.
	ActPanic Action = iota
	// ActLatency sleeps for Rule.Latency and reports no fault.
	ActLatency
	// ActUnknown returns ErrUnknown (spurious Unknown verdict).
	ActUnknown
	// ActError returns Rule.Err (ErrInjected if unset).
	ActError
)

func (a Action) String() string {
	switch a {
	case ActPanic:
		return "panic"
	case ActLatency:
		return "latency"
	case ActUnknown:
		return "unknown"
	case ActError:
		return "error"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule arms one point with one action and a trigger. A rule with Prob > 0 is
// probabilistic (fires on each hit with that probability, from the plan's
// seeded generator); otherwise it is deterministic on hit counts.
type Rule struct {
	Point  Point
	Action Action
	// Prob, when in (0, 1], makes the rule probabilistic.
	Prob float64
	// EveryN makes a deterministic rule fire on every Nth hit (1 = every
	// hit; 0 defaults to 1).
	EveryN uint64
	// After skips the first After hits before the rule may fire.
	After uint64
	// Times caps the number of fires (0 = unlimited).
	Times uint64
	// Latency is the sleep of an ActLatency rule.
	Latency time.Duration
	// Err overrides the error of an ActError rule.
	Err error
}

// PointStats counts activity at one point.
type PointStats struct {
	// Hits is how many times the point was reached while the plan was
	// active; Fires is how many times a rule acted.
	Hits, Fires uint64
}

type armedRule struct {
	Rule
	hits, fires uint64
}

// Plan is an armed, concurrency-safe set of rules with per-point counters
// and a deterministically seeded generator for probabilistic rules.
type Plan struct {
	mu    sync.Mutex
	rng   uint64
	rules map[Point][]*armedRule
	hits  map[Point]uint64
}

// NewPlan builds a plan from rules. The seed drives every probabilistic
// decision, so a chaos run is reproducible bit-for-bit given the same
// interleaving of hits.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{
		rng:   uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		rules: make(map[Point][]*armedRule),
		hits:  make(map[Point]uint64),
	}
	for _, r := range rules {
		if r.EveryN == 0 {
			r.EveryN = 1
		}
		p.rules[r.Point] = append(p.rules[r.Point], &armedRule{Rule: r})
	}
	return p
}

// next is an xorshift64* step; caller holds p.mu.
func (p *Plan) next() uint64 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	return x * 0x2545f4914f6cdd1d
}

// fire evaluates the plan at pt and returns the first firing rule, if any.
func (p *Plan) fire(pt Point) *armedRule {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits[pt]++
	for _, r := range p.rules[pt] {
		r.hits++
		if r.Times > 0 && r.fires >= r.Times {
			continue
		}
		if r.hits <= r.After {
			continue
		}
		if r.Prob > 0 {
			if float64(p.next()>>11)/(1<<53) >= r.Prob {
				continue
			}
		} else if (r.hits-r.After)%r.EveryN != 0 {
			continue
		}
		r.fires++
		return r
	}
	return nil
}

// Snapshot returns per-point hit/fire counters.
func (p *Plan) Snapshot() map[Point]PointStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Point]PointStats, len(p.hits))
	for pt, h := range p.hits {
		st := PointStats{Hits: h}
		for _, r := range p.rules[pt] {
			st.Fires += r.fires
		}
		out[pt] = st
	}
	return out
}

// Fires returns the total fire count at pt.
func (p *Plan) Fires(pt Point) uint64 { return p.Snapshot()[pt].Fires }

// active is the process-global armed plan; nil means fault injection is off
// and Fire is a single atomic load.
var active atomic.Pointer[Plan]

// Activate arms p as the process-global plan (nil deactivates). Tests should
// pair Activate with a deferred Deactivate and must not run concurrently
// with other plan-activating tests.
func Activate(p *Plan) { active.Store(p) }

// Deactivate disarms fault injection.
func Deactivate() { active.Store(nil) }

// Active returns the currently armed plan (nil when off).
func Active() *Plan { return active.Load() }

// Fire is the hook instrumented code calls at each injection point. With no
// plan armed it costs one atomic load. Otherwise it may sleep (latency
// action) or panic (panic action) before returning; a non-nil return is
// either ErrUnknown (give up with a spurious Unknown) or an injected error
// the caller should propagate as a failure.
func Fire(pt Point) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r := p.fire(pt)
	if r == nil {
		return nil
	}
	switch r.Action {
	case ActPanic:
		panic(PanicValue{Point: pt})
	case ActLatency:
		time.Sleep(r.Latency)
		return nil
	case ActUnknown:
		return ErrUnknown
	case ActError:
		if r.Err != nil {
			return fmt.Errorf("%w: %w at %s", ErrInjected, r.Err, pt)
		}
		return fmt.Errorf("%w at %s", ErrInjected, pt)
	}
	return nil
}
