package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNoPlanIsNoOp(t *testing.T) {
	Deactivate()
	for _, pt := range Points() {
		if err := Fire(pt); err != nil {
			t.Fatalf("Fire(%s) with no plan = %v", pt, err)
		}
	}
	if Active() != nil {
		t.Fatal("Active() != nil after Deactivate")
	}
}

func TestDeterministicTriggers(t *testing.T) {
	p := NewPlan(1, Rule{Point: SATSolve, Action: ActUnknown, EveryN: 3, After: 2, Times: 2})
	Activate(p)
	defer Deactivate()

	var fired []int
	for i := 1; i <= 14; i++ {
		if err := Fire(SATSolve); err != nil {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrUnknown) {
				t.Fatalf("hit %d: error %v not ErrUnknown/ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	// After=2 skips hits 1-2, EveryN=3 fires on hits 5, 8, 11, ...; Times=2
	// stops after two fires.
	want := []int{5, 8}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	st := p.Snapshot()[SATSolve]
	if st.Hits != 14 || st.Fires != 2 {
		t.Fatalf("stats = %+v, want 14 hits / 2 fires", st)
	}
}

func TestProbabilisticIsSeededAndBounded(t *testing.T) {
	counts := make([]uint64, 2)
	for round := range counts {
		p := NewPlan(42, Rule{Point: CacheLookup, Action: ActError, Prob: 0.3})
		Activate(p)
		for i := 0; i < 2000; i++ {
			Fire(CacheLookup)
		}
		Deactivate()
		counts[round] = p.Fires(CacheLookup)
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed, different fire counts: %d vs %d", counts[0], counts[1])
	}
	// 2000 hits at p=0.3: expect ~600; allow a wide deterministic margin.
	if counts[0] < 400 || counts[0] > 800 {
		t.Fatalf("fire count %d implausible for p=0.3 over 2000 hits", counts[0])
	}
}

func TestPanicAction(t *testing.T) {
	Activate(NewPlan(1, Rule{Point: MaxSATSolve, Action: ActPanic}))
	defer Deactivate()
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Point != MaxSATSolve {
			t.Fatalf("recovered %v, want PanicValue at maxsat.solve", r)
		}
	}()
	Fire(MaxSATSolve)
	t.Fatal("Fire did not panic")
}

func TestLatencyAction(t *testing.T) {
	Activate(NewPlan(1, Rule{Point: AIGSweep, Action: ActLatency, Latency: 30 * time.Millisecond}))
	defer Deactivate()
	start := time.Now()
	if err := Fire(AIGSweep); err != nil {
		t.Fatalf("latency action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency action slept only %v", d)
	}
}

func TestConcurrentFire(t *testing.T) {
	p := NewPlan(7,
		Rule{Point: SATSolve, Action: ActError, Prob: 0.5},
		Rule{Point: SATSolve, Action: ActUnknown, EveryN: 2})
	Activate(p)
	defer Deactivate()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				Fire(SATSolve)
			}
		}()
	}
	wg.Wait()
	if st := p.Snapshot()[SATSolve]; st.Hits != 4000 {
		t.Fatalf("hits = %d, want 4000", st.Hits)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("sat.solve:panic:p=0.1; cache.lookup:error:every=3,times=2 ; qbf.eliminate:latency:latency=5ms", 9)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if p == nil || len(p.rules[SATSolve]) != 1 || len(p.rules[CacheLookup]) != 1 || len(p.rules[QBFEliminate]) != 1 {
		t.Fatalf("plan rules misparsed: %+v", p)
	}
	if r := p.rules[CacheLookup][0]; r.EveryN != 3 || r.Times != 2 || r.Action != ActError {
		t.Fatalf("cache rule = %+v", r)
	}
	if r := p.rules[QBFEliminate][0]; r.Latency != 5*time.Millisecond {
		t.Fatalf("latency rule = %+v", r)
	}

	if p, err := ParseSpec("   ", 1); p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{
		"nope",
		"bogus.point:panic",
		"sat.solve:explode",
		"sat.solve:panic:p=1.5",
		"sat.solve:panic:wat",
		"sat.solve:panic:depth=3",
		"sat.solve:latency:latency=fast",
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
