package faults

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds a plan from a compact textual fault spec, for wiring
// fault injection through flags (hqsd -faults) without writing Go.
//
// Grammar: rules are separated by ';', each rule is
//
//	point:action[:opt[,opt...]]
//
// where point is one of Points() (e.g. sat.solve), action is one of
// panic | latency | unknown | error, and opts are
//
//	p=<float>        probabilistic trigger, probability in (0, 1]
//	every=<n>        deterministic trigger, fire on every nth hit
//	after=<n>        skip the first n hits
//	times=<n>        cap the number of fires
//	latency=<dur>    sleep duration for the latency action (default 10ms)
//
// Example: "sat.solve:panic:p=0.1;cache.lookup:error:every=3,times=2".
// An empty spec yields a nil plan (fault injection off).
func ParseSpec(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	valid := make(map[Point]bool)
	for _, pt := range Points() {
		valid[pt] = true
	}
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		parts := strings.SplitN(rs, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("faults: rule %q: want point:action[:opts]", rs)
		}
		r := Rule{Point: Point(parts[0])}
		if !valid[r.Point] {
			return nil, fmt.Errorf("faults: rule %q: unknown point %q (want one of %v)", rs, parts[0], Points())
		}
		switch parts[1] {
		case "panic":
			r.Action = ActPanic
		case "latency":
			r.Action = ActLatency
			r.Latency = 10 * time.Millisecond
		case "unknown":
			r.Action = ActUnknown
		case "error":
			r.Action = ActError
			r.Err = errors.New("injected by spec")
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown action %q (want panic, latency, unknown, or error)", rs, parts[1])
		}
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
				if !ok {
					return nil, fmt.Errorf("faults: rule %q: bad option %q", rs, opt)
				}
				var err error
				switch k {
				case "p":
					r.Prob, err = strconv.ParseFloat(v, 64)
					if err == nil && (r.Prob <= 0 || r.Prob > 1) {
						err = fmt.Errorf("probability %v outside (0, 1]", r.Prob)
					}
				case "every":
					r.EveryN, err = strconv.ParseUint(v, 10, 64)
				case "after":
					r.After, err = strconv.ParseUint(v, 10, 64)
				case "times":
					r.Times, err = strconv.ParseUint(v, 10, 64)
				case "latency":
					r.Latency, err = time.ParseDuration(v)
				default:
					err = fmt.Errorf("unknown option %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("faults: rule %q: option %q: %v", rs, opt, err)
				}
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return NewPlan(seed, rules...), nil
}
