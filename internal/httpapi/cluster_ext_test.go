package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/problem"
	"repro/internal/service"
)

// TestSolveCertAttachment covers the ?cert=1 extension: a SAT /solve
// response carries the cert.Encode wire blob, the blob decodes, and the
// decoded certificate passes the independent checker against the original
// formula — exactly the chain the cluster coordinator runs per cube.
func TestSolveCertAttachment(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, CacheSize: -1})

	resp, err := http.Post(ts.URL+"/solve?engine=idq&timeout=30s&cert=1", "text/plain", strings.NewReader(example1))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status: %d", resp.StatusCode)
	}
	var jr struct {
		service.JobInfo
		CertSkolem string `json:"cert_skolem"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if jr.Outcome == nil || jr.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("outcome: %+v", jr.Outcome)
	}
	if jr.CertSkolem == "" {
		t.Fatal("SAT response with cert=1 carried no cert_skolem")
	}
	c, err := cert.Decode([]byte(jr.CertSkolem))
	if err != nil {
		t.Fatalf("decoding attached certificate: %v", err)
	}
	p, err := problem.ParseBytes([]byte(example1), "")
	if err != nil {
		t.Fatalf("parsing example1: %v", err)
	}
	if err := cert.Check(p.Formula, c); err != nil {
		t.Fatalf("attached certificate rejected: %v", err)
	}

	// Without cert=1 the snapshot stays the plain JobInfo shape.
	resp2, err := http.Post(ts.URL+"/solve?engine=idq&timeout=30s", "text/plain", strings.NewReader(example1))
	if err != nil {
		t.Fatalf("solve without cert: %v", err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(raw), "cert_skolem") {
		t.Fatalf("cert_skolem leaked without cert=1: %s", raw)
	}
}

// TestIdempotencyHeaderDedupes covers the X-Idempotency-Key extension over
// the wire: a resent /jobs submit with the same key answers with the same
// job ID and counts one submission plus one idem hit.
func TestIdempotencyHeaderDedupes(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, CacheSize: -1})

	post := func() service.JobInfo {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs?engine=hqs&timeout=30s", strings.NewReader(example1))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(IdempotencyHeader, "deadbeef:attempt0")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status: %d", resp.StatusCode)
		}
		var info service.JobInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return info
	}
	first := post()
	second := post()
	if first.ID != second.ID {
		t.Fatalf("resent submit got a new job: %s vs %s", first.ID, second.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		var st service.Stats
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode stats: %v", err)
		}
		if st.Completed == 1 {
			if st.Submitted != 1 || st.IdemHits != 1 {
				t.Fatalf("stats after dedupe: submitted=%d idem_hits=%d", st.Submitted, st.IdemHits)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
