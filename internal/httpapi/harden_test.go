package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// phpInstance returns a pigeonhole DQDIMACS instance hard enough to keep a
// worker busy until cancelled.
func phpInstance() string {
	var b strings.Builder
	b.WriteString("p cnf 56 163\n")
	hole := func(i, j int) int { return i*7 + j + 1 } // 8 pigeons, 7 holes
	for i := 0; i < 8; i++ {
		for j := 0; j < 7; j++ {
			b.WriteString(" ")
			b.WriteString(itoa(hole(i, j)))
		}
		b.WriteString(" 0\n")
	}
	for j := 0; j < 7; j++ {
		for i := 0; i < 8; i++ {
			for k := i + 1; k < 8; k++ {
				b.WriteString(itoa(-hole(i, j)) + " " + itoa(-hole(k, j)) + " 0\n")
			}
		}
	}
	return b.String()
}

// TestReadyzAndLoadShedding: /readyz must flip to 503 when the queue is
// full while /healthz stays 200, and further submissions must be shed with
// 429 rather than 503.
func TestReadyzAndLoadShedding(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1, QueueCap: 1})

	var body map[string]string
	if code := getJSON(t, ts.URL+"/readyz", &body); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("idle readyz: %d %v", code, body)
	}

	// Occupy the single worker, then the single queue slot.
	var ids []string
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/jobs?engine=hqs", "text/plain", strings.NewReader(phpInstance()))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		var info service.JobInfo
		if err := jsonDecode(resp, &info); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, info.ID)
	}

	// The queue may momentarily have a free slot while the worker dequeues;
	// poll until readiness reports saturation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/readyz", &body); code == http.StatusServiceUnavailable {
			if body["status"] != "saturated" {
				t.Fatalf("readyz status = %q, want saturated", body["status"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported saturation with a full queue")
		}
		// Keep the queue full: top it up if the worker drained the slot.
		resp, err := http.Post(ts.URL+"/jobs?engine=hqs", "text/plain", strings.NewReader(phpInstance()))
		if err != nil {
			t.Fatalf("POST /jobs: %v", err)
		}
		var info service.JobInfo
		if jsonDecode(resp, &info) == nil && resp.StatusCode == http.StatusAccepted {
			ids = append(ids, info.ID)
		}
	}

	// Liveness is unaffected by saturation.
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz under load: %d", code)
	}

	// A saturated queue sheds with 429 + Retry-After.
	resp, err := http.Post(ts.URL+"/jobs?engine=hqs", "text/plain", strings.NewReader(phpInstance()))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var errBody map[string]string
	jsonDecode(resp, &errBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit to full queue = %d, want 429 (%v)", resp.StatusCode, errBody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// Shutdown begins: readiness reports draining.
	srv.SetHealthy(false)
	if code := getJSON(t, ts.URL+"/readyz", &body); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("shutdown readyz: %d %v", code, body)
	}
	srv.SetHealthy(true)

	// Let the drain in the test cleanup finish promptly.
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		if dresp, err := http.DefaultClient.Do(req); err == nil {
			dresp.Body.Close()
		}
	}
}

// TestBodySizeLimit: a request body over -max-body must be rejected with 413.
func TestBodySizeLimit(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1})
	srv.MaxBody = 64

	resp, err := http.Post(ts.URL+"/jobs", "text/plain", strings.NewReader(phpInstance()))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}

	// At the limit boundary, small instances still parse.
	srv.MaxBody = 1 << 20
	resp, err = http.Post(ts.URL+"/solve?engine=idq", "text/plain", strings.NewReader(unsatInstance))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after limit reset = %d", resp.StatusCode)
	}
}

// TestSolveRequestTimeout: a blocking /solve call must be bounded by the
// per-request timeout, answer 504, and cancel the underlying job.
func TestSolveRequestTimeout(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1})
	srv.RequestTimeout = 50 * time.Millisecond

	resp, err := http.Post(ts.URL+"/solve?engine=hqs", "text/plain", strings.NewReader(phpInstance()))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	var errBody map[string]string
	jsonDecode(resp, &errBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow solve = %d, want 504 (%v)", resp.StatusCode, errBody)
	}
	if !strings.Contains(errBody["error"], "cancelled") {
		t.Fatalf("504 body should mention the cancelled job: %v", errBody)
	}
}

// TestRecovererContainsHandlerPanics: a panic inside HTTP plumbing must
// produce a 500 JSON error on that request, not a dropped connection.
func TestRecovererContainsHandlerPanics(t *testing.T) {
	srv := New(service.NewScheduler(service.Config{Workers: 1}))
	h := srv.recoverer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "handler bug") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

// TestServerUnderInjectedFaults drives the HTTP surface while the solver
// underneath panics on a third of its SAT calls: requests must still get
// well-formed JSON answers (SAT/UNSAT/ERROR all acceptable), and the
// /stats counters must record the contained failures.
func TestServerUnderInjectedFaults(t *testing.T) {
	plan, err := faults.ParseSpec("sat.solve:panic:p=0.33", 11)
	if err != nil {
		t.Fatal(err)
	}
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)

	_, ts := newTestServer(t, service.Config{
		Workers:   2,
		CacheSize: -1,
		Retry:     service.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
	for i := 0; i < 20; i++ {
		resp, err := http.Post(ts.URL+"/solve?engine=idq&timeout=10s", "text/plain", strings.NewReader(unsatInstance))
		if err != nil {
			t.Fatalf("POST /solve: %v", err)
		}
		var info service.JobInfo
		if err := jsonDecode(resp, &info); err != nil {
			t.Fatalf("request %d: bad JSON: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK || info.State != service.StateDone {
			t.Fatalf("request %d: status %d, info %+v", i, resp.StatusCode, info)
		}
	}
	if plan.Fires(faults.SATSolve) == 0 {
		t.Fatal("fault plan never fired — the test exercised nothing")
	}
	var st service.Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Completed != 20 {
		t.Fatalf("stats.Completed = %d, want 20", st.Completed)
	}
	if st.Panics == 0 && st.Retries == 0 {
		t.Fatalf("stats show no contained faults: %+v", st)
	}
}
