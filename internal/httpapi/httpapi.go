// Package httpapi is the hqsd daemon's HTTP layer, factored out of the
// command so the cluster coordinator and its tests can run real workers
// in-process (httptest servers backed by real Schedulers) against the exact
// wire surface a production hqsd exposes. The cmd/hqsd binary is a thin
// main around this package.
//
// Endpoints (see cmd/hqsd for the full API documentation):
//
//	POST   /jobs            enqueue, 202 job snapshot
//	GET    /jobs/{id}       job snapshot (?cert=1 attaches the Skolem blob)
//	GET    /jobs/{id}/trace per-pass pipeline trace
//	DELETE /jobs/{id}       cancel
//	POST   /solve           submit and block (?cert=1 attaches the Skolem blob)
//	POST   /pqe             synchronous partial quantifier elimination
//	GET    /healthz         liveness
//	GET    /readyz          readiness (draining or saturated = 503)
//	GET    /stats           scheduler counters
//
// Two cluster-facing extensions over the original daemon surface:
//
//   - The X-Idempotency-Key request header on /jobs and /solve dedupes
//     resubmits onto the tracked job with that key (scheduler IdemHits), so a
//     coordinator retrying a forward after a network failure cannot
//     double-run a job the worker had in fact accepted.
//
//   - The ?cert=1 query parameter on /solve and GET /jobs/{id} attaches the
//     cert.Encode wire form of the Skolem certificate to a SAT response
//     ("cert_skolem"), letting the coordinator stitch per-cube certificates
//     into one merged certificate and re-check it independently.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/faults"
	"repro/internal/problem"
	"repro/internal/service"
	"repro/internal/trace"
)

// IdempotencyHeader is the request header carrying the submit idempotency
// key on /jobs and /solve.
const IdempotencyHeader = "X-Idempotency-Key"

// Server routes HTTP requests onto a service.Scheduler.
type Server struct {
	sched *service.Scheduler
	// healthy flips to false when shutdown begins so load balancers stop
	// routing to a draining instance before the listener closes.
	healthy atomic.Bool
	// MaxBody bounds request bodies (problem text in any format) in bytes.
	MaxBody int64
	// RequestTimeout bounds a blocking /solve request; 0 disables the bound
	// (the job's own timeout still applies).
	RequestTimeout time.Duration
}

// New wraps a scheduler in a Server with the default body bound.
func New(sched *service.Scheduler) *Server {
	s := &Server{sched: sched, MaxBody: 64 << 20}
	s.healthy.Store(true)
	return s
}

// Scheduler returns the scheduler this server routes onto.
func (s *Server) Scheduler() *service.Scheduler { return s.sched }

// SetHealthy flips the health state reported by /healthz and /readyz;
// shutdown paths set it false before draining.
func (s *Server) SetHealthy(v bool) { s.healthy.Store(v) }

// Handler builds the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /pqe", s.handlePQE)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return s.recoverer(mux)
}

// recoverer is the daemon's last-resort panic boundary: a handler panic
// becomes a 500 JSON error on that one request instead of a closed
// connection. The solver cores have their own containment in the service
// layer; this guards the HTTP plumbing itself.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("httpapi: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeJSON(w, http.StatusInternalServerError,
					map[string]string{"error": fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// jobResponse is a job snapshot plus the optional certificate attachment.
type jobResponse struct {
	service.JobInfo
	// CertSkolem is the cert.Encode wire form of the job's Skolem
	// certificate, attached on ?cert=1 when the job finished SAT with a
	// certificate in hand (certification enabled, not a memory-cache hit).
	CertSkolem string `json:"cert_skolem,omitempty"`
}

// jobView shapes the response for one job: the plain snapshot, plus the
// encoded Skolem certificate when the client asked for it and the job has
// one.
func jobView(job *service.Job, withCert bool) any {
	info := job.Info()
	if !withCert || info.State != service.StateDone || info.Outcome == nil ||
		info.Outcome.Verdict != service.VerdictSat {
		return info
	}
	out := job.Outcome()
	if out.Cert == nil {
		return info
	}
	blob, err := cert.Encode(out.Cert)
	if err != nil {
		// The verdict is still good; only the attachment failed.
		return info
	}
	return jobResponse{JobInfo: info, CertSkolem: string(blob)}
}

func wantCert(r *http.Request) bool {
	return r.URL.Query().Get("cert") == "1"
}

// parseLimits reads the engine/limit query parameters shared by /jobs,
// /solve, and /pqe.
func (s *Server) parseLimits(w http.ResponseWriter, r *http.Request) (service.Engine, service.Limits, bool) {
	q := r.URL.Query()
	eng, err := service.ParseEngine(q.Get("engine"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return "", service.Limits{}, false
	}
	var lim service.Limits
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad timeout: %w", err))
			return "", service.Limits{}, false
		}
		lim.Timeout = d
	}
	intParam := func(name string) (int64, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseInt(v, 10, 64)
	}
	if lim.Conflicts, err = intParam("conflicts"); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad conflicts: %w", err))
		return "", service.Limits{}, false
	}
	if lim.Decisions, err = intParam("decisions"); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad decisions: %w", err))
		return "", service.Limits{}, false
	}
	nodes, err := intParam("nodes")
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad nodes: %w", err))
		return "", service.Limits{}, false
	}
	lim.Nodes = int(nodes)
	return eng, lim, true
}

// readProblem ingests the request body through the unified problem layer:
// the Content-Type header is the format hint when it names a known format
// (application/x-dqdimacs, -qdimacs, -aiger, -bench, -pqe); anything else —
// including the generic text/plain curl sends — falls back to content
// sniffing, so clients can POST any supported format to any ingesting
// endpoint without ceremony.
func (s *Server) readProblem(w http.ResponseWriter, r *http.Request) (*problem.Problem, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	p, err := problem.ParseBytes(data, problem.FormatFromContentType(r.Header.Get("Content-Type")))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return p, true
}

// parseJobRequest reads a problem body (any supported format) and the
// engine/limit query parameters shared by /jobs and /solve.
func (s *Server) parseJobRequest(w http.ResponseWriter, r *http.Request) (*problem.Problem, service.Engine, service.Limits, bool) {
	eng, lim, ok := s.parseLimits(w, r)
	if !ok {
		return nil, "", service.Limits{}, false
	}
	p, ok := s.readProblem(w, r)
	if !ok {
		return nil, "", service.Limits{}, false
	}
	if p.Kind == problem.KindPQE {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("PQE queries are not solver jobs; POST them to /pqe"))
		return nil, "", service.Limits{}, false
	}
	return p, eng, lim, true
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) (*service.Job, bool) {
	p, eng, lim, ok := s.parseJobRequest(w, r)
	if !ok {
		return nil, false
	}
	job, err := s.sched.SubmitProblemIdem(p, eng, lim, r.Header.Get(IdempotencyHeader))
	switch {
	case errors.Is(err, service.ErrQueueFull):
		// Load shedding: the client should back off and retry, which is 429,
		// not 503 — the instance is healthy, just saturated.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return nil, false
	case errors.Is(err, service.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return job, true
}

// handleSubmit enqueues a job and returns its snapshot without waiting.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleSolve submits and blocks until the job finishes, the client goes
// away (job cancelled), or the per-request timeout expires (504, job
// cancelled) — a synchronous endpoint must not hold connections forever.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	var timeoutCh <-chan time.Time
	if s.RequestTimeout > 0 {
		timer := time.NewTimer(s.RequestTimeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, jobView(job, wantCert(r)))
	case <-timeoutCh:
		s.sched.Cancel(job.ID())
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("request timeout after %v; job %s cancelled", s.RequestTimeout, job.ID()))
	case <-r.Context().Done():
		s.sched.Cancel(job.ID())
		<-job.Done()
	}
}

// handlePQE answers a partial-quantifier-elimination query synchronously:
// the body must be a PQE problem ("p pqe" header; Content-Type
// application/x-pqe or sniffed), the timeout/conflicts/decisions query
// parameters bound the query, and the response carries the computed clause
// set Q (DIMACS literal arrays) with Q ∧ ∃X[G] ≡ ∃X[F ∧ G], plus the
// canonical hash of the query and the engine's round counters. A budget
// stop degrades to {"status": "unknown"}; internal failures are 500s.
func (s *Server) handlePQE(w http.ResponseWriter, r *http.Request) {
	_, lim, ok := s.parseLimits(w, r)
	if !ok {
		return
	}
	p, ok := s.readProblem(w, r)
	if !ok {
		return
	}
	if p.Kind != problem.KindPQE {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("/pqe wants a PQE query (\"p pqe\" header), got a %s problem; POST it to /solve", p.Kind))
		return
	}
	b := budget.New(budget.Limits{Timeout: lim.Timeout, Conflicts: lim.Conflicts, Decisions: lim.Decisions})
	res, err := service.SolvePQE(p.PQE, b, nil)
	if err != nil {
		if b.Stopped() || errors.Is(err, faults.ErrUnknown) {
			writeJSON(w, http.StatusOK, map[string]any{
				"status": "unknown",
				"reason": err.Error(),
			})
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	clauses := make([][]int, len(res.Q))
	for i, c := range res.Q {
		lits := make([]int, len(c))
		for j, l := range c {
			lits[j] = l.Dimacs()
		}
		clauses[i] = lits
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"hash":      p.CanonicalHash(),
		"clauses":   clauses,
		"rounds":    res.Rounds,
		"sat_calls": res.SATCalls,
		"blocked":   res.Blocked,
		"conflicts": b.ConflictsUsed(),
		"decisions": b.DecisionsUsed(),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, service.ErrNoSuchJob)
		return
	}
	writeJSON(w, http.StatusOK, jobView(job, wantCert(r)))
}

// handleTrace returns the job's per-pass pipeline trace: one structured
// event per executed pass across every engine attempt, retained with the
// job's history entry. Events may still be arriving while the job runs;
// dropped counts events beyond the configured retention bound.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, service.ErrNoSuchJob)
		return
	}
	events, dropped := job.Trace()
	if events == nil {
		events = []trace.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      job.ID(),
		"dropped": dropped,
		"events":  events,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

// handleHealthz is liveness: 200 while the process serves requests, 503 once
// shutdown has begun. Use /readyz to decide whether to route new work here.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if !s.healthy.Load() || s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while the instance should not receive new
// jobs — shutting down, draining, or with a full queue. Distinct from
// /healthz so a saturated-but-healthy instance is depooled, not restarted.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case !s.healthy.Load() || s.sched.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.sched.QueueFree() == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}
