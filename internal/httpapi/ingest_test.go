package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/pec"
	"repro/internal/problem"
	"repro/internal/service"
)

// pqeQuery is ∃x3[(¬x3) ∧ (x3 ∨ y1)]: the exact answer is the unit clause
// (y1).
const pqeQuery = `p pqe 3 1 1
e 3 0
-3 0
3 1 0
`

// adderInstance builds the acceptance instance — a 1-bit ripple-carry
// specification against a lookahead implementation with one gate cut out as
// a black box — and returns the same problem as BENCH and DQDIMACS bytes.
func adderInstance(t *testing.T) (bench, dqdimacs []byte) {
	t.Helper()
	spec := circuit.RippleCarryAdder(1)
	impl := circuit.CarryLookaheadAdder(1)
	cut, _, err := pec.CutBoxes(impl, [][]int{{impl.Signal("p0")}})
	if err != nil {
		t.Fatalf("CutBoxes: %v", err)
	}
	m, err := circuit.Miter(spec, cut)
	if err != nil {
		t.Fatalf("Miter: %v", err)
	}
	var b bytes.Buffer
	if err := m.WriteBench(&b); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	p, err := problem.ParseBytes(b.Bytes(), problem.FormatBENCH)
	if err != nil {
		t.Fatalf("parse bench: %v", err)
	}
	var d bytes.Buffer
	if err := p.Formula.WriteDQDIMACS(&d); err != nil {
		t.Fatalf("write dqdimacs: %v", err)
	}
	return b.Bytes(), d.Bytes()
}

func postBody(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("POST %s: read body: %v", url, err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestDualFormatSharedCacheEntry is the PR's acceptance scenario: the same
// adder instance POSTed as BENCH and as DQDIMACS returns identical verdicts
// and shares a single cache entry, because the canonical hash is computed on
// the normalized problem.
func TestDualFormatSharedCacheEntry(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1, CacheSize: 16})
	bench, dqdimacs := adderInstance(t)

	solve := func(body []byte, ct string) service.JobInfo {
		code, raw := postBody(t, ts.URL+"/solve?engine=hqs&timeout=60s", ct, body)
		if code != http.StatusOK {
			t.Fatalf("POST /solve (%s): status %d: %s", ct, code, raw)
		}
		var info service.JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if info.Outcome == nil {
			t.Fatalf("job not finished: %+v", info)
		}
		return info
	}

	first := solve(bench, "application/x-bench")
	if first.Format != string(problem.FormatBENCH) {
		t.Fatalf("first job format = %q, want bench", first.Format)
	}
	if first.Kind != problem.KindQBF.String() {
		t.Fatalf("first job kind = %q, want qbf (circuit encodings are linear)", first.Kind)
	}
	second := solve(dqdimacs, "application/x-dqdimacs")
	if first.Outcome.Verdict != second.Outcome.Verdict {
		t.Fatalf("verdicts differ across formats: bench %v, dqdimacs %v",
			first.Outcome.Verdict, second.Outcome.Verdict)
	}
	var st service.Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1 (second format must reuse the first entry)", st.CacheHits)
	}
	if st.CacheLen != 1 {
		t.Fatalf("cache_len = %d, want a single shared entry", st.CacheLen)
	}
}

// TestSolveAcceptsAllFormats sniffs every supported formula format with no
// Content-Type hint.
func TestSolveAcceptsAllFormats(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	bodies := map[string]string{
		"dqdimacs": example1,
		"qdimacs":  "p cnf 2 1\na 1 0\ne 2 0\n-1 2 0\n",
		"aiger":    "aag 3 2 0 1 1\n2\n4\n7\n6 2 5\ni0 a_x\n",
		"bench":    "INPUT(a)\nOUTPUT(o)\no = XNOR(a, f)\n",
	}
	for name, body := range bodies {
		code, raw := postBody(t, ts.URL+"/solve?engine=hqs&timeout=60s", "text/plain", []byte(body))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, raw)
		}
		var info service.JobInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if info.Format != name {
			t.Fatalf("format = %q, want %q", info.Format, name)
		}
		if info.Outcome == nil || info.Outcome.Verdict != service.VerdictSat {
			t.Fatalf("%s: outcome %+v, want SAT", name, info.Outcome)
		}
	}
}

func TestPQEEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	code, raw := postBody(t, ts.URL+"/pqe?timeout=30s", "application/x-pqe", []byte(pqeQuery))
	if code != http.StatusOK {
		t.Fatalf("POST /pqe: status %d: %s", code, raw)
	}
	var res struct {
		Status  string  `json:"status"`
		Hash    string  `json:"hash"`
		Clauses [][]int `json:"clauses"`
		Rounds  int     `json:"rounds"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if res.Status != "ok" || res.Hash == "" || res.Rounds == 0 {
		t.Fatalf("response %+v", res)
	}
	if len(res.Clauses) != 1 || len(res.Clauses[0]) != 1 || res.Clauses[0][0] != 1 {
		t.Fatalf("Q = %v, want [[1]] (the unit clause y1)", res.Clauses)
	}
}

// TestPQERouting: PQE queries on /solve and formula problems on /pqe are
// both clean 400s.
func TestPQERouting(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	if code, raw := postBody(t, ts.URL+"/solve?engine=hqs", "text/plain", []byte(pqeQuery)); code != http.StatusBadRequest {
		t.Fatalf("PQE on /solve: status %d: %s", code, raw)
	}
	if code, raw := postBody(t, ts.URL+"/jobs", "text/plain", []byte(pqeQuery)); code != http.StatusBadRequest {
		t.Fatalf("PQE on /jobs: status %d: %s", code, raw)
	}
	if code, raw := postBody(t, ts.URL+"/pqe", "text/plain", []byte(example1)); code != http.StatusBadRequest {
		t.Fatalf("formula on /pqe: status %d: %s", code, raw)
	}
}

// TestIngestionRejectsMalformed: malformed bodies in every format are 400s,
// including the BENCH arity violations that used to panic the parser.
func TestIngestionRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})
	cases := map[string]struct{ ct, body string }{
		"dqdimacs":        {"text/plain", "p cnf oops\n"},
		"aiger truncated": {"text/plain", "aag 2 2 0 0 0\n2\n"},
		"aiger latches":   {"text/plain", "aag 2 1 1 0 0\n2\n4 2\n"},
		"bench arity":     {"text/plain", "x = NOT(a, b)\n"},
		"bench xor arity": {"text/plain", "OUTPUT(x)\nx = XOR(a, b, c)\n"},
		"bench cycle":     {"text/plain", "x = NOT(y)\ny = NOT(x)\n"},
		"empty":           {"text/plain", ""},
		"hinted mismatch": {"application/x-bench", example1},
	}
	for name, tc := range cases {
		code, raw := postBody(t, ts.URL+"/solve?engine=hqs", tc.ct, []byte(tc.body))
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", name, code, raw)
		}
	}
	// The daemon is still healthy afterwards.
	var v map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &v); code != http.StatusOK {
		t.Fatalf("healthz after malformed bodies: %d", code)
	}
}

// TestIngestionFaultDrill arms the problem.parse fault point: injected
// errors surface as 400s, injected panics as contained 500s — the daemon
// keeps serving either way.
func TestIngestionFaultDrill(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})

	plan, err := faults.ParseSpec("problem.parse:error:every=1", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)
	if code, raw := postBody(t, ts.URL+"/solve?engine=hqs", "text/plain", []byte(example1)); code != http.StatusBadRequest {
		t.Fatalf("injected parse error: status %d, want 400: %s", code, raw)
	}

	plan, err = faults.ParseSpec("problem.parse:panic:every=1", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faults.Activate(plan)
	if code, raw := postBody(t, ts.URL+"/solve?engine=hqs", "text/plain", []byte(example1)); code != http.StatusInternalServerError {
		t.Fatalf("injected parse panic: status %d, want 500: %s", code, raw)
	}
	faults.Deactivate()

	// Clean request afterwards: the worker pool and listener survived.
	code, raw := postBody(t, ts.URL+"/solve?engine=hqs&timeout=60s", "text/plain", []byte(example1))
	if code != http.StatusOK {
		t.Fatalf("post-drill solve: status %d: %s", code, raw)
	}
}

// TestPQEFaultDrill arms the pqe.solve point: spurious unknowns degrade to
// {"status":"unknown"}, hard errors to 500s, panics are contained by the
// service layer, and the failure counter advances.
func TestPQEFaultDrill(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})

	arm := func(spec string) {
		plan, err := faults.ParseSpec(spec, 1)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		faults.Activate(plan)
	}
	t.Cleanup(faults.Deactivate)

	arm("pqe.solve:unknown:every=1")
	code, raw := postBody(t, ts.URL+"/pqe", "application/x-pqe", []byte(pqeQuery))
	if code != http.StatusOK || !strings.Contains(string(raw), `"unknown"`) {
		t.Fatalf("spurious unknown: status %d: %s", code, raw)
	}

	arm("pqe.solve:error:every=1")
	if code, raw = postBody(t, ts.URL+"/pqe", "application/x-pqe", []byte(pqeQuery)); code != http.StatusInternalServerError {
		t.Fatalf("injected error: status %d, want 500: %s", code, raw)
	}

	arm("pqe.solve:panic:every=1")
	if code, raw = postBody(t, ts.URL+"/pqe", "application/x-pqe", []byte(pqeQuery)); code != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d, want contained 500: %s", code, raw)
	}
	faults.Deactivate()

	if code, raw = postBody(t, ts.URL+"/pqe", "application/x-pqe", []byte(pqeQuery)); code != http.StatusOK {
		t.Fatalf("post-drill query: status %d: %s", code, raw)
	}
	queries, failures := service.PQEStats()
	if queries < 4 || failures < 2 {
		t.Fatalf("pqe meters: %d queries, %d failures", queries, failures)
	}
}
