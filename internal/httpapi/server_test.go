package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/service"
)

// example1 is the paper's Example 1 in DQDIMACS: ∀x1∀x2 ∃y1(x1) ∃y2(x2),
// matrix (y1↔x1)∧(y2↔x2). Satisfiable, not QBF-expressible.
const example1 = `c paper example 1
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
`

// unsatInstance is ∀x ∃y(∅) with y↔x: unsatisfiable.
const unsatInstance = `p cnf 2 2
a 1 0
d 2 0
-2 1 0
2 -1 0
`

func newTestServer(t *testing.T, cfg service.Config) (*Server, *httptest.Server) {
	t.Helper()
	// Registered first so its cleanup assertion runs last, after the
	// scheduler has drained: dead workers or stuck jobs show up as leaks.
	leakcheck.Check(t)
	sched := service.NewScheduler(cfg)
	srv := New(sched)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := sched.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// TestSolveOverHTTP is the acceptance scenario: a DQDIMACS instance
// submitted over HTTP is solved in portfolio mode.
func TestSolveOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/solve?engine=portfolio&timeout=30s", "text/plain", strings.NewReader(example1))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.State != service.StateDone || info.Outcome == nil {
		t.Fatalf("job not done: %+v", info)
	}
	if info.Outcome.Verdict != service.VerdictSat {
		t.Fatalf("verdict = %v, want SAT", info.Outcome.Verdict)
	}
	if info.Outcome.Reason != "solved" {
		t.Fatalf("reason = %q", info.Outcome.Reason)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})

	resp, err := http.Post(ts.URL+"/jobs?engine=hqs", "text/plain", strings.NewReader(unsatInstance))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var info service.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || info.ID == "" {
		t.Fatalf("submit: status %d, info %+v", resp.StatusCode, info)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/jobs/"+info.ID, &info); code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if info.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.Outcome == nil || info.Outcome.Verdict != service.VerdictUnsat {
		t.Fatalf("outcome: %+v", info.Outcome)
	}

	var errBody map[string]string
	if code := getJSON(t, ts.URL+"/jobs/nope", &errBody); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d", code)
	}
}

func TestCancelOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, service.Config{Workers: 1})

	// A hard pigeonhole instance keeps the worker busy until cancelled.
	var b strings.Builder
	b.WriteString("p cnf 56 163\n")
	hole := func(i, j int) int { return i*7 + j + 1 } // 8 pigeons, 7 holes
	for i := 0; i < 8; i++ {
		for j := 0; j < 7; j++ {
			b.WriteString(" ")
			b.WriteString(itoa(hole(i, j)))
		}
		b.WriteString(" 0\n")
	}
	for j := 0; j < 7; j++ {
		for i := 0; i < 8; i++ {
			for k := i + 1; k < 8; k++ {
				b.WriteString(itoa(-hole(i, j)) + " " + itoa(-hole(k, j)) + " 0\n")
			}
		}
	}

	resp, err := http.Post(ts.URL+"/jobs?engine=hqs", "text/plain", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var info service.JobInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, ts.URL+"/jobs/"+info.ID, &info)
		if info.State == service.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.Outcome.Verdict != service.VerdictUnknown || info.Outcome.Reason != "cancelled" {
		t.Fatalf("outcome: %+v", info.Outcome)
	}
}

func TestHealthzStatsAndErrors(t *testing.T) {
	srv, ts := newTestServer(t, service.Config{Workers: 1})

	var h map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}
	srv.SetHealthy(false)
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", code)
	}
	srv.SetHealthy(true)

	// Malformed body and bad query parameters are 400s.
	for _, url := range []string{
		ts.URL + "/solve",
		ts.URL + "/jobs?engine=bogus",
		ts.URL + "/jobs?timeout=ten-seconds",
		ts.URL + "/jobs?conflicts=many",
	} {
		resp, err := http.Post(url, "text/plain", strings.NewReader("p cnf oops\n"))
		if err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", url, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/solve?engine=idq", "text/plain", strings.NewReader(example1))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	resp.Body.Close()
	var st service.Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Submitted < 1 || st.Solved < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
