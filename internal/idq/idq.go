// Package idq implements an instantiation-based DQBF solver in the spirit of
// iDQ (Fröhlich et al., POS 2014), the baseline HQS is compared against in
// the paper's evaluation.
//
// iDQ grounds the DQBF clause-wise using Inst-Gen; this reproduction uses the
// same algorithmic family — lazy grounding of the universal expansion driven
// by a SAT oracle — in its counterexample-guided form:
//
//  1. Maintain a set A of universal assignments. The abstraction is the SAT
//     formula ⋀_{a∈A} φ[x:=a] where each existential y is replaced by an
//     instantiation variable y@(a|D_y) — two assignments share an
//     instantiation variable exactly when they agree on D_y, which encodes
//     the dependency restrictions (the full expansion over all a is
//     equisatisfiable with the DQBF).
//  2. If the abstraction is unsatisfiable, so is the DQBF.
//  3. Otherwise the abstraction model induces partial Skolem tables
//     (default 0 off-table). A verification SAT call searches for a
//     universal assignment falsifying the matrix under those tables; if none
//     exists the DQBF is satisfied, otherwise the counterexample joins A and
//     the loop repeats. Every counterexample is new, so the loop terminates
//     after at most 2^|U| refinements.
//
// Like iDQ, the solver is cheap on instances refuted by a few instantiations
// and degrades exponentially when many universal assignments must be
// enumerated — the qualitative behaviour Table I and Fig. 4 report.
package idq

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/sat"
)

// Status mirrors the solver outcome classification of package core.
type Status int

const (
	// Solved means a definitive verdict was reached.
	Solved Status = iota
	// Timeout means the wall-clock budget was exhausted.
	Timeout
	// Memout means the instantiation budget was exhausted.
	Memout
	// Cancelled means the budget was cancelled (or a conflict/decision cap
	// was exhausted) before a verdict.
	Cancelled
)

func (s Status) String() string {
	switch s {
	case Solved:
		return "solved"
	case Timeout:
		return "timeout"
	case Memout:
		return "memout"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configure the solver.
type Options struct {
	// Timeout bounds wall-clock time; 0 means unlimited.
	Timeout time.Duration
	// MaxInstantiations bounds the number of instantiated clauses in the
	// abstraction (the analogue of iDQ's memory-outs); 0 means unlimited.
	MaxInstantiations int
	// Budget, when non-nil, makes the solve cancellable: the instantiation
	// loop and both SAT oracles (abstraction and verification) poll it, so a
	// cancellation interrupts a running CDCL search, not just the next
	// refinement. Status is Timeout on its deadline, Cancelled otherwise.
	Budget *budget.Budget
}

// Stats collects counters.
type Stats struct {
	Iterations     int
	Instantiations int
	AbstractionSAT int // abstraction oracle calls
	VerifySAT      int // verification oracle calls
	TableEntries   int
	TotalTime      time.Duration
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	Sat    bool
	Stats  Stats
	// Certificate holds the Skolem tables witnessing a Sat verdict (nil
	// otherwise); any off-table completion is valid, so the default-false
	// completion is certified. It can be checked independently with
	// Certificate.Verify.
	Certificate *dqbf.Certificate
}

// Solver is the instantiation-based DQBF solver.
type Solver struct {
	Opt Options
}

// New returns a solver with the given options.
func New(opt Options) *Solver { return &Solver{Opt: opt} }

// projKey identifies a projection of a universal assignment onto a
// dependency set.
type projKey struct {
	y   cnf.Var
	key string
}

// Solve decides the DQBF. The input is not modified.
func (s *Solver) Solve(f *dqbf.Formula) Result {
	start := time.Now()
	res := Result{}
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	deadline := s.Opt.Budget.Deadline()
	if s.Opt.Timeout > 0 {
		if d := start.Add(s.Opt.Timeout); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	// stopStatus returns the status to report when a loop or oracle must
	// stop, and false when there is no stop condition.
	stopStatus := func() (Status, bool) {
		if err := s.Opt.Budget.Err(); err != nil {
			if errors.Is(err, budget.ErrDeadline) {
				return Timeout, true
			}
			return Cancelled, true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Timeout, true
		}
		return 0, false
	}

	univ := f.Univ
	abs := sat.New()
	abs.Budget = s.Opt.Budget
	instVar := make(map[projKey]cnf.Var)

	instOf := func(y cnf.Var, a map[cnf.Var]bool) cnf.Var {
		deps := f.Deps[y].Vars()
		var b strings.Builder
		for _, d := range deps {
			if a[d] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		k := projKey{y, b.String()}
		v, ok := instVar[k]
		if !ok {
			v = abs.NewVar()
			instVar[k] = v
		}
		return v
	}

	// addInstance grounds every matrix clause under assignment a and adds it
	// to the abstraction. Returns false if an empty clause arises (UNSAT).
	addInstance := func(a map[cnf.Var]bool) bool {
		for _, c := range f.Matrix.Clauses {
			ground := make([]cnf.Lit, 0, len(c))
			satisfied := false
			for _, l := range c {
				v := l.Var()
				if val, isU := a[v]; isU {
					if val != l.Neg() {
						satisfied = true
						break
					}
					continue // false universal literal drops out
				}
				if !f.IsExistential(v) {
					panic(fmt.Sprintf("idq: unquantified variable %d in matrix", v))
				}
				ground = append(ground, cnf.NewLit(instOf(v, a), l.Neg()))
			}
			if satisfied {
				continue
			}
			res.Stats.Instantiations++
			if len(ground) == 0 {
				return false
			}
			if !abs.AddClause(ground...) {
				return false
			}
		}
		return true
	}

	seen := make(map[string]bool) // guard against repeated counterexamples
	keyOf := func(a map[cnf.Var]bool) string {
		var b strings.Builder
		for _, x := range univ {
			if a[x] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}

	for {
		res.Stats.Iterations++
		if st, stop := stopStatus(); stop {
			res.Status = st
			return res
		}
		if s.Opt.MaxInstantiations > 0 && res.Stats.Instantiations > s.Opt.MaxInstantiations {
			res.Status = Memout
			return res
		}

		// Step 1: abstraction.
		res.Stats.AbstractionSAT++
		st := abs.Solve()
		if st == sat.Unknown {
			// The oracle only stops on the shared budget; report why.
			if st, stop := stopStatus(); stop {
				res.Status = st
			} else {
				res.Status = Cancelled
			}
			return res
		}
		if st == sat.Unsat {
			res.Status = Solved
			res.Sat = false
			return res
		}
		model := abs.Model()

		// Step 2: build candidate Skolem tables from the model.
		tables := make(map[cnf.Var]map[string]bool)
		for k, v := range instVar {
			t := tables[k.y]
			if t == nil {
				t = make(map[string]bool)
				tables[k.y] = t
			}
			if model == nil {
				t[k.key] = false
			} else {
				t[k.key] = model.Get(v)
			}
		}
		res.Stats.TableEntries = len(instVar)

		// Step 3: verification — search a universal assignment falsifying
		// the matrix under the tables.
		cex, found, stopped := s.verify(f, tables)
		res.Stats.VerifySAT++
		if stopped {
			if st, stop := stopStatus(); stop {
				res.Status = st
			} else {
				res.Status = Cancelled
			}
			return res
		}
		if !found {
			res.Status = Solved
			res.Sat = true
			res.Certificate = &dqbf.Certificate{Tables: tables}
			return res
		}
		k := keyOf(cex)
		if seen[k] {
			// Cannot happen for a correct abstraction; guards nontermination.
			panic("idq: repeated counterexample " + k)
		}
		seen[k] = true
		if !addInstance(cex) {
			res.Status = Solved
			res.Sat = false
			return res
		}
	}
}

// verify searches for a universal assignment under which the matrix is
// falsified when every existential follows its candidate table. Table
// entries pin the existential's value via one implication clause each
// (match_p → y = v); projections outside the table are unconstrained — any
// per-projection completion is a legal Skolem function, so a verification
// failure on a free entry is a genuine refinement direction, and an
// unsatisfiable query proves every completion of the tables correct. The
// third return value is true when the budget stopped the query before a
// verdict (the first two are then meaningless).
func (s *Solver) verify(f *dqbf.Formula, tables map[cnf.Var]map[string]bool) (map[cnf.Var]bool, bool, bool) {
	vs := sat.New()
	vs.Budget = s.Opt.Budget
	vmap := make(map[cnf.Var]cnf.Var) // original var -> verification SAT var
	varOf := func(v cnf.Var) cnf.Var {
		w, ok := vmap[v]
		if !ok {
			w = vs.NewVar()
			vmap[v] = w
		}
		return w
	}
	litOf := func(l cnf.Lit) cnf.Lit {
		return cnf.NewLit(varOf(l.Var()), l.Neg())
	}
	// Allocate universal variables up front so the model covers them even
	// when a universal occurs in no clause or dependency set.
	for _, x := range f.Univ {
		varOf(x)
	}

	// One clause per table entry: (¬match_p ∨ y=v).
	for _, y := range f.Exist {
		deps := f.Deps[y].Vars()
		yl := cnf.PosLit(varOf(y))
		tab := tables[y]
		keys := make([]string, 0, len(tab))
		for k := range tab {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c := make([]cnf.Lit, 0, len(deps)+1)
			for i, d := range deps {
				// ¬match: some dependency literal differs from p.
				c = append(c, cnf.NewLit(varOf(d), k[i] == '1'))
			}
			c = append(c, yl.XorSign(!tab[k]))
			vs.AddClause(c...)
		}
	}

	// Encode "some clause is violated": selector per clause.
	sel := make([]cnf.Lit, 0, len(f.Matrix.Clauses))
	for _, c := range f.Matrix.Clauses {
		sl := cnf.PosLit(vs.NewVar())
		for _, l := range c {
			vs.AddClause(sl.Not(), litOf(l).Not())
		}
		sel = append(sel, sl)
	}
	if len(sel) == 0 {
		return nil, false, false // empty matrix is a tautology
	}
	vs.AddClause(sel...)

	switch vs.Solve() {
	case sat.Unknown:
		return nil, false, true
	case sat.Sat:
	default:
		return nil, false, false
	}
	model := vs.Model()
	a := make(map[cnf.Var]bool, len(f.Univ))
	for _, x := range f.Univ {
		a[x] = model.Get(varOf(x))
	}
	return a, true, false
}
