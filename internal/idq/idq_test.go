package idq

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/dqbf"
)

func paperExample1() *dqbf.Formula {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 1)
	f.AddExistential(4, 2)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func TestPaperExample1(t *testing.T) {
	res := New(Options{}).Solve(paperExample1())
	if res.Status != Solved || !res.Sat {
		t.Fatalf("got %v/%v, want solved SAT", res.Status, res.Sat)
	}
	if res.Stats.Iterations == 0 || res.Stats.VerifySAT == 0 {
		t.Fatal("stats not populated")
	}
}

func TestCrossDependencyUnsat(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	res := New(Options{}).Solve(f)
	if res.Status != Solved || res.Sat {
		t.Fatalf("got %v/%v, want solved UNSAT", res.Status, res.Sat)
	}
}

func randomDQBF(rng *rand.Rand, nUniv, nExist, nClauses int) *dqbf.Formula {
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	for i := 0; i < nExist; i++ {
		y := cnf.Var(nUniv + i + 1)
		var deps []cnf.Var
		for _, x := range f.Univ {
			if rng.Intn(2) == 0 {
				deps = append(deps, x)
			}
		}
		f.AddExistential(y, deps...)
	}
	n := nUniv + nExist
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for iter := 0; iter < 250; iter++ {
		f := randomDQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(10))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		res := New(Options{}).Solve(f)
		if res.Status != Solved {
			t.Fatalf("iter %d: status %v", iter, res.Status)
		}
		if res.Sat != want {
			t.Fatalf("iter %d: got %v want %v\n%v\n%v", iter, res.Sat, want, f, f.Matrix.Clauses)
		}
		// SAT verdicts must come with a valid Skolem certificate.
		if res.Sat {
			if res.Certificate == nil {
				t.Fatalf("iter %d: SAT without certificate", iter)
			}
			if err := res.Certificate.Verify(f); err != nil {
				t.Fatalf("iter %d: certificate rejected: %v", iter, err)
			}
		} else if res.Certificate != nil {
			t.Fatalf("iter %d: UNSAT with certificate", iter)
		}
	}
}

func TestCertificateForExample1(t *testing.T) {
	res := New(Options{}).Solve(paperExample1())
	if !res.Sat || res.Certificate == nil {
		t.Fatal("expected SAT with certificate")
	}
	if err := res.Certificate.Verify(paperExample1()); err != nil {
		t.Fatalf("certificate invalid: %v", err)
	}
}

func TestAgreesWithHQSOnLargerInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	hqs := core.New(core.DefaultOptions())
	for iter := 0; iter < 30; iter++ {
		f := randomDQBF(rng, 2+rng.Intn(4), 2+rng.Intn(4), 5+rng.Intn(20))
		ref := hqs.SolveDQBF(f)
		if ref.Status != core.Solved {
			t.Fatalf("iter %d: HQS status %v", iter, ref.Status)
		}
		res := New(Options{}).Solve(f)
		if res.Status != Solved || res.Sat != ref.Sat {
			t.Fatalf("iter %d: iDQ %v/%v, HQS %v", iter, res.Status, res.Sat, ref.Sat)
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddExistential(2, 1)
	res := New(Options{}).Solve(f)
	if !res.Sat {
		t.Fatal("empty matrix must be SAT")
	}
}

func TestNoUniversals(t *testing.T) {
	f := dqbf.New()
	f.AddExistential(1)
	f.AddExistential(2)
	f.Matrix.AddDimacsClause(1, 2)
	f.Matrix.AddDimacsClause(-1, 2)
	res := New(Options{}).Solve(f)
	if !res.Sat {
		t.Fatal("satisfiable SAT instance must be SAT")
	}
	f.Matrix.AddDimacsClause(-2)
	f.Matrix.AddDimacsClause(1, -2)
	res = New(Options{}).Solve(f)
	if res.Sat {
		t.Fatal("unsatisfiable SAT instance must be UNSAT")
	}
}

func TestTimeout(t *testing.T) {
	f := randomDQBF(rand.New(rand.NewSource(3)), 8, 8, 40)
	res := New(Options{Timeout: time.Nanosecond}).Solve(f)
	if res.Status != Timeout {
		t.Fatalf("status = %v, want timeout", res.Status)
	}
}

func TestInstantiationBudget(t *testing.T) {
	// Example 1 needs at least one refinement round (the all-zero default
	// tables are falsified by x1=1), so a budget of one instantiated clause
	// must trip the memout path on the following iteration.
	res := New(Options{MaxInstantiations: 1}).Solve(paperExample1())
	if res.Status != Memout {
		t.Fatalf("status = %v (stats %+v), want memout", res.Status, res.Stats)
	}
}

func TestStatusString(t *testing.T) {
	if Solved.String() != "solved" || Timeout.String() != "timeout" || Memout.String() != "memout" {
		t.Fatal("Status.String broken")
	}
}

func TestInputNotModified(t *testing.T) {
	f := paperExample1()
	before := f.String()
	New(Options{}).Solve(f)
	if f.String() != before {
		t.Fatal("Solve modified its input")
	}
}
