// Package leakcheck asserts that a test leaks no goroutines: Check snapshots
// the live goroutines at the start of a test and registers a cleanup that
// fails the test if new goroutines are still alive at the end. It is the
// shared helper behind the scheduler chaos tests and the hqsd server tests,
// where a leaked worker or handler goroutine is a production bug.
//
// The comparison is by goroutine ID with a grace period: goroutines wind
// down asynchronously (worker pools draining, HTTP keep-alive connections
// closing), so the cleanup polls for a few seconds before declaring a leak.
// Known system goroutines that outlive any single test (signal handling,
// testing harness plumbing) are ignored.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB used here, split out so the package itself
// stays testable.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// ignored returns true for goroutine stacks that are expected to persist
// across tests and must not count as leaks.
func ignored(stack string) bool {
	for _, frag := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.runTests(",
		"testing.(*M).",
		"runtime.goexit0",
		"created by runtime.gc",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"signal.loop",
		"os/signal.Notify",
		"runtime.ensureSigM",
		"go.opencensus.io",
		"net/http.(*persistConn).writeLoop",
		"net/http.(*persistConn).readLoop",
		"internal/poll.runtime_pollWait",
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	return false
}

// goroutines returns the current goroutine dump split per goroutine,
// keyed by the numeric goroutine ID from the header line.
func goroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		// header: "goroutine 12 [running]:"
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		out[fields[1]] = g
	}
	return out
}

// leaked returns the goroutines alive now that were not in baseline and are
// not on the ignore list.
func leaked(baseline map[string]string) []string {
	var out []string
	for id, stack := range goroutines() {
		if _, ok := baseline[id]; ok {
			continue
		}
		if ignored(stack) {
			continue
		}
		out = append(out, stack)
	}
	return out
}

// Check snapshots the live goroutines and registers a cleanup that fails t
// if goroutines created during the test are still running once the test (and
// every cleanup registered after Check) has finished. Call it first thing in
// the test, before starting schedulers or servers, so their shutdown
// cleanups run before the comparison.
func Check(t TB) {
	t.Helper()
	baseline := goroutines()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var extra []string
		for {
			extra = leaked(baseline)
			if len(extra) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s", len(extra), strings.Join(extra, "\n\n"))
	})
}

// Snapshot captures the current goroutines for use with Assert, for call
// sites that cannot use Cleanup ordering (e.g. asserting mid-test that a
// drain released every worker).
func Snapshot() map[string]string { return goroutines() }

// Assert fails t if goroutines not present in the snapshot are still alive
// after a grace period.
func Assert(t TB, snapshot map[string]string, grace time.Duration) {
	t.Helper()
	deadline := time.Now().Add(grace)
	var extra []string
	for {
		extra = leaked(snapshot)
		if len(extra) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s", len(extra), strings.Join(extra, "\n\n"))
}

// String renders a snapshot for debugging.
func String(snapshot map[string]string) string {
	var b strings.Builder
	for id, g := range snapshot {
		fmt.Fprintf(&b, "goroutine %s:\n%s\n", id, g)
	}
	return b.String()
}
