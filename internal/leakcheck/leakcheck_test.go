package leakcheck

import (
	"testing"
	"time"
)

// recorder implements TB and records failures instead of failing the real
// test, so the leak path itself can be asserted.
type recorder struct {
	cleanups []func()
	failed   bool
	msg      string
}

func (r *recorder) Helper()                           {}
func (r *recorder) Cleanup(f func())                  { r.cleanups = append(r.cleanups, f) }
func (r *recorder) Errorf(format string, args ...any) { r.failed = true; r.msg = format }
func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestNoLeakPasses(t *testing.T) {
	r := &recorder{}
	Check(r)
	done := make(chan struct{})
	go func() { close(done) }() // starts and exits before cleanup
	<-done
	r.runCleanups()
	if r.failed {
		t.Fatalf("clean test flagged as leaking: %s", r.msg)
	}
}

func TestTransientGoroutineTolerated(t *testing.T) {
	r := &recorder{}
	Check(r)
	// A goroutine that outlives the test body but exits within the grace
	// period must not be reported.
	go func() { time.Sleep(50 * time.Millisecond) }()
	r.runCleanups()
	if r.failed {
		t.Fatalf("transient goroutine flagged as leak: %s", r.msg)
	}
}

func TestLeakDetected(t *testing.T) {
	snap := Snapshot()
	stop := make(chan struct{})
	defer close(stop)
	go func() { <-stop }() // leaks until the deferred close

	r := &recorder{}
	deadline := time.Now().Add(200 * time.Millisecond)
	var extra []string
	for {
		extra = leaked(snap)
		if len(extra) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(extra) == 0 {
		t.Fatal("blocked goroutine not detected")
	}
	_ = r
}
