package maxsat

import (
	"repro/internal/cnf"
	"repro/internal/sat"
)

// Backend is a persistent MaxSAT substrate: one long-lived SAT solver
// shared by every instance solved on it. Each Solve opens an
// activation-literal scope — the instance's variables are allocated in a
// fresh region of the solver's variable space and every clause (hard,
// relaxed soft, cardinality counter) is guarded as (c ∨ ¬act) — runs the
// usual UNSAT→SAT linear search with act appended to every assumption set,
// and closes the scope by asserting the top-level unit ¬act. Retraction is
// a constant-time clause add, never a solver rebuild, and learned clauses
// over shared structure survive into the next instance.
//
// HQS's elimination-set selections are exactly such a sequence of closely
// related instances (the dependency-cycle structure persists while the
// formula shrinks), which is where the reuse pays off.
//
// A Backend is not safe for concurrent use; the selection steps of one
// pipeline run are sequential.
type Backend struct {
	S *sat.Solver

	// Reuse counters, read by the oracle pool's stats.
	Scopes  int64 // instances solved (activation scopes opened + retracted)
	Queries int64 // SAT queries issued across all scopes

	// OnQueries, when set, receives each solve's query count as it lands
	// (the oracle pool uses it to feed the process-global reuse counters
	// without maxsat importing the oracle package).
	OnQueries func(n int64)
}

// NewBackend returns a persistent MaxSAT substrate with a raised
// learned-clause retention floor (the scopes' queries are closely related).
func NewBackend() *Backend {
	s := sat.New()
	s.KeepLearnts = 2000
	return &Backend{S: s}
}

// solve runs instance m inside a fresh activation scope on the backend.
func (be *Backend) solve(m *Solver) (Result, error) {
	s := be.S
	s.Budget = m.Budget
	be.Scopes++
	q0 := s.Stats.SolveCalls

	// Scope prologue: activation literal first (phase-pinned false so the
	// retired scope never pollutes branching), then this instance's
	// variable region.
	actVar := s.NewVar()
	s.SetPhase(actVar, false)
	act := cnf.PosLit(actVar)
	base := s.NumVars()
	s.EnsureVars(base + m.numVars)

	res, err := m.run(s, base, []cnf.Lit{act}, guardedAdder{s: s, inactive: act.Not()})

	// Scope epilogue: retract every guarded clause with one top-level unit.
	s.AddClause(act.Not())
	n := s.Stats.SolveCalls - q0
	be.Queries += n
	if be.OnQueries != nil {
		be.OnQueries(n)
	}
	return res, err
}
