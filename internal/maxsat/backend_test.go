package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// TestBackendMatchesFresh solves a stream of random instances twice — fresh
// solver per instance vs one shared persistent Backend — and demands
// identical optima. Sharing one guarded solver across instances is exactly
// how the pipeline reuses the elimination-set MaxSAT across strengthening
// steps, so any cross-instance state leak (an unretracted guard, a var-region
// overlap) shows up here as a cost mismatch.
func TestBackendMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(20150309))
	be := NewBackend()
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(5)
		var hard, soft []cnf.Clause
		nh := rng.Intn(5)
		ns := 1 + rng.Intn(6)
		mk := func() cnf.Clause {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			return c
		}
		for i := 0; i < nh; i++ {
			hard = append(hard, mk())
		}
		for i := 0; i < ns; i++ {
			soft = append(soft, mk())
		}
		build := func() *Solver {
			m := New(n)
			for _, c := range hard {
				m.AddHard(c...)
			}
			for _, c := range soft {
				m.AddSoft(c...)
			}
			return m
		}

		fresh := build()
		fres, ferr := fresh.Solve()

		shared := build()
		shared.Backend = be
		bres, berr := shared.Solve()

		if (ferr == nil) != (berr == nil) || (ferr == ErrUnsat) != (berr == ErrUnsat) {
			t.Fatalf("iter %d: fresh err %v, backend err %v", iter, ferr, berr)
		}
		if ferr != nil {
			continue
		}
		if fres.Cost != bres.Cost {
			t.Fatalf("iter %d: fresh cost %d, backend cost %d (hard=%v soft=%v)",
				iter, fres.Cost, bres.Cost, hard, soft)
		}
		// The backend's model must be optimal for THIS instance, not a relic
		// of an earlier scope.
		for _, c := range hard {
			if !bres.Model.EvalClause(c) {
				t.Fatalf("iter %d: backend model violates a hard clause", iter)
			}
		}
		viol := 0
		for _, c := range soft {
			if !bres.Model.EvalClause(c) {
				viol++
			}
		}
		if viol != bres.Cost {
			t.Fatalf("iter %d: backend model violates %d softs, reported %d", iter, viol, bres.Cost)
		}
	}
	if be.Scopes < 100 {
		t.Fatalf("backend opened %d scopes; expected one per solved instance", be.Scopes)
	}
	if be.Queries <= be.Scopes {
		t.Fatalf("backend issued %d queries over %d scopes; linear search should issue several per scope",
			be.Queries, be.Scopes)
	}
}

// TestBackendUnsatThenSat checks an UNSAT instance leaves the shared solver
// usable: the scope retraction must erase the contradiction.
func TestBackendUnsatThenSat(t *testing.T) {
	be := NewBackend()

	m := New(1)
	m.Backend = be
	m.AddHard(lit(1))
	m.AddHard(lit(-1))
	if _, err := m.Solve(); err != ErrUnsat {
		t.Fatalf("want ErrUnsat, got %v", err)
	}

	m = New(1)
	m.Backend = be
	m.AddHard(lit(1))
	m.AddSoft(lit(-1))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 || !res.Model.Get(1) {
		t.Fatalf("cost %d model %v; want cost 1 with x1=true", res.Cost, res.Model)
	}
}
