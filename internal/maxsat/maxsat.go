// Package maxsat implements a partial MaxSAT solver on top of the CDCL SAT
// solver.
//
// A partial MaxSAT instance consists of hard clauses, which must be
// satisfied, and soft clauses, of which as many as possible should be
// satisfied. HQS uses partial MaxSAT to compute a minimum set of universal
// variables whose elimination turns a DQBF into an equivalent QBF (paper
// Section III-A, Equations 1 and 2): soft clauses are the unit clauses
// ¬x̂ for every universal variable x, hard clauses encode the binary
// dependency-set cycles.
//
// The solver relaxes each soft clause with a fresh relaxation variable and
// searches for the minimum number of relaxed (violated) softs with a
// sequential-counter cardinality encoding, increasing the bound from zero
// until the SAT oracle answers SAT. Since HQS's optima are tiny (the minimum
// elimination sets rarely exceed a handful of variables), the UNSAT→SAT
// linear search converges in a few oracle calls.
package maxsat

import (
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/sat"
)

// ErrUnsat is returned when the hard clauses alone are unsatisfiable.
var ErrUnsat = errors.New("maxsat: hard clauses unsatisfiable")

// ErrBudget is returned when the budget stops the linear search (or an
// oracle call inside it) before the optimum is reached. The budget's own
// error (budget.ErrCancelled, budget.ErrDeadline, ...) is wrapped.
var ErrBudget = errors.New("maxsat: budget exhausted")

// Solver accumulates hard and soft clauses.
type Solver struct {
	numVars int
	hard    []cnf.Clause
	soft    []cnf.Clause

	// Budget, when non-nil, bounds and cancels the UNSAT→SAT linear search:
	// it is checked between oracle calls and inside each CDCL search.
	Budget *budget.Budget
}

// New returns an empty instance over n variables.
func New(n int) *Solver {
	return &Solver{numVars: n}
}

// NewVar allocates a fresh variable.
func (m *Solver) NewVar() cnf.Var {
	m.numVars++
	return cnf.Var(m.numVars)
}

func (m *Solver) grow(c cnf.Clause) {
	for _, l := range c {
		if int(l.Var()) > m.numVars {
			m.numVars = int(l.Var())
		}
	}
}

// AddHard adds a clause that must be satisfied.
func (m *Solver) AddHard(lits ...cnf.Lit) {
	c := cnf.Clause(lits).Clone()
	m.grow(c)
	m.hard = append(m.hard, c)
}

// AddSoft adds a clause that should be satisfied if possible.
func (m *Solver) AddSoft(lits ...cnf.Lit) {
	c := cnf.Clause(lits).Clone()
	m.grow(c)
	m.soft = append(m.soft, c)
}

// Result is the outcome of a Solve call.
type Result struct {
	// Cost is the number of violated soft clauses in the optimum.
	Cost int
	// Model is an optimal assignment over the original variables.
	Model cnf.Assignment
}

// Solve computes an assignment satisfying all hard clauses and a maximum
// number of soft clauses.
func (m *Solver) Solve() (Result, error) {
	// Fault-injection seam: the MaxSAT oracle of the elimination-set
	// selection. An injected error surfaces like any other oracle failure.
	if err := faults.Fire(faults.MaxSATSolve); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	s := sat.New()
	s.Budget = m.Budget
	s.EnsureVars(m.numVars)
	for _, c := range m.hard {
		if !s.AddClause(c...) {
			return Result{}, ErrUnsat
		}
	}
	// Relax each soft clause: (c ∨ r) with fresh r; r true ⇒ soft violated
	// (or at least permitted to be).
	relax := make([]cnf.Lit, len(m.soft))
	for i, c := range m.soft {
		r := s.NewVar()
		relax[i] = cnf.PosLit(r)
		cc := append(c.Clone(), cnf.PosLit(r))
		if !s.AddClause(cc...) {
			return Result{}, ErrUnsat
		}
	}
	if len(m.soft) == 0 {
		switch st := s.Solve(); {
		case st == sat.Unknown:
			return Result{}, m.budgetErr()
		case st != sat.Sat:
			return Result{}, ErrUnsat
		}
		return Result{Cost: 0, Model: m.truncateModel(s.Model())}, nil
	}

	// First try cost 0: assume all relaxation literals false.
	neg := make([]cnf.Lit, len(relax))
	for i, r := range relax {
		neg[i] = r.Not()
	}
	switch s.SolveAssuming(neg) {
	case sat.Sat:
		return Result{Cost: 0, Model: m.truncateModel(s.Model())}, nil
	case sat.Unknown:
		return Result{}, m.budgetErr()
	}
	// Hard clauses alone satisfiable?
	switch st := s.Solve(); {
	case st == sat.Unknown:
		return Result{}, m.budgetErr()
	case st != sat.Sat:
		return Result{}, ErrUnsat
	}
	best := m.countViolated(s.Model())

	// Sequential counter over the relaxation variables; tighten k upward
	// from 1 until SAT (we know cost >= 1 here and best is an upper bound).
	enc := newSeqCounter(s, relax)
	for k := 1; k < best; k++ {
		if m.Budget.Stopped() {
			return Result{}, m.budgetErr()
		}
		assumps := enc.atMost(k)
		switch s.SolveAssuming(assumps) {
		case sat.Sat:
			return Result{Cost: m.countViolated(s.Model()), Model: m.truncateModel(s.Model())}, nil
		case sat.Unknown:
			return Result{}, m.budgetErr()
		}
	}
	// Optimum equals the upper bound.
	assumps := enc.atMost(best)
	switch s.SolveAssuming(assumps) {
	case sat.Unknown:
		return Result{}, m.budgetErr()
	case sat.Sat:
	default:
		return Result{}, errors.New("maxsat: internal error, bound unreachable")
	}
	return Result{Cost: best, Model: m.truncateModel(s.Model())}, nil
}

// budgetErr wraps the budget's stop reason in ErrBudget; if the oracle
// stopped for a reason the budget cannot explain, that is an internal error.
func (m *Solver) budgetErr() error {
	if err := m.Budget.Err(); err != nil {
		return errors.Join(ErrBudget, err)
	}
	return errors.New("maxsat: oracle returned unknown")
}

func (m *Solver) countViolated(model cnf.Assignment) int {
	n := 0
	for _, c := range m.soft {
		sat := false
		for _, l := range c {
			if model.Lit(l) {
				sat = true
				break
			}
		}
		if !sat {
			n++
		}
	}
	return n
}

func (m *Solver) truncateModel(model cnf.Assignment) cnf.Assignment {
	out := cnf.NewAssignment(m.numVars)
	for v := 1; v <= m.numVars; v++ {
		out.Set(cnf.Var(v), model.Get(cnf.Var(v)))
	}
	return out
}

// seqCounter is a sequential-counter (LTSeq) cardinality encoding over a set
// of input literals. sum[i][j] is true iff at least j+1 of the first i+1
// inputs are true. Bounds are activated through assumptions so that the same
// encoding serves every k.
type seqCounter struct {
	s      *sat.Solver
	inputs []cnf.Lit
	sum    [][]cnf.Lit // sum[i][j]
}

func newSeqCounter(s *sat.Solver, inputs []cnf.Lit) *seqCounter {
	n := len(inputs)
	e := &seqCounter{s: s, inputs: inputs, sum: make([][]cnf.Lit, n)}
	for i := 0; i < n; i++ {
		e.sum[i] = make([]cnf.Lit, i+1)
		for j := 0; j <= i; j++ {
			e.sum[i][j] = cnf.PosLit(s.NewVar())
		}
	}
	for i := 0; i < n; i++ {
		x := inputs[i]
		// sum[i][0] ← x ∨ sum[i-1][0]
		if i == 0 {
			// x → sum[0][0]
			s.AddClause(x.Not(), e.sum[0][0])
			// sum[0][0] → x (exactness not required for ≤k, but keeps the
			// counter tight and the model costs accurate).
			s.AddClause(e.sum[0][0].Not(), x)
			continue
		}
		s.AddClause(x.Not(), e.sum[i][0])
		s.AddClause(e.sum[i-1][0].Not(), e.sum[i][0])
		s.AddClause(e.sum[i][0].Not(), x, e.sum[i-1][0])
		for j := 1; j <= i; j++ {
			if j-1 <= i-1 {
				// x ∧ sum[i-1][j-1] → sum[i][j]
				s.AddClause(x.Not(), e.sum[i-1][j-1].Not(), e.sum[i][j])
			}
			if j <= i-1 {
				s.AddClause(e.sum[i-1][j].Not(), e.sum[i][j])
				s.AddClause(e.sum[i][j].Not(), e.sum[i-1][j], e.sum[i-1][j-1])
			} else {
				// j == i: only way is all of the first i+1 true.
				s.AddClause(e.sum[i][j].Not(), e.sum[i-1][j-1])
				s.AddClause(e.sum[i][j].Not(), x)
			}
		}
	}
	return e
}

// atMost returns assumption literals forcing at most k of the inputs true.
func (e *seqCounter) atMost(k int) []cnf.Lit {
	n := len(e.inputs)
	if k >= n {
		return nil
	}
	// ¬sum[n-1][k] : fewer than k+1 inputs are true.
	return []cnf.Lit{e.sum[n-1][k].Not()}
}
