// Package maxsat implements a partial MaxSAT solver on top of the CDCL SAT
// solver.
//
// A partial MaxSAT instance consists of hard clauses, which must be
// satisfied, and soft clauses, of which as many as possible should be
// satisfied. HQS uses partial MaxSAT to compute a minimum set of universal
// variables whose elimination turns a DQBF into an equivalent QBF (paper
// Section III-A, Equations 1 and 2): soft clauses are the unit clauses
// ¬x̂ for every universal variable x, hard clauses encode the binary
// dependency-set cycles.
//
// The solver relaxes each soft clause with a fresh relaxation variable and
// searches for the minimum number of relaxed (violated) softs with a
// sequential-counter cardinality encoding, increasing the bound from zero
// until the SAT oracle answers SAT. Since HQS's optima are tiny (the minimum
// elimination sets rarely exceed a handful of variables), the UNSAT→SAT
// linear search converges in a few oracle calls.
package maxsat

import (
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/sat"
)

// ErrUnsat is returned when the hard clauses alone are unsatisfiable.
var ErrUnsat = errors.New("maxsat: hard clauses unsatisfiable")

// ErrBudget is returned when the budget stops the linear search (or an
// oracle call inside it) before the optimum is reached. The budget's own
// error (budget.ErrCancelled, budget.ErrDeadline, ...) is wrapped.
var ErrBudget = errors.New("maxsat: budget exhausted")

// Solver accumulates hard and soft clauses.
type Solver struct {
	numVars int
	hard    []cnf.Clause
	soft    []cnf.Clause

	// Budget, when non-nil, bounds and cancels the UNSAT→SAT linear search:
	// it is checked between oracle calls and inside each CDCL search.
	Budget *budget.Budget

	// Backend, when non-nil, runs the search on a persistent shared solver
	// instead of a fresh sat.New(): this instance's clauses are loaded into
	// an activation-literal scope (retracted when the search finishes) and
	// learned clauses survive into the next instance solved on the same
	// backend. Results are identical to the fresh path.
	Backend *Backend
}

// New returns an empty instance over n variables.
func New(n int) *Solver {
	return &Solver{numVars: n}
}

// NewVar allocates a fresh variable.
func (m *Solver) NewVar() cnf.Var {
	m.numVars++
	return cnf.Var(m.numVars)
}

func (m *Solver) grow(c cnf.Clause) {
	for _, l := range c {
		if int(l.Var()) > m.numVars {
			m.numVars = int(l.Var())
		}
	}
}

// AddHard adds a clause that must be satisfied.
func (m *Solver) AddHard(lits ...cnf.Lit) {
	c := cnf.Clause(lits).Clone()
	m.grow(c)
	m.hard = append(m.hard, c)
}

// AddSoft adds a clause that should be satisfied if possible.
func (m *Solver) AddSoft(lits ...cnf.Lit) {
	c := cnf.Clause(lits).Clone()
	m.grow(c)
	m.soft = append(m.soft, c)
}

// Result is the outcome of a Solve call.
type Result struct {
	// Cost is the number of violated soft clauses in the optimum.
	Cost int
	// Model is an optimal assignment over the original variables.
	Model cnf.Assignment
}

// Solve computes an assignment satisfying all hard clauses and a maximum
// number of soft clauses.
func (m *Solver) Solve() (Result, error) {
	// Fault-injection seam: the MaxSAT oracle of the elimination-set
	// selection. An injected error surfaces like any other oracle failure.
	if err := faults.Fire(faults.MaxSATSolve); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	if m.Backend != nil {
		return m.Backend.solve(m)
	}
	s := sat.New()
	s.Budget = m.Budget
	s.EnsureVars(m.numVars)
	return m.run(s, 0, nil, rawAdder{s})
}

// run executes the hard-clause load and the UNSAT→SAT linear search on s.
// Instance variables are offset by base (0 on a fresh solver), the scope
// assumptions are appended to every oracle query, and clauses go through
// add — which, on a shared backend, guards each one with the scope's
// activation literal. With base 0, an empty scope, and a raw adder this is
// byte-identical to the historical fresh-solver search.
func (m *Solver) run(s *sat.Solver, base int, scope []cnf.Lit, add clauseAdder) (Result, error) {
	solve := func(assumps []cnf.Lit) sat.Status {
		if len(scope) > 0 {
			assumps = append(append(make([]cnf.Lit, 0, len(assumps)+len(scope)), assumps...), scope...)
		}
		return s.SolveAssuming(assumps)
	}
	for _, c := range m.hard {
		if !add.AddClause(m.shiftClause(c, base)...) {
			return Result{}, ErrUnsat
		}
	}
	// Relax each soft clause: (c ∨ r) with fresh r; r true ⇒ soft violated
	// (or at least permitted to be).
	relax := make([]cnf.Lit, len(m.soft))
	for i, c := range m.soft {
		r := add.NewVar()
		relax[i] = cnf.PosLit(r)
		cc := append(m.shiftClause(c, base), cnf.PosLit(r))
		if !add.AddClause(cc...) {
			return Result{}, ErrUnsat
		}
	}
	if len(m.soft) == 0 {
		switch st := solve(nil); {
		case st == sat.Unknown:
			return Result{}, m.budgetErr()
		case st != sat.Sat:
			return Result{}, ErrUnsat
		}
		return Result{Cost: 0, Model: m.truncateModel(s.Model(), base)}, nil
	}

	// First try cost 0: assume all relaxation literals false.
	neg := make([]cnf.Lit, len(relax))
	for i, r := range relax {
		neg[i] = r.Not()
	}
	switch solve(neg) {
	case sat.Sat:
		return Result{Cost: 0, Model: m.truncateModel(s.Model(), base)}, nil
	case sat.Unknown:
		return Result{}, m.budgetErr()
	}
	// Hard clauses alone satisfiable?
	switch st := solve(nil); {
	case st == sat.Unknown:
		return Result{}, m.budgetErr()
	case st != sat.Sat:
		return Result{}, ErrUnsat
	}
	best := m.countViolated(s.Model(), base)

	// Sequential counter over the relaxation variables; tighten k upward
	// from 1 until SAT (we know cost >= 1 here and best is an upper bound).
	enc := newSeqCounter(add, relax)
	for k := 1; k < best; k++ {
		if m.Budget.Stopped() {
			return Result{}, m.budgetErr()
		}
		switch solve(enc.atMost(k)) {
		case sat.Sat:
			return Result{Cost: m.countViolated(s.Model(), base), Model: m.truncateModel(s.Model(), base)}, nil
		case sat.Unknown:
			return Result{}, m.budgetErr()
		}
	}
	// Optimum equals the upper bound.
	switch solve(enc.atMost(best)) {
	case sat.Unknown:
		return Result{}, m.budgetErr()
	case sat.Sat:
	default:
		return Result{}, errors.New("maxsat: internal error, bound unreachable")
	}
	return Result{Cost: best, Model: m.truncateModel(s.Model(), base)}, nil
}

// shiftClause maps a clause over this instance's variables into the solver
// region starting at base. With base 0 it just clones (AddClause stores a
// copy anyway, and the relaxation append below must not alias m.soft).
func (m *Solver) shiftClause(c cnf.Clause, base int) cnf.Clause {
	out := c.Clone()
	if base == 0 {
		return out
	}
	for i, l := range out {
		out[i] = cnf.NewLit(l.Var()+cnf.Var(base), l.Neg())
	}
	return out
}

// budgetErr wraps the budget's stop reason in ErrBudget; if the oracle
// stopped for a reason the budget cannot explain, that is an internal error.
func (m *Solver) budgetErr() error {
	if err := m.Budget.Err(); err != nil {
		return errors.Join(ErrBudget, err)
	}
	return errors.New("maxsat: oracle returned unknown")
}

func (m *Solver) countViolated(model cnf.Assignment, base int) int {
	n := 0
	for _, c := range m.soft {
		sat := false
		for _, l := range c {
			ll := l
			if base != 0 {
				ll = cnf.NewLit(l.Var()+cnf.Var(base), l.Neg())
			}
			if model.Lit(ll) {
				sat = true
				break
			}
		}
		if !sat {
			n++
		}
	}
	return n
}

func (m *Solver) truncateModel(model cnf.Assignment, base int) cnf.Assignment {
	out := cnf.NewAssignment(m.numVars)
	for v := 1; v <= m.numVars; v++ {
		out.Set(cnf.Var(v), model.Get(cnf.Var(v+base)))
	}
	return out
}

// clauseAdder is where the search's derived clauses (relaxed softs, the
// cardinality counter) go: straight into a fresh solver, or guarded by the
// scope's activation literal on a shared backend.
type clauseAdder interface {
	NewVar() cnf.Var
	AddClause(lits ...cnf.Lit) bool
}

// rawAdder adds clauses unguarded (fresh-solver mode).
type rawAdder struct{ s *sat.Solver }

func (a rawAdder) NewVar() cnf.Var             { return a.s.NewVar() }
func (a rawAdder) AddClause(l ...cnf.Lit) bool { return a.s.AddClause(l...) }

// guardedAdder appends ¬act to every clause so the whole batch is
// retractable with the single top-level unit ¬act (backend mode).
type guardedAdder struct {
	s        *sat.Solver
	inactive cnf.Lit // the scope's ¬act
}

func (a guardedAdder) NewVar() cnf.Var { return a.s.NewVar() }
func (a guardedAdder) AddClause(l ...cnf.Lit) bool {
	g := make([]cnf.Lit, 0, len(l)+1)
	g = append(g, l...)
	g = append(g, a.inactive)
	return a.s.AddClause(g...)
}

// seqCounter is a sequential-counter (LTSeq) cardinality encoding over a set
// of input literals. sum[i][j] is true iff at least j+1 of the first i+1
// inputs are true. Bounds are activated through assumptions so that the same
// encoding serves every k.
type seqCounter struct {
	s      clauseAdder
	inputs []cnf.Lit
	sum    [][]cnf.Lit // sum[i][j]
}

func newSeqCounter(s clauseAdder, inputs []cnf.Lit) *seqCounter {
	n := len(inputs)
	e := &seqCounter{s: s, inputs: inputs, sum: make([][]cnf.Lit, n)}
	for i := 0; i < n; i++ {
		e.sum[i] = make([]cnf.Lit, i+1)
		for j := 0; j <= i; j++ {
			e.sum[i][j] = cnf.PosLit(s.NewVar())
		}
	}
	for i := 0; i < n; i++ {
		x := inputs[i]
		// sum[i][0] ← x ∨ sum[i-1][0]
		if i == 0 {
			// x → sum[0][0]
			s.AddClause(x.Not(), e.sum[0][0])
			// sum[0][0] → x (exactness not required for ≤k, but keeps the
			// counter tight and the model costs accurate).
			s.AddClause(e.sum[0][0].Not(), x)
			continue
		}
		s.AddClause(x.Not(), e.sum[i][0])
		s.AddClause(e.sum[i-1][0].Not(), e.sum[i][0])
		s.AddClause(e.sum[i][0].Not(), x, e.sum[i-1][0])
		for j := 1; j <= i; j++ {
			if j-1 <= i-1 {
				// x ∧ sum[i-1][j-1] → sum[i][j]
				s.AddClause(x.Not(), e.sum[i-1][j-1].Not(), e.sum[i][j])
			}
			if j <= i-1 {
				s.AddClause(e.sum[i-1][j].Not(), e.sum[i][j])
				s.AddClause(e.sum[i][j].Not(), e.sum[i-1][j], e.sum[i-1][j-1])
			} else {
				// j == i: only way is all of the first i+1 true.
				s.AddClause(e.sum[i][j].Not(), e.sum[i-1][j-1])
				s.AddClause(e.sum[i][j].Not(), x)
			}
		}
	}
	return e
}

// atMost returns assumption literals forcing at most k of the inputs true.
func (e *seqCounter) atMost(k int) []cnf.Lit {
	n := len(e.inputs)
	if k >= n {
		return nil
	}
	// ¬sum[n-1][k] : fewer than k+1 inputs are true.
	return []cnf.Lit{e.sum[n-1][k].Not()}
}
