package maxsat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func lit(d int) cnf.Lit { return cnf.LitFromDimacs(d) }

// bruteForceOptimum returns the minimum number of violated soft clauses over
// all assignments satisfying the hard clauses, or -1 if the hards are UNSAT.
func bruteForceOptimum(n int, hard, soft []cnf.Clause) int {
	best := -1
	a := cnf.NewAssignment(n)
	for bits := 0; bits < 1<<n; bits++ {
		for v := 1; v <= n; v++ {
			a.Set(cnf.Var(v), bits&(1<<(v-1)) != 0)
		}
		ok := true
		for _, c := range hard {
			if !a.EvalClause(c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		viol := 0
		for _, c := range soft {
			if !a.EvalClause(c) {
				viol++
			}
		}
		if best == -1 || viol < best {
			best = viol
		}
	}
	return best
}

func TestAllSoftSatisfiable(t *testing.T) {
	m := New(2)
	m.AddSoft(lit(1))
	m.AddSoft(lit(2))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0", res.Cost)
	}
	if !res.Model.Get(1) || !res.Model.Get(2) {
		t.Fatal("model should satisfy both softs")
	}
}

func TestConflictingSofts(t *testing.T) {
	m := New(1)
	m.AddSoft(lit(1))
	m.AddSoft(lit(-1))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
}

func TestHardUnsat(t *testing.T) {
	m := New(1)
	m.AddHard(lit(1))
	m.AddHard(lit(-1))
	m.AddSoft(lit(1))
	if _, err := m.Solve(); err != ErrUnsat {
		t.Fatalf("want ErrUnsat, got %v", err)
	}
}

func TestHardForcesSoftViolations(t *testing.T) {
	// Hard: exactly-one style constraint; softs want everything false.
	m := New(3)
	m.AddHard(lit(1), lit(2), lit(3))
	m.AddSoft(lit(-1))
	m.AddSoft(lit(-2))
	m.AddSoft(lit(-3))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
}

func TestPaperStyleCycleSelection(t *testing.T) {
	// The HQS use case (Eq. 1-2): universals x1,x2 with one binary cycle
	// where D_y \ D_y' = {x1} and D_y' \ D_y = {x2}. Hard: x̂1 ∨ x̂2; soft:
	// ¬x̂1, ¬x̂2. Optimum: eliminate exactly one variable.
	m := New(2)
	m.AddHard(lit(1), lit(2))
	m.AddSoft(lit(-1))
	m.AddSoft(lit(-2))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	if res.Model.Get(1) == res.Model.Get(2) {
		t.Fatalf("exactly one of x̂1,x̂2 should be set, got %v %v",
			res.Model.Get(1), res.Model.Get(2))
	}
}

func TestMultiCycleSharedVariable(t *testing.T) {
	// Two cycles sharing x2: (x̂1 ∨ x̂2) ∧ (x̂2 ∨ x̂3). Optimum: {x2}, cost 1.
	m := New(3)
	m.AddHard(lit(1), lit(2))
	m.AddHard(lit(2), lit(3))
	m.AddSoft(lit(-1))
	m.AddSoft(lit(-2))
	m.AddSoft(lit(-3))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	if !res.Model.Get(2) {
		t.Fatal("x̂2 should be chosen (it covers both cycles)")
	}
}

func TestHardConjunctionGroups(t *testing.T) {
	// Hard constraint with Tseitin-style conjunction selectors, mimicking
	// Eq. 1 with multi-variable difference sets: (a ∨ b), a ↔ x̂1∧x̂2,
	// b ↔ x̂3. Optimum cost is 1 (choose x3).
	m := New(5) // 1..3 selectors x̂, 4=a, 5=b
	m.AddHard(lit(4), lit(5))
	m.AddHard(lit(-4), lit(1))
	m.AddHard(lit(-4), lit(2))
	m.AddHard(lit(4), lit(-1), lit(-2))
	m.AddHard(lit(-5), lit(3))
	m.AddHard(lit(5), lit(-3))
	m.AddSoft(lit(-1))
	m.AddSoft(lit(-2))
	m.AddSoft(lit(-3))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("cost = %d, want 1", res.Cost)
	}
	if !res.Model.Get(3) {
		t.Fatal("x̂3 is the unique optimum")
	}
}

func TestNoSoft(t *testing.T) {
	m := New(2)
	m.AddHard(lit(1), lit(2))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0", res.Cost)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 150; iter++ {
		n := 3 + rng.Intn(5)
		var hard, soft []cnf.Clause
		nh := rng.Intn(5)
		ns := 1 + rng.Intn(6)
		mk := func() cnf.Clause {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			return c
		}
		for i := 0; i < nh; i++ {
			hard = append(hard, mk())
		}
		for i := 0; i < ns; i++ {
			soft = append(soft, mk())
		}
		want := bruteForceOptimum(n, hard, soft)
		m := New(n)
		for _, c := range hard {
			m.AddHard(c...)
		}
		for _, c := range soft {
			m.AddSoft(c...)
		}
		res, err := m.Solve()
		if want == -1 {
			if err != ErrUnsat {
				t.Fatalf("iter %d: want ErrUnsat, got cost %d err %v", iter, res.Cost, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if res.Cost != want {
			t.Fatalf("iter %d: cost %d want %d (hard=%v soft=%v)", iter, res.Cost, want, hard, soft)
		}
		// The returned model must satisfy all hards and violate exactly Cost softs.
		for _, c := range hard {
			if !res.Model.EvalClause(c) {
				t.Fatalf("iter %d: model violates hard clause", iter)
			}
		}
		viol := 0
		for _, c := range soft {
			if !res.Model.EvalClause(c) {
				viol++
			}
		}
		if viol != res.Cost {
			t.Fatalf("iter %d: model violates %d softs, reported %d", iter, viol, res.Cost)
		}
	}
}

func TestLargerAllFalseOptimum(t *testing.T) {
	// 12 softs wanting vars false, hard clauses forcing 3 specific vars true.
	m := New(12)
	for v := 1; v <= 12; v++ {
		m.AddSoft(cnf.NegLit(cnf.Var(v)))
	}
	m.AddHard(lit(2))
	m.AddHard(lit(5))
	m.AddHard(lit(9))
	res, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Fatalf("cost = %d, want 3", res.Cost)
	}
}
