// Package oracle provides the pipeline's persistent incremental SAT
// substrate: one long-lived CDCL solver plus Tseitin builder per consumer,
// kept alive across passes so that encodings and learned clauses are reused
// instead of rebuilt for every query.
//
// Historically every oracle consumer — each sweep round, each MaxSAT
// elimination-set step, the final SAT check, the certificate checker —
// called sat.New() and re-exported its cone from scratch. The AIG is
// append-only (nodes are never deleted or rewritten), so a Tseitin
// definition once pushed is a permanently valid fact: an Oracle therefore
// pushes only the delta of newly reachable cone nodes per query
// (CNFBuilder's node→var memo persists) and poses every question as an
// assumption query, never as a retractable unit clause. Learned clauses
// survive between queries, bounded by the solver's retention policy
// (sat.Solver.KeepLearnts), and all clauses — original and learned — live
// in the solver's single packed arena.
//
// Constraints that ARE transient (the scratch clauses of one MaxSAT
// strengthening step, say) use the activation-literal protocol: OpenScope
// allocates a fresh activation literal act, AddScoped guards each scratch
// clause as (c ∨ ¬act), queries assume act, and CloseScope retracts the
// whole scope with the top-level unit ¬act — a constant-time retraction
// that permanently satisfies every guarded clause without touching the
// solver.
package oracle

import (
	"sync/atomic"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/sat"
)

// QueryPoint is the fault-injection seam fired on every persistent-oracle
// query, alongside the lower-level sat.solve point. Injecting here models a
// failing long-lived oracle specifically: consumers must degrade exactly as
// they would on budget exhaustion (sweeps leave pairs unproven, final
// checks surface the error).
var QueryPoint = faults.Point("oracle.query")

func init() { faults.Register(QueryPoint) }

// keepLearnts is the learned-clause retention floor for persistent oracle
// solvers: queries within a sweep round are closely related, so a much
// larger floor than the per-call default (100) pays for itself.
const keepLearnts = 2000

// Stats counts reuse across one or more persistent oracles.
type Stats struct {
	Queries     int64 // SAT queries answered
	Incremental int64 // queries answered on an already-loaded solver
	Rebuilds    int64 // fresh solver instantiations (one per oracle lifetime)
	Scopes      int64 // activation-literal scopes opened and retracted

	EncodedNodes    int64 // AIG nodes Tseitin-encoded (delta pushes, summed)
	LearntsRetained int64 // peak learned clauses alive at query entry
	ArenaBytesHW    int64 // peak packed-arena bytes of any one solver
}

// Add accumulates o into s (sums for flows, maxima for high-water marks).
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.Incremental += o.Incremental
	s.Rebuilds += o.Rebuilds
	s.Scopes += o.Scopes
	s.EncodedNodes += o.EncodedNodes
	if o.LearntsRetained > s.LearntsRetained {
		s.LearntsRetained = o.LearntsRetained
	}
	if o.ArenaBytesHW > s.ArenaBytesHW {
		s.ArenaBytesHW = o.ArenaBytesHW
	}
}

// Counters flattens the stats into the generic counter map consumed by
// structured trace events and the ablation table.
func (s Stats) Counters() map[string]int64 {
	if s.Queries == 0 && s.Rebuilds == 0 {
		return nil
	}
	return map[string]int64{
		"oracle_queries":     s.Queries,
		"oracle_incremental": s.Incremental,
		"oracle_rebuilds":    s.Rebuilds,
		"oracle_learnts":     s.LearntsRetained,
		"oracle_arena_hw":    s.ArenaBytesHW,
	}
}

// Process-global counters, for stats surfaces (hqsd /stats) that aggregate
// across many concurrent solver runs and cannot reach into per-run pools.
var (
	globalQueries     atomic.Int64
	globalIncremental atomic.Int64
	globalRebuilds    atomic.Int64
)

// GlobalStats returns the process-wide oracle counters: total queries,
// queries answered incrementally, and solver rebuilds, since process start.
func GlobalStats() (queries, incremental, rebuilds int64) {
	return globalQueries.Load(), globalIncremental.Load(), globalRebuilds.Load()
}

// Oracle is one persistent incremental SAT instance over a single AIG. It
// is single-goroutine: each consumer (a sweep worker, the final check)
// owns its oracle exclusively. Use a Pool to hand oracles to workers.
type Oracle struct {
	g     *aig.Graph
	s     *sat.Solver
	b     *aig.CNFBuilder
	stats Stats
}

// New returns a fresh oracle over g. This is the only place a solver is
// built; every subsequent query on the oracle is incremental.
func New(g *aig.Graph) *Oracle {
	s := sat.New()
	s.KeepLearnts = keepLearnts
	o := &Oracle{g: g, s: s, b: aig.NewCNFBuilder(g, s)}
	o.stats.Rebuilds = 1
	globalRebuilds.Add(1)
	return o
}

// Stats returns a snapshot of the oracle's reuse counters.
func (o *Oracle) Stats() Stats {
	st := o.stats
	st.EncodedNodes = int64(o.b.EncodedNodes())
	return st
}

// Solver exposes the underlying persistent solver (tests, stats).
func (o *Oracle) Solver() *sat.Solver { return o.s }

// Lit Tseitin-encodes the cone of r (delta only) and returns its literal.
func (o *Oracle) Lit(r aig.Ref) cnf.Lit { return o.b.Lit(r) }

// query runs one assumption query against the persistent solver, metering
// the reuse counters and firing the oracle.query fault point.
func (o *Oracle) query(assumps []cnf.Lit, conflictBudget int64, bud *budget.Budget) (sat.Status, error) {
	if err := faults.Fire(QueryPoint); err != nil {
		return sat.Unknown, err
	}
	if o.stats.Queries > 0 {
		o.stats.Incremental++
		globalIncremental.Add(1)
	}
	o.stats.Queries++
	globalQueries.Add(1)
	if n := int64(o.s.NumLearnts()); n > o.stats.LearntsRetained {
		o.stats.LearntsRetained = n
	}
	o.s.ConflictBudget = conflictBudget
	o.s.Budget = bud
	st, err := o.s.SolveErr(assumps)
	if ab := int64(o.s.ArenaBytes()); ab > o.stats.ArenaBytesHW {
		o.stats.ArenaBytesHW = ab
	}
	return st, err
}

// QueryAssuming runs a raw assumption query. After Unsat, FailedAssumptions
// returns the responsible subset (conflict-set extraction works across
// scope retractions: a retracted scope's activation literal shows up
// negated in the set when it is the reason).
func (o *Oracle) QueryAssuming(assumps []cnf.Lit, bud *budget.Budget) (sat.Status, error) {
	return o.query(assumps, 0, bud)
}

// FailedAssumptions returns, after an Unsat query, a subset of the negated
// assumptions sufficient for unsatisfiability.
func (o *Oracle) FailedAssumptions() []cnf.Lit { return o.s.FailedAssumptions() }

// Model returns the assignment found by the last Sat query.
func (o *Oracle) Model() cnf.Assignment { return o.s.Model() }

// IsSatisfiable checks satisfiability of the function rooted at r against
// the persistent solver. The root is an assumption, not a unit clause, so
// the same oracle answers for any root later. On sat it returns a
// satisfying assignment of r's support variables, like
// aig.IsSatisfiableBudget.
func (o *Oracle) IsSatisfiable(r aig.Ref, bud *budget.Budget) (bool, map[cnf.Var]bool, error) {
	if r == aig.True {
		return true, map[cnf.Var]bool{}, nil
	}
	if r == aig.False {
		return false, nil, nil
	}
	l := o.b.Lit(r)
	st, err := o.query([]cnf.Lit{l}, 0, bud)
	if st == sat.Unknown {
		if err == nil {
			err = sat.ErrBudget
		}
		return false, nil, err
	}
	if st != sat.Sat {
		return false, nil, nil
	}
	m := o.s.Model()
	out := make(map[cnf.Var]bool)
	for v := range o.g.Support(r) {
		out[v] = m.Get(o.b.InputSATVar(v))
	}
	return true, out, nil
}

// ProveEquiv implements aig.SweepOracle: it reports whether the functions
// rooted at lhs and rhs are equivalent, by refuting both directions of
// lhs≠rhs with assumption queries. Budget exhaustion and injected faults
// yield false (unproven), which sweeping treats soundly by not merging.
func (o *Oracle) ProveEquiv(lhs, rhs aig.Ref, conflictBudget int64, bud *budget.Budget) (bool, int) {
	ll := o.b.Lit(lhs)
	rl := o.b.Lit(rhs)
	calls := 1
	s1, err := o.query([]cnf.Lit{ll, rl.Not()}, conflictBudget, bud)
	if err != nil || s1 != sat.Unsat {
		return false, calls
	}
	calls++
	s2, err := o.query([]cnf.Lit{ll.Not(), rl}, conflictBudget, bud)
	if err != nil || s2 != sat.Unsat {
		return false, calls
	}
	return true, calls
}

// Footprint implements aig.SweepOracle.
func (o *Oracle) Footprint() (arenaBytes int, compactions int64) {
	return o.s.ArenaBytes(), o.s.Stats.Compactions
}

// OpenScope allocates an activation literal for a batch of retractable
// clauses. The literal's phase is pinned to false so that, once the scope
// is closed, branching never wastes time re-trying it.
func (o *Oracle) OpenScope() cnf.Lit {
	act := cnf.PosLit(o.s.NewVar())
	o.s.SetPhase(act.Var(), false)
	o.stats.Scopes++
	return act
}

// AddScoped adds a clause active only while the scope literal act is
// assumed: the stored clause is (lits ∨ ¬act).
func (o *Oracle) AddScoped(act cnf.Lit, lits ...cnf.Lit) bool {
	guarded := make([]cnf.Lit, 0, len(lits)+1)
	guarded = append(guarded, lits...)
	guarded = append(guarded, act.Not())
	return o.s.AddClause(guarded...)
}

// CloseScope retracts every clause guarded by act, in constant time, by
// asserting ¬act at the top level. The guarded clauses become permanently
// satisfied; the solver is never rebuilt.
func (o *Oracle) CloseScope(act cnf.Lit) bool {
	return o.s.AddClause(act.Not())
}
