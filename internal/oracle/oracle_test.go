package oracle_test

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/oracle"
	"repro/internal/sat"
)

// TestIncrementalQueries drives several roots through one oracle and checks
// the reuse counters: one rebuild ever, every query after the first counted
// incremental, and Tseitin pushed as a delta (the second root re-encodes
// nothing below the shared cone).
func TestIncrementalQueries(t *testing.T) {
	g := aig.New()
	a, b, c := g.Input(1), g.Input(2), g.Input(3)
	o := oracle.New(g)

	ab := g.And(a, b)
	satisfiable, model, err := o.IsSatisfiable(ab, nil)
	if err != nil || !satisfiable {
		t.Fatalf("IsSatisfiable(a∧b) = %v, %v; want true", satisfiable, err)
	}
	if !model[1] || !model[2] {
		t.Fatalf("model %v does not satisfy a∧b", model)
	}
	encodedAfterFirst := o.Stats().EncodedNodes

	abc := g.And(ab, c)
	satisfiable, model, err = o.IsSatisfiable(abc, nil)
	if err != nil || !satisfiable {
		t.Fatalf("IsSatisfiable(a∧b∧c) = %v, %v; want true", satisfiable, err)
	}
	if !model[1] || !model[2] || !model[3] {
		t.Fatalf("model %v does not satisfy a∧b∧c", model)
	}
	contradiction := g.And(ab, a.Not())
	satisfiable, _, err = o.IsSatisfiable(contradiction, nil)
	if err != nil || satisfiable {
		t.Fatalf("IsSatisfiable(a∧b∧¬a) = %v, %v; want false", satisfiable, err)
	}

	st := o.Stats()
	if st.Queries != 3 || st.Incremental != 2 || st.Rebuilds != 1 {
		t.Fatalf("stats = %+v; want 3 queries, 2 incremental, 1 rebuild", st)
	}
	if st.EncodedNodes <= encodedAfterFirst {
		t.Fatalf("EncodedNodes %d did not grow past first query's %d", st.EncodedNodes, encodedAfterFirst)
	}
	if st.ArenaBytesHW <= 0 {
		t.Fatalf("ArenaBytesHW = %d; want > 0", st.ArenaBytesHW)
	}
	cm := st.Counters()
	if cm["oracle_queries"] != 3 || cm["oracle_incremental"] != 2 {
		t.Fatalf("Counters() = %v", cm)
	}
}

// TestConstRoots checks the constant shortcuts never touch the solver.
func TestConstRoots(t *testing.T) {
	o := oracle.New(aig.New())
	if ok, m, err := o.IsSatisfiable(aig.True, nil); !ok || err != nil || m == nil {
		t.Fatalf("True: %v %v %v", ok, m, err)
	}
	if ok, _, err := o.IsSatisfiable(aig.False, nil); ok || err != nil {
		t.Fatalf("False: %v %v", ok, err)
	}
	if st := o.Stats(); st.Queries != 0 {
		t.Fatalf("constant roots must not issue queries, got %+v", st)
	}
}

// TestFailedAssumptionsSubset checks conflict-set extraction over assumption
// queries: only the responsible assumptions appear, negated.
func TestFailedAssumptionsSubset(t *testing.T) {
	g := aig.New()
	a, b, c := g.Input(1), g.Input(2), g.Input(3)
	o := oracle.New(g)

	root := o.Lit(g.And(a, b)) // forces a and b when assumed
	irrelevant := o.Lit(c)     // free
	la := o.Lit(a)

	st, err := o.QueryAssuming([]cnf.Lit{root, irrelevant, la.Not()}, nil)
	if err != nil || st != sat.Unsat {
		t.Fatalf("query = %v, %v; want Unsat", st, err)
	}
	failed := o.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("empty conflict set")
	}
	for _, l := range failed {
		if l == irrelevant.Not() {
			t.Fatalf("irrelevant assumption reported in conflict set %v", failed)
		}
		if l != root.Not() && l != la {
			t.Fatalf("conflict set %v contains literal outside the negated assumptions", failed)
		}
	}
}

// TestScopeRetraction exercises the activation-literal protocol end to end:
// scratch clauses constrain only while their scope literal is assumed,
// CloseScope retracts them without rebuilding, and conflict-set extraction
// still works after retraction — assuming a closed scope's literal conflicts
// with the top-level retraction unit and the conflict set names it.
func TestScopeRetraction(t *testing.T) {
	g := aig.New()
	a := g.Input(1)
	o := oracle.New(g)
	la := o.Lit(a)

	act := o.OpenScope()
	o.AddScoped(act, la)       // scope forces a
	o.AddScoped(act, la.Not()) // ... and ¬a: contradictory inside the scope

	st, err := o.QueryAssuming([]cnf.Lit{act}, nil)
	if err != nil || st != sat.Unsat {
		t.Fatalf("query under contradictory scope = %v, %v; want Unsat", st, err)
	}

	// Without the scope the solver is unconstrained again.
	st, err = o.QueryAssuming([]cnf.Lit{la}, nil)
	if err != nil || st != sat.Sat {
		t.Fatalf("query outside scope = %v, %v; want Sat", st, err)
	}

	o.CloseScope(act)
	st, err = o.QueryAssuming([]cnf.Lit{la.Not()}, nil)
	if err != nil || st != sat.Sat {
		t.Fatalf("query after retraction = %v, %v; want Sat", st, err)
	}

	// Conflict-set extraction after retraction: act is now falsified at the
	// top level, so assuming it must fail with act in the extracted set.
	st, err = o.QueryAssuming([]cnf.Lit{act, la}, nil)
	if err != nil || st != sat.Unsat {
		t.Fatalf("assuming a retracted scope = %v, %v; want Unsat", st, err)
	}
	failed := o.FailedAssumptions()
	found := false
	for _, l := range failed {
		if l.Var() == act.Var() {
			found = true
		}
		if l == la.Not() {
			t.Fatalf("conflict set %v blames the satisfiable literal, not the retracted scope", failed)
		}
	}
	if !found {
		t.Fatalf("conflict set %v does not name the retracted scope literal", failed)
	}

	if st := o.Stats(); st.Scopes != 1 {
		t.Fatalf("Scopes = %d; want 1", st.Scopes)
	}
}

// TestProveEquiv checks both verdicts of the sweep-oracle interface on
// structurally distinct roots.
func TestProveEquiv(t *testing.T) {
	g := aig.New()
	a, b := g.Input(1), g.Input(2)
	o := oracle.New(g)

	ab := g.And(a, b)
	redundant := g.And(ab, a) // ≡ a∧b, but a distinct node
	if redundant == ab {
		t.Fatal("test needs structurally distinct, semantically equal roots")
	}
	proven, calls := o.ProveEquiv(ab, redundant, 0, nil)
	if !proven || calls != 2 {
		t.Fatalf("ProveEquiv(a∧b, (a∧b)∧a) = %v in %d calls; want proven in 2", proven, calls)
	}

	proven, calls = o.ProveEquiv(ab, a, 0, nil)
	if proven {
		t.Fatal("ProveEquiv(a∧b, a) must fail")
	}
	if calls < 1 || calls > 2 {
		t.Fatalf("calls = %d; want 1 or 2", calls)
	}

	if arena, _ := o.Footprint(); arena <= 0 {
		t.Fatalf("Footprint arena = %d; want > 0", arena)
	}
}

// TestPoolWorkerIdentity checks that a pool hands each worker index a stable
// oracle and aggregates their stats.
func TestPoolWorkerIdentity(t *testing.T) {
	g := aig.New()
	a, b := g.Input(1), g.Input(2)
	ab := g.And(a, b)
	redundant := g.And(ab, b)
	p := oracle.NewPool(g)

	w0 := p.WorkerOracle(0)
	if p.WorkerOracle(0) != w0 {
		t.Fatal("worker 0 must get the same oracle every time")
	}
	w2 := p.WorkerOracle(2)
	if w2 == w0 || p.WorkerOracle(1) == w2 {
		t.Fatal("distinct worker indices must get distinct oracles")
	}

	if proven, _ := w0.ProveEquiv(ab, redundant, 0, nil); !proven {
		t.Fatal("worker oracle failed a provable equivalence")
	}
	if ok, _, err := p.Main().IsSatisfiable(ab, nil); !ok || err != nil {
		t.Fatalf("main oracle: %v %v", ok, err)
	}

	st := p.Stats()
	if st.Queries != 3 {
		t.Fatalf("pool queries = %d; want 3 (2 worker + 1 main)", st.Queries)
	}
	if st.Rebuilds != 4 {
		t.Fatalf("pool rebuilds = %d; want 4 (main + workers 0..2)", st.Rebuilds)
	}
}

// TestStatsAdd checks flow-vs-high-water aggregation.
func TestStatsAdd(t *testing.T) {
	a := oracle.Stats{Queries: 2, Incremental: 1, Rebuilds: 1, LearntsRetained: 10, ArenaBytesHW: 100}
	b := oracle.Stats{Queries: 3, Rebuilds: 1, LearntsRetained: 4, ArenaBytesHW: 700}
	a.Add(b)
	if a.Queries != 5 || a.Incremental != 1 || a.Rebuilds != 2 {
		t.Fatalf("sums wrong: %+v", a)
	}
	if a.LearntsRetained != 10 || a.ArenaBytesHW != 700 {
		t.Fatalf("high-water marks wrong: %+v", a)
	}
}
