package oracle

import (
	"sync"

	"repro/internal/aig"
	"repro/internal/maxsat"
)

// Pool owns every persistent SAT instance of one pipeline run over one AIG:
// the main oracle (final SAT check, certificate-style queries), one oracle
// per sweep worker, and the guarded MaxSAT backend used by the
// elimination-set selections. It is created by the core build pass, lives
// on pipeline.State for the lifetime of the solve, and is shared with the
// QBF backend (which operates on the same graph).
//
// Oracles are created lazily: a run that never sweeps never pays for worker
// oracles. The pool's accessors are goroutine-safe; the returned oracles
// are single-goroutine (each sweep worker uses exclusively its own index).
type Pool struct {
	g *aig.Graph

	mu      sync.Mutex
	main    *Oracle
	workers []*Oracle
	mx      *maxsat.Backend
}

// NewPool returns an empty pool over g.
func NewPool(g *aig.Graph) *Pool { return &Pool{g: g} }

// Main returns the pool's main oracle, creating it on first use.
func (p *Pool) Main() *Oracle {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.main == nil {
		p.main = New(p.g)
	}
	return p.main
}

// WorkerOracle implements aig.SweepOraclePool: worker i always receives
// pool oracle i, so the candidate striding — and any budget-exhaustion
// history — stays deterministic for a fixed worker count.
func (p *Pool) WorkerOracle(i int) aig.SweepOracle {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) <= i {
		p.workers = append(p.workers, nil)
	}
	if p.workers[i] == nil {
		p.workers[i] = New(p.g)
	}
	return p.workers[i]
}

// MaxSATBackend returns the pool's persistent guarded MaxSAT substrate,
// creating it on first use.
func (p *Pool) MaxSATBackend() *maxsat.Backend {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mx == nil {
		p.mx = maxsat.NewBackend()
		// Feed the backend into the process-global counters alongside the
		// real oracles: one rebuild for its lifetime, and per solve all
		// queries but the backend's very first count as incremental.
		globalRebuilds.Add(1)
		first := true
		p.mx.OnQueries = func(n int64) {
			globalQueries.Add(n)
			if first && n > 0 {
				n--
				first = false
			}
			globalIncremental.Add(n)
		}
	}
	return p.mx
}

// Stats aggregates the reuse counters of every instance in the pool
// (sums for flows, maxima for high-water marks).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var st Stats
	if p.main != nil {
		st.Add(p.main.Stats())
	}
	for _, o := range p.workers {
		if o != nil {
			st.Add(o.Stats())
		}
	}
	if p.mx != nil {
		st.Rebuilds++
		st.Scopes += p.mx.Scopes
		st.Queries += p.mx.Queries
		if p.mx.Queries > 0 {
			st.Incremental += p.mx.Queries - 1
		}
		if n := int64(p.mx.S.NumLearnts()); n > st.LearntsRetained {
			st.LearntsRetained = n
		}
		if ab := int64(p.mx.S.ArenaBytes()); ab > st.ArenaBytesHW {
			st.ArenaBytesHW = ab
		}
	}
	return st
}
