package pec

import "fmt"

// BruteForceRealizable decides realizability by enumerating all black-box
// function tables and all primary-input vectors. Exponential in both; it
// exists as ground truth for the DQBF encoding in tests.
func BruteForceRealizable(p *Problem) (bool, error) {
	if err := p.Validate(); err != nil {
		return false, err
	}
	nPI := len(p.Impl.Inputs)
	if nPI > 12 {
		return false, fmt.Errorf("pec: %d primary inputs too many for brute force", nPI)
	}
	var slots []tableSlot
	totalBits := 0
	for bi, b := range p.Boxes {
		tableSize := 1 << len(b.Inputs)
		for _, o := range b.Outputs {
			slots = append(slots, tableSlot{box: bi, output: o, offset: totalBits})
			totalBits += tableSize
		}
	}
	if totalBits > 22 {
		return false, fmt.Errorf("pec: %d table bits too many for brute force", totalBits)
	}

	for tables := uint64(0); tables < 1<<totalBits; tables++ {
		ok := true
		for bits := 0; bits < 1<<nPI && ok; bits++ {
			in := make([]bool, nPI)
			for i := range in {
				in[i] = bits&(1<<i) != 0
			}
			implOut, err := evalWithBoxes(p, in, tables, slots)
			if err != nil {
				return false, err
			}
			specOut := p.Spec.Eval(in, nil)
			for i := range specOut {
				if implOut[i] != specOut[i] {
					ok = false
					break
				}
			}
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// tableSlot locates one box output's truth table inside the packed table
// bits of the brute-force enumeration.
type tableSlot struct {
	box    int
	output int // impl signal id
	offset int // bit offset of this output's table
}

// evalWithBoxes evaluates the incomplete implementation under fixed box
// tables, iterating to a fixpoint to honor box-to-box dependencies.
func evalWithBoxes(p *Problem, in []bool, tables uint64, slots []tableSlot) ([]bool, error) {
	free := make(map[int]bool)
	var out []bool
	rounds := len(p.Boxes) + 2
	for r := 0; r < rounds; r++ {
		vals := p.Impl.EvalAll(in, free)
		changed := false
		for _, s := range slots {
			b := p.Boxes[s.box]
			idx := 0
			for i, z := range b.Inputs {
				if vals[z] {
					idx |= 1 << i
				}
			}
			v := tables&(1<<(s.offset+idx)) != 0
			if free[s.output] != v {
				free[s.output] = v
				changed = true
			}
		}
		vals = p.Impl.EvalAll(in, free)
		out = make([]bool, len(p.Impl.Outputs))
		for i, id := range p.Impl.Outputs {
			out[i] = vals[id]
		}
		if !changed && r > 0 {
			return out, nil
		}
	}
	return nil, fmt.Errorf("pec: box evaluation did not stabilize (cyclic box dependencies)")
}
