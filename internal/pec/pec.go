// Package pec implements the partial equivalence checking (PEC) problem —
// the paper's reference application (Section IV): given a specification
// circuit and an incomplete implementation containing black boxes, is there
// an implementation of the black boxes making the design equivalent to the
// specification?
//
// The encoding into DQBF follows Gitina et al. (ICCD 2013), the formulation
// used by the paper's 1820 benchmark instances:
//
//	∀x ∀ẑ ∃y_B(ẑ_B) :  (⋀_z ẑ = z(x,y))  →  (⋀_o out_I(x,y) = out_S(x))
//
// where x are the primary inputs, z the black-box input signals (each gets a
// universal copy ẑ), and y_B the outputs of box B, which may depend only on
// the copies ẑ_B of B's own inputs. Exactly the dependency sets of distinct
// boxes are incomparable, which is what QBF cannot express and DQBF can.
package pec

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// BlackBox identifies one unimplemented part of the implementation circuit.
type BlackBox struct {
	Name string
	// Inputs are implementation signal ids observable by the box.
	Inputs []int
	// Outputs are implementation FreeGate signal ids driven by the box.
	Outputs []int
}

// Problem is a PEC instance.
type Problem struct {
	Spec  *circuit.Circuit
	Impl  *circuit.Circuit
	Boxes []BlackBox
}

// Validate checks the structural preconditions: matching primary pins,
// box outputs are FreeGates, every FreeGate belongs to exactly one box.
func (p *Problem) Validate() error {
	if len(p.Spec.Inputs) != len(p.Impl.Inputs) {
		return fmt.Errorf("pec: spec has %d inputs, impl %d", len(p.Spec.Inputs), len(p.Impl.Inputs))
	}
	if len(p.Spec.Outputs) != len(p.Impl.Outputs) {
		return fmt.Errorf("pec: spec has %d outputs, impl %d", len(p.Spec.Outputs), len(p.Impl.Outputs))
	}
	owned := make(map[int]string)
	for _, b := range p.Boxes {
		if len(b.Outputs) == 0 {
			return fmt.Errorf("pec: box %q has no outputs", b.Name)
		}
		for _, o := range b.Outputs {
			if p.Impl.Gates[o].Type != circuit.FreeGate {
				return fmt.Errorf("pec: box %q output %q is not a free signal", b.Name, p.Impl.Name(o))
			}
			if prev, dup := owned[o]; dup {
				return fmt.Errorf("pec: signal %q owned by boxes %q and %q", p.Impl.Name(o), prev, b.Name)
			}
			owned[o] = b.Name
		}
		for _, in := range b.Inputs {
			if in < 0 || in >= p.Impl.NumGates() {
				return fmt.Errorf("pec: box %q references unknown input signal %d", b.Name, in)
			}
		}
	}
	for _, id := range p.Impl.FreeSignals() {
		if _, ok := owned[id]; !ok {
			return fmt.Errorf("pec: free signal %q not owned by any box", p.Impl.Name(id))
		}
	}
	return nil
}

// ToDQBF encodes the PEC instance; the resulting formula is satisfiable iff
// the incomplete design is realizable.
func (p *Problem) ToDQBF() (*dqbf.Formula, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := dqbf.New()
	m := f.Matrix

	// 1. Primary inputs: one universal variable each, shared spec/impl.
	piVar := make([]cnf.Var, len(p.Impl.Inputs))
	for i := range p.Impl.Inputs {
		v := m.NewVar()
		piVar[i] = v
		f.AddUniversal(v)
	}
	// 2. Universal copies ẑ for the box input signals (dedup across boxes,
	// stable order).
	copyVar := make(map[int]cnf.Var)
	var copyOrder []int
	for _, b := range p.Boxes {
		for _, z := range b.Inputs {
			if _, ok := copyVar[z]; !ok {
				copyVar[z] = 0 // placeholder, allocated below in sorted order
				copyOrder = append(copyOrder, z)
			}
		}
	}
	sort.Ints(copyOrder)
	for _, z := range copyOrder {
		v := m.NewVar()
		copyVar[z] = v
		f.AddUniversal(v)
	}
	// 3. Box outputs: existentials over their box's copies.
	outVar := make(map[int]cnf.Var)
	for _, b := range p.Boxes {
		deps := make([]cnf.Var, 0, len(b.Inputs))
		seen := map[int]bool{}
		for _, z := range b.Inputs {
			if !seen[z] {
				seen[z] = true
				deps = append(deps, copyVar[z])
			}
		}
		for _, o := range b.Outputs {
			v := m.NewVar()
			outVar[o] = v
			f.AddExistential(v, deps...)
		}
	}

	// 4. Tseitin-encode both circuits. Implementation first.
	implVar := func(id int) cnf.Var {
		if g := p.Impl.Gates[id].Type; g == circuit.FreeGate {
			return outVar[id]
		}
		for i, pid := range p.Impl.Inputs {
			if pid == id {
				return piVar[i]
			}
		}
		panic(fmt.Sprintf("pec: unmapped impl signal %d", id))
	}
	implEnc := p.Impl.ToCNF(m, implVar)
	specVar := func(id int) cnf.Var {
		for i, pid := range p.Spec.Inputs {
			if pid == id {
				return piVar[i]
			}
		}
		panic(fmt.Sprintf("pec: unmapped spec signal %d", id))
	}
	specEnc := p.Spec.ToCNF(m, specVar)

	// 5. Mismatch literals mism_z ↔ (ẑ ⊕ z) for every copied signal.
	mism := make([]cnf.Lit, 0, len(copyOrder))
	for _, z := range copyOrder {
		zv := cnf.PosLit(copyVar[z])
		zl := implEnc.SigLit[z]
		d := cnf.PosLit(m.NewVar())
		m.AddClause(d.Not(), zv, zl)
		m.AddClause(d.Not(), zv.Not(), zl.Not())
		m.AddClause(d, zv, zl.Not())
		m.AddClause(d, zv.Not(), zl)
		mism = append(mism, d)
	}

	// 6. For every primary output: (no mismatch) → out_I ↔ out_S.
	for i, oid := range p.Impl.Outputs {
		oi := implEnc.SigLit[oid]
		os := specEnc.SigLit[p.Spec.Outputs[i]]
		c1 := append(append([]cnf.Lit{}, mism...), oi.Not(), os)
		c2 := append(append([]cnf.Lit{}, mism...), oi, os.Not())
		m.AddClause(c1...)
		m.AddClause(c2...)
	}

	// 7. Tseitin auxiliaries (gate and mismatch variables) are innermost
	// existentials depending on all universals.
	quant := dqbf.NewVarSet(append(append([]cnf.Var{}, f.Univ...), f.Exist...)...)
	for v := cnf.Var(1); int(v) <= m.NumVars; v++ {
		if !quant.Has(v) {
			f.AddExistential(v, f.Univ...)
		}
	}
	return f, nil
}

// CutBoxes removes the given gate groups from a complete circuit, turning
// each group into a black box: the group's outward-visible signals become
// FreeGates and the external signals feeding the group become the box
// inputs. It returns the incomplete circuit and the box descriptors (with
// ids valid in the returned circuit).
func CutBoxes(c *circuit.Circuit, groups [][]int) (*circuit.Circuit, []BlackBox, error) {
	inGroup := make(map[int]int) // gate id -> group index
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, nil, fmt.Errorf("pec: empty box group %d", gi)
		}
		for _, id := range g {
			if id < 0 || id >= c.NumGates() {
				return nil, nil, fmt.Errorf("pec: unknown gate %d in group %d", id, gi)
			}
			switch c.Gates[id].Type {
			case circuit.InputGate, circuit.FreeGate:
				return nil, nil, fmt.Errorf("pec: cannot cut %v %q", c.Gates[id].Type, c.Name(id))
			}
			if prev, dup := inGroup[id]; dup {
				return nil, nil, fmt.Errorf("pec: gate %d in groups %d and %d", id, prev, gi)
			}
			inGroup[id] = gi
		}
	}

	// Outputs of a group: in-group signals read outside the group or POs.
	// Inputs of a group: out-of-group signals read inside the group.
	type boxAcc struct {
		inputs  map[int]bool
		outputs map[int]bool
	}
	accs := make([]boxAcc, len(groups))
	for i := range accs {
		accs[i] = boxAcc{inputs: map[int]bool{}, outputs: map[int]bool{}}
	}
	for id, g := range c.Gates {
		gi, inside := inGroup[id]
		for _, in := range g.Ins {
			igi, inInside := inGroup[in]
			switch {
			case inside && !inInside:
				accs[gi].inputs[in] = true
			case !inside && inInside:
				accs[igi].outputs[in] = true
			case inside && inInside && igi != gi:
				accs[igi].outputs[in] = true
				accs[gi].inputs[in] = true
			}
		}
	}
	for _, id := range c.Outputs {
		if gi, inside := inGroup[id]; inside {
			accs[gi].outputs[id] = true
		}
	}

	// Rebuild the circuit with in-group gates dropped; group outputs become
	// FreeGates. Gates strictly inside a group with no outside reader vanish.
	d := circuit.New()
	idMap := make(map[int]int)
	for _, id := range c.Inputs {
		idMap[id] = d.AddInput(c.Name(id))
	}
	var boxes []BlackBox
	for gi := range groups {
		var outs []int
		var outIDs []int
		for id := range accs[gi].outputs {
			outIDs = append(outIDs, id)
		}
		sort.Ints(outIDs)
		for _, id := range outIDs {
			nid := d.AddFree(c.Name(id))
			idMap[id] = nid
			outs = append(outs, nid)
		}
		boxes = append(boxes, BlackBox{Name: fmt.Sprintf("bb%d", gi), Outputs: outs})
	}
	for id, g := range c.Gates {
		if _, inside := inGroup[id]; inside {
			continue
		}
		switch g.Type {
		case circuit.InputGate, circuit.FreeGate:
			continue
		}
		ins := make([]int, len(g.Ins))
		for i, in := range g.Ins {
			nid, ok := idMap[in]
			if !ok {
				return nil, nil, fmt.Errorf("pec: signal %q lost during cut", c.Name(in))
			}
			ins[i] = nid
		}
		idMap[id] = d.AddGate(g.Name, g.Type, ins...)
	}
	for _, id := range c.Outputs {
		d.MarkOutput(idMap[id])
	}
	// Resolve box inputs to new ids (they are outside every group, so they
	// survive the rebuild — unless they feed only boxes, in which case they
	// are still rebuilt because out-of-group gates are all kept).
	for gi := range groups {
		var inIDs []int
		for id := range accs[gi].inputs {
			inIDs = append(inIDs, id)
		}
		sort.Ints(inIDs)
		for _, id := range inIDs {
			nid, ok := idMap[id]
			if !ok {
				return nil, nil, fmt.Errorf("pec: box input %q lost during cut", c.Name(id))
			}
			boxes[gi].Inputs = append(boxes[gi].Inputs, nid)
		}
	}
	return d, boxes, nil
}
