package pec

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dqbf"
	"repro/internal/idq"
)

// cutSingle cuts the named gates, one box per gate.
func cutSingle(t *testing.T, c *circuit.Circuit, names ...string) (*circuit.Circuit, []BlackBox) {
	t.Helper()
	var groups [][]int
	for _, n := range names {
		id := c.Signal(n)
		if id < 0 {
			t.Fatalf("no signal %q", n)
		}
		groups = append(groups, []int{id})
	}
	impl, boxes, err := CutBoxes(c, groups)
	if err != nil {
		t.Fatal(err)
	}
	return impl, boxes
}

func TestCutBoxesStructure(t *testing.T) {
	c := circuit.XorChain(4) // t1 = x0⊕x1, t2 = t1⊕x2, t3 = t2⊕x3
	impl, boxes := cutSingle(t, c, "t2")
	if len(boxes) != 1 {
		t.Fatalf("boxes = %v", boxes)
	}
	b := boxes[0]
	if len(b.Inputs) != 2 || len(b.Outputs) != 1 {
		t.Fatalf("box = %+v", b)
	}
	free := impl.FreeSignals()
	if len(free) != 1 || impl.Name(free[0]) != "t2" {
		t.Fatalf("free = %v", free)
	}
	// Problem with spec == original must be realizable.
	p := &Problem{Spec: c, Impl: impl, Boxes: boxes}
	ok, err := BruteForceRealizable(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cut of the original circuit must be realizable")
	}
}

func TestCutBoxesErrors(t *testing.T) {
	c := circuit.XorChain(3)
	if _, _, err := CutBoxes(c, [][]int{{}}); err == nil {
		t.Error("empty group accepted")
	}
	if _, _, err := CutBoxes(c, [][]int{{c.Inputs[0]}}); err == nil {
		t.Error("cutting an input accepted")
	}
	id := c.Signal("t1")
	if _, _, err := CutBoxes(c, [][]int{{id}, {id}}); err == nil {
		t.Error("duplicate gate accepted")
	}
	if _, _, err := CutBoxes(c, [][]int{{9999}}); err == nil {
		t.Error("unknown gate accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	spec := circuit.XorChain(3)
	impl, boxes := cutSingle(t, spec, "t1")
	good := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	// Mismatched pins.
	bad := &Problem{Spec: circuit.XorChain(4), Impl: impl, Boxes: boxes}
	if bad.Validate() == nil {
		t.Error("pin mismatch accepted")
	}
	// Unowned free signal.
	bad2 := &Problem{Spec: spec, Impl: impl, Boxes: nil}
	if bad2.Validate() == nil {
		t.Error("unowned free signal accepted")
	}
	// Box output is not free.
	bad3 := &Problem{Spec: spec, Impl: impl, Boxes: []BlackBox{{Name: "b", Outputs: []int{impl.Signal("t2")}}}}
	if bad3.Validate() == nil {
		t.Error("non-free box output accepted")
	}
}

// decide runs the DQBF encoding through brute force.
func decide(t *testing.T, p *Problem) bool {
	t.Helper()
	f, err := p.ToDQBF()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	res := core.New(core.DefaultOptions()).SolveDQBF(f)
	if res.Status != core.Solved {
		t.Fatalf("HQS status %v", res.Status)
	}
	ires := idq.New(idq.Options{}).Solve(f)
	if ires.Status != idq.Solved || ires.Sat != res.Sat {
		t.Fatalf("iDQ disagrees: %v/%v vs HQS %v", ires.Status, ires.Sat, res.Sat)
	}
	return res.Sat
}

func TestRealizableSingleBox(t *testing.T) {
	spec := circuit.XorChain(3)
	impl, boxes := cutSingle(t, spec, "t2")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	if !decide(t, p) {
		t.Fatal("single-box cut of the spec itself must be realizable (SAT)")
	}
}

func TestRealizableInversionOutsideBox(t *testing.T) {
	// A polarity fault outside the box on an XOR chain IS repairable: the
	// box can absorb the inversion (XOR↔XNOR swaps propagate).
	spec := circuit.XorChain(4)
	faulty := spec.InjectFault(spec.Signal("t3"), circuit.FaultGateSwap, 0) // t3 XOR→XNOR
	impl, boxes := cutSingle(t, faulty, "t1")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	want, err := BruteForceRealizable(p)
	if err != nil {
		t.Fatal(err)
	}
	if !want {
		t.Fatal("inversion on an XOR chain must be repairable by the box")
	}
	if !decide(t, p) {
		t.Fatal("DQBF encoding misses the repair")
	}
}

func TestUnrealizableWrongSpec(t *testing.T) {
	// Replace the last XOR by an AND outside the box: out = t2∧x3 cannot be
	// turned into parity by any box implementation of t1 — at x3=0 the
	// output is constant 0 while the spec still varies.
	spec := circuit.XorChain(4)
	broken := spec.Clone()
	broken.Gates[broken.Signal("t3")].Type = circuit.AndGate
	impl, boxes := cutSingle(t, broken, "t1")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	want, err := BruteForceRealizable(p)
	if err != nil {
		t.Fatal(err)
	}
	if want {
		t.Fatal("test construction broken: instance should be unrealizable")
	}
	if decide(t, p) {
		t.Fatal("DQBF encoding says realizable for an unrealizable instance")
	}
}

func TestRealizableFaultInsideBox(t *testing.T) {
	// Fault inside the cut region: the box can reimplement the correct
	// function, so the instance is realizable.
	spec := circuit.XorChain(4)
	faulty := spec.InjectFault(spec.Signal("t2"), circuit.FaultGateSwap, 0)
	impl, boxes := cutSingle(t, faulty, "t2")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	if !decide(t, p) {
		t.Fatal("fault hidden inside the box must be realizable")
	}
}

func TestTwoBoxesNonLinearPrefix(t *testing.T) {
	// Two boxes with disjoint input cones give incomparable dependency
	// sets — the hallmark DQBF case (no equivalent QBF prefix).
	spec := circuit.XorChain(3)
	impl, boxes := cutSingle(t, spec, "t1", "t2")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	f, err := p.ToDQBF()
	if err != nil {
		t.Fatal(err)
	}
	if !dqbf.IsCyclic(f) {
		t.Fatal("two independent boxes must yield a cyclic dependency graph")
	}
	if !decide(t, p) {
		t.Fatal("cutting two spec gates must stay realizable")
	}
}

func TestTwoBoxesUnrealizable(t *testing.T) {
	spec := circuit.RippleCarryAdder(2)
	faulty := spec.InjectFault(spec.Signal("c2"), circuit.FaultGateSwap, 0) // final OR→AND
	impl, boxes := cutSingle(t, faulty, "p0", "p1")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	want, err := BruteForceRealizable(p)
	if err != nil {
		t.Fatal(err)
	}
	got := decide(t, p)
	if got != want {
		t.Fatalf("DQBF %v, brute force %v", got, want)
	}
	if got {
		t.Fatal("carry fault outside boxes should be unrealizable")
	}
}

func TestEncodingMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	specs := []func() *circuit.Circuit{
		func() *circuit.Circuit { return circuit.XorChain(3) },
		func() *circuit.Circuit { return circuit.ArbiterBitcell(3) },
		func() *circuit.Circuit { return circuit.Comparator(2) },
	}
	for iter := 0; iter < 12; iter++ {
		spec := specs[iter%len(specs)]()
		work := spec
		if iter%2 == 1 {
			work, _ = spec.RandomFault(rng)
		}
		// Cut one or two random non-input gates as single-gate boxes.
		var candidates []int
		for id, g := range work.Gates {
			switch g.Type {
			case circuit.InputGate, circuit.FreeGate, circuit.Const0, circuit.Const1:
			default:
				candidates = append(candidates, id)
			}
		}
		nBoxes := 1 + rng.Intn(2)
		perm := rng.Perm(len(candidates))
		var groups [][]int
		for _, pi := range perm[:min(nBoxes, len(candidates))] {
			groups = append(groups, []int{candidates[pi]})
		}
		impl, boxes, err := CutBoxes(work, groups)
		if err != nil {
			t.Fatal(err)
		}
		p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
		want, err := BruteForceRealizable(p)
		if err != nil {
			t.Skipf("iter %d beyond brute force: %v", iter, err)
		}
		if got := decide(t, p); got != want {
			t.Fatalf("iter %d: DQBF %v, brute force %v", iter, got, want)
		}
	}
}

func TestDependencySetsPerBox(t *testing.T) {
	spec := circuit.RippleCarryAdder(2)
	impl, boxes := cutSingle(t, spec, "g1_0", "g1_1")
	p := &Problem{Spec: spec, Impl: impl, Boxes: boxes}
	f, err := p.ToDQBF()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly two "real" existentials with dependency-set size 2 (the box
	// inputs a_i, b_i); all Tseitin auxiliaries depend on every universal.
	full := f.UniversalSet()
	small := 0
	for _, y := range f.Exist {
		if f.Deps[y].Equal(full) {
			continue
		}
		if f.Deps[y].Len() != 2 {
			t.Fatalf("box output with %d deps", f.Deps[y].Len())
		}
		small++
	}
	if small != 2 {
		t.Fatalf("found %d box outputs, want 2", small)
	}
}
