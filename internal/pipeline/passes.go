package pipeline

import (
	"sort"

	"repro/internal/aig"
	"repro/internal/cnf"
)

// Pass names shared by the HQS and QBF pipelines, registered at init so
// fault-spec validation knows them before any solve runs.
var (
	unitPurePoint    = RegisterPass("unitpure")
	dropSupportPoint = RegisterPass("dropsupport")
	sweepPoint       = RegisterPass("sweep")
)

// UnitPurePass applies the paper's Theorems 5 and 6 — unit and pure literal
// elimination directly on the AIG — until a fixpoint. It is the one shared
// implementation of the unit/pure+elimination interleaving that used to be
// duplicated between the HQS main loop and the QBF back end; the Prefix
// interface supplies the quantifier semantics of the caller.
//
// Variables are considered in ascending order, so the elimination sequence
// (and therefore the resulting AIG) is deterministic and bit-identical for
// both callers on the same graph, matrix and quantifier assignment.
type UnitPurePass struct{}

// Name implements Pass.
func (UnitPurePass) Name() string { return "unitpure" }

// Run implements Pass. A universal unit literal falsifies the formula
// (matrix set to constant false); otherwise units and pures are cofactored
// out and removed from the prefix, recomputing the unit/pure flags after
// every elimination. Stop is polled between fixpoint rounds.
func (UnitPurePass) Run(st *State) (Result, error) {
	var res Result
	var units, pures int64
	defer func() {
		if units > 0 || pures > 0 {
			res.Counters = Counters{"units": units, "pures": pures}
		}
	}()
	for {
		if err := st.Stop(); err != nil {
			return res, err
		}
		up := st.G.UnitPure(st.Matrix)
		vars := make([]cnf.Var, 0, len(up))
		for v := range up {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		changed := false
		for _, v := range vars {
			p := up[v]
			exist := st.Prefix.IsExistential(v)
			univ := st.Prefix.IsUniversal(v)
			if !exist && !univ {
				continue // gate-defined or already removed
			}
			switch {
			case exist && p.PosUnit:
				st.Cert.RecordConst(v, true)
				st.Matrix = st.G.Cofactor(st.Matrix, v, true)
				units++
			case exist && p.NegUnit:
				st.Cert.RecordConst(v, false)
				st.Matrix = st.G.Cofactor(st.Matrix, v, false)
				units++
			case univ && (p.PosUnit || p.NegUnit):
				// A universal unit means the opposite value falsifies the
				// matrix: the formula is false.
				st.Matrix = aig.False
				res.Changed = true
				return res, nil
			case exist && p.PosPure:
				st.Cert.RecordConst(v, true)
				st.Matrix = st.G.Cofactor(st.Matrix, v, true)
				pures++
			case exist && p.NegPure:
				st.Cert.RecordConst(v, false)
				st.Matrix = st.G.Cofactor(st.Matrix, v, false)
				pures++
			case univ && p.PosPure:
				st.Matrix = st.G.Cofactor(st.Matrix, v, false)
				pures++
			case univ && p.NegPure:
				st.Matrix = st.G.Cofactor(st.Matrix, v, true)
				pures++
			default:
				continue
			}
			st.Prefix.Remove(v)
			changed = true
			res.Changed = true
			if st.Matrix.IsConst() {
				return res, nil
			}
			break // recompute unit/pure flags on the new matrix
		}
		if !changed {
			return res, nil
		}
	}
}

// DropSupportPass removes prefix variables the matrix no longer depends on.
type DropSupportPass struct{}

// Name implements Pass.
func (DropSupportPass) Name() string { return "dropsupport" }

// Run implements Pass.
func (DropSupportPass) Run(st *State) (Result, error) {
	removed := st.Prefix.RetainSupport(st.G.Support(st.Matrix))
	if removed == 0 {
		return Result{}, nil
	}
	return Result{Changed: true, Counters: Counters{"removed": int64(removed)}}, nil
}

// SweepPass compresses the matrix cone by SAT sweeping (FRAIG reduction)
// whenever it has grown past the threshold since the last sweep. A run
// below the threshold is a traced no-op.
type SweepPass struct {
	// Threshold is the cone growth (in AND nodes) that triggers a sweep;
	// <= 0 disables sweeping.
	Threshold int
	// Opt configures individual sweeps; the state's deadline, budget, and
	// worker override are threaded in per run.
	Opt aig.SweepOptions

	lastSize int
	sweeps   int
	stats    aig.SweepStats
}

// NewSweepPass returns a sweep pass with the given trigger threshold and
// sweep options.
func NewSweepPass(threshold int, opt aig.SweepOptions) *SweepPass {
	return &SweepPass{Threshold: threshold, Opt: opt, lastSize: -1}
}

// Reset sets the cone-size baseline growth is measured against (drivers
// call it once the matrix is built; otherwise the first Run self-baselines).
func (p *SweepPass) Reset(size int) { p.lastSize = size }

// Name implements Pass.
func (p *SweepPass) Name() string { return "sweep" }

// Run implements Pass.
func (p *SweepPass) Run(st *State) (Result, error) {
	if p.Threshold <= 0 {
		return Result{}, nil
	}
	size := st.G.ConeSize(st.Matrix)
	if p.lastSize < 0 {
		p.lastSize = size
	}
	if size <= p.lastSize+p.Threshold {
		return Result{}, nil
	}
	so := p.Opt
	so.Deadline = st.Deadline
	so.Budget = st.Budget
	if st.Workers != 0 {
		so.Workers = st.Workers
	}
	// Explicit nil check: assigning a nil *oracle.Pool to the interface
	// field would make it non-nil (typed nil) and panic inside Sweep.
	if st.Oracle != nil {
		so.Oracles = st.Oracle
	}
	m, sst := st.G.Sweep(st.Matrix, so)
	st.Matrix = m
	p.sweeps++
	p.stats.Add(sst)
	p.lastSize = st.G.ConeSize(m)
	return Result{Changed: true, Counters: Counters(sst.Counters())}, nil
}

// Stats returns how many sweeps ran and their aggregated counters.
func (p *SweepPass) Stats() (int, aig.SweepStats) { return p.sweeps, p.stats }
