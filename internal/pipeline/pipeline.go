// Package pipeline is the pass-manager framework of the elimination stack.
// HQS is a sequence of named transformations — preprocessing, gate
// detection, matrix construction, elimination-set selection, then an
// interleaved loop of unit/pure elimination, Theorem-2 and Theorem-1
// eliminations and FRAIG sweeping, finishing with block-wise QBF
// elimination — and this package makes that sequence first-class: a Pass is
// one named transformation over a shared State (the DQBF prefix, the AIG,
// the matrix reference, and the budget), and a Runner executes passes,
// polling the budget between them, firing a per-pass fault-injection point
// ("pipeline.<pass>"), and emitting one structured trace.Event per pass
// execution.
//
// The framework exists so alternative preprocessing or elimination
// techniques (definition extraction, partial elimination with learning, …)
// drop into the solver as passes instead of being hand-woven into another
// copy of the main loop, and so each solve is observable per stage rather
// than as one opaque wall time.
package pipeline

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/problem"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// Stop errors returned by Runner.Run and State.Stop when the budget ends a
// solve between or inside passes.
var (
	// ErrTimeout means the deadline (the state's or the budget's) passed.
	ErrTimeout = errors.New("pipeline: deadline exceeded")
	// ErrCancelled means the budget was cancelled or a cap was exhausted —
	// including an injected spurious Unknown from a pipeline fault point.
	ErrCancelled = errors.New("pipeline: cancelled")
)

// Prefix is the quantifier-prefix view passes share. The HQS pipeline backs
// it with a dqbf.Formula (FormulaPrefix); the QBF back end backs it with its
// linear block list. Through this interface one unit/pure or support pass
// serves both pipelines.
type Prefix interface {
	// IsExistential and IsUniversal report the quantifier of v; both false
	// means v is not quantified here (gate-defined or already removed).
	IsExistential(v cnf.Var) bool
	IsUniversal(v cnf.Var) bool
	// Remove deletes v from the prefix (and any dependency bookkeeping).
	Remove(v cnf.Var)
	// RetainSupport drops every prefix variable not in support, returning
	// how many were removed.
	RetainSupport(support map[cnf.Var]bool) int
	// Size returns the current universal and existential variable counts.
	Size() (univ, exist int)
}

// State is the shared mutable state a pipeline threads through its passes.
type State struct {
	// G is the AIG the matrix lives in (nil until a build pass creates it).
	G *aig.Graph
	// Matrix is the current matrix reference in G.
	Matrix aig.Ref
	// Prefix is the quantifier prefix being eliminated.
	Prefix Prefix
	// Budget, when non-nil, makes the pipeline cancellable; the Runner polls
	// it before each pass and long passes poll Stop between rounds.
	Budget *budget.Budget
	// Deadline, when nonzero, bounds wall-clock time independently of the
	// budget.
	Deadline time.Time
	// Workers overrides SAT worker-pool sizes of sweeping passes (0 keeps
	// the pass default).
	Workers int
	// Cert, when non-nil, collects Skolem reconstruction steps from every
	// formula-changing pass. All Builder recorders are nil-safe, so passes
	// record unconditionally.
	Cert *cert.Builder
	// Oracle, when non-nil, is the run's persistent incremental SAT
	// substrate (one pool of long-lived solvers over G, created alongside
	// the graph by the build pass). Sweeping, the MaxSAT elimination-set
	// selection, and the final SAT check route their queries through it so
	// encodings and learned clauses survive across passes; nil keeps every
	// consumer on its historical fresh-solver-per-query path.
	Oracle *oracle.Pool
	// Problem, when non-nil, is the ingested problem the run came from —
	// passes can consult its Kind (DQBF vs plain QBF) and provenance
	// without re-deriving them from the prefix.
	Problem *problem.Problem

	// Decided, Sat and DecidedBy carry the verdict once a pass settles the
	// formula.
	Decided   bool
	Sat       bool
	DecidedBy string
}

// Decide records a verdict on the state.
func (st *State) Decide(sat bool, by string) {
	st.Decided = true
	st.Sat = sat
	st.DecidedBy = by
}

// Stop reports whether the pipeline must unwind: ErrTimeout past the
// deadline (the state's or the budget's), ErrCancelled on budget
// cancellation or cap exhaustion, nil to keep going. Long-running passes
// poll it between fixpoint rounds.
func (st *State) Stop() error {
	if err := st.Budget.Err(); err != nil {
		if errors.Is(err, budget.ErrDeadline) {
			return ErrTimeout
		}
		return ErrCancelled
	}
	if !st.Deadline.IsZero() && time.Now().After(st.Deadline) {
		return ErrTimeout
	}
	return nil
}

// Counters are the pass-specific counters of one pass execution, reported
// into the trace event and aggregated by the Runner.
type Counters map[string]int64

// Add folds o into c, allocating c if needed, and returns it.
func (c Counters) Add(o Counters) Counters {
	if len(o) == 0 {
		return c
	}
	if c == nil {
		c = make(Counters, len(o))
	}
	for k, v := range o {
		c[k] += v
	}
	return c
}

// Result reports what one pass execution did.
type Result struct {
	// Changed is true when the pass modified the state (used by fixpoint
	// groups to decide convergence).
	Changed bool
	// Counters are the pass-specific counters of this execution.
	Counters Counters
}

// Pass is one named transformation over the shared state. Run returns the
// mutation summary and an error only for stop conditions (ErrTimeout /
// ErrCancelled) or hard failures; out-of-memory unwinds via the graph's
// aig.ErrNodeLimit panic exactly as in the monolithic loops.
type Pass interface {
	Name() string
	Run(st *State) (Result, error)
}

// funcPass adapts a function to a Pass.
type funcPass struct {
	name string
	fn   func(*State) (Result, error)
}

func (p funcPass) Name() string                  { return p.name }
func (p funcPass) Run(st *State) (Result, error) { return p.fn(st) }

// NewPass wraps fn as a Pass with the given registered name. The name must
// have been registered (RegisterPass) so its fault point exists; NewPass
// registers it defensively for names only ever constructed at run time.
func NewPass(name string, fn func(*State) (Result, error)) Pass {
	RegisterPass(name)
	return funcPass{name: name, fn: fn}
}

// passRegistry lists every known pass name; each registration also creates
// the pass's fault-injection point so chaos specs can target it.
var passRegistry struct {
	mu    sync.Mutex
	names []string
	seen  map[string]bool
}

// RegisterPass registers a pass name (idempotent) and its
// "pipeline.<name>" fault point, returning the point. Packages contributing
// passes register their names at init time so flag-time fault-spec
// validation (hqsd -faults) accepts them before any solve runs.
func RegisterPass(name string) faults.Point {
	pt := FaultPoint(name)
	passRegistry.mu.Lock()
	defer passRegistry.mu.Unlock()
	if passRegistry.seen == nil {
		passRegistry.seen = make(map[string]bool)
	}
	if !passRegistry.seen[name] {
		passRegistry.seen[name] = true
		passRegistry.names = append(passRegistry.names, name)
		faults.Register(pt)
	}
	return pt
}

// PassNames returns every registered pass name, sorted.
func PassNames() []string {
	passRegistry.mu.Lock()
	defer passRegistry.mu.Unlock()
	out := append([]string(nil), passRegistry.names...)
	sort.Strings(out)
	return out
}

// FaultPoint returns the fault-injection point of a pass name.
func FaultPoint(name string) faults.Point { return faults.Point("pipeline." + name) }

// FormulaPrefix adapts a dqbf.Formula to the Prefix interface (the HQS
// pipeline's view; the QBF back end adapts its block list instead).
type FormulaPrefix struct{ F *dqbf.Formula }

// IsExistential implements Prefix.
func (p FormulaPrefix) IsExistential(v cnf.Var) bool { return p.F.IsExistential(v) }

// IsUniversal implements Prefix.
func (p FormulaPrefix) IsUniversal(v cnf.Var) bool { return p.F.IsUniversal(v) }

// Size implements Prefix.
func (p FormulaPrefix) Size() (int, int) { return len(p.F.Univ), len(p.F.Exist) }

// Remove implements Prefix: a universal leaves every dependency set, an
// existential leaves the prefix with its dependency set.
func (p FormulaPrefix) Remove(v cnf.Var) {
	f := p.F
	for i, u := range f.Univ {
		if u == v {
			f.Univ = append(f.Univ[:i], f.Univ[i+1:]...)
			for _, d := range f.Deps {
				d.Remove(v)
			}
			return
		}
	}
	for i, y := range f.Exist {
		if y == v {
			f.Exist = append(f.Exist[:i], f.Exist[i+1:]...)
			delete(f.Deps, v)
			return
		}
	}
}

// RetainSupport implements Prefix: variables outside the support leave the
// prefix (universals leave the dependency sets as well).
func (p FormulaPrefix) RetainSupport(support map[cnf.Var]bool) int {
	f := p.F
	removed := 0
	var exist []cnf.Var
	for _, y := range f.Exist {
		if support[y] {
			exist = append(exist, y)
		} else {
			delete(f.Deps, y)
			removed++
		}
	}
	f.Exist = exist
	var univ []cnf.Var
	for _, x := range f.Univ {
		if support[x] {
			univ = append(univ, x)
			continue
		}
		for _, d := range f.Deps {
			d.Remove(x)
		}
		removed++
	}
	f.Univ = univ
	return removed
}
