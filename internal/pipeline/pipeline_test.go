package pipeline_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/aig"
	"repro/internal/faults"
	"repro/internal/pipeline"

	// Imported for their init-time pass registrations, so the test sees the
	// full pass inventory of both pipelines.
	_ "repro/internal/core"
	_ "repro/internal/qbf"
)

// expectedPasses is the pass inventory of the two pipelines; a new pass must
// be registered (and thereby fault-injectable) to show up in PassNames.
var expectedPasses = []string{
	"blockelim", "build", "dropsupport", "elimset", "finalsat",
	"preprocess", "qbf", "sweep", "thm1", "thm2", "unitpure",
}

func TestPassRegistryComplete(t *testing.T) {
	names := pipeline.PassNames()
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, want := range expectedPasses {
		if !got[want] {
			t.Errorf("pass %q not registered", want)
		}
	}
}

// TestEveryPassInjectable asserts, for every registered pass, that its
// "pipeline.<pass>" fault point is accepted by the spec parser and that an
// armed plan actually fires at it — i.e. the whole pipeline is chaos-testable
// per pass, with no silent gaps.
func TestEveryPassInjectable(t *testing.T) {
	defer faults.Deactivate()
	for _, name := range pipeline.PassNames() {
		spec := fmt.Sprintf("pipeline.%s:error", name)
		plan, err := faults.ParseSpec(spec, 1)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		faults.Activate(plan)
		if err := faults.Fire(pipeline.FaultPoint(name)); err == nil {
			t.Errorf("pass %s: armed fault point did not fire", name)
		}
		faults.Deactivate()
	}
}

// TestRunnerFaultMapping asserts the Runner's error contract at the fault
// seam: an injected hard error surfaces as a pass failure naming the pass,
// an injected spurious Unknown unwinds as ErrCancelled, and in both cases
// the pass body never runs.
func TestRunnerFaultMapping(t *testing.T) {
	defer faults.Deactivate()
	newRunner := func() (*pipeline.Runner, *int) {
		g := aig.New()
		st := &pipeline.State{G: g, Matrix: aig.True}
		ran := 0
		return pipeline.NewRunner(st, nil, "test"), &ran
	}
	pass := func(ran *int) pipeline.Pass {
		return pipeline.NewPass("unitpure", func(st *pipeline.State) (pipeline.Result, error) {
			*ran++
			return pipeline.Result{}, nil
		})
	}

	r, ran := newRunner()
	plan, err := faults.ParseSpec("pipeline.unitpure:error", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faults.Activate(plan)
	if _, err := r.Run(pass(ran)); err == nil || errors.Is(err, pipeline.ErrCancelled) {
		t.Fatalf("injected error: got %v, want hard pass failure", err)
	}
	if *ran != 0 {
		t.Fatal("pass body ran despite injected error")
	}

	r, ran = newRunner()
	plan, err = faults.ParseSpec("pipeline.unitpure:unknown", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faults.Activate(plan)
	if _, err := r.Run(pass(ran)); !errors.Is(err, pipeline.ErrCancelled) {
		t.Fatalf("injected unknown: got %v, want ErrCancelled", err)
	}
	if *ran != 0 {
		t.Fatal("pass body ran despite injected unknown")
	}
}
