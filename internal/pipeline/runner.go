package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/trace"
)

// PassTotal aggregates every execution of one pass within a Runner.
type PassTotal struct {
	Runs     int
	Wall     time.Duration
	Counters Counters
}

// Runner executes passes over one shared State: it polls the budget before
// each pass, fires the pass's "pipeline.<pass>" fault point, measures the
// execution, emits one trace.Event per executed pass, and aggregates
// per-pass totals for the driver's stats.
type Runner struct {
	st    *State
	sink  trace.Sink
	stage string

	totals map[string]*PassTotal
}

// NewRunner returns a runner over st emitting events to sink (nil disables
// tracing) tagged with the given stage name ("hqs", "qbf").
func NewRunner(st *State, sink trace.Sink, stage string) *Runner {
	return &Runner{st: st, sink: sink, stage: stage, totals: make(map[string]*PassTotal)}
}

// State returns the runner's shared state.
func (r *Runner) State() *State { return r.st }

// Run executes one pass. It returns ErrTimeout/ErrCancelled when the budget
// stops the pipeline (before the pass, via an injected spurious Unknown, or
// reported by the pass itself), a hard error when the pass fails or a fault
// plan injects one, and nil otherwise. A trace event is emitted for every
// execution that reaches the pass body, stop errors included; panics
// (aig.ErrNodeLimit in particular) propagate to the driver's recover.
func (r *Runner) Run(p Pass) (Result, error) {
	if err := r.st.Stop(); err != nil {
		return Result{}, err
	}
	// Fault-injection seam: every pass has a "pipeline.<pass>" point, so the
	// chaos harness can target any stage of any pipeline. A spurious Unknown
	// unwinds like a cancellation; other injected errors surface as hard
	// pass failures (and injected panics propagate to the engine's recover).
	if ferr := faults.Fire(FaultPoint(p.Name())); ferr != nil {
		if errors.Is(ferr, faults.ErrUnknown) {
			return Result{}, ErrCancelled
		}
		return Result{}, fmt.Errorf("pipeline: pass %s: %w", p.Name(), ferr)
	}

	nodesBefore := r.nodes()
	univBefore, existBefore := r.prefixSize()
	start := time.Now()
	res, err := p.Run(r.st)
	wall := time.Since(start)

	t := r.totals[p.Name()]
	if t == nil {
		t = &PassTotal{}
		r.totals[p.Name()] = t
	}
	t.Runs++
	t.Wall += wall
	t.Counters = t.Counters.Add(res.Counters)

	if r.sink != nil {
		ev := trace.Event{
			Stage:       r.stage,
			Pass:        p.Name(),
			Wall:        wall,
			NodesBefore: nodesBefore,
			NodesAfter:  r.nodes(),
			UnivBefore:  univBefore,
			ExistBefore: existBefore,
			Changed:     res.Changed,
		}
		ev.UnivAfter, ev.ExistAfter = r.prefixSize()
		if len(res.Counters) > 0 {
			ev.Counters = make(map[string]int64, len(res.Counters))
			for k, v := range res.Counters {
				ev.Counters[k] = v
			}
		}
		if err != nil {
			ev.Err = err.Error()
		}
		r.sink.Emit(ev)
	}
	return res, err
}

// Fixpoint runs the group of passes round-robin until one full round
// reports no change, the state is decided, or a pass stops the pipeline.
func (r *Runner) Fixpoint(passes ...Pass) error {
	for {
		changed := false
		for _, p := range passes {
			res, err := r.Run(p)
			if err != nil {
				return err
			}
			if r.st.Decided {
				return nil
			}
			changed = changed || res.Changed
		}
		if !changed {
			return nil
		}
	}
}

// Total returns the aggregate of every execution of the named pass.
func (r *Runner) Total(name string) PassTotal {
	if t := r.totals[name]; t != nil {
		return *t
	}
	return PassTotal{}
}

func (r *Runner) nodes() int {
	if r.st.G == nil {
		return 0
	}
	return r.st.G.NumNodes()
}

func (r *Runner) prefixSize() (int, int) {
	if r.st.Prefix == nil {
		return 0, 0
	}
	return r.st.Prefix.Size()
}
