package pipeline_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// TestRunnerBudgetExpiryMidPass drives the stop contract a long pass relies
// on: when the budget is cancelled while the pass body runs, State.Stop
// reports ErrCancelled, the pass unwinds with it, and the runner still emits
// a trace event carrying the error (the pass executed, so the job history
// must show it).
func TestRunnerBudgetExpiryMidPass(t *testing.T) {
	bud := budget.New(budget.Limits{})
	rec := trace.NewRecorder(0)
	st := &pipeline.State{G: aig.New(), Matrix: aig.True, Budget: bud}
	r := pipeline.NewRunner(st, rec, "test")

	rounds := 0
	pass := pipeline.NewPass("unitpure", func(st *pipeline.State) (pipeline.Result, error) {
		// A fixpoint pass polling Stop between rounds; the budget dies after
		// the first round.
		for {
			if err := st.Stop(); err != nil {
				return pipeline.Result{Changed: rounds > 0}, err
			}
			rounds++
			bud.Cancel()
		}
	})
	_, err := r.Run(pass)
	if !errors.Is(err, pipeline.ErrCancelled) {
		t.Fatalf("mid-pass cancellation returned %v, want ErrCancelled", err)
	}
	if rounds != 1 {
		t.Fatalf("pass ran %d rounds after cancellation, want 1", rounds)
	}
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("%d trace events, want 1 (the pass executed)", len(evs))
	}
	if evs[0].Err != pipeline.ErrCancelled.Error() {
		t.Fatalf("trace event error %q, want %q", evs[0].Err, pipeline.ErrCancelled)
	}
	if total := r.Total("unitpure"); total.Runs != 1 {
		t.Fatalf("pass totals recorded %d runs, want 1", total.Runs)
	}
}

// TestRunnerBudgetDeadlineMidPass is the deadline flavor: a budget whose
// deadline passes mid-pass surfaces as ErrTimeout.
func TestRunnerBudgetDeadlineMidPass(t *testing.T) {
	bud := budget.New(budget.Limits{Timeout: 5 * time.Millisecond})
	st := &pipeline.State{G: aig.New(), Matrix: aig.True, Budget: bud}
	r := pipeline.NewRunner(st, nil, "test")

	pass := pipeline.NewPass("unitpure", func(st *pipeline.State) (pipeline.Result, error) {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if err := st.Stop(); err != nil {
				return pipeline.Result{}, err
			}
			time.Sleep(time.Millisecond)
		}
		return pipeline.Result{}, nil
	})
	_, err := r.Run(pass)
	if !errors.Is(err, pipeline.ErrTimeout) {
		t.Fatalf("mid-pass deadline returned %v, want ErrTimeout", err)
	}
}

// TestRunnerStopsBeforePass pins the other half of the contract: a budget
// already dead when Run is called stops the pipeline before the pass body,
// and no trace event is emitted (the pass never executed).
func TestRunnerStopsBeforePass(t *testing.T) {
	bud := budget.New(budget.Limits{})
	bud.Cancel()
	rec := trace.NewRecorder(0)
	st := &pipeline.State{G: aig.New(), Matrix: aig.True, Budget: bud}
	r := pipeline.NewRunner(st, rec, "test")

	ran := false
	pass := pipeline.NewPass("unitpure", func(st *pipeline.State) (pipeline.Result, error) {
		ran = true
		return pipeline.Result{}, nil
	})
	_, err := r.Run(pass)
	if !errors.Is(err, pipeline.ErrCancelled) {
		t.Fatalf("pre-pass cancellation returned %v, want ErrCancelled", err)
	}
	if ran {
		t.Fatal("pass body ran under a dead budget")
	}
	if rec.Len() != 0 {
		t.Fatalf("%d trace events for a pass that never ran, want 0", rec.Len())
	}
}
