// Package pqe implements partial quantifier elimination (PQE) in the sense
// of Goldberg's PQE line of work: given ∃X[F ∧ G] over free variables Y,
// take F out of the quantifier scope — compute a clause set Q over Y with
//
//	Q ∧ ∃X[G] ≡ ∃X[F ∧ G].
//
// PQE is the cheap, high-volume query primitive of the stack: unlike full
// quantifier elimination it only has to account for the part of the search
// space where F changes the answer, which in practice is a handful of SAT
// calls per query.
//
// The algorithm is a model-enumeration CEGAR loop built on the incremental
// CDCL oracle (internal/sat):
//
//	enum    holds G ∧ Q plus blocking clauses — its models are the Y
//	        assignments still claiming "∃X G but Q doesn't rule me out".
//	checker holds F ∧ G.
//
// Each round asks enum for a model, restricts it to Y, and asks the checker
// whether F ∧ G is satisfiable under that Y assignment. If it is, the Y
// assignment belongs to both sides and is blocked in enum only. If it is
// not, the checker's failed-assumption core — which IS a clause over Y
// implied by F ∧ G (sat.FailedAssumptions returns the negated assumptions)
// — joins Q and the enum solver. Every round eliminates at least one Y
// assignment, so the loop terminates; when enum is UNSAT, Q is exact.
package pqe

import (
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/problem"
	"repro/internal/sat"
	"repro/internal/trace"
)

// ErrRounds reports that Options.MaxRounds stopped the loop before the
// clause set converged.
var ErrRounds = errors.New("pqe: round limit exceeded")

// Options configure one PQE query.
type Options struct {
	// Budget, when non-nil, makes the query cancellable: every SAT call
	// meters into and polls it.
	Budget *budget.Budget
	// Trace, when non-nil, receives one event per enumeration round.
	Trace trace.Sink
	// MaxRounds bounds the number of enumeration rounds (0 = unbounded; the
	// loop always terminates, but on large free-variable spaces the bound
	// turns a long query into a clean error).
	MaxRounds int
}

// Result is the answer of a PQE query.
type Result struct {
	// Q is the computed clause set over the free variables: Q ∧ ∃X[G] is
	// equivalent to ∃X[F ∧ G]. An empty Q means F adds nothing outside the
	// quantifier scope; a Q containing the empty clause means F ∧ G is
	// unsatisfiable.
	Q []cnf.Clause
	// Rounds counts enumeration rounds, SATCalls the oracle queries, and
	// Blocked the Y assignments found on both sides (blocked, not learned).
	Rounds   int
	SATCalls int
	Blocked  int
}

// Solve answers the PQE query q. It returns an error when the budget stops
// the query (the budget's reason), when the round limit trips (ErrRounds),
// or when the "pqe.solve" fault point injects a failure.
func Solve(q *problem.PQESplit, opt Options) (*Result, error) {
	if err := faults.Fire(faults.PQESolve); err != nil {
		return nil, fmt.Errorf("pqe: %w", err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	yVars := q.FreeVars()

	newSolver := func() *sat.Solver {
		s := sat.New()
		s.Budget = opt.Budget
		s.EnsureVars(q.NumVars)
		return s
	}
	addClauses := func(s *sat.Solver, cs []cnf.Clause) {
		for _, c := range cs {
			s.AddClause(c...)
		}
	}
	enum := newSolver()
	addClauses(enum, q.G)
	checker := newSolver()
	addClauses(checker, q.F)
	addClauses(checker, q.G)

	res := &Result{}
	emit := func(changed bool, learned int) {
		if opt.Trace == nil {
			return
		}
		opt.Trace.Emit(trace.Event{
			Stage: "pqe", Pass: "pqe-round", Seq: res.Rounds, Changed: changed,
			Counters: map[string]int64{
				"q_clauses": int64(len(res.Q)),
				"blocked":   int64(res.Blocked),
				"sat_calls": int64(res.SATCalls),
				"learned":   int64(learned),
			},
		})
	}

	for {
		// The oracle only polls the budget during search, which trivial
		// queries never enter — poll once per round so cancellation and
		// deadlines are honored regardless of instance size.
		if opt.Budget != nil {
			if err := opt.Budget.Err(); err != nil {
				return res, err
			}
		}
		if opt.MaxRounds > 0 && res.Rounds >= opt.MaxRounds {
			return res, ErrRounds
		}
		res.Rounds++

		res.SATCalls++
		st, err := enum.SolveErr(nil)
		if err != nil {
			return res, err
		}
		if st == sat.Unsat {
			emit(false, 0)
			return res, nil
		}
		model := enum.Model()
		assumps := make([]cnf.Lit, 0, len(yVars))
		for _, v := range yVars {
			if model.Get(v) {
				assumps = append(assumps, cnf.PosLit(v))
			} else {
				assumps = append(assumps, cnf.NegLit(v))
			}
		}

		res.SATCalls++
		st, err = checker.SolveErr(assumps)
		if err != nil {
			return res, err
		}
		if st == sat.Sat {
			// This Y assignment satisfies ∃X[F ∧ G], so Q must keep it:
			// exclude it from enumeration only.
			res.Blocked++
			block := make([]cnf.Lit, len(assumps))
			for i, a := range assumps {
				block[i] = a.Not()
			}
			emit(true, 0)
			if !enum.AddClause(block...) {
				return res, nil // enum hit a root conflict: enumeration done
			}
			continue
		}
		// F ∧ G is UNSAT under this Y assignment. The failed-assumption set
		// is a subset of the negated assumptions — directly a clause over Y
		// implied by F ∧ G — and it rules this assignment (at least) out.
		core := append([]cnf.Lit(nil), checker.FailedAssumptions()...)
		res.Q = append(res.Q, core)
		emit(true, 1)
		if len(core) == 0 {
			// UNSAT independent of the assumptions: F ∧ G itself is
			// unsatisfiable and Q is {∅}.
			return res, nil
		}
		if !enum.AddClause(core...) {
			return res, nil
		}
	}
}

// VerifyResult checks a PQE answer exhaustively over the free variables:
// for every Y assignment, Q(y) ∧ ∃X[G(y)] must agree with ∃X[(F ∧ G)(y)].
// It is exponential in |Y| and exists for tests and certification of small
// queries; it returns nil when the answer is exact.
func VerifyResult(q *problem.PQESplit, Q []cnf.Clause) error {
	yVars := q.FreeVars()
	if len(yVars) > 20 {
		return fmt.Errorf("pqe: %d free variables is too many to verify exhaustively", len(yVars))
	}
	for _, c := range Q {
		for _, l := range c {
			for _, x := range q.X {
				if l.Var() == x {
					return fmt.Errorf("pqe: answer clause %v mentions quantified variable %d", c, x)
				}
			}
		}
	}
	satUnder := func(cs [][]cnf.Clause, assumps []cnf.Lit) (bool, error) {
		s := sat.New()
		s.EnsureVars(q.NumVars)
		for _, set := range cs {
			for _, c := range set {
				s.AddClause(c...)
			}
		}
		st, err := s.SolveErr(assumps)
		if err != nil {
			return false, err
		}
		return st == sat.Sat, nil
	}
	n := len(yVars)
	for bits := 0; bits < 1<<n; bits++ {
		assumps := make([]cnf.Lit, n)
		for i, v := range yVars {
			if bits&(1<<i) != 0 {
				assumps[i] = cnf.PosLit(v)
			} else {
				assumps[i] = cnf.NegLit(v)
			}
		}
		lhs, err := satUnder([][]cnf.Clause{Q, q.G}, assumps)
		if err != nil {
			return err
		}
		rhs, err := satUnder([][]cnf.Clause{q.F, q.G}, assumps)
		if err != nil {
			return err
		}
		if lhs != rhs {
			return fmt.Errorf("pqe: Q ∧ ∃X[G] = %v but ∃X[F ∧ G] = %v under %v", lhs, rhs, assumps)
		}
	}
	return nil
}
