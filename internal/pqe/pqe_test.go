package pqe

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
	"repro/internal/problem"
	"repro/internal/trace"
)

func lit(d int) cnf.Lit { return cnf.LitFromDimacs(d) }

func clause(ds ...int) cnf.Clause {
	c := make(cnf.Clause, len(ds))
	for i, d := range ds {
		c[i] = lit(d)
	}
	return c
}

// solveAndVerify runs the query and checks the answer against the exhaustive
// oracle equivalence Q ∧ ∃X[G] ≡ ∃X[F ∧ G].
func solveAndVerify(t *testing.T, q *problem.PQESplit) *Result {
	t.Helper()
	res, err := Solve(q, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := VerifyResult(q, res.Q); err != nil {
		t.Fatalf("answer not equivalent: %v", err)
	}
	return res
}

// TestTakeOutForcesFree: X = {3}, F = (¬x3), G = (x3 ∨ y1). ∃x3[G] is a
// tautology over y1, but F forces x3 false, so F ∧ G needs y1: the answer
// must be equivalent to the unit clause (y1).
func TestTakeOutForcesFree(t *testing.T) {
	q := &problem.PQESplit{
		NumVars: 3,
		X:       []cnf.Var{3},
		F:       []cnf.Clause{clause(-3)},
		G:       []cnf.Clause{clause(3, 1)},
	}
	res := solveAndVerify(t, q)
	if len(res.Q) == 0 {
		t.Fatal("Q empty: F was dropped, not taken out of scope")
	}
}

// TestRedundantF: F is implied by G, so taking it out of scope adds nothing
// and Q must be vacuous (equivalent to true over Y).
func TestRedundantF(t *testing.T) {
	q := &problem.PQESplit{
		NumVars: 3,
		X:       []cnf.Var{3},
		F:       []cnf.Clause{clause(1, 3, -3)}, // tautological clause
		G:       []cnf.Clause{clause(1, -2), clause(2, -1)},
	}
	solveAndVerify(t, q)
}

// TestGlobalUnsat: F ∧ G unsatisfiable independent of Y — the answer is the
// empty clause.
func TestGlobalUnsat(t *testing.T) {
	q := &problem.PQESplit{
		NumVars: 2,
		X:       []cnf.Var{2},
		F:       []cnf.Clause{clause(2)},
		G:       []cnf.Clause{clause(-2)},
	}
	res := solveAndVerify(t, q)
	empty := false
	for _, c := range res.Q {
		if len(c) == 0 {
			empty = true
		}
	}
	if !empty {
		t.Fatalf("Q = %v, want the empty clause for a globally unsatisfiable split", res.Q)
	}
}

// TestEmptyX degenerates PQE to implication filtering: with nothing
// quantified, Q must make Q ∧ G equivalent to F ∧ G.
func TestEmptyX(t *testing.T) {
	q := &problem.PQESplit{
		NumVars: 2,
		F:       []cnf.Clause{clause(1)},
		G:       []cnf.Clause{clause(1, 2)},
	}
	solveAndVerify(t, q)
}

// TestNoFreeVars: everything is quantified; the only possible answers are
// "true" (empty Q) or "false" ({∅}).
func TestNoFreeVars(t *testing.T) {
	sat := &problem.PQESplit{
		NumVars: 2,
		X:       []cnf.Var{1, 2},
		F:       []cnf.Clause{clause(1, 2)},
		G:       []cnf.Clause{clause(-1, -2)},
	}
	res := solveAndVerify(t, sat)
	if len(res.Q) != 0 {
		t.Fatalf("Q = %v, want empty for a satisfiable fully quantified split", res.Q)
	}
	unsat := &problem.PQESplit{
		NumVars: 1,
		X:       []cnf.Var{1},
		F:       []cnf.Clause{clause(1)},
		G:       []cnf.Clause{clause(-1)},
	}
	res = solveAndVerify(t, unsat)
	if len(res.Q) != 1 || len(res.Q[0]) != 0 {
		t.Fatalf("Q = %v, want {∅}", res.Q)
	}
}

func TestInvalidSplitRejected(t *testing.T) {
	q := &problem.PQESplit{NumVars: 1, X: []cnf.Var{2}}
	if _, err := Solve(q, Options{}); err == nil {
		t.Fatal("out-of-range X accepted")
	}
}

func TestMaxRounds(t *testing.T) {
	// Needs at least a few rounds: every Y assignment satisfies both sides,
	// so each is blocked one at a time.
	q := &problem.PQESplit{
		NumVars: 4,
		X:       []cnf.Var{4},
		F:       []cnf.Clause{clause(4, 1, 2, 3)},
		G:       []cnf.Clause{clause(4, -4)},
	}
	_, err := Solve(q, Options{MaxRounds: 1})
	if !errors.Is(err, ErrRounds) {
		t.Fatalf("err = %v, want ErrRounds", err)
	}
}

func TestBudgetCancellation(t *testing.T) {
	b := budget.New(budget.Limits{})
	b.Cancel()
	q := &problem.PQESplit{
		NumVars: 2,
		X:       []cnf.Var{2},
		F:       []cnf.Clause{clause(-2)},
		G:       []cnf.Clause{clause(2, 1)},
	}
	if _, err := Solve(q, Options{Budget: b}); err == nil {
		t.Fatal("cancelled budget not reported")
	}
}

func TestTraceEvents(t *testing.T) {
	rec := trace.NewRecorder(0)
	q := &problem.PQESplit{
		NumVars: 3,
		X:       []cnf.Var{3},
		F:       []cnf.Clause{clause(-3)},
		G:       []cnf.Clause{clause(3, 1)},
	}
	res, err := Solve(q, Options{Trace: rec})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events emitted")
	}
	last := evs[len(evs)-1]
	if last.Stage != "pqe" || last.Pass != "pqe-round" {
		t.Fatalf("event tagged %s/%s", last.Stage, last.Pass)
	}
	if last.Counters["sat_calls"] != int64(res.SATCalls) {
		t.Fatalf("sat_calls counter %d, result says %d", last.Counters["sat_calls"], res.SATCalls)
	}
}

func TestFaultInjection(t *testing.T) {
	plan, err := faults.ParseSpec("pqe.solve:error:p=1", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)
	q := &problem.PQESplit{NumVars: 1, F: []cnf.Clause{clause(1)}}
	if _, err := Solve(q, Options{}); err == nil {
		t.Fatal("injected fault not surfaced")
	}
}

// TestRandomizedEquivalence cross-checks the CEGAR loop against the
// exhaustive oracle on random small splits.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const numVars = 6
	randClauses := func(n int) []cnf.Clause {
		out := make([]cnf.Clause, n)
		for i := range out {
			width := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, width)
			for len(c) < width {
				v := cnf.Var(1 + rng.Intn(numVars))
				l := cnf.PosLit(v)
				if rng.Intn(2) == 0 {
					l = l.Not()
				}
				c = append(c, l)
			}
			out[i] = c
		}
		return out
	}
	for i := 0; i < 60; i++ {
		var x []cnf.Var
		for v := cnf.Var(1); v <= numVars; v++ {
			if rng.Intn(3) == 0 {
				x = append(x, v)
			}
		}
		q := &problem.PQESplit{
			NumVars: numVars,
			X:       x,
			F:       randClauses(1 + rng.Intn(3)),
			G:       randClauses(1 + rng.Intn(4)),
		}
		res, err := Solve(q, Options{MaxRounds: 4096})
		if err != nil {
			t.Fatalf("case %d: Solve: %v (split %+v)", i, err, q)
		}
		if err := VerifyResult(q, res.Q); err != nil {
			t.Fatalf("case %d: %v (split %+v, Q %v)", i, err, q, res.Q)
		}
	}
}

// TestVerifyResultCatchesWrongAnswers makes sure the verifier itself has
// teeth: a clause over X and a flat-out wrong Q must both be rejected.
func TestVerifyResultCatchesWrongAnswers(t *testing.T) {
	q := &problem.PQESplit{
		NumVars: 3,
		X:       []cnf.Var{3},
		F:       []cnf.Clause{clause(-3)},
		G:       []cnf.Clause{clause(3, 1)},
	}
	if err := VerifyResult(q, []cnf.Clause{clause(3)}); err == nil {
		t.Fatal("answer clause over X accepted")
	}
	if err := VerifyResult(q, nil); err == nil {
		t.Fatal("empty Q accepted for a query whose answer is (y1)")
	}
	if err := VerifyResult(q, []cnf.Clause{clause(-1)}); err == nil {
		t.Fatal("wrong unit clause accepted")
	}
}
