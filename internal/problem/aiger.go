package problem

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// aigerFile is a parsed combinational AIGER circuit (ascii "aag" or binary
// "aig"), before DQBF encoding. Latches are rejected — the solver stack is
// combinational.
type aigerFile struct {
	maxVar  int
	inputs  []int    // input literals (even, nonzero)
	outputs []int    // output literals
	ands    [][3]int // lhs, rhs0, rhs1
	inSyms  map[int]string
	outSyms map[int]string
}

// parseAIGER parses either AIGER flavor, dispatching on the header magic.
func parseAIGER(data []byte) (*aigerFile, error) {
	nl := bytes.IndexByte(data, '\n')
	header := data
	rest := []byte(nil)
	if nl >= 0 {
		header, rest = data[:nl], data[nl+1:]
	}
	fields := strings.Fields(string(header))
	if len(fields) != 6 || (fields[0] != "aag" && fields[0] != "aig") {
		return nil, fmt.Errorf("aiger: malformed header (want \"aag|aig M I L O A\")")
	}
	nums := make([]int, 5)
	for i, tok := range fields[1:] {
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad header count %q", tok)
		}
		nums[i] = n
	}
	m, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: %d latches not supported (combinational circuits only)", nLatch)
	}
	if nIn+nAnd > m {
		return nil, fmt.Errorf("aiger: header declares %d variables for %d inputs + %d ands", m, nIn, nAnd)
	}
	af := &aigerFile{maxVar: m, inSyms: map[int]string{}, outSyms: map[int]string{}}
	var err error
	if fields[0] == "aag" {
		err = af.parseASCII(rest, nIn, nOut, nAnd)
	} else {
		err = af.parseBinary(rest, nIn, nOut, nAnd)
	}
	if err != nil {
		return nil, err
	}
	return af, af.validate()
}

// nextLine splits off the next line (no trailing newline kept).
func nextLine(data []byte) (line, rest []byte, ok bool) {
	if len(data) == 0 {
		return nil, nil, false
	}
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return data[:i], data[i+1:], true
	}
	return data, nil, true
}

func parseLits(line []byte, want int) ([]int, error) {
	fields := strings.Fields(string(line))
	if len(fields) != want {
		return nil, fmt.Errorf("aiger: want %d literals on line %q", want, string(line))
	}
	out := make([]int, want)
	for i, tok := range fields {
		n, err := strconv.Atoi(tok)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aiger: bad literal %q", tok)
		}
		out[i] = n
	}
	return out, nil
}

func (af *aigerFile) parseASCII(data []byte, nIn, nOut, nAnd int) error {
	var line []byte
	var ok bool
	for i := 0; i < nIn; i++ {
		if line, data, ok = nextLine(data); !ok {
			return fmt.Errorf("aiger: truncated input section (%d of %d inputs)", i, nIn)
		}
		lits, err := parseLits(line, 1)
		if err != nil {
			return err
		}
		af.inputs = append(af.inputs, lits[0])
	}
	for i := 0; i < nOut; i++ {
		if line, data, ok = nextLine(data); !ok {
			return fmt.Errorf("aiger: truncated output section (%d of %d outputs)", i, nOut)
		}
		lits, err := parseLits(line, 1)
		if err != nil {
			return err
		}
		af.outputs = append(af.outputs, lits[0])
	}
	for i := 0; i < nAnd; i++ {
		if line, data, ok = nextLine(data); !ok {
			return fmt.Errorf("aiger: truncated and section (%d of %d ands)", i, nAnd)
		}
		lits, err := parseLits(line, 3)
		if err != nil {
			return err
		}
		af.ands = append(af.ands, [3]int{lits[0], lits[1], lits[2]})
	}
	return af.parseSymbols(data)
}

func (af *aigerFile) parseBinary(data []byte, nIn, nOut, nAnd int) error {
	// Inputs are implicit in the binary format: literals 2, 4, ..., 2*nIn.
	for i := 1; i <= nIn; i++ {
		af.inputs = append(af.inputs, 2*i)
	}
	var line []byte
	var ok bool
	for i := 0; i < nOut; i++ {
		if line, data, ok = nextLine(data); !ok {
			return fmt.Errorf("aiger: truncated output section (%d of %d outputs)", i, nOut)
		}
		lits, err := parseLits(line, 1)
		if err != nil {
			return err
		}
		af.outputs = append(af.outputs, lits[0])
	}
	// And definitions: lhs is implicit (2*(nIn+i+1)); the two right-hand
	// sides are delta-encoded LEB128 against it (lhs > rhs0 >= rhs1).
	pos := 0
	readDelta := func() (int, error) {
		x, shift := 0, 0
		for {
			if pos >= len(data) {
				return 0, io.ErrUnexpectedEOF
			}
			b := data[pos]
			pos++
			x |= int(b&0x7f) << shift
			if b&0x80 == 0 {
				return x, nil
			}
			shift += 7
			if shift > 35 {
				return 0, fmt.Errorf("aiger: delta code overflows")
			}
		}
	}
	for i := 0; i < nAnd; i++ {
		lhs := 2 * (nIn + i + 1)
		d0, err := readDelta()
		if err != nil {
			return fmt.Errorf("aiger: truncated and section (%d of %d ands): %v", i, nAnd, err)
		}
		d1, err := readDelta()
		if err != nil {
			return fmt.Errorf("aiger: truncated and section (%d of %d ands): %v", i, nAnd, err)
		}
		rhs0 := lhs - d0
		rhs1 := rhs0 - d1
		if d0 <= 0 || rhs1 < 0 {
			return fmt.Errorf("aiger: and %d violates lhs > rhs0 >= rhs1", i)
		}
		af.ands = append(af.ands, [3]int{lhs, rhs0, rhs1})
	}
	return af.parseSymbols(data[pos:])
}

// parseSymbols reads the optional symbol table ("i<pos> <name>" /
// "o<pos> <name>" lines) up to the optional comment section ("c" line).
func (af *aigerFile) parseSymbols(data []byte) error {
	for {
		line, rest, ok := nextLine(data)
		if !ok {
			return nil
		}
		data = rest
		s := strings.TrimRight(string(line), "\r")
		if s == "" {
			continue
		}
		if s == "c" {
			return nil // comment section: everything after is free-form
		}
		sp := strings.IndexByte(s, ' ')
		if sp <= 1 || (s[0] != 'i' && s[0] != 'o') {
			return fmt.Errorf("aiger: malformed symbol line %q", s)
		}
		pos, err := strconv.Atoi(s[1:sp])
		if err != nil || pos < 0 {
			return fmt.Errorf("aiger: bad symbol position in %q", s)
		}
		name := s[sp+1:]
		if name == "" {
			return fmt.Errorf("aiger: empty symbol name in %q", s)
		}
		switch s[0] {
		case 'i':
			if pos >= len(af.inputs) {
				return fmt.Errorf("aiger: input symbol position %d out of range (%d inputs)", pos, len(af.inputs))
			}
			if _, dup := af.inSyms[pos]; dup {
				return fmt.Errorf("aiger: duplicate symbol for input %d", pos)
			}
			af.inSyms[pos] = name
		case 'o':
			if pos >= len(af.outputs) {
				return fmt.Errorf("aiger: output symbol position %d out of range (%d outputs)", pos, len(af.outputs))
			}
			if _, dup := af.outSyms[pos]; dup {
				return fmt.Errorf("aiger: duplicate symbol for output %d", pos)
			}
			af.outSyms[pos] = name
		}
	}
}

// validate checks structural invariants shared by both flavors: inputs are
// even nonzero literals, every variable is defined exactly once (input or
// and), definitions stay within maxVar, and every referenced literal is a
// constant, an input, or a defined and gate.
func (af *aigerFile) validate() error {
	defined := make(map[int]bool, len(af.inputs)+len(af.ands)) // by variable index
	for i, l := range af.inputs {
		if l <= 1 || l%2 != 0 {
			return fmt.Errorf("aiger: input %d literal %d must be a positive even literal", i, l)
		}
		v := l / 2
		if v > af.maxVar {
			return fmt.Errorf("aiger: input literal %d exceeds declared maximum variable %d", l, af.maxVar)
		}
		if defined[v] {
			return fmt.Errorf("aiger: variable %d defined twice", v)
		}
		defined[v] = true
	}
	for i, a := range af.ands {
		lhs := a[0]
		if lhs <= 1 || lhs%2 != 0 {
			return fmt.Errorf("aiger: and %d lhs %d must be a positive even literal", i, lhs)
		}
		v := lhs / 2
		if v > af.maxVar {
			return fmt.Errorf("aiger: and lhs %d exceeds declared maximum variable %d", lhs, af.maxVar)
		}
		if defined[v] {
			return fmt.Errorf("aiger: variable %d defined twice", v)
		}
		defined[v] = true
	}
	ref := func(l int, what string) error {
		if l < 0 || l/2 > af.maxVar {
			return fmt.Errorf("aiger: %s literal %d out of range (maximum variable %d)", what, l, af.maxVar)
		}
		if l > 1 && !defined[l/2] {
			return fmt.Errorf("aiger: %s literal %d references undefined variable %d", what, l, l/2)
		}
		return nil
	}
	for _, a := range af.ands {
		if err := ref(a[1], "and rhs"); err != nil {
			return err
		}
		if err := ref(a[2], "and rhs"); err != nil {
			return err
		}
	}
	for _, o := range af.outputs {
		if err := ref(o, "output"); err != nil {
			return err
		}
	}
	return nil
}

// writeAAG serializes the circuit in the normalized ascii form: header,
// inputs, outputs, ands, then input/output symbols in position order. The
// form is a fixpoint — parsing the output and writing it again is
// byte-identical.
func (af *aigerFile) writeAAG(w io.Writer) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "aag %d %d 0 %d %d\n", af.maxVar, len(af.inputs), len(af.outputs), len(af.ands))
	for _, l := range af.inputs {
		fmt.Fprintf(&b, "%d\n", l)
	}
	for _, l := range af.outputs {
		fmt.Fprintf(&b, "%d\n", l)
	}
	for _, a := range af.ands {
		fmt.Fprintf(&b, "%d %d %d\n", a[0], a[1], a[2])
	}
	writeSyms := func(tag byte, syms map[int]string) {
		pos := make([]int, 0, len(syms))
		for p := range syms {
			pos = append(pos, p)
		}
		sort.Ints(pos)
		for _, p := range pos {
			fmt.Fprintf(&b, "%c%d %s\n", tag, p, syms[p])
		}
	}
	writeSyms('i', af.inSyms)
	writeSyms('o', af.outSyms)
	_, err := w.Write(b.Bytes())
	return err
}

// universalInputName reports whether an input symbol marks the input as
// universally quantified: the "a_", "u_", or "forall_" naming convention.
// Unnamed inputs and all other names quantify existentially (over all
// universal inputs), matching the BENCH free-signal semantics.
func universalInputName(name string) bool {
	return strings.HasPrefix(name, "a_") || strings.HasPrefix(name, "u_") ||
		strings.HasPrefix(name, "forall_")
}

// toProblem Tseitin-encodes the circuit as a Problem: each and gate becomes
// three clauses over variables numbered as in the AIGER file, outputs become
// unit clauses (all constrained true), inputs named with a universal prefix
// (see universalInputName) quantify universally, and every other variable —
// remaining inputs and the and gates — is existential over all universals.
func (af *aigerFile) toProblem() (*Problem, error) {
	f := dqbf.New()
	f.Matrix.NumVars = af.maxVar
	var univ, rest []cnf.Var
	for i, l := range af.inputs {
		v := cnf.Var(l / 2)
		if universalInputName(af.inSyms[i]) {
			univ = append(univ, v)
		} else {
			rest = append(rest, v)
		}
	}
	for _, v := range univ {
		f.AddUniversal(v)
	}
	for _, v := range rest {
		f.AddExistential(v, univ...)
	}
	for _, a := range af.ands {
		f.AddExistential(cnf.Var(a[0]/2), univ...)
	}

	// The constant-true variable, allocated lazily for literals 0/1.
	var constVar cnf.Var
	constTrue := func() cnf.Lit {
		if constVar == 0 {
			constVar = f.Matrix.NewVar()
			f.AddExistential(constVar, univ...)
			f.Matrix.AddClause(cnf.PosLit(constVar))
		}
		return cnf.PosLit(constVar)
	}
	lit := func(l int) cnf.Lit {
		if l <= 1 {
			t := constTrue()
			if l == 0 {
				return t.Not()
			}
			return t
		}
		b := cnf.PosLit(cnf.Var(l / 2))
		if l&1 == 1 {
			b = b.Not()
		}
		return b
	}
	for _, a := range af.ands {
		g := cnf.PosLit(cnf.Var(a[0] / 2))
		r0, r1 := lit(a[1]), lit(a[2])
		f.Matrix.AddClause(g.Not(), r0)
		f.Matrix.AddClause(g.Not(), r1)
		f.Matrix.AddClause(g, r0.Not(), r1.Not())
	}
	for _, o := range af.outputs {
		f.Matrix.AddClause(lit(o))
	}

	p := FromDQBF(f)
	p.Format = FormatAIGER
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
