package problem

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// FromCircuit encodes a combinational netlist as a Problem: every primary
// output is constrained true, primary inputs become universal variables (in
// declaration order), free (undriven) signals become existential variables
// depending on all inputs — "is there a driver function making the outputs
// hold for every input?" — and the Tseitin auxiliaries of internal gates
// are existentials over all inputs as well. A complete circuit (no free
// signals) therefore asks whether its outputs are tautologies.
//
// The encoding is linear (every dependency set is the full universal set),
// so the resulting problem is KindQBF.
func FromCircuit(c *circuit.Circuit) (*Problem, error) {
	f := dqbf.New()
	m := f.Matrix
	sig := make(map[int]cnf.Var, len(c.Inputs))
	for _, id := range c.Inputs {
		v := m.NewVar()
		sig[id] = v
		f.AddUniversal(v)
	}
	frees := c.FreeSignals()
	for _, id := range frees {
		sig[id] = m.NewVar()
	}
	enc := c.ToCNF(m, func(id int) cnf.Var {
		v, ok := sig[id]
		if !ok {
			panic(fmt.Sprintf("problem: signal %d has no variable", id))
		}
		return v
	})
	univ := append([]cnf.Var(nil), f.Univ...)
	for _, id := range frees {
		f.AddExistential(sig[id], univ...)
	}
	for _, v := range enc.GateVars {
		f.AddExistential(v, univ...)
	}
	for _, out := range c.Outputs {
		m.AddClause(enc.SigLit[out])
	}
	p := FromDQBF(f)
	p.Format = FormatBENCH
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
