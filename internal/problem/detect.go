package problem

import (
	"bytes"
	"fmt"
	"mime"
	"path/filepath"
	"strings"
)

// Detect sniffs the input format from the first bytes of data. The rules, in
// order of precedence:
//
//   - a header line "aag ..." or "aig ..." is AIGER (ascii / binary);
//   - a problem line "p pqe ..." is the PQE query dialect;
//   - a problem line "p cnf ..." is DQDIMACS when a "d" quantifier line
//     follows, QDIMACS when only "a"/"e" lines (or none) do;
//   - a line containing "INPUT(", "OUTPUT(", or a "name = GATE(...)"
//     assignment is BENCH;
//   - "#" comment lines are skipped (BENCH); "c" comment lines are skipped
//     (DIMACS family) unless the line itself looks like a BENCH assignment.
//
// Detect never reads past the first few significant lines, so it is safe on
// large inputs.
func Detect(data []byte) (Format, error) {
	rest := data
	sawCNF := false
	for lineNo := 0; len(rest) > 0 && lineNo < 1<<20; lineNo++ {
		var line []byte
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if isBenchLine(line) {
			return FormatBENCH, nil
		}
		if line[0] == '#' { // BENCH comment: keep scanning for a gate line
			continue
		}
		fields := strings.Fields(string(line))
		switch fields[0] {
		case "aag", "aig":
			return FormatAIGER, nil
		case "p":
			if len(fields) >= 2 && fields[1] == "pqe" {
				return FormatPQE, nil
			}
			if len(fields) >= 2 && fields[1] == "cnf" {
				sawCNF = true
				continue
			}
			return "", fmt.Errorf("problem: unrecognized problem line %q", string(line))
		case "d":
			if sawCNF {
				return FormatDQDIMACS, nil
			}
		case "a", "e":
			if sawCNF {
				// Keep scanning: a later "d" line upgrades to DQDIMACS.
				continue
			}
		}
		if sawCNF && fields[0] != "c" && fields[0] != "a" && fields[0] != "e" && fields[0] != "d" {
			// First clause line with no "d" seen: plain QDIMACS.
			return FormatQDIMACS, nil
		}
		if !sawCNF && fields[0] != "c" {
			return "", fmt.Errorf("problem: unrecognized input (line %q)", string(line))
		}
	}
	if sawCNF {
		// A CNF with an empty matrix and no "d" lines: QDIMACS.
		return FormatQDIMACS, nil
	}
	return "", fmt.Errorf("problem: empty input")
}

// isBenchLine reports whether a trimmed line is unambiguously BENCH: an
// INPUT/OUTPUT declaration or a gate assignment "name = TYPE(...)". The
// check runs before the DIMACS comment rule because a BENCH gate named "c"
// ("c = AND(a, b)") must not be skipped as a DIMACS comment.
func isBenchLine(line []byte) bool {
	s := strings.TrimSpace(string(line))
	up := strings.ToUpper(s)
	if strings.HasPrefix(up, "INPUT(") || strings.HasPrefix(up, "OUTPUT(") {
		return true
	}
	if eq := strings.IndexByte(s, '='); eq > 0 {
		rhs := strings.TrimSpace(s[eq+1:])
		if op := strings.IndexByte(rhs, '('); op > 0 && strings.HasSuffix(rhs, ")") {
			return true
		}
	}
	return false
}

// contentTypeFormats maps MIME types accepted by the hqsd ingestion
// endpoints to formats. Generic types (text/plain, application/octet-stream)
// are absent on purpose: they mean "sniff".
var contentTypeFormats = map[string]Format{
	"application/x-dqdimacs": FormatDQDIMACS,
	"application/x-qdimacs":  FormatQDIMACS,
	"application/x-aiger":    FormatAIGER,
	"application/x-bench":    FormatBENCH,
	"application/x-pqe":      FormatPQE,
}

// FormatFromContentType maps an HTTP Content-Type header to a format hint.
// Unknown, generic, or empty types return "" (autodetect); the header never
// causes a request to fail on its own.
func FormatFromContentType(ct string) Format {
	if ct == "" {
		return ""
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ""
	}
	return contentTypeFormats[strings.ToLower(mt)]
}

// FormatFromPath maps a file extension to a format hint; unknown extensions
// return "" (autodetect).
func FormatFromPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".dqdimacs", ".dqbf":
		return FormatDQDIMACS
	case ".qdimacs", ".qbf":
		return FormatQDIMACS
	case ".aag", ".aig":
		return FormatAIGER
	case ".bench":
		return FormatBENCH
	case ".pqe":
		return FormatPQE
	default:
		return ""
	}
}
