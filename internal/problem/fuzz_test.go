package problem

import (
	"bytes"
	"testing"
)

// FuzzAIGERReader drives the AIGER reader (both flavors) with arbitrary
// bytes. The invariants: parsing never panics; any accepted input
// serializes to the normalized ascii form, which re-parses and re-serializes
// byte-identically (read/write fixpoint); and the DQBF encoding of an
// accepted circuit passes Validate whenever the encoding succeeds.
func FuzzAIGERReader(f *testing.F) {
	seeds := [][]byte{
		[]byte("aag 3 2 0 1 1\n2\n4\n6\n6 4 2\ni0 a_x\no0 out\n"),
		[]byte("aig 3 2 0 1 1\n6\n\x02\x02\ni0 a_x\no0 out\n"),
		[]byte("aag 0 0 0 0 0\n"),
		[]byte("aag 1 1 0 2 0\n2\n1\n0\n"),
		[]byte("aag 5 2 0 1 3\n2\n4\n10\n6 2 4\n8 3 5\n10 7 9\nc\nfree-form comment\n"),
		[]byte("agg 1 1 0 0 0\n2\n"),
		[]byte("aig 2 1 0 0 1\n\xff\xff\xff\xff\xff\xff\x01\x00"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		af, err := parseAIGER(data)
		if err != nil {
			return // rejected cleanly
		}
		var norm bytes.Buffer
		if err := af.writeAAG(&norm); err != nil {
			t.Fatalf("writeAAG on accepted input: %v", err)
		}
		af2, err := parseAIGER(norm.Bytes())
		if err != nil {
			t.Fatalf("normalized form rejected: %v\ninput: %q\nnormalized: %q", err, data, norm.Bytes())
		}
		var again bytes.Buffer
		if err := af2.writeAAG(&again); err != nil {
			t.Fatalf("writeAAG on normalized form: %v", err)
		}
		if !bytes.Equal(norm.Bytes(), again.Bytes()) {
			t.Fatalf("read/write fixpoint violated:\nfirst:  %q\nsecond: %q", norm.Bytes(), again.Bytes())
		}
		p, err := af.toProblem()
		if err != nil {
			return // encoding may reject (e.g. pathological quantifier splits)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("encoded problem fails validation: %v\ninput: %q", err, data)
		}
		if p.CanonicalHash() == "" {
			t.Fatal("empty canonical hash")
		}
	})
}
