package problem

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// CanonicalFormulaHash returns a hex-encoded SHA-256 digest of a canonical
// serialization of f, suitable as a result-cache key: two parses of the same
// instance hash identically even when prefix lines, clause order, or the
// literal order inside clauses differ — and, because every input format
// normalizes into the same Formula, identically across input formats too.
// The digest covers the universal set, each existential with its dependency
// set, and the matrix with duplicate literals removed and clauses sorted; it
// deliberately ignores cosmetic attributes such as the declared variable
// count. (This is the hash the service result cache and the persistent store
// have always keyed on; the bytes hashed are unchanged, so store entries
// written by earlier releases stay addressable.)
func CanonicalFormulaHash(f *dqbf.Formula) string {
	h := sha256.New()
	writeInt := func(v int64) { hashInt(h, v) }
	writeVars := func(vs []cnf.Var) { hashVars(h, vs) }

	h.Write([]byte("univ"))
	writeVars(f.Univ)

	h.Write([]byte("exist"))
	exist := append([]cnf.Var(nil), f.Exist...)
	sort.Slice(exist, func(i, j int) bool { return exist[i] < exist[j] })
	writeInt(int64(len(exist)))
	for _, y := range exist {
		writeInt(int64(y))
		writeVars(f.Deps[y].Vars())
	}

	h.Write([]byte("matrix"))
	hashClauses(h, f.Matrix.Clauses)

	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalHash returns the canonical cache key of the problem. Formula
// problems hash exactly as CanonicalFormulaHash — the kind and input format
// do not participate, which is the point: the same instance ingested as
// DQDIMACS, QDIMACS, AIGER, or BENCH shares one key. PQE problems hash into
// a domain-separated space (an F/G split is a different question than the
// conjoined formula, so the keys must never collide).
func (p *Problem) CanonicalHash() string {
	if p.Kind == KindPQE {
		return p.PQE.CanonicalHash()
	}
	return CanonicalFormulaHash(p.Formula)
}

// CanonicalHash returns the canonical key of a PQE query: domain-separated
// from formula hashes, covering X (sorted) and the two clause sets
// (normalized independently — F and G are not interchangeable).
func (q *PQESplit) CanonicalHash() string {
	h := sha256.New()
	h.Write([]byte("pqe"))
	hashVars(h, q.X)
	h.Write([]byte("f"))
	hashClauses(h, q.F)
	h.Write([]byte("g"))
	hashClauses(h, q.G)
	return hex.EncodeToString(h.Sum(nil))
}

func hashInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func hashVars(h hash.Hash, vs []cnf.Var) {
	sorted := append([]cnf.Var(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	hashInt(h, int64(len(sorted)))
	for _, v := range sorted {
		hashInt(h, int64(v))
	}
}

// hashClauses digests a clause set order-insensitively: literals sorted and
// deduplicated within each clause, clauses sorted lexicographically.
func hashClauses(h hash.Hash, cs []cnf.Clause) {
	clauses := make([][]cnf.Lit, 0, len(cs))
	for _, c := range cs {
		lits := append([]cnf.Lit(nil), c...)
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
		dedup := lits[:0]
		for i, l := range lits {
			if i == 0 || l != lits[i-1] {
				dedup = append(dedup, l)
			}
		}
		clauses = append(clauses, dedup)
	}
	sort.Slice(clauses, func(i, j int) bool { return lessLits(clauses[i], clauses[j]) })
	hashInt(h, int64(len(clauses)))
	for _, c := range clauses {
		hashInt(h, int64(len(c)))
		for _, l := range c {
			hashInt(h, int64(l))
		}
	}
}

// lessLits orders clauses lexicographically by their literal sequence.
func lessLits(a, b []cnf.Lit) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
