package problem

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cnf"
)

// parsePQE reads the PQE query dialect, a DIMACS-shaped serialization of
// ∃X[F ∧ G]:
//
//	p pqe <vars> <nf> <ng>
//	e x1 x2 ... 0        quantified (X) variables; repeatable
//	<nf clauses of F, then ng clauses of G>
//
// The reader mirrors the strict DQDIMACS reader: one problem line first,
// 0-terminated "e" lines before the clauses, literals within the declared
// range, and exactly nf+ng clauses.
func parsePQE(data []byte) (*Problem, error) {
	q := &PQESplit{}
	nf, ng := -1, -1
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var clauses []cnf.Clause
	var cur cnf.Clause
	lineNo := 0
	prefixDone := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		if nf < 0 && fields[0] != "p" {
			return nil, fmt.Errorf("pqe line %d: %q before problem line", lineNo, fields[0])
		}
		switch fields[0] {
		case "p":
			if nf >= 0 {
				return nil, fmt.Errorf("pqe line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 5 || fields[1] != "pqe" {
				return nil, fmt.Errorf("pqe line %d: malformed problem line (want \"p pqe <vars> <nf> <ng>\")", lineNo)
			}
			nums := make([]int, 3)
			for i, tok := range fields[2:] {
				n, err := strconv.Atoi(tok)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("pqe line %d: bad count %q", lineNo, tok)
				}
				nums[i] = n
			}
			q.NumVars, nf, ng = nums[0], nums[1], nums[2]
		case "e":
			if prefixDone {
				return nil, fmt.Errorf("pqe line %d: quantifier line after clauses", lineNo)
			}
			vars, err := parsePQEVarLine(fields[1:], lineNo, q.NumVars)
			if err != nil {
				return nil, err
			}
			q.X = append(q.X, vars...)
		default:
			prefixDone = true
			for _, tok := range fields {
				d, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("pqe line %d: bad literal %q", lineNo, tok)
				}
				if d == 0 {
					clauses = append(clauses, cur)
					cur = nil
					continue
				}
				l := cnf.LitFromDimacs(d)
				if int(l.Var()) > q.NumVars {
					return nil, fmt.Errorf("pqe line %d: literal %d out of range (declared %d variables)",
						lineNo, d, q.NumVars)
				}
				cur = append(cur, l)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	if nf < 0 {
		return nil, fmt.Errorf("pqe: missing problem line")
	}
	if len(clauses) != nf+ng {
		return nil, fmt.Errorf("pqe: %d clauses, problem line declares %d F + %d G", len(clauses), nf, ng)
	}
	q.F = clauses[:nf:nf]
	q.G = clauses[nf:]
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &Problem{Kind: KindPQE, Format: FormatPQE, PQE: q}, nil
}

func parsePQEVarLine(toks []string, lineNo, numVars int) ([]cnf.Var, error) {
	var out []cnf.Var
	for i, tok := range toks {
		d, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("pqe line %d: bad variable %q", lineNo, tok)
		}
		if d == 0 {
			if i != len(toks)-1 {
				return nil, fmt.Errorf("pqe line %d: trailing tokens after terminating 0", lineNo)
			}
			return out, nil
		}
		if d < 0 {
			return nil, fmt.Errorf("pqe line %d: negative variable %d in prefix", lineNo, d)
		}
		if d > numVars {
			return nil, fmt.Errorf("pqe line %d: variable %d out of range (declared %d variables)", lineNo, d, numVars)
		}
		out = append(out, cnf.Var(d))
	}
	return nil, fmt.Errorf("pqe line %d: quantifier line not terminated by 0", lineNo)
}

// WritePQE serializes the split in the dialect parsePQE reads; the output
// round-trips exactly.
func (q *PQESplit) WritePQE(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p pqe %d %d %d\n", q.NumVars, len(q.F), len(q.G))
	if len(q.X) > 0 {
		fmt.Fprint(bw, "e")
		for _, x := range q.X {
			fmt.Fprintf(bw, " %d", x)
		}
		fmt.Fprintln(bw, " 0")
	}
	for _, cs := range [][]cnf.Clause{q.F, q.G} {
		for _, c := range cs {
			for _, l := range c {
				fmt.Fprintf(bw, "%d ", l.Dimacs())
			}
			fmt.Fprintln(bw, "0")
		}
	}
	return bw.Flush()
}
