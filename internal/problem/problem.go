// Package problem is the unified ingestion layer of the solver stack: one
// Problem type carrying the matrix, the quantifier structure, and the input
// provenance (format, source), with format autodetection and readers for the
// four accepted input languages — DQDIMACS, QDIMACS, AIGER (ascii and
// binary), and ISCAS-85-style BENCH netlists — plus the PQE dialect for
// partial-quantifier-elimination queries.
//
// Every consumer of a parsed instance (core.Solve, the service scheduler,
// the hqsd daemon, and the hqs/dqbfinfo/pec2dqbf/dqbfbench CLIs) routes
// through this package, so a new input language is one reader here instead
// of five call-site patches. The canonical cache/store hash is computed on
// the normalized Problem, which makes cache keys stable across input
// formats: the same circuit submitted as BENCH and as its DQDIMACS encoding
// shares one cache and store entry.
package problem

import (
	"fmt"
	"sort"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// Kind classifies what question a Problem asks.
type Kind int

const (
	// KindDQBF is a dependency QBF: a Henkin prefix that is not expressible
	// as a linear QBF prefix.
	KindDQBF Kind = iota
	// KindQBF is a DQBF whose prefix is linear (Theorem 3): plain
	// QDIMACS/QBF inputs and all circuit encodings land here.
	KindQBF
	// KindPQE is a partial-quantifier-elimination query ∃X[F ∧ G]: compute a
	// clause set Q over the free variables with Q ∧ ∃X[G] ≡ ∃X[F ∧ G].
	KindPQE
)

func (k Kind) String() string {
	switch k {
	case KindDQBF:
		return "dqbf"
	case KindQBF:
		return "qbf"
	case KindPQE:
		return "pqe"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Format identifies the input language a Problem was read from.
type Format string

const (
	// FormatDQDIMACS is the DQBF extension of QDIMACS ("d" lines).
	FormatDQDIMACS Format = "dqdimacs"
	// FormatQDIMACS is plain prenex QBF in DIMACS form (a/e lines only).
	FormatQDIMACS Format = "qdimacs"
	// FormatAIGER is an and-inverter-graph circuit, ascii ("aag") or binary
	// ("aig"); outputs are constrained true, inputs quantify by symbol name.
	FormatAIGER Format = "aiger"
	// FormatBENCH is an ISCAS-85-style netlist; outputs are constrained
	// true, primary inputs are universal, free (undriven) signals are
	// existential over all inputs.
	FormatBENCH Format = "bench"
	// FormatPQE is the PQE query dialect: "p pqe <vars> <nf> <ng>", "e" lines
	// declaring X, then nf F-clauses followed by ng G-clauses.
	FormatPQE Format = "pqe"
)

// PQESplit is the payload of a KindPQE problem: the query ∃X[F ∧ G] over
// variables 1..NumVars, asking for F to be taken out of the quantifier
// scope. Variables outside X are the free (Y) variables the answer Q ranges
// over.
type PQESplit struct {
	// NumVars is the declared variable count (X and Y combined).
	NumVars int
	// X lists the quantified variables.
	X []cnf.Var
	// F and G are the two clause sets of the split ∃X[F ∧ G].
	F []cnf.Clause
	G []cnf.Clause
}

// Clone returns a deep copy of the split.
func (q *PQESplit) Clone() *PQESplit {
	c := &PQESplit{NumVars: q.NumVars, X: append([]cnf.Var(nil), q.X...)}
	c.F = cloneClauses(q.F)
	c.G = cloneClauses(q.G)
	return c
}

func cloneClauses(cs []cnf.Clause) []cnf.Clause {
	out := make([]cnf.Clause, len(cs))
	for i, c := range cs {
		out[i] = append(cnf.Clause(nil), c...)
	}
	return out
}

// Validate checks the split: X variables and clause literals must lie in
// 1..NumVars, and X must be duplicate-free.
func (q *PQESplit) Validate() error {
	seen := make(map[cnf.Var]bool, len(q.X))
	for _, x := range q.X {
		if int(x) < 1 || int(x) > q.NumVars {
			return fmt.Errorf("problem: PQE variable %d out of range (declared %d variables)", x, q.NumVars)
		}
		if seen[x] {
			return fmt.Errorf("problem: duplicate PQE variable %d", x)
		}
		seen[x] = true
	}
	check := func(cs []cnf.Clause, what string) error {
		for _, c := range cs {
			for _, l := range c {
				if int(l.Var()) < 1 || int(l.Var()) > q.NumVars {
					return fmt.Errorf("problem: %s-clause literal %d out of range (declared %d variables)",
						what, l.Dimacs(), q.NumVars)
				}
			}
		}
		return nil
	}
	if err := check(q.F, "F"); err != nil {
		return err
	}
	return check(q.G, "G")
}

// FreeVars returns the Y variables — those occurring in F or G but not in X
// — in ascending order.
func (q *PQESplit) FreeVars() []cnf.Var {
	inX := make(map[cnf.Var]bool, len(q.X))
	for _, x := range q.X {
		inX[x] = true
	}
	seen := make(map[cnf.Var]bool)
	var out []cnf.Var
	for _, cs := range [][]cnf.Clause{q.F, q.G} {
		for _, c := range cs {
			for _, l := range c {
				v := l.Var()
				if !inX[v] && !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Problem is one parsed solver input: a DQBF/QBF formula or a PQE split,
// together with its provenance.
type Problem struct {
	// Kind classifies the question (DQBF, QBF, or PQE).
	Kind Kind
	// Format is the input language the problem was read from.
	Format Format
	// Source names where the bytes came from (a file path, "stdin", "http");
	// informational only — it does not participate in the canonical hash.
	Source string
	// Formula is the parsed formula for KindDQBF/KindQBF problems; nil for
	// KindPQE.
	Formula *dqbf.Formula
	// PQE is the query split for KindPQE problems; nil otherwise.
	PQE *PQESplit
}

// FromDQBF wraps an already-parsed formula as a Problem, classifying its
// kind by prefix linearity (Theorem 3). The formula is referenced, not
// cloned. The format defaults to DQDIMACS.
func FromDQBF(f *dqbf.Formula) *Problem {
	p := &Problem{Kind: KindDQBF, Format: FormatDQDIMACS, Formula: f}
	if dqbf.HasQBFPrefix(f) {
		p.Kind = KindQBF
	}
	return p
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	c := &Problem{Kind: p.Kind, Format: p.Format, Source: p.Source}
	if p.Formula != nil {
		c.Formula = p.Formula.Clone()
	}
	if p.PQE != nil {
		c.PQE = p.PQE.Clone()
	}
	return c
}

// Validate checks internal consistency: formula problems must carry a valid
// formula, PQE problems a valid split.
func (p *Problem) Validate() error {
	switch p.Kind {
	case KindDQBF, KindQBF:
		if p.Formula == nil {
			return fmt.Errorf("problem: %s problem carries no formula", p.Kind)
		}
		return p.Formula.Validate()
	case KindPQE:
		if p.PQE == nil {
			return fmt.Errorf("problem: pqe problem carries no query split")
		}
		return p.PQE.Validate()
	default:
		return fmt.Errorf("problem: unknown kind %d", int(p.Kind))
	}
}
