package problem

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

const dqdimacsExample = `c paper example 1
p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
`

const qdimacsExample = `p cnf 3 2
a 1 0
e 2 3 0
1 2 0
-1 3 0
`

const benchExample = `INPUT(a)
OUTPUT(o)
o = XNOR(a, f)
`

const aagExample = `aag 3 2 0 1 1
2
4
6
6 4 2
i0 a_x
o0 out
`

const pqeExample = `p pqe 3 1 1
e 3 0
-3 0
3 1 0
`

func TestDetect(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  Format
	}{
		{"dqdimacs", dqdimacsExample, FormatDQDIMACS},
		{"qdimacs", qdimacsExample, FormatQDIMACS},
		{"qdimacs no prefix", "p cnf 1 1\n1 0\n", FormatQDIMACS},
		{"qdimacs empty matrix", "p cnf 0 0\n", FormatQDIMACS},
		{"aiger ascii", aagExample, FormatAIGER},
		{"aiger binary", "aig 0 0 0 0 0\n", FormatAIGER},
		{"bench", benchExample, FormatBENCH},
		{"bench after comment", "# netlist\nINPUT(a)\n", FormatBENCH},
		{"bench gate named c", "c = AND(a, b)\n", FormatBENCH},
		{"bench lowercase decl", "input(a)\noutput(a)\n", FormatBENCH},
		{"pqe", pqeExample, FormatPQE},
		{"dimacs comments first", "c hello\nc world\np cnf 1 1\n1 0\n", FormatQDIMACS},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Detect([]byte(tc.input))
			if err != nil {
				t.Fatalf("Detect: %v", err)
			}
			if got != tc.want {
				t.Fatalf("Detect = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestDetectErrors(t *testing.T) {
	for _, input := range []string{
		"",
		"\n\n",
		"c only comments\n",
		"p sat 3\n",
		"garbage line\n",
	} {
		if f, err := Detect([]byte(input)); err == nil {
			t.Errorf("Detect(%q) = %q, want error", input, f)
		}
	}
}

func TestParseBytesKinds(t *testing.T) {
	cases := []struct {
		name   string
		input  string
		format Format
		kind   Kind
	}{
		{"dqdimacs", dqdimacsExample, FormatDQDIMACS, KindDQBF},
		{"qdimacs", qdimacsExample, FormatQDIMACS, KindQBF},
		{"aiger", aagExample, FormatAIGER, KindQBF},
		{"bench", benchExample, FormatBENCH, KindQBF},
		{"pqe", pqeExample, FormatPQE, KindPQE},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseBytes([]byte(tc.input), "")
			if err != nil {
				t.Fatalf("ParseBytes: %v", err)
			}
			if p.Format != tc.format || p.Kind != tc.kind {
				t.Fatalf("format/kind = %v/%v, want %v/%v", p.Format, p.Kind, tc.format, tc.kind)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tc.kind == KindPQE {
				if p.PQE == nil || p.Formula != nil {
					t.Fatalf("PQE problem payload wrong: %+v", p)
				}
			} else if p.Formula == nil || p.PQE != nil {
				t.Fatalf("formula problem payload wrong: %+v", p)
			}
		})
	}
}

// TestParseBytesHint checks that an explicit hint bypasses detection: a
// DQDIMACS body parsed under the QDIMACS hint still parses (the readers
// share a grammar) but keeps the hinted format.
func TestParseBytesHint(t *testing.T) {
	p, err := ParseBytes([]byte(dqdimacsExample), FormatQDIMACS)
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	if p.Format != FormatQDIMACS {
		t.Fatalf("format = %q, want %q", p.Format, FormatQDIMACS)
	}
	if _, err := ParseBytes([]byte(benchExample), Format("tahiti")); err == nil {
		t.Fatal("unknown format hint accepted")
	}
}

func TestFormatFromContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want Format
	}{
		{"application/x-dqdimacs", FormatDQDIMACS},
		{"application/x-qdimacs", FormatQDIMACS},
		{"application/x-aiger", FormatAIGER},
		{"application/x-bench", FormatBENCH},
		{"application/x-pqe", FormatPQE},
		{"Application/X-BENCH; charset=utf-8", FormatBENCH},
		{"text/plain", ""},
		{"application/octet-stream", ""},
		{"", ""},
		{"not a mime type;;;", ""},
	}
	for _, tc := range cases {
		if got := FormatFromContentType(tc.ct); got != tc.want {
			t.Errorf("FormatFromContentType(%q) = %q, want %q", tc.ct, got, tc.want)
		}
	}
}

func TestFormatFromPath(t *testing.T) {
	cases := []struct {
		path string
		want Format
	}{
		{"a/b/x.dqdimacs", FormatDQDIMACS},
		{"x.dqbf", FormatDQDIMACS},
		{"x.qdimacs", FormatQDIMACS},
		{"x.QBF", FormatQDIMACS},
		{"x.aag", FormatAIGER},
		{"x.aig", FormatAIGER},
		{"x.bench", FormatBENCH},
		{"x.pqe", FormatPQE},
		{"x.cnf", ""},
		{"stdin", ""},
	}
	for _, tc := range cases {
		if got := FormatFromPath(tc.path); got != tc.want {
			t.Errorf("FormatFromPath(%q) = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestHashStableAcrossFormats is the acceptance invariant of the ingestion
// layer: the same instance submitted in different formats shares one
// canonical hash, hence one cache/store entry.
func TestHashStableAcrossFormats(t *testing.T) {
	// A BENCH-ingested partial-equivalence instance and its DQDIMACS
	// serialization.
	p1, err := ParseBytes([]byte(benchExample), "")
	if err != nil {
		t.Fatalf("parse bench: %v", err)
	}
	var buf bytes.Buffer
	if err := p1.Formula.WriteDQDIMACS(&buf); err != nil {
		t.Fatalf("write dqdimacs: %v", err)
	}
	p2, err := ParseBytes(buf.Bytes(), "")
	if err != nil {
		t.Fatalf("reparse dqdimacs: %v", err)
	}
	if p1.CanonicalHash() != p2.CanonicalHash() {
		t.Fatalf("hash changed across formats:\nbench    %s\ndqdimacs %s",
			p1.CanonicalHash(), p2.CanonicalHash())
	}
	if p1.Format == p2.Format {
		t.Fatalf("both problems claim format %q; the hash equality is vacuous", p1.Format)
	}
}

// TestHashStableAcrossAdderFormats runs the same invariant on a real adder
// miter — the instance family the acceptance scenario uses.
func TestHashStableAcrossAdderFormats(t *testing.T) {
	spec := circuit.RippleCarryAdder(1)
	impl := circuit.CarryLookaheadAdder(1)
	m, err := circuit.Miter(spec, impl)
	if err != nil {
		t.Fatalf("miter: %v", err)
	}
	var bench bytes.Buffer
	if err := m.WriteBench(&bench); err != nil {
		t.Fatalf("write bench: %v", err)
	}
	p1, err := ParseBytes(bench.Bytes(), "")
	if err != nil {
		t.Fatalf("parse bench: %v", err)
	}
	if p1.Format != FormatBENCH {
		t.Fatalf("detected %q, want bench", p1.Format)
	}
	var dq bytes.Buffer
	if err := p1.Formula.WriteDQDIMACS(&dq); err != nil {
		t.Fatalf("write dqdimacs: %v", err)
	}
	p2, err := ParseBytes(dq.Bytes(), "")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if p1.CanonicalHash() != p2.CanonicalHash() {
		t.Fatal("adder instance hash differs between BENCH and DQDIMACS ingestion")
	}
}

func TestPQEHashDomainSeparated(t *testing.T) {
	p, err := ParseBytes([]byte(pqeExample), "")
	if err != nil {
		t.Fatalf("parse pqe: %v", err)
	}
	// The conjoined formula ∃x3[F ∧ G] as a plain one-block DQBF.
	f := dqbf.New()
	f.Matrix.NumVars = 3
	f.AddExistential(3)
	for _, c := range append(append([]cnf.Clause(nil), p.PQE.F...), p.PQE.G...) {
		f.Matrix.AddClause(c...)
	}
	if p.CanonicalHash() == CanonicalFormulaHash(f) {
		t.Fatal("PQE query hash collides with the conjoined formula hash")
	}
	// F/G are not interchangeable: swapping them must change the key.
	swapped := p.PQE.Clone()
	swapped.F, swapped.G = swapped.G, swapped.F
	if p.PQE.CanonicalHash() == swapped.CanonicalHash() {
		t.Fatal("PQE hash ignores the F/G split")
	}
}

func TestPQERoundTrip(t *testing.T) {
	p, err := ParseBytes([]byte(pqeExample), "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf bytes.Buffer
	if err := p.PQE.WritePQE(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	p2, err := ParseBytes(buf.Bytes(), "")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	var buf2 bytes.Buffer
	if err := p2.PQE.WritePQE(&buf2); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("write→parse→write not a fixpoint:\n%q\n%q", buf.Bytes(), buf2.Bytes())
	}
	if p.CanonicalHash() != p2.CanonicalHash() {
		t.Fatal("round trip changed the canonical hash")
	}
}

func TestParsePQEMalformed(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"clause before problem line", "1 0\np pqe 1 1 0\n"},
		{"duplicate problem line", "p pqe 1 0 0\np pqe 1 0 0\n"},
		{"short problem line", "p pqe 1 1\n1 0\n"},
		{"negative count", "p pqe 1 -1 2\n"},
		{"e after clauses", "p pqe 2 1 0\n1 0\ne 2 0\n"},
		{"unterminated e line", "p pqe 2 0 0\ne 1 2\n"},
		{"tokens after 0", "p pqe 2 0 0\ne 1 0 2\n"},
		{"negative prefix var", "p pqe 2 0 0\ne -1 0\n"},
		{"prefix var out of range", "p pqe 1 0 0\ne 2 0\n"},
		{"literal out of range", "p pqe 1 1 0\n2 0\n"},
		{"bad literal", "p pqe 1 1 0\nx 0\n"},
		{"clause count mismatch", "p pqe 1 2 1\n1 0\n"},
		{"duplicate X variable", "p pqe 2 0 0\ne 1 1 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseBytes([]byte(tc.input), FormatPQE); err == nil {
				t.Fatalf("accepted malformed input %q", tc.input)
			}
		})
	}
}

// TestParseAIGERMalformed mirrors the strict DQDIMACS reader tests: every
// malformed input is a clean error, never a panic or a silent misparse.
func TestParseAIGERMalformed(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"bad magic", "agg 1 1 0 0 0\n2\n"},
		{"short header", "aag 1 1 0 0\n"},
		{"negative count", "aag 1 -1 0 0 0\n"},
		{"latches", "aag 2 1 1 0 0\n2\n4 2\n"},
		{"too many ands", "aag 1 1 0 0 1\n2\n4 2 2\n"},
		{"truncated inputs", "aag 2 2 0 0 0\n2\n"},
		{"truncated outputs", "aag 1 1 0 1 0\n2\n"},
		{"truncated ands", "aag 2 1 0 0 1\n2\n"},
		{"bad literal", "aag 1 1 0 0 0\nx\n"},
		{"odd input literal", "aag 1 1 0 0 0\n3\n"},
		{"zero input literal", "aag 1 1 0 0 0\n0\n"},
		{"input exceeds maxvar", "aag 1 1 0 0 0\n4\n"},
		{"and lhs odd", "aag 2 1 0 0 1\n2\n5 2 2\n"},
		{"variable defined twice", "aag 2 1 0 0 1\n2\n2 2 2\n"},
		{"undefined rhs", "aag 3 1 0 0 1\n2\n4 6 2\n"},
		{"undefined output", "aag 2 1 0 1 0\n2\n4\n"},
		{"and line arity", "aag 2 1 0 0 1\n2\n4 2\n"},
		{"bad symbol line", "aag 1 1 0 0 0\n2\nq0 name\n"},
		{"symbol missing name", "aag 1 1 0 0 0\n2\ni0\n"},
		{"symbol empty name", "aag 1 1 0 0 0\n2\ni0 \n"},
		{"symbol pos out of range", "aag 1 1 0 0 0\n2\ni1 x\n"},
		{"duplicate symbol", "aag 1 1 0 0 0\n2\ni0 x\ni0 y\n"},
		{"binary truncated deltas", "aig 2 1 0 0 1\n"},
		{"binary delta zero", "aig 2 1 0 0 1\n\x00\x00"},
		{"binary delta overflow", "aig 2 1 0 0 1\n\xff\xff\xff\xff\xff\xff\x01\x00"},
		{"binary rhs negative", "aig 2 1 0 0 1\n\x7f\x7f"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseBytes([]byte(tc.input), FormatAIGER); err == nil {
				t.Fatalf("accepted malformed input %q", tc.input)
			}
		})
	}
}

func TestParseBENCHMalformed(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"no assignment", "INPUT(a)\nfoo bar\n"},
		{"malformed declaration", "INPUT a\n"},
		{"empty declaration", "INPUT()\n"},
		{"malformed gate", "x = AND a, b\n"},
		{"unknown gate type", "x = MAJ(a, b, c)\n"},
		{"empty input name", "x = AND(a, )\n"},
		{"empty signal name", " = AND(a, b)\n"},
		{"not with two inputs", "x = NOT(a, b)\n"},
		{"buf with two inputs", "x = BUFF(a, b)\n"},
		{"xor with one input", "x = XOR(a)\n"},
		{"xor with three inputs", "x = XOR(a, b, c)\n"},
		{"xnor with three inputs", "x = XNOR(a, b, c)\n"},
		{"driven twice", "x = AND(a, b)\nx = OR(a, b)\n"},
		{"input redriven", "INPUT(x)\nx = AND(a, b)\n"},
		{"cycle", "x = NOT(y)\ny = NOT(x)\n"},
		{"undefined output", "INPUT(a)\nOUTPUT(z)\nx = NOT(a)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseBytes([]byte(tc.input), FormatBENCH); err == nil {
				t.Fatalf("accepted malformed input %q", tc.input)
			}
		})
	}
}

// TestAIGERAsciiBinaryEquivalent parses the same circuit in both AIGER
// flavors and checks the resulting problems hash identically.
func TestAIGERAsciiBinaryEquivalent(t *testing.T) {
	// One and gate: out = a_x ∧ i. Binary deltas for lhs 6, rhs0 4, rhs1 2
	// are 2 and 2.
	binary := "aig 3 2 0 1 1\n6\n\x02\x02\ni0 a_x\no0 out\n"
	pa, err := ParseBytes([]byte(aagExample), "")
	if err != nil {
		t.Fatalf("parse ascii: %v", err)
	}
	pb, err := ParseBytes([]byte(binary), "")
	if err != nil {
		t.Fatalf("parse binary: %v", err)
	}
	if pa.CanonicalHash() != pb.CanonicalHash() {
		t.Fatal("ascii and binary AIGER of the same circuit hash differently")
	}
	if len(pa.Formula.Univ) != 1 || len(pa.Formula.Exist) != 2 {
		t.Fatalf("quantifier split: %d universals, %d existentials, want 1/2",
			len(pa.Formula.Univ), len(pa.Formula.Exist))
	}
}

// TestAIGERConstants covers the lazily allocated constant-true variable for
// literals 0 and 1.
func TestAIGERConstants(t *testing.T) {
	// Output is the constant-true literal; a second output is constant false
	// — together they force an unsatisfiable matrix.
	p, err := ParseBytes([]byte("aag 1 1 0 2 0\n2\n1\n0\n"), "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Formula.Matrix.NumVars != 2 {
		t.Fatalf("NumVars = %d, want 2 (input + constant)", p.Formula.Matrix.NumVars)
	}
}

func TestFromCircuitFreeSignals(t *testing.T) {
	c, err := circuit.ParseBenchString(benchExample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := FromCircuit(c)
	if err != nil {
		t.Fatalf("FromCircuit: %v", err)
	}
	if p.Kind != KindQBF {
		t.Fatalf("kind = %v, want qbf (circuit encodings are linear)", p.Kind)
	}
	if len(p.Formula.Univ) != 1 {
		t.Fatalf("universals = %v, want one (the primary input)", p.Formula.Univ)
	}
	// The free signal and the XNOR gate variable are existential.
	if len(p.Formula.Exist) < 2 {
		t.Fatalf("existentials = %v, want free signal + gate vars", p.Formula.Exist)
	}
	for _, y := range p.Formula.Exist {
		if p.Formula.Deps[y].Len() != len(p.Formula.Univ) {
			t.Fatalf("existential %d depends on %s, want the full universal set", y, p.Formula.Deps[y])
		}
	}
}

func TestParseFileSetsSource(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/inst.bench"
	if err := os.WriteFile(path, []byte(benchExample), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if p.Source != path || p.Format != FormatBENCH {
		t.Fatalf("source/format = %q/%q", p.Source, p.Format)
	}
	if _, err := ParseFile(dir + "/missing.bench"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadBenchCircuit(t *testing.T) {
	c, err := ReadBenchCircuit(strings.NewReader(benchExample))
	if err != nil {
		t.Fatalf("ReadBenchCircuit: %v", err)
	}
	if len(c.FreeSignals()) != 1 {
		t.Fatalf("free signals = %d, want 1", len(c.FreeSignals()))
	}
	if _, err := ReadBenchCircuit(strings.NewReader("x = NOT(a, b)\n")); err == nil {
		t.Fatal("arity violation accepted")
	}
}

func TestProblemCloneIsDeep(t *testing.T) {
	p, err := ParseBytes([]byte(pqeExample), "")
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	c.PQE.F[0][0] = cnf.PosLit(2)
	if p.PQE.F[0][0] == c.PQE.F[0][0] {
		t.Fatal("Clone shares clause storage")
	}
	p2, err := ParseBytes([]byte(dqdimacsExample), "")
	if err != nil {
		t.Fatal(err)
	}
	c2 := p2.Clone()
	c2.Formula.Matrix.Clauses[0][0] = cnf.PosLit(1)
	if p2.Formula.Matrix.Clauses[0][0] == c2.Formula.Matrix.Clauses[0][0] {
		t.Fatal("Clone shares formula storage")
	}
}

func TestValidateRejectsInconsistentProblems(t *testing.T) {
	for _, p := range []*Problem{
		{Kind: KindDQBF},
		{Kind: KindQBF},
		{Kind: KindPQE},
		{Kind: Kind(42)},
		{Kind: KindPQE, PQE: &PQESplit{NumVars: 1, X: []cnf.Var{2}}},
		{Kind: KindPQE, PQE: &PQESplit{NumVars: 2, F: []cnf.Clause{{cnf.PosLit(3)}}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}
