package problem

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"repro/internal/circuit"
	"repro/internal/dqbf"
	"repro/internal/faults"
)

// ParseBytes parses one problem from data. An empty hint autodetects the
// format (Detect); a non-empty hint selects the reader directly — the
// ingestion path HTTP Content-Type headers and file extensions feed. Every
// parse fires the "problem.parse" fault point first, so chaos drills can
// exercise the ingestion error path end to end.
func ParseBytes(data []byte, hint Format) (*Problem, error) {
	if err := faults.Fire(faults.ProblemParse); err != nil {
		return nil, fmt.Errorf("problem: parse failed: %w", err)
	}
	format := hint
	if format == "" {
		var err error
		format, err = Detect(data)
		if err != nil {
			return nil, err
		}
	}
	switch format {
	case FormatDQDIMACS, FormatQDIMACS:
		f, err := dqbf.ParseDQDIMACS(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		p := FromDQBF(f)
		p.Format = format
		return p, nil
	case FormatAIGER:
		af, err := parseAIGER(data)
		if err != nil {
			return nil, err
		}
		return af.toProblem()
	case FormatBENCH:
		c, err := circuit.ParseBench(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return FromCircuit(c)
	case FormatPQE:
		return parsePQE(data)
	default:
		return nil, fmt.Errorf("problem: unknown format %q", format)
	}
}

// Parse reads all of r and parses it with format autodetection.
func Parse(r io.Reader) (*Problem, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseBytes(data, "")
}

// ParseFile reads and parses path, using the file extension as the format
// hint (falling back to content sniffing for unknown extensions) and
// recording the path as the problem's source.
func ParseFile(path string) (*Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParseBytes(data, FormatFromPath(path))
	if err != nil {
		return nil, err
	}
	p.Source = path
	return p, nil
}

// ReadBenchCircuit parses a BENCH netlist into its circuit form — the entry
// point for consumers that need the netlist itself rather than its DQBF
// encoding (pec2dqbf builds PEC problems from two of them). It shares the
// problem.parse fault point with the formula readers.
func ReadBenchCircuit(r io.Reader) (*circuit.Circuit, error) {
	if err := faults.Fire(faults.ProblemParse); err != nil {
		return nil, fmt.Errorf("problem: parse failed: %w", err)
	}
	return circuit.ParseBench(r)
}
