// Package qbf implements an AIG-based QBF solver in the style of AIGSOLVE,
// the back end HQS hands its formula to once the DQBF prefix has been made
// linear (paper Section III-C).
//
// The solver eliminates quantifier blocks from the innermost block outward:
// existential variables by ∃v.φ = φ[0/v] ∨ φ[1/v], universal variables by
// ∀v.φ = φ[0/v] ∧ φ[1/v], both directly on the AIG. Between eliminations it
// applies the syntactic unit/pure-literal rules of the paper's Theorems 5/6
// and periodically compresses the AIG by SAT sweeping (FRAIG reduction).
// When only the outermost existential block remains, a single SAT call
// finishes the job; when the matrix collapses to a constant the answer is
// immediate.
package qbf

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/faults"
)

// ErrTimeout is returned by Solve when the deadline passes before a verdict.
var ErrTimeout = errors.New("qbf: deadline exceeded")

// ErrCancelled is returned by Solve when the budget stops the elimination
// loop for a reason other than its deadline (cancellation or cap).
var ErrCancelled = errors.New("qbf: cancelled")

// Options configure the solver.
type Options struct {
	// UnitPure enables the syntactic unit/pure elimination between variable
	// eliminations.
	UnitPure bool
	// SweepThreshold triggers a SAT sweep whenever the matrix cone has grown
	// by this many AND nodes since the last sweep; 0 disables sweeping.
	SweepThreshold int
	// SweepOptions configure individual sweeps.
	SweepOptions aig.SweepOptions
	// FinalSAT finishes an outermost purely-existential block with one SAT
	// call instead of eliminating variable by variable.
	FinalSAT bool
	// Deadline, when nonzero, aborts the solve with ErrTimeout once passed.
	Deadline time.Time
	// Budget, when non-nil, aborts the solve when stopped: ErrTimeout on its
	// deadline, ErrCancelled on cancellation or cap exhaustion. It is also
	// threaded into sweeps and the final SAT call so a cancellation lands
	// mid-oracle, not only between eliminations.
	Budget *budget.Budget
}

// DefaultOptions mirror the configuration used in the paper's experiments.
func DefaultOptions() Options {
	return Options{
		UnitPure:       true,
		SweepThreshold: 512,
		SweepOptions:   aig.DefaultSweepOptions(),
		FinalSAT:       true,
	}
}

// Stats collects elimination counters.
type Stats struct {
	ExistElims  int
	UnivElims   int
	UnitElims   int
	PureElims   int
	Sweeps      int
	Sweep       aig.SweepStats // aggregated over all sweeps
	FinalSATRun bool
}

// Solver decides QBF instances whose matrix lives in an AIG.
type Solver struct {
	G    *aig.Graph
	Opt  Options
	Stat Stats
}

// New returns a solver over graph g with the given options.
func New(g *aig.Graph, opt Options) *Solver {
	return &Solver{G: g, Opt: opt}
}

// block pairs a quantifier kind with its variables.
type block struct {
	exist bool
	vars  []cnf.Var
}

// Solve decides the QBF given by the linear prefix (outermost block first,
// as produced by dqbf.Linearize) and the matrix. It returns the truth value.
// An aig.ErrNodeLimit panic from the graph propagates as an error.
func (s *Solver) Solve(prefix []dqbf.Block, matrix aig.Ref) (result bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if lim, ok := r.(aig.ErrNodeLimit); ok {
				err = lim
				return
			}
			panic(r)
		}
	}()

	// Flatten into alternating quantifier blocks, innermost last.
	var blocks []block
	push := func(exist bool, vars []cnf.Var) {
		if len(vars) == 0 {
			return
		}
		if n := len(blocks); n > 0 && blocks[n-1].exist == exist {
			blocks[n-1].vars = append(blocks[n-1].vars, vars...)
			return
		}
		blocks = append(blocks, block{exist: exist, vars: append([]cnf.Var(nil), vars...)})
	}
	for _, b := range prefix {
		push(false, b.Univ)
		push(true, b.Exist)
	}

	m := matrix
	lastSweepSize := s.G.ConeSize(m)
	// stopErr reports why the solve must unwind: ErrTimeout for the option
	// deadline or the budget's deadline, ErrCancelled for an explicit cancel
	// or cap exhaustion, nil to keep going.
	stopErr := func() error {
		if !s.Opt.Deadline.IsZero() && time.Now().After(s.Opt.Deadline) {
			return ErrTimeout
		}
		switch err := s.Opt.Budget.Err(); err {
		case nil:
			return nil
		case budget.ErrDeadline:
			return ErrTimeout
		default:
			return ErrCancelled
		}
	}

	finalSAT := s.Opt.FinalSAT
	for len(blocks) > 0 {
		if err := stopErr(); err != nil {
			return false, err
		}
		// Fault-injection seam: one block-elimination step. A spurious
		// Unknown unwinds like a cancellation; an injected error surfaces
		// as a back-end failure.
		if ferr := faults.Fire(faults.QBFEliminate); ferr != nil {
			if errors.Is(ferr, faults.ErrUnknown) {
				return false, ErrCancelled
			}
			return false, fmt.Errorf("qbf: %w", ferr)
		}
		if m.IsConst() {
			return m == aig.True, nil
		}
		if s.Opt.UnitPure {
			m = s.applyUnitPure(m, blocks)
			if m.IsConst() {
				return m == aig.True, nil
			}
		}
		// Drop variables that left the support.
		support := s.G.Support(m)
		blocks = filterBlocks(blocks, support)
		if len(blocks) == 0 {
			break
		}
		inner := &blocks[len(blocks)-1]
		if len(inner.vars) == 0 {
			blocks = blocks[:len(blocks)-1]
			continue
		}
		if inner.exist && len(blocks) == 1 && finalSAT {
			// Fault-injection seam: the final SAT shortcut is an
			// optimization, so a fault here is contained by falling back to
			// plain variable elimination for the remaining block.
			if ferr := faults.Fire(faults.AIGFinalSAT); ferr != nil {
				finalSAT = false
				continue
			}
			// Outermost existential block: one SAT call, under the budget so
			// a cancellation interrupts the CDCL search itself.
			s.Stat.FinalSATRun = true
			sat, _, err := s.G.IsSatisfiableBudget(m, s.Opt.Budget)
			if err != nil {
				if stop := stopErr(); stop != nil {
					return false, stop
				}
				return false, err
			}
			return sat, nil
		}
		v := s.pickVariable(m, inner.vars)
		inner.vars = removeVar(inner.vars, v)
		if inner.exist {
			m = s.G.Exists(m, v)
			s.Stat.ExistElims++
		} else {
			m = s.G.Forall(m, v)
			s.Stat.UnivElims++
		}
		if s.Opt.SweepThreshold > 0 {
			if size := s.G.ConeSize(m); size > lastSweepSize+s.Opt.SweepThreshold {
				so := s.Opt.SweepOptions
				so.Deadline = s.Opt.Deadline
				so.Budget = s.Opt.Budget
				var sst aig.SweepStats
				m, sst = s.G.Sweep(m, so)
				s.Stat.Sweep.Add(sst)
				s.Stat.Sweeps++
				lastSweepSize = s.G.ConeSize(m)
			}
		}
	}
	if !m.IsConst() {
		return false, fmt.Errorf("qbf: variables eliminated but matrix not constant (support %v)", s.G.Support(m))
	}
	return m == aig.True, nil
}

// applyUnitPure eliminates unit and pure variables per Theorems 5 and 6
// until a fixpoint, updating the blocks in place.
func (s *Solver) applyUnitPure(m aig.Ref, blocks []block) aig.Ref {
	for {
		changed := false
		up := s.G.UnitPure(m)
		for bi := range blocks {
			b := &blocks[bi]
			for _, v := range append([]cnf.Var(nil), b.vars...) {
				p, ok := up[v]
				if !ok {
					continue
				}
				switch {
				case b.exist && p.PosUnit:
					m = s.G.Cofactor(m, v, true)
					s.Stat.UnitElims++
				case b.exist && p.NegUnit:
					m = s.G.Cofactor(m, v, false)
					s.Stat.UnitElims++
				case !b.exist && (p.PosUnit || p.NegUnit):
					// Universal unit: the formula is falsified by the
					// opposite value.
					return aig.False
				case b.exist && p.PosPure:
					m = s.G.Cofactor(m, v, true)
					s.Stat.PureElims++
				case b.exist && p.NegPure:
					m = s.G.Cofactor(m, v, false)
					s.Stat.PureElims++
				case !b.exist && p.PosPure:
					m = s.G.Cofactor(m, v, false)
					s.Stat.PureElims++
				case !b.exist && p.NegPure:
					m = s.G.Cofactor(m, v, true)
					s.Stat.PureElims++
				default:
					continue
				}
				b.vars = removeVar(b.vars, v)
				changed = true
				if m.IsConst() {
					return m
				}
				up = s.G.UnitPure(m)
			}
		}
		if !changed {
			return m
		}
	}
}

// pickVariable chooses the next variable of the innermost block: the one
// whose input node has the smallest fanout in the cone, a cheap proxy for
// the cost of duplicating the cofactors.
func (s *Solver) pickVariable(m aig.Ref, vars []cnf.Var) cnf.Var {
	counts := s.fanoutCounts(m)
	best := vars[0]
	bestC := counts[best]
	for _, v := range vars[1:] {
		if c := counts[v]; c < bestC {
			best, bestC = v, c
		}
	}
	return best
}

// fanoutCounts counts, for each input variable, how many AND nodes in the
// cone reference it directly.
func (s *Solver) fanoutCounts(m aig.Ref) map[cnf.Var]int {
	counts := make(map[cnf.Var]int)
	for _, r := range s.G.ConeRefs(m) {
		f0, f1, isAnd := s.G.Fanins(r)
		if !isAnd {
			continue
		}
		if v := s.G.InputVar(f0); v != 0 {
			counts[v]++
		}
		if v := s.G.InputVar(f1); v != 0 {
			counts[v]++
		}
	}
	return counts
}

func filterBlocks(blocks []block, support map[cnf.Var]bool) []block {
	out := blocks[:0]
	for _, b := range blocks {
		var vars []cnf.Var
		for _, v := range b.vars {
			if support[v] {
				vars = append(vars, v)
			}
		}
		if len(vars) > 0 {
			b.vars = vars
			out = append(out, b)
		}
	}
	return out
}

func removeVar(vars []cnf.Var, v cnf.Var) []cnf.Var {
	for i, w := range vars {
		if w == v {
			return append(vars[:i], vars[i+1:]...)
		}
	}
	return vars
}
