// Package qbf implements an AIG-based QBF solver in the style of AIGSOLVE,
// the back end HQS hands its formula to once the DQBF prefix has been made
// linear (paper Section III-C).
//
// The solver eliminates quantifier blocks from the innermost block outward:
// existential variables by ∃v.φ = φ[0/v] ∨ φ[1/v], universal variables by
// ∀v.φ = φ[0/v] ∧ φ[1/v], both directly on the AIG. The elimination runs on
// the shared pass pipeline (internal/pipeline): between eliminations it
// applies the same unit/pure pass (Theorems 5/6) and SAT-sweeping pass
// (FRAIG reduction) as the HQS main loop, each execution budget-polled,
// fault-injectable, and emitting one structured trace event. When only the
// outermost existential block remains, a single SAT call finishes the job;
// when the matrix collapses to a constant the answer is immediate.
package qbf

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/aig"
	"repro/internal/budget"
	"repro/internal/cert"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Pass names contributed by this package, registered at init so fault-spec
// validation knows them before any solve runs.
func init() {
	pipeline.RegisterPass("blockelim")
	pipeline.RegisterPass("finalsat")
}

// ErrTimeout is returned by Solve when the deadline passes before a verdict.
var ErrTimeout = errors.New("qbf: deadline exceeded")

// ErrCancelled is returned by Solve when the budget stops the elimination
// loop for a reason other than its deadline (cancellation or cap).
var ErrCancelled = errors.New("qbf: cancelled")

// Options configure the solver.
type Options struct {
	// UnitPure enables the syntactic unit/pure elimination between variable
	// eliminations.
	UnitPure bool
	// SweepThreshold triggers a SAT sweep whenever the matrix cone has grown
	// by this many AND nodes since the last sweep; 0 disables sweeping.
	SweepThreshold int
	// SweepOptions configure individual sweeps.
	SweepOptions aig.SweepOptions
	// FinalSAT finishes an outermost purely-existential block with one SAT
	// call instead of eliminating variable by variable.
	FinalSAT bool
	// Deadline, when nonzero, aborts the solve with ErrTimeout once passed.
	Deadline time.Time
	// Budget, when non-nil, aborts the solve when stopped: ErrTimeout on its
	// deadline, ErrCancelled on cancellation or cap exhaustion. It is also
	// threaded into sweeps and the final SAT call so a cancellation lands
	// mid-oracle, not only between eliminations.
	Budget *budget.Budget
	// Trace, when non-nil, receives one structured event per executed
	// pipeline pass.
	Trace trace.Sink
	// Cert, when non-nil, records Skolem reconstruction steps: existential
	// block eliminations and the final SAT model (universal eliminations and
	// constant collapses need no step; see internal/cert).
	Cert *cert.Builder
	// Oracle, when non-nil, is the persistent incremental SAT pool shared
	// with the HQS pipeline (both operate on the same graph): sweeping and
	// the final SAT check query it instead of building fresh solvers.
	Oracle *oracle.Pool
}

// DefaultOptions mirror the configuration used in the paper's experiments.
func DefaultOptions() Options {
	return Options{
		UnitPure:       true,
		SweepThreshold: 512,
		SweepOptions:   aig.DefaultSweepOptions(),
		FinalSAT:       true,
	}
}

// Stats collects elimination counters.
type Stats struct {
	ExistElims  int
	UnivElims   int
	UnitElims   int
	PureElims   int
	Sweeps      int
	Sweep       aig.SweepStats // aggregated over all sweeps
	FinalSATRun bool
}

// Solver decides QBF instances whose matrix lives in an AIG.
type Solver struct {
	G    *aig.Graph
	Opt  Options
	Stat Stats
}

// New returns a solver over graph g with the given options.
func New(g *aig.Graph, opt Options) *Solver {
	return &Solver{G: g, Opt: opt}
}

// block pairs a quantifier kind with its variables.
type block struct {
	exist bool
	vars  []cnf.Var
}

// blockPrefix adapts the linear block list to pipeline.Prefix, so the
// shared unit/pure and support passes see the same quantifier semantics the
// HQS pipeline's formula-backed prefix provides.
type blockPrefix struct{ blocks []block }

func (p *blockPrefix) lookup(v cnf.Var) (exist, ok bool) {
	for bi := range p.blocks {
		for _, w := range p.blocks[bi].vars {
			if w == v {
				return p.blocks[bi].exist, true
			}
		}
	}
	return false, false
}

// IsExistential implements pipeline.Prefix.
func (p *blockPrefix) IsExistential(v cnf.Var) bool {
	exist, ok := p.lookup(v)
	return ok && exist
}

// IsUniversal implements pipeline.Prefix.
func (p *blockPrefix) IsUniversal(v cnf.Var) bool {
	exist, ok := p.lookup(v)
	return ok && !exist
}

// Remove implements pipeline.Prefix. Emptied blocks stay in place; the
// driver pops them when they become innermost.
func (p *blockPrefix) Remove(v cnf.Var) {
	for bi := range p.blocks {
		b := &p.blocks[bi]
		for i, w := range b.vars {
			if w == v {
				b.vars = append(b.vars[:i], b.vars[i+1:]...)
				return
			}
		}
	}
}

// RetainSupport implements pipeline.Prefix.
func (p *blockPrefix) RetainSupport(support map[cnf.Var]bool) int {
	before := 0
	for _, b := range p.blocks {
		before += len(b.vars)
	}
	p.blocks = filterBlocks(p.blocks, support)
	after := 0
	for _, b := range p.blocks {
		after += len(b.vars)
	}
	return before - after
}

// Size implements pipeline.Prefix.
func (p *blockPrefix) Size() (univ, exist int) {
	for _, b := range p.blocks {
		if b.exist {
			exist += len(b.vars)
		} else {
			univ += len(b.vars)
		}
	}
	return univ, exist
}

// Solve decides the QBF given by the linear prefix (outermost block first,
// as produced by dqbf.Linearize) and the matrix. It returns the truth value.
// An aig.ErrNodeLimit panic from the graph propagates as an error.
func (s *Solver) Solve(prefix []dqbf.Block, matrix aig.Ref) (result bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if lim, ok := r.(aig.ErrNodeLimit); ok {
				err = lim
				return
			}
			panic(r)
		}
	}()

	// Flatten into alternating quantifier blocks, innermost last.
	bp := &blockPrefix{}
	push := func(exist bool, vars []cnf.Var) {
		if len(vars) == 0 {
			return
		}
		if n := len(bp.blocks); n > 0 && bp.blocks[n-1].exist == exist {
			bp.blocks[n-1].vars = append(bp.blocks[n-1].vars, vars...)
			return
		}
		bp.blocks = append(bp.blocks, block{exist: exist, vars: append([]cnf.Var(nil), vars...)})
	}
	for _, b := range prefix {
		push(false, b.Univ)
		push(true, b.Exist)
	}

	st := &pipeline.State{
		G:        s.G,
		Matrix:   matrix,
		Prefix:   bp,
		Budget:   s.Opt.Budget,
		Deadline: s.Opt.Deadline,
		Cert:     s.Opt.Cert,
		Oracle:   s.Opt.Oracle,
	}
	r := pipeline.NewRunner(st, s.Opt.Trace, "qbf")
	sweep := pipeline.NewSweepPass(s.Opt.SweepThreshold, s.Opt.SweepOptions)
	sweep.Reset(s.G.ConeSize(matrix))
	defer func() {
		up := r.Total("unitpure")
		s.Stat.UnitElims += int(up.Counters["units"])
		s.Stat.PureElims += int(up.Counters["pures"])
		n, sst := sweep.Stats()
		s.Stat.Sweeps += n
		s.Stat.Sweep.Add(sst)
	}()

	// mapErr converts pipeline stop errors into this package's API errors.
	mapErr := func(err error) error {
		switch {
		case errors.Is(err, pipeline.ErrTimeout):
			return ErrTimeout
		case errors.Is(err, pipeline.ErrCancelled):
			return ErrCancelled
		default:
			return fmt.Errorf("qbf: %w", err)
		}
	}

	finalSAT := s.Opt.FinalSAT
	fellBack := false
	finalSATPass := pipeline.NewPass("finalsat", func(st *pipeline.State) (pipeline.Result, error) {
		// Fault-injection seam: the final SAT shortcut is an optimization,
		// so a fault here is contained by falling back to plain variable
		// elimination for the remaining block.
		if ferr := faults.Fire(faults.AIGFinalSAT); ferr != nil {
			fellBack = true
			return pipeline.Result{}, nil
		}
		// Outermost existential block: one SAT call, under the budget so a
		// cancellation interrupts the CDCL search itself. With a persistent
		// oracle the check reuses the run's incremental solver — the matrix
		// cone is usually already largely encoded from earlier sweeps.
		s.Stat.FinalSATRun = true
		var sat bool
		var model map[cnf.Var]bool
		var err error
		if s.Opt.Oracle != nil {
			sat, model, err = s.Opt.Oracle.Main().IsSatisfiable(st.Matrix, s.Opt.Budget)
		} else {
			sat, model, err = s.G.IsSatisfiableBudget(st.Matrix, s.Opt.Budget)
		}
		if err != nil {
			if stop := st.Stop(); stop != nil {
				return pipeline.Result{}, stop
			}
			return pipeline.Result{}, err
		}
		if sat {
			// The remaining block is outermost-existential with empty
			// dependency sets, so the model's constants are legal Skolem
			// functions.
			st.Cert.RecordModel(model)
		}
		st.Decide(sat, "finalsat")
		return pipeline.Result{Changed: true}, nil
	})
	blockElim := pipeline.NewPass("blockelim", func(st *pipeline.State) (pipeline.Result, error) {
		inner := &bp.blocks[len(bp.blocks)-1]
		v := s.pickVariable(st.Matrix, inner.vars)
		inner.vars = removeVar(inner.vars, v)
		c := pipeline.Counters{}
		if inner.exist {
			st.Cert.RecordExists(v, st.Matrix)
			st.Matrix = s.G.Exists(st.Matrix, v)
			s.Stat.ExistElims++
			c["exist"] = 1
		} else {
			st.Matrix = s.G.Forall(st.Matrix, v)
			s.Stat.UnivElims++
			c["univ"] = 1
		}
		return pipeline.Result{Changed: true, Counters: c}, nil
	})

	for len(bp.blocks) > 0 {
		if err := st.Stop(); err != nil {
			return false, mapErr(err)
		}
		// Fault-injection seam: one block-elimination step. A spurious
		// Unknown unwinds like a cancellation; an injected error surfaces
		// as a back-end failure.
		if ferr := faults.Fire(faults.QBFEliminate); ferr != nil {
			if errors.Is(ferr, faults.ErrUnknown) {
				return false, ErrCancelled
			}
			return false, fmt.Errorf("qbf: %w", ferr)
		}
		if st.Matrix.IsConst() {
			return st.Matrix == aig.True, nil
		}
		if s.Opt.UnitPure {
			if _, err := r.Run(pipeline.UnitPurePass{}); err != nil {
				return false, mapErr(err)
			}
			if st.Matrix.IsConst() {
				return st.Matrix == aig.True, nil
			}
		}
		// Drop variables that left the support.
		if _, err := r.Run(pipeline.DropSupportPass{}); err != nil {
			return false, mapErr(err)
		}
		if len(bp.blocks) == 0 {
			break
		}
		inner := &bp.blocks[len(bp.blocks)-1]
		if len(inner.vars) == 0 {
			bp.blocks = bp.blocks[:len(bp.blocks)-1]
			continue
		}
		if inner.exist && len(bp.blocks) == 1 && finalSAT {
			if _, err := r.Run(finalSATPass); err != nil {
				return false, mapErr(err)
			}
			if fellBack {
				finalSAT = false
				fellBack = false
				continue
			}
			return st.Sat, nil
		}
		if _, err := r.Run(blockElim); err != nil {
			return false, mapErr(err)
		}
		if _, err := r.Run(sweep); err != nil {
			return false, mapErr(err)
		}
	}
	if !st.Matrix.IsConst() {
		return false, fmt.Errorf("qbf: variables eliminated but matrix not constant (support %v)", s.G.Support(st.Matrix))
	}
	return st.Matrix == aig.True, nil
}

// pickVariable chooses the next variable of the innermost block: the one
// whose input node has the smallest fanout in the cone, a cheap proxy for
// the cost of duplicating the cofactors.
func (s *Solver) pickVariable(m aig.Ref, vars []cnf.Var) cnf.Var {
	counts := s.fanoutCounts(m)
	best := vars[0]
	bestC := counts[best]
	for _, v := range vars[1:] {
		if c := counts[v]; c < bestC {
			best, bestC = v, c
		}
	}
	return best
}

// fanoutCounts counts, for each input variable, how many AND nodes in the
// cone reference it directly.
func (s *Solver) fanoutCounts(m aig.Ref) map[cnf.Var]int {
	counts := make(map[cnf.Var]int)
	for _, r := range s.G.ConeRefs(m) {
		f0, f1, isAnd := s.G.Fanins(r)
		if !isAnd {
			continue
		}
		if v := s.G.InputVar(f0); v != 0 {
			counts[v]++
		}
		if v := s.G.InputVar(f1); v != 0 {
			counts[v]++
		}
	}
	return counts
}

func filterBlocks(blocks []block, support map[cnf.Var]bool) []block {
	out := blocks[:0]
	for _, b := range blocks {
		var vars []cnf.Var
		for _, v := range b.vars {
			if support[v] {
				vars = append(vars, v)
			}
		}
		if len(vars) > 0 {
			b.vars = vars
			out = append(out, b)
		}
	}
	return out
}

func removeVar(vars []cnf.Var, v cnf.Var) []cnf.Var {
	for i, w := range vars {
		if w == v {
			return append(vars[:i], vars[i+1:]...)
		}
	}
	return vars
}
