package qbf

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// buildMatrix converts a CNF into an AIG over graph g.
func buildMatrix(g *aig.Graph, f *cnf.Formula) aig.Ref {
	clauses := make([]aig.Ref, len(f.Clauses))
	for i, c := range f.Clauses {
		lits := make([]aig.Ref, len(c))
		for j, l := range c {
			lits[j] = g.Input(l.Var()).XorSign(l.Neg())
		}
		clauses[i] = g.OrN(lits...)
	}
	return g.AndN(clauses...)
}

func solveQBF(t *testing.T, prefix []dqbf.Block, matrix *cnf.Formula, opt Options) bool {
	t.Helper()
	g := aig.New()
	s := New(g, opt)
	res, err := s.Solve(prefix, buildMatrix(g, matrix))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForallExistsXnor(t *testing.T) {
	// ∀x ∃y : y↔x — true.
	m := cnf.NewFormula(2)
	m.AddDimacsClause(-2, 1)
	m.AddDimacsClause(2, -1)
	prefix := []dqbf.Block{{Univ: []cnf.Var{1}, Exist: []cnf.Var{2}}}
	if !solveQBF(t, prefix, m, DefaultOptions()) {
		t.Fatal("∀x∃y. y↔x must be true")
	}
}

func TestExistsForallXnor(t *testing.T) {
	// ∃y ∀x : y↔x — false.
	m := cnf.NewFormula(2)
	m.AddDimacsClause(-2, 1)
	m.AddDimacsClause(2, -1)
	prefix := []dqbf.Block{{Exist: []cnf.Var{2}}, {Univ: []cnf.Var{1}}}
	if solveQBF(t, prefix, m, DefaultOptions()) {
		t.Fatal("∃y∀x. y↔x must be false")
	}
}

func TestPurelyExistentialSAT(t *testing.T) {
	m := cnf.NewFormula(3)
	m.AddDimacsClause(1, 2)
	m.AddDimacsClause(-1, 3)
	prefix := []dqbf.Block{{Exist: []cnf.Var{1, 2, 3}}}
	if !solveQBF(t, prefix, m, DefaultOptions()) {
		t.Fatal("satisfiable CNF under ∃ prefix must be true")
	}
	m2 := cnf.NewFormula(1)
	m2.AddDimacsClause(1)
	m2.AddDimacsClause(-1)
	if solveQBF(t, []dqbf.Block{{Exist: []cnf.Var{1}}}, m2, DefaultOptions()) {
		t.Fatal("unsatisfiable CNF must be false")
	}
}

func TestPurelyUniversal(t *testing.T) {
	// ∀x1∀x2 : x1∨x2 — false.
	m := cnf.NewFormula(2)
	m.AddDimacsClause(1, 2)
	prefix := []dqbf.Block{{Univ: []cnf.Var{1, 2}}}
	if solveQBF(t, prefix, m, DefaultOptions()) {
		t.Fatal("∀x1∀x2. x1∨x2 must be false")
	}
	// ∀x : x∨¬x — true.
	m2 := cnf.NewFormula(1)
	m2.AddDimacsClause(1, -1)
	if !solveQBF(t, []dqbf.Block{{Univ: []cnf.Var{1}}}, m2, DefaultOptions()) {
		t.Fatal("tautology must be true")
	}
}

func TestTwoAlternations(t *testing.T) {
	// ∀x1 ∃y1 ∀x2 ∃y2 : (y1↔x1) ∧ (y2 ↔ x1⊕x2) — true.
	m := cnf.NewFormula(4)
	// y1=2, y2=4, x1=1, x2=3.
	m.AddDimacsClause(-2, 1)
	m.AddDimacsClause(2, -1)
	// y2 ↔ x1⊕x2: (¬y2∨x1∨x2)(¬y2∨¬x1∨¬x2)(y2∨x1∨¬x2)(y2∨¬x1∨x2)
	m.AddDimacsClause(-4, 1, 3)
	m.AddDimacsClause(-4, -1, -3)
	m.AddDimacsClause(4, 1, -3)
	m.AddDimacsClause(4, -1, 3)
	prefix := []dqbf.Block{
		{Univ: []cnf.Var{1}, Exist: []cnf.Var{2}},
		{Univ: []cnf.Var{3}, Exist: []cnf.Var{4}},
	}
	if !solveQBF(t, prefix, m, DefaultOptions()) {
		t.Fatal("must be true")
	}
	// Swap: ∀x1 ∃y2 ∀x2 : y2 ↔ x1⊕x2 — false (y2 cannot see x2).
	m2 := cnf.NewFormula(4)
	m2.AddDimacsClause(-4, 1, 3)
	m2.AddDimacsClause(-4, -1, -3)
	m2.AddDimacsClause(4, 1, -3)
	m2.AddDimacsClause(4, -1, 3)
	prefix2 := []dqbf.Block{
		{Univ: []cnf.Var{1}, Exist: []cnf.Var{4}},
		{Univ: []cnf.Var{3}},
	}
	if solveQBF(t, prefix2, m2, DefaultOptions()) {
		t.Fatal("must be false")
	}
}

// randomQBF builds a random QBF as a DQBF with chain dependencies so that we
// can use dqbf.BruteForce as ground truth.
func randomQBF(rng *rand.Rand, nUniv, nExist, nClauses int) (*dqbf.Formula, []dqbf.Block) {
	f := dqbf.New()
	for i := 1; i <= nUniv; i++ {
		f.AddUniversal(cnf.Var(i))
	}
	cur := dqbf.NewVarSet()
	for i := 0; i < nExist; i++ {
		for _, x := range f.Univ {
			if !cur.Has(x) && rng.Intn(3) == 0 {
				cur.Add(x)
			}
		}
		y := cnf.Var(nUniv + i + 1)
		f.Exist = append(f.Exist, y)
		f.Deps[y] = cur.Clone()
		if int(y) > f.Matrix.NumVars {
			f.Matrix.NumVars = int(y)
		}
	}
	n := nUniv + nExist
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
		}
		f.Matrix.Clauses = append(f.Matrix.Clauses, c)
	}
	return f, dqbf.Linearize(f)
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, opt := range []Options{
		DefaultOptions(),
		{UnitPure: false, SweepThreshold: 0, FinalSAT: false},
		{UnitPure: true, SweepThreshold: 1, SweepOptions: aig.DefaultSweepOptions(), FinalSAT: false},
	} {
		for iter := 0; iter < 120; iter++ {
			f, prefix := randomQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(8))
			want, err := dqbf.BruteForce(f)
			if err != nil {
				t.Fatal(err)
			}
			g := aig.New()
			s := New(g, opt)
			got, err := s.Solve(prefix, buildMatrix(g, f.Matrix))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("opt %+v iter %d: got %v want %v\nformula: %v\nclauses: %v",
					opt, iter, got, want, f, f.Matrix.Clauses)
			}
		}
	}
}

func TestConstantMatrices(t *testing.T) {
	g := aig.New()
	s := New(g, DefaultOptions())
	prefix := []dqbf.Block{{Univ: []cnf.Var{1}, Exist: []cnf.Var{2}}}
	if res, err := s.Solve(prefix, aig.True); err != nil || !res {
		t.Fatal("constant true matrix must be true")
	}
	if res, err := s.Solve(prefix, aig.False); err != nil || res {
		t.Fatal("constant false matrix must be false")
	}
}

func TestNodeLimitReportedAsError(t *testing.T) {
	g := aig.New()
	f := cnf.NewFormula(0)
	// A parity constraint chain forces cofactor blowup relative to a tiny
	// node budget.
	n := 14
	for i := 1; i+2 <= n; i += 2 {
		f.AddDimacsClause(i, i+1, i+2)
		f.AddDimacsClause(-i, -(i + 1), i+2)
		f.AddDimacsClause(-i, i+1, -(i + 2))
		f.AddDimacsClause(i, -(i + 1), -(i + 2))
	}
	m := buildMatrix(g, f)
	g.NodeLimit = g.NumNodes() + 3
	var univ []cnf.Var
	for i := 1; i <= n; i++ {
		univ = append(univ, cnf.Var(i))
	}
	s := New(g, Options{}) // no sweeping, no unit/pure
	_, err := s.Solve([]dqbf.Block{{Univ: univ}}, m)
	if err == nil {
		t.Fatal("expected node-limit error")
	}
	if _, ok := err.(aig.ErrNodeLimit); !ok {
		t.Fatalf("unexpected error type %T", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	m := cnf.NewFormula(4)
	m.AddDimacsClause(-2, 1)
	m.AddDimacsClause(2, -1)
	m.AddDimacsClause(3, 4)
	g := aig.New()
	s := New(g, Options{UnitPure: true, FinalSAT: false})
	prefix := []dqbf.Block{{Univ: []cnf.Var{1}, Exist: []cnf.Var{2, 3, 4}}}
	res, err := s.Solve(prefix, buildMatrix(g, m))
	if err != nil || !res {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if s.Stat.PureElims == 0 && s.Stat.UnitElims == 0 && s.Stat.ExistElims == 0 && s.Stat.UnivElims == 0 {
		t.Fatal("no eliminations recorded")
	}
}

func TestDeadline(t *testing.T) {
	// An already-expired deadline must abort with ErrTimeout.
	f := cnf.NewFormula(0)
	n := 12
	for i := 1; i+2 <= n; i += 2 {
		f.AddDimacsClause(i, i+1, i+2)
		f.AddDimacsClause(-i, -(i + 1), i+2)
		f.AddDimacsClause(-i, i+1, -(i + 2))
		f.AddDimacsClause(i, -(i + 1), -(i + 2))
	}
	g := aig.New()
	m := buildMatrix(g, f)
	var univ []cnf.Var
	for i := 1; i <= n; i++ {
		univ = append(univ, cnf.Var(i))
	}
	opt := Options{}
	opt.Deadline = time.Now().Add(-time.Second)
	s := New(g, opt)
	_, err := s.Solve([]dqbf.Block{{Univ: univ}}, m)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSolveSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for iter := 0; iter < 200; iter++ {
		f, prefix := randomQBF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(8))
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveSearch(prefix, f.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: search %v brute %v\n%v\n%v", iter, got, want, f, f.Matrix.Clauses)
		}
	}
}

func TestSolveSearchAgainstEliminationSolver(t *testing.T) {
	// Two independent QBF implementations must agree on larger instances.
	rng := rand.New(rand.NewSource(314))
	for iter := 0; iter < 60; iter++ {
		f, prefix := randomQBF(rng, 2+rng.Intn(4), 2+rng.Intn(4), 4+rng.Intn(16))
		searchRes, err := SolveSearch(prefix, f.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		g := aig.New()
		s := New(g, DefaultOptions())
		elimRes, err := s.Solve(prefix, buildMatrix(g, f.Matrix))
		if err != nil {
			t.Fatal(err)
		}
		if searchRes != elimRes {
			t.Fatalf("iter %d: search %v, elimination %v", iter, searchRes, elimRes)
		}
	}
}

func TestSolveSearchValidation(t *testing.T) {
	m := cnf.NewFormula(2)
	m.AddDimacsClause(1, 2)
	if _, err := SolveSearch([]dqbf.Block{{Univ: []cnf.Var{1}}}, m); err == nil {
		t.Error("unquantified variable accepted")
	}
	if _, err := SolveSearch([]dqbf.Block{
		{Univ: []cnf.Var{1}, Exist: []cnf.Var{2}},
		{Univ: []cnf.Var{1}},
	}, m); err == nil {
		t.Error("doubly quantified variable accepted")
	}
}

func TestSolveSearchUniversalUnit(t *testing.T) {
	// ∀x : (x) — universal forced by a unit clause means false.
	m := cnf.NewFormula(1)
	m.AddDimacsClause(1)
	got, err := SolveSearch([]dqbf.Block{{Univ: []cnf.Var{1}}}, m)
	if err != nil || got {
		t.Fatalf("got %v %v, want false", got, err)
	}
}
