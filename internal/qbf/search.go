package qbf

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// SolveSearch decides a QBF given by a linear prefix and a CNF matrix with a
// simple search-based procedure in the QDPLL tradition (DepQBF's ancestor,
// without clause/cube learning): variables are branched in prefix order,
// with unit propagation and universal reduction after every assignment;
// a universal branch must succeed for both values, an existential branch for
// at least one. It is exponential without learning and exists as an
// independent cross-check for the elimination-based solver — the two
// implementations share no code beyond the CNF types.
func SolveSearch(prefix []dqbf.Block, matrix *cnf.Formula) (bool, error) {
	var order []cnf.Var
	univ := make(map[cnf.Var]bool)
	seen := make(map[cnf.Var]bool)
	for _, b := range prefix {
		for _, x := range b.Univ {
			if seen[x] {
				return false, fmt.Errorf("qbf: variable %d quantified twice", x)
			}
			seen[x] = true
			univ[x] = true
			order = append(order, x)
		}
		for _, y := range b.Exist {
			if seen[y] {
				return false, fmt.Errorf("qbf: variable %d quantified twice", y)
			}
			seen[y] = true
			order = append(order, y)
		}
	}
	for _, c := range matrix.Clauses {
		for _, l := range c {
			if !seen[l.Var()] {
				return false, fmt.Errorf("qbf: unquantified matrix variable %d", l.Var())
			}
		}
	}
	s := &searcher{
		matrix: matrix.Clauses,
		order:  order,
		univ:   univ,
		assign: make(map[cnf.Var]bool),
	}
	return s.search(0), nil
}

type searcher struct {
	matrix []cnf.Clause
	order  []cnf.Var
	univ   map[cnf.Var]bool
	assign map[cnf.Var]bool
}

// status evaluates the matrix under the current partial assignment:
// -1 falsified clause exists, +1 all clauses satisfied, 0 undecided.
func (s *searcher) status() int {
	all := 1
	for _, c := range s.matrix {
		sat, undef := false, false
		for _, l := range c {
			v, ok := s.assign[l.Var()]
			if !ok {
				undef = true
				continue
			}
			if v != l.Neg() {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		if !undef {
			return -1
		}
		all = 0
	}
	return all
}

// search decides the formula from position i of the prefix order.
func (s *searcher) search(i int) bool {
	switch s.status() {
	case -1:
		return false
	case 1:
		return true
	}
	if i >= len(s.order) {
		// No unassigned prefix variables but still undecided clauses cannot
		// happen: every clause variable is quantified.
		return s.status() == 1
	}
	v := s.order[i]
	if _, done := s.assign[v]; done {
		return s.search(i + 1)
	}
	// Cheap lookahead: forced value by a unit clause containing v as the
	// only unassigned literal, respecting quantifier semantics.
	if forced, val, conflict := s.unitOn(v); conflict {
		return false
	} else if forced {
		if s.univ[v] {
			// Universal forced to one value means the other value falsifies
			// the matrix: the formula is false here.
			return false
		}
		s.assign[v] = val
		ok := s.search(i + 1)
		delete(s.assign, v)
		return ok
	}
	try := func(val bool) bool {
		s.assign[v] = val
		ok := s.search(i + 1)
		delete(s.assign, v)
		return ok
	}
	if s.univ[v] {
		return try(false) && try(true)
	}
	return try(false) || try(true)
}

// unitOn reports whether some clause forces variable v: it returns
// (forced, value, conflict) where conflict means two clauses force opposite
// values.
func (s *searcher) unitOn(v cnf.Var) (bool, bool, bool) {
	forced := false
	var val bool
	for _, c := range s.matrix {
		sat := false
		unassigned := 0
		var lit cnf.Lit
		for _, l := range c {
			a, ok := s.assign[l.Var()]
			if !ok {
				unassigned++
				lit = l
				continue
			}
			if a != l.Neg() {
				sat = true
				break
			}
		}
		if sat || unassigned != 1 || lit.Var() != v {
			continue
		}
		want := !lit.Neg()
		if forced && val != want {
			return false, false, true
		}
		forced, val = true, want
	}
	return forced, val, false
}
