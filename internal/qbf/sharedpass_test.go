package qbf

import (
	"math/rand"
	"testing"

	"repro/internal/aig"
	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/pipeline"
)

// buildRandomMatrix grows a deterministic random AND/OR structure over the
// literals of vars. Given equal seeds it builds structurally identical
// matrices, so two graphs can be compared node for node afterwards.
func buildRandomMatrix(g *aig.Graph, vars []cnf.Var, rng *rand.Rand) aig.Ref {
	lit := func() aig.Ref {
		r := g.Input(vars[rng.Intn(len(vars))])
		if rng.Intn(2) == 0 {
			r = r.Not()
		}
		return r
	}
	pool := make([]aig.Ref, 0, 16)
	for i := 0; i < 8; i++ {
		pool = append(pool, lit())
	}
	for i := 0; i < 24; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			pool = append(pool, g.And(a, b))
		} else {
			pool = append(pool, g.Or(a, b))
		}
	}
	m := pool[len(pool)-1]
	// And in a few conjuncts so top-level units exist often enough to
	// exercise the unit branch, not only the pure branches.
	for i := 0; i < 2; i++ {
		m = g.And(m, lit())
	}
	return m
}

// TestUnitPureSharedBitIdentical is the regression test for deduplicating
// the unit/pure fixpoint that used to exist twice (core.applyUnitPure and
// this package's equivalent): the one shared pipeline.UnitPurePass must
// produce bit-identical AIGs and matrices when driven through the HQS
// formula-backed prefix and through this package's block-backed prefix, for
// the same quantifier assignment over a corpus of seeded random matrices.
func TestUnitPureSharedBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		univ := []cnf.Var{1, 2, 3}
		exist := []cnf.Var{4, 5, 6, 7, 8}
		vars := append(append([]cnf.Var(nil), univ...), exist...)

		// Caller 1: the HQS pipeline's view — a dqbf.Formula-backed prefix.
		g1 := aig.New()
		m1 := buildRandomMatrix(g1, vars, rand.New(rand.NewSource(seed)))
		f := dqbf.New()
		f.Univ = append([]cnf.Var(nil), univ...)
		f.Exist = append([]cnf.Var(nil), exist...)
		for _, y := range exist {
			f.Deps[y] = dqbf.NewVarSet(univ...)
		}
		f.Matrix.NumVars = int(vars[len(vars)-1])
		st1 := &pipeline.State{G: g1, Matrix: m1, Prefix: pipeline.FormulaPrefix{F: f}}

		// Caller 2: this package's view — a block-backed prefix with the same
		// quantifier assignment.
		g2 := aig.New()
		m2 := buildRandomMatrix(g2, vars, rand.New(rand.NewSource(seed)))
		bp := &blockPrefix{blocks: []block{
			{exist: false, vars: append([]cnf.Var(nil), univ...)},
			{exist: true, vars: append([]cnf.Var(nil), exist...)},
		}}
		st2 := &pipeline.State{G: g2, Matrix: m2, Prefix: bp}

		if m1 != m2 {
			t.Fatalf("seed %d: matrices differ before the pass (%v vs %v): the builder is not deterministic", seed, m1, m2)
		}

		res1, err1 := (pipeline.UnitPurePass{}).Run(st1)
		res2, err2 := (pipeline.UnitPurePass{}).Run(st2)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: unexpected errors %v / %v", seed, err1, err2)
		}
		if st1.Matrix != st2.Matrix {
			t.Errorf("seed %d: resulting matrix refs differ: formula-backed %v, block-backed %v", seed, st1.Matrix, st2.Matrix)
		}
		if s1, s2 := g1.String(), g2.String(); s1 != s2 {
			t.Errorf("seed %d: resulting AIGs differ\nformula-backed:\n%s\nblock-backed:\n%s", seed, s1, s2)
		}
		if res1.Changed != res2.Changed {
			t.Errorf("seed %d: Changed differs: %v vs %v", seed, res1.Changed, res2.Changed)
		}
		for _, k := range []string{"units", "pures"} {
			if res1.Counters[k] != res2.Counters[k] {
				t.Errorf("seed %d: counter %s differs: %d vs %d", seed, k, res1.Counters[k], res2.Counters[k])
			}
		}
		// Both prefixes must have dropped the same variables.
		for _, v := range vars {
			if e1, u1, e2, u2 := st1.Prefix.IsExistential(v), st1.Prefix.IsUniversal(v),
				st2.Prefix.IsExistential(v), st2.Prefix.IsUniversal(v); e1 != e2 || u1 != u2 {
				t.Errorf("seed %d: var %d quantifier state differs: formula ∃=%v ∀=%v, block ∃=%v ∀=%v",
					seed, v, e1, u1, e2, u2)
			}
		}
	}
}
