// Package refute implements an incomplete DQBF refutation procedure in the
// spirit of Finkbeiner and Tentrup's "Fast DQBF Refutation" (SAT 2014), the
// third related approach the paper discusses: instead of deciding the
// formula, it grounds the matrix over a *bounded* pool of universal
// assignments — if that partial expansion is already propositionally
// unsatisfiable, the DQBF is unsatisfied; otherwise the answer is
// inconclusive (unless the pool happened to cover all assignments, in which
// case satisfiability follows from the full-expansion theorem).
//
// Pools grow geometrically; assignments are drawn from a deterministic
// pseudo-random sequence plus structured patterns (all-zero, all-one,
// one-hot), which refute typical PEC inequivalences with a handful of
// instances. The paper notes that iDQ often refutes instances with a single
// SAT call; this package isolates exactly that effect.
package refute

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/dqbf"
	"repro/internal/sat"
)

// Verdict is the three-valued outcome of a refutation attempt.
type Verdict int

// Possible outcomes: refuted (UNSAT proven), satisfied (the pool covered the
// full expansion and it is SAT), or inconclusive.
const (
	Inconclusive Verdict = iota
	Refuted
	Satisfied
)

func (v Verdict) String() string {
	switch v {
	case Refuted:
		return "REFUTED"
	case Satisfied:
		return "SATISFIED"
	default:
		return "INCONCLUSIVE"
	}
}

// Options configure the refuter.
type Options struct {
	// MaxAssignments bounds the pool size; 0 means 256.
	MaxAssignments int
	// Timeout bounds wall-clock time; 0 means unlimited.
	Timeout time.Duration
}

// Stats collects counters.
type Stats struct {
	Assignments int
	SATCalls    int
	Ground      int
	TotalTime   time.Duration
}

// Result is the outcome of a Refute call.
type Result struct {
	Verdict Verdict
	Stats   Stats
}

// Refute attempts to disprove the DQBF with a bounded expansion.
func Refute(f *dqbf.Formula, opt Options) Result {
	start := time.Now()
	res := Result{}
	defer func() { res.Stats.TotalTime = time.Since(start) }()

	maxA := opt.MaxAssignments
	if maxA <= 0 {
		maxA = 256
	}
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = start.Add(opt.Timeout)
	}

	n := len(f.Univ)
	full := 0
	if n < 30 {
		full = 1 << n
	}

	solver := sat.New()
	copies := make(map[string]cnf.Var)
	copyOf := func(y cnf.Var, val func(cnf.Var) bool) cnf.Var {
		deps := f.Deps[y].Vars()
		var b strings.Builder
		b.WriteString(dqbf.ProjectionKey(deps, val))
		k := b.String() + "@" + strconv.Itoa(int(y))
		v, ok := copies[k]
		if !ok {
			v = solver.NewVar()
			copies[k] = v
		}
		return v
	}

	seen := make(map[string]bool)
	addAssignment := func(a map[cnf.Var]bool) bool {
		key := dqbf.ProjectionKey(f.Univ, func(v cnf.Var) bool { return a[v] })
		if seen[key] {
			return true
		}
		seen[key] = true
		res.Stats.Assignments++
		for _, c := range f.Matrix.Clauses {
			ground := make([]cnf.Lit, 0, len(c))
			satisfied := false
			for _, l := range c {
				v := l.Var()
				if f.IsUniversal(v) {
					if a[v] != l.Neg() {
						satisfied = true
						break
					}
					continue
				}
				ground = append(ground, cnf.NewLit(copyOf(v, func(d cnf.Var) bool { return a[d] }), l.Neg()))
			}
			if satisfied {
				continue
			}
			res.Stats.Ground++
			if len(ground) == 0 || !solver.AddClause(ground...) {
				return false
			}
		}
		return true
	}

	// Structured patterns first, then a pseudo-random sequence.
	gen := newGen(f.Univ)
	for res.Stats.Assignments < maxA && len(seen) != full {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return res
		}
		a, ok := gen.next()
		if !ok {
			break
		}
		if !addAssignment(a) {
			res.Verdict = Refuted
			return res
		}
		// Periodic refutation check (every assignment keeps the solver
		// incremental and cheap).
		res.Stats.SATCalls++
		if solver.Solve() == sat.Unsat {
			res.Verdict = Refuted
			return res
		}
	}
	if full > 0 && len(seen) == full {
		// The pool covered the complete expansion: the last SAT call proved
		// the full grounding satisfiable, so the DQBF is satisfied.
		res.Verdict = Satisfied
	}
	return res
}

// gen enumerates universal assignments: all-zero, all-one, one-hot,
// one-cold, then xorshift pseudo-random vectors.
type gen struct {
	univ  []cnf.Var
	stage int
	idx   int
	state uint64
	emit  int
}

func newGen(univ []cnf.Var) *gen {
	return &gen{univ: univ, state: 0x9e3779b97f4a7c15}
}

func (g *gen) next() (map[cnf.Var]bool, bool) {
	n := len(g.univ)
	a := make(map[cnf.Var]bool, n)
	switch g.stage {
	case 0:
		g.stage++
		return a, true // all-zero
	case 1:
		for _, x := range g.univ {
			a[x] = true
		}
		g.stage++
		return a, true
	case 2: // one-hot
		if g.idx < n {
			a[g.univ[g.idx]] = true
			g.idx++
			return a, true
		}
		g.stage++
		g.idx = 0
		fallthrough
	case 3: // one-cold
		if g.idx < n {
			for _, x := range g.univ {
				a[x] = true
			}
			a[g.univ[g.idx]] = false
			g.idx++
			return a, true
		}
		g.stage++
		fallthrough
	default:
		if n < 30 && g.emit > 4<<uint(n) {
			return nil, false // random phase has almost surely covered everything
		}
		g.emit++
		g.state ^= g.state << 13
		g.state ^= g.state >> 7
		g.state ^= g.state << 17
		for i, x := range g.univ {
			a[x] = g.state&(1<<(uint(i)%64)) != 0
		}
		// Vary high universals beyond 64 by rotating per call.
		return a, true
	}
}
