package refute

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

func crossExample() *dqbf.Formula {
	// ∀x1∀x2 ∃y1(x2) ∃y2(x1): (y1↔x1)∧(y2↔x2) — unsatisfiable.
	f := dqbf.New()
	f.AddUniversal(1)
	f.AddUniversal(2)
	f.AddExistential(3, 2)
	f.AddExistential(4, 1)
	f.Matrix.AddDimacsClause(-3, 1)
	f.Matrix.AddDimacsClause(3, -1)
	f.Matrix.AddDimacsClause(-4, 2)
	f.Matrix.AddDimacsClause(4, -2)
	return f
}

func paperExample1() *dqbf.Formula {
	f := crossExample()
	f.Deps[3] = dqbf.NewVarSet(1)
	f.Deps[4] = dqbf.NewVarSet(2)
	return f
}

func TestRefutesCrossDependency(t *testing.T) {
	res := Refute(crossExample(), Options{})
	if res.Verdict != Refuted {
		t.Fatalf("verdict = %v, want REFUTED", res.Verdict)
	}
	if res.Stats.Assignments == 0 || res.Stats.SATCalls == 0 {
		t.Fatal("stats empty")
	}
}

func TestSatisfiedOnFullCoverage(t *testing.T) {
	res := Refute(paperExample1(), Options{})
	if res.Verdict != Satisfied {
		t.Fatalf("verdict = %v, want SATISFIED (pool covers all 4 assignments)", res.Verdict)
	}
}

func TestInconclusiveOnTinyBudget(t *testing.T) {
	// With a single assignment the satisfiable example cannot be settled.
	res := Refute(paperExample1(), Options{MaxAssignments: 1})
	if res.Verdict != Inconclusive {
		t.Fatalf("verdict = %v, want INCONCLUSIVE", res.Verdict)
	}
}

func TestNeverRefutesSatisfiable(t *testing.T) {
	// Soundness: on satisfiable formulas the refuter must never say REFUTED.
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 150; iter++ {
		f := dqbf.New()
		nUniv := 1 + rng.Intn(3)
		for i := 1; i <= nUniv; i++ {
			f.AddUniversal(cnf.Var(i))
		}
		nExist := 1 + rng.Intn(3)
		for i := 0; i < nExist; i++ {
			y := cnf.Var(nUniv + i + 1)
			var deps []cnf.Var
			for _, x := range f.Univ {
				if rng.Intn(2) == 0 {
					deps = append(deps, x)
				}
			}
			f.AddExistential(y, deps...)
		}
		n := nUniv + nExist
		for i := 0; i < 2+rng.Intn(10); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(n)), rng.Intn(2) == 0))
			}
			f.Matrix.Clauses = append(f.Matrix.Clauses, c)
		}
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		res := Refute(f, Options{})
		switch res.Verdict {
		case Refuted:
			if want {
				t.Fatalf("iter %d: refuted a satisfiable formula\n%v\n%v", iter, f, f.Matrix.Clauses)
			}
		case Satisfied:
			if !want {
				t.Fatalf("iter %d: satisfied an unsatisfiable formula", iter)
			}
		}
	}
}

func TestCompleteOnSmallFormulas(t *testing.T) {
	// With few universals the default budget covers the full expansion, so
	// the refuter becomes a decision procedure.
	rng := rand.New(rand.NewSource(43))
	conclusive := 0
	for iter := 0; iter < 60; iter++ {
		f := dqbf.New()
		f.AddUniversal(1)
		f.AddUniversal(2)
		f.AddExistential(3, 1)
		f.AddExistential(4, 2)
		for i := 0; i < 3+rng.Intn(6); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(1+rng.Intn(4)), rng.Intn(2) == 0))
			}
			f.Matrix.Clauses = append(f.Matrix.Clauses, c)
		}
		want, err := dqbf.BruteForce(f)
		if err != nil {
			t.Fatal(err)
		}
		res := Refute(f, Options{})
		if res.Verdict == Inconclusive {
			continue
		}
		conclusive++
		got := res.Verdict == Satisfied
		if got != want {
			t.Fatalf("iter %d: verdict %v, brute force %v", iter, res.Verdict, want)
		}
	}
	if conclusive < 50 {
		t.Fatalf("only %d/60 conclusive with full coverage budget", conclusive)
	}
}

func TestNoUniversals(t *testing.T) {
	f := dqbf.New()
	f.AddExistential(1)
	f.Matrix.AddDimacsClause(1)
	if res := Refute(f, Options{}); res.Verdict != Satisfied {
		t.Fatalf("SAT instance: %v", res.Verdict)
	}
	f2 := dqbf.New()
	f2.AddExistential(1)
	f2.Matrix.AddDimacsClause(1)
	f2.Matrix.AddDimacsClause(-1)
	if res := Refute(f2, Options{}); res.Verdict != Refuted {
		t.Fatalf("UNSAT instance: %v", res.Verdict)
	}
}
