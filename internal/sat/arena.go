package sat

import (
	"math"

	"repro/internal/cnf"
)

// The clause arena stores every clause of the solver in one flat slab of
// 32-bit words instead of a slice of heap-allocated clause objects. A clause
// is a record
//
//	[ header | lbd/forward | activity | lit_0 ... lit_{n-1} ]
//
// referenced by the word offset of its header (a cref). The header packs the
// literal count with the learnt and deleted flags; the second word holds the
// LBD of learnt clauses (and doubles as the forwarding address during
// compaction); the third word holds the clause activity as float32 bits.
//
// The layout removes one pointer dereference and one cache line per clause
// visit on the propagation hot path, eliminates per-clause allocations, and
// lets clause-database reduction reclaim memory with a compacting garbage
// collector (relocation in the style of MiniSat's ClauseAllocator).

// cref references a clause by the word offset of its header in the arena.
type cref = uint32

// crefUndef marks "no clause": unset reasons and absent antecedents.
const crefUndef cref = ^cref(0)

const (
	hdrWords = 3 // header, lbd, activity

	flagLearnt  uint32 = 1 << 30
	flagDeleted uint32 = 1 << 31
	sizeMask    uint32 = flagLearnt - 1
)

// arena is the packed clause slab. The slab grows by appending; deleted
// clauses keep their header (so the arena stays walkable) and their space is
// reclaimed by compact.
type arena struct {
	data   []cnf.Lit // headers are stored as raw int32 bit patterns
	wasted int       // words occupied by deleted clauses
}

// alloc appends a clause record and returns its cref.
func (a *arena) alloc(lits []cnf.Lit, learnt bool) cref {
	h := uint32(len(lits))
	if learnt {
		h |= flagLearnt
	}
	c := cref(len(a.data))
	a.data = append(a.data, cnf.Lit(h), 0, 0)
	a.data = append(a.data, lits...)
	return c
}

func (a *arena) size(c cref) int     { return int(uint32(a.data[c]) & sizeMask) }
func (a *arena) learnt(c cref) bool  { return uint32(a.data[c])&flagLearnt != 0 }
func (a *arena) deleted(c cref) bool { return uint32(a.data[c])&flagDeleted != 0 }

// lits returns the clause literals as a zero-copy view into the slab. The
// view is invalidated by alloc and compact.
func (a *arena) lits(c cref) []cnf.Lit {
	return a.data[c+hdrWords : int(c)+hdrWords+a.size(c)]
}

func (a *arena) lbd(c cref) int       { return int(a.data[c+1]) }
func (a *arena) setLBD(c cref, v int) { a.data[c+1] = cnf.Lit(v) }

func (a *arena) activity(c cref) float32 {
	return math.Float32frombits(uint32(a.data[c+2]))
}

func (a *arena) setActivity(c cref, v float32) {
	a.data[c+2] = cnf.Lit(math.Float32bits(v))
}

// delete marks the clause dead and accounts its space as reclaimable.
func (a *arena) delete(c cref) {
	a.data[c] = cnf.Lit(uint32(a.data[c]) | flagDeleted)
	a.wasted += hdrWords + a.size(c)
}

// words returns the slab length in 32-bit words.
func (a *arena) words() int { return len(a.data) }

// next returns the cref following c when walking the slab front to back
// (deleted records included).
func (a *arena) next(c cref) cref { return c + cref(hdrWords+a.size(c)) }

// reloc moves the clause *c references into `to` (once; later calls reuse the
// forwarding address stored in the old record) and updates *c. Detached
// clauses are never relocated because nothing references them, so the deleted
// flag is free to double as the "already moved" marker.
func (a *arena) reloc(c *cref, to *arena) {
	old := *c
	if a.deleted(old) {
		*c = cref(uint32(a.data[old+1]))
		return
	}
	n := hdrWords + a.size(old)
	moved := cref(len(to.data))
	to.data = append(to.data, a.data[old:int(old)+n]...)
	a.data[old] = cnf.Lit(uint32(a.data[old]) | flagDeleted)
	a.data[old+1] = cnf.Lit(moved)
	*c = moved
}
