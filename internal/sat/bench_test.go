package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// buildChainFormula builds a propagation-heavy instance: n variables linked by
// implication chains plus random ternary clauses. Deciding the first variable
// floods unit propagation through the chains, which is exactly the hot path
// the packed clause arena targets.
func buildChainFormula(n, extra int, seed int64) *cnf.Formula {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.NewFormula(n)
	for v := 1; v < n; v++ {
		// v -> v+1
		f.AddClause(cnf.NegLit(cnf.Var(v)), cnf.PosLit(cnf.Var(v+1)))
	}
	for i := 0; i < extra; i++ {
		a := cnf.Var(1 + rng.Intn(n))
		b := cnf.Var(1 + rng.Intn(n))
		c := cnf.Var(1 + rng.Intn(n))
		if a == b || b == c || a == c {
			continue
		}
		f.AddClause(cnf.NewLit(a, rng.Intn(2) == 0), cnf.NewLit(b, rng.Intn(2) == 0), cnf.PosLit(c))
	}
	return f
}

// BenchmarkPropagate measures raw unit-propagation throughput: one decision
// triggers ~n propagations across long watch lists. ns/op and allocs/op are
// the metrics the packed-arena layout is judged on.
func BenchmarkPropagate(b *testing.B) {
	f := buildChainFormula(2000, 6000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New()
		if !s.AddFormula(f) {
			b.Fatal("formula trivially UNSAT")
		}
		b.StartTimer()
		if s.SolveAssuming([]cnf.Lit{cnf.PosLit(1)}) == Unknown {
			b.Fatal("unexpected Unknown")
		}
	}
}

// BenchmarkSolveRandom3SAT measures full CDCL search (propagation, conflict
// analysis, clause learning, reduceDB) on moderately hard random 3-SAT near
// the phase transition.
func BenchmarkSolveRandom3SAT(b *testing.B) {
	const nVars = 120
	rng := rand.New(rand.NewSource(7))
	f := cnf.NewFormula(nVars)
	for i := 0; i < nVars*42/10; i++ {
		var c cnf.Clause
		used := map[int]bool{}
		for len(c) < 3 {
			v := 1 + rng.Intn(nVars)
			if used[v] {
				continue
			}
			used[v] = true
			c = append(c, cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0))
		}
		f.Clauses = append(f.Clauses, c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if !s.AddFormula(f) {
			b.Fatal("trivially UNSAT")
		}
		if s.Solve() == Unknown {
			b.Fatal("unexpected Unknown")
		}
	}
}

// BenchmarkIncrementalAssumptions measures the sweep-style workload: one
// clause database queried many times under flipping assumptions.
func BenchmarkIncrementalAssumptions(b *testing.B) {
	f := buildChainFormula(600, 1800, 3)
	s := New()
	if !s.AddFormula(f) {
		b.Fatal("formula trivially UNSAT")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := cnf.Var(1 + i%600)
		s.SolveAssuming([]cnf.Lit{cnf.NewLit(v, i%2 == 0)})
	}
}
