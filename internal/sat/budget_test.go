package sat

import (
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cnf"
)

// addGatedPigeonhole adds PHP(n+1, n) — n+1 pigeons into n holes, a classic
// exponentially hard UNSAT family for CDCL — with every clause guarded by a
// fresh gate literal g, so the instance is hard under the assumption g and
// trivially satisfiable under ¬g. Returns g.
func addGatedPigeonhole(s *Solver, n int) cnf.Lit {
	g := cnf.PosLit(s.NewVar())
	p := make([][]cnf.Var, n+1)
	for i := range p {
		p[i] = make([]cnf.Var, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		c := []cnf.Lit{g.Not()}
		for j := 0; j < n; j++ {
			c = append(c, cnf.PosLit(p[i][j]))
		}
		s.AddClause(c...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(g.Not(), cnf.NegLit(p[i][j]), cnf.NegLit(p[k][j]))
			}
		}
	}
	return g
}

func TestBudgetCancelMidSolve(t *testing.T) {
	s := New()
	g := addGatedPigeonhole(s, 11)
	b := budget.New(budget.Limits{})
	s.Budget = b

	go func() {
		time.Sleep(50 * time.Millisecond)
		b.Cancel()
	}()
	start := time.Now()
	st, err := s.SolveErr([]cnf.Lit{g})
	elapsed := time.Since(start)
	if st != Unknown {
		t.Fatalf("want Unknown after cancellation, got %v (in %v)", st, elapsed)
	}
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("want budget.ErrCancelled, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	if b.ConflictsUsed() == 0 {
		t.Fatal("budget metering recorded no conflicts mid-solve")
	}

	// The solver must stay reusable: with the gate off it is trivially SAT.
	s.Budget = nil
	if got := s.SolveAssuming([]cnf.Lit{g.Not()}); got != Sat {
		t.Fatalf("solver not reusable after cancel: got %v", got)
	}
}

func TestBudgetDeadline(t *testing.T) {
	s := New()
	g := addGatedPigeonhole(s, 11)
	s.Budget = budget.New(budget.Limits{Timeout: 100 * time.Millisecond})
	start := time.Now()
	st, err := s.SolveErr([]cnf.Lit{g})
	if st != Unknown || !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("want (Unknown, ErrDeadline), got (%v, %v)", st, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not prompt: took %v", elapsed)
	}
}

func TestBudgetConflictCap(t *testing.T) {
	s := New()
	g := addGatedPigeonhole(s, 9)
	b := budget.New(budget.Limits{Conflicts: 100})
	s.Budget = b
	st, err := s.SolveErr([]cnf.Lit{g})
	if st != Unknown || !errors.Is(err, budget.ErrConflicts) {
		t.Fatalf("want (Unknown, ErrConflicts), got (%v, %v)", st, err)
	}
	if used := b.ConflictsUsed(); used < 100 || used > 200 {
		t.Fatalf("conflict meter off: %d", used)
	}
}

func TestBudgetDoesNotPerturbVerdicts(t *testing.T) {
	// A solvable instance under a generous budget must still be decided.
	s := New()
	g := addGatedPigeonhole(s, 4) // PHP(5,4): easy
	s.Budget = budget.New(budget.Limits{Timeout: time.Minute})
	if st := s.SolveAssuming([]cnf.Lit{g}); st != Unsat {
		t.Fatalf("PHP(5,4) must be Unsat, got %v", st)
	}
	if st := s.SolveAssuming([]cnf.Lit{g.Not()}); st != Sat {
		t.Fatalf("gated-off instance must be Sat, got %v", st)
	}
}
