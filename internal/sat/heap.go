package sat

import "repro/internal/cnf"

// varHeap is a binary max-heap of variables ordered by VSIDS activity.
// It keeps an index from variable to heap position so that activities can be
// updated in place (percolating the entry up as needed).
type varHeap struct {
	data []cnf.Var
	pos  []int // variable -> index in data, -1 if absent
}

func (h *varHeap) ensure(v cnf.Var) {
	for len(h.pos) <= int(v) {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) empty() bool { return len(h.data) == 0 }

func (h *varHeap) contains(v cnf.Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v cnf.Var, act []float64) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data)-1, act)
}

// update restores the heap property after v's activity increased.
func (h *varHeap) update(v cnf.Var, act []float64) {
	if !h.contains(v) {
		return
	}
	h.up(h.pos[v], act)
}

func (h *varHeap) removeTop(act []float64) cnf.Var {
	top := h.data[0]
	last := len(h.data) - 1
	h.data[0] = h.data[last]
	h.pos[h.data[0]] = 0
	h.data = h.data[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0, act)
	}
	return top
}

func (h *varHeap) up(i int, act []float64) {
	v := h.data[i]
	for i > 0 {
		p := (i - 1) / 2
		if act[h.data[p]] >= act[v] {
			break
		}
		h.data[i] = h.data[p]
		h.pos[h.data[i]] = i
		i = p
	}
	h.data[i] = v
	h.pos[v] = i
}

func (h *varHeap) down(i int, act []float64) {
	v := h.data[i]
	n := len(h.data)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && act[h.data[c+1]] > act[h.data[c]] {
			c++
		}
		if act[h.data[c]] <= act[v] {
			break
		}
		h.data[i] = h.data[c]
		h.pos[h.data[i]] = i
		i = c
	}
	h.data[i] = v
	h.pos[v] = i
}
