package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// checkHeapInvariant verifies the max-heap ordering and the var→position
// index after every mutation.
func checkHeapInvariant(t *testing.T, h *varHeap, act []float64) {
	t.Helper()
	for i, v := range h.data {
		if h.pos[v] != i {
			t.Fatalf("pos[%d] = %d, but data[%d] = %d", v, h.pos[v], i, v)
		}
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < len(h.data) && act[h.data[c]] > act[v] {
				t.Fatalf("heap violation: act[data[%d]]=%v > act[data[%d]]=%v",
					c, act[h.data[c]], i, act[v])
			}
		}
	}
	for v, p := range h.pos {
		if p >= 0 && (p >= len(h.data) || h.data[p] != cnf.Var(v)) {
			t.Fatalf("stale pos entry: pos[%d] = %d", v, p)
		}
	}
}

// TestHeapPropertyRandom drives the VSIDS heap through random interleavings
// of insert, activity bump (update), global decay rescale, and removeTop,
// checking after every operation that the max-activity invariant and the
// position index hold, and that removeTop always yields a maximal entry.
func TestHeapPropertyRandom(t *testing.T) {
	const nVars = 60
	rng := rand.New(rand.NewSource(424242))
	var h varHeap
	act := make([]float64, nVars+1)
	contained := make(map[cnf.Var]bool)

	maxActivity := func() float64 {
		best := -1.0
		for v := range contained {
			if act[v] > best {
				best = act[v]
			}
		}
		return best
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert a random variable (may already be present)
			v := cnf.Var(1 + rng.Intn(nVars))
			h.insert(v, act)
			contained[v] = true
		case op < 7: // bump: activity only ever increases, then percolates up
			v := cnf.Var(1 + rng.Intn(nVars))
			act[v] += rng.Float64() * 10
			h.update(v, act)
		case op < 8: // decay rescale: uniform scaling preserves the order
			for i := range act {
				act[i] *= 1e-3
			}
		default: // removeTop must return a maximal contained variable
			if h.empty() {
				continue
			}
			want := maxActivity()
			got := h.removeTop(act)
			if !contained[got] {
				t.Fatalf("step %d: removeTop returned %d which was not contained", step, got)
			}
			if act[got] != want {
				t.Fatalf("step %d: removeTop activity %v, want max %v", step, act[got], want)
			}
			delete(contained, got)
		}
		if len(h.data) != len(contained) {
			t.Fatalf("step %d: heap size %d, tracked %d", step, len(h.data), len(contained))
		}
		for v := range contained {
			if !h.contains(v) {
				t.Fatalf("step %d: heap lost variable %d", step, v)
			}
		}
		checkHeapInvariant(t, &h, act)
	}
}

// TestHeapDrainSorted fills the heap with distinct activities and checks that
// draining it yields variables in strictly decreasing activity order.
func TestHeapDrainSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h varHeap
	const n = 100
	act := make([]float64, n+1)
	for v := 1; v <= n; v++ {
		act[v] = rng.Float64()
		h.insert(cnf.Var(v), act)
	}
	prev := 2.0
	for !h.empty() {
		v := h.removeTop(act)
		if act[v] > prev {
			t.Fatalf("drain out of order: %v after %v", act[v], prev)
		}
		prev = act[v]
	}
}
