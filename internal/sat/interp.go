package sat

import "repro/internal/cnf"

// Interpolating proof mode.
//
// A refutation of A(X, Z_A) ∧ B(X, Z_B) — X shared, Z_A/Z_B local — yields a
// Craig interpolant I over X with A ⇒ I and I ∧ B unsatisfiable. The solver
// computes I alongside the refutation using McMillan's labeled interpolation
// system over the resolution proof CDCL implicitly performs:
//
//   - an A-clause starts with the disjunction of its shared literals,
//   - a B-clause starts with ⊤,
//   - a resolution on an A-local pivot joins the partial interpolants with ∨,
//     any other pivot (shared or B-local) joins them with ∧.
//
// The proof is never materialized: every clause (problem and learned) carries
// a partial interpolant, first-UIP conflict analysis folds the antecedents'
// interpolants as it resolves, and literals analyze skips because they are
// falsified at level 0 are folded as resolutions against the level-0 unit
// chain that forced them (computed lazily through the reason graph and
// memoized). The interpolant of the derived empty clause is the answer.
//
// Proof mode restricts the solver: clauses must be added through
// AddClauseTagged, assumptions are not supported (encode them as unit
// clauses), learned-clause minimization is disabled (its resolutions are not
// recorded), and the clause database is never reduced or compacted (crefs
// must stay stable because they key the partial-interpolant map). Extraction
// instances are small one-shot refutations, so none of this matters for
// performance; the long-lived oracles never enable proof mode.

// ItpRef is an opaque handle to a node of the interpolant structure being
// built. The solver only ever stores and passes these back to the builder.
type ItpRef int64

// ItpBuilder constructs the interpolant bottom-up. The caller provides the
// representation (internal/defex builds AIG nodes); the solver only dictates
// the structure.
type ItpBuilder interface {
	True() ItpRef
	False() ItpRef
	// Lit returns the interpolant node for a shared literal.
	Lit(l cnf.Lit) ItpRef
	And(a, b ItpRef) ItpRef
	Or(a, b ItpRef) ItpRef
}

// ItpClass labels a variable's partition membership.
type ItpClass uint8

const (
	// ItpClassA marks a variable local to the A part.
	ItpClassA ItpClass = iota
	// ItpClassB marks a variable local to the B part.
	ItpClassB
	// ItpClassShared marks a variable of the shared vocabulary; only these
	// may appear in the interpolant.
	ItpClassShared
)

// itpState is the proof-mode bookkeeping attached to an interpolating solver.
type itpState struct {
	builder ItpBuilder
	class   func(cnf.Var) ItpClass

	// clause maps every live clause (problem and learned) to its partial
	// interpolant. Stable because proof mode never reduces or compacts.
	clause map[cref]ItpRef
	// zero maps level-0-assigned variables to the interpolant of the unit
	// clause {l} derivable for their forced literal (memoized lazily).
	zero map[cnf.Var]ItpRef

	// lastLearnt is the partial interpolant of the clause the most recent
	// analyze derived.
	lastLearnt ItpRef

	final    ItpRef
	hasFinal bool
}

// BeginInterpolation switches the solver into proof mode. It must be called
// on a fresh solver, before any clause is added; class labels every variable
// that will ever occur (shared variables are the interpolant vocabulary).
func (s *Solver) BeginInterpolation(b ItpBuilder, class func(cnf.Var) ItpClass) {
	if s.numProblem > 0 || len(s.trail) > 0 || !s.ok {
		panic("sat: BeginInterpolation on a non-fresh solver")
	}
	s.itp = &itpState{
		builder: b,
		class:   class,
		clause:  make(map[cref]ItpRef),
		zero:    make(map[cnf.Var]ItpRef),
	}
}

// Interpolant returns the interpolant of the refutation after an Unsat
// verdict in proof mode. The second result is false while no refutation has
// been completed.
func (s *Solver) Interpolant() (ItpRef, bool) {
	if s.itp == nil || !s.itp.hasFinal {
		return 0, false
	}
	return s.itp.final, true
}

// itpResolve combines the partial interpolants of two clauses resolved on
// pivot: ∨ for an A-local pivot, ∧ otherwise (McMillan's system). The rule
// stays sound for "weakened" steps where the pivot is absent from one side —
// the resolvent then subsumes-or-equals the union, and a clause's partial
// interpolant remains valid for any weakening of the clause.
func (s *Solver) itpResolve(a, b ItpRef, pivot cnf.Var) ItpRef {
	if s.itp.class(pivot) == ItpClassA {
		return s.itp.builder.Or(a, b)
	}
	return s.itp.builder.And(a, b)
}

// zeroItpOf returns the interpolant of the derivable unit clause forcing v's
// level-0 assignment, chasing the reason graph lazily. Unit problem clauses
// and learned units seed the memo; propagated literals fold their reason
// clause's interpolant with the units of the reason's remaining literals.
func (s *Solver) zeroItpOf(v cnf.Var) ItpRef {
	st := s.itp
	if r, ok := st.zero[v]; ok {
		return r
	}
	c := s.reason[v]
	if c == crefUndef {
		panic("sat: no recorded interpolant for level-0 literal")
	}
	lits := s.ca.lits(c)
	cur, ok := st.clause[c]
	if !ok {
		panic("sat: reason clause without interpolant")
	}
	// lits[0] is the implied literal; the rest are false at level 0.
	for _, q := range lits[1:] {
		cur = s.itpResolve(cur, s.zeroItpOf(q.Var()), q.Var())
	}
	st.zero[v] = cur
	return cur
}

// setFinal records the interpolant of the empty clause.
func (s *Solver) setFinal(r ItpRef) {
	s.itp.final = r
	s.itp.hasFinal = true
}

// finalizeItp resolves a level-0 conflict clause down to the empty clause:
// every literal of the conflicting clause is false at level 0, so each is
// eliminated against its level-0 unit chain.
func (s *Solver) finalizeItp(confl cref) {
	cur, ok := s.itp.clause[confl]
	if !ok {
		panic("sat: conflict clause without interpolant")
	}
	for _, q := range s.ca.lits(confl) {
		cur = s.itpResolve(cur, s.zeroItpOf(q.Var()), q.Var())
	}
	s.setFinal(cur)
}

// AddClauseTagged adds a clause to the A part (inB false) or B part (inB
// true) of an interpolating solver. Like AddClause it returns false once the
// clause set is unsatisfiable at level 0 — at which point the refutation's
// interpolant is already available from Interpolant.
func (s *Solver) AddClauseTagged(inB bool, lits ...cnf.Lit) bool {
	st := s.itp
	if st == nil {
		panic("sat: AddClauseTagged without BeginInterpolation")
	}
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClauseTagged above decision level 0")
	}
	c := make(cnf.Clause, len(lits))
	copy(c, lits)
	cl, taut := c.Normalize()
	if taut {
		return true
	}
	// Base partial interpolant of the clause: ⊤ for B-clauses, the
	// disjunction of the shared literals for A-clauses.
	base := st.builder.True()
	if !inB {
		base = st.builder.False()
		for _, l := range cl {
			if st.class(l.Var()) == ItpClassShared {
				base = st.builder.Or(base, st.builder.Lit(l))
			}
		}
	}
	// Remove literals already false at level 0 — each removal is a recorded
	// resolution against the unit chain that falsified the literal.
	out := cl[:0]
	for _, l := range cl {
		if int(l.Var()) > s.numVars {
			s.EnsureVars(int(l.Var()))
		}
		switch s.value(l) {
		case lTrue:
			return true
		case lFalse:
			base = s.itpResolve(base, s.zeroItpOf(l.Var()), l.Var())
		default:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.setFinal(base)
		s.ok = false
		return false
	case 1:
		st.zero[out[0].Var()] = base
		s.uncheckedEnqueue(out[0], crefUndef)
		if confl := s.propagate(); confl != crefUndef {
			s.finalizeItp(confl)
			s.ok = false
			return false
		}
		return true
	}
	cr := s.attachClause(out, false)
	st.clause[cr] = base
	s.numProblem++
	return true
}
