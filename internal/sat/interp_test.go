package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// treeItp is a reference ItpBuilder: a plain formula tree evaluated directly.
// It checks the solver's proof bookkeeping without dragging in the AIG layer.
type treeItp struct {
	nodes []treeNode
}

type treeNode struct {
	op   byte // 'T', 'F', 'L', '&', '|'
	lit  cnf.Lit
	a, b ItpRef
}

func (t *treeItp) add(n treeNode) ItpRef {
	t.nodes = append(t.nodes, n)
	return ItpRef(len(t.nodes) - 1)
}

func (t *treeItp) True() ItpRef            { return t.add(treeNode{op: 'T'}) }
func (t *treeItp) False() ItpRef           { return t.add(treeNode{op: 'F'}) }
func (t *treeItp) Lit(l cnf.Lit) ItpRef    { return t.add(treeNode{op: 'L', lit: l}) }
func (t *treeItp) And(a, b ItpRef) ItpRef  { return t.add(treeNode{op: '&', a: a, b: b}) }
func (t *treeItp) Or(a, b ItpRef) ItpRef   { return t.add(treeNode{op: '|', a: a, b: b}) }

func (t *treeItp) eval(r ItpRef, assign func(cnf.Var) bool) bool {
	n := t.nodes[r]
	switch n.op {
	case 'T':
		return true
	case 'F':
		return false
	case 'L':
		return assign(n.lit.Var()) != n.lit.Neg()
	case '&':
		return t.eval(n.a, assign) && t.eval(n.b, assign)
	default:
		return t.eval(n.a, assign) || t.eval(n.b, assign)
	}
}

// vars collects the variables the interpolant mentions, for the vocabulary
// check.
func (t *treeItp) vars(r ItpRef, out map[cnf.Var]bool) {
	n := t.nodes[r]
	switch n.op {
	case 'L':
		out[n.lit.Var()] = true
	case '&', '|':
		t.vars(n.a, out)
		t.vars(n.b, out)
	}
}

func evalClauses(cs [][]cnf.Lit, assign func(cnf.Var) bool) bool {
	for _, c := range cs {
		sat := false
		for _, l := range c {
			if assign(l.Var()) != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// checkInterpolant refutes A ∧ B in proof mode and verifies the Craig
// properties by full truth-table enumeration over vars 1..n: A ⇒ I, I ∧ B
// unsatisfiable, and vars(I) ⊆ shared. Returns false when the pair was
// satisfiable (no interpolant to check).
func checkInterpolant(t *testing.T, a, b [][]cnf.Lit, n int, class func(cnf.Var) ItpClass) bool {
	t.Helper()
	tree := &treeItp{}
	s := New()
	s.BeginInterpolation(tree, class)
	ok := true
	for _, c := range a {
		ok = s.AddClauseTagged(false, c...) && ok
	}
	for _, c := range b {
		ok = s.AddClauseTagged(true, c...) && ok
	}
	if ok {
		if s.Solve() == Sat {
			return false
		}
	}
	itp, has := s.Interpolant()
	if !has {
		t.Fatalf("Unsat refutation but no interpolant")
	}
	iv := map[cnf.Var]bool{}
	tree.vars(itp, iv)
	for v := range iv {
		if class(v) != ItpClassShared {
			t.Fatalf("interpolant mentions non-shared variable %d", v)
		}
	}
	for bits := 0; bits < 1<<n; bits++ {
		assign := func(v cnf.Var) bool { return bits&(1<<(v-1)) != 0 }
		ev := tree.eval(itp, assign)
		if evalClauses(a, assign) && !ev {
			t.Fatalf("A holds but interpolant false at assignment %b", bits)
		}
		if ev && evalClauses(b, assign) {
			t.Fatalf("interpolant and B both hold at assignment %b", bits)
		}
	}
	return true
}

// TestInterpolantXorDefinition is the definition-extraction shape: A encodes
// y ↔ x1⊕x2 together with y, B encodes the primed copy y' ↔ x1⊕x2 with ¬y'.
// Shared vocabulary {x1, x2}; the interpolant must behave exactly like x1⊕x2.
func TestInterpolantXorDefinition(t *testing.T) {
	const (
		x1 cnf.Var = 1
		x2 cnf.Var = 2
		y  cnf.Var = 3
		yp cnf.Var = 4
	)
	xorCNF := func(out cnf.Var) [][]cnf.Lit {
		o := cnf.PosLit(out)
		a, b := cnf.PosLit(x1), cnf.PosLit(x2)
		return [][]cnf.Lit{
			{o.Not(), a, b},
			{o.Not(), a.Not(), b.Not()},
			{o, a.Not(), b},
			{o, a, b.Not()},
		}
	}
	a := append(xorCNF(y), []cnf.Lit{cnf.PosLit(y)})
	b := append(xorCNF(yp), []cnf.Lit{cnf.NegLit(yp)})
	class := func(v cnf.Var) ItpClass {
		switch v {
		case x1, x2:
			return ItpClassShared
		case y:
			return ItpClassA
		default:
			return ItpClassB
		}
	}
	if !checkInterpolant(t, a, b, 4, class) {
		t.Fatal("xor definition instance unexpectedly satisfiable")
	}

	// The interpolant of this instance is the defining function itself.
	tree := &treeItp{}
	s := New()
	s.BeginInterpolation(tree, class)
	for _, c := range a {
		s.AddClauseTagged(false, c...)
	}
	okB := true
	for _, c := range b {
		okB = s.AddClauseTagged(true, c...) && okB
	}
	if okB && s.Solve() != Unsat {
		t.Fatal("expected Unsat")
	}
	itp, _ := s.Interpolant()
	for bits := 0; bits < 4; bits++ {
		assign := func(v cnf.Var) bool { return bits&(1<<(v-1)) != 0 }
		want := assign(x1) != assign(x2)
		if got := tree.eval(itp, assign); got != want {
			t.Fatalf("interpolant(x1=%v,x2=%v) = %v, want xor = %v", assign(x1), assign(x2), got, want)
		}
	}
}

// TestInterpolantEmptyClauseAtAdd covers refutations completed during clause
// addition (level-0 propagation), before any search runs.
func TestInterpolantEmptyClauseAtAdd(t *testing.T) {
	// A: {x}, {¬x, y}; B: {¬y}. Shared: x? Take shared = {y}, A-local x.
	class := func(v cnf.Var) ItpClass {
		if v == 2 {
			return ItpClassShared
		}
		if v == 1 {
			return ItpClassA
		}
		return ItpClassB
	}
	a := [][]cnf.Lit{{cnf.PosLit(1)}, {cnf.NegLit(1), cnf.PosLit(2)}}
	b := [][]cnf.Lit{{cnf.NegLit(2)}}
	if !checkInterpolant(t, a, b, 2, class) {
		t.Fatal("instance unexpectedly satisfiable")
	}
}

// TestInterpolantRandom cross-checks the Craig properties on random A/B
// splits of random small CNFs by exhaustive enumeration.
func TestInterpolantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 8
	refuted := 0
	for iter := 0; iter < 500; iter++ {
		// Random class per variable; random clauses respecting the partition
		// (an A-clause draws from A-local ∪ shared, a B-clause from B-local ∪
		// shared).
		classes := make([]ItpClass, n+1)
		var aVars, bVars []cnf.Var
		for v := cnf.Var(1); v <= n; v++ {
			classes[v] = ItpClass(rng.Intn(3))
			if classes[v] != ItpClassB {
				aVars = append(aVars, v)
			}
			if classes[v] != ItpClassA {
				bVars = append(bVars, v)
			}
		}
		if len(aVars) == 0 || len(bVars) == 0 {
			continue
		}
		class := func(v cnf.Var) ItpClass { return classes[v] }
		randClauses := func(pool []cnf.Var, m int) [][]cnf.Lit {
			var out [][]cnf.Lit
			for i := 0; i < m; i++ {
				k := 1 + rng.Intn(3)
				var c []cnf.Lit
				for j := 0; j < k; j++ {
					c = append(c, cnf.NewLit(pool[rng.Intn(len(pool))], rng.Intn(2) == 0))
				}
				out = append(out, c)
			}
			return out
		}
		a := randClauses(aVars, 3+rng.Intn(8))
		b := randClauses(bVars, 3+rng.Intn(8))
		if checkInterpolant(t, a, b, n, class) {
			refuted++
		}
	}
	if refuted == 0 {
		t.Fatal("no random instance was refuted; the test exercised nothing")
	}
	t.Logf("checked %d refutations", refuted)
}
