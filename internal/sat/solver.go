// Package sat implements a CDCL (conflict-driven clause learning) SAT solver.
//
// The solver follows the architecture of MiniSat-style solvers: two-literal
// watching for unit propagation, VSIDS variable activities with a binary heap,
// first-UIP conflict analysis with recursive clause minimization, phase
// saving, Luby-sequence restarts, and LBD/activity-based learned-clause
// deletion. It supports incremental solving under assumptions and extraction
// of the subset of assumptions responsible for unsatisfiability.
//
// Clause storage is a packed arena (see arena.go): all clauses live in one
// flat slab of 32-bit words and are referenced by offsets, which keeps the
// propagation hot path free of pointer chasing and per-clause allocations.
// Space freed by clause-database reduction is reclaimed by a compacting
// garbage collector.
//
// It is the oracle for every higher layer in this repository: the partial
// MaxSAT solver, SAT sweeping on AIGs, the final SAT checks of the QBF and
// DQBF solvers, and the instantiation-based iDQ baseline.
package sat

import (
	"errors"
	"sort"

	"repro/internal/budget"
	"repro/internal/cnf"
	"repro/internal/faults"
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver stopped before reaching a verdict (budget).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBudget is returned by SolveErr when the conflict or propagation budget
// is exhausted before a verdict is reached.
var ErrBudget = errors.New("sat: budget exhausted")

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// watcher references a clause watching some literal; blocker is a literal of
// the clause that, when true, lets propagation skip the clause entirely.
type watcher struct {
	cref    cref
	blocker cnf.Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; use New.
type Solver struct {
	ca arena // packed clause storage (problem + learned)

	watches [][]watcher // indexed by int(lit)

	assign   []lbool   // indexed by var
	level    []int     // decision level per var
	reason   []cref    // antecedent clause per var, crefUndef if decision/none
	polarity []bool    // saved phase per var (true = last assigned true)
	pinned   []bool    // frozen phase per var: phase saving skips these
	activity []float64 // VSIDS activity per var

	trail    []cnf.Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	heap       varHeap
	varInc     float64
	varDec     float64
	claInc     float32
	claDec     float32
	seen       []byte
	toClear    []cnf.Var
	numVars    int
	numLearnts int
	numProblem int

	ok bool // false once a top-level conflict is derived

	assumptions []cnf.Lit
	conflictSet []cnf.Lit // failed assumptions after Unsat-under-assumptions

	model cnf.Assignment

	// Budgets; <= 0 means unlimited.
	ConflictBudget    int64
	PropagationBudget int64

	// Budget, when non-nil, is a shared cancellable budget polled inside the
	// search loop: the solve returns Unknown (with the budget's error from
	// SolveErr) promptly after cancellation, deadline expiry, or cap
	// exhaustion. Conflicts and decisions are metered into the budget. The
	// solver stays reusable after a budgeted stop.
	Budget *budget.Budget

	// KeepLearnts, when > 0, raises the floor of the learned-clause database
	// size before reduceDB kicks in (default 100). Long-lived incremental
	// consumers (internal/oracle) raise it so learned clauses survive across
	// the many small queries of a sweep round instead of being evicted
	// between them.
	KeepLearnts int

	budgetPoll uint32 // search-loop iterations since the last budget check

	// itp, when non-nil, is the interpolating proof mode (see interp.go):
	// clause interpolants are threaded through conflict analysis, clause
	// minimization and database reduction are disabled, and assumptions are
	// rejected.
	itp *itpState

	// Statistics.
	Stats Stats

	rngState uint64
}

// Stats collects solver counters.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learned      int64
	Removed      int64
	Compactions  int64 // arena garbage collections
	SolveCalls   int64 // Solve/SolveAssuming invocations on this instance
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc:   1,
		varDec:   0.95,
		claInc:   1,
		claDec:   0.999,
		ok:       true,
		rngState: 0x9e3779b97f4a7c15,
	}
	// Variable 0 is unused; keep slot for dense indexing.
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.polarity = append(s.polarity, false)
	s.pinned = append(s.pinned, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.numVars }

// NumLearnts returns the number of learned clauses currently in the database.
func (s *Solver) NumLearnts() int { return s.numLearnts }

// ArenaBytes returns the current size of the packed clause arena in bytes.
func (s *Solver) ArenaBytes() int { return s.ca.words() * 4 }

// SetPhase freezes the decision phase of v: pickBranchLit will always try v
// with polarity pol first, and phase saving no longer overwrites it. Used by
// incremental consumers to pin activation literals of retired scopes to
// false so they never pollute branching.
func (s *Solver) SetPhase(v cnf.Var, pol bool) {
	s.EnsureVars(int(v))
	s.polarity[v] = pol
	s.pinned[v] = true
}

// Freeze pins the current saved phase of v (see SetPhase).
func (s *Solver) Freeze(v cnf.Var) {
	s.EnsureVars(int(v))
	s.pinned[v] = true
}

// Unfreeze releases a phase pin set by SetPhase or Freeze.
func (s *Solver) Unfreeze(v cnf.Var) {
	if int(v) <= s.numVars {
		s.pinned[v] = false
	}
}

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() cnf.Var {
	s.numVars++
	v := cnf.Var(s.numVars)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.polarity = append(s.polarity, false)
	s.pinned = append(s.pinned, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.heap.insert(v, s.activity)
	return v
}

// EnsureVars allocates variables up to and including n.
func (s *Solver) EnsureVars(n int) {
	for s.numVars < n {
		s.NewVar()
	}
}

func (s *Solver) value(l cnf.Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -a
	}
	return a
}

// Okay reports whether the clause database is still consistent at level 0.
func (s *Solver) Okay() bool { return s.ok }

// AddClause adds a clause. It returns false if the solver is already in an
// unsatisfiable state (now or before). Adding at decision level 0 only.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if s.itp != nil {
		panic("sat: AddClause on an interpolating solver; use AddClauseTagged")
	}
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	c := make(cnf.Clause, len(lits))
	copy(c, lits)
	cl, taut := c.Normalize()
	if taut {
		return true
	}
	// Remove false literals, detect satisfied clause.
	out := cl[:0]
	for _, l := range cl {
		if int(l.Var()) > s.numVars {
			s.EnsureVars(int(l.Var()))
		}
		switch s.value(l) {
		case lTrue:
			return true
		case lUndef:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		if s.propagate() != crefUndef {
			s.ok = false
			return false
		}
		return true
	}
	s.attachClause(out, false)
	s.numProblem++
	return true
}

// AddFormula adds all clauses of f, allocating variables as needed.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return s.ok
}

// attachClause allocates a clause in the arena and registers its watchers.
func (s *Solver) attachClause(lits []cnf.Lit, learnt bool) cref {
	if len(lits) < 2 {
		panic("sat: attaching short clause")
	}
	c := s.ca.alloc(lits, learnt)
	l0, l1 := lits[0], lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
	return c
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l cnf.Lit, from cref) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	if !s.pinned[v] {
		s.polarity[v] = !l.Neg()
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the cref of a conflicting
// clause or crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[l]
		// Only the watchers present when the scan starts are visited; anything
		// appended to s.watches[l] during the scan (a same-literal re-watch)
		// lands past n and is preserved by the tail copy below.
		n := len(ws)
		j := 0
	nextWatcher:
		for i := 0; i < n; i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			lits := s.ca.lits(w.cref)
			// Make sure the false literal (¬l) is lits[1].
			nl := l.Not()
			if lits[0] == nl {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{w.cref, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					wl := lits[1].Not()
					s.watches[wl] = append(s.watches[wl], watcher{w.cref, first})
					if wl == l {
						// The append aliased the slice being scanned and may
						// have grown or moved it; re-read so the copy-back
						// below does not drop the new watcher (regression
						// test: TestPropagateSelfAppendRewatch).
						ws = s.watches[l]
					}
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{w.cref, first}
			j++
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers and bail out.
				for i++; i < n; i++ {
					ws[j] = ws[i]
					j++
				}
				j += copy(ws[j:], ws[n:])
				s.watches[l] = ws[:j]
				s.qhead = len(s.trail)
				return w.cref
			}
			s.uncheckedEnqueue(first, w.cref)
		}
		// Keep watchers appended during the scan.
		j += copy(ws[j:], ws[n:])
		s.watches[l] = ws[:j]
	}
	return crefUndef
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = crefUndef
		if !s.heap.contains(v) {
			s.heap.insert(v, s.activity)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v, s.activity)
}

func (s *Solver) bumpClause(c cref) {
	act := s.ca.activity(c) + s.claInc
	s.ca.setActivity(c, act)
	if act > 1e20 {
		for d := cref(0); int(d) < s.ca.words(); d = s.ca.next(d) {
			if s.ca.learnt(d) && !s.ca.deleted(d) {
				s.ca.setActivity(d, s.ca.activity(d)*1e-20)
			}
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis. It returns the learned clause
// (with the asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl cref) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{0} // slot 0 for the asserting literal
	counter := 0
	var p cnf.Lit
	idx := len(s.trail) - 1
	first := true

	// Proof mode threads the partial interpolant through the same resolution
	// chain analyze walks implicitly.
	var itpCur ItpRef
	if s.itp != nil {
		itpCur = s.itp.clause[confl]
	}

	for {
		if s.ca.learnt(confl) {
			s.bumpClause(confl)
		}
		lits := s.ca.lits(confl)
		start := 0
		if !first {
			start = 1
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			} else if s.itp != nil && s.level[v] == 0 {
				// analyze drops level-0 literals silently; in the resolution
				// proof each drop resolves against the level-0 unit chain.
				itpCur = s.itpResolve(itpCur, s.zeroItpOf(v), v)
			}
		}
		first = false
		// Find next literal on the trail to expand.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
		if s.itp != nil {
			itpCur = s.itpResolve(itpCur, s.itp.clause[confl], p.Var())
		}
	}
	learnt[0] = p.Not()
	if s.itp != nil {
		s.itp.lastLearnt = itpCur
	}

	// Clause minimization: remove literals implied by the rest. Disabled in
	// proof mode — litRedundant performs resolutions the interpolant
	// bookkeeping never sees; the learnt literals' seen flags (cleared below
	// as a side effect of minimization) must still be reset.
	if s.itp != nil {
		for _, l := range learnt {
			s.seen[l.Var()] = 0
		}
	}
	if s.itp == nil {
		s.toClear = s.toClear[:0]
		for _, l := range learnt {
			s.seen[l.Var()] = 1
			s.toClear = append(s.toClear, l.Var())
		}
		j := 1
		for i := 1; i < len(learnt); i++ {
			v := learnt[i].Var()
			if s.reason[v] == crefUndef || !s.litRedundant(learnt[i]) {
				learnt[j] = learnt[i]
				j++
			}
		}
		learnt = learnt[:j]
		for _, v := range s.toClear {
			s.seen[v] = 0
		}
	}

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	return learnt, btLevel
}

// litRedundant reports whether l is implied by the other marked literals,
// following reasons recursively (with an explicit stack). Variables marked
// during a successful check stay marked (they are redundant too) and are
// recorded in s.toClear for the caller to reset.
func (s *Solver) litRedundant(l cnf.Lit) bool {
	type frame struct {
		cref cref
		i    int
	}
	var stack []frame
	newlyMarked := len(s.toClear)
	stack = append(stack, frame{s.reason[l.Var()], 1})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		lits := s.ca.lits(f.cref)
		if f.i >= len(lits) {
			stack = stack[:len(stack)-1]
			continue
		}
		q := lits[f.i]
		f.i++
		v := q.Var()
		if s.level[v] == 0 || s.seen[v] == 1 {
			continue
		}
		if s.reason[v] == crefUndef {
			for _, u := range s.toClear[newlyMarked:] {
				s.seen[u] = 0
			}
			s.toClear = s.toClear[:newlyMarked]
			return false
		}
		s.seen[v] = 1
		s.toClear = append(s.toClear, v)
		stack = append(stack, frame{s.reason[v], 1})
	}
	return true
}

func (s *Solver) computeLBD(lits []cnf.Lit) int {
	levels := map[int]struct{}{}
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return len(levels)
}

func (s *Solver) pickBranchLit() (cnf.Lit, bool) {
	for !s.heap.empty() {
		v := s.heap.removeTop(s.activity)
		if s.assign[v] == lUndef {
			return cnf.NewLit(v, !s.polarity[v]), true
		}
	}
	return 0, false
}

// reduceDB removes roughly half of the learned clauses, keeping low-LBD and
// high-activity ones, then compacts the arena when enough space is dead.
func (s *Solver) reduceDB() {
	var learnts []cref
	for c := cref(0); int(c) < s.ca.words(); c = s.ca.next(c) {
		if s.ca.learnt(c) && !s.ca.deleted(c) {
			learnts = append(learnts, c)
		}
	}
	// Sort by (lbd, -activity): keep the glue clauses.
	sort.Slice(learnts, func(i, j int) bool {
		a, b := learnts[i], learnts[j]
		if la, lb := s.ca.lbd(a), s.ca.lbd(b); la != lb {
			return la < lb
		}
		return s.ca.activity(a) > s.ca.activity(b)
	})
	for _, c := range learnts[len(learnts)/2:] {
		if s.ca.lbd(c) <= 2 || s.isReason(c) {
			continue
		}
		s.detachClause(c)
		s.Stats.Removed++
	}
	// Compact once a fifth of the slab is dead.
	if s.ca.wasted*5 >= s.ca.words() {
		s.garbageCollect()
	}
}

// garbageCollect compacts the arena: live clauses move to a fresh slab and
// every cref in the watcher lists and reason array is relocated.
func (s *Solver) garbageCollect() {
	to := arena{data: make([]cnf.Lit, 0, s.ca.words()-s.ca.wasted)}
	for i := range s.watches {
		ws := s.watches[i]
		for j := range ws {
			s.ca.reloc(&ws[j].cref, &to)
		}
	}
	// Reasons are set only for assigned variables, i.e. those on the trail.
	for _, l := range s.trail {
		if r := &s.reason[l.Var()]; *r != crefUndef {
			s.ca.reloc(r, &to)
		}
	}
	s.ca = to
	s.Stats.Compactions++
}

func (s *Solver) isReason(c cref) bool {
	v := s.ca.lits(c)[0].Var()
	return s.reason[v] == c && s.assign[v] != lUndef
}

func (s *Solver) detachClause(c cref) {
	lits := s.ca.lits(c)
	if s.ca.learnt(c) {
		s.numLearnts--
	}
	for _, l := range []cnf.Lit{lits[0], lits[1]} {
		ws := s.watches[l.Not()]
		for i, w := range ws {
			if w.cref == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l.Not()] = ws[:len(ws)-1]
				break
			}
		}
	}
	s.ca.delete(c)
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	x := i - 1
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve determines satisfiability of the current clause set.
func (s *Solver) Solve() Status { return s.SolveAssuming(nil) }

// SolveAssuming determines satisfiability under the given assumption literals.
// On Sat, Model returns a full assignment. On Unsat, FailedAssumptions returns
// a subset of the assumptions that is already unsatisfiable together with the
// clause set.
func (s *Solver) SolveAssuming(assumps []cnf.Lit) Status {
	st, _ := s.solve(assumps)
	return st
}

// SolveErr is like SolveAssuming but reports why an Unknown verdict was
// returned: ErrBudget for the legacy conflict/propagation budgets, or the
// shared budget's error (budget.ErrCancelled, budget.ErrDeadline, ...) when
// the Budget field stopped the search.
func (s *Solver) SolveErr(assumps []cnf.Lit) (Status, error) {
	return s.solve(assumps)
}

func (s *Solver) solve(assumps []cnf.Lit) (Status, error) {
	s.Stats.SolveCalls++
	// Fault-injection seam: every CDCL oracle call in the stack funnels
	// through here, so an armed plan can panic, stall, or fail the oracle.
	if err := faults.Fire(faults.SATSolve); err != nil {
		s.model = nil
		s.conflictSet = nil
		return Unknown, err
	}
	if !s.ok {
		s.conflictSet = nil
		return Unsat, nil
	}
	if s.itp != nil && len(assumps) > 0 {
		panic("sat: assumptions unsupported in proof mode; add unit clauses instead")
	}
	for _, l := range assumps {
		s.EnsureVars(int(l.Var()))
	}
	s.assumptions = append(s.assumptions[:0], assumps...)
	s.model = nil
	s.conflictSet = nil
	defer s.cancelUntil(0)

	confBudget := s.ConflictBudget
	propBudget := s.PropagationBudget
	startConf := s.Stats.Conflicts
	startProp := s.Stats.Propagations

	var restarts int64
	floor := 100.0
	if s.KeepLearnts > 0 {
		floor = float64(s.KeepLearnts)
	}
	maxLearnts := float64(s.numProblem)/3 + floor

	for {
		restarts++
		limit := luby(restarts) * 100
		st := s.search(limit, &maxLearnts)
		if st != Unknown {
			return st, nil
		}
		if err := s.Budget.Err(); err != nil {
			return Unknown, err
		}
		if confBudget > 0 && s.Stats.Conflicts-startConf >= confBudget {
			return Unknown, ErrBudget
		}
		if propBudget > 0 && s.Stats.Propagations-startProp >= propBudget {
			return Unknown, ErrBudget
		}
		s.Stats.Restarts++
	}
}

// stopRequested polls the shared budget every 64 search iterations (and
// unconditionally when force is set, i.e. on every conflict). The throttle
// keeps the deadline syscall off the propagation fast path.
func (s *Solver) stopRequested(force bool) bool {
	if s.Budget == nil {
		return false
	}
	s.budgetPoll++
	if !force && s.budgetPoll&63 != 0 {
		return false
	}
	return s.Budget.Stopped()
}

// search runs CDCL until a verdict, a restart (conflict limit), or budget.
func (s *Solver) search(conflictLimit int64, maxLearnts *float64) Status {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != crefUndef {
			s.Stats.Conflicts++
			conflicts++
			s.Budget.AddConflicts(1)
			if s.decisionLevel() == 0 {
				if s.itp != nil {
					s.finalizeItp(confl)
				}
				s.ok = false
				return Unsat
			}
			if s.stopRequested(true) {
				return Unknown
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				if s.itp != nil {
					s.itp.zero[learnt[0].Var()] = s.itp.lastLearnt
				}
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				c := s.attachClause(learnt, true)
				s.ca.setLBD(c, s.computeLBD(learnt))
				s.bumpClause(c)
				if s.itp != nil {
					s.itp.clause[c] = s.itp.lastLearnt
				}
				s.uncheckedEnqueue(learnt[0], c)
				s.Stats.Learned++
				s.numLearnts++
			}
			s.varInc /= s.varDec
			s.claInc /= s.claDec
			continue
		}
		// No conflict.
		if s.stopRequested(false) {
			return Unknown
		}
		if conflicts >= conflictLimit {
			s.cancelUntil(0)
			return Unknown
		}
		if s.itp == nil && float64(s.numLearnts) >= *maxLearnts {
			// Proof mode never reduces: crefs key the interpolant map and
			// compaction would relocate them.
			s.reduceDB()
			*maxLearnts *= 1.1
		}
		// Assumptions first.
		if s.decisionLevel() < len(s.assumptions) {
			l := s.assumptions[s.decisionLevel()]
			switch s.value(l) {
			case lTrue:
				// Dummy decision level to keep the invariant
				// decisionLevel >= #processed assumptions.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.conflictSet = s.analyzeFinal(l.Not())
				return Unsat
			default:
				s.Stats.Decisions++
				s.Budget.AddDecisions(1)
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(l, crefUndef)
				continue
			}
		}
		l, ok := s.pickBranchLit()
		if !ok {
			// All variables assigned: model found.
			s.model = cnf.NewAssignment(s.numVars)
			for v := 1; v <= s.numVars; v++ {
				s.model.Set(cnf.Var(v), s.assign[v] == lTrue)
			}
			return Sat
		}
		s.Stats.Decisions++
		s.Budget.AddDecisions(1)
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(l, crefUndef)
	}
}

// analyzeFinal computes the set of assumptions responsible for forcing
// literal p false.
func (s *Solver) analyzeFinal(p cnf.Lit) []cnf.Lit {
	out := []cnf.Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == crefUndef {
			// Assumption (or decision mirroring one).
			out = append(out, s.trail[i].Not())
		} else {
			for _, q := range s.ca.lits(s.reason[v])[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
	return out
}

// Model returns the satisfying assignment found by the last successful Solve.
// It returns nil if the last call did not return Sat.
func (s *Solver) Model() cnf.Assignment { return s.model }

// FailedAssumptions returns, after an Unsat result of SolveAssuming, a subset
// of the negated assumptions sufficient for unsatisfiability.
func (s *Solver) FailedAssumptions() []cnf.Lit { return s.conflictSet }
