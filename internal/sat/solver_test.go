package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// bruteForceSat decides satisfiability of f by enumerating all assignments.
func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	if n > 20 {
		panic("bruteForceSat: too many variables")
	}
	a := cnf.NewAssignment(n)
	for bits := 0; bits < 1<<n; bits++ {
		for v := 1; v <= n; v++ {
			a.Set(cnf.Var(v), bits&(1<<(v-1)) != 0)
		}
		if f.Eval(a) {
			return true
		}
	}
	return false
}

func lit(d int) cnf.Lit { return cnf.LitFromDimacs(d) }

func TestTrivialSat(t *testing.T) {
	s := New()
	s.EnsureVars(2)
	s.AddClause(lit(1), lit(2))
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	m := s.Model()
	if !m.Lit(lit(1)) && !m.Lit(lit(2)) {
		t.Fatal("model does not satisfy clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	s.AddClause(lit(1))
	if s.AddClause(lit(-1)) {
		t.Fatal("AddClause should detect conflict")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause should yield false")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestNoClausesSat(t *testing.T) {
	s := New()
	s.EnsureVars(3)
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	s.AddClause(lit(1), lit(-1))
	s.AddClause(lit(-2))
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.Model().Get(2) {
		t.Fatal("variable 2 must be false")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT.
	for n := 2; n <= 5; n++ {
		s := New()
		varOf := func(p, h int) cnf.Lit { return cnf.PosLit(cnf.Var(p*n + h + 1)) }
		for p := 0; p <= n; p++ {
			c := make([]cnf.Lit, n)
			for h := 0; h < n; h++ {
				c[h] = varOf(p, h)
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(varOf(p1, h).Not(), varOf(p2, h).Not())
				}
			}
		}
		if s.Solve() != Unsat {
			t.Fatalf("PHP(%d,%d) must be UNSAT", n+1, n)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a 5-cycle (chromatic number 3): SAT.
	s := New()
	varOf := func(node, col int) cnf.Lit { return cnf.PosLit(cnf.Var(node*3 + col + 1)) }
	for v := 0; v < 5; v++ {
		s.AddClause(varOf(v, 0), varOf(v, 1), varOf(v, 2))
		for c1 := 0; c1 < 3; c1++ {
			for c2 := c1 + 1; c2 < 3; c2++ {
				s.AddClause(varOf(v, c1).Not(), varOf(v, c2).Not())
			}
		}
	}
	for v := 0; v < 5; v++ {
		u := (v + 1) % 5
		for c := 0; c < 3; c++ {
			s.AddClause(varOf(v, c).Not(), varOf(u, c).Not())
		}
	}
	if s.Solve() != Sat {
		t.Fatal("C5 is 3-colorable")
	}
	// 2-coloring of a 5-cycle: UNSAT (odd cycle).
	s2 := New()
	varOf2 := func(node int) cnf.Lit { return cnf.PosLit(cnf.Var(node + 1)) }
	for v := 0; v < 5; v++ {
		u := (v + 1) % 5
		s2.AddClause(varOf2(v), varOf2(u))
		s2.AddClause(varOf2(v).Not(), varOf2(u).Not())
	}
	if s2.Solve() != Unsat {
		t.Fatal("C5 is not 2-colorable")
	}
}

func randomFormula(rng *rand.Rand, nVars, nClauses, maxLen int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(maxLen)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			v := cnf.Var(1 + rng.Intn(nVars))
			c = append(c, cnf.NewLit(v, rng.Intn(2) == 0))
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(30)
		f := randomFormula(rng, nVars, nClauses, 4)
		want := bruteForceSat(f)
		s := New()
		if !s.AddFormula(f) {
			if want {
				t.Fatalf("iter %d: AddFormula says UNSAT, brute force says SAT\n%v", iter, f.Clauses)
			}
			continue
		}
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v\n%v", iter, got, want, f.Clauses)
		}
		if got == Sat {
			if !f.Eval(s.Model()) {
				t.Fatalf("iter %d: model does not satisfy formula", iter)
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.EnsureVars(3)
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(3))
	if s.SolveAssuming([]cnf.Lit{lit(-2)}) != Sat {
		t.Fatal("expected SAT under -2")
	}
	m := s.Model()
	if !m.Get(1) || !m.Get(3) || m.Get(2) {
		t.Fatalf("bad model %v", m)
	}
	if s.SolveAssuming([]cnf.Lit{lit(-2), lit(-1)}) != Unsat {
		t.Fatal("expected UNSAT under {-2,-1}")
	}
	// Solver must stay usable incrementally.
	if s.Solve() != Sat {
		t.Fatal("expected SAT with no assumptions")
	}
}

func TestFailedAssumptions(t *testing.T) {
	s := New()
	s.EnsureVars(4)
	s.AddClause(lit(-1), lit(-2))
	st := s.SolveAssuming([]cnf.Lit{lit(4), lit(1), lit(2)})
	if st != Unsat {
		t.Fatal("expected UNSAT")
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("empty failed-assumption set")
	}
	// The failed set must be a subset of the negated assumptions and must not
	// include the irrelevant assumption 4.
	for _, l := range failed {
		d := l.Dimacs()
		if d == -4 {
			t.Fatal("assumption 4 is irrelevant but reported")
		}
		if d != -1 && d != -2 {
			t.Fatalf("unexpected failed literal %d", d)
		}
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	s.EnsureVars(2)
	s.AddClause(lit(1), lit(2))
	if s.Solve() != Sat {
		t.Fatal("SAT expected")
	}
	s.AddClause(lit(-1))
	s.AddClause(lit(-2))
	if s.Solve() != Unsat {
		t.Fatal("UNSAT expected after strengthening")
	}
}

func TestRandomIncrementalAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		nVars := 4 + rng.Intn(6)
		f := randomFormula(rng, nVars, 3+rng.Intn(15), 3)
		s := New()
		if !s.AddFormula(f) {
			continue
		}
		for round := 0; round < 5; round++ {
			// Random assumptions over distinct vars.
			perm := rng.Perm(nVars)
			k := rng.Intn(3)
			var assumps []cnf.Lit
			g := f.Clone()
			for _, vi := range perm[:k] {
				l := cnf.NewLit(cnf.Var(vi+1), rng.Intn(2) == 0)
				assumps = append(assumps, l)
				g.AddClause(l)
			}
			want := bruteForceSat(g)
			got := s.SolveAssuming(assumps)
			if (got == Sat) != want {
				t.Fatalf("iter %d round %d: got %v want SAT=%v", iter, round, got, want)
			}
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard instance: PHP(7,6) with a tiny conflict budget must hit Unknown.
	n := 6
	s := New()
	varOf := func(p, h int) cnf.Lit { return cnf.PosLit(cnf.Var(p*n + h + 1)) }
	for p := 0; p <= n; p++ {
		c := make([]cnf.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = varOf(p, h)
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(varOf(p1, h).Not(), varOf(p2, h).Not())
			}
		}
	}
	s.ConflictBudget = 10
	st, err := s.SolveErr(nil)
	if err != ErrBudget || st != Unknown {
		t.Fatalf("want budget exhaustion, got %v / %v", st, err)
	}
	// Raising the budget must allow completion.
	s.ConflictBudget = 0
	if s.Solve() != Unsat {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(int64(i + 1)); g != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, g, w)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String broken")
	}
}

func TestManyUnitClauses(t *testing.T) {
	s := New()
	for v := 1; v <= 200; v++ {
		s.AddClause(cnf.NewLit(cnf.Var(v), v%2 == 0))
	}
	if s.Solve() != Sat {
		t.Fatal("unit-only formula is SAT")
	}
	m := s.Model()
	for v := 1; v <= 200; v++ {
		if m.Get(cnf.Var(v)) != (v%2 != 0) {
			t.Fatalf("var %d has wrong value", v)
		}
	}
}

func TestHeapBasics(t *testing.T) {
	var h varHeap
	act := make([]float64, 10)
	for v := 1; v <= 5; v++ {
		act[v] = float64(v)
		h.insert(cnf.Var(v), act)
	}
	if !h.contains(3) {
		t.Fatal("heap should contain 3")
	}
	if top := h.removeTop(act); top != 5 {
		t.Fatalf("top = %d, want 5", top)
	}
	act[1] = 100
	h.update(1, act)
	if top := h.removeTop(act); top != 1 {
		t.Fatalf("top after update = %d, want 1", top)
	}
	if h.contains(1) {
		t.Fatal("1 removed but still contained")
	}
}

// TestPropagateSelfAppendRewatch is a white-box regression test for the
// watcher-list self-append hazard: if a clause scanned from watches[l] picks a
// new watch whose negation is l itself, the append targets the very slice
// being scanned. If propagate keeps working on a stale snapshot, the appended
// watcher is dropped when the compacted prefix is written back, silently
// losing the clause from the watch lists.
//
// The hazard is unreachable through the public API (the false literal ¬l can
// never be chosen as a new watch while l is assigned), so the state is
// fabricated directly: the clause contains ¬l twice and l is placed on the
// trail without assigning it, which makes ¬l look unassigned during the scan
// and forces a same-literal re-watch.
func TestPropagateSelfAppendRewatch(t *testing.T) {
	s := New()
	s.EnsureVars(2)
	a := cnf.PosLit(1)
	l := cnf.PosLit(2)

	// Attach directly to bypass AddClause normalization (the duplicate ¬l is
	// what creates the re-watch on ¬l).
	s.attachClause([]cnf.Lit{a.Not(), l.Not(), l.Not()}, false)
	if len(s.watches[l]) != 1 {
		t.Fatalf("setup: watches[l] has %d watchers, want 1", len(s.watches[l]))
	}

	s.assign[1] = lTrue          // ¬a is false: the scan must look for a new watch
	s.trail = append(s.trail, l) // scan watches[l] with ¬l still unassigned
	if confl := s.propagate(); confl != crefUndef {
		t.Fatalf("unexpected conflict %d", confl)
	}

	// The re-watch appended {clause, ¬a} to watches[l] mid-scan; it must have
	// survived the copy-back.
	if got := len(s.watches[l]); got != 1 {
		t.Fatalf("watches[l] has %d watchers after self-append, want 1 (watcher lost)", got)
	}
	if blk := s.watches[l][0].blocker; blk != a.Not() {
		t.Fatalf("surviving watcher has blocker %v, want %v", blk, a.Not())
	}
}

// addPHP adds the clauses of the pigeonhole principle PHP(n+1, n).
func addPHP(s *Solver, n int) {
	varOf := func(p, h int) cnf.Lit { return cnf.PosLit(cnf.Var(p*n + h + 1)) }
	for p := 0; p <= n; p++ {
		c := make([]cnf.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = varOf(p, h)
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(varOf(p1, h).Not(), varOf(p2, h).Not())
			}
		}
	}
}

// TestArenaCompaction drives the solver through enough clause learning and
// database reduction that the arena garbage collector runs, and checks the
// solver stays sound across compactions.
func TestArenaCompaction(t *testing.T) {
	s := New()
	addPHP(s, 7)
	if s.Solve() != Unsat {
		t.Fatal("PHP(8,7) must be UNSAT")
	}
	if s.Stats.Removed == 0 {
		t.Fatal("expected reduceDB to remove learned clauses")
	}
	if s.Stats.Compactions == 0 {
		t.Fatal("expected at least one arena compaction")
	}
	if s.ArenaBytes() <= 0 {
		t.Fatal("arena bytes must be positive")
	}
	// The solver must remain usable after compaction.
	s2 := New()
	addPHP(s2, 6)
	if s2.Solve() != Unsat {
		t.Fatal("PHP(7,6) must be UNSAT")
	}
}

// TestArenaRecord exercises the raw arena record operations.
func TestArenaRecord(t *testing.T) {
	var a arena
	c1 := a.alloc([]cnf.Lit{lit(1), lit(-2), lit(3)}, false)
	c2 := a.alloc([]cnf.Lit{lit(4), lit(5)}, true)
	if a.size(c1) != 3 || a.size(c2) != 2 {
		t.Fatalf("sizes %d/%d, want 3/2", a.size(c1), a.size(c2))
	}
	if a.learnt(c1) || !a.learnt(c2) {
		t.Fatal("learnt flags wrong")
	}
	a.setLBD(c2, 5)
	if a.lbd(c2) != 5 {
		t.Fatalf("lbd = %d, want 5", a.lbd(c2))
	}
	a.setActivity(c2, 2.5)
	if a.activity(c2) != 2.5 {
		t.Fatalf("activity = %v, want 2.5", a.activity(c2))
	}
	got := a.lits(c1)
	want := []cnf.Lit{lit(1), lit(-2), lit(3)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lits[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if a.next(c1) != c2 {
		t.Fatalf("next(c1) = %d, want %d", a.next(c1), c2)
	}
	a.delete(c1)
	if !a.deleted(c1) || a.deleted(c2) {
		t.Fatal("deleted flags wrong")
	}
	if a.wasted != hdrWords+3 {
		t.Fatalf("wasted = %d, want %d", a.wasted, hdrWords+3)
	}
	// Relocate c2 into a fresh arena twice: the second call must reuse the
	// forwarding address.
	var to arena
	r1, r2 := c2, c2
	a.reloc(&r1, &to)
	a.reloc(&r2, &to)
	if r1 != r2 {
		t.Fatalf("forwarded crefs differ: %d vs %d", r1, r2)
	}
	if to.size(r1) != 2 || !to.learnt(r1) || to.lbd(r1) != 5 {
		t.Fatal("relocated clause corrupted")
	}
}
