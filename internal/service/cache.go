package service

import (
	"container/list"
	"sync"

	"repro/internal/faults"
)

// resultCache is a mutex-guarded LRU cache from canonical formula hashes to
// definitive outcomes. Only SAT/UNSAT verdicts belong in the cache — Unknown
// outcomes depend on the budget that produced them.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	out Outcome
}

// newResultCache returns a cache holding up to capacity entries; a
// non-positive capacity disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached outcome for key, marking it most recently used.
// A fault injected at the lookup point degrades to a miss — the cache is an
// accelerator, never a point of failure.
func (c *resultCache) Get(key string) (Outcome, bool) {
	if err := faults.Fire(faults.CacheLookup); err != nil {
		return Outcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Outcome{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// Put stores out under key, evicting the least recently used entry when the
// cache is full.
func (c *resultCache) Put(key string, out Outcome) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, out: out})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
