package service

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dqbf"
)

// TestCacheConcurrentEviction hammers the LRU with concurrent Get/Put under
// eviction pressure: the size bound must hold, returned values must belong
// to the key asked for, and the race detector must stay quiet.
func TestCacheConcurrentEviction(t *testing.T) {
	const capEntries = 8
	c := newResultCache(capEntries)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(32)) // 32 keys > 8 slots
				if rng.Intn(2) == 0 {
					c.Put(key, Outcome{Verdict: VerdictSat, Reason: key})
				} else if out, ok := c.Get(key); ok && out.Reason != key {
					t.Errorf("Get(%q) returned entry for %q", key, out.Reason)
				}
				if l := c.Len(); l > capEntries {
					t.Errorf("cache grew to %d entries, cap is %d", l, capEntries)
				}
			}
		}(g)
	}
	wg.Wait()
	if l := c.Len(); l > capEntries {
		t.Fatalf("final cache size %d exceeds cap %d", l, capEntries)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("k", Outcome{Verdict: VerdictSat})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache has %d entries", c.Len())
	}
}

// permutedPair is paper Example 1 in DQDIMACS, twice: same instance, but with
// prefix lines reordered, clauses reordered, and literals inside clauses
// flipped around.
const dqdimacsA = `p cnf 4 4
a 1 2 0
d 3 1 0
d 4 2 0
-3 1 0
3 -1 0
-4 2 0
4 -2 0
`

const dqdimacsB = `p cnf 4 4
a 2 1 0
d 4 2 0
d 3 1 0
4 -2 0
1 -3 0
2 -4 0
-1 3 0
`

func parseDQ(t *testing.T, s string) *dqbf.Formula {
	t.Helper()
	f, err := dqbf.ParseDQDIMACSString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// TestCanonicalHashPermutationInvariant checks the cache key: two
// DQDIMACS serializations of the same instance that differ only in prefix
// order, clause order, and literal order must hash identically, and an
// actually-different instance must not.
func TestCanonicalHashPermutationInvariant(t *testing.T) {
	fa := parseDQ(t, dqdimacsA)
	fb := parseDQ(t, dqdimacsB)
	ha, hb := CanonicalHash(fa), CanonicalHash(fb)
	if ha != hb {
		t.Fatalf("permuted serializations hash differently:\n  %s\n  %s", ha, hb)
	}
	fc := parseDQ(t, dqdimacsA)
	fc.Matrix.AddDimacsClause(1, 2)
	if CanonicalHash(fc) == ha {
		t.Fatal("adding a clause did not change the hash")
	}
}

// TestSchedulerCacheHitOnPermutedInput submits an instance, then its
// permuted serialization: the second submit must be served from the cache
// without running an engine.
func TestSchedulerCacheHitOnPermutedInput(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, DefaultTimeout: 5 * time.Second})
	defer drainNow(t, s)

	j1, err := s.Submit(parseDQ(t, dqdimacsA), EngineHQS, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if out := j1.Outcome(); out.Verdict != VerdictSat {
		t.Fatalf("first solve verdict = %v, want SAT", out.Verdict)
	}

	j2, err := s.Submit(parseDQ(t, dqdimacsB), EngineHQS, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	out := j2.Outcome()
	if !out.FromCache {
		t.Fatalf("permuted resubmission missed the cache: %+v", out)
	}
	if out.Verdict != VerdictSat {
		t.Fatalf("cached verdict = %v, want SAT", out.Verdict)
	}
}
