package service

import (
	"strings"
	"testing"

	"repro/internal/budget"
)

// TestCertifyHQSValidCertificate: with certification on, an HQS SAT verdict
// only reaches the caller after the extracted Skolem certificate passes the
// independent checker.
func TestCertifyHQSValidCertificate(t *testing.T) {
	SetCertifyHQS(true)
	defer SetCertifyHQS(false)
	out, err := Run(paperExample1(), EngineHQS, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictSat {
		t.Fatalf("verdict = %v, want SAT with a validated certificate (error: %s)", out.Verdict, out.Error)
	}
}

// TestCertifyHQSRejectionIsError: a fault injected at the service.certify
// point must turn the certified HQS SAT into ERROR — the same policy the
// iDQ table certificates already get.
func TestCertifyHQSRejectionIsError(t *testing.T) {
	SetCertifyHQS(true)
	defer SetCertifyHQS(false)
	withFaults(t, "service.certify:error", 1)
	out, err := Run(paperExample1(), EngineHQS, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictError {
		t.Fatalf("verdict = %v, want ERROR on certificate rejection", out.Verdict)
	}
	if !strings.Contains(out.Error, "certificate") {
		t.Fatalf("error text = %q, want certificate rejection", out.Error)
	}
}

// TestCertifyOffSkipsCheck: without the flag the HQS path must not consult
// the certificate checker at all — an armed certify fault must not fire.
func TestCertifyOffSkipsCheck(t *testing.T) {
	withFaults(t, "service.certify:error", 1)
	out, err := Run(paperExample1(), EngineHQS, budget.New(budget.Limits{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Verdict != VerdictSat {
		t.Fatalf("verdict = %v, want SAT (uncertified HQS must not hit the certify point)", out.Verdict)
	}
}
