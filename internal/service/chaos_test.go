package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dqbf"
	"repro/internal/faults"
	"repro/internal/leakcheck"
)

// withFaults activates a fault plan for the duration of the test. Plans are
// process-global, so tests using this helper must not call t.Parallel.
func withFaults(t *testing.T, spec string, seed int64) *faults.Plan {
	t.Helper()
	plan, err := faults.ParseSpec(spec, seed)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	faults.Activate(plan)
	t.Cleanup(faults.Deactivate)
	return plan
}

// drainNow shuts a scheduler down at test end, failing the test if it cannot
// drain within a generous deadline.
func drainNow(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestChaosSchedulerUnderFaults is the acceptance scenario of the robustness
// work: a fault plan panicking in 10% of SAT oracle calls (plus injected
// dispatch panics, cache-lookup errors, oracle errors, and spurious
// Unknowns), 200 jobs submitted from concurrent clients with concurrent
// cancellations, and a drain at the end. Every accepted job must reach a
// terminal state, no worker may die, no goroutine may leak, and the stats
// must balance.
func TestChaosSchedulerUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	leakcheck.Check(t)

	plan := withFaults(t,
		"sat.solve:panic:p=0.1;"+
			"sched.dispatch:panic:p=0.03;"+
			"cache.lookup:error:every=5;"+
			"maxsat.solve:error:p=0.05;"+
			"qbf.eliminate:unknown:p=0.02;"+
			"aig.sweep:error:p=0.2;"+
			"oracle.query:error:p=0.05;"+
			"defex.check:error:p=0.05",
		1)

	s := NewScheduler(Config{
		Workers:        4,
		QueueCap:       256,
		DefaultTimeout: 5 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})

	const jobsTotal = 200
	engines := []Engine{EngineHQS, EngineIDQ, EngineDefex, EngineExpand, EnginePortfolio}
	var (
		mu       sync.Mutex
		accepted []*Job
		rejected atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < jobsTotal/4; i++ {
				var f *dqbf.Formula
				if rng.Intn(2) == 0 {
					f = paperExample1()
				} else {
					f = unsatExample()
				}
				job, err := s.Submit(f, engines[rng.Intn(len(engines))], Limits{})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrDraining) {
						t.Errorf("unexpected submit error: %v", err)
					}
					rejected.Add(1)
					continue
				}
				mu.Lock()
				accepted = append(accepted, job)
				mu.Unlock()
				// Cancel a slice of the jobs mid-flight.
				if rng.Intn(10) == 0 {
					_ = s.Cancel(job.ID())
				}
			}
		}(c)
	}
	wg.Wait()

	// Every accepted job must terminate on its own (no drain assist yet).
	deadline := time.After(30 * time.Second)
	for _, job := range accepted {
		select {
		case <-job.Done():
		case <-deadline:
			t.Fatalf("job %s stuck in state %s under faults", job.ID(), job.Info().State)
		}
	}
	for _, job := range accepted {
		if st := job.Info().State; st != StateDone {
			t.Fatalf("job %s not terminal: %s", job.ID(), st)
		}
		out := job.Outcome()
		switch out.Verdict {
		case VerdictSat, VerdictUnsat, VerdictUnknown, VerdictError:
		default:
			t.Fatalf("job %s: invalid verdict %v", job.ID(), out.Verdict)
		}
	}

	// The plan must actually have hit the SAT oracle, or the test proves
	// nothing.
	if plan.Fires(faults.SATSolve) == 0 {
		t.Fatal("fault plan never fired at sat.solve")
	}

	// Worker survival: with the faults gone, one sentinel job per worker
	// must still be solved. A dead worker would leave a sentinel queued.
	faults.Deactivate()
	sentinels := make([]*Job, 0, 4)
	for i := 0; i < 4; i++ {
		job, err := s.Submit(pigeonholeDQBF(2), EngineHQS, Limits{})
		if err != nil {
			t.Fatalf("sentinel submit: %v", err)
		}
		sentinels = append(sentinels, job)
	}
	for _, job := range sentinels {
		select {
		case <-job.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("sentinel job stuck: a worker died during the chaos run")
		}
		if out := job.Outcome(); out.Verdict != VerdictUnsat && !out.FromCache {
			t.Fatalf("sentinel verdict = %v (%s), want UNSAT", out.Verdict, out.Reason)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	st := s.Stats()
	if st.Submitted != int64(len(accepted)+len(sentinels)) {
		t.Errorf("stats.Submitted = %d, want %d", st.Submitted, len(accepted)+len(sentinels))
	}
	if st.Completed != st.Submitted {
		t.Errorf("stats: %d submitted but %d completed — jobs lost", st.Submitted, st.Completed)
	}
	if st.Solved+st.Unknown+st.Errors != st.Completed {
		t.Errorf("stats don't balance: solved %d + unknown %d + errors %d != completed %d",
			st.Solved, st.Unknown, st.Errors, st.Completed)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("post-drain stats: running=%d queued=%d, want 0/0", st.Running, st.Queued)
	}
	t.Logf("chaos stats: %+v", st)
	t.Logf("fault fires: sat.solve=%d dispatch=%d cache=%d",
		plan.Fires(faults.SATSolve), plan.Fires(faults.SchedDispatch), plan.Fires(faults.CacheLookup))
}

// TestChaosDrainUnderFaults drains while faults are still active and
// submitters are still hammering: Drain must return, every job accepted
// before or during the drain must be terminal, and nothing may leak.
func TestChaosDrainUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short mode")
	}
	leakcheck.Check(t)

	withFaults(t, "sat.solve:panic:p=0.15;sched.dispatch:error:p=0.1", 7)

	s := NewScheduler(Config{
		Workers:        3,
		QueueCap:       16,
		DefaultTimeout: 5 * time.Second,
		Retry:          RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})

	var (
		mu       sync.Mutex
		accepted []*Job
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				job, err := s.Submit(paperExample1(), EnginePortfolio, Limits{})
				if err != nil {
					if errors.Is(err, ErrDraining) {
						return
					}
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("unexpected submit error: %v", err)
						return
					}
					continue
				}
				mu.Lock()
				accepted = append(accepted, job)
				mu.Unlock()
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond) // let the storm build
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, job := range accepted {
		select {
		case <-job.Done():
		case <-time.After(time.Second):
			t.Fatalf("job %s not terminal after drain", job.ID())
		}
	}
	if _, err := s.Submit(paperExample1(), EngineHQS, Limits{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	st := s.Stats()
	if st.Completed != st.Submitted {
		t.Errorf("stats: %d submitted but %d completed", st.Submitted, st.Completed)
	}
}

// TestDrainRaceRejectsOrRuns is the regression test for the Submit/Drain
// race: a submission racing a hard drain must either be rejected with
// ErrDraining or be accepted and reach a terminal state — never accepted and
// then silently dropped.
func TestDrainRaceRejectsOrRuns(t *testing.T) {
	leakcheck.Check(t)
	for round := 0; round < 8; round++ {
		s := NewScheduler(Config{
			Workers:        2,
			QueueCap:       4,
			DefaultTimeout: 2 * time.Second,
		})
		var (
			mu       sync.Mutex
			accepted []*Job
		)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 32; i++ {
					job, err := s.Submit(unsatExample(), EngineIDQ, Limits{})
					if err != nil {
						if !errors.Is(err, ErrDraining) && !errors.Is(err, ErrQueueFull) {
							t.Errorf("submit: %v", err)
						}
						continue
					}
					mu.Lock()
					accepted = append(accepted, job)
					mu.Unlock()
				}
			}()
		}
		// A short deadline forces the hard-drain path that flushes the queue.
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		close(start)
		err := s.Drain(ctx)
		cancel()
		wg.Wait()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("drain: %v", err)
		}

		for _, job := range accepted {
			select {
			case <-job.Done():
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d: accepted job %s never reached a terminal state", round, job.ID())
			}
			// Flushed jobs must be queryable in history, not forgotten.
			if _, ok := s.Job(job.ID()); !ok {
				t.Fatalf("round %d: finished job %s missing from history", round, job.ID())
			}
		}
		st := s.Stats()
		if st.Completed != st.Submitted {
			t.Fatalf("round %d: %d submitted, %d completed", round, st.Submitted, st.Completed)
		}
	}
}
