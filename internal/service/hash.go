package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/cnf"
	"repro/internal/dqbf"
)

// CanonicalHash returns a hex-encoded SHA-256 digest of a canonical
// serialization of f, suitable as a result-cache key: two parses of the same
// instance hash identically even when prefix lines, clause order, or the
// literal order inside clauses differ. The digest covers the universal set,
// each existential with its dependency set, and the matrix with duplicate
// literals removed and clauses sorted; it deliberately ignores cosmetic
// attributes such as the declared variable count.
func CanonicalHash(f *dqbf.Formula) string {
	h := sha256.New()
	writeInt := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeVars := func(vs []cnf.Var) {
		sorted := append([]cnf.Var(nil), vs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		writeInt(int64(len(sorted)))
		for _, v := range sorted {
			writeInt(int64(v))
		}
	}

	h.Write([]byte("univ"))
	writeVars(f.Univ)

	h.Write([]byte("exist"))
	exist := append([]cnf.Var(nil), f.Exist...)
	sort.Slice(exist, func(i, j int) bool { return exist[i] < exist[j] })
	writeInt(int64(len(exist)))
	for _, y := range exist {
		writeInt(int64(y))
		writeVars(f.Deps[y].Vars())
	}

	h.Write([]byte("matrix"))
	clauses := make([][]cnf.Lit, 0, len(f.Matrix.Clauses))
	for _, c := range f.Matrix.Clauses {
		lits := append([]cnf.Lit(nil), c...)
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
		dedup := lits[:0]
		for i, l := range lits {
			if i == 0 || l != lits[i-1] {
				dedup = append(dedup, l)
			}
		}
		clauses = append(clauses, dedup)
	}
	sort.Slice(clauses, func(i, j int) bool { return lessLits(clauses[i], clauses[j]) })
	writeInt(int64(len(clauses)))
	for _, c := range clauses {
		writeInt(int64(len(c)))
		for _, l := range c {
			writeInt(int64(l))
		}
	}

	return hex.EncodeToString(h.Sum(nil))
}

// lessLits orders clauses lexicographically by their literal sequence.
func lessLits(a, b []cnf.Lit) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
