package service

import (
	"repro/internal/dqbf"
	"repro/internal/problem"
)

// CanonicalHash returns a hex-encoded SHA-256 digest of a canonical
// serialization of f, suitable as a result-cache key. The computation moved
// to the ingestion layer (problem.CanonicalFormulaHash) so the key is
// stable across every input format — a BENCH-ingested instance and its
// DQDIMACS serialization hash identically — and this wrapper remains for
// the scheduler and existing callers. The digest bytes are unchanged, so
// persistent store entries written by earlier versions stay addressable.
func CanonicalHash(f *dqbf.Formula) string {
	return problem.CanonicalFormulaHash(f)
}
