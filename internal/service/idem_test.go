package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/problem"
)

// TestIdempotentSubmitDeduplicates is the regression test for the
// double-count bug the cluster coordinator would otherwise hit: a forward
// retried with the same idempotency key must land on the job the first
// submit created, leaving history with one entry and the submitted/completed
// counters incremented once.
func TestIdempotentSubmitDeduplicates(t *testing.T) {
	s := NewScheduler(Config{Workers: 2, CacheSize: -1})
	defer s.Drain(context.Background())

	p := problem.FromDQBF(paperExample1())
	key := p.CanonicalHash() + ":attempt0"
	j1, err := s.SubmitProblemIdem(p, EngineHQS, Limits{Timeout: 30 * time.Second}, key)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	j2, err := s.SubmitProblemIdem(p, EngineHQS, Limits{Timeout: 30 * time.Second}, key)
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	if j1.ID() != j2.ID() {
		t.Fatalf("retried submit created a new job: %s vs %s", j1.ID(), j2.ID())
	}
	out := waitDone(t, j2)
	if out.Verdict != VerdictSat {
		t.Fatalf("verdict: %+v", out)
	}

	// A later attempt is a distinct key on purpose: the coordinator only
	// dedupes exact resends, not escalations.
	j3, err := s.SubmitProblemIdem(p, EngineHQS, Limits{Timeout: 30 * time.Second}, p.CanonicalHash()+":attempt1")
	if err != nil {
		t.Fatalf("second attempt: %v", err)
	}
	if j3.ID() == j1.ID() {
		t.Fatal("distinct attempt key deduplicated onto the first job")
	}
	waitDone(t, j3)

	st := s.Stats()
	if st.Submitted != 2 || st.Completed != 2 {
		t.Fatalf("retried submit double-counted: submitted=%d completed=%d", st.Submitted, st.Completed)
	}
	if st.IdemHits != 1 {
		t.Fatalf("idem hits: got %d, want 1", st.IdemHits)
	}
	if st.HistoryLen != 2 {
		t.Fatalf("history: got %d entries, want 2", st.HistoryLen)
	}
}

// TestIdempotencyKeyEviction pins the cleanup path: once the job behind a
// key is evicted from history, the key unregisters and a resend with it
// creates (and counts) a fresh job rather than dangling.
func TestIdempotentKeyEviction(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, HistorySize: 1, CacheSize: -1})
	defer s.Drain(context.Background())

	p1 := problem.FromDQBF(paperExample1())
	key := p1.CanonicalHash() + ":attempt0"
	j1, err := s.SubmitProblemIdem(p1, EngineHQS, Limits{Timeout: 30 * time.Second}, key)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitDone(t, j1)

	// Push j1 out of the single-slot history with an unrelated job.
	p2 := problem.FromDQBF(unsatExample())
	j2, err := s.SubmitProblem(p2, EngineHQS, Limits{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("submit evictor: %v", err)
	}
	waitDone(t, j2)

	j3, err := s.SubmitProblemIdem(p1, EngineHQS, Limits{Timeout: 30 * time.Second}, key)
	if err != nil {
		t.Fatalf("resend after eviction: %v", err)
	}
	if j3.ID() == j1.ID() {
		t.Fatal("resend resolved to an evicted job")
	}
	waitDone(t, j3)
	if st := s.Stats(); st.IdemHits != 0 {
		t.Fatalf("idem hits after eviction: got %d, want 0", st.IdemHits)
	}
}
